package whodunit

// Property tests for the diff engine, quick-checked over randomized
// CCT reports: Diff(r, r) is empty; Diff(a, b) and Diff(b, a) are exact
// mirrors; a Diff survives a JSON round trip losslessly. The corpus
// variant of the reflexivity property (over every pinned scenario
// report) lives in internal/scenarios.

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"whodunit/internal/cct"
	"whodunit/internal/ipc"
	"whodunit/internal/vm"
)

var diffFrames = []string{
	"accept", "parse_request", "serve", "sendfile", "sort_rows",
	"lookup", "write_reply", "read_body",
}

// randRecords builds a random flattened CCT: a handful of random call
// paths with random self samples and calls.
func randRecords(r *rand.Rand) ([]cct.FlatRecord, int64) {
	n := 1 + r.Intn(6)
	var recs []cct.FlatRecord
	var total int64
	for i := 0; i < n; i++ {
		depth := 1 + r.Intn(4)
		path := make([]string, depth)
		for d := range path {
			path[d] = diffFrames[r.Intn(len(diffFrames))]
		}
		self := int64(r.Intn(200))
		recs = append(recs, cct.FlatRecord{Path: path, Self: self, Calls: int64(r.Intn(5))})
		total += self
	}
	return recs, total
}

// randReport builds a random but internally consistent Report: stages
// with per-context tree dumps, sends that stitch into request/response
// edges, a crosstalk matrix and flow events. Stage and context names
// are drawn from small pools so two draws share most of their structure
// — the interesting regime for matching.
func randReport(r *rand.Rand) *Report {
	nstages := 1 + r.Intn(3)
	var dumps []StageDump
	for s := 0; s < nstages; s++ {
		d := StageDump{Stage: fmt.Sprintf("stage%d", s)}
		nt := 1 + r.Intn(3)
		for t := 0; t < nt; t++ {
			recs, total := randRecords(r)
			d.Trees = append(d.Trees, TreeDump{
				Key:     fmt.Sprintf("chain%d|ctx%d", t, t),
				Prefix:  fmt.Sprintf("chain%d", t),
				Label:   fmt.Sprintf("context-%d", t),
				Total:   total,
				Records: recs,
			})
		}
		// Sends from this stage's first context to a random chain; when
		// the chain names another stage's tree prefix, the stitcher
		// emits request/response edges.
		if r.Intn(2) == 0 {
			d.Sends = append(d.Sends, ipc.SendRecord{
				Chain:    fmt.Sprintf("chain%d", r.Intn(3)),
				FromKey:  d.Trees[0].Key,
				FromName: d.Trees[0].Label,
			})
		}
		dumps = append(dumps, d)
	}
	rep := ReportFromDumps("randapp", dumps...)
	rep.Elapsed = Duration(r.Intn(5)) * Millisecond
	for i := 0; i < r.Intn(3); i++ {
		rep.Crosstalk = append(rep.Crosstalk, CrosstalkPair{
			Waiter: fmt.Sprintf("txn%d", r.Intn(3)),
			Holder: fmt.Sprintf("txn%d", r.Intn(3)),
			Count:  int64(1 + r.Intn(5)),
			Total:  Duration(r.Intn(1000)) * Microsecond,
		})
	}
	for i := 0; i < r.Intn(4); i++ {
		rep.Flows = append(rep.Flows, FlowEvent{
			Producer: r.Intn(3), Consumer: 3 + r.Intn(3),
			Token: FlowToken(r.Intn(8)), Lock: 1 + r.Intn(2),
			Loc: vm.Loc{Kind: vm.LocMem, Addr: uint32(r.Intn(64))},
		})
	}
	return rep
}

func TestDiffProperties(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for iter := 0; iter < 100; iter++ {
		a, b := randReport(r), randReport(r)

		// Reflexivity: a report diffed against itself is empty.
		if d := Diff(a, a); !d.Empty() {
			t.Fatalf("iter %d: Diff(a, a) not empty (max delta %d)", iter, d.MaxDelta())
		}
		// ... including against an independently decoded copy of itself.
		var js bytes.Buffer
		if err := a.JSON(&js); err != nil {
			t.Fatal(err)
		}
		a2, err := ReadReport(bytes.NewReader(js.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if d := Diff(a, a2); !d.Empty() {
			var buf bytes.Buffer
			d.Text(&buf)
			t.Fatalf("iter %d: Diff(a, decode(encode(a))) not empty:\n%s", iter, buf.String())
		}

		// Mirror: Diff(b, a) is Diff(a, b) with the sides swapped,
		// entry for entry and in the same order.
		ab, ba := Diff(a, b), Diff(b, a)
		if !reflect.DeepEqual(ba, ab.Mirrored()) {
			t.Fatalf("iter %d: Diff(b,a) != Diff(a,b).Mirrored()\nDiff(b,a)=%+v\nmirrored=%+v", iter, ba, ab.Mirrored())
		}

		// JSON round trip of a diff is lossless.
		var djs bytes.Buffer
		if err := ab.JSON(&djs); err != nil {
			t.Fatal(err)
		}
		back, err := ReadDiff(bytes.NewReader(djs.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ab, back) {
			t.Fatalf("iter %d: diff JSON round trip lossy\nbefore=%+v\nafter=%+v", iter, ab, back)
		}
	}
}

// TestDiffFindsKnownDeltas pins the diff engine's behavior on a
// hand-built pair: a changed node, a removed subtree, a context present
// on one side, a crosstalk change and a flow-count change.
func TestDiffFindsKnownDeltas(t *testing.T) {
	mk := func(serveSelf int64, withSort bool, extraCtx bool, flowCount int, waitCount int64) *Report {
		recs := []cct.FlatRecord{
			{Path: []string{"accept"}, Self: 10},
			{Path: []string{"accept", "serve"}, Self: serveSelf},
		}
		total := 10 + serveSelf
		if withSort {
			recs = append(recs, cct.FlatRecord{Path: []string{"accept", "serve", "sort_rows"}, Self: 7})
			recs = append(recs, cct.FlatRecord{Path: []string{"accept", "serve", "sort_rows", "cmp"}, Self: 2})
			total += 9
		}
		d := StageDump{Stage: "web", Trees: []TreeDump{
			{Key: "c|0", Prefix: "c", Label: "ctx", Total: total, Records: recs},
		}}
		if extraCtx {
			d.Trees = append(d.Trees, TreeDump{
				Key: "c|1", Prefix: "c2", Label: "ctx2", Total: 5,
				Records: []cct.FlatRecord{{Path: []string{"other"}, Self: 5}},
			})
		}
		rep := ReportFromDumps("app", d)
		for i := 0; i < flowCount; i++ {
			rep.Flows = append(rep.Flows, FlowEvent{Producer: 1, Consumer: 2, Lock: 1})
		}
		rep.Crosstalk = []CrosstalkPair{{Waiter: "w", Holder: "h", Count: waitCount, Total: Duration(waitCount) * Millisecond}}
		return rep
	}
	a := mk(20, true, false, 2, 3)
	b := mk(25, false, true, 5, 3)

	d := Diff(a, b)
	if d.Empty() {
		t.Fatal("expected non-empty diff")
	}
	if len(d.Stages) != 1 || d.Stages[0].Stage != "web" {
		t.Fatalf("stages = %+v", d.Stages)
	}
	var changed, subtree, onlyB bool
	for _, td := range d.Stages[0].Trees {
		if td.OnlyIn == SideB && td.Key == "c|1" {
			onlyB = true
		}
		for _, nd := range td.Nodes {
			if len(nd.Path) == 2 && nd.Path[1] == "serve" && nd.SelfA == 20 && nd.SelfB == 25 {
				changed = true
			}
			// The removed sort_rows subtree collapses to one row with
			// inclusive samples (7 + 2) and no descendant rows.
			if nd.Subtree && nd.OnlyIn == SideA && nd.Path[len(nd.Path)-1] == "sort_rows" && nd.SelfA == 9 && nd.SelfB == 0 {
				subtree = true
			}
			if nd.Path[len(nd.Path)-1] == "cmp" {
				t.Errorf("descendant of a one-sided subtree enumerated: %+v", nd)
			}
		}
	}
	if !changed || !subtree || !onlyB {
		t.Fatalf("missing expected deltas (changed=%v subtree=%v onlyB=%v): %+v", changed, subtree, onlyB, d.Stages[0].Trees)
	}
	if len(d.Flows) != 1 || d.Flows[0].CountA != 2 || d.Flows[0].CountB != 5 {
		t.Fatalf("flow deltas = %+v", d.Flows)
	}
	// Equal crosstalk cells produce no delta.
	if len(d.Crosstalk) != 0 {
		t.Fatalf("crosstalk deltas = %+v", d.Crosstalk)
	}
	if d.MaxDelta() != 9 {
		t.Fatalf("MaxDelta = %d, want 9 (the removed subtree)", d.MaxDelta())
	}
	if !d.Exceeds(0) || d.Exceeds(9) {
		t.Fatalf("threshold gating wrong around MaxDelta=%d", d.MaxDelta())
	}
}

// TestDiffMatchedWalkDoesNotReintern pins the diff hot path's interning
// discipline: rebuilding both runs' trees into one shared FrameTable
// interns every frame name exactly once, and the matched-node walk
// itself never interns — the table does not grow while matching.
func TestDiffMatchedWalkDoesNotReintern(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	recsA, _ := randRecords(r)
	recsB, _ := randRecords(r)
	ft := cct.NewFrameTable()
	ra := cct.FromRecordsShared("ctx", ft, recsA)
	rb := cct.FromRecordsShared("ctx", ft, recsB)
	before := ft.Len()
	for i := 0; i < 3; i++ {
		if out := diffNodes(ft, ra.Root, rb.Root, nil, nil); i == 0 && len(out) == 0 {
			t.Log("note: random trees matched exactly this draw")
		}
		if ft.Len() != before {
			t.Fatalf("matching walk grew the frame table: %d -> %d", before, ft.Len())
		}
	}
}

// BenchmarkReportDiff pins the diff hot path's allocation behavior over
// a realistic report pair (mostly-matched trees with scattered deltas).
func BenchmarkReportDiff(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	ra, rb := randReport(r), randReport(r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := Diff(ra, rb); d == nil {
			b.Fatal("nil diff")
		}
	}
}
