package whodunit_test

import (
	"bytes"
	"io"
	"testing"

	"whodunit"
)

// validReportJSON renders one real retired-window report — the
// well-formed corpus seed the fuzzers mutate from.
func validReportJSON(f *testing.F) []byte {
	f.Helper()
	srv := whodunit.NewServer(serveApp(7), whodunit.ServeConfig{
		Window: 100 * whodunit.Millisecond, Threshold: -1, MaxWindows: 2,
	})
	srv.Run()
	kv, ok := srv.Ring().Get(0)
	if !ok {
		f.Fatal("no window retired")
	}
	var buf bytes.Buffer
	if err := kv.V.Report.JSON(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadReport asserts ReadReport either errors or returns a report
// every renderer and accessor can process — malformed, truncated or
// hostile input must never panic.
func FuzzReadReport(f *testing.F) {
	valid := validReportJSON(f)
	f.Add(valid)
	for _, cut := range []int{1, len(valid) / 3, len(valid) / 2, len(valid) - 2} {
		f.Add(valid[:cut])
	}
	f.Add([]byte("{}"))
	f.Add([]byte("null"))
	f.Add([]byte(`{"stages": [{"stage": "", "trees": null}]}`))
	f.Add([]byte(`{"stages": [{"dumps": [{"entries": [{"chain": [0], "tree": {}}]}]}]}`))
	f.Add([]byte(`{"window": {"seq": -9223372036854775808}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := whodunit.ReadReport(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully decoded report must survive every presentation
		// path: renderers, totals, and a self-diff.
		rep.Text(io.Discard)
		rep.Folded(io.Discard)
		if err := rep.JSON(io.Discard); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		_ = rep.TotalSamples()
		d := whodunit.Diff(rep, rep)
		d.Text(io.Discard)
		if err := d.JSON(io.Discard); err != nil {
			t.Fatalf("self-diff encode: %v", err)
		}
	})
}

// FuzzReadDiff is the same contract for ReadDiff: error or a diff whose
// renderers and predicates all run — never a panic.
func FuzzReadDiff(f *testing.F) {
	srv := whodunit.NewServer(serveApp(7), whodunit.ServeConfig{
		Window: 100 * whodunit.Millisecond, Threshold: -1, MaxWindows: 2,
	})
	srv.Run()
	a, oka := srv.Ring().Get(0)
	b, okb := srv.Ring().Get(1)
	if !oka || !okb {
		f.Fatal("windows not retained")
	}
	var buf bytes.Buffer
	if err := whodunit.Diff(a.V.Report, b.V.Report).JSON(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	for _, cut := range []int{1, len(valid) / 3, len(valid) - 2} {
		f.Add(valid[:cut])
	}
	f.Add([]byte("{}"))
	f.Add([]byte("null"))
	f.Add([]byte(`{"stages": [{"stage": "s", "contexts": null}]}`))
	f.Add([]byte(`{"window_a": {"seq": 1}, "window_b": null}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := whodunit.ReadDiff(bytes.NewReader(data))
		if err != nil {
			return
		}
		d.Text(io.Discard)
		if err := d.JSON(io.Discard); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		_ = d.Empty()
		_ = d.MaxDelta()
		_ = d.Exceeds(0)
		m := d.Mirrored()
		m.Text(io.Discard)
	})
}
