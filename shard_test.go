package whodunit_test

import (
	"bytes"
	"testing"

	"whodunit"
)

// buildEcho runs a shard-agnostic two-tier echo model — clients and a
// front stage on shard 1, a back stage on shard 0, requests and replies
// crossing domains over 1ms pipes — and returns its report. Written
// against the modulo placement contract, the same code runs collapsed
// (shards=1) or sharded (shards>=2) unchanged.
func buildEcho(t *testing.T, shards int) *whodunit.Report {
	t.Helper()
	app := whodunit.NewApp("echo", whodunit.WithSeed(7), whodunit.WithShards(shards))
	const clients, rounds, workers = 6, 8, 2

	back := app.Stage("back", whodunit.StageCPU(1)) // shard 0
	backQ := app.NewQueueOn(0, "back-in")

	front := app.Stage("front", whodunit.StageCPU(2), whodunit.StageShard(1))
	frontQ := app.NewQueueOn(1, "front-in")

	type req struct {
		id     int
		replyQ *whodunit.Queue // same-domain reply (front -> client)
		back   *whodunit.Pipe  // cross-domain reply (back -> front worker)
	}

	toBack := app.Pipe(1, backQ, whodunit.Millisecond)
	for w := 0; w < workers; w++ {
		replyQ := app.NewQueueOn(1, "front-reply")
		fromBack := app.Pipe(0, replyQ, whodunit.Millisecond)
		front.Go("front-worker", func(th *whodunit.Thread, pr *whodunit.Probe) {
			for {
				r := frontQ.Get(th).(*req)
				front.BeginTxn(pr, "serve")
				pr.Compute(200 * whodunit.Microsecond)
				r.back = fromBack
				toBack.Send(r)
				r = replyQ.Get(th).(*req)
				pr.Compute(100 * whodunit.Microsecond)
				r.replyQ.Put(r)
			}
		})
	}
	back.Go("back-worker", func(th *whodunit.Thread, pr *whodunit.Probe) {
		for {
			r := backQ.Get(th).(*req)
			back.BeginTxn(pr, "lookup")
			pr.Compute(300 * whodunit.Microsecond)
			r.back.Send(r)
		}
	})
	for c := 0; c < clients; c++ {
		c := c
		app.GoShard(1, "client", func(th *whodunit.Thread) {
			replyQ := app.NewQueueOn(1, "client-reply")
			r := &req{id: c, replyQ: replyQ}
			for i := 0; i < rounds; i++ {
				th.Sleep(whodunit.Duration(c+1) * whodunit.Millisecond)
				frontQ.Put(r)
				replyQ.Get(th)
			}
		})
	}
	return app.Run()
}

// TestShardedEchoIdentity pins the App-layer tentpole invariant: the
// same model produces byte-identical reports at every shard count.
func TestShardedEchoIdentity(t *testing.T) {
	var base bytes.Buffer
	serial := buildEcho(t, 1)
	if err := serial.JSON(&base); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 3, 4} {
		rep := buildEcho(t, shards)
		if d := whodunit.Diff(serial, rep); !d.Empty() {
			t.Fatalf("shards=%d: diff vs serial not empty (max delta %d)", shards, d.MaxDelta())
		}
		var buf bytes.Buffer
		if err := rep.JSON(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(base.Bytes(), buf.Bytes()) {
			t.Fatalf("shards=%d: JSON differs from serial", shards)
		}
	}
}

// TestWithShardsCollapse: the cross-cutting machinery that reads state
// across the whole app from one scheduler forces the documented serial
// fallback.
func TestWithShardsCollapse(t *testing.T) {
	if got := whodunit.NewApp("w", whodunit.WithShards(4), whodunit.WithWindow(whodunit.Second)).Shards(); got != 1 {
		t.Errorf("WithWindow: Shards() = %d, want 1", got)
	}
	if got := whodunit.NewApp("x", whodunit.WithShards(4), whodunit.WithCrosstalk(func(whodunit.TxnCtxt) string { return "t" })).Shards(); got != 1 {
		t.Errorf("WithCrosstalk: Shards() = %d, want 1", got)
	}
	if got := whodunit.NewApp("f", whodunit.WithShards(4), whodunit.WithFlowDetection()).Shards(); got != 1 {
		t.Errorf("WithFlowDetection: Shards() = %d, want 1", got)
	}
	plan := &whodunit.FaultPlan{Stalls: []whodunit.Stall{{At: whodunit.Time(whodunit.Second), For: whodunit.Millisecond}}}
	if got := whodunit.NewApp("p", whodunit.WithShards(4), whodunit.WithFaults(plan)).Shards(); got != 1 {
		t.Errorf("WithFaults: Shards() = %d, want 1", got)
	}
	app := whodunit.NewApp("s", whodunit.WithShards(4))
	if got := app.Shards(); got != 4 {
		t.Fatalf("Shards() = %d, want 4", got)
	}
	app.SetFaults(plan)
	if got := app.Shards(); got != 1 {
		t.Errorf("SetFaults: Shards() = %d, want 1", got)
	}
}

// TestStageShardNeedsPrivateCPU: a stage off shard 0 cannot charge the
// shared CPU (it lives on domain 0).
func TestStageShardNeedsPrivateCPU(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("StageShard without StageCPU did not panic")
		}
	}()
	app := whodunit.NewApp("bad", whodunit.WithShards(2))
	app.Stage("tier", whodunit.StageShard(1))
}

// TestZeroLatencyPipeFallback: a zero-latency pipe collapses the app to
// one domain while nothing is placed off shard 0, and panics once
// something is.
func TestZeroLatencyPipeFallback(t *testing.T) {
	app := whodunit.NewApp("z", whodunit.WithShards(4))
	q := app.NewQueue("q")
	app.Pipe(0, q, 0)
	if got := app.Shards(); got != 1 {
		t.Fatalf("Shards() = %d after zero-latency pipe, want 1", got)
	}
	// Placement after the collapse folds to domain 0.
	app.Stage("tier", whodunit.StageShard(3), whodunit.StageCPU(1))

	app2 := whodunit.NewApp("z2", whodunit.WithShards(4))
	q2 := app2.NewQueueOn(2, "q2")
	defer func() {
		if recover() == nil {
			t.Fatal("zero-latency pipe after off-zero placement did not panic")
		}
	}()
	app2.Pipe(0, q2, 0)
}
