// Command whodunit-bench regenerates every table and figure of the
// paper's evaluation (§8, §9). Run with -quick for a fast, reduced-scale
// pass (the same scale the test suite uses) or without flags for the
// full paper-scale sweep. -mode switches the case-study figures
// (fig8/fig9/fig10) to a different profiling mode for baseline
// comparisons.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"whodunit/internal/cmdutil"
	"whodunit/internal/experiments"
)

var experimentNames = []string{
	"validate", "fig8", "fig9", "fig10", "table1", "fig11", "fig12", "table2", "table3", "overheads",
}

func main() {
	quick := flag.Bool("quick", false, "reduced-scale run")
	only := flag.String("only", "", "run a single experiment: "+strings.Join(experimentNames, "|"))
	mode := cmdutil.ModeFlag()
	flag.Parse()

	if *only != "" {
		known := false
		for _, n := range experimentNames {
			if *only == n {
				known = true
				break
			}
		}
		if !known {
			fmt.Fprintf(os.Stderr, "whodunit-bench: unknown experiment %q (want %s)\n",
				*only, strings.Join(experimentNames, "|"))
			os.Exit(2)
		}
	}

	sc := experiments.FullScale
	tp := experiments.FullTPCW
	if *quick {
		sc = experiments.QuickScale
		tp = experiments.QuickTPCW
	}

	w := os.Stdout
	run := func(name string, fn func()) {
		if *only != "" && *only != name {
			return
		}
		fn()
		fmt.Fprintln(w)
	}

	run("validate", func() { experiments.FlowValidation().Render(w) })
	run("fig8", func() { experiments.Fig8Apache(sc, *mode).Render(w) })
	run("fig9", func() { experiments.Fig9Squid(sc, *mode).Render(w) })
	run("fig10", func() { experiments.Fig10Haboob(sc, *mode).Render(w) })
	run("table1", func() { experiments.Table1TPCW(tp).Render(w) })
	run("fig11", func() { experiments.Fig11ResponseTimes(tp).Render(w) })
	run("fig12", func() { experiments.Fig12Throughput(tp).Render(w) })
	run("table2", func() { experiments.Table2Overhead(tp).Render(w) })
	run("table3", func() { experiments.Table3Emulation().Render(w) })
	run("overheads", func() { experiments.ServerOverheads(sc).Render(w) })
}
