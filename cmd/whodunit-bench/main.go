// Command whodunit-bench regenerates every table and figure of the
// paper's evaluation (§8, §9). Run with -quick for a fast, reduced-scale
// pass (the same scale the test suite uses) or without flags for the
// full paper-scale sweep. -mode switches the case-study figures
// (fig8/fig9/fig10) to a different profiling mode for baseline
// comparisons. -cpuprofile/-memprofile capture pprof profiles of the
// bench run itself, for hunting the harness's own hot spots.
//
// Experiments (and the client-count sweeps inside them) run across
// GOMAXPROCS workers; every simulation draws from explicitly seeded RNG
// streams, so the output is identical to a serial run (-workers=1).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"whodunit/internal/cmdutil"
	"whodunit/internal/experiments"
)

// benchSnapshot is the -benchjson output: the run's wall-clock headline
// per experiment, for tracking the harness's performance trajectory
// across changes (BENCH_*.json files in the repo root).
type benchSnapshot struct {
	Schema       string           `json:"schema"`
	Quick        bool             `json:"quick"`
	Workers      int              `json:"workers"` // 0 = GOMAXPROCS
	GOMAXPROCS   int              `json:"gomaxprocs"`
	HostCPUs     int              `json:"host_cpus"`
	Experiments  []benchExpSnap   `json:"experiments"`
	Switch       *benchSwitchSnap `json:"switch,omitempty"`
	TotalSeconds float64          `json:"total_seconds"`
}

// benchSwitchSnap is the switchcost experiment's headline, carried in
// the snapshot so the scheduler's hand-off cost is tracked across
// changes alongside wall-clock times.
type benchSwitchSnap struct {
	CoroNsPerSwitch      float64 `json:"coro_ns_per_switch"`
	GoroutineNsPerSwitch float64 `json:"goroutine_ns_per_switch"`
	Ratio                float64 `json:"ratio"`
}

type benchExpSnap struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

var experimentNames = []string{
	"validate", "fig8", "fig9", "fig10", "table1", "fig11", "fig12", "table2", "table3", "overheads", "mesh", "megascale", "switchcost",
}

func main() { os.Exit(run()) }

func run() int {
	quick := flag.Bool("quick", false, "reduced-scale run")
	only := flag.String("only", "", "run a single experiment: "+strings.Join(experimentNames, "|"))
	workers := flag.Int("workers", 0, "max concurrent experiment runs (0 = GOMAXPROCS, 1 = serial)")
	benchjson := flag.String("benchjson", "", "write per-experiment wall-clock metrics to this JSON file")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (captured after the run) to this file")
	mode := cmdutil.ModeFlag()
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "whodunit-bench: unexpected arguments %q (configuration is flag-only)\n", flag.Args())
		return 2
	}
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "whodunit-bench: -workers must be >= 0 (got %d)\n", *workers)
		return 2
	}
	if *only != "" {
		known := false
		for _, n := range experimentNames {
			if *only == n {
				known = true
				break
			}
		}
		if !known {
			fmt.Fprintf(os.Stderr, "whodunit-bench: unknown experiment %q (want %s)\n",
				*only, strings.Join(experimentNames, "|"))
			return 2
		}
		// -mode only affects the case-study figures; an explicit -mode
		// combined with -only for any other experiment is a conflict (the
		// mode would silently do nothing), the same contract
		// whodunit-stitch enforces for its flag combinations.
		modeDependent := map[string]bool{"fig8": true, "fig9": true, "fig10": true}
		if !modeDependent[*only] {
			modeSet := false
			flag.Visit(func(f *flag.Flag) {
				if f.Name == "mode" {
					modeSet = true
				}
			})
			if modeSet {
				fmt.Fprintf(os.Stderr, "whodunit-bench: -mode has no effect on experiment %q (only fig8, fig9 and fig10 honor it)\n", *only)
				return 2
			}
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "whodunit-bench: cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "whodunit-bench: cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	sc := experiments.FullScale
	tp := experiments.FullTPCW
	mg := experiments.FullMega
	switchRounds := 2_000_000
	if *quick {
		sc = experiments.QuickScale
		tp = experiments.QuickTPCW
		mg = experiments.QuickMega
		switchRounds = 300_000
	}
	experiments.SetWorkers(*workers)

	// Written by the switchcost job's worker, read only after RunAll's
	// pool has joined (same discipline as the seconds slice).
	var switchResult *experiments.SwitchCostResult

	all := []experiments.Job{
		{Name: "validate", Run: func(w io.Writer) { experiments.FlowValidation().Render(w) }},
		{Name: "fig8", Run: func(w io.Writer) { experiments.Fig8Apache(sc, *mode).Render(w) }},
		{Name: "fig9", Run: func(w io.Writer) { experiments.Fig9Squid(sc, *mode).Render(w) }},
		{Name: "fig10", Run: func(w io.Writer) { experiments.Fig10Haboob(sc, *mode).Render(w) }},
		{Name: "table1", Run: func(w io.Writer) { experiments.Table1TPCW(tp).Render(w) }},
		{Name: "fig11", Run: func(w io.Writer) { experiments.Fig11ResponseTimes(tp).Render(w) }},
		{Name: "fig12", Run: func(w io.Writer) { experiments.Fig12Throughput(tp).Render(w) }},
		{Name: "table2", Run: func(w io.Writer) { experiments.Table2Overhead(tp).Render(w) }},
		{Name: "table3", Run: func(w io.Writer) { experiments.Table3Emulation().Render(w) }},
		{Name: "overheads", Run: func(w io.Writer) { experiments.ServerOverheads(sc).Render(w) }},
		{Name: "mesh", Run: func(w io.Writer) { experiments.MeshTraffic(sc).Render(w) }},
		{Name: "megascale", Run: func(w io.Writer) { experiments.MegaScale(mg).Render(w) }},
		{Name: "switchcost", Run: func(w io.Writer) {
			r := experiments.SwitchCost(switchRounds)
			switchResult = &r
			r.Render(w)
		}},
	}
	jobs := all[:0:0]
	for _, j := range all {
		if *only == "" || *only == j.Name {
			jobs = append(jobs, j)
		}
	}
	// Wrap each job with wall-clock capture; each element is written by
	// exactly one worker and read only after RunAll's pool has joined.
	seconds := make([]float64, len(jobs))
	for i := range jobs {
		inner := jobs[i].Run
		i := i
		jobs[i].Run = func(w io.Writer) {
			start := time.Now()
			inner(w)
			seconds[i] = time.Since(start).Seconds()
		}
	}
	start := time.Now()
	if err := experiments.RunAll(os.Stdout, jobs); err != nil {
		fmt.Fprintf(os.Stderr, "whodunit-bench: %v\n", err)
		return 1
	}
	if *benchjson != "" {
		snap := benchSnapshot{
			Schema:       "whodunit-bench/v1",
			Quick:        *quick,
			Workers:      *workers,
			GOMAXPROCS:   runtime.GOMAXPROCS(0),
			HostCPUs:     runtime.NumCPU(),
			TotalSeconds: time.Since(start).Seconds(),
		}
		for i, j := range jobs {
			snap.Experiments = append(snap.Experiments, benchExpSnap{Name: j.Name, Seconds: seconds[i]})
		}
		if switchResult != nil {
			snap.Switch = &benchSwitchSnap{
				CoroNsPerSwitch:      switchResult.Rows[0].NsPerSwitch,
				GoroutineNsPerSwitch: switchResult.Rows[1].NsPerSwitch,
				Ratio:                switchResult.Ratio,
			}
		}
		buf, err := json.MarshalIndent(snap, "", "  ")
		if err == nil {
			err = os.WriteFile(*benchjson, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "whodunit-bench: benchjson: %v\n", err)
			return 1
		}
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "whodunit-bench: memprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "whodunit-bench: memprofile: %v\n", err)
			return 1
		}
	}
	return 0
}
