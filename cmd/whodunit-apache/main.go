// Command whodunit-apache runs the Apache case study (§8.1, §9.2): the
// multithreaded listener/worker server whose fd-queue critical sections
// execute on the bundled machine emulator, with shared-memory transaction
// flow detected automatically.
package main

import (
	"flag"
	"fmt"
	"os"

	"whodunit/internal/apps/apacheweb"
	"whodunit/internal/profiler"
	"whodunit/internal/workload"
)

func main() {
	conns := flag.Int("conns", 1000, "connections in the web trace")
	workers := flag.Int("workers", 8, "worker threads")
	mode := flag.String("mode", "whodunit", "off|csprof|whodunit|gprof")
	flag.Parse()

	wcfg := workload.DefaultWebConfig()
	wcfg.NumConns = *conns
	cfg := apacheweb.DefaultConfig(workload.GenWeb(wcfg))
	cfg.Workers = *workers
	cfg.Mode = parseMode(*mode)

	res := apacheweb.Run(cfg)
	fmt.Printf("served %d connections, %d requests, %.2f MB in %v virtual (%.2f Mb/s)\n",
		res.Conns, res.Requests, float64(res.BytesSent)/1e6, res.Elapsed.Seconds(), res.ThroughputMbps)
	fmt.Printf("shared-memory flows detected: %d; emulation cycles: %d\n", len(res.Flows), res.EmulationCycles)
	fmt.Println("\ntransactional profile (merged):")
	m := res.Profiler.Merged()
	m.Render(os.Stdout, m.Total(), 0.5)
}

func parseMode(s string) profiler.Mode {
	switch s {
	case "off":
		return profiler.ModeOff
	case "csprof":
		return profiler.ModeSampling
	case "gprof":
		return profiler.ModeInstrumented
	default:
		return profiler.ModeWhodunit
	}
}
