// Command whodunit-apache runs the Apache case study (§8.1, §9.2): the
// multithreaded listener/worker server whose fd-queue critical sections
// execute on the bundled machine emulator, with shared-memory transaction
// flow detected automatically.
package main

import (
	"flag"
	"fmt"
	"os"

	"whodunit/internal/apps/apacheweb"
	"whodunit/internal/cmdutil"
	"whodunit/internal/workload"
)

func main() {
	conns := flag.Int("conns", 1000, "connections in the web trace")
	workers := flag.Int("workers", 8, "worker threads")
	mode := cmdutil.ModeFlag()
	jsonOut := cmdutil.JSONFlag()
	flag.Parse()

	wcfg := workload.DefaultWebConfig()
	wcfg.NumConns = *conns
	cfg := apacheweb.DefaultConfig(workload.GenWeb(wcfg))
	cfg.Workers = *workers
	cfg.Mode = *mode

	res := apacheweb.Run(cfg)
	report := res.Report // App.Run already assembled the unified report
	if *jsonOut {
		cmdutil.EmitJSON("whodunit-apache", report)
		return
	}

	fmt.Printf("served %d connections, %d requests, %.2f MB at %.2f Mb/s; emulation cycles: %d\n\n",
		res.Conns, res.Requests, float64(res.BytesSent)/1e6, res.ThroughputMbps, res.EmulationCycles)
	report.Text(os.Stdout)
	fmt.Println("\ntransactional profile (merged):")
	m := res.Profiler.Merged()
	m.Render(os.Stdout, m.Total(), 0.5)
}
