// Command whodunit-mesh runs the microservice-mesh KV model: a frontend
// → rpc-proxy → sharded KV/cache → DB topology (-deep interposes edge,
// cache and db proxy hops for a 7-tier chain) replaying a deterministic
// generated trace, reporting per-op latency, cache behavior, shard
// balance and the mesh-wide stitched transaction graph.
//
//	whodunit-mesh                          # 4-shard standard topology, cache trace
//	whodunit-mesh -deep -workload metakv   # 7-tier chain under the bursty meta-KV mix
//	whodunit-mesh -trace t.jsonl           # replay a recorded trace file
//	whodunit-mesh -write-trace t.jsonl     # write the generated trace, then replay it
//	whodunit-mesh -json > mesh.json        # report JSON (whodunit-diff input)
//	whodunit-mesh -dot | dot -Tsvg         # stitched transaction graph
package main

import (
	"flag"
	"fmt"
	"os"

	"whodunit/internal/apps/meshkv"
	"whodunit/internal/cmdutil"
	"whodunit/internal/trace"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "whodunit-mesh: "+format+"\n", args...)
	os.Exit(2)
}

func main() {
	deep := flag.Bool("deep", false, "use the deep 7-tier proxy-chain topology")
	shards := flag.Int("shards", 4, "KV/cache shards on the consistent-hash ring")
	events := flag.Int("events", 2000, "trace events to generate (ignored with -trace)")
	seed := flag.Uint64("seed", 1, "trace and scheduling seed")
	workload := flag.String("workload", "cache", "generated trace shape: cache|metakv (ignored with -trace)")
	traceIn := flag.String("trace", "", "replay this trace file instead of generating one")
	traceOut := flag.String("write-trace", "", "write the generated trace to this file before replaying")
	mode := cmdutil.ModeFlag()
	jsonOut := cmdutil.JSONFlag()
	dot := flag.Bool("dot", false, "emit the stitched graph as Graphviz dot")
	flag.Parse()

	if flag.NArg() > 0 {
		fail("unexpected arguments %q (configuration is flag-only)", flag.Args())
	}
	if *shards < 1 {
		fail("-shards must be at least 1 (got %d)", *shards)
	}
	if *events < 1 {
		fail("-events must be at least 1 (got %d)", *events)
	}
	if *traceIn != "" && *traceOut != "" {
		fail("-trace and -write-trace conflict: replaying a file generates nothing to write")
	}

	var tr *trace.Trace
	if *traceIn != "" {
		f, err := os.Open(*traceIn)
		if err != nil {
			fail("%v", err)
		}
		tr, err = trace.Read(f)
		f.Close()
		if err != nil {
			fail("%s: %v", *traceIn, err)
		}
		if tr.Lost > 0 {
			fmt.Fprintf(os.Stderr, "whodunit-mesh: %s: salvaged %d events (%d lost)\n",
				*traceIn, len(tr.Events), tr.Lost)
		}
		if len(tr.Events) == 0 {
			fail("%s: no replayable events", *traceIn)
		}
	} else {
		var gcfg trace.GenConfig
		switch *workload {
		case "cache":
			gcfg = trace.CacheTrace()
		case "metakv":
			gcfg = trace.MetaKV()
		default:
			fail("unknown workload %q (want cache or metakv)", *workload)
		}
		gcfg.Seed = *seed
		gcfg.Events = *events
		tr = trace.Gen(gcfg)
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fail("%v", err)
			}
			if err := trace.Write(f, tr); err != nil {
				fail("%s: %v", *traceOut, err)
			}
			if err := f.Close(); err != nil {
				fail("%s: %v", *traceOut, err)
			}
		}
	}

	cfg := meshkv.DefaultConfig(tr)
	cfg.Deep = *deep
	cfg.Shards = *shards
	cfg.Seed = *seed
	cfg.Mode = *mode

	res := meshkv.Run(cfg)
	switch {
	case *jsonOut:
		cmdutil.EmitJSON("whodunit-mesh", res.Report)
		return
	case *dot:
		res.Report.DOT(os.Stdout)
		return
	}

	topology := "standard (frontend → rpc-proxy → kv → db)"
	if *deep {
		topology = "deep (frontend → edge-proxy → rpc-proxy → cache-proxy → kv → db-proxy → db)"
	}
	fmt.Printf("topology %s, %d shards\n", topology, cfg.Shards)
	fmt.Printf("replayed %d events in %v virtual: %.0f req/s, %.1f%% cache hits\n",
		res.Completed, res.Elapsed.Seconds(), res.ThroughputRPS, 100*res.HitRate())
	fmt.Printf("gets %d (mean %.2f ms), sets %d (mean %.2f ms)\n",
		res.Gets.Count, res.Gets.MeanLatency().Seconds()*1e3,
		res.Sets.Count, res.Sets.MeanLatency().Seconds()*1e3)
	fmt.Printf("shard load:")
	for i, n := range res.ShardLoad {
		fmt.Printf(" kv-%d=%d", i, n)
	}
	fmt.Printf("\n\n")
	res.Report.Text(os.Stdout)
}
