// Command whodunit-stitch performs the post-mortem presentation phase
// (§7.1, Figure 7) as a standalone tool: it reads per-stage profile dumps
// (JSON files written with StageDump.Encode, one per stage) and assembles
// them into a unified Report whose transaction graph spans every stage,
// printed as text, Graphviz dot, or the Report's own JSON form.
//
//	whodunit-stitch web.json app.json db.json
//	whodunit-stitch -dot web.json app.json db.json > graph.dot
//	whodunit-stitch -json web.json app.json db.json > report.json
//	whodunit-stitch -folded web.json app.json db.json | flamegraph.pl > flame.svg
//
// With -diff the dump list is split on a "--" separator into two runs'
// dumps; each side is stitched into a Report and the structural diff
// between them is printed (text, or diff JSON with -json, or
// difffolded two-column stacks with -folded), with the same -threshold
// exit gating as whodunit-diff:
//
//	whodunit-stitch -diff before-web.json before-db.json -- after-web.json after-db.json
package main

import (
	"flag"
	"fmt"
	"os"

	"whodunit"
	"whodunit/internal/cmdutil"
)

func readDumps(paths []string) []whodunit.StageDump {
	var dumps []whodunit.StageDump
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "whodunit-stitch: %v\n", err)
			os.Exit(1)
		}
		d, err := whodunit.ReadStageDump(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "whodunit-stitch: %s: %v\n", path, err)
			os.Exit(1)
		}
		// JSON decoding ignores unknown fields, so a non-dump file (e.g. a
		// whole Report written with -json) decodes to an empty dump; catch
		// that instead of emitting an empty report.
		if d.Stage == "" {
			fmt.Fprintf(os.Stderr, "whodunit-stitch: %s: not a stage dump (no stage name; "+
				"expected a file written with StageDump.Encode)\n", path)
			os.Exit(1)
		}
		dumps = append(dumps, d)
	}
	return dumps
}

func main() {
	dot := flag.Bool("dot", false, "emit Graphviz dot instead of text")
	folded := flag.Bool("folded", false, "emit folded stacks (flamegraph.pl input) instead of text")
	diff := flag.Bool("diff", false, "split dumps on -- into two runs, stitch each, and diff the reports")
	threshold := flag.Int64("threshold", -1, "with -diff: exit 1 if the largest delta exceeds this (-1 disables)")
	jsonOut := cmdutil.JSONFlag()
	name := flag.String("name", "stitched", "application name for the report")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: whodunit-stitch [-dot|-json|-folded] [-name app] stage1.json stage2.json ...")
		fmt.Fprintln(os.Stderr, "       whodunit-stitch -diff [-threshold N] [-json|-folded] a1.json a2.json ... -- b1.json b2.json ...")
		os.Exit(2)
	}

	// Mode/flag combinations that would silently do the wrong thing are
	// errors: a -threshold without -diff would never gate, and -dot has
	// no diff rendering.
	if !*diff && *threshold >= 0 {
		fmt.Fprintln(os.Stderr, "whodunit-stitch: -threshold only gates with -diff")
		os.Exit(2)
	}
	if *diff && *dot {
		fmt.Fprintln(os.Stderr, "whodunit-stitch: -dot has no diff form (use text, -json or -folded with -diff)")
		os.Exit(2)
	}

	if *diff {
		args := flag.Args()
		sep := -1
		for i, a := range args {
			if a == "--" {
				sep = i
				break
			}
		}
		if sep <= 0 || sep == len(args)-1 {
			fmt.Fprintln(os.Stderr, "whodunit-stitch: -diff needs two dump lists separated by -- (both non-empty)")
			os.Exit(2)
		}
		a := whodunit.ReportFromDumps(*name, readDumps(args[:sep])...)
		b := whodunit.ReportFromDumps(*name, readDumps(args[sep+1:])...)
		d := whodunit.Diff(a, b)
		switch {
		case *folded:
			whodunit.FoldedDiff(a, b, os.Stdout)
		case *jsonOut:
			if err := d.JSON(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "whodunit-stitch: %v\n", err)
				os.Exit(1)
			}
		default:
			d.Text(os.Stdout)
		}
		if *threshold >= 0 && d.Exceeds(*threshold) {
			fmt.Fprintf(os.Stderr, "whodunit-stitch: max delta %d exceeds threshold %d\n", d.MaxDelta(), *threshold)
			os.Exit(1)
		}
		return
	}

	report := whodunit.ReportFromDumps(*name, readDumps(flag.Args())...)
	switch {
	case *jsonOut:
		cmdutil.EmitJSON("whodunit-stitch", report)
	case *dot:
		report.DOT(os.Stdout)
	case *folded:
		report.Folded(os.Stdout)
	default:
		report.Text(os.Stdout)
	}
}
