// Command whodunit-stitch performs the post-mortem presentation phase
// (§7.1, Figure 7) as a standalone tool: it reads per-stage profile dumps
// (JSON files written with StageDump.Encode, one per stage) and assembles
// them into a unified Report whose transaction graph spans every stage,
// printed as text, Graphviz dot, or the Report's own JSON form.
//
//	whodunit-stitch web.json app.json db.json
//	whodunit-stitch -dot web.json app.json db.json > graph.dot
//	whodunit-stitch -json web.json app.json db.json > report.json
//	whodunit-stitch -folded web.json app.json db.json | flamegraph.pl > flame.svg
package main

import (
	"flag"
	"fmt"
	"os"

	"whodunit"
	"whodunit/internal/cmdutil"
)

func main() {
	dot := flag.Bool("dot", false, "emit Graphviz dot instead of text")
	folded := flag.Bool("folded", false, "emit folded stacks (flamegraph.pl input) instead of text")
	jsonOut := cmdutil.JSONFlag()
	name := flag.String("name", "stitched", "application name for the report")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: whodunit-stitch [-dot|-json|-folded] [-name app] stage1.json stage2.json ...")
		os.Exit(2)
	}
	var dumps []whodunit.StageDump
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "whodunit-stitch: %v\n", err)
			os.Exit(1)
		}
		d, err := whodunit.ReadStageDump(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "whodunit-stitch: %s: %v\n", path, err)
			os.Exit(1)
		}
		// JSON decoding ignores unknown fields, so a non-dump file (e.g. a
		// whole Report written with -json) decodes to an empty dump; catch
		// that instead of emitting an empty report.
		if d.Stage == "" {
			fmt.Fprintf(os.Stderr, "whodunit-stitch: %s: not a stage dump (no stage name; "+
				"expected a file written with StageDump.Encode)\n", path)
			os.Exit(1)
		}
		dumps = append(dumps, d)
	}
	report := whodunit.ReportFromDumps(*name, dumps...)
	switch {
	case *jsonOut:
		cmdutil.EmitJSON("whodunit-stitch", report)
	case *dot:
		report.DOT(os.Stdout)
	case *folded:
		report.Folded(os.Stdout)
	default:
		report.Text(os.Stdout)
	}
}
