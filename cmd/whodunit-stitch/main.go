// Command whodunit-stitch performs the post-mortem presentation phase
// (§7.1, Figure 7) as a standalone tool: it reads per-stage profile dumps
// (JSON files written with StageDump.Encode, one per stage) and stitches
// them into the global transaction graph, printed as text or Graphviz dot.
//
//	whodunit-stitch web.json app.json db.json
//	whodunit-stitch -dot web.json app.json db.json > graph.dot
package main

import (
	"flag"
	"fmt"
	"os"

	"whodunit/internal/stitch"
)

func main() {
	dot := flag.Bool("dot", false, "emit Graphviz dot instead of text")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: whodunit-stitch [-dot] stage1.json stage2.json ...")
		os.Exit(2)
	}
	var dumps []stitch.StageDump
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "whodunit-stitch: %v\n", err)
			os.Exit(1)
		}
		d, err := stitch.DecodeDump(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "whodunit-stitch: %s: %v\n", path, err)
			os.Exit(1)
		}
		dumps = append(dumps, d)
	}
	g := stitch.Build(dumps)
	if *dot {
		g.DOT(os.Stdout)
	} else {
		g.Render(os.Stdout)
	}
}
