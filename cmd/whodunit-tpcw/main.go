// Command whodunit-tpcw runs the TPC-W case study (§8.4, §9.1): the
// three-tier bookstore under the browsing mix, reporting per-interaction
// MySQL CPU shares, crosstalk waits, response times and throughput, plus
// the three-tier transaction graph stitched across Squid, Tomcat and
// MySQL.
package main

import (
	"flag"
	"fmt"
	"os"

	"whodunit/internal/apps/tpcw"
	"whodunit/internal/cmdutil"
	"whodunit/internal/minidb"
	"whodunit/internal/vclock"
	"whodunit/internal/workload"
)

func main() {
	clients := flag.Int("clients", 100, "concurrent emulated clients")
	minutes := flag.Int("minutes", 3, "virtual run length")
	innodb := flag.Bool("innodb", false, "use InnoDB (row locks) for the item table")
	caching := flag.Bool("caching", false, "enable servlet result caching")
	mode := cmdutil.ModeFlag()
	jsonOut := cmdutil.JSONFlag()
	dot := flag.Bool("dot", false, "emit the stitched graph as Graphviz dot")
	flag.Parse()

	cfg := tpcw.DefaultConfig(*clients)
	cfg.Duration = vclock.Duration(*minutes) * vclock.Minute
	cfg.ServletCaching = *caching
	if *innodb {
		cfg.ItemEngine = minidb.EngineInnoDB
	}
	cfg.Mode = *mode

	res := tpcw.Run(cfg)
	report := res.Report // App.Run already assembled the three-tier report
	switch {
	case *jsonOut:
		cmdutil.EmitJSON("whodunit-tpcw", report)
		return
	case *dot:
		report.DOT(os.Stdout)
		return
	}

	fmt.Printf("completed %d interactions in %v virtual: %.0f interactions/min\n",
		res.Completed, res.Elapsed.Seconds(), res.ThroughputPerMin)
	fmt.Printf("synopsis bytes %.3f MB vs app bytes %.1f MB (%.2f%%)\n\n",
		float64(res.CtxtBytes)/1e6, float64(res.AppBytes)/1e6,
		100*float64(res.CtxtBytes)/float64(res.AppBytes))

	fmt.Printf("%-24s %8s %12s %14s %14s\n", "interaction", "count", "resp (ms)", "MySQL CPU %", "crosstalk (ms)")
	for _, name := range workload.Interactions {
		st := res.PerType[name]
		fmt.Printf("%-24s %8d %12.0f %14.2f %14.2f\n",
			name, st.Count, st.Mean().Millis(), 100*res.DBShare[name], res.MeanCrosstalk[name].Millis())
	}
	fmt.Println()
	report.Text(os.Stdout)
}
