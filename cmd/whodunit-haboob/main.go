// Command whodunit-haboob runs the Haboob case study (§8.3, §9.3): the
// SEDA web server whose WriteStage splits between the cache-hit and
// cache-miss stage paths.
package main

import (
	"flag"
	"fmt"

	"whodunit/internal/apps/haboob"
	"whodunit/internal/workload"
)

func main() {
	conns := flag.Int("conns", 800, "connections in the web trace")
	threads := flag.Int("threads", 2, "threads per stage")
	flag.Parse()

	wcfg := workload.DefaultWebConfig()
	wcfg.NumConns = *conns
	cfg := haboob.DefaultConfig(workload.GenWeb(wcfg))
	cfg.ThreadsPerStage = *threads

	res := haboob.Run(cfg)
	fmt.Printf("served %d requests (%d hits, %d misses) in %v virtual (%.2f Mb/s)\n",
		res.Requests, res.Hits, res.Misses, res.Elapsed.Seconds(), res.ThroughputMbps)
	fmt.Println("\nper-context CPU shares (stage sequences):")
	for _, sh := range res.Profiler.Shares() {
		if sh.Samples > 0 {
			fmt.Printf("  %6.2f%%  %s\n", 100*sh.Share, sh.Label)
		}
	}
}
