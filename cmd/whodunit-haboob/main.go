// Command whodunit-haboob runs the Haboob case study (§8.3, §9.3): the
// SEDA web server whose WriteStage splits between the cache-hit and
// cache-miss stage paths.
package main

import (
	"flag"
	"fmt"
	"os"

	"whodunit/internal/apps/haboob"
	"whodunit/internal/cmdutil"
	"whodunit/internal/workload"
)

func main() {
	conns := flag.Int("conns", 800, "connections in the web trace")
	threads := flag.Int("threads", 2, "threads per stage")
	mode := cmdutil.ModeFlag()
	jsonOut := cmdutil.JSONFlag()
	flag.Parse()

	wcfg := workload.DefaultWebConfig()
	wcfg.NumConns = *conns
	cfg := haboob.DefaultConfig(workload.GenWeb(wcfg))
	cfg.ThreadsPerStage = *threads
	cfg.Mode = *mode

	res := haboob.Run(cfg)
	report := res.Report // App.Run already assembled the unified report
	if *jsonOut {
		cmdutil.EmitJSON("whodunit-haboob", report)
		return
	}

	fmt.Printf("served %d requests (%d hits, %d misses) in %v virtual (%.2f Mb/s)\n\n",
		res.Requests, res.Hits, res.Misses, res.Elapsed.Seconds(), res.ThroughputMbps)
	report.Text(os.Stdout)
}
