// Command whodunit-squid runs the Squid case study (§8.2, §9.3): the
// event-driven proxy cache whose write handler splits between cache-hit
// and cache-miss transaction contexts.
package main

import (
	"flag"
	"fmt"

	"whodunit/internal/apps/squidproxy"
	"whodunit/internal/workload"
)

func main() {
	conns := flag.Int("conns", 1000, "connections in the web trace")
	cacheObjs := flag.Int("cache", 400, "LRU cache capacity (objects)")
	flag.Parse()

	wcfg := workload.DefaultWebConfig()
	wcfg.NumConns = *conns
	cfg := squidproxy.DefaultConfig(workload.GenWeb(wcfg))
	cfg.CacheObjects = *cacheObjs

	res := squidproxy.Run(cfg)
	fmt.Printf("served %d requests (%d hits, %d misses) in %v virtual (%.2f Mb/s)\n",
		res.Requests, res.Hits, res.Misses, res.Elapsed.Seconds(), res.ThroughputMbps)
	fmt.Println("\nper-context CPU shares (event-handler sequences):")
	for _, sh := range res.Profiler.Shares() {
		if sh.Samples > 0 {
			fmt.Printf("  %6.2f%%  %s\n", 100*sh.Share, sh.Label)
		}
	}
}
