// Command whodunit-squid runs the Squid case study (§8.2, §9.3): the
// event-driven proxy cache whose write handler splits between cache-hit
// and cache-miss transaction contexts.
package main

import (
	"flag"
	"fmt"
	"os"

	"whodunit/internal/apps/squidproxy"
	"whodunit/internal/cmdutil"
	"whodunit/internal/workload"
)

func main() {
	conns := flag.Int("conns", 1000, "connections in the web trace")
	cacheObjs := flag.Int("cache", 400, "LRU cache capacity (objects)")
	mode := cmdutil.ModeFlag()
	jsonOut := cmdutil.JSONFlag()
	flag.Parse()

	wcfg := workload.DefaultWebConfig()
	wcfg.NumConns = *conns
	cfg := squidproxy.DefaultConfig(workload.GenWeb(wcfg))
	cfg.CacheObjects = *cacheObjs
	cfg.Mode = *mode

	res := squidproxy.Run(cfg)
	report := res.Report // App.Run already assembled the unified report
	if *jsonOut {
		cmdutil.EmitJSON("whodunit-squid", report)
		return
	}

	fmt.Printf("served %d requests (%d hits, %d misses) in %v virtual (%.2f Mb/s)\n\n",
		res.Requests, res.Hits, res.Misses, res.Elapsed.Seconds(), res.ThroughputMbps)
	report.Text(os.Stdout)
}
