package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"whodunit"
	"whodunit/internal/scenarios"
)

// writeReportFile runs a corpus scenario and writes its JSON report to
// a temp file, returning the path.
func writeReportFile(t *testing.T, spec string) string {
	t.Helper()
	s, err := scenarios.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Report().JSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), strings.ReplaceAll(spec, ":", "_")+".json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestExitCodes pins the tool's status contract: 0 when the diff is
// within bounds (or ungated), 1 when -threshold is exceeded, 2 on
// usage and IO errors.
func TestExitCodes(t *testing.T) {
	a := writeReportFile(t, "quickstart")
	b := writeReportFile(t, "quickstart:seed=9")

	cases := []struct {
		name   string
		args   []string
		status int
		errHas string
	}{
		{"identical ungated", []string{a, a}, 0, ""},
		{"identical gated", []string{"-threshold", "0", a, a}, 0, ""},
		{"divergent ungated", []string{a, b}, 0, ""},
		{"divergent over threshold", []string{"-threshold", "0", a, b}, 1, "exceeds threshold"},
		{"divergent under huge threshold", []string{"-threshold", "99999999", a, b}, 0, ""},
		{"run specs over threshold", []string{"-threshold", "0", "-run", "quickstart", "-run", "quickstart:seed=9"}, 1, "exceeds threshold"},
		{"no arguments", []string{}, 2, "usage:"},
		{"one file", []string{a}, 2, "usage:"},
		{"mixed run and file", []string{"-run", "quickstart", a}, 2, "usage:"},
		{"missing file", []string{a, filepath.Join(t.TempDir(), "nope.json")}, 2, "no such file"},
		{"bad run spec", []string{"-run", "quickstart", "-run", "nope"}, 2, "unknown scenario"},
		{"bad flag", []string{"-bogus"}, 2, ""},
		{"list", []string{"-list"}, 0, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(tc.args, &stdout, &stderr); got != tc.status {
				t.Fatalf("run(%v) = %d, want %d\nstderr: %s", tc.args, got, tc.status, stderr.String())
			}
			if tc.errHas != "" && !strings.Contains(stderr.String(), tc.errHas) {
				t.Fatalf("stderr %q does not mention %q", stderr.String(), tc.errHas)
			}
		})
	}
}

// TestDiffOutputFormats smoke-checks the three output forms through the
// run seam.
func TestDiffOutputFormats(t *testing.T) {
	a := writeReportFile(t, "quickstart")
	b := writeReportFile(t, "quickstart:seed=9")

	var stdout, stderr bytes.Buffer
	if got := run([]string{a, b}, &stdout, &stderr); got != 0 {
		t.Fatalf("text diff: status %d, stderr %s", got, stderr.String())
	}
	if !strings.Contains(stdout.String(), "whodunit diff") && stdout.Len() == 0 {
		t.Fatalf("text diff produced nothing")
	}

	stdout.Reset()
	if got := run([]string{"-json", a, b}, &stdout, &stderr); got != 0 {
		t.Fatalf("json diff: status %d", got)
	}
	if _, err := whodunit.ReadDiff(&stdout); err != nil {
		t.Fatalf("json diff output does not decode: %v", err)
	}

	stdout.Reset()
	if got := run([]string{"-folded", a, b}, &stdout, &stderr); got != 0 {
		t.Fatalf("folded diff: status %d", got)
	}
	for _, line := range strings.Split(strings.TrimSpace(stdout.String()), "\n") {
		if line == "" {
			continue
		}
		if len(strings.Fields(line)) < 3 {
			t.Fatalf("folded line %q lacks the two delta columns", line)
		}
	}
}
