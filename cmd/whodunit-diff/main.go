// Command whodunit-diff compares two Whodunit reports — the §9
// regression-hunting workflow ("run A vs run B, explain the delta") as
// a tool. The two sides are either report JSON files (written with
// -json by any whodunit command) or fresh runs of corpus scenarios
// named with -run specs:
//
//	whodunit-diff before.json after.json
//	whodunit-diff -run apache -run apache:seed=7
//	whodunit-diff -run tpcw -run tpcw:mode=csprof
//	whodunit-diff -json a.json b.json > delta.json
//	whodunit-diff -folded a.json b.json | flamegraph.pl --negate > diff.svg
//	whodunit-diff -threshold 0 a.json b.json   # CI gate: exit 1 on any delta
//
// A -run spec is scenario[:seed=N][,mode=off|csprof|whodunit|gprof]
// (see -list for the scenario corpus). With -threshold N the tool exits
// 1 when the diff's largest sample/count delta exceeds N; without it
// the exit status is always 0 and the diff is informational.
package main

import (
	"flag"
	"fmt"
	"os"

	"whodunit"
	"whodunit/internal/scenarios"
)

type runSpecs []string

func (r *runSpecs) String() string { return fmt.Sprint([]string(*r)) }
func (r *runSpecs) Set(s string) error {
	*r = append(*r, s)
	return nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "whodunit-diff: "+format+"\n", args...)
	os.Exit(2)
}

func loadReport(path string) *whodunit.Report {
	f, err := os.Open(path)
	if err != nil {
		fail("%v", err)
	}
	defer f.Close()
	rep, err := whodunit.ReadReport(f)
	if err != nil {
		fail("%s: %v", path, err)
	}
	if rep.App == "" && len(rep.Stages) == 0 {
		fail("%s: not a report (expected a file written with -json)", path)
	}
	return rep
}

func main() {
	var runs runSpecs
	flag.Var(&runs, "run", "scenario run spec (repeat twice): name[:seed=N][,mode=M]")
	threshold := flag.Int64("threshold", -1, "exit 1 if the largest sample/count delta exceeds this (-1 disables gating)")
	jsonOut := flag.Bool("json", false, "emit the diff as JSON instead of text")
	folded := flag.Bool("folded", false, "emit two-column folded stacks (difffolded format) for differential flame graphs")
	list := flag.Bool("list", false, "list the scenario corpus and exit")
	flag.Parse()

	if *list {
		for _, name := range scenarios.Names() {
			s, _ := scenarios.ByName(name)
			fmt.Printf("%-24s %s\n", s.Name, s.About)
		}
		return
	}

	var a, b *whodunit.Report
	switch {
	case len(runs) == 2 && flag.NArg() == 0:
		reps := make([]*whodunit.Report, 2)
		for i, spec := range runs {
			s, err := scenarios.ParseSpec(spec)
			if err != nil {
				fail("%v", err)
			}
			reps[i] = s.Report()
		}
		a, b = reps[0], reps[1]
	case len(runs) == 0 && flag.NArg() == 2:
		a, b = loadReport(flag.Arg(0)), loadReport(flag.Arg(1))
	default:
		fmt.Fprintln(os.Stderr, "usage: whodunit-diff [-threshold N] [-json|-folded] a.json b.json")
		fmt.Fprintln(os.Stderr, "       whodunit-diff [-threshold N] [-json|-folded] -run specA -run specB")
		fmt.Fprintln(os.Stderr, "       whodunit-diff -list")
		os.Exit(2)
	}

	d := whodunit.Diff(a, b)
	switch {
	case *folded:
		whodunit.FoldedDiff(a, b, os.Stdout)
	case *jsonOut:
		if err := d.JSON(os.Stdout); err != nil {
			fail("%v", err)
		}
	default:
		d.Text(os.Stdout)
	}
	if *threshold >= 0 && d.Exceeds(*threshold) {
		fmt.Fprintf(os.Stderr, "whodunit-diff: max delta %d exceeds threshold %d\n", d.MaxDelta(), *threshold)
		os.Exit(1)
	}
}
