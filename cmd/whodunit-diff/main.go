// Command whodunit-diff compares two Whodunit reports — the §9
// regression-hunting workflow ("run A vs run B, explain the delta") as
// a tool. The two sides are either report JSON files (written with
// -json by any whodunit command) or fresh runs of corpus scenarios
// named with -run specs:
//
//	whodunit-diff before.json after.json
//	whodunit-diff -run apache -run apache:seed=7
//	whodunit-diff -run tpcw -run tpcw:mode=csprof
//	whodunit-diff -json a.json b.json > delta.json
//	whodunit-diff -folded a.json b.json | flamegraph.pl --negate > diff.svg
//	whodunit-diff -threshold 0 a.json b.json   # CI gate: exit 1 on any delta
//
// A -run spec is scenario[:seed=N][,mode=off|csprof|whodunit|gprof]
// (see -list for the scenario corpus). Exit status is part of the
// contract: 0 means the diff is within bounds (or informational), 1
// means -threshold was set and the largest sample/count delta exceeds
// it, 2 means a usage or IO error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"whodunit"
	"whodunit/internal/scenarios"
)

type runSpecs []string

func (r *runSpecs) String() string { return fmt.Sprint([]string(*r)) }
func (r *runSpecs) Set(s string) error {
	*r = append(*r, s)
	return nil
}

// failure aborts run via panic; run recovers it into exit status 2.
type failure string

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is the whole tool behind a testable seam: it parses args on its
// own FlagSet, writes to the given streams, and returns the process
// exit status (0 in-bounds, 1 threshold exceeded, 2 usage/IO error).
func run(args []string, stdout, stderr io.Writer) (status int) {
	fail := func(format string, a ...any) {
		panic(failure(fmt.Sprintf("whodunit-diff: "+format, a...)))
	}
	defer func() {
		if r := recover(); r != nil {
			msg, ok := r.(failure)
			if !ok {
				panic(r)
			}
			fmt.Fprintln(stderr, string(msg))
			status = 2
		}
	}()

	fs := flag.NewFlagSet("whodunit-diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var runs runSpecs
	fs.Var(&runs, "run", "scenario run spec (repeat twice): name[:seed=N][,mode=M]")
	threshold := fs.Int64("threshold", -1, "exit 1 if the largest sample/count delta exceeds this (-1 disables gating)")
	jsonOut := fs.Bool("json", false, "emit the diff as JSON instead of text")
	folded := fs.Bool("folded", false, "emit two-column folded stacks (difffolded format) for differential flame graphs")
	list := fs.Bool("list", false, "list the scenario corpus and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		// The unified registry: batch scenarios run here via -run; the
		// serving corpus is listed so one -list shows everything, with a
		// pointer to the tool that runs it.
		for _, in := range scenarios.Index() {
			switch in.Kind {
			case scenarios.KindBatch:
				fmt.Fprintf(stdout, "%-24s %s\n", in.Name, in.About)
			case scenarios.KindServing:
				fmt.Fprintf(stdout, "%-24s [whodunit-serve] %s\n", in.Name, in.About)
			}
		}
		return 0
	}

	loadReport := func(path string) *whodunit.Report {
		f, err := os.Open(path)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		rep, err := whodunit.ReadReport(f)
		if err != nil {
			fail("%s: %v", path, err)
		}
		if rep.App == "" && len(rep.Stages) == 0 {
			fail("%s: not a report (expected a file written with -json)", path)
		}
		return rep
	}

	var a, b *whodunit.Report
	switch {
	case len(runs) == 2 && fs.NArg() == 0:
		reps := make([]*whodunit.Report, 2)
		for i, spec := range runs {
			s, err := scenarios.ParseSpec(spec)
			if err != nil {
				fail("%v", err)
			}
			reps[i] = s.Report()
		}
		a, b = reps[0], reps[1]
	case len(runs) == 0 && fs.NArg() == 2:
		a, b = loadReport(fs.Arg(0)), loadReport(fs.Arg(1))
	default:
		fmt.Fprintln(stderr, "usage: whodunit-diff [-threshold N] [-json|-folded] a.json b.json")
		fmt.Fprintln(stderr, "       whodunit-diff [-threshold N] [-json|-folded] -run specA -run specB")
		fmt.Fprintln(stderr, "       whodunit-diff -list")
		return 2
	}

	d := whodunit.Diff(a, b)
	switch {
	case *folded:
		whodunit.FoldedDiff(a, b, stdout)
	case *jsonOut:
		if err := d.JSON(stdout); err != nil {
			fail("%v", err)
		}
	default:
		d.Text(stdout)
	}
	if *threshold >= 0 && d.Exceeds(*threshold) {
		fmt.Fprintf(stderr, "whodunit-diff: max delta %d exceeds threshold %d\n", d.MaxDelta(), *threshold)
		return 1
	}
	return 0
}
