// Command whodunit-serve runs a serving scenario as a continuous
// profiling service: an open-loop app on the virtual clock, profiles
// aggregated into fixed virtual-time windows, adjacent windows
// auto-diffed against an alert threshold, all exposed over HTTP.
//
//	whodunit-serve -scenario serve-web                    # serve on 127.0.0.1:7077
//	curl localhost:7077/report?format=text                # latest retired window
//	curl localhost:7077/report?window=live                # the in-progress window
//	curl localhost:7077/windows                           # retained-window index
//	curl -N localhost:7077/stream                         # SSE feed of retiring windows
//	curl "localhost:7077/diff?a=3&b=4&format=text"        # diff two retained windows
//	whodunit-serve -scenario serve-shift -addr "" -windows 6   # headless bounded run
//	whodunit-serve -scenario serve-crashy -addr "" -windows 6 -pace 0   # supervised fault run
//
// Each retired window prints one line to stdout; windows whose
// adjacent diff exceeds the threshold print an ALERT line. Supervised
// scenarios (serve-crashy) rebuild a dying run through the scenario
// factory — windows retired while recovering are marked DEGRADED and
// the first full window after a restart prints a recovered line;
// -max-restarts bounds the rebuild budget and -watchdog aborts a run
// that stops retiring windows. The run stops after -windows windows
// (0 = run until SIGINT/SIGTERM); on a signal the simulation drains
// gracefully, retiring the in-progress window before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"whodunit"
	"whodunit/internal/cmdutil"
	"whodunit/internal/scenarios"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "whodunit-serve: "+format+"\n", args...)
	os.Exit(2)
}

func main() {
	scenario := flag.String("scenario", "serve-web", "serving scenario to run (see -list)")
	list := flag.Bool("list", false, "list serving scenarios and exit")
	addr := flag.String("addr", "127.0.0.1:7077", "HTTP listen address (empty = headless, no HTTP)")
	windowFlag := flag.Duration("window", 0, "aggregation window in virtual time (default: the scenario's recommended window)")
	retain := flag.Int("retain", 16, "retired windows kept queryable")
	threshold := flag.Int64("threshold", -2, "adjacent-window alert threshold in sample units; -1 disables (default: the scenario's recommended threshold)")
	maxWindows := flag.Int("windows", 0, "stop after this many retired windows (0 = run until signal)")
	pace := flag.Float64("pace", 1.0, "virtual seconds simulated per wall second (0 = free-run)")
	seed := flag.Uint64("seed", 0, "workload seed override (default: the scenario's seed)")
	maxRestarts := flag.Int("max-restarts", 3, "restart budget for supervised scenarios before giving up")
	watchdog := flag.Duration("watchdog", 0, "abort a run that retires no window for this much wall time (0 = off; supervised scenarios only)")
	mode := cmdutil.ModeFlag()
	flag.Parse()

	if *list {
		// Registry-sourced listing: serving scenarios with their serving
		// recommendations first, then the batch corpus with a pointer to
		// the tool that runs it.
		index := scenarios.Index()
		for _, in := range index {
			if in.Kind == scenarios.KindServing {
				fmt.Printf("%-14s window %s, threshold %d — %s\n",
					in.Name, time.Duration(in.Window), in.Threshold, in.About)
			}
		}
		for _, in := range index {
			if in.Kind == scenarios.KindBatch {
				fmt.Printf("%-14s [whodunit-diff -run] %s\n", in.Name, in.About)
			}
		}
		return
	}
	if flag.NArg() > 0 {
		fail("unexpected arguments %q (configuration is flag-only)", flag.Args())
	}
	s, ok := scenarios.ServeByName(*scenario)
	if !ok {
		if in, found := scenarios.Lookup(*scenario); found && in.Kind == scenarios.KindBatch {
			fail("%q is a batch scenario (run it with whodunit-diff -run %s)", *scenario, *scenario)
		}
		fail("unknown scenario %q (known: %s)", *scenario, strings.Join(scenarios.ServeNames(), ", "))
	}
	if *retain < 1 {
		fail("-retain must be at least 1 (got %d)", *retain)
	}
	if *maxWindows < 0 {
		fail("-windows must be >= 0 (got %d)", *maxWindows)
	}
	if *pace < 0 {
		fail("-pace must be >= 0 (got %v)", *pace)
	}
	if *windowFlag < 0 {
		fail("-window must be positive (got %v)", *windowFlag)
	}
	if *threshold < -2 {
		fail("-threshold must be >= -1 (got %d); -1 disables alerting", *threshold)
	}
	if *addr == "" && *maxWindows == 0 {
		fail("headless (-addr \"\") with -windows 0 would run forever with no way to observe it; set -windows or an -addr")
	}
	if *maxRestarts < 1 {
		fail("-max-restarts must be at least 1 (got %d)", *maxRestarts)
	}
	if *watchdog < 0 {
		fail("-watchdog must be >= 0 (got %v)", *watchdog)
	}
	if *watchdog > 0 && s.MakeRun == nil {
		fail("-watchdog needs a supervised scenario (%s is unsupervised; try serve-crashy)", s.Name)
	}

	p := s.Defaults
	p.Mode = *mode
	if *seed != 0 {
		p.Seed = *seed
	}
	window := s.Window
	if *windowFlag > 0 {
		window = whodunit.Duration(*windowFlag)
	}
	thr := s.Threshold
	if *threshold >= -1 {
		thr = *threshold
	}

	cfg := whodunit.ServeConfig{
		Window:     window,
		Retain:     *retain,
		Threshold:  thr,
		MaxWindows: *maxWindows,
		Pace:       *pace,
	}
	var app *whodunit.App
	if s.MakeRun != nil {
		// Supervised scenario: the server rebuilds the app through the
		// factory when a run dies and serves on, degraded, until the
		// fresh run retires a full window.
		cfg.MakeApp = func(run int) *whodunit.App { return s.MakeRun(p, run) }
		cfg.MaxRestarts = *maxRestarts
		cfg.Watchdog = *watchdog
	} else {
		app = s.MakeApp(p)
	}
	srv := whodunit.NewServer(app, cfg)

	// Lead the narration with the registry's description of what is
	// being profiled, so a bare log identifies its scenario.
	if in, found := scenarios.Lookup(s.Name); found {
		fmt.Printf("scenario %s: %s\n", in.Name, in.About)
	}

	// Narrate retirements on stdout (the headless CI path greps these).
	// The subscription closes when the run finishes, so waiting on
	// printerDone after Run guarantees every window line is emitted —
	// including the final partial window of a graceful drain.
	events, cancelEvents := srv.Ring().Subscribe(64)
	printerDone := make(chan struct{})
	go func() {
		defer close(printerDone)
		for kv := range events {
			rep := kv.V.Report
			fmt.Printf("window %d [%.3fs, %.3fs): %d samples",
				rep.Window.Seq, rep.Window.Start.Seconds(), rep.Window.End.Seconds(), rep.TotalSamples())
			if kv.V.Diff != nil {
				// Diff against the previous FULL window — across a crash
				// partial that is not simply seq-1.
				prev := rep.Window.Seq - 1
				if kv.V.Diff.WindowA != nil {
					prev = kv.V.Diff.WindowA.Seq
				}
				fmt.Printf(", max delta %d vs window %d", kv.V.MaxDelta, prev)
			}
			if kv.V.Degraded {
				fmt.Printf(", DEGRADED (restart %d)", kv.V.Restarts)
			}
			fmt.Println()
			if kv.V.Alert {
				fmt.Printf("ALERT window %d: adjacent diff max delta %d exceeds threshold %d\n",
					rep.Window.Seq, kv.V.MaxDelta, thr)
			}
			if kv.V.Recovered {
				fmt.Printf("recovered: window %d is the first full window after restart %d\n",
					rep.Window.Seq, kv.V.Restarts)
			}
		}
	}()
	defer cancelEvents()

	var httpSrv *http.Server
	if *addr != "" {
		httpSrv = &http.Server{Addr: *addr, Handler: srv.Handler()}
		go func() {
			fmt.Printf("serving %s on http://%s (window %s, threshold %d, pace %gx)\n",
				s.Name, *addr, time.Duration(window), thr, *pace)
			if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fail("%v", err)
			}
		}()
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		select {
		case sig := <-sigCh:
			fmt.Printf("received %s, draining: retiring the in-progress window\n", sig)
			srv.Stop()
		case <-srv.Done():
		}
	}()

	srv.Run()
	<-printerDone
	fmt.Printf("run finished: %d windows retired, %d alerts, %d restarts\n",
		srv.Ring().Total(), srv.AlertsTotal(), srv.Restarts())
	if srv.GaveUp() {
		fmt.Printf("gave up: restart budget (%d) exhausted\n", *maxRestarts)
	}
	if httpSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
	}
}
