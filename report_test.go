package whodunit_test

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"whodunit"
)

// foldedFixture runs a small two-stage app and returns its report.
func foldedFixture(t *testing.T) *whodunit.Report {
	t.Helper()
	app := whodunit.NewApp("shop", whodunit.WithMode(whodunit.ModeWhodunit))
	web, db := app.Stage("web"), app.Stage("db")
	reqQ, respQ := app.NewQueue("req").Raw(), app.NewQueue("resp").Raw()
	twoStageWorkload(app.Sim(), reqQ, respQ, web.Endpoint(), db.Endpoint(),
		func(body func(*whodunit.Thread, *whodunit.Probe)) { web.Go("web", body) },
		func(body func(*whodunit.Thread, *whodunit.Probe)) { db.Go("db", body) })
	return app.Run()
}

func TestReportFolded(t *testing.T) {
	rep := foldedFixture(t)
	var buf bytes.Buffer
	rep.Folded(&buf)
	out := buf.String()
	if out == "" {
		t.Fatal("empty folded output")
	}
	var total int64
	sawDB := false
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("folded line without count: %q", line)
		}
		n, err := strconv.ParseInt(line[sp+1:], 10, 64)
		if err != nil || n <= 0 {
			t.Fatalf("bad count in folded line %q: %v", line, err)
		}
		total += n
		frames := strings.Split(line[:sp], ";")
		if len(frames) < 3 {
			t.Fatalf("folded line %q needs stage;context;frame...", line)
		}
		if frames[0] == "db" && frames[len(frames)-1] == "exec_query" {
			sawDB = true
		}
	}
	// Every profile sample appears exactly once across the folded lines.
	if total != rep.TotalSamples() {
		t.Fatalf("folded counts sum to %d, want %d", total, rep.TotalSamples())
	}
	if !sawDB {
		t.Fatal("db exec_query stack missing from folded output")
	}

	// Folded must survive the JSON round trip (it reads the dumps).
	var js bytes.Buffer
	if err := rep.JSON(&js); err != nil {
		t.Fatal(err)
	}
	back, err := whodunit.ReadReport(&js)
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	back.Folded(&buf2)
	if buf2.String() != out {
		t.Fatal("folded output differs after JSON round trip")
	}
}
