package whodunit

import (
	"fmt"

	"whodunit/internal/faults"
)

// Fault-injection surface: aliases for the internal/faults plan types,
// so applications declare fault schedules without importing internals.
type (
	// FaultPlan is a complete deterministic fault schedule; pass it to
	// WithFaults or App.SetFaults. See internal/faults for the semantics
	// of each fault class.
	FaultPlan = faults.Plan
	// FaultStats is the ledger of faults that actually fired during a
	// run; whole-run reports carry it as Report.Faults.
	FaultStats = faults.Stats
	// StageCrash kills every thread of a stage at a virtual instant,
	// optionally respawning its declared thread bodies later.
	StageCrash = faults.StageCrash
	// Stall steals CPU from a stage's node — the slow-node fault.
	Stall = faults.Stall
	// MessageFault drops, duplicates or delays messages Put on a queue.
	MessageFault = faults.MessageFault
	// Fail panics the run at a virtual instant; supervised runs (Server)
	// turn it into a degraded restart instead of a process abort.
	Fail = faults.Fail
)

// SetFaults installs (or, with an empty plan, removes) the app's fault
// plan after construction — the hook for running a pre-built scenario
// under a fault schedule. It panics on an invalid plan or once the run
// has started. WithFaults is the option-form equivalent.
func (a *App) SetFaults(plan *FaultPlan) {
	if a.ran {
		panic("whodunit: SetFaults after run started")
	}
	if err := plan.Validate(); err != nil {
		panic(err)
	}
	if plan.Empty() {
		a.injector = nil
		return
	}
	if a.placedOffZero {
		panic("whodunit: SetFaults on a sharded app with work placed off shard 0 (fault plans run serially; see WithShards)")
	}
	// Fault injection evaluates timed faults and message verdicts from
	// domain 0's scheduler; collapse to a single time domain so every
	// target lives there (the same rule WithFaults applies at NewApp).
	a.shards = 1
	a.injector = faults.NewInjector(plan, a.seed)
}

// armFaults schedules the plan's timed faults as ordinary simulator
// events, so an injected failure is ordered against application events
// exactly the same way on every run. Called once at the top of run(),
// after every stage is declared.
func (a *App) armFaults() {
	if a.injector == nil {
		return
	}
	plan := a.injector.Plan()
	for _, c := range plan.Crashes {
		c := c
		st, ok := a.byName[c.Stage]
		if !ok {
			panic(fmt.Sprintf("whodunit: fault plan crashes unknown stage %q", c.Stage))
		}
		a.sim.At(c.At, func() { a.crashStage(st, c.RestartAfter) })
	}
	for _, s := range plan.Stalls {
		s := s
		var cpu *CPU
		if s.Stage == "" {
			cpu = a.CPU()
		} else {
			st, ok := a.byName[s.Stage]
			if !ok {
				panic(fmt.Sprintf("whodunit: fault plan stalls unknown stage %q", s.Stage))
			}
			cpu = st.CPU()
		}
		a.sim.At(s.At, func() {
			a.injector.NoteStall()
			cpu.Preempt(s.For)
		})
	}
	for _, f := range plan.Failures {
		f := f
		a.sim.At(f.At, func() {
			a.injector.NoteFailure()
			panic(fmt.Sprintf("whodunit: injected failure: %s", f.Msg))
		})
	}
}

// crashStage kills every live thread of st (their deferred functions
// run, held locks release, queue waits unwind) and, when restartAfter
// is positive, respawns the stage's declared thread bodies that much
// later — a supervised tier restart. The stage's profiler survives the
// crash, so whatever it accumulated still dumps into the (partial)
// report.
func (a *App) crashStage(st *Stage, restartAfter Duration) {
	a.injector.NoteCrash()
	for _, th := range st.threads {
		a.sim.Kill(th)
	}
	st.threads = st.threads[:0]
	if restartAfter > 0 {
		a.sim.After(restartAfter, func() {
			a.injector.NoteRestart()
			for _, sp := range st.specs {
				if sp.coro != nil {
					st.spawnCoro(sp.name, sp.coro)
					continue
				}
				st.spawn(sp.name, sp.body)
			}
		})
	}
}

// RetryPolicy bounds a retried client call: up to Attempts tries, each
// given Timeout of virtual time (the budget callers pass to
// Queue.GetTimeout), with Backoff doubling between tries.
type RetryPolicy struct {
	Attempts int
	Timeout  Duration
	Backoff  Duration
}

// Retry runs attempt until it reports success or the policy's attempts
// are spent, reporting whether any try succeeded. Every try after the
// first executes inside a "retry" probe frame, with the (doubling)
// backoff sleep charged to it — so retries triggered by injected drops
// or timeouts show up in the stitched CCT as real transaction work,
// exactly where the paper's per-context attribution would place them.
// attempt receives the 0-based try number; per-try timeouts are the
// caller's business (typically Queue.GetTimeout with pol.Timeout).
func (st *Stage) Retry(pr *Probe, pol RetryPolicy, attempt func(try int) bool) bool {
	if pol.Attempts < 1 {
		panic("whodunit: RetryPolicy needs at least one attempt")
	}
	if attempt(0) {
		return true
	}
	backoff := pol.Backoff
	ok := false
	for try := 1; try < pol.Attempts && !ok; try++ {
		func() {
			defer pr.Exit(pr.Enter("retry"))
			if backoff > 0 {
				pr.Thread().Sleep(backoff)
				backoff *= 2
			}
			ok = attempt(try)
		}()
	}
	return ok
}
