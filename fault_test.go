package whodunit_test

import (
	"bytes"
	"strings"
	"testing"

	"whodunit"
	"whodunit/internal/ipc"
)

// crashyApp builds a two-tier request/response app whose web worker
// retries db calls under a timeout: the shape every fault-wiring test
// below perturbs. The db stage answers each request after a little
// compute; the web worker drives n requests and gives up on a request
// after its retry budget.
func crashyApp(n int, plan *whodunit.FaultPlan, opts ...whodunit.Option) (*whodunit.App, *int) {
	opts = append(opts, whodunit.WithSeed(7))
	if plan != nil {
		opts = append(opts, whodunit.WithFaults(plan))
	}
	a := whodunit.NewApp("crashy", opts...)
	web := a.Stage("web")
	db := a.Stage("db", whodunit.StageCPU(2))
	reqQ := a.NewQueue("db-requests")
	respQ := a.NewQueue("db-responses")

	db.Go("db-worker", func(th *whodunit.Thread, pr *whodunit.Probe) {
		for {
			msg := reqQ.Get(th).(ipc.Msg)
			db.Endpoint().Recv(pr, msg)
			func() {
				defer pr.Exit(pr.Enter("db_query"))
				pr.Compute(2 * whodunit.Millisecond)
				respQ.Put(db.Endpoint().Send(pr, nil))
			}()
		}
	})

	served := new(int)
	web.Go("web-worker", func(th *whodunit.Thread, pr *whodunit.Probe) {
		pol := whodunit.RetryPolicy{Attempts: 4, Timeout: 20 * whodunit.Millisecond, Backoff: whodunit.Millisecond}
		for i := 0; i < n; i++ {
			web.BeginTxn(pr, "handle")
			func() {
				defer pr.Exit(pr.Enter("handle_request"))
				pr.Compute(whodunit.Millisecond)
				ok := web.Retry(pr, pol, func(int) bool {
					// Marshalling cost per attempt: samples taken here land
					// under the "retry" frame on retried attempts.
					pr.Compute(500 * whodunit.Microsecond)
					reqQ.Put(web.Endpoint().Send(pr, nil))
					resp, ok := respQ.GetTimeout(th, pol.Timeout)
					if ok {
						web.Endpoint().Recv(pr, resp.(ipc.Msg))
					}
					return ok
				})
				if ok {
					*served++
				}
			}()
		}
	})
	return a, served
}

func TestFaultFreePlanChangesNothing(t *testing.T) {
	run := func(plan *whodunit.FaultPlan) string {
		a, served := crashyApp(10, plan)
		rep := a.Run()
		var buf bytes.Buffer
		rep.Text(&buf)
		if *served != 10 {
			t.Fatalf("served %d of 10 without faults", *served)
		}
		return buf.String()
	}
	if run(nil) != run(&whodunit.FaultPlan{Seed: 99}) {
		t.Fatal("an empty fault plan perturbed the run")
	}
}

func TestMessageDropsRetriedAndVisible(t *testing.T) {
	plan := &whodunit.FaultPlan{
		Seed:     1,
		Messages: []whodunit.MessageFault{{Queue: "db-requests", Drop: 0.3}},
	}
	a, served := crashyApp(40, plan)
	rep := a.Run()
	if rep.Faults == nil || rep.Faults.Dropped == 0 {
		t.Fatalf("report carries no drop ledger: %+v", rep.Faults)
	}
	if *served == 0 {
		t.Fatal("every request failed despite a 4-attempt retry budget")
	}
	// The retries must show up as real transaction context in the web
	// stage's CCT: a "retry" frame with samples under it.
	web := rep.StageNamed("web")
	foundRetry := false
	for _, td := range web.Dump.Trees {
		for _, rec := range td.Records {
			for _, frame := range rec.Path {
				if frame == "retry" {
					foundRetry = true
				}
			}
		}
	}
	if !foundRetry {
		t.Fatal("no retry frame in the web CCT; injected drops left no transaction trace")
	}
}

func TestStageCrashAndRestart(t *testing.T) {
	plan := &whodunit.FaultPlan{
		Crashes: []whodunit.StageCrash{{
			Stage:        "db",
			At:           whodunit.Time(30 * whodunit.Millisecond),
			RestartAfter: 50 * whodunit.Millisecond,
		}},
	}
	a, served := crashyApp(30, plan)
	rep := a.Run()
	if rep.Faults == nil || rep.Faults.Crashes != 1 || rep.Faults.Restarts != 1 {
		t.Fatalf("faults ledger = %+v, want 1 crash and 1 restart", rep.Faults)
	}
	// Requests in flight during the outage time out and retry; once the
	// db respawns, service resumes, so most requests still complete.
	if *served < 20 {
		t.Fatalf("served only %d of 30 across a 50ms restart", *served)
	}
	var buf bytes.Buffer
	rep.Text(&buf)
	if !strings.Contains(buf.String(), "1 crash, 1 restart") {
		t.Errorf("report text does not mention the crash:\n%s", buf.String())
	}
}

func TestCrashWithoutRestartStaysDown(t *testing.T) {
	plan := &whodunit.FaultPlan{
		Crashes: []whodunit.StageCrash{{Stage: "db", At: whodunit.Time(30 * whodunit.Millisecond)}},
	}
	a, served := crashyApp(30, plan)
	rep := a.Run()
	if rep.Faults.Crashes != 1 || rep.Faults.Restarts != 0 {
		t.Fatalf("faults ledger = %+v", rep.Faults)
	}
	if *served == 0 || *served >= 30 {
		t.Fatalf("served %d of 30; a permanent db crash should lose the tail but not everything", *served)
	}
}

func TestInjectedFailureSupervised(t *testing.T) {
	plan := &whodunit.FaultPlan{
		Failures: []whodunit.Fail{{At: whodunit.Time(10 * whodunit.Millisecond), Msg: "boom"}},
	}
	// Unsupervised Run must surface the injected failure loudly.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("App.Run swallowed the injected failure")
			}
		}()
		a, _ := crashyApp(30, plan)
		a.Run()
	}()
}

func TestStallSlowsStage(t *testing.T) {
	base, _ := crashyApp(10, nil)
	fast := base.Run().Elapsed
	plan := &whodunit.FaultPlan{
		Stalls: []whodunit.Stall{{Stage: "db", At: whodunit.Time(5 * whodunit.Millisecond), For: 40 * whodunit.Millisecond}},
	}
	a, served := crashyApp(10, plan)
	rep := a.Run()
	if rep.Faults == nil || rep.Faults.Stalls != 1 {
		t.Fatalf("faults ledger = %+v", rep.Faults)
	}
	if *served != 10 {
		t.Fatalf("a stall lost requests: served %d of 10", *served)
	}
	if rep.Elapsed <= fast {
		t.Fatalf("stalled run finished in %v, no slower than fault-free %v", rep.Elapsed, fast)
	}
}

func TestFaultedRunDeterministic(t *testing.T) {
	plan := &whodunit.FaultPlan{
		Seed: 5,
		Crashes: []whodunit.StageCrash{{
			Stage:        "db",
			At:           whodunit.Time(25 * whodunit.Millisecond),
			RestartAfter: 30 * whodunit.Millisecond,
		}},
		Messages: []whodunit.MessageFault{{Queue: "db-requests", Drop: 0.15}},
	}
	run := func() string {
		a, _ := crashyApp(25, plan)
		var buf bytes.Buffer
		rep := a.Run()
		rep.Text(&buf)
		if err := rep.JSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if run() != run() {
		t.Fatal("faulted run is not bit-reproducible at a fixed seed")
	}
}

func TestSetFaultsAfterConstruction(t *testing.T) {
	a, served := crashyApp(20, nil)
	a.SetFaults(&whodunit.FaultPlan{
		Messages: []whodunit.MessageFault{{Queue: "db-requests", Drop: 0.3}},
	})
	rep := a.Run()
	if rep.Faults == nil || rep.Faults.Dropped == 0 {
		t.Fatal("SetFaults plan did not take effect")
	}
	if *served == 0 {
		t.Fatal("retries should survive drops")
	}
}

// TestDiffAsymmetricStageSets pins that the diff engine tolerates a
// partial report on either side: a tier present only in one report is
// reported as such, not crashed on.
func TestDiffAsymmetricStageSets(t *testing.T) {
	a, _ := crashyApp(10, nil)
	full := a.Run()
	partial := full.DropStage("db")
	for _, dir := range []struct {
		name string
		a, b *whodunit.Report
		side string
	}{
		{"full vs partial", full, partial, "only in A"},
		{"partial vs full", partial, full, "only in B"},
	} {
		d := whodunit.Diff(dir.a, dir.b)
		if d.Empty() {
			t.Fatalf("%s: diff empty despite a missing tier", dir.name)
		}
		var buf bytes.Buffer
		d.Text(&buf)
		if !strings.Contains(buf.String(), "stage db "+dir.side) {
			t.Fatalf("%s: diff does not report the asymmetric tier:\n%s", dir.name, buf.String())
		}
	}
}

func TestDropStagePartialReport(t *testing.T) {
	a, _ := crashyApp(10, nil)
	rep := a.Run()
	partial := rep.DropStage("db")
	if len(partial.Missing) != 1 || partial.Missing[0] != "db" {
		t.Fatalf("Missing = %v", partial.Missing)
	}
	if partial.StageNamed("db") != nil {
		t.Fatal("dropped stage still present")
	}
	if rep.StageNamed("db") == nil {
		t.Fatal("DropStage mutated its receiver")
	}
	severed := false
	for _, e := range partial.Graph.Edges {
		if e.Kind == "severed" {
			severed = true
		}
	}
	if !severed {
		t.Fatal("partial graph has no severed edges for the lost tier")
	}
	// The partial report must round-trip through JSON with its missing
	// annotation intact and restitch to the same partial graph.
	var buf bytes.Buffer
	if err := partial.JSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := whodunit.ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Missing) != 1 {
		t.Fatalf("Missing lost in round trip: %v", back.Missing)
	}
	severed = false
	for _, e := range back.Graph.Edges {
		if e.Kind == "severed" {
			severed = true
		}
	}
	if !severed {
		t.Fatal("decoded partial report restitched without severed edges")
	}
}
