package whodunit

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"whodunit/internal/vclock"
	"whodunit/internal/window"
)

// Continuous profiling service: a Server runs a windowed App indefinitely
// (or for a bounded number of windows), retains the most recent retired
// per-window Reports in a ring, auto-diffs adjacent windows against an
// alert threshold, and exposes the results over HTTP:
//
//	GET /report   — a retained window (?window=N), the latest (default),
//	                or the in-progress one (?window=live); ?format=text|json|folded
//	GET /windows  — JSON index of retained windows and alert state
//	GET /stream   — SSE feed of per-window Reports (and alerts) as they retire
//	GET /diff     — diff two retained windows (?a=N&b=M); ?format=text|json
//	GET /healthz  — prometheus-style status; 503 while an alert is active
//
// The simulation stays single-threaded and deterministic: window
// retirement happens in scheduler context, and live /report requests are
// epoch-pinned reads — the handler enqueues a closure that the simulation
// executes between events (inside its stop predicate), building a
// detached snapshot Report the handler then serializes. With a fixed
// seed, the sequence of retired-window Reports is bit-identical across
// runs; the HTTP layer is the only nondeterministic edge.

// ServeConfig configures a Server.
type ServeConfig struct {
	// Window is the aggregation-window length in virtual time. Optional
	// if the app was built with WithWindow; if both are set they must
	// agree.
	Window Duration
	// Retain is how many retired windows stay queryable (default 16).
	Retain int
	// Threshold gates the automatic adjacent-window diff: when the diff
	// of two consecutive full windows has MaxDelta > Threshold, an alert
	// fires. Negative disables alerting (the default zero value alerts
	// on any divergence).
	Threshold int64
	// MaxWindows stops the run after that many retired windows
	// (0 = run until Stop).
	MaxWindows int
	// Pace throttles the simulation to Pace virtual seconds per wall
	// second (1.0 = real time, 0 = free-run). Pacing only affects wall
	// scheduling, never virtual-time behavior.
	Pace float64

	// MakeApp, when set, makes the server supervised: run is the 0-based
	// attempt number, and after a run dies — a panic in a simulated
	// thread or scheduler callback (e.g. an injected Fail), or a watchdog
	// abort — the server builds a fresh app with MakeApp(run+1) and keeps
	// serving, in a degraded state until the new run retires its first
	// full window. MakeApp(0) supplies the initial app when NewServer is
	// given a nil one. Without MakeApp a dying run panics out of Run, as
	// an unsupervised simulation always has.
	MakeApp func(run int) *App
	// MaxRestarts bounds how many times a supervised server rebuilds the
	// app (default 3 when MakeApp is set); once exceeded the server gives
	// up: Run returns, /healthz goes 503.
	MaxRestarts int
	// RestartBackoff is the wall-clock wait before the first restart
	// (default 100ms when MakeApp is set), doubling on each subsequent
	// one.
	RestartBackoff time.Duration
	// Watchdog, when positive, bounds the wall time between window
	// retirements: a run that goes that long without retiring one (a
	// stuck scenario) is aborted and treated like a crash. 0 disables.
	Watchdog time.Duration
}

// WindowEvent is one retired window as published on the ring and the
// /stream feed: the window's Report, its diff against the previous full
// window (nil for the first), and the alert verdict. The degraded-state
// fields are set only on supervised servers that have restarted: they
// are zero on every healthy window, so fault-free feeds are unchanged.
type WindowEvent struct {
	Report   *Report     `json:"report"`
	Diff     *ReportDiff `json:"diff,omitempty"`
	MaxDelta int64       `json:"max_delta"`
	Alert    bool        `json:"alert"`
	// Degraded marks windows retired while the server was recovering
	// from a died run (between a restart and the next full window).
	Degraded bool `json:"degraded,omitempty"`
	// Recovered marks the first full window after a restart — the
	// moment the server leaves the degraded state.
	Recovered bool `json:"recovered,omitempty"`
	// Restarts is the cumulative restart count at retirement time.
	Restarts int64 `json:"restarts,omitempty"`
}

// Server drives a windowed App as a continuous profiling service. Create
// with NewServer, start with Run (blocking; typically in a goroutine),
// serve Handler over HTTP, stop with Stop.
type Server struct {
	app atomic.Pointer[App] // current app; swapped on supervised restart
	cfg ServeConfig

	ring  *window.Ring[*WindowEvent]
	reqCh chan func()

	stopOnce  sync.Once
	stopped   atomic.Bool
	stopCh    chan struct{}
	finished  chan struct{}
	startWall time.Time

	// Sim-goroutine-only state.
	prevFull *Report
	seqBase  int64 // global window seq of the current run's window 0

	alertsTotal atomic.Int64
	alertActive atomic.Bool

	// Supervision state (MakeApp servers).
	restarts   atomic.Int64
	degraded   atomic.Bool
	gaveUp     atomic.Bool
	aborted    atomic.Bool  // watchdog tripped the current run
	lastRetire atomic.Int64 // wall nanos of the last retirement (watchdog)

	final *Report
}

// NewServer wraps app (built with WithWindow, or windowed here via
// cfg.Window) into a continuous profiling service. The app must not have
// been run, and its OnWindow callback slot is taken over by the server.
// With cfg.MakeApp set, app may be nil (the factory supplies attempt 0)
// and the server supervises: a run that dies is rebuilt and restarted
// instead of panicking out of Run.
func NewServer(app *App, cfg ServeConfig) *Server {
	if app == nil {
		if cfg.MakeApp == nil {
			panic("whodunit: NewServer needs an app or a ServeConfig.MakeApp factory")
		}
		app = cfg.MakeApp(0)
	}
	if cfg.Window > 0 {
		if app.window > 0 && app.window != cfg.Window {
			panic("whodunit: ServeConfig.Window disagrees with the app's WithWindow")
		}
		app.window = cfg.Window
	}
	if app.window <= 0 {
		panic("whodunit: NewServer needs a window length (WithWindow or ServeConfig.Window)")
	}
	if cfg.Retain == 0 {
		cfg.Retain = 16
	}
	if cfg.Retain < 1 {
		panic("whodunit: ServeConfig.Retain must be at least 1")
	}
	if cfg.MaxWindows < 0 {
		panic("whodunit: ServeConfig.MaxWindows must be >= 0")
	}
	if cfg.Pace < 0 {
		panic("whodunit: ServeConfig.Pace must be >= 0")
	}
	if cfg.MaxRestarts < 0 {
		panic("whodunit: ServeConfig.MaxRestarts must be >= 0")
	}
	if cfg.RestartBackoff < 0 {
		panic("whodunit: ServeConfig.RestartBackoff must be >= 0")
	}
	if cfg.Watchdog < 0 {
		panic("whodunit: ServeConfig.Watchdog must be >= 0")
	}
	if cfg.MakeApp != nil {
		if cfg.MaxRestarts == 0 {
			cfg.MaxRestarts = 3
		}
		if cfg.RestartBackoff == 0 {
			cfg.RestartBackoff = 100 * time.Millisecond
		}
	}
	cfg.Window = app.window
	s := &Server{
		cfg:      cfg,
		ring:     window.NewRing[*WindowEvent](cfg.Retain),
		reqCh:    make(chan func(), 64),
		stopCh:   make(chan struct{}),
		finished: make(chan struct{}),
	}
	s.adopt(app)
	return s
}

// adopt wires an app (initial or restart-built) into the server: the
// window length must match the config, and the app's OnWindow slot is
// taken over.
func (s *Server) adopt(app *App) {
	if app.window <= 0 {
		app.window = s.cfg.Window
	} else if app.window != s.cfg.Window {
		panic("whodunit: MakeApp built an app whose window disagrees with the server's")
	}
	app.OnWindow(s.onWindow)
	s.app.Store(app)
}

// App returns the served application (the current one, on a supervised
// server that has restarted).
func (s *Server) App() *App { return s.app.Load() }

// Run drives the simulation until Stop is called (or MaxWindows retire),
// retiring windows as virtual time passes. It blocks; run it in a
// goroutine when serving HTTP. The returned Report is the whole-run
// residue after the final window retired (its stages are empty in a
// windowed run — every sample lands in some window); use the ring and
// the HTTP API for the per-window results.
//
// On a supervised server (ServeConfig.MakeApp) Run is a supervision
// loop: a run that dies — an injected or genuine panic in the
// simulation, or a watchdog abort — retires its partial window, is
// rebuilt via MakeApp after an exponential wall-clock backoff, and the
// service continues in a degraded state until the fresh run retires its
// first full window. Once MaxRestarts is exceeded the server gives up
// and Run returns. Without MakeApp a dying run panics, as before.
func (s *Server) Run() *Report {
	s.startWall = time.Now()
	for run := 0; ; run++ {
		rep, err := s.runOnce(s.app.Load())
		s.final = rep
		if err == nil || s.stopped.Load() {
			break
		}
		if s.cfg.MakeApp == nil {
			close(s.finished)
			s.ring.Close()
			panic(err)
		}
		if s.restarts.Load() >= int64(s.cfg.MaxRestarts) {
			s.gaveUp.Store(true)
			break
		}
		n := s.restarts.Add(1)
		s.degraded.Store(true)
		if !s.backoffWait(s.cfg.RestartBackoff << (n - 1)) {
			break // stopped while backing off
		}
		s.adopt(s.cfg.MakeApp(run + 1))
	}
	close(s.finished)
	s.ring.Close()
	return s.final
}

// runOnce drives one app until it stops, dies, or trips the watchdog,
// returning its (possibly partial) report. The global window sequence
// is rebased so the ring sees one dense series across restarts.
func (s *Server) runOnce(app *App) (*Report, error) {
	s.seqBase = s.ring.Total()
	s.aborted.Store(false)
	s.lastRetire.Store(time.Now().UnixNano())
	var wdStop chan struct{}
	if s.cfg.Watchdog > 0 {
		wdStop = make(chan struct{})
		go s.watchdog(wdStop)
	}
	rep, err := app.runSupervised(func() bool {
		s.drainRequests()
		return s.stopped.Load() || s.aborted.Load()
	})
	if wdStop != nil {
		close(wdStop)
	}
	if err == nil && s.aborted.Load() && !s.stopped.Load() {
		err = fmt.Errorf("whodunit: watchdog: no window retired in %v of wall time", s.cfg.Watchdog)
	}
	return rep, err
}

// watchdog aborts the current run if no window retires for the
// configured wall-time budget — the stuck-scenario guard. The abort
// trips the stop predicate at the next event boundary; a simulation
// wedged inside a single native call is beyond its reach.
func (s *Server) watchdog(stop chan struct{}) {
	tick := s.cfg.Watchdog / 8
	if tick <= 0 {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			last := time.Unix(0, s.lastRetire.Load())
			if time.Since(last) > s.cfg.Watchdog {
				s.aborted.Store(true)
				return
			}
		}
	}
}

// backoffWait sleeps d of wall time before a restart, staying
// responsive: epoch-pinned reads drain (against the dead app's final
// state) and Stop cuts the wait short. Reports whether the server
// should still restart.
func (s *Server) backoffWait(d time.Duration) bool {
	deadline := time.Now().Add(d)
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return true
		}
		timer := time.NewTimer(remain)
		select {
		case fn := <-s.reqCh:
			timer.Stop()
			fn()
		case <-s.stopCh:
			timer.Stop()
			return false
		case <-timer.C:
			return true
		}
	}
}

// Stop asks the running simulation to finish: the stop predicate trips
// at the next event boundary, the in-progress window retires as a final
// partial window, and Run returns. Idempotent and safe from any
// goroutine (HTTP handlers, signal handlers).
func (s *Server) Stop() {
	s.stopOnce.Do(func() {
		s.stopped.Store(true)
		close(s.stopCh)
	})
}

// Done returns a channel closed when Run has finished.
func (s *Server) Done() <-chan struct{} { return s.finished }

// Ring exposes the retained-window ring (for tests and custom feeds).
func (s *Server) Ring() *window.Ring[*WindowEvent] { return s.ring }

// AlertsTotal reports how many adjacent-window alerts have fired.
func (s *Server) AlertsTotal() int64 { return s.alertsTotal.Load() }

// AlertActive reports whether the most recent adjacent-window diff
// exceeded the threshold.
func (s *Server) AlertActive() bool { return s.alertActive.Load() }

// Restarts reports how many times the supervision loop rebuilt the app.
func (s *Server) Restarts() int64 { return s.restarts.Load() }

// Degraded reports whether the server is between a restart and the
// fresh run's first full window.
func (s *Server) Degraded() bool { return s.degraded.Load() }

// GaveUp reports whether the supervision loop exhausted MaxRestarts.
func (s *Server) GaveUp() bool { return s.gaveUp.Load() }

// drainRequests executes pending epoch-pinned read closures. Runs in the
// simulation goroutine between events, so the closures may touch live
// profiler state without races.
func (s *Server) drainRequests() {
	for {
		select {
		case fn := <-s.reqCh:
			fn()
		default:
			return
		}
	}
}

// onWindow is the App.OnWindow callback: it wraps each retired window
// into a WindowEvent, auto-diffs consecutive full windows against the
// threshold, publishes on the ring, and enforces MaxWindows and Pace.
// Runs in scheduler context.
func (s *Server) onWindow(rep *Report) {
	// Rebase the window sequence: each supervised run restarts its app
	// (and virtual clock) at zero, but the ring and the feed present one
	// dense series across restarts.
	if rep.Window != nil {
		rep.Window.Seq += s.seqBase
	}
	s.lastRetire.Store(time.Now().UnixNano())
	ev := &WindowEvent{Report: rep, Restarts: s.restarts.Load()}
	// Only full windows participate in the adjacent auto-diff: the final
	// partial window legitimately has fewer samples and would always
	// "regress".
	full := rep.Elapsed == s.cfg.Window
	if s.degraded.Load() {
		ev.Degraded = true
		if full {
			// The rebuilt run has proven itself with a complete window:
			// leave the degraded state, and say so on the feed.
			ev.Recovered = true
			s.degraded.Store(false)
		}
	}
	if full && s.prevFull != nil {
		d := Diff(s.prevFull, rep)
		ev.Diff = d
		ev.MaxDelta = d.MaxDelta()
		if s.cfg.Threshold >= 0 {
			ev.Alert = d.Exceeds(s.cfg.Threshold)
			if ev.Alert {
				s.alertsTotal.Add(1)
			}
			s.alertActive.Store(ev.Alert)
		}
	}
	if full {
		s.prevFull = rep
	}
	s.ring.Append(window.Meta{
		Seq:   rep.Window.Seq,
		Start: vclock.Time(rep.Window.Start),
		End:   vclock.Time(rep.Window.End),
	}, ev)
	if s.cfg.MaxWindows > 0 && s.ring.Total() >= int64(s.cfg.MaxWindows) {
		s.Stop()
	}
	if s.cfg.Pace > 0 && !s.stopped.Load() {
		s.paceWait(rep.Window.End)
	}
}

// paceWait sleeps (in wall time) until virtual time virtualEnd is "due"
// under the configured pace, while keeping epoch-pinned reads flowing —
// a paced server answers /report promptly even between distant windows.
func (s *Server) paceWait(virtualEnd Duration) {
	deadline := s.startWall.Add(time.Duration(float64(virtualEnd) / s.cfg.Pace))
	for {
		d := time.Until(deadline)
		if d <= 0 {
			return
		}
		timer := time.NewTimer(d)
		select {
		case fn := <-s.reqCh:
			timer.Stop()
			fn()
		case <-s.stopCh:
			timer.Stop()
			return
		case <-timer.C:
			return
		}
	}
}

// liveReport builds a Report of the in-progress window via an
// epoch-pinned read: the closure runs in the simulation goroutine at an
// event boundary and detaches a snapshot. Returns false if the run has
// already finished.
func (s *Server) liveReport() (*Report, bool) {
	ch := make(chan *Report, 1)
	fn := func() { ch <- s.app.Load().LiveWindowReport() }
	select {
	case s.reqCh <- fn:
	case <-s.finished:
		return nil, false
	}
	select {
	case rep := <-ch:
		return rep, true
	case <-s.finished:
		// The run may have finished between enqueue and execution; the
		// closure could still have run on the final drain.
		select {
		case rep := <-ch:
			return rep, true
		default:
			return nil, false
		}
	}
}

// --- HTTP API -------------------------------------------------------

// Handler returns the server's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/report", s.handleReport)
	mux.HandleFunc("/windows", s.handleWindows)
	mux.HandleFunc("/stream", s.handleStream)
	mux.HandleFunc("/diff", s.handleDiff)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

func writeReport(w http.ResponseWriter, rep *Report, format string) {
	switch format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		rep.JSON(w)
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		rep.Text(w)
	case "folded":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		rep.Folded(w)
	default:
		http.Error(w, fmt.Sprintf("unknown format %q (want text, json or folded)", format), http.StatusBadRequest)
	}
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	format := r.URL.Query().Get("format")
	switch win := r.URL.Query().Get("window"); win {
	case "live":
		if rep, ok := s.liveReport(); ok {
			writeReport(w, rep, format)
			return
		}
		// Run finished: fall through to the latest retired window.
		fallthrough
	case "":
		kv, ok := s.ring.Latest()
		if !ok {
			http.Error(w, "no window retired yet", http.StatusNotFound)
			return
		}
		writeReport(w, kv.V.Report, format)
	default:
		seq, err := strconv.ParseInt(win, 10, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad window %q (want a sequence number or \"live\")", win), http.StatusBadRequest)
			return
		}
		kv, ok := s.ring.Get(seq)
		if !ok {
			http.Error(w, fmt.Sprintf("window %d not retained (retired %d, retaining last %d)",
				seq, s.ring.Total(), s.cfg.Retain), http.StatusNotFound)
			return
		}
		writeReport(w, kv.V.Report, format)
	}
}

// windowIndexEntry is one retained window in the /windows index.
type windowIndexEntry struct {
	Seq      int64    `json:"seq"`
	Start    Duration `json:"start_ns"`
	End      Duration `json:"end_ns"`
	Elapsed  Duration `json:"elapsed_ns"`
	Samples  int64    `json:"samples"`
	MaxDelta int64    `json:"max_delta"`
	Alert    bool     `json:"alert"`
}

// windowIndex is the /windows response body.
type windowIndex struct {
	App         string             `json:"app"`
	WindowNS    Duration           `json:"window_ns"`
	Retired     int64              `json:"retired"`
	Retain      int                `json:"retain"`
	Threshold   int64              `json:"threshold"`
	AlertsTotal int64              `json:"alerts_total"`
	AlertActive bool               `json:"alert_active"`
	Windows     []windowIndexEntry `json:"windows"`
}

func (s *Server) handleWindows(w http.ResponseWriter, r *http.Request) {
	idx := windowIndex{
		App:         s.app.Load().Name,
		WindowNS:    s.cfg.Window,
		Retired:     s.ring.Total(),
		Retain:      s.cfg.Retain,
		Threshold:   s.cfg.Threshold,
		AlertsTotal: s.alertsTotal.Load(),
		AlertActive: s.alertActive.Load(),
	}
	for _, kv := range s.ring.Entries() {
		rep := kv.V.Report
		idx.Windows = append(idx.Windows, windowIndexEntry{
			Seq:      rep.Window.Seq,
			Start:    rep.Window.Start,
			End:      rep.Window.End,
			Elapsed:  rep.Elapsed,
			Samples:  rep.TotalSamples(),
			MaxDelta: kv.V.MaxDelta,
			Alert:    kv.V.Alert,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(idx)
}

// handleStream serves the SSE feed: one "window" event per retirement
// (data: the WindowEvent as compact JSON) and an additional "alert"
// event when the adjacent-window diff exceeded the threshold. The stream
// ends when the run finishes or the client disconnects; slow clients
// skip windows rather than stalling the simulation.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	ch, cancel := s.ring.Subscribe(16)
	defer cancel()
	for {
		select {
		case kv, open := <-ch:
			if !open {
				fmt.Fprint(w, "event: end\ndata: {}\n\n")
				flusher.Flush()
				return
			}
			data, err := json.Marshal(kv.V)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: window\nid: %d\ndata: %s\n\n", kv.Meta.Seq, data)
			if kv.V.Alert {
				fmt.Fprintf(w, "event: alert\nid: %d\ndata: {\"seq\": %d, \"max_delta\": %d}\n\n",
					kv.Meta.Seq, kv.Meta.Seq, kv.V.MaxDelta)
			}
			if kv.V.Degraded {
				fmt.Fprintf(w, "event: degraded\nid: %d\ndata: {\"seq\": %d, \"restarts\": %d, \"recovered\": %v}\n\n",
					kv.Meta.Seq, kv.Meta.Seq, kv.V.Restarts, kv.V.Recovered)
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	get := func(name string) (*Report, bool) {
		v := q.Get(name)
		if v == "" {
			http.Error(w, fmt.Sprintf("missing query parameter %q (a window sequence number)", name), http.StatusBadRequest)
			return nil, false
		}
		seq, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad window %q", v), http.StatusBadRequest)
			return nil, false
		}
		kv, ok := s.ring.Get(seq)
		if !ok {
			http.Error(w, fmt.Sprintf("window %d not retained", seq), http.StatusNotFound)
			return nil, false
		}
		return kv.V.Report, true
	}
	ra, ok := get("a")
	if !ok {
		return
	}
	rb, ok := get("b")
	if !ok {
		return
	}
	d := Diff(ra, rb)
	switch format := q.Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		d.JSON(w)
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		d.Text(w)
	default:
		http.Error(w, fmt.Sprintf("unknown format %q (want text or json)", format), http.StatusBadRequest)
	}
}

// handleHealthz reports prometheus-style status lines; the response code
// is 503 while an adjacent-window alert is active — or once a
// supervised server has given up restarting — so the endpoint works
// directly as a load-balancer health check. The degraded state
// (recovering from a restart) is deliberately NOT a 503: the service is
// still serving, and conflating recovery with an alert would page on
// every successful self-heal. It is visible as whodunit_degraded.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	active := s.alertActive.Load()
	gaveUp := s.gaveUp.Load()
	up := 1
	select {
	case <-s.finished:
		up = 0
	default:
	}
	var virtualSeconds float64
	if kv, ok := s.ring.Latest(); ok {
		virtualSeconds = Duration(kv.Meta.End).Seconds()
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if active || gaveUp {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	fmt.Fprintf(w, "whodunit_up %d\n", up)
	fmt.Fprintf(w, "whodunit_windows_retired %d\n", s.ring.Total())
	fmt.Fprintf(w, "whodunit_alerts_total %d\n", s.alertsTotal.Load())
	fmt.Fprintf(w, "whodunit_alert_active %d\n", boolInt(active))
	fmt.Fprintf(w, "whodunit_degraded %d\n", boolInt(s.degraded.Load()))
	fmt.Fprintf(w, "whodunit_restarts_total %d\n", s.restarts.Load())
	fmt.Fprintf(w, "whodunit_gave_up %d\n", boolInt(gaveUp))
	fmt.Fprintf(w, "whodunit_stream_dropped_total %d\n", s.ring.Dropped())
	fmt.Fprintf(w, "whodunit_virtual_seconds %.6f\n", virtualSeconds)
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
