// Package whodunit is a transactional profiler for multi-tier
// applications, reproducing Chanda, Cox & Zwaenepoel, "Whodunit:
// Transactional Profiling for Multi-Tier Applications" (EuroSys 2007).
//
// A *transaction* is the execution of one client request through the
// stages of a multi-tier application; its *transaction context* is the
// concatenation of the per-stage execution paths (call paths,
// event-handler sequences, SEDA stages). Whodunit annotates statistical
// call-path profile samples with transaction contexts, so the cost of,
// say, a database sort can be attributed to the front-end request type
// that triggered it, and measures *crosstalk* — lock waiting attributed
// to the (waiting, holding) transaction pair.
//
// # Composing applications
//
// The primary API is the App/Stage runtime: declare an App, declare its
// Stages (tiers), start simulated threads with Stage.Go, and let App.Run
// drive the simulation and return a unified Report — per-stage profiles,
// the crosstalk matrix, detected shared-memory flows, and the stitched
// end-to-end transaction graph, with Text, JSON and DOT renderers:
//
//	app := whodunit.NewApp("shop",
//		whodunit.WithMode(whodunit.ModeWhodunit),
//		whodunit.WithCores(2))
//	web, db := app.Stage("web"), app.Stage("db")
//	reqQ, respQ := app.NewQueue("req"), app.NewQueue("resp")
//	db.Go("db", func(th *whodunit.Thread, pr *whodunit.Probe) { ... })
//	web.Go("web", func(th *whodunit.Thread, pr *whodunit.Probe) { ... })
//	report := app.Run() // stitching happens automatically
//	report.Text(os.Stdout)
//
// Stages bundle the context-propagation machinery: Stage.Endpoint and
// Stage.Conn for messaging tiers, Stage.EventLoop/BindLoop for
// event-driven programs, Stage.SEDAStage/Worker/Inject for staged
// pipelines, App.NewQueue for shared-memory queues whose Push/Pop
// critical sections run on the emulated machine so the flow tracker
// propagates the pusher's context to the popper automatically (§3.5),
// Stage.CriticalSection for crosstalk-observed lock-protected regions,
// and Stage.BeginTxn/WithTxn for transaction-context scoping without
// touching the context tables. Functional options (WithMode, WithSeed,
// WithCrosstalk, WithFlowDetection, WithClockRate,
// WithSamplingInterval, StageMode, StageCPU) select the run
// configuration — they are pure configuration; all machinery is built
// and wired by NewApp. RunApps sweeps independent Apps across
// GOMAXPROCS workers with reports bit-identical to serial runs.
//
// # Building blocks
//
// The remainder of this file re-exports the underlying building blocks'
// types for programs that wire stages by hand. The constructors the
// App/Stage primitives superseded (NewProfiler, NewEndpoint,
// NewEventLoop, NewSEDAStage, NewSEDAWorker, NewCrosstalkMonitor, the
// SimQueue alias) are gone with the hand-wiring they required — declare
// an App and use its stages instead:
//
//   - Sim, Thread, CPU, Lock — the deterministic virtual-time
//     substrate everything runs on (internal/vclock);
//   - Profiler, Probe, TxnCtxt — the csprof-style sampling profiler with
//     per-transaction-context calling context trees (internal/profiler,
//     internal/cct, internal/tranctx);
//   - EventLoop / SEDA worker — libevent- and SEDA-style libraries with
//     automatic context propagation (internal/event, internal/seda);
//   - Endpoint / Conn — message send/receive wrappers piggy-backing
//     4-byte context synopses across tiers (internal/ipc);
//   - CrosstalkMonitor — the §6 interference matrix (internal/crosstalk);
//   - flow detection for implicit shared-memory handoff on the bundled
//     machine emulator (internal/vm, internal/shmflow);
//   - Stitch — post-mortem assembly of per-stage profiles into the
//     global transaction graph (internal/stitch).
//
// See examples/quickstart for a complete two-stage walkthrough, and
// cmd/whodunit-bench for the paper's full evaluation.
package whodunit

import (
	"io"

	"whodunit/internal/cct"
	"whodunit/internal/crosstalk"
	"whodunit/internal/event"
	"whodunit/internal/ipc"
	"whodunit/internal/profiler"
	"whodunit/internal/seda"
	"whodunit/internal/shmflow"
	"whodunit/internal/stitch"
	"whodunit/internal/tranctx"
	"whodunit/internal/vclock"
	"whodunit/internal/vm"
)

// Simulation substrate.
type (
	// Sim is the deterministic discrete-event simulator.
	Sim = vclock.Sim
	// Thread is a simulated thread.
	Thread = vclock.Thread
	// CPU is a multi-core processor resource.
	CPU = vclock.CPU
	// Lock is a reader/writer lock with wait observation.
	Lock = vclock.Lock
	// Time is a point in virtual time (nanoseconds).
	Time = vclock.Time
	// Duration is a span of virtual time (nanoseconds).
	Duration = vclock.Duration
)

// Re-exported duration units.
const (
	Nanosecond  = vclock.Nanosecond
	Microsecond = vclock.Microsecond
	Millisecond = vclock.Millisecond
	Second      = vclock.Second
	Minute      = vclock.Minute
)

// Lock modes.
const (
	Shared    = vclock.Shared
	Exclusive = vclock.Exclusive
)

// NewSim returns an empty simulation with the clock at zero.
func NewSim() *Sim { return vclock.New() }

// Run-to-completion scheduling (Sim.GoCoro, App.GoCoroShard,
// Stage.GoCoro): thread bodies written as resumable state machines are
// executed by the dispatcher with zero goroutine switches per blocking
// operation.
type (
	// Coro is the execution state of a run-to-completion thread.
	Coro = vclock.Coro
	// Frame is one resumable segment of a run-to-completion body.
	Frame = vclock.Frame
	// Step is the receipt a Frame returns from its one scheduling step.
	Step = vclock.Step
	// EngineKind selects how coroutine threads execute (see the
	// Engine* constants).
	EngineKind = vclock.EngineKind
)

// Coroutine engines. EngineCoro (the default) steps continuations
// inline on the dispatcher; EngineGoroutine drives the identical
// programs from dedicated goroutines — bit-identical event order, used
// by -race builds and cross-engine determinism checks. Override the
// process default via vclock.DefaultEngine (snapshotted per Sim at
// creation) or the WHODUNIT_ENGINE environment variable.
const (
	EngineCoro      = vclock.EngineCoro
	EngineGoroutine = vclock.EngineGoroutine
)

// Profiler core.
type (
	// Profiler is a per-stage transactional profiler.
	Profiler = profiler.Profiler
	// Probe is a per-thread instrumentation handle.
	Probe = profiler.Probe
	// Mode selects Off / Sampling (csprof) / Whodunit / Instrumented
	// (gprof) profiling.
	Mode = profiler.Mode
	// TxnCtxt is a transaction context (remote synopsis prefix + local
	// interned context).
	TxnCtxt = profiler.TxnCtxt
	// Ctxt is an interned local transaction context chain.
	Ctxt = tranctx.Ctxt
	// Synopsis is the 4-byte compact context representation.
	Synopsis = tranctx.Synopsis
	// Tree is a calling context tree of profile samples.
	Tree = cct.Tree
)

// Profiling modes.
const (
	ModeOff          = profiler.ModeOff
	ModeSampling     = profiler.ModeSampling
	ModeWhodunit     = profiler.ModeWhodunit
	ModeInstrumented = profiler.ModeInstrumented
)

// ParseMode parses a mode name ("off", "csprof", "whodunit", "gprof")
// into a Mode; Mode also implements flag.Value, so it can be bound to a
// command-line flag directly with flag.Var.
var ParseMode = profiler.ParseMode

// Overhead models the profiler's own CPU costs in virtual time.
type Overhead = profiler.Overhead

// Context hop constructors.
var (
	CallHop    = tranctx.CallHop
	HandlerHop = tranctx.HandlerHop
	StageHop   = tranctx.StageHop
)

// Event-driven and SEDA libraries.
type (
	// EventLoop is a libevent-style loop with context propagation.
	EventLoop = event.Loop
	// Event is a continuation carrying its transaction context.
	Event = event.Event
	// EventHandler is a named handler.
	EventHandler = event.Handler
	// SEDAStage is a named stage with an input queue.
	SEDAStage = seda.Stage
	// SEDAWorker tracks a stage worker's current context.
	SEDAWorker = seda.Worker
	// SEDAElem is a stage-queue element with its captured context.
	SEDAElem = seda.Elem
)

// Distribution.
type (
	// Endpoint tracks sent synopsis chains for request/response
	// inference.
	Endpoint = ipc.Endpoint
	// Msg is a message with its piggy-backed synopsis chain.
	Msg = ipc.Msg
	// Conn wraps an Endpoint around a byte stream.
	Conn = ipc.Conn
	// MsgKind classifies received messages as requests or responses.
	MsgKind = ipc.Kind
)

// Message kinds.
const (
	KindRequest  = ipc.Request
	KindResponse = ipc.Response
)

// Crosstalk.
type (
	// CrosstalkMonitor accumulates the (waiter, holder) wait matrix.
	CrosstalkMonitor = crosstalk.Monitor
	// CrosstalkPair is one matrix row.
	CrosstalkPair = crosstalk.PairStat
)

// Shared-memory flow detection. Apps built with WithFlowDetection own
// their machine and tracker (App.Machine, App.FlowTracker) with the
// token plumbing pre-wired; the constructors that used to hand out raw
// machines and trackers (NewMachine, NewFlowTracker) are gone with the
// hand-wiring they required.
type (
	// Machine is the bundled CPU emulator for critical sections.
	Machine = vm.Machine
	// FlowTracker runs the §3 shared-memory flow detection algorithm.
	FlowTracker = shmflow.Tracker
	// FlowEvent is one detected producer→consumer transaction flow.
	FlowEvent = shmflow.FlowEvent
	// FlowToken identifies a transaction context opaquely to the flow
	// tracker.
	FlowToken = shmflow.Token
	// Program is an assembled VM program, runnable with Stage.EmulatedCS.
	Program = vm.Program
	// VMThread is one thread of the machine emulator.
	VMThread = vm.Thread
)

// AssembleProgram assembles VM assembly text into a Program for
// Stage.EmulatedCS (custom shared-memory critical sections).
var AssembleProgram = vm.Assemble

// Stitching.
type (
	// StageDump is one stage's serialized profile.
	StageDump = stitch.StageDump
	// TreeDump is one serialized per-context CCT within a StageDump.
	TreeDump = stitch.TreeDump
	// TransactionGraph is the stitched end-to-end profile.
	TransactionGraph = stitch.Graph
)

// DumpStage captures a stage's profiler (plus endpoints) for post-mortem
// stitching.
func DumpStage(p *Profiler, eps ...*Endpoint) StageDump { return stitch.Dump(p, eps...) }

// Stitch assembles per-stage dumps into the global transaction graph.
func Stitch(dumps []StageDump) *TransactionGraph { return stitch.Build(dumps) }

// ReadStageDump decodes a stage dump from JSON.
func ReadStageDump(r io.Reader) (StageDump, error) { return stitch.DecodeDump(r) }
