package whodunit

import (
	"fmt"
	"sync"

	"whodunit/internal/faults"
	"whodunit/internal/shmflow"
	"whodunit/internal/vclock"
	"whodunit/internal/vm"
)

// DefaultCyclesPerSecond converts emulated machine cycles to virtual
// time: the paper's 2.4 GHz Xeon. Override with WithClockRate.
const DefaultCyclesPerSecond = 2_400_000_000

// emulatedStepLimit bounds a single emulated critical-section execution;
// the library's queue programs run a dozen instructions, so hitting it
// means a user program diverged.
const emulatedStepLimit = 100_000

// flowState is the app's token plumbing for shared-memory flow detection
// (§3.5): it maps the transaction contexts of threads entering emulated
// critical sections to opaque flow tokens and back, so a context picked
// up by the tracker on the consumer side can be re-established on the
// consuming probe with no per-application wiring.
type flowState struct {
	vmCtxt   map[int]shmflow.Token     // vm thread id -> producer token
	tokens   map[shmflow.Token]TxnCtxt // token -> transaction context
	keys     map[string]shmflow.Token  // context key -> token (interning)
	nextTok  shmflow.Token
	consumed shmflow.Token // token delivered by OnFlow during the current run
	consumer int           // vm thread the tracker assigned that token to

	nextLock int   // next vm lock id to hand to a Queue
	nextBase int64 // next vm memory base to hand to a Queue
}

func newFlowState() *flowState {
	return &flowState{
		vmCtxt:   make(map[int]shmflow.Token),
		tokens:   make(map[shmflow.Token]TxnCtxt),
		keys:     make(map[string]shmflow.Token),
		nextTok:  1,
		nextLock: 1,
		nextBase: 0x1000,
	}
}

func (f *flowState) tokenFor(tc TxnCtxt) shmflow.Token {
	k := tc.Key()
	if tok, ok := f.keys[k]; ok {
		return tok
	}
	tok := f.nextTok
	f.nextTok++
	f.keys[k] = tok
	f.tokens[tok] = tc
	return tok
}

// initFlow builds the app's flow-detection machinery once all options are
// applied: the machine emulator always (critical sections must execute
// either way), the tracker — and with it emulation, tracing and token
// plumbing — only when the app profiles in Whodunit mode. In the other
// modes critical sections run natively on the machine at direct-execution
// cost, exactly as an unprofiled application would (§7.2).
func (a *App) initFlow() {
	a.machine = vm.NewMachine()
	a.flow = newFlowState()
	if a.mode != ModeWhodunit {
		return
	}
	a.machine.Mode = vm.ModeEmulateCS
	a.tracker = shmflow.NewTracker()
	a.tracker.ThreadCtxt = func(tid int) shmflow.Token { return a.flow.vmCtxt[tid] }
	a.tracker.OnFlow = func(ev FlowEvent) { a.flow.consumed, a.flow.consumer = ev.Token, ev.Consumer }
	a.tracker.OnNonFlow = func(lock int) { a.machine.SetNonFlow(lock) }
	a.machine.Tracer = a.tracker
}

func (a *App) cyclesToTime(c int64) Duration {
	return Duration(c * int64(Second) / a.cyclesPerSec)
}

// ReserveCS reserves a vm lock id and a private 0x10000-word memory
// region (word addresses base..base+0xFFFF) for a custom critical
// section, drawn from the same pool App.NewQueue allocates from. Use it
// when writing programs for Stage.EmulatedCS: the machine's locks and
// memory are shared app-wide, so a hard-coded lock id or address could
// collide with a queue's one_big_mutex or data words — corrupting the
// queue, or worse, tripping the §3.4 allocator rule and demoting the
// shared lock to native execution.
func (a *App) ReserveCS() (lock int, base int64) {
	if a.flow == nil {
		panic("whodunit: ReserveCS needs WithFlowDetection")
	}
	lock = a.flow.nextLock
	a.flow.nextLock++
	base = a.flow.nextBase
	a.flow.nextBase += 0x1_0000
	return lock, base
}

// runEmulated executes one program on the app's shared machine as the
// calling simulated thread: the probe's current transaction context is
// registered as the executing vm thread's token, the cycles consumed
// are charged to the probe's CPU, and — if the tracker detected that
// this execution consumed another thread's context — the probe is
// switched to the producer's transaction context (§3.5), with no caller
// involvement. regs is the full initial register file (copied in), so
// the per-execution fast paths build no map.
func (a *App) runEmulated(pr *Probe, prog *vm.Program, entry string, regs *[vm.NumRegs]int64) *vm.Thread {
	if a.machine == nil {
		panic("whodunit: emulated critical sections need WithFlowDetection")
	}
	th, err := a.machine.Spawn(prog, entry)
	if err != nil {
		panic(fmt.Sprintf("whodunit: %s: %v", prog.Name, err))
	}
	th.Regs = *regs
	// Token plumbing only matters when the tracker is live (ModeWhodunit);
	// in the other modes the program still executes (at direct cost) but
	// interning contexts would be pure per-op string churn.
	if a.tracker != nil {
		a.flow.consumed, a.flow.consumer = 0, -1
		a.flow.vmCtxt[th.ID] = a.flow.tokenFor(pr.Txn())
	}
	before := th.Cycles
	if err := a.machine.Run(emulatedStepLimit); err != nil {
		panic(fmt.Sprintf("whodunit: %s: %v", prog.Name, err))
	}
	// Capture the delivered flow before Compute blocks this simulated
	// thread: other threads may run their own critical sections on the
	// shared machine while this one waits for the CPU, overwriting the
	// single delivery slot.
	tok, consumer := a.flow.consumed, a.flow.consumer
	pr.Compute(a.cyclesToTime(th.Cycles - before))
	a.machine.Reap()
	if a.tracker != nil {
		delete(a.flow.vmCtxt, th.ID)
		// §3.5: the consumer adopts the producer's context.
		if tok != 0 && consumer == th.ID {
			if tc, ok := a.flow.tokens[tok]; ok {
				pr.SetTxn(tc)
			}
		}
	}
	return th
}

// Queue is a shared-memory FIFO queue whose Push and Pop critical
// sections execute on the app's emulated machine — Figure 1's
// ap_queue_push / ap_queue_pop as a library type. Under Whodunit
// profiling the shared-memory flow tracker watches those critical
// sections and propagates the pusher's transaction context to the
// popper automatically (§3.5): Pop returns with the popping probe
// switched to the context the element was pushed under, with zero
// per-application wiring. Without WithFlowDetection (or outside
// ModeWhodunit) the queue still transports elements, but — like the
// real application without Whodunit attached — no context propagates.
//
// Push and Pop are the critical-section operations; Put and Get are the
// raw transport face of the same queue for message-passing code that
// propagates context explicitly through Endpoints (ipc synopses) or
// carries it in SEDA elements and events. Put may be called from
// scheduler callbacks; Pop and Get block the calling thread until an
// element is available. A Pop that dequeues an element added with raw
// Put returns it as-is (no emulation, no context inference). Element
// order across the two faces is not defined; within Push/Pop it follows
// Figure 1's array semantics — data[nelts++] on push, data[--nelts] on
// pop — so with more than one element buffered the most recently pushed
// element pops first, exactly as the paper's critical sections behave.
type Queue struct {
	Name string

	// PushFrame and PopFrame are the probe frames entered around the
	// emulated critical sections; they default to Figure 1's
	// ap_queue_push / ap_queue_pop.
	PushFrame, PopFrame string

	app      *App
	inner    *vclock.Queue
	lockID   int
	base     int64
	push     *vm.Program
	pop      *vm.Program
	vals     []any
	free     []int64 // popped vals slots available for reuse
	vmLen    int     // elements currently in the vm-side queue (pushes - pops)
	scratch  map[*vclock.Thread]int64
	nscratch int
}

// pushedElem is what Push places on the inner simulator queue: a
// semaphore token recording that the element itself lives in the
// vm-side shared memory. Pop uses it to tell vm-backed elements from
// raw Put ones; Get refuses it (a Push'd element must be popped, or
// the vm-side queue would silently desynchronise). It is unexported,
// so it can only ever appear on its own queue's inner queue.
type pushedElem struct{}

// The vm memory layout bounds how much a queue can hold: data slots are
// 2 words each from base+0x10 up to the scratch region at base+0x7000,
// and scratch slots are 0x40 words each up to the next queue's region
// at base+0x10000. Exceeding either would silently corrupt adjacent
// memory, so Push and scratchFor fail loudly instead.
const (
	maxQueueDepth     = (0x7000 - 0x10) / 2
	maxQueueConsumers = (0x10000 - 0x7000) / 0x40
)

// NewQueue creates a queue attached to the app. The queue's vm resources
// (memory region, lock id, compiled push/pop programs) are allocated
// lazily on first Push, so queues used only as raw transport cost
// nothing beyond the simulator queue they wrap.
func (a *App) NewQueue(name string) *Queue {
	return a.NewQueueOn(0, name)
}

// NewQueueOn is NewQueue with the underlying simulator queue placed on
// time domain shard%Shards() (see WithShards): a queue belongs to one
// domain, and only that domain's threads may Get from it. Putting from
// another domain goes through an App.Pipe targeting the queue.
func (a *App) NewQueueOn(shard int, name string) *Queue {
	return &Queue{
		Name:      name,
		PushFrame: "ap_queue_push",
		PopFrame:  "ap_queue_pop",
		app:       a,
		inner:     a.ShardSim(shard).NewQueue(name),
	}
}

// Raw returns the underlying simulator queue (for code wiring a
// simulation by hand against vclock primitives).
func (q *Queue) Raw() *vclock.Queue { return q.inner }

// Len reports the number of items currently buffered.
func (q *Queue) Len() int { return q.inner.Len() }

// Put appends v without emulation or context inference; it never blocks
// and may be called from scheduler callbacks. Put is the message-fault
// interception point: under a fault plan (WithFaults) each Put on a
// matching queue draws a seeded verdict and may be dropped, delivered
// twice, or delivered after a delay. This covers every message-passing
// transport in the library — ipc-synopsis traffic between endpoints
// rides these queues too. The shared-memory face (Push/Pop) is never
// faulted: its payload lives in emulated memory, and losing the
// semaphore would desynchronise the vm-side queue rather than model a
// lost message.
func (q *Queue) Put(v any) {
	if in := q.app.injector; in != nil {
		switch act, d := in.Message(q.Name); act {
		case faults.Drop:
			return
		case faults.Dup:
			q.inner.Put(v)
		case faults.Delay:
			q.app.sim.After(d, func() { q.inner.Put(v) })
			return
		}
	}
	q.inner.Put(v)
}

// Get removes and returns the oldest item, blocking th until one is
// available. Like Put, it performs no context inference. Get panics if
// the dequeued element was added with Push: the element's payload lives
// in the vm-side queue, and draining it without the pop critical
// section would silently desynchronise that memory — use Pop.
func (q *Queue) Get(th *Thread) any { return q.checkRaw(th.Get(q.inner)) }

// GetTimeout is Get bounded to d of virtual time: it returns (item,
// true) if one arrives in time, or (nil, false) once d elapses — the
// client-side timeout primitive for retry-with-backoff handling of
// dropped or delayed messages (see Stage.Retry). Like Get, it panics
// on elements added with Push.
func (q *Queue) GetTimeout(th *Thread, d Duration) (any, bool) {
	v, ok := th.GetTimeout(q.inner, d)
	if !ok {
		return nil, false
	}
	return q.checkRaw(v), true
}

// TryGet removes and returns the oldest item if one is buffered; it
// never blocks. Like Get, it panics on elements added with Push.
func (q *Queue) TryGet(th *Thread) (any, bool) {
	v, ok := th.TryGet(q.inner)
	if !ok {
		return nil, false
	}
	return q.checkRaw(v), true
}

// GetStep is Get for run-to-completion threads (Stage.GoCoro): it
// blocks the coroutine on the queue and tail-transfers the dequeued
// element to k, applying the same Push/Pop pairing guard as Get. The
// wrapper frame costs one small allocation per call; steady-state loops
// that must not allocate can block with c.Get(q.Raw(), k) and apply
// q.Check at the top of k instead.
func (q *Queue) GetStep(c *Coro, k Frame) Step {
	return c.Get(q.inner, func(c *Coro, v any) Step { return k(c, q.checkRaw(v)) })
}

// GetTimeoutStep is GetTimeout for run-to-completion threads: k receives
// the dequeued element, or nil with c.TimedOut() reporting true once d
// of virtual time elapses first. Like GetStep it allocates one wrapper
// frame per call.
func (q *Queue) GetTimeoutStep(c *Coro, d Duration, k Frame) Step {
	return c.GetTimeout(q.inner, d, func(c *Coro, v any) Step {
		if c.TimedOut() {
			return k(c, nil)
		}
		return k(c, q.checkRaw(v))
	})
}

// Check applies Get's Push/Pop pairing guard to v — for coroutine
// continuations that dequeued v straight off the raw queue
// (c.Get(q.Raw(), k)) to skip GetStep's wrapper allocation. It returns
// v unchanged.
func (q *Queue) Check(v any) any { return q.checkRaw(v) }

func (q *Queue) checkRaw(v any) any {
	if _, ok := v.(pushedElem); ok {
		panic(fmt.Sprintf("whodunit: queue %q: element added with Push must be dequeued with Pop", q.Name))
	}
	return v
}

// queueShape identifies an assembled queue critical section: the
// push/pop code depends only on the vm lock id and the region base, so
// programs are cached process-wide by shape and shared across queues and
// apps. Every app hands out lock ids and bases from the same ReserveCS
// sequence, so a sweep of N identical apps assembles each program once
// instead of once per app. Programs are immutable after assembly and
// each machine keeps its own per-program state, so sharing across
// concurrently running apps (RunApps) is safe; the cache is a sync.Map
// for the same reason.
type queueShape struct {
	lock int
	base int64
	pop  bool
}

var queueProgs sync.Map // queueShape -> *vm.Program

func queueProg(lock int, base int64, pop bool) *vm.Program {
	shape := queueShape{lock, base, pop}
	if p, ok := queueProgs.Load(shape); ok {
		return p.(*vm.Program)
	}
	data := base + 0x10
	var prog *vm.Program
	if pop {
		prog = vm.MustAssemble(fmt.Sprintf("fd_queue_pop@%#x", base), fmt.Sprintf(`
	pop:
		lock %d
		decm  [r1]           ; --queue->nelts
		load  r3, [r1]       ; r3 = nelts
		add   r6, r3, r3
		movi  r7, %#x
		add   r7, r7, r6     ; r7 = &queue->data[nelts]
		load  r4, [r7+0]     ; *sd = elem->sd
		load  r5, [r7+1]     ; *p  = elem->p
		unlock %d
		store [r9+0], r4     ; caller uses sd after return (consume)
		store [r9+1], r5     ; caller uses p  after return (consume)
		halt
	`, lock, data, lock))
	} else {
		prog = vm.MustAssemble(fmt.Sprintf("fd_queue_push@%#x", base), fmt.Sprintf(`
	push:
		lock %d
		load  r3, [r1]       ; r3 = queue->nelts
		add   r6, r3, r3     ; r6 = nelts * 2 (element stride)
		movi  r7, %#x        ; r7 = &queue->data[0]
		add   r7, r7, r6     ; r7 = &queue->data[nelts]
		store [r7+0], r4     ; elem->sd = sd   (produce)
		store [r7+1], r5     ; elem->p  = p    (produce)
		incm  [r1]           ; queue->nelts++
		unlock %d
		halt
	`, lock, data, lock))
	}
	got, _ := queueProgs.LoadOrStore(shape, prog)
	return got.(*vm.Program)
}

// ensure allocates the queue's vm resources: a word-addressed region
// laid out like Figure 1's fd_queue_t ([base] = nelts, data at
// base+0x10, per-consumer scratch words from base+0x7000) and a
// dedicated vm lock (one_big_mutex), plus the push/pop programs for
// those addresses (fetched from the process-wide shape cache).
func (q *Queue) ensure() {
	if q.push != nil {
		return
	}
	q.lockID, q.base = q.app.ReserveCS()
	q.scratch = make(map[*vclock.Thread]int64)
	q.push = queueProg(q.lockID, q.base, false)
	q.pop = queueProg(q.lockID, q.base, true)
}

func (q *Queue) scratchFor(th *Thread) int64 {
	if s, ok := q.scratch[th]; ok {
		return s
	}
	if q.nscratch >= maxQueueConsumers {
		panic(fmt.Sprintf("whodunit: queue %q has more than %d popping threads", q.Name, maxQueueConsumers))
	}
	s := q.base + 0x7000 + int64(q.nscratch)*0x40
	q.nscratch++
	q.scratch[th] = s
	return s
}

// Push appends v, executing the ap_queue_push critical section on the
// app's machine under pr's transaction context. The emulation cycles
// are charged to pr's CPU inside the PushFrame probe frame.
func (q *Queue) Push(pr *Probe, v any) {
	if q.app.machine == nil {
		q.inner.Put(v)
		return
	}
	q.ensure()
	if q.vmLen >= maxQueueDepth {
		panic(fmt.Sprintf("whodunit: queue %q exceeds its vm capacity of %d buffered elements", q.Name, maxQueueDepth))
	}
	// Count the element before the emulated run: runEmulated blocks in
	// Compute, and a concurrent pusher must see the slot as taken or the
	// capacity guard above could be bypassed.
	q.vmLen++
	func() {
		defer pr.Exit(pr.Enter(q.PushFrame))
		var sd int64
		if n := len(q.free); n > 0 {
			sd = q.free[n-1]
			q.free = q.free[:n-1]
			q.vals[sd] = v
		} else {
			sd = int64(len(q.vals))
			q.vals = append(q.vals, v)
		}
		var regs [vm.NumRegs]int64
		regs[1], regs[4], regs[5] = q.base, sd, sd+1_000_000
		q.app.runEmulated(pr, q.push, "push", &regs)
	}()
	q.inner.Put(pushedElem{})
}

// Pop blocks until an element is available, executes the ap_queue_pop
// critical section on the app's machine, and returns the element. If
// the flow tracker detected the handoff, pr comes back switched to the
// transaction context the element was pushed under — the §3.5 context
// propagation, with no user involvement.
func (q *Queue) Pop(pr *Probe) any {
	th := pr.Thread()
	if q.app.machine == nil {
		return th.Get(q.inner)
	}
	got := th.Get(q.inner) // semaphore: an element is available
	if _, ok := got.(pushedElem); !ok {
		// The dequeued element entered through the raw Put face and was
		// never stored in the vm-side queue: hand it over directly, with
		// no critical section and therefore no context inference.
		return got
	}
	// A pushedElem implies the Push that produced it already ran
	// ensure(), so the vm resources exist; raw-only queues never
	// reach this point and stay free of vm state.
	q.vmLen--
	var v any
	func() {
		defer pr.Exit(pr.Enter(q.PopFrame))
		var regs [vm.NumRegs]int64
		regs[1], regs[9] = q.base, q.scratchFor(th)
		t := q.app.runEmulated(pr, q.pop, "pop", &regs)
		// The value comes from the slot the critical section actually
		// popped, so it stays consistent with the propagated context.
		sd := t.Regs[4]
		v = q.vals[sd]
		q.vals[sd] = nil
		q.free = append(q.free, sd) // slot reusable by the next Push
	}()
	return v
}
