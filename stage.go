package whodunit

import (
	"fmt"
	"io"

	"whodunit/internal/event"
	"whodunit/internal/ipc"
	"whodunit/internal/profiler"
	"whodunit/internal/seda"
	"whodunit/internal/tranctx"
	"whodunit/internal/vm"
)

// Stage is one tier of an App: a named profiling domain bundling a
// Profiler, the threads that run in it, and the context-propagation
// machinery it uses — message endpoints, an event loop, SEDA stages.
// Everything a Stage creates is registered with it, so App.Run can dump
// and stitch the whole application without any manual bookkeeping.
type Stage struct {
	Name string

	app          *App
	mode         Mode
	prof         *Profiler
	cpu          *CPU // private CPU, nil means the app's shared one
	privateCores int
	shard        int // time domain (StageShard), folded mod App.Shards()

	defaultEP *Endpoint
	endpoints []*Endpoint
	loop      *EventLoop
	seda      map[string]*SEDAStage

	// Thread bookkeeping for fault injection: specs remembers every
	// declared thread body so a crashed stage can be respawned; threads
	// tracks the currently live spawns so a StageCrash knows whom to
	// kill.
	specs   []threadSpec
	threads []*Thread
}

type threadSpec struct {
	name string
	body func(th *Thread, pr *Probe)       // Stage.Go bodies
	coro func(th *Thread, pr *Probe) Frame // Stage.GoCoro programs
}

func newStage(a *App, name string, opts ...StageOption) *Stage {
	st := &Stage{Name: name, app: a, mode: a.mode}
	for _, opt := range opts {
		opt(st)
	}
	st.shard %= a.shards
	if st.shard != 0 && st.privateCores == 0 {
		panic(fmt.Sprintf("whodunit: stage %q is pinned to shard %d but would share the app CPU, which lives on shard 0; give it StageCPU", name, st.shard))
	}
	st.prof = profiler.New(name, st.mode)
	if a.interval > 0 {
		st.prof.Interval = a.interval
	}
	if st.privateCores > 0 {
		st.cpu = st.sim().NewCPU(name+"-cpu", st.privateCores)
	}
	return st
}

// Shard reports the time domain the stage is pinned to (0 unless
// StageShard was given on a sharded app).
func (st *Stage) Shard() int { return st.shard }

// sim returns the simulator of the stage's time domain.
func (st *Stage) sim() *Sim { return st.app.ShardSim(st.shard) }

// App returns the owning app.
func (st *Stage) App() *App { return st.app }

// Mode returns the stage's profiling mode.
func (st *Stage) Mode() Mode { return st.mode }

// Profiler returns the stage's profiler.
func (st *Stage) Profiler() *Profiler { return st.prof }

// CPU returns the CPU this stage's probes charge: its private one
// (StageCPU) or the app's shared CPU.
func (st *Stage) CPU() *CPU {
	if st.cpu != nil {
		return st.cpu
	}
	return st.app.CPU()
}

// Go starts a simulated thread in this stage. The body receives the
// thread and a ready probe charging the stage's CPU; the probe is also
// attached to the thread (Thread.Data) so crosstalk monitoring can
// resolve the thread's transaction context.
func (st *Stage) Go(name string, body func(th *Thread, pr *Probe)) *Thread {
	st.specs = append(st.specs, threadSpec{name: name, body: body})
	return st.spawn(name, body)
}

// spawn starts a stage thread without recording a new spec — the shared
// path of Go and of crash-restart respawns.
func (st *Stage) spawn(name string, body func(th *Thread, pr *Probe)) *Thread {
	t := st.sim().Go(name, func(th *Thread) {
		pr := st.prof.NewProbe(th, st.CPU())
		th.Data = pr
		body(th, pr)
	})
	st.threads = append(st.threads, t)
	return t
}

// GoCoro starts a run-to-completion thread in this stage: program is
// called once, when the thread starts, with the thread and a ready
// probe (same timing as a Go body's prologue), and returns the frame
// the program begins at. Blocking must go through the Coro methods —
// c.Get/c.Sleep/c.Lock and, for profiled CPU demand, Probe.ComputeStep.
// Like Go bodies, GoCoro programs are recorded for crash respawns.
func (st *Stage) GoCoro(name string, program func(th *Thread, pr *Probe) Frame) *Thread {
	st.specs = append(st.specs, threadSpec{name: name, coro: program})
	return st.spawnCoro(name, program)
}

// spawnCoro is spawn for GoCoro programs: the bootstrap frame creates
// the probe at thread start and tail-transfers into the program.
func (st *Stage) spawnCoro(name string, program func(th *Thread, pr *Probe) Frame) *Thread {
	t := st.sim().GoCoro(name, func(c *Coro, _ any) Step {
		th := c.Thread()
		pr := st.prof.NewProbe(th, st.CPU())
		th.Data = pr
		return c.Goto(program(th, pr))
	})
	st.threads = append(st.threads, t)
	return t
}

// BeginTxn starts a fresh transaction on pr: the probe switches to the
// context consisting of a single call-path hop of this stage through
// path — the §2 "new transaction" established where a request enters
// the system (e.g. the accept point of a listener thread). It replaces
// direct tranctx table manipulation in application code.
func (st *Stage) BeginTxn(pr *Probe, path ...string) TxnCtxt {
	tc := TxnCtxt{Local: st.prof.Table.Root().Extend(tranctx.CallHop(st.Name, path...))}
	pr.SetTxn(tc)
	return tc
}

// WithTxn runs fn with pr switched to tc, restoring the previous
// transaction context afterwards (even if fn panics) — a scoped
// alternative to paired SetTxn calls.
func (st *Stage) WithTxn(pr *Probe, tc TxnCtxt, fn func()) {
	prev := pr.Txn()
	pr.SetTxn(tc)
	defer pr.SetTxn(prev)
	fn()
}

// CriticalSection executes fn while pr's thread holds l exclusively.
// Locks created through App.NewLock report the wait to the crosstalk
// monitor (§6) with the waiting and holding transaction contexts
// resolved from the threads' probes — so a lock-protected region
// written this way is fully observed with no further wiring.
func (st *Stage) CriticalSection(pr *Probe, l *Lock, fn func()) {
	th := pr.Thread()
	th.Lock(l, Exclusive)
	defer th.Unlock(l)
	fn()
}

// EmulatedCS runs prog (assembled with AssembleProgram) from entry on
// the app's machine emulator as pr's thread: registers are preloaded
// from regs, pr's transaction context is registered with the flow
// tracker for the duration, and the cycles consumed are charged to
// pr's CPU. This is the escape hatch for custom shared-memory
// structures; Queue.Push/Pop are built on it. Requires
// WithFlowDetection.
//
// The machine's lock ids and word-addressed memory are shared
// app-wide: App.NewQueue claims lock ids from 1 upward and
// 0x10000-word regions from 0x1000 upward as queues are first pushed
// to. Reserve a lock and region for each custom structure with
// App.ReserveCS instead of hard-coding them.
func (st *Stage) EmulatedCS(pr *Probe, prog *Program, entry string, regs map[byte]int64) *VMThread {
	var rf [vm.NumRegs]int64
	for r, v := range regs {
		rf[r] = v
	}
	return st.app.runEmulated(pr, prog, entry, &rf)
}

// Endpoint returns the stage's default message endpoint, creating and
// registering it on first use. Its sends are included in the stage's
// dump, so cross-stage request edges appear in the stitched graph.
func (st *Stage) Endpoint() *Endpoint {
	if st.defaultEP == nil {
		st.defaultEP = st.NewEndpoint()
	}
	return st.defaultEP
}

// NewEndpoint creates and registers an additional endpoint (one per peer
// connection, for stages that talk to several others).
func (st *Stage) NewEndpoint() *Endpoint {
	e := ipc.NewEndpoint(st.Name)
	st.endpoints = append(st.endpoints, e)
	return e
}

// Conn wraps a fresh registered endpoint around a byte stream, for
// profiling across real transports (pipes, sockets).
func (st *Stage) Conn(rw io.ReadWriter) *Conn {
	return &Conn{E: st.NewEndpoint(), RW: rw}
}

// EventLoop returns the stage's event loop, created on first use and
// interning contexts in the stage's table. Bind it to the dispatching
// thread's probe with BindLoop.
func (st *Stage) EventLoop() *EventLoop {
	if st.loop == nil {
		st.loop = event.NewLoop(st.Name, st.prof.Table)
	}
	return st.loop
}

// BindLoop ties the stage's event loop to pr: before each handler runs,
// pr switches to the freshly computed transaction context, so samples
// taken in the handler land in the per-context tree.
func (st *Stage) BindLoop(pr *Probe) *EventLoop {
	l := st.EventLoop()
	l.OnDispatch = func(curr *Ctxt) { pr.SetLocal(curr) }
	return l
}

// SEDAStage declares (or fetches) a named SEDA stage within this stage's
// program, with in as its input queue.
func (st *Stage) SEDAStage(name string, in seda.Putter) *SEDAStage {
	if ss, ok := st.seda[name]; ok {
		return ss
	}
	if st.seda == nil {
		st.seda = make(map[string]*SEDAStage)
	}
	ss := seda.NewStage(st.Name, name, in)
	st.seda[name] = ss
	return ss
}

// Worker returns a SEDA worker for ss bound to pr: each dequeued
// element switches pr to the element's freshly computed context.
func (st *Stage) Worker(ss *SEDAStage, pr *Probe) *SEDAWorker {
	w := seda.NewWorker(ss, st.prof.Table)
	w.OnDispatch = func(curr *Ctxt) { pr.SetLocal(curr) }
	return w
}

// Inject enqueues external stimulus data to SEDA stage ss with the root
// context — the feed for the first stage of a pipeline.
func (st *Stage) Inject(ss *SEDAStage, data any) { seda.Inject(st.prof.Table, ss, data) }

// Dump captures the stage's profile (and every registered endpoint) for
// post-mortem stitching; App.Run does this automatically.
func (st *Stage) Dump() StageDump { return DumpStage(st.prof, st.endpoints...) }
