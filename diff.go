package whodunit

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"whodunit/internal/cct"
)

// Report diffing — the paper's §9 case studies are all "run A vs run B,
// explain the delta": the same application profiled before and after a
// code change, under two seeds, in two modes. Diff structurally matches
// two Reports of the same application and keeps only what differs:
// per-stage sample/call deltas, per-context CCT trees matched by
// interned frame path with per-node deltas and added/removed subtrees,
// crosstalk-matrix deltas, shared-memory-flow deltas, and
// stitched-graph edge deltas. A diff renders as annotated text, JSON
// (lossless round-trip via ReadDiff), and difffolded-style two-column
// folded stacks (FoldedDiff) for differential flame graphs; MaxDelta
// powers the CI threshold gate of cmd/whodunit-diff.

// Sides of a diff, used in OnlyIn fields for entries present in just one
// report.
const (
	SideA = "a"
	SideB = "b"
)

// NodeDelta is one differing CCT node: the call path (from the tree
// root) with both sides' self samples and call counts. A node present in
// only one report is reported once, as a Subtree row whose counts are
// the subtree's inclusive totals and whose OnlyIn names the side that
// has it; its descendants are not enumerated.
type NodeDelta struct {
	Path    []string `json:"path"`
	SelfA   int64    `json:"self_a"`
	SelfB   int64    `json:"self_b"`
	CallsA  int64    `json:"calls_a,omitempty"`
	CallsB  int64    `json:"calls_b,omitempty"`
	Subtree bool     `json:"subtree,omitempty"`
	OnlyIn  string   `json:"only_in,omitempty"`
}

// TreeDiff is one differing transaction-context tree within a stage.
// Trees are matched across reports by context key (synopsis prefix +
// local context), the identity the stitcher also matches on.
type TreeDiff struct {
	Key    string      `json:"key"`
	Label  string      `json:"label"`
	OnlyIn string      `json:"only_in,omitempty"`
	TotalA int64       `json:"total_a"`
	TotalB int64       `json:"total_b"`
	Nodes  []NodeDelta `json:"nodes,omitempty"`
}

// StageDiff is one differing stage, matched by stage name.
type StageDiff struct {
	Stage     string     `json:"stage"`
	OnlyIn    string     `json:"only_in,omitempty"`
	SamplesA  int64      `json:"samples_a"`
	SamplesB  int64      `json:"samples_b"`
	CallsA    int64      `json:"calls_a,omitempty"`
	CallsB    int64      `json:"calls_b,omitempty"`
	SwitchesA int64      `json:"switches_a,omitempty"`
	SwitchesB int64      `json:"switches_b,omitempty"`
	Trees     []TreeDiff `json:"trees,omitempty"`
}

// CrosstalkDelta is one differing crosstalk-matrix cell, matched by
// (waiter, holder) transaction-type pair.
type CrosstalkDelta struct {
	Waiter string   `json:"waiter"`
	Holder string   `json:"holder"`
	CountA int64    `json:"count_a"`
	CountB int64    `json:"count_b"`
	TotalA Duration `json:"total_a_ns"`
	TotalB Duration `json:"total_b_ns"`
}

// FlowDelta is one differing shared-memory-flow group. Flows are grouped
// by (lock, producer thread, consumer thread) — the stable identity of a
// handoff channel across same-seed runs — and compared by count.
type FlowDelta struct {
	Lock     int   `json:"lock"`
	Producer int   `json:"producer"`
	Consumer int   `json:"consumer"`
	CountA   int64 `json:"count_a"`
	CountB   int64 `json:"count_b"`
}

// EdgeDelta is one differing stitched-graph edge group, matched by the
// (stage, context label) endpoints and the edge kind.
type EdgeDelta struct {
	FromStage string `json:"from_stage"`
	FromLabel string `json:"from_label"`
	ToStage   string `json:"to_stage"`
	ToLabel   string `json:"to_label"`
	Kind      string `json:"kind"`
	CountA    int64  `json:"count_a"`
	CountB    int64  `json:"count_b"`
}

// ReportDiff is the structural difference between two Reports of the
// same application. It holds only differences: an empty diff (Empty)
// means the runs were behaviorally identical at the report level.
type ReportDiff struct {
	AppA     string   `json:"app_a"`
	AppB     string   `json:"app_b"`
	ElapsedA Duration `json:"elapsed_a_ns"`
	ElapsedB Duration `json:"elapsed_b_ns"`
	// WindowA/WindowB carry the compared reports' window metadata when
	// diffing windowed reports (continuous profiling). They are pure
	// provenance: Empty and MaxDelta ignore them, so two behaviorally
	// identical adjacent windows diff empty despite distinct sequence
	// numbers and spans.
	WindowA   *WindowMeta      `json:"window_a,omitempty"`
	WindowB   *WindowMeta      `json:"window_b,omitempty"`
	Stages    []StageDiff      `json:"stages,omitempty"`
	Crosstalk []CrosstalkDelta `json:"crosstalk,omitempty"`
	Flows     []FlowDelta      `json:"flows,omitempty"`
	Edges     []EdgeDelta      `json:"edges,omitempty"`
}

// Diff structurally compares two reports. See ReportDiff.
func Diff(a, b *Report) *ReportDiff {
	d := &ReportDiff{AppA: a.App, AppB: b.App, ElapsedA: a.Elapsed, ElapsedB: b.Elapsed,
		WindowA: a.Window, WindowB: b.Window}
	ft := cct.NewFrameTable()
	d.Stages = diffStages(ft, a.Stages, b.Stages)
	d.Crosstalk = diffCrosstalk(a.Crosstalk, b.Crosstalk)
	d.Flows = diffFlows(a.Flows, b.Flows)
	d.Edges = diffEdges(a.Graph, b.Graph)
	return d
}

// Diff compares r (side A) against other (side B).
func (r *Report) Diff(other *Report) *ReportDiff { return Diff(r, other) }

// Empty reports whether the two reports were identical: same
// application, same elapsed virtual time, and no stage, crosstalk, flow
// or stitched-graph differences.
func (d *ReportDiff) Empty() bool {
	return d.AppA == d.AppB && d.ElapsedA == d.ElapsedB &&
		len(d.Stages) == 0 && len(d.Crosstalk) == 0 && len(d.Flows) == 0 && len(d.Edges) == 0
}

// MaxDelta returns the largest absolute difference the diff records, in
// sample/count units: node self-sample and call deltas, subtree and tree
// totals, stage sample/call/switch deltas, crosstalk wait counts, flow
// counts and stitched-edge counts. Entries present in only one report
// count at least 1, as does an elapsed-time difference — so under
// `-threshold 0` any behavioral divergence gates. Virtual-time
// magnitudes (elapsed, wait durations) are deliberately excluded: they
// are nanosecond-scaled and would swamp a sample-unit threshold.
func (d *ReportDiff) MaxDelta() int64 {
	var max int64
	up := func(a, b int64) {
		delta := a - b
		if delta < 0 {
			delta = -delta
		}
		if delta > max {
			max = delta
		}
	}
	if d.ElapsedA != d.ElapsedB || d.AppA != d.AppB {
		up(1, 0)
	}
	for _, sd := range d.Stages {
		if sd.OnlyIn != "" {
			up(1, 0)
		}
		up(sd.SamplesA, sd.SamplesB)
		up(sd.CallsA, sd.CallsB)
		up(sd.SwitchesA, sd.SwitchesB)
		for _, td := range sd.Trees {
			if td.OnlyIn != "" {
				up(1, 0)
			}
			up(td.TotalA, td.TotalB)
			for _, nd := range td.Nodes {
				up(nd.SelfA, nd.SelfB)
				up(nd.CallsA, nd.CallsB)
				if nd.Subtree {
					up(1, 0)
				}
			}
		}
	}
	for _, cd := range d.Crosstalk {
		up(cd.CountA, cd.CountB)
		if cd.TotalA != cd.TotalB {
			up(1, 0)
		}
	}
	for _, fd := range d.Flows {
		up(fd.CountA, fd.CountB)
	}
	for _, ed := range d.Edges {
		up(ed.CountA, ed.CountB)
	}
	return max
}

// Exceeds reports whether the diff's MaxDelta is beyond threshold — the
// CI gate of cmd/whodunit-diff.
func (d *ReportDiff) Exceeds(threshold int64) bool { return d.MaxDelta() > threshold }

// Mirrored returns the same diff viewed from the other side: every A
// field swapped with its B counterpart and OnlyIn markers flipped.
// Diff(b, a) equals Diff(a, b).Mirrored() — entry orders are symmetric
// by construction (sorted key unions).
func (d *ReportDiff) Mirrored() *ReportDiff {
	flip := func(side string) string {
		switch side {
		case SideA:
			return SideB
		case SideB:
			return SideA
		}
		return side
	}
	m := &ReportDiff{AppA: d.AppB, AppB: d.AppA, ElapsedA: d.ElapsedB, ElapsedB: d.ElapsedA,
		WindowA: d.WindowB, WindowB: d.WindowA}
	for _, sd := range d.Stages {
		ms := StageDiff{
			Stage: sd.Stage, OnlyIn: flip(sd.OnlyIn),
			SamplesA: sd.SamplesB, SamplesB: sd.SamplesA,
			CallsA: sd.CallsB, CallsB: sd.CallsA,
			SwitchesA: sd.SwitchesB, SwitchesB: sd.SwitchesA,
		}
		for _, td := range sd.Trees {
			mt := TreeDiff{
				Key: td.Key, Label: td.Label, OnlyIn: flip(td.OnlyIn),
				TotalA: td.TotalB, TotalB: td.TotalA,
			}
			for _, nd := range td.Nodes {
				mt.Nodes = append(mt.Nodes, NodeDelta{
					Path:  nd.Path,
					SelfA: nd.SelfB, SelfB: nd.SelfA,
					CallsA: nd.CallsB, CallsB: nd.CallsA,
					Subtree: nd.Subtree, OnlyIn: flip(nd.OnlyIn),
				})
			}
			ms.Trees = append(ms.Trees, mt)
		}
		m.Stages = append(m.Stages, ms)
	}
	for _, cd := range d.Crosstalk {
		m.Crosstalk = append(m.Crosstalk, CrosstalkDelta{
			Waiter: cd.Waiter, Holder: cd.Holder,
			CountA: cd.CountB, CountB: cd.CountA,
			TotalA: cd.TotalB, TotalB: cd.TotalA,
		})
	}
	for _, fd := range d.Flows {
		m.Flows = append(m.Flows, FlowDelta{
			Lock: fd.Lock, Producer: fd.Producer, Consumer: fd.Consumer,
			CountA: fd.CountB, CountB: fd.CountA,
		})
	}
	for _, ed := range d.Edges {
		m.Edges = append(m.Edges, EdgeDelta{
			FromStage: ed.FromStage, FromLabel: ed.FromLabel,
			ToStage: ed.ToStage, ToLabel: ed.ToLabel, Kind: ed.Kind,
			CountA: ed.CountB, CountB: ed.CountA,
		})
	}
	return m
}

// --- stage and tree matching ---

// indexStages and indexTrees define the matching identity shared by
// Diff and FoldedDiff: stages match by name, trees by context key.
func indexStages(srs []StageReport) map[string]*StageReport {
	m := make(map[string]*StageReport, len(srs))
	for i := range srs {
		m[srs[i].Stage] = &srs[i]
	}
	return m
}

func indexTrees(tds []TreeDump) map[string]*TreeDump {
	m := make(map[string]*TreeDump, len(tds))
	for i := range tds {
		m[tds[i].Key] = &tds[i]
	}
	return m
}

func diffStages(ft *cct.FrameTable, a, b []StageReport) []StageDiff {
	am, bm := indexStages(a), indexStages(b)
	var out []StageDiff
	for _, name := range sortedKeyUnion(am, bm) {
		sa, sb := am[name], bm[name]
		switch {
		case sb == nil:
			out = append(out, oneSidedStage(sa, SideA))
		case sa == nil:
			out = append(out, oneSidedStage(sb, SideB))
		default:
			sd := StageDiff{
				Stage:    name,
				SamplesA: sa.Samples, SamplesB: sb.Samples,
				CallsA: sa.Calls, CallsB: sb.Calls,
				SwitchesA: sa.CtxtSwitches, SwitchesB: sb.CtxtSwitches,
				Trees: diffTrees(ft, sa.Dump.Trees, sb.Dump.Trees),
			}
			if len(sd.Trees) > 0 || sd.SamplesA != sd.SamplesB ||
				sd.CallsA != sd.CallsB || sd.SwitchesA != sd.SwitchesB {
				out = append(out, sd)
			}
		}
	}
	return out
}

func oneSidedStage(sr *StageReport, side string) StageDiff {
	sd := StageDiff{Stage: sr.Stage, OnlyIn: side}
	for _, td := range sr.Dump.Trees {
		t := TreeDiff{Key: td.Key, Label: td.Label, OnlyIn: side}
		if side == SideA {
			t.TotalA = td.Total
		} else {
			t.TotalB = td.Total
		}
		sd.Trees = append(sd.Trees, t)
	}
	if side == SideA {
		sd.SamplesA, sd.CallsA, sd.SwitchesA = sr.Samples, sr.Calls, sr.CtxtSwitches
	} else {
		sd.SamplesB, sd.CallsB, sd.SwitchesB = sr.Samples, sr.Calls, sr.CtxtSwitches
	}
	return sd
}

func diffTrees(ft *cct.FrameTable, a, b []TreeDump) []TreeDiff {
	am, bm := indexTrees(a), indexTrees(b)
	var out []TreeDiff
	for _, key := range sortedKeyUnion(am, bm) {
		ta, tb := am[key], bm[key]
		switch {
		case tb == nil:
			out = append(out, TreeDiff{Key: key, Label: ta.Label, OnlyIn: SideA, TotalA: ta.Total})
		case ta == nil:
			out = append(out, TreeDiff{Key: key, Label: tb.Label, OnlyIn: SideB, TotalB: tb.Total})
		default:
			td := TreeDiff{Key: key, Label: ta.Label, TotalA: ta.Total, TotalB: tb.Total}
			// Both sides' records rebuild into trees sharing ft, so the
			// matched-node walk below compares FrameIDs and never
			// re-interns a frame name.
			ra := cct.FromRecordsShared(ta.Label, ft, ta.Records)
			rb := cct.FromRecordsShared(tb.Label, ft, tb.Records)
			td.Nodes = diffNodes(ft, ra.Root, rb.Root, nil, td.Nodes)
			if len(td.Nodes) > 0 || td.TotalA != td.TotalB {
				out = append(out, td)
			}
		}
	}
	return out
}

// diffNodes walks two same-context trees in lockstep, matching children
// by interned FrameID (the trees share ft), and appends a NodeDelta for
// every node whose self samples or calls differ. A child present on one
// side only becomes a single Subtree row carrying inclusive totals.
func diffNodes(ft *cct.FrameTable, na, nb *cct.Node, path []string, out []NodeDelta) []NodeDelta {
	ids := mergeChildIDs(ft, na.ChildIDs(), nb.ChildIDs())
	for _, id := range ids {
		ca, cb := na.ChildByID(id), nb.ChildByID(id)
		path = append(path, ft.Name(id))
		switch {
		case cb == nil:
			out = append(out, NodeDelta{
				Path:  clonePath(path),
				SelfA: ca.Inclusive(), CallsA: ca.InclusiveCalls(), Subtree: true, OnlyIn: SideA,
			})
		case ca == nil:
			out = append(out, NodeDelta{
				Path:  clonePath(path),
				SelfB: cb.Inclusive(), CallsB: cb.InclusiveCalls(), Subtree: true, OnlyIn: SideB,
			})
		default:
			if ca.Self != cb.Self || ca.Calls != cb.Calls {
				out = append(out, NodeDelta{
					Path:  clonePath(path),
					SelfA: ca.Self, SelfB: cb.Self,
					CallsA: ca.Calls, CallsB: cb.Calls,
				})
			}
			out = diffNodes(ft, ca, cb, path, out)
		}
		path = path[:len(path)-1]
	}
	return out
}

// mergeChildIDs merges two name-sorted FrameID slices into their sorted
// union. Both slices were issued by ft, so equal names have equal IDs.
func mergeChildIDs(ft *cct.FrameTable, a, b []cct.FrameID) []cct.FrameID {
	out := make([]cct.FrameID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case ft.Name(a[i]) < ft.Name(b[j]):
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func clonePath(path []string) []string {
	p := make([]string, len(path))
	copy(p, path)
	return p
}

// sortedKeyUnion returns the sorted union of two maps' keys — the
// symmetric iteration order that makes Diff(a,b) and Diff(b,a) exact
// mirrors.
func sortedKeyUnion[V any](a, b map[string]V) []string {
	keys := make([]string, 0, len(a)+len(b))
	for k := range a {
		keys = append(keys, k)
	}
	for k := range b {
		if _, ok := a[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// --- crosstalk, flow and graph matching ---

func diffCrosstalk(a, b []CrosstalkPair) []CrosstalkDelta {
	type cell struct {
		count int64
		total Duration
	}
	index := func(ps []CrosstalkPair) map[string]cell {
		m := make(map[string]cell, len(ps))
		for _, p := range ps {
			m[p.Waiter+"\x00"+p.Holder] = cell{p.Count, p.Total}
		}
		return m
	}
	am, bm := index(a), index(b)
	var out []CrosstalkDelta
	for _, k := range sortedKeyUnion(am, bm) {
		ca, cb := am[k], bm[k]
		if ca == cb {
			continue
		}
		waiter, holder, _ := strings.Cut(k, "\x00")
		out = append(out, CrosstalkDelta{
			Waiter: waiter, Holder: holder,
			CountA: ca.count, CountB: cb.count,
			TotalA: ca.total, TotalB: cb.total,
		})
	}
	return out
}

func diffFlows(a, b []FlowEvent) []FlowDelta {
	type flowKey struct{ lock, prod, cons int }
	index := func(fs []FlowEvent) map[flowKey]int64 {
		m := make(map[flowKey]int64, len(fs))
		for _, f := range fs {
			m[flowKey{f.Lock, f.Producer, f.Consumer}]++
		}
		return m
	}
	am, bm := index(a), index(b)
	keys := make([]flowKey, 0, len(am)+len(bm))
	for k := range am {
		keys = append(keys, k)
	}
	for k := range bm {
		if _, ok := am[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].lock != keys[j].lock {
			return keys[i].lock < keys[j].lock
		}
		if keys[i].prod != keys[j].prod {
			return keys[i].prod < keys[j].prod
		}
		return keys[i].cons < keys[j].cons
	})
	var out []FlowDelta
	for _, k := range keys {
		if am[k] == bm[k] {
			continue
		}
		out = append(out, FlowDelta{
			Lock: k.lock, Producer: k.prod, Consumer: k.cons,
			CountA: am[k], CountB: bm[k],
		})
	}
	return out
}

func diffEdges(a, b *TransactionGraph) []EdgeDelta {
	index := func(g *TransactionGraph) map[string]int64 {
		m := make(map[string]int64)
		if g == nil {
			return m
		}
		for _, e := range g.Edges {
			from, to := g.Nodes[e.From], g.Nodes[e.To]
			m[strings.Join([]string{from.Stage, from.Label, to.Stage, to.Label, e.Kind}, "\x00")]++
		}
		return m
	}
	am, bm := index(a), index(b)
	var out []EdgeDelta
	for _, k := range sortedKeyUnion(am, bm) {
		if am[k] == bm[k] {
			continue
		}
		parts := strings.Split(k, "\x00")
		out = append(out, EdgeDelta{
			FromStage: parts[0], FromLabel: parts[1],
			ToStage: parts[2], ToLabel: parts[3], Kind: parts[4],
			CountA: am[k], CountB: bm[k],
		})
	}
	return out
}

// --- renderers ---

// JSON writes the diff as indented JSON; ReadDiff decodes it losslessly.
func (d *ReportDiff) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		return fmt.Errorf("whodunit: encode diff: %w", err)
	}
	return nil
}

// ReadDiff decodes a JSON diff written by ReportDiff.JSON.
func ReadDiff(r io.Reader) (*ReportDiff, error) {
	var d ReportDiff
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("whodunit: decode diff: %w", err)
	}
	return &d, nil
}

func delta(a, b int64) string {
	if b >= a {
		return fmt.Sprintf("+%d", b-a)
	}
	return fmt.Sprintf("%d", b-a)
}

// Text writes the annotated human-readable diff: ± per-node sample
// deltas under each differing context tree, then crosstalk, flow and
// stitched-graph deltas. An empty diff prints a single line saying so.
func (d *ReportDiff) Text(w io.Writer) {
	fmt.Fprintf(w, "=== whodunit diff: %s (A) vs %s (B) ===\n", d.AppA, d.AppB)
	if d.WindowA != nil || d.WindowB != nil {
		wfmt := func(m *WindowMeta) string {
			if m == nil {
				return "(whole run)"
			}
			return fmt.Sprintf("window %d [%.6fs, %.6fs)", m.Seq, m.Start.Seconds(), m.End.Seconds())
		}
		fmt.Fprintf(w, "%s vs %s\n", wfmt(d.WindowA), wfmt(d.WindowB))
	}
	if d.Empty() {
		fmt.Fprintln(w, "reports are identical")
		return
	}
	if d.ElapsedA != d.ElapsedB {
		fmt.Fprintf(w, "virtual time: %.6fs -> %.6fs\n", d.ElapsedA.Seconds(), d.ElapsedB.Seconds())
	}
	for _, sd := range d.Stages {
		switch sd.OnlyIn {
		case SideA:
			fmt.Fprintf(w, "\n- stage %s only in A: %d samples\n", sd.Stage, sd.SamplesA)
		case SideB:
			fmt.Fprintf(w, "\n+ stage %s only in B: %d samples\n", sd.Stage, sd.SamplesB)
		default:
			fmt.Fprintf(w, "\nstage %s: samples %d -> %d (%s)", sd.Stage,
				sd.SamplesA, sd.SamplesB, delta(sd.SamplesA, sd.SamplesB))
			if sd.CallsA != sd.CallsB {
				fmt.Fprintf(w, ", calls %d -> %d", sd.CallsA, sd.CallsB)
			}
			if sd.SwitchesA != sd.SwitchesB {
				fmt.Fprintf(w, ", context switches %d -> %d", sd.SwitchesA, sd.SwitchesB)
			}
			fmt.Fprintln(w)
		}
		for _, td := range sd.Trees {
			switch td.OnlyIn {
			case SideA:
				fmt.Fprintf(w, "  - context only in A: %s (%d samples)\n", td.Label, td.TotalA)
			case SideB:
				fmt.Fprintf(w, "  + context only in B: %s (%d samples)\n", td.Label, td.TotalB)
			default:
				fmt.Fprintf(w, "  context %s: %d -> %d (%s)\n",
					td.Label, td.TotalA, td.TotalB, delta(td.TotalA, td.TotalB))
			}
			for _, nd := range td.Nodes {
				frames := strings.Join(nd.Path, ";")
				switch {
				case nd.OnlyIn == SideA:
					fmt.Fprintf(w, "    - %s (subtree, %d samples)\n", frames, nd.SelfA)
				case nd.OnlyIn == SideB:
					fmt.Fprintf(w, "    + %s (subtree, %d samples)\n", frames, nd.SelfB)
				default:
					fmt.Fprintf(w, "    ± %s: self %d -> %d (%s)", frames,
						nd.SelfA, nd.SelfB, delta(nd.SelfA, nd.SelfB))
					if nd.CallsA != nd.CallsB {
						fmt.Fprintf(w, ", calls %d -> %d", nd.CallsA, nd.CallsB)
					}
					fmt.Fprintln(w)
				}
			}
		}
	}
	if len(d.Crosstalk) > 0 {
		fmt.Fprintf(w, "\ncrosstalk deltas (waiter <- holder):\n")
		for _, cd := range d.Crosstalk {
			fmt.Fprintf(w, "  %-24s %-24s count %d -> %d, total wait %.2fms -> %.2fms\n",
				cd.Waiter, cd.Holder, cd.CountA, cd.CountB, cd.TotalA.Millis(), cd.TotalB.Millis())
		}
	}
	if len(d.Flows) > 0 {
		fmt.Fprintf(w, "\nshared-memory flow deltas:\n")
		for _, fd := range d.Flows {
			fmt.Fprintf(w, "  lock %d t%d->t%d: %d -> %d flows\n",
				fd.Lock, fd.Producer, fd.Consumer, fd.CountA, fd.CountB)
		}
	}
	if len(d.Edges) > 0 {
		fmt.Fprintf(w, "\nstitched-graph edge deltas:\n")
		for _, ed := range d.Edges {
			fmt.Fprintf(w, "  [%s] %s -%s-> [%s] %s: %d -> %d\n",
				ed.FromStage, ed.FromLabel, ed.Kind, ed.ToStage, ed.ToLabel, ed.CountA, ed.CountB)
		}
	}
}

// FoldedDiff writes the two reports as two-column folded stacks — the
// difffolded.pl format flamegraph.pl consumes for differential flame
// graphs:
//
//	stage;context;frame;frame... selfA selfB
//
// Every call path with samples in either report is emitted (unchanged
// paths included — the renderer needs both columns to size and color
// frames), in the deterministic stage/context/path order Diff uses.
func FoldedDiff(a, b *Report, w io.Writer) {
	ft := cct.NewFrameTable()
	am, bm := indexStages(a.Stages), indexStages(b.Stages)
	for _, stage := range sortedKeyUnion(am, bm) {
		ta := map[string]*TreeDump{}
		tb := map[string]*TreeDump{}
		if sr := am[stage]; sr != nil {
			ta = indexTrees(sr.Dump.Trees)
		}
		if sr := bm[stage]; sr != nil {
			tb = indexTrees(sr.Dump.Trees)
		}
		for _, key := range sortedKeyUnion(ta, tb) {
			da, db := ta[key], tb[key]
			label := ""
			var ra, rb *cct.Tree
			if da != nil {
				label = da.Label
				ra = cct.FromRecordsShared(da.Label, ft, da.Records)
			} else {
				ra = cct.NewShared("", ft)
			}
			if db != nil {
				label = db.Label
				rb = cct.FromRecordsShared(db.Label, ft, db.Records)
			} else {
				rb = cct.NewShared("", ft)
			}
			foldNodes(ft, ra.Root, rb.Root, stage+";"+label, w)
		}
	}
}

func foldNodes(ft *cct.FrameTable, na, nb *cct.Node, prefix string, w io.Writer) {
	for _, id := range mergeChildIDs(ft, na.ChildIDs(), nb.ChildIDs()) {
		ca, cb := na.ChildByID(id), nb.ChildByID(id)
		line := prefix + ";" + ft.Name(id)
		var selfA, selfB int64
		if ca != nil {
			selfA = ca.Self
		}
		if cb != nil {
			selfB = cb.Self
		}
		if selfA != 0 || selfB != 0 {
			fmt.Fprintf(w, "%s %d %d\n", line, selfA, selfB)
		}
		switch {
		case cb == nil:
			foldOneSide(ft, ca, line, w, true)
		case ca == nil:
			foldOneSide(ft, cb, line, w, false)
		default:
			foldNodes(ft, ca, cb, line, w)
		}
	}
}

func foldOneSide(ft *cct.FrameTable, n *cct.Node, prefix string, w io.Writer, sideA bool) {
	for _, id := range n.ChildIDs() {
		c := n.ChildByID(id)
		line := prefix + ";" + ft.Name(id)
		if c.Self != 0 {
			if sideA {
				fmt.Fprintf(w, "%s %d 0\n", line, c.Self)
			} else {
				fmt.Fprintf(w, "%s 0 %d\n", line, c.Self)
			}
		}
		foldOneSide(ft, c, line, w, sideA)
	}
}
