// Command fdqueue demonstrates the paper's central claim (§3.5) through
// the flow-plumbing API: transaction context crosses threads through a
// plain shared-memory queue with *zero* propagation code in the
// application. A listener pushes accepted connections into App.NewQueue
// — Figure 1's ap_queue_push/ap_queue_pop as a library type, whose
// critical sections execute on the emulated machine — and each worker's
// probe comes back from Pop already carrying the listener's transaction
// context: the workers' CPU is attributed to the accept point that
// triggered it, though neither side ever mentions contexts, tokens,
// machines or trackers.
package main

import (
	"fmt"

	"whodunit"
)

func main() {
	app := whodunit.NewApp("fdqueue",
		whodunit.WithMode(whodunit.ModeWhodunit),
		whodunit.WithCores(2),
		whodunit.WithFlowDetection())
	st := app.Stage("fdqueue")
	connQ := app.NewQueue("conns")

	const conns = 120
	served := 0

	// Listener: each accepted connection starts a fresh transaction at
	// the accept call path, then goes through the shared-memory queue.
	st.Go("listener", func(th *whodunit.Thread, pr *whodunit.Probe) {
		for c := 0; c < conns; c++ {
			func() {
				defer pr.Exit(pr.Enter("listener_thread"))
				kind := "static"
				if c%3 == 0 {
					kind = "dynamic"
				}
				// Two accept paths -> two transaction types.
				st.BeginTxn(pr, "listener_thread", "accept_"+kind)
				pr.Compute(50 * whodunit.Microsecond)
				connQ.Push(pr, kind)
			}()
		}
	})

	// Workers: no context code at all — Pop hands each element over with
	// the pusher's transaction context already installed on the probe.
	for w := 0; w < 4; w++ {
		st.Go(fmt.Sprintf("worker-%d", w), func(th *whodunit.Thread, pr *whodunit.Probe) {
			for {
				func() {
					defer pr.Exit(pr.Enter("worker_thread"))
					kind := connQ.Pop(pr).(string)
					cost := 2 * whodunit.Millisecond
					if kind == "dynamic" {
						cost = 6 * whodunit.Millisecond
					}
					func() {
						defer pr.Exit(pr.Enter("serve_connection"))
						pr.Compute(cost)
					}()
					served++
				}()
			}
		})
	}

	report := app.RunUntil(func() bool { return served >= conns })

	fmt.Printf("flows detected through the fd queue: %d\n\n", len(report.Flows))
	fmt.Println("Worker CPU by the listener context that produced each connection:")
	for _, sh := range report.StageNamed("fdqueue").Shares {
		if sh.Samples > 0 {
			fmt.Printf("  %6.2f%%  %s\n", 100*sh.Share, sh.Label)
		}
	}
	fmt.Println("\nNeither the listener nor the workers contain any propagation")
	fmt.Println("code: the queue's critical sections run on the emulated machine")
	fmt.Println("and the flow tracker carries the context across (§3.5).")
}
