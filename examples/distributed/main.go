// Command distributed shows Whodunit's cross-process story over a real
// byte stream: two "processes" (goroutines) talk over a net.Pipe using
// the framed wire protocol; the 4-byte context synopses piggy-backed on
// each message let the server keep one calling context tree per client
// transaction type, and the receive wrapper recognises responses by
// matching its own synopsis prefix. Each side then dumps its profile as
// JSON — the artefact Whodunit's post-mortem phase stitches.
package main

import (
	"fmt"
	"net"
	"os"

	"whodunit"
)

func main() {
	clientSide, serverSide := net.Pipe()
	defer clientSide.Close()
	defer serverSide.Close()

	clientProf := whodunit.NewProfiler("client", whodunit.ModeWhodunit)
	serverProf := whodunit.NewProfiler("server", whodunit.ModeWhodunit)

	// Probes normally charge CPU to a simulated core; the wire protocol
	// itself is simulation-free, so give each probe a tiny private sim.
	mkProbe := func(p *whodunit.Profiler) *whodunit.Probe {
		s := whodunit.NewSim()
		cpu := s.NewCPU("cpu", 1)
		var pr *whodunit.Probe
		s.Go("init", func(th *whodunit.Thread) { pr = p.NewProbe(th, cpu) })
		s.Run()
		return pr
	}
	clientPr, serverPr := mkProbe(clientProf), mkProbe(serverProf)

	clientConn := &whodunit.Conn{E: whodunit.NewEndpoint("client"), RW: clientSide}
	serverConn := &whodunit.Conn{E: whodunit.NewEndpoint("server"), RW: serverSide}

	serverDone := make(chan struct{})
	var serverPrefixes []string
	go func() {
		defer close(serverDone)
		seen := map[string]bool{}
		for i := 0; i < 4; i++ {
			payload, kind, err := serverConn.Recv(serverPr)
			if err != nil {
				fmt.Fprintln(os.Stderr, "server:", err)
				return
			}
			if p := serverPr.Txn().Prefix.String(); !seen[p] {
				seen[p] = true
				serverPrefixes = append(serverPrefixes, p)
			}
			func() {
				defer serverPr.Exit(serverPr.Enter("handle_" + string(payload)))
				if err := serverConn.Send(serverPr, append([]byte("ok:"), payload...)); err != nil {
					fmt.Fprintln(os.Stderr, "server send:", err)
				}
			}()
			_ = kind
		}
	}()

	for _, op := range []string{"get", "put", "get", "put"} {
		func() {
			defer clientPr.Exit(clientPr.Enter("do_" + op))
			if err := clientConn.Send(clientPr, []byte(op)); err != nil {
				fmt.Fprintln(os.Stderr, "client send:", err)
				os.Exit(1)
			}
			payload, kind, err := clientConn.Recv(clientPr)
			if err != nil {
				fmt.Fprintln(os.Stderr, "client recv:", err)
				os.Exit(1)
			}
			fmt.Printf("client: %s -> %q (%v)\n", op, payload, kind)
		}()
	}
	<-serverDone

	fmt.Println("\nServer transaction contexts (one synopsis per client call path):")
	for _, p := range serverPrefixes {
		fmt.Printf("  prefix %s\n", p)
	}

	fmt.Println("\nServer profile dump (stitchable JSON):")
	dump := whodunit.DumpStage(serverProf)
	if err := dump.Encode(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "encode:", err)
		os.Exit(1)
	}
}
