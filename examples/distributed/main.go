// Command distributed shows Whodunit's cross-process story over a real
// byte stream: two "processes" (each its own App, as each would be in a
// genuinely distributed deployment) talk over a net.Pipe using the framed
// wire protocol; the 4-byte context synopses piggy-backed on each message
// let the server keep one calling context tree per client transaction
// type, and the receive wrapper recognises responses by matching its own
// synopsis prefix. Each side then dumps its profile, and ReportFromDumps
// performs the post-mortem phase: a unified Report whose transaction
// graph spans both processes.
package main

import (
	"fmt"
	"net"
	"os"

	"whodunit"
)

// newStage builds a one-stage App for one side of the wire and returns
// the stage plus a ready probe. Probes normally charge CPU to a simulated
// core; the wire protocol itself is simulation-free, so the probe's
// thread runs (and exits) inside a private simulator.
func newStage(name string) (*whodunit.Stage, *whodunit.Probe) {
	app := whodunit.NewApp(name, whodunit.WithMode(whodunit.ModeWhodunit))
	st := app.Stage(name)
	var pr *whodunit.Probe
	st.Go("init", func(th *whodunit.Thread, p *whodunit.Probe) { pr = p })
	app.Sim().Run()
	return st, pr
}

func main() {
	clientSide, serverSide := net.Pipe()
	defer clientSide.Close()
	defer serverSide.Close()

	client, clientPr := newStage("client")
	server, serverPr := newStage("server")
	clientConn := client.Conn(clientSide)
	serverConn := server.Conn(serverSide)

	serverDone := make(chan struct{})
	var serverPrefixes []string
	go func() {
		defer close(serverDone)
		seen := map[string]bool{}
		for i := 0; i < 4; i++ {
			payload, kind, err := serverConn.Recv(serverPr)
			if err != nil {
				fmt.Fprintln(os.Stderr, "server:", err)
				return
			}
			if p := serverPr.Txn().Prefix.String(); !seen[p] {
				seen[p] = true
				serverPrefixes = append(serverPrefixes, p)
			}
			func() {
				defer serverPr.Exit(serverPr.Enter("handle_" + string(payload)))
				if err := serverConn.Send(serverPr, append([]byte("ok:"), payload...)); err != nil {
					fmt.Fprintln(os.Stderr, "server send:", err)
				}
			}()
			_ = kind
		}
	}()

	for _, op := range []string{"get", "put", "get", "put"} {
		func() {
			defer clientPr.Exit(clientPr.Enter("do_" + op))
			if err := clientConn.Send(clientPr, []byte(op)); err != nil {
				fmt.Fprintln(os.Stderr, "client send:", err)
				os.Exit(1)
			}
			payload, kind, err := clientConn.Recv(clientPr)
			if err != nil {
				fmt.Fprintln(os.Stderr, "client recv:", err)
				os.Exit(1)
			}
			fmt.Printf("client: %s -> %q (%v)\n", op, payload, kind)
		}()
	}
	<-serverDone

	fmt.Println("\nServer transaction contexts (one synopsis per client call path):")
	for _, p := range serverPrefixes {
		fmt.Printf("  prefix %s\n", p)
	}

	// The post-mortem phase: each process dumps its stage, and the dumps
	// are stitched into one report spanning both sides of the wire.
	report := whodunit.ReportFromDumps("distributed", client.Dump(), server.Dump())
	fmt.Println("\nUnified cross-process report:")
	report.Text(os.Stdout)

	fmt.Println("\nReport as JSON (the artefact a collector would ship):")
	if err := report.JSON(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "encode:", err)
		os.Exit(1)
	}
}
