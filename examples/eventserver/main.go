// Command eventserver profiles an event-driven server (a miniature Squid)
// with Whodunit's event library through the App/Stage API: handlers need
// no instrumentation — the stage's event loop propagates transaction
// contexts through continuations, splitting the shared write handler's
// cost between cache-hit and cache-miss transaction contexts (the
// Figure 9 effect).
package main

import (
	"fmt"

	"whodunit"
)

func main() {
	app := whodunit.NewApp("eventserver", whodunit.WithCores(1))
	proxy := app.Stage("proxy")
	loop := proxy.EventLoop()
	ready := app.NewQueue("ready")

	cache := map[int]bool{}
	served := 0
	const total = 200

	var pr *whodunit.Probe
	var hWrite, hFetch, hRead *whodunit.EventHandler
	hWrite = &whodunit.EventHandler{Name: "write_reply", Fn: func(l *whodunit.EventLoop, ev *whodunit.Event) {
		pr.Compute(4 * whodunit.Millisecond)
		served++
	}}
	hFetch = &whodunit.EventHandler{Name: "fetch_origin", Fn: func(l *whodunit.EventLoop, ev *whodunit.Event) {
		pr.Compute(9 * whodunit.Millisecond)
		cache[ev.Data.(int)] = true
		ready.Put(l.NewEvent(hWrite, ev.Data))
	}}
	hRead = &whodunit.EventHandler{Name: "read_request", Fn: func(l *whodunit.EventLoop, ev *whodunit.Event) {
		pr.Compute(whodunit.Millisecond)
		obj := ev.Data.(int)
		if cache[obj] {
			ready.Put(l.NewEvent(hWrite, obj))
		} else {
			ready.Put(l.NewEvent(hFetch, obj))
		}
	}}

	for i := 0; i < total; i++ {
		ready.Put(&whodunit.Event{Handler: hRead, Data: i % 40})
	}

	proxy.Go("event_loop", func(th *whodunit.Thread, probe *whodunit.Probe) {
		pr = probe
		proxy.BindLoop(pr)
		for served < total {
			loop.Dispatch(ready.Get(th).(*whodunit.Event))
		}
	})
	report := app.Run()

	fmt.Println("Proxy CPU by event-handler transaction context:")
	for _, sh := range report.StageNamed("proxy").Shares {
		if sh.Samples > 0 {
			fmt.Printf("  %6.2f%%  %s\n", 100*sh.Share, sh.Label)
		}
	}
	fmt.Println("\nNote how write_reply appears twice: once via the hit path")
	fmt.Println("(read_request | write_reply) and once via the miss path")
	fmt.Println("(read_request | fetch_origin | write_reply).")
}
