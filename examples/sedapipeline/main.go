// Command sedapipeline profiles a SEDA-style staged pipeline (a
// miniature Haboob): stage workers dequeue elements, the middleware
// computes each element's transaction context, and the shared output
// stage's CPU is split between the paths that reach it (the Figure 10
// effect).
package main

import (
	"fmt"

	"whodunit"
	"whodunit/internal/seda"
)

func main() {
	s := whodunit.NewSim()
	cpu := s.NewCPU("cpu", 2)
	prof := whodunit.NewProfiler("pipeline", whodunit.ModeWhodunit)

	qIn, qHit, qMiss, qOut := s.NewQueue("in"), s.NewQueue("hit"), s.NewQueue("miss"), s.NewQueue("out")
	stIn := whodunit.NewSEDAStage("pipe", "Classify", qIn)
	stHit := whodunit.NewSEDAStage("pipe", "FastPath", qHit)
	stMiss := whodunit.NewSEDAStage("pipe", "SlowPath", qMiss)
	stOut := whodunit.NewSEDAStage("pipe", "Reply", qOut)

	const total = 300
	done := 0

	worker := func(st *whodunit.SEDAStage, body func(w *whodunit.SEDAWorker, pr *whodunit.Probe, data any)) {
		s.Go(st.Name, func(th *whodunit.Thread) {
			pr := prof.NewProbe(th, cpu)
			w := whodunit.NewSEDAWorker(st, prof)
			w.OnDispatch = func(c *whodunit.Ctxt) { pr.SetLocal(c) }
			q := st.In.(*whodunit.Queue)
			for {
				elem := th.Get(q).(*whodunit.SEDAElem)
				data := w.Begin(elem)
				func() {
					defer pr.Exit(pr.Enter(st.Name))
					body(w, pr, data)
				}()
			}
		})
	}

	worker(stIn, func(w *whodunit.SEDAWorker, pr *whodunit.Probe, data any) {
		pr.Compute(whodunit.Millisecond)
		if data.(int)%3 == 0 {
			w.Enqueue(stMiss, data)
		} else {
			w.Enqueue(stHit, data)
		}
	})
	worker(stHit, func(w *whodunit.SEDAWorker, pr *whodunit.Probe, data any) {
		pr.Compute(2 * whodunit.Millisecond)
		w.Enqueue(stOut, data)
	})
	worker(stMiss, func(w *whodunit.SEDAWorker, pr *whodunit.Probe, data any) {
		pr.Compute(12 * whodunit.Millisecond)
		w.Enqueue(stOut, data)
	})
	worker(stOut, func(w *whodunit.SEDAWorker, pr *whodunit.Probe, data any) {
		pr.Compute(3 * whodunit.Millisecond)
		done++
	})

	for i := 0; i < total; i++ {
		seda.Inject(prof.Table, stIn, i)
	}
	s.RunUntil(func() bool { return done >= total })
	s.Shutdown()

	fmt.Println("Pipeline CPU by stage-sequence transaction context:")
	for _, sh := range prof.Shares() {
		if sh.Samples > 0 {
			fmt.Printf("  %6.2f%%  %s\n", 100*sh.Share, sh.Label)
		}
	}
	fmt.Println("\nReply appears under two contexts: Classify|FastPath|Reply and")
	fmt.Println("Classify|SlowPath|Reply — a conventional profiler would merge them.")
}
