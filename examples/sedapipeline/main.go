// Command sedapipeline profiles a SEDA-style staged pipeline (a
// miniature Haboob) through the App/Stage API: stage workers dequeue
// elements, the middleware computes each element's transaction context,
// and the shared output stage's CPU is split between the paths that
// reach it (the Figure 10 effect).
package main

import (
	"fmt"

	"whodunit"
)

func main() {
	app := whodunit.NewApp("sedapipeline", whodunit.WithCores(2))
	pipe := app.Stage("pipe")

	qIn, qHit, qMiss, qOut := app.NewQueue("in"), app.NewQueue("hit"), app.NewQueue("miss"), app.NewQueue("out")
	stIn := pipe.SEDAStage("Classify", qIn)
	stHit := pipe.SEDAStage("FastPath", qHit)
	stMiss := pipe.SEDAStage("SlowPath", qMiss)
	stOut := pipe.SEDAStage("Reply", qOut)

	const total = 300
	done := 0

	worker := func(st *whodunit.SEDAStage, body func(w *whodunit.SEDAWorker, pr *whodunit.Probe, data any)) {
		pipe.Go(st.Name, func(th *whodunit.Thread, pr *whodunit.Probe) {
			w := pipe.Worker(st, pr)
			q := st.In.(*whodunit.Queue)
			for {
				data := w.Begin(q.Get(th).(*whodunit.SEDAElem))
				func() {
					defer pr.Exit(pr.Enter(st.Name))
					body(w, pr, data)
				}()
			}
		})
	}

	worker(stIn, func(w *whodunit.SEDAWorker, pr *whodunit.Probe, data any) {
		pr.Compute(whodunit.Millisecond)
		if data.(int)%3 == 0 {
			w.Enqueue(stMiss, data)
		} else {
			w.Enqueue(stHit, data)
		}
	})
	worker(stHit, func(w *whodunit.SEDAWorker, pr *whodunit.Probe, data any) {
		pr.Compute(2 * whodunit.Millisecond)
		w.Enqueue(stOut, data)
	})
	worker(stMiss, func(w *whodunit.SEDAWorker, pr *whodunit.Probe, data any) {
		pr.Compute(12 * whodunit.Millisecond)
		w.Enqueue(stOut, data)
	})
	worker(stOut, func(w *whodunit.SEDAWorker, pr *whodunit.Probe, data any) {
		pr.Compute(3 * whodunit.Millisecond)
		done++
	})

	for i := 0; i < total; i++ {
		pipe.Inject(stIn, i)
	}
	report := app.RunUntil(func() bool { return done >= total })

	fmt.Println("Pipeline CPU by stage-sequence transaction context:")
	for _, sh := range report.StageNamed("pipe").Shares {
		if sh.Samples > 0 {
			fmt.Printf("  %6.2f%%  %s\n", 100*sh.Share, sh.Label)
		}
	}
	fmt.Println("\nReply appears under two contexts: Classify|FastPath|Reply and")
	fmt.Println("Classify|SlowPath|Reply — a conventional profiler would merge them.")
}
