// Command quickstart is the smallest complete Whodunit example: a
// two-stage application (web front end + database back end) declared
// with the App/Stage runtime API, profiled transactionally. It shows the
// paper's core claim in miniature: the database's per-query CPU is
// attributed back to the *front-end page* that triggered it, something a
// conventional profiler cannot do — and App.Run stitches the per-stage
// profiles into the end-to-end transaction graph automatically.
package main

import (
	"fmt"
	"os"

	"whodunit"
)

func main() {
	app := whodunit.NewApp("quickstart",
		whodunit.WithMode(whodunit.ModeWhodunit),
		whodunit.WithCores(2))
	web, db := app.Stage("web"), app.Stage("db")
	reqQ, respQ := app.NewQueue("requests"), app.NewQueue("responses")

	const rounds = 50

	// Database stage: every received request establishes the sender's
	// transaction context; samples taken while serving it land in that
	// context's calling context tree.
	db.Go("db", func(th *whodunit.Thread, pr *whodunit.Probe) {
		for i := 0; i < 2*rounds; i++ {
			msg := reqQ.Get(th).(whodunit.Msg)
			db.Endpoint().Recv(pr, msg)
			func() {
				defer pr.Exit(pr.Enter("exec_query"))
				// "search" queries sort; "home" queries just look up.
				if msg.Data == "search" {
					defer pr.Exit(pr.Enter("sort_rows"))
					pr.Compute(30 * whodunit.Millisecond)
				} else {
					pr.Compute(3 * whodunit.Millisecond)
				}
				respQ.Put(db.Endpoint().Send(pr, nil))
			}()
		}
	})

	// Web stage: two page types, each a distinct call path and therefore
	// a distinct transaction type.
	web.Go("web", func(th *whodunit.Thread, pr *whodunit.Probe) {
		for i := 0; i < rounds; i++ {
			for _, page := range []string{"home", "search"} {
				func() {
					defer pr.Exit(pr.Enter("serve_" + page))
					pr.Compute(whodunit.Millisecond)
					reqQ.Put(web.Endpoint().Send(pr, page))
					web.Endpoint().Recv(pr, respQ.Get(th).(whodunit.Msg))
				}()
			}
		}
	})

	report := app.Run()

	fmt.Println("Database CPU by front-end transaction context:")
	for _, sh := range report.StageNamed("db").Shares {
		if sh.Samples == 0 {
			continue
		}
		fmt.Printf("  %6.2f%%  %s\n", 100*sh.Share, sh.Label)
	}

	fmt.Println("\nStitched transaction graph:")
	report.Graph.Render(os.Stdout)
}
