// Command quickstart is the smallest complete Whodunit example: a
// two-stage application (web front end + database back end) running on
// the virtual-time simulator, profiled transactionally. It shows the
// paper's core claim in miniature: the database's per-query CPU is
// attributed back to the *front-end page* that triggered it, something a
// conventional profiler cannot do.
package main

import (
	"fmt"
	"os"

	"whodunit"
)

func main() {
	s := whodunit.NewSim()
	cpu := s.NewCPU("cpu", 2)
	webProf := whodunit.NewProfiler("web", whodunit.ModeWhodunit)
	dbProf := whodunit.NewProfiler("db", whodunit.ModeWhodunit)
	webEP := whodunit.NewEndpoint("web")
	dbEP := whodunit.NewEndpoint("db")
	reqQ := s.NewQueue("requests")
	respQ := s.NewQueue("responses")

	const rounds = 50

	// Database stage: every received request establishes the sender's
	// transaction context; samples taken while serving it land in that
	// context's calling context tree.
	s.Go("db", func(th *whodunit.Thread) {
		pr := dbProf.NewProbe(th, cpu)
		for i := 0; i < 2*rounds; i++ {
			msg := th.Get(reqQ).(whodunit.Msg)
			dbEP.Recv(pr, msg)
			func() {
				defer pr.Exit(pr.Enter("exec_query"))
				// "search" queries sort; "home" queries just look up.
				if msg.Data == "search" {
					defer pr.Exit(pr.Enter("sort_rows"))
					pr.Compute(30 * whodunit.Millisecond)
				} else {
					pr.Compute(3 * whodunit.Millisecond)
				}
				respQ.Put(dbEP.Send(pr, nil))
			}()
		}
	})

	// Web stage: two page types, each a distinct call path and therefore
	// a distinct transaction type.
	s.Go("web", func(th *whodunit.Thread) {
		pr := webProf.NewProbe(th, cpu)
		for i := 0; i < rounds; i++ {
			for _, page := range []string{"home", "search"} {
				func() {
					defer pr.Exit(pr.Enter("serve_" + page))
					pr.Compute(whodunit.Millisecond)
					reqQ.Put(webEP.Send(pr, page))
					webEP.Recv(pr, th.Get(respQ).(whodunit.Msg))
				}()
			}
		}
	})

	s.Run()
	s.Shutdown()

	fmt.Println("Database CPU by front-end transaction context:")
	for _, sh := range dbProf.Shares() {
		if sh.Samples == 0 {
			continue
		}
		fmt.Printf("  %6.2f%%  %s\n", 100*sh.Share, sh.Label)
	}

	fmt.Println("\nStitched transaction graph:")
	g := whodunit.Stitch([]whodunit.StageDump{
		whodunit.DumpStage(webProf, webEP),
		whodunit.DumpStage(dbProf, dbEP),
	})
	g.Render(os.Stdout)
}
