package whodunit_test

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design choices called out in DESIGN.md. The
// benchmarks run the reduced-scale (Quick) experiments — the same code
// paths as the full runs in cmd/whodunit-bench — and report the headline
// quantity of each result as a custom metric, so `go test -bench=.`
// regenerates the shape of every paper result.

import (
	"testing"

	"whodunit"
	"whodunit/internal/event"
	"whodunit/internal/experiments"
	"whodunit/internal/profiler"
	"whodunit/internal/shmflow"
	"whodunit/internal/tranctx"
	"whodunit/internal/vclock"
	"whodunit/internal/vm"
)

func BenchmarkFig8ApacheProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig8Apache(experiments.QuickScale)
		b.ReportMetric(r.ServeSharePct, "process_conn_%")
		b.ReportMetric(r.AcceptSharePct, "accept_%")
		b.ReportMetric(float64(r.Flows), "flows")
	}
}

func BenchmarkFig9SquidProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig9Squid(experiments.QuickScale)
		b.ReportMetric(r.HitWritePct, "write_hit_%")
		b.ReportMetric(r.MissWritePct, "write_miss_%")
	}
}

func BenchmarkFig10HaboobProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig10Haboob(experiments.QuickScale)
		b.ReportMetric(r.HitWritePct, "write_hit_%")
		b.ReportMetric(r.MissWritePct, "write_miss_%")
	}
}

func BenchmarkTable1TPCWProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table1TPCW(experiments.QuickTPCW)
		for _, row := range r.Rows {
			switch row.Interaction {
			case "BestSellers":
				b.ReportMetric(row.CPUSharePct, "bestsellers_cpu_%")
			case "SearchResult":
				b.ReportMetric(row.CPUSharePct, "searchresult_cpu_%")
			case "AdminConfirm":
				b.ReportMetric(row.MeanWaitMs, "admin_wait_ms")
			}
		}
	}
}

func BenchmarkFig11ResponseTimes(b *testing.B) {
	sweep := experiments.TPCWScale{Duration: experiments.QuickTPCW.Duration, Sweep: []int{100}}
	for i := 0; i < b.N; i++ {
		r := experiments.Fig11ResponseTimes(sweep)
		row := r.Rows[0]
		b.ReportMetric(row.AdminOrig, "admin_orig_ms")
		b.ReportMetric(row.AdminOpt, "admin_opt_ms")
		b.ReportMetric(row.BestOrig, "best_orig_ms")
		b.ReportMetric(row.BestCached, "best_cached_ms")
	}
}

func BenchmarkFig12Throughput(b *testing.B) {
	sweep := experiments.TPCWScale{Duration: experiments.QuickTPCW.Duration, Sweep: []int{300}}
	for i := 0; i < b.N; i++ {
		r := experiments.Fig12Throughput(sweep)
		b.ReportMetric(r.Rows[0].OriginalPerMin, "orig_tx_min")
		b.ReportMetric(r.Rows[0].CachedPerMin, "cached_tx_min")
	}
}

func BenchmarkTable2ProfilerOverhead(b *testing.B) {
	sweep := experiments.TPCWScale{Duration: experiments.QuickTPCW.Duration}
	for i := 0; i < b.N; i++ {
		r := experiments.Table2Overhead(sweep)
		for _, row := range r.Rows {
			switch row.Mode {
			case "no profile":
				b.ReportMetric(row.PerMin, "none_tx_min")
			case "whodunit":
				b.ReportMetric(row.PerMin, "whodunit_tx_min")
			case "gprof":
				b.ReportMetric(row.PerMin, "gprof_tx_min")
			}
		}
	}
}

func BenchmarkTable3EmulationCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table3Emulation()
		push := r.Rows[0]
		b.ReportMetric(float64(push.DirectCycles), "push_direct_cyc")
		b.ReportMetric(float64(push.TranslateCycles), "push_translate_cyc")
		b.ReportMetric(float64(push.CachedEmuCycles), "push_cached_cyc")
	}
}

func BenchmarkSec92ApacheOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.ServerOverheads(experiments.QuickScale)
		b.ReportMetric(r.Rows[0].OverheadPct, "apache_overhead_%")
	}
}

func BenchmarkSec93ProxyOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.ServerOverheads(experiments.QuickScale)
		b.ReportMetric(r.Rows[1].OverheadPct, "squid_overhead_%")
		b.ReportMetric(r.Rows[2].OverheadPct, "haboob_overhead_%")
	}
}

// --- Ablations ---------------------------------------------------------

// BenchmarkAblationLoopPruning measures context growth with and without
// §4.1's loop pruning for a long persistent connection. Without pruning,
// the context (and the CCT dictionary) grows with every request.
func BenchmarkAblationLoopPruning(b *testing.B) {
	const rounds = 500
	for i := 0; i < b.N; i++ {
		// With pruning (Append): bounded table.
		tb := tranctx.NewTable()
		c := tb.Root()
		for r := 0; r < rounds; r++ {
			c = c.Append(tranctx.HandlerHop("srv", "read"))
			c = c.Append(tranctx.HandlerHop("srv", "write"))
		}
		pruned := tb.Size()
		// Without pruning (Extend): linear growth.
		tb2 := tranctx.NewTable()
		c2 := tb2.Root()
		for r := 0; r < rounds; r++ {
			c2 = c2.Extend(tranctx.HandlerHop("srv", "read"))
			c2 = c2.Extend(tranctx.HandlerHop("srv", "write"))
		}
		b.ReportMetric(float64(pruned), "pruned_ctxts")
		b.ReportMetric(float64(tb2.Size()), "unpruned_ctxts")
	}
}

// BenchmarkAblationSynopsisSize compares the per-message byte cost of
// 4-byte synopses (§7.4) against shipping rendered full contexts.
func BenchmarkAblationSynopsisSize(b *testing.B) {
	tb := tranctx.NewTable()
	c := tb.Root().
		Extend(tranctx.CallHop("web", "main", "serve", "rpc_call", "send")).
		Extend(tranctx.CallHop("app", "main", "servlet", "query", "send"))
	var synBytes, fullBytes int
	for i := 0; i < b.N; i++ {
		chain := tranctx.Chain{c.Synopsis()}
		synBytes = chain.WireSize()
		fullBytes = len(c.String())
	}
	b.ReportMetric(float64(synBytes), "synopsis_bytes")
	b.ReportMetric(float64(fullBytes), "full_ctxt_bytes")
}

// BenchmarkAblationNativeFallback measures the cycle cost of an allocator
// critical section with and without §7.2's non-flow native fallback.
func BenchmarkAblationNativeFallback(b *testing.B) {
	run := func(demote bool) int64 {
		m := vm.NewMachine()
		m.Mode = vm.ModeEmulateCS
		tr := shmflow.NewTracker()
		tr.ThreadCtxt = func(int) shmflow.Token { return 1 }
		if demote {
			tr.OnNonFlow = func(lock int) { m.SetNonFlow(lock) }
		}
		m.Tracer = tr
		var total int64
		for i := 0; i < 30; i++ {
			t, err := m.Spawn(shmflow.AllocWork, "main")
			if err != nil {
				b.Fatal(err)
			}
			t.Regs[2], t.Regs[4], t.Regs[9] = shmflow.FreeHead, int64(0x3100+16*i), 0x8000
			if err := m.Run(100000); err != nil {
				b.Fatal(err)
			}
			total += t.Cycles
			m.Reap()
		}
		return total
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(float64(run(false)), "always_emulate_cyc")
		b.ReportMetric(float64(run(true)), "native_fallback_cyc")
	}
}

// BenchmarkEventDispatch measures the raw per-event cost of the
// context-propagating event loop (the library hot path).
func BenchmarkEventDispatch(b *testing.B) {
	tb := tranctx.NewTable()
	l := event.NewLoop("srv", tb)
	h := &event.Handler{Name: "h", Fn: func(l *event.Loop, ev *event.Event) {}}
	ev := &event.Event{Handler: h, Ctxt: tb.Root()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Dispatch(ev)
	}
}

// BenchmarkQueuePushPopEmulated measures a whodunit-mode flow-queue
// round trip: Push and Pop critical sections emulated on the app's
// machine with the shmflow tracker live, token plumbing, §3.5 context
// adoption and the probe frames included — the full per-hand-off cost a
// queue-connected app pays. A reply queue keeps producer and consumer
// roles distinct on both legs, so neither lock is demoted to non-flow
// and the traced path stays hot.
func BenchmarkQueuePushPopEmulated(b *testing.B) {
	b.ReportAllocs()
	app := whodunit.NewApp("bench",
		whodunit.WithMode(whodunit.ModeWhodunit),
		whodunit.WithFlowDetection(),
		whodunit.WithCores(2))
	st := app.Stage("srv")
	reqQ := app.NewQueue("req")
	ackQ := app.NewQueue("ack")
	n := b.N
	st.Go("consumer", func(th *whodunit.Thread, pr *whodunit.Probe) {
		for i := 0; i < n; i++ {
			v := reqQ.Pop(pr)
			ackQ.Push(pr, v)
		}
	})
	st.Go("producer", func(th *whodunit.Thread, pr *whodunit.Probe) {
		st.BeginTxn(pr, "main", "request")
		for i := 0; i < n; i++ {
			reqQ.Push(pr, i)
			ackQ.Pop(pr)
		}
	})
	b.ResetTimer()
	app.Run()
}

// BenchmarkProbeCompute measures the profiler hot path: Compute calls
// with sampling under Whodunit mode, including the simulator round-trip
// each blocking Compute implies.
func BenchmarkProbeCompute(b *testing.B) {
	b.ReportAllocs()
	s := vclock.New()
	cpu := s.NewCPU("cpu", 1)
	p := profiler.New("s", profiler.ModeWhodunit)
	n := b.N
	s.Go("w", func(th *vclock.Thread) {
		pr := p.NewProbe(th, cpu)
		defer pr.Exit(pr.Enter("hot"))
		for i := 0; i < n; i++ {
			pr.Compute(profiler.DefaultInterval / 8)
		}
	})
	b.ResetTimer()
	s.Run()
	s.Shutdown()
}
