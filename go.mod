module whodunit

go 1.24
