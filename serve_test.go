package whodunit_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"whodunit"
)

// serveApp builds a small open-loop two-stage app suitable for driving a
// Server in tests: Poisson request arrivals, a web worker that calls
// into a db worker, everything on the virtual clock.
func serveApp(seed uint64, opts ...whodunit.Option) *whodunit.App {
	opts = append([]whodunit.Option{
		whodunit.WithMode(whodunit.ModeWhodunit),
		whodunit.WithCores(2),
		whodunit.WithSeed(seed),
	}, opts...)
	app := whodunit.NewApp("serve-test", opts...)
	web, db := app.Stage("web"), app.Stage("db")
	reqQ, dbQ := app.NewQueue("requests"), app.NewQueue("db-requests")
	respQ := app.NewQueue("db-responses")

	app.Arrivals("requests", 10*whodunit.Millisecond, func(i int64) {
		reqQ.Put(i)
	})
	db.Go("db", func(th *whodunit.Thread, pr *whodunit.Probe) {
		for {
			msg := dbQ.Get(th).(whodunit.Msg)
			db.Endpoint().Recv(pr, msg)
			func() {
				defer pr.Exit(pr.Enter("exec_query"))
				pr.Compute(2 * whodunit.Millisecond)
				respQ.Put(db.Endpoint().Send(pr, nil))
			}()
		}
	})
	web.Go("web", func(th *whodunit.Thread, pr *whodunit.Probe) {
		for {
			reqQ.Get(th)
			func() {
				defer pr.Exit(pr.Enter("serve_page"))
				pr.Compute(whodunit.Millisecond)
				dbQ.Put(web.Endpoint().Send(pr, nil))
				web.Endpoint().Recv(pr, respQ.Get(th).(whodunit.Msg))
			}()
		}
	})
	return app
}

// runServer runs a bounded server to completion and returns it.
func runServer(t *testing.T, cfg whodunit.ServeConfig) *whodunit.Server {
	t.Helper()
	srv := whodunit.NewServer(serveApp(7), cfg)
	srv.Run()
	return srv
}

func get(t *testing.T, h http.Handler, url string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

func TestServeReportEndpoint(t *testing.T) {
	srv := runServer(t, whodunit.ServeConfig{
		Window: 100 * whodunit.Millisecond, Threshold: -1, MaxWindows: 4,
	})
	h := srv.Handler()

	code, body := get(t, h, "/report?window=0")
	if code != http.StatusOK {
		t.Fatalf("/report?window=0: %d %s", code, body)
	}
	var rep whodunit.Report
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("window 0 not JSON: %v", err)
	}
	if rep.Window == nil || rep.Window.Seq != 0 {
		t.Fatalf("window 0 metadata: %+v", rep.Window)
	}

	// Default = latest retired window.
	code, body = get(t, h, "/report")
	if code != http.StatusOK {
		t.Fatalf("/report: %d", code)
	}
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Window.Seq != 3 {
		t.Fatalf("latest window seq %d, want 3", rep.Window.Seq)
	}

	// window=live on a finished run falls back to the latest window.
	code, liveBody := get(t, h, "/report?window=live")
	if code != http.StatusOK || liveBody != body {
		t.Fatalf("finished-run live report: %d, equal=%v", code, liveBody == body)
	}

	for _, format := range []string{"text", "folded"} {
		code, body = get(t, h, "/report?format="+format)
		if code != http.StatusOK || body == "" {
			t.Fatalf("format=%s: %d %q", format, code, body)
		}
	}
	if code, body = get(t, h, "/report?format=xml"); code != http.StatusBadRequest {
		t.Fatalf("format=xml: %d %s", code, body)
	}
	if code, body = get(t, h, "/report?window=nope"); code != http.StatusBadRequest {
		t.Fatalf("window=nope: %d %s", code, body)
	}
	if code, body = get(t, h, "/report?window=99"); code != http.StatusNotFound {
		t.Fatalf("window=99: %d %s", code, body)
	}
}

// TestServeLiveMatchesRetired is the acceptance check for the
// snapshot-while-running path: a live /report fetched mid-run, at the
// virtual instant a window retires, is bit-identical to that retired
// window's /report (modulo the live report having no diff context).
func TestServeLiveMatchesRetired(t *testing.T) {
	app := serveApp(7)
	srv := whodunit.NewServer(app, whodunit.ServeConfig{
		Window: 100 * whodunit.Millisecond, Threshold: -1, MaxWindows: 3,
	})
	// Capture a live snapshot from scheduler context at the exact end of
	// window 1 — before retireWindow swaps the trees out. The retired
	// window-1 report must match it bit for bit: copy-on-retire and the
	// detached live snapshot must agree on every sample.
	var live *whodunit.Report
	app.Sim().At(whodunit.Time(200*whodunit.Millisecond), func() {
		live = app.LiveWindowReport()
	})
	srv.Run()

	kv, ok := srv.Ring().Get(1)
	if !ok {
		t.Fatal("window 1 not retained")
	}
	var a, b bytes.Buffer
	if err := live.JSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := kv.V.Report.JSON(&b); err != nil {
		t.Fatal(err)
	}
	// The retired report and the live snapshot differ only in Elapsed
	// bookkeeping origin; both cover [100ms, 200ms).
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("live snapshot at window boundary differs from retired window:\nlive:    %s\nretired: %s",
			a.String(), b.String())
	}
}

func TestServeWindowsEndpoint(t *testing.T) {
	srv := runServer(t, whodunit.ServeConfig{
		Window: 100 * whodunit.Millisecond, Threshold: -1, MaxWindows: 3, Retain: 2,
	})
	code, body := get(t, srv.Handler(), "/windows")
	if code != http.StatusOK {
		t.Fatalf("/windows: %d", code)
	}
	var idx struct {
		App       string `json:"app"`
		Retired   int64  `json:"retired"`
		Retain    int    `json:"retain"`
		Threshold int64  `json:"threshold"`
		Windows   []struct {
			Seq     int64 `json:"seq"`
			Samples int64 `json:"samples"`
		} `json:"windows"`
	}
	if err := json.Unmarshal([]byte(body), &idx); err != nil {
		t.Fatal(err)
	}
	if idx.App != "serve-test" || idx.Retired != 3 || idx.Retain != 2 || idx.Threshold != -1 {
		t.Fatalf("index header: %+v", idx)
	}
	if len(idx.Windows) != 2 || idx.Windows[0].Seq != 1 || idx.Windows[1].Seq != 2 {
		t.Fatalf("retained windows: %+v (want seqs 1,2 — 0 evicted)", idx.Windows)
	}
	for _, w := range idx.Windows {
		if w.Samples == 0 {
			t.Fatalf("window %d has no samples", w.Seq)
		}
	}
}

func TestServeDiffEndpoint(t *testing.T) {
	srv := runServer(t, whodunit.ServeConfig{
		Window: 100 * whodunit.Millisecond, Threshold: -1, MaxWindows: 3,
	})
	h := srv.Handler()

	code, body := get(t, h, "/diff?a=0&b=1")
	if code != http.StatusOK {
		t.Fatalf("/diff: %d %s", code, body)
	}
	var d whodunit.ReportDiff
	if err := json.Unmarshal([]byte(body), &d); err != nil {
		t.Fatal(err)
	}
	if d.WindowA == nil || d.WindowB == nil || d.WindowA.Seq != 0 || d.WindowB.Seq != 1 {
		t.Fatalf("diff window provenance: %+v %+v", d.WindowA, d.WindowB)
	}

	code, body = get(t, h, "/diff?a=0&b=1&format=text")
	if code != http.StatusOK || !strings.Contains(body, "window 0") {
		t.Fatalf("text diff: %d %q", code, body)
	}
	if code, _ = get(t, h, "/diff?a=0"); code != http.StatusBadRequest {
		t.Fatalf("missing b: %d", code)
	}
	if code, _ = get(t, h, "/diff?a=x&b=1"); code != http.StatusBadRequest {
		t.Fatalf("bad a: %d", code)
	}
	if code, _ = get(t, h, "/diff?a=0&b=42"); code != http.StatusNotFound {
		t.Fatalf("unretained b: %d", code)
	}
	if code, _ = get(t, h, "/diff?a=0&b=1&format=folded"); code != http.StatusBadRequest {
		t.Fatalf("bad format: %d", code)
	}
}

func TestServeHealthzAndAlerts(t *testing.T) {
	// Threshold 0 alerts on any adjacent divergence; Poisson arrivals
	// guarantee adjacent windows differ.
	srv := runServer(t, whodunit.ServeConfig{
		Window: 100 * whodunit.Millisecond, Threshold: 0, MaxWindows: 4,
	})
	if srv.AlertsTotal() == 0 || !srv.AlertActive() {
		t.Fatalf("threshold 0 should alert: total=%d active=%v", srv.AlertsTotal(), srv.AlertActive())
	}
	code, body := get(t, srv.Handler(), "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("healthz with active alert: %d", code)
	}
	for _, line := range []string{"whodunit_up 0", "whodunit_windows_retired 4", "whodunit_alert_active 1"} {
		if !strings.Contains(body, line) {
			t.Fatalf("healthz missing %q:\n%s", line, body)
		}
	}

	// A generous threshold never alerts and healthz reports 200.
	srv = runServer(t, whodunit.ServeConfig{
		Window: 100 * whodunit.Millisecond, Threshold: 1 << 40, MaxWindows: 4,
	})
	if srv.AlertsTotal() != 0 || srv.AlertActive() {
		t.Fatalf("huge threshold alerted: total=%d", srv.AlertsTotal())
	}
	if code, _ := get(t, srv.Handler(), "/healthz"); code != http.StatusOK {
		t.Fatalf("healthz without alert: %d", code)
	}
}

// TestServeStream subscribes to /stream while the run is in flight and
// checks the SSE framing: one window event per retirement, alert events
// when the threshold trips, and a terminating end event.
func TestServeStream(t *testing.T) {
	app := serveApp(7)
	srv := whodunit.NewServer(app, whodunit.ServeConfig{
		Window: 100 * whodunit.Millisecond, Threshold: 0, MaxWindows: 3,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}

	go srv.Run()

	var windows, alerts, ends int
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		switch line := sc.Text(); {
		case line == "event: window":
			windows++
		case line == "event: alert":
			alerts++
		case line == "event: end":
			ends++
		case strings.HasPrefix(line, "data: {\"report\""):
			var ev whodunit.WindowEvent
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("window event payload: %v", err)
			}
		}
		if ends > 0 {
			break
		}
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	<-srv.Done()
	if windows != 3 {
		t.Fatalf("streamed %d window events, want 3", windows)
	}
	// Threshold 0 alerts on windows 1 and 2 (window 0 has no predecessor).
	if alerts != 2 {
		t.Fatalf("streamed %d alert events, want 2", alerts)
	}
}

// TestServeStopDrainsFinalWindow stops a free-running server mid-window
// and checks the in-progress window retires as a final partial one.
func TestServeStopDrainsFinalWindow(t *testing.T) {
	app := serveApp(7)
	srv := whodunit.NewServer(app, whodunit.ServeConfig{
		Window: 100 * whodunit.Millisecond, Threshold: -1,
	})
	// Trip Stop from scheduler context mid-window-2.
	app.Sim().At(whodunit.Time(250*whodunit.Millisecond), func() { srv.Stop() })
	srv.Run()
	<-srv.Done()

	kv, ok := srv.Ring().Latest()
	if !ok {
		t.Fatal("no windows retired")
	}
	rep := kv.V.Report
	if rep.Window.Seq != 2 {
		t.Fatalf("final window seq %d, want 2", rep.Window.Seq)
	}
	if rep.Elapsed >= 100*whodunit.Millisecond || rep.Elapsed <= 0 {
		t.Fatalf("final partial window elapsed %v, want in (0, 100ms)", rep.Elapsed)
	}
	if kv.V.Diff != nil {
		t.Fatalf("partial window must not auto-diff, got %+v", kv.V.Diff)
	}
}

// failAt builds a fault plan whose single injected failure kills the
// simulation at the given virtual time.
func failAt(at whodunit.Duration) *whodunit.FaultPlan {
	return &whodunit.FaultPlan{
		Failures: []whodunit.Fail{{At: whodunit.Time(at), Msg: "injected"}},
	}
}

// TestServeSupervisedRecovers drives the supervision loop through its
// happy recovery path: run 0 dies from an injected failure mid-window-2,
// the factory rebuilds a healthy app, and the feed presents one dense
// window series across the restart with the degraded/recovered lifecycle
// annotated on it.
func TestServeSupervisedRecovers(t *testing.T) {
	srv := whodunit.NewServer(nil, whodunit.ServeConfig{
		Window: 100 * whodunit.Millisecond, Threshold: -1, MaxWindows: 6,
		RestartBackoff: time.Millisecond,
		MakeApp: func(run int) *whodunit.App {
			if run == 0 {
				return serveApp(7, whodunit.WithFaults(failAt(250*whodunit.Millisecond)))
			}
			return serveApp(7)
		},
	})
	srv.Run() // must not panic
	<-srv.Done()

	if srv.Restarts() != 1 || srv.GaveUp() || srv.Degraded() {
		t.Fatalf("restarts=%d gaveUp=%v degraded=%v, want 1/false/false",
			srv.Restarts(), srv.GaveUp(), srv.Degraded())
	}
	entries := srv.Ring().Entries()
	if len(entries) != 6 {
		t.Fatalf("retired %d windows, want 6", len(entries))
	}
	for i, kv := range entries {
		if kv.Meta.Seq != int64(i) {
			t.Fatalf("window %d has seq %d; series not dense across the restart", i, kv.Meta.Seq)
		}
	}
	// Windows 0 and 1 are healthy full windows from run 0; window 2 is
	// run 0's partial residue at the crash instant.
	for _, kv := range entries[:2] {
		if kv.V.Degraded || kv.V.Restarts != 0 {
			t.Fatalf("pre-crash window %d marked degraded: %+v", kv.Meta.Seq, kv.V)
		}
	}
	if e := entries[2].V.Report.Elapsed; e != 50*whodunit.Millisecond {
		t.Fatalf("crash-partial window elapsed %v, want 50ms", e)
	}
	// Window 3 is run 1's first full window: degraded, and the recovery
	// point.
	if ev := entries[3].V; !ev.Degraded || !ev.Recovered || ev.Restarts != 1 {
		t.Fatalf("first post-restart window: %+v, want degraded+recovered with 1 restart", ev)
	}
	// Windows 4 and 5 are back to healthy (though the restart count
	// stays visible).
	for _, kv := range entries[4:] {
		if kv.V.Degraded || kv.V.Recovered || kv.V.Restarts != 1 {
			t.Fatalf("post-recovery window %d: %+v", kv.Meta.Seq, kv.V)
		}
	}

	code, body := get(t, srv.Handler(), "/healthz")
	if code != http.StatusOK {
		t.Fatalf("recovered server healthz: %d", code)
	}
	for _, line := range []string{"whodunit_degraded 0", "whodunit_restarts_total 1", "whodunit_gave_up 0"} {
		if !strings.Contains(body, line) {
			t.Fatalf("healthz missing %q:\n%s", line, body)
		}
	}
}

// TestServeSupervisedGivesUp exhausts the restart budget: every run dies
// before completing a window, so after MaxRestarts rebuilds the server
// stops restarting and reports the terminal state on /healthz as a 503.
func TestServeSupervisedGivesUp(t *testing.T) {
	srv := whodunit.NewServer(nil, whodunit.ServeConfig{
		Window: 100 * whodunit.Millisecond, Threshold: -1,
		MaxRestarts: 2, RestartBackoff: time.Millisecond,
		MakeApp: func(run int) *whodunit.App {
			return serveApp(7, whodunit.WithFaults(failAt(50*whodunit.Millisecond)))
		},
	})
	srv.Run() // must not panic
	<-srv.Done()

	if !srv.GaveUp() || srv.Restarts() != 2 {
		t.Fatalf("gaveUp=%v restarts=%d, want true/2", srv.GaveUp(), srv.Restarts())
	}
	// Each of the three runs (initial + 2 restarts) salvaged its partial
	// window; the series is still dense.
	entries := srv.Ring().Entries()
	if len(entries) != 3 {
		t.Fatalf("retired %d windows, want 3", len(entries))
	}
	for i, kv := range entries {
		if kv.Meta.Seq != int64(i) {
			t.Fatalf("window %d has seq %d", i, kv.Meta.Seq)
		}
	}
	// The restarted runs never produced a full window, so their partial
	// windows stay degraded with no recovery.
	for _, kv := range entries[1:] {
		if !kv.V.Degraded || kv.V.Recovered {
			t.Fatalf("window %d after a failed restart: %+v", kv.Meta.Seq, kv.V)
		}
	}

	code, body := get(t, srv.Handler(), "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("gave-up healthz: %d", code)
	}
	for _, line := range []string{"whodunit_gave_up 1", "whodunit_restarts_total 2"} {
		if !strings.Contains(body, line) {
			t.Fatalf("healthz missing %q:\n%s", line, body)
		}
	}
}

// TestServeUnsupervisedStillPanics pins the historical contract: without
// a MakeApp factory, a dying run panics out of Run rather than being
// silently swallowed.
func TestServeUnsupervisedStillPanics(t *testing.T) {
	srv := whodunit.NewServer(
		serveApp(7, whodunit.WithFaults(failAt(50*whodunit.Millisecond))),
		whodunit.ServeConfig{Window: 100 * whodunit.Millisecond, Threshold: -1},
	)
	defer func() {
		if recover() == nil {
			t.Fatal("unsupervised Run swallowed an injected failure")
		}
		<-srv.Done() // Run closes finished before panicking
	}()
	srv.Run()
}

// stuckApp burns wall time without retiring windows: each virtual
// millisecond of compute costs 2ms of wall time, so a 1s virtual window
// needs ~2s of wall time — far beyond any watchdog used in tests.
func stuckApp(seed uint64) *whodunit.App {
	app := whodunit.NewApp("serve-test", whodunit.WithSeed(seed))
	st := app.Stage("w")
	st.Go("spin", func(th *whodunit.Thread, pr *whodunit.Probe) {
		for {
			pr.Compute(whodunit.Millisecond)
			time.Sleep(2 * time.Millisecond)
		}
	})
	return app
}

// TestServeWatchdogAborts wires a wall-clock watchdog against a scenario
// that never retires a window: the watchdog must abort the run, the
// supervisor must treat the abort as a crash, and the restart budget
// must eventually trip.
func TestServeWatchdogAborts(t *testing.T) {
	srv := whodunit.NewServer(nil, whodunit.ServeConfig{
		Window: whodunit.Second, Threshold: -1,
		MaxRestarts: 1, RestartBackoff: time.Millisecond,
		Watchdog: 80 * time.Millisecond,
		MakeApp:  func(run int) *whodunit.App { return stuckApp(uint64(run) + 1) },
	})
	done := make(chan struct{})
	go func() { defer close(done); srv.Run() }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("watchdog never aborted the stuck run")
	}
	if !srv.GaveUp() || srv.Restarts() != 1 {
		t.Fatalf("gaveUp=%v restarts=%d, want true/1", srv.GaveUp(), srv.Restarts())
	}
	// Each aborted run still salvaged its in-progress window.
	if n := srv.Ring().Len(); n != 2 {
		t.Fatalf("retired %d windows, want 2 partials", n)
	}
}

// TestServeStreamDegradedEvents checks the SSE framing of a supervised
// recovery: degraded windows carry an extra "degraded" event, and the
// recovery window says so in its payload.
func TestServeStreamDegradedEvents(t *testing.T) {
	srv := whodunit.NewServer(nil, whodunit.ServeConfig{
		Window: 100 * whodunit.Millisecond, Threshold: -1, MaxWindows: 5,
		RestartBackoff: time.Millisecond,
		MakeApp: func(run int) *whodunit.App {
			if run == 0 {
				return serveApp(7, whodunit.WithFaults(failAt(150*whodunit.Millisecond)))
			}
			return serveApp(7)
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	go srv.Run()

	var windows, degraded, recovered int
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "event: window":
			windows++
		case line == "event: degraded":
			degraded++
		case strings.HasPrefix(line, "data: {\"seq\""):
			if strings.Contains(line, "\"recovered\": true") {
				recovered++
			}
		}
		if line == "event: end" {
			break
		}
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	<-srv.Done()
	// Run 0 retires window 0 full and window 1 partial-at-crash; run 1
	// retires windows 2..4. Window 2 is degraded+recovered.
	if windows != 5 || degraded != 1 || recovered != 1 {
		t.Fatalf("streamed windows=%d degraded=%d recovered=%d, want 5/1/1",
			windows, degraded, recovered)
	}
}

func TestNewServerValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("no window", func() {
		whodunit.NewServer(serveApp(1), whodunit.ServeConfig{})
	})
	mustPanic("window disagreement", func() {
		app := whodunit.NewApp("x", whodunit.WithWindow(whodunit.Second))
		whodunit.NewServer(app, whodunit.ServeConfig{Window: 2 * whodunit.Second})
	})
	mustPanic("negative retain", func() {
		whodunit.NewServer(serveApp(1), whodunit.ServeConfig{Window: whodunit.Second, Retain: -1})
	})
	mustPanic("negative max windows", func() {
		whodunit.NewServer(serveApp(1), whodunit.ServeConfig{Window: whodunit.Second, MaxWindows: -1})
	})
	mustPanic("negative pace", func() {
		whodunit.NewServer(serveApp(1), whodunit.ServeConfig{Window: whodunit.Second, Pace: -0.5})
	})
}
