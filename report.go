package whodunit

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"whodunit/internal/profiler"
	"whodunit/internal/stitch"
)

// ContextShare is one context's share of a stage's profile samples.
type ContextShare = profiler.ContextShare

// StageReport is one stage's slice of a Report: profiler statistics,
// per-context sample shares, and the raw dump the stitcher consumes.
type StageReport struct {
	Stage string `json:"stage"`
	// Mode is ModeOff both for genuine off-mode runs and for reports
	// rebuilt from raw dumps, which do not record the mode (the two are
	// indistinguishable anyway: off-mode runs take no samples). It is
	// omitted from JSON in that case rather than asserted.
	Mode         Mode           `json:"mode,omitempty"`
	Samples      int64          `json:"samples"`
	Calls        int64          `json:"calls,omitempty"`
	CtxtSwitches int64          `json:"ctxt_switches,omitempty"`
	Overhead     Duration       `json:"overhead_ns"`
	Shares       []ContextShare `json:"shares,omitempty"`
	Dump         StageDump      `json:"dump"`
}

// NewStageReport captures a profiler (and the endpoints whose sends
// should become request edges) into a StageReport.
func NewStageReport(p *Profiler, eps ...*Endpoint) StageReport {
	samples, calls, switches, overhead := p.Stats()
	return StageReport{
		Stage:        p.Stage,
		Mode:         p.Mode,
		Samples:      samples,
		Calls:        calls,
		CtxtSwitches: switches,
		Overhead:     overhead,
		Shares:       p.Shares(),
		Dump:         DumpStage(p, eps...),
	}
}

// NewStageReportFrom is NewStageReport for a retired or detached profiler
// snapshot — the window-retirement path of the continuous profiling
// service.
func NewStageReportFrom(s *profiler.Snapshot, eps ...*Endpoint) StageReport {
	samples, calls, switches, overhead := s.Stats()
	return StageReport{
		Stage:        s.Stage,
		Mode:         s.Mode,
		Samples:      samples,
		Calls:        calls,
		CtxtSwitches: switches,
		Overhead:     overhead,
		Shares:       s.Shares(),
		Dump:         stitch.DumpFrom(s.Stage, s, eps...),
	}
}

// stageReportFromDump rebuilds the derivable parts of a StageReport from
// a raw dump (mode and overheads are not recorded in dumps).
func stageReportFromDump(d StageDump) StageReport {
	sr := StageReport{Stage: d.Stage, Dump: d}
	for _, td := range d.Trees {
		sr.Samples += td.Total
	}
	for _, td := range d.Trees {
		share := 0.0
		if sr.Samples > 0 {
			share = float64(td.Total) / float64(sr.Samples)
		}
		sr.Shares = append(sr.Shares, ContextShare{Label: td.Label, Samples: td.Total, Share: share})
	}
	return sr
}

// WindowMeta identifies the aggregation window a Report covers in a
// windowed (continuous-profiling) run: its 0-based sequence number and
// its [Start, End) span on the virtual clock, as durations since the
// simulation epoch.
type WindowMeta struct {
	Seq   int64    `json:"seq"`
	Start Duration `json:"start_ns"`
	End   Duration `json:"end_ns"`
}

// Report is the unified outcome of a Whodunit run: every stage's
// transactional profile, the crosstalk matrix, detected shared-memory
// flows, and the stitched end-to-end transaction graph. App.Run returns
// one; the Text, JSON, DOT and Folded renderers present it.
type Report struct {
	App     string   `json:"app"`
	Elapsed Duration `json:"elapsed_ns"`
	// Window is set on reports covering one aggregation window of a
	// windowed run (nil for whole-run reports).
	Window    *WindowMeta     `json:"window,omitempty"`
	Stages    []StageReport   `json:"stages"`
	Crosstalk []CrosstalkPair `json:"crosstalk,omitempty"`
	Flows     []FlowEvent     `json:"flows,omitempty"`
	// Faults is the ledger of injected faults that actually fired, set
	// on whole-run reports of faulted apps (WithFaults). Window reports
	// omit it: the ledger is cumulative, and copying it into every
	// window would make behaviorally identical windows diff non-empty.
	Faults *FaultStats `json:"faults,omitempty"`
	// Missing names stages whose dumps are known to be absent (a crashed
	// tier that never dumped, a stage dropped with DropStage): the graph
	// is stitched as a partial one, with severed cross-stage edges
	// annotated instead of silently discarded.
	Missing []string `json:"missing,omitempty"`

	// Graph is stitched from the stage dumps; it is rebuilt on decode
	// rather than serialized.
	Graph *TransactionGraph `json:"-"`
}

// NewReport assembles stage reports into a Report, stitching their dumps
// into the transaction graph.
func NewReport(app string, stages ...StageReport) *Report {
	r := &Report{App: app, Stages: stages}
	r.restitch()
	return r
}

// ReportFromDumps builds a Report from raw per-stage dumps (e.g. JSON
// files written by separate processes) — the post-mortem presentation
// phase as a single call.
func ReportFromDumps(app string, dumps ...StageDump) *Report {
	srs := make([]StageReport, 0, len(dumps))
	for _, d := range dumps {
		srs = append(srs, stageReportFromDump(d))
	}
	return NewReport(app, srs...)
}

func (r *Report) restitch() {
	dumps := make([]StageDump, 0, len(r.Stages))
	for _, sr := range r.Stages {
		dumps = append(dumps, sr.Dump)
	}
	// With stages declared missing the graph is stitched partially:
	// sends into the void become severed edges instead of vanishing.
	r.Graph = stitch.BuildPartial(dumps, r.Missing)
}

// DropStage returns a copy of the report with the named stages' dumps
// removed and recorded as Missing, restitched into a partial graph —
// the report a collection pass produces when a tier's dump never
// arrived. Names not present in the report are ignored. The receiver
// is unchanged.
func (r *Report) DropStage(names ...string) *Report {
	drop := make(map[string]bool, len(names))
	for _, n := range names {
		drop[n] = true
	}
	cp := *r
	cp.Stages = make([]StageReport, 0, len(r.Stages))
	cp.Missing = append([]string(nil), r.Missing...)
	for _, sr := range r.Stages {
		if drop[sr.Stage] {
			cp.Missing = append(cp.Missing, sr.Stage)
			continue
		}
		cp.Stages = append(cp.Stages, sr)
	}
	sort.Strings(cp.Missing)
	cp.restitch()
	return &cp
}

// StageNamed returns the report of the named stage, or nil.
func (r *Report) StageNamed(name string) *StageReport {
	for i := range r.Stages {
		if r.Stages[i].Stage == name {
			return &r.Stages[i]
		}
	}
	return nil
}

// TotalSamples sums profile samples across every stage.
func (r *Report) TotalSamples() int64 {
	var n int64
	for _, sr := range r.Stages {
		n += sr.Samples
	}
	return n
}

// JSON writes the report as indented JSON. The stitched graph is derived
// data and is omitted; ReadReport rebuilds it.
func (r *Report) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("whodunit: encode report: %w", err)
	}
	return nil
}

// ReadReport decodes a JSON report and restitches its transaction graph.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("whodunit: decode report: %w", err)
	}
	r.restitch()
	return &r, nil
}

// Text writes the full human-readable report: per-stage context shares,
// the crosstalk matrix, detected flows, and the stitched graph.
func (r *Report) Text(w io.Writer) {
	fmt.Fprintf(w, "=== whodunit report: %s ===\n", r.App)
	if r.Window != nil {
		fmt.Fprintf(w, "window %d: [%.6fs, %.6fs)\n",
			r.Window.Seq, r.Window.Start.Seconds(), r.Window.End.Seconds())
	}
	if r.Elapsed > 0 {
		fmt.Fprintf(w, "virtual time elapsed: %.6fs\n", r.Elapsed.Seconds())
	}
	if r.Faults != nil {
		fmt.Fprintf(w, "faults injected: %s\n", faultSummary(r.Faults))
	}
	if len(r.Missing) > 0 {
		fmt.Fprintf(w, "missing stage dumps: %s\n", strings.Join(r.Missing, ", "))
	}
	for _, sr := range r.Stages {
		fmt.Fprintf(w, "\nstage %s", sr.Stage)
		// A dump-derived report does not know the mode; ModeOff next to a
		// nonzero sample count means exactly that, so suppress it.
		if sr.Mode != ModeOff || sr.Samples == 0 {
			fmt.Fprintf(w, " (%s)", sr.Mode)
		}
		fmt.Fprintf(w, ": %d samples", sr.Samples)
		if sr.CtxtSwitches > 0 {
			fmt.Fprintf(w, ", %d context switches", sr.CtxtSwitches)
		}
		if sr.Calls > 0 {
			fmt.Fprintf(w, ", %d instrumented calls", sr.Calls)
		}
		fmt.Fprintln(w)
		if sr.Dump.Lost > 0 {
			fmt.Fprintf(w, "  (dump truncated: %d records lost)\n", sr.Dump.Lost)
		}
		for _, sh := range sr.Shares {
			if sh.Samples == 0 {
				continue
			}
			fmt.Fprintf(w, "  %6.2f%%  %s\n", 100*sh.Share, sh.Label)
		}
	}
	if len(r.Crosstalk) > 0 {
		fmt.Fprintf(w, "\ncrosstalk (waiter <- holder):\n")
		fmt.Fprintf(w, "  %-24s %-24s %8s %12s\n", "waiter", "holder", "count", "mean wait")
		for _, p := range r.Crosstalk {
			fmt.Fprintf(w, "  %-24s %-24s %8d %10.2fms\n", p.Waiter, p.Holder, p.Count, p.Mean.Millis())
		}
	}
	if len(r.Flows) > 0 {
		fmt.Fprintf(w, "\nshared-memory flows detected: %d\n", len(r.Flows))
	}
	if r.Graph != nil && len(r.Graph.Nodes) > 0 {
		fmt.Fprintf(w, "\nstitched transaction graph:\n")
		r.Graph.Render(w)
	}
}

// faultSummary renders the nonzero counters of a fault ledger on one
// line, e.g. "3 messages dropped, 1 crash, 1 restart".
func faultSummary(s *FaultStats) string {
	var parts []string
	add := func(n int64, singular, plural string) {
		if n == 0 {
			return
		}
		word := plural
		if n == 1 {
			word = singular
		}
		parts = append(parts, fmt.Sprintf("%d %s", n, word))
	}
	add(s.Dropped, "message dropped", "messages dropped")
	add(s.Duplicated, "message duplicated", "messages duplicated")
	add(s.Delayed, "message delayed", "messages delayed")
	add(s.Crashes, "crash", "crashes")
	add(s.Restarts, "restart", "restarts")
	add(s.Stalls, "stall", "stalls")
	add(s.Failures, "injected failure", "injected failures")
	return strings.Join(parts, ", ")
}

// Folded writes the report in folded-stacks form — one line per call
// path, semicolon-separated frames with the sample count after the last
// space — the input format of flamegraph.pl and compatible renderers:
//
//	stage;transaction context;frame;frame... samples
//
// Each stack is prefixed with its stage and transaction-context label,
// so a flame graph of a Whodunit run shows one tower per (stage,
// transaction type): the per-context attribution the paper's triangles
// present, as a flame graph. Works on decoded reports too, since it
// reads the stage dumps.
func (r *Report) Folded(w io.Writer) {
	for _, sr := range r.Stages {
		for _, td := range sr.Dump.Trees {
			for _, rec := range td.Records {
				if rec.Self == 0 {
					continue
				}
				fmt.Fprintf(w, "%s;%s;%s %d\n",
					sr.Stage, td.Label, strings.Join(rec.Path, ";"), rec.Self)
			}
		}
	}
}

// DOT writes the stitched transaction graph in Graphviz dot syntax.
func (r *Report) DOT(w io.Writer) {
	if r.Graph == nil {
		r.restitch()
	}
	r.Graph.DOT(w)
}
