package whodunit_test

import (
	"strings"
	"testing"

	"whodunit"
)

// TestPublicAPITwoStagePipeline exercises the facade end to end: two
// stages over queues, per-context CCTs at the callee, stitching.
func TestPublicAPITwoStagePipeline(t *testing.T) {
	s := whodunit.NewSim()
	cpu := s.NewCPU("cpu", 2)
	webProf := whodunit.NewProfiler("web", whodunit.ModeWhodunit)
	dbProf := whodunit.NewProfiler("db", whodunit.ModeWhodunit)
	webEP := whodunit.NewEndpoint("web")
	dbEP := whodunit.NewEndpoint("db")
	reqQ, respQ := s.NewQueue("req"), s.NewQueue("resp")

	s.Go("db", func(th *whodunit.Thread) {
		pr := dbProf.NewProbe(th, cpu)
		for i := 0; i < 2; i++ {
			msg := th.Get(reqQ).(whodunit.Msg)
			if kind := dbEP.Recv(pr, msg); kind != whodunit.KindRequest {
				t.Errorf("db got %v", kind)
			}
			func() {
				defer pr.Exit(pr.Enter("run_query"))
				pr.Compute(20 * whodunit.Millisecond)
				respQ.Put(dbEP.Send(pr, nil))
			}()
		}
	})
	s.Go("web", func(th *whodunit.Thread) {
		pr := webProf.NewProbe(th, cpu)
		for _, page := range []string{"home", "search"} {
			func() {
				defer pr.Exit(pr.Enter("handle_" + page))
				pr.Compute(2 * whodunit.Millisecond)
				reqQ.Put(webEP.Send(pr, nil))
				if kind := webEP.Recv(pr, th.Get(respQ).(whodunit.Msg)); kind != whodunit.KindResponse {
					t.Errorf("web got %v", kind)
				}
			}()
		}
	})
	s.Run()
	s.Shutdown()

	// Two distinct db-side contexts with samples.
	withSamples := 0
	for _, e := range dbProf.Entries() {
		if e.Tree.Total() > 0 {
			withSamples++
		}
	}
	if withSamples != 2 {
		t.Fatalf("db context trees with samples = %d, want 2", withSamples)
	}

	g := whodunit.Stitch([]whodunit.StageDump{
		whodunit.DumpStage(webProf, webEP),
		whodunit.DumpStage(dbProf, dbEP),
	})
	if len(g.Edges) != 4 {
		t.Fatalf("stitched edges = %d, want 4", len(g.Edges))
	}
	var sb strings.Builder
	g.Render(&sb)
	if !strings.Contains(sb.String(), "request") {
		t.Fatal("graph render incomplete")
	}
}

func TestPublicAPIEventLoop(t *testing.T) {
	p := whodunit.NewProfiler("srv", whodunit.ModeWhodunit)
	l := whodunit.NewEventLoop("srv", p)
	var ctxts []string
	read := &whodunit.EventHandler{Name: "read", Fn: func(l *whodunit.EventLoop, ev *whodunit.Event) {
		ctxts = append(ctxts, l.Curr().String())
	}}
	accept := &whodunit.EventHandler{Name: "accept", Fn: func(l *whodunit.EventLoop, ev *whodunit.Event) {
		l.Ready(l.NewEvent(read, nil))
	}}
	l.Ready(&whodunit.Event{Handler: accept})
	l.Run()
	if len(ctxts) != 1 || ctxts[0] != "srv@accept | srv@read" {
		t.Fatalf("ctxts = %v", ctxts)
	}
}

func TestPublicAPIFlowDetection(t *testing.T) {
	// A user-written producer/consumer pair in VM assembly; the tracker
	// detects the handoff with no annotation of the programs themselves.
	push, err := whodunit.AssembleProgram("push", `
	main:
		lock 1
		store [r1], r4   ; produce
		unlock 1
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	pop, err := whodunit.AssembleProgram("pop", `
	main:
		lock 1
		load r4, [r1]
		unlock 1
		store [r9], r4   ; consume
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	m := whodunit.NewMachine()
	m.Mode = whodunit.VMEmulateCS
	tr := whodunit.NewFlowTracker()
	tr.ThreadCtxt = func(tid int) whodunit.FlowToken { return whodunit.FlowToken(tid + 100) }
	m.Tracer = tr
	p, _ := m.Spawn(push, "main")
	p.Regs[1], p.Regs[4] = 0x100, 42
	c, _ := m.Spawn(pop, "main")
	c.Regs[1], c.Regs[9] = 0x100, 0x200
	if err := m.Run(10000); err != nil {
		t.Fatal(err)
	}
	flows := tr.Flows()
	if len(flows) == 0 {
		t.Fatal("no flow detected through the public API")
	}
	if flows[0].Token != whodunit.FlowToken(p.ID+100) {
		t.Fatalf("flow token = %d", flows[0].Token)
	}
}
