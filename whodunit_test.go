package whodunit_test

import (
	"fmt"
	"strings"
	"testing"

	"whodunit"
	"whodunit/internal/event"
	"whodunit/internal/ipc"
	"whodunit/internal/profiler"
)

// TestPublicAPITwoStagePipeline exercises the facade end to end: two
// stages over queues, per-context CCTs at the callee, stitching.
func TestPublicAPITwoStagePipeline(t *testing.T) {
	s := whodunit.NewSim()
	cpu := s.NewCPU("cpu", 2)
	webProf := profiler.New("web", whodunit.ModeWhodunit)
	dbProf := profiler.New("db", whodunit.ModeWhodunit)
	webEP := ipc.NewEndpoint("web")
	dbEP := ipc.NewEndpoint("db")
	reqQ, respQ := s.NewQueue("req"), s.NewQueue("resp")

	s.Go("db", func(th *whodunit.Thread) {
		pr := dbProf.NewProbe(th, cpu)
		for i := 0; i < 2; i++ {
			msg := th.Get(reqQ).(whodunit.Msg)
			if kind := dbEP.Recv(pr, msg); kind != whodunit.KindRequest {
				t.Errorf("db got %v", kind)
			}
			func() {
				defer pr.Exit(pr.Enter("run_query"))
				pr.Compute(20 * whodunit.Millisecond)
				respQ.Put(dbEP.Send(pr, nil))
			}()
		}
	})
	s.Go("web", func(th *whodunit.Thread) {
		pr := webProf.NewProbe(th, cpu)
		for _, page := range []string{"home", "search"} {
			func() {
				defer pr.Exit(pr.Enter("handle_" + page))
				pr.Compute(2 * whodunit.Millisecond)
				reqQ.Put(webEP.Send(pr, nil))
				if kind := webEP.Recv(pr, th.Get(respQ).(whodunit.Msg)); kind != whodunit.KindResponse {
					t.Errorf("web got %v", kind)
				}
			}()
		}
	})
	s.Run()
	s.Shutdown()

	// Two distinct db-side contexts with samples.
	withSamples := 0
	for _, e := range dbProf.Entries() {
		if e.Tree.Total() > 0 {
			withSamples++
		}
	}
	if withSamples != 2 {
		t.Fatalf("db context trees with samples = %d, want 2", withSamples)
	}

	g := whodunit.Stitch([]whodunit.StageDump{
		whodunit.DumpStage(webProf, webEP),
		whodunit.DumpStage(dbProf, dbEP),
	})
	if len(g.Edges) != 4 {
		t.Fatalf("stitched edges = %d, want 4", len(g.Edges))
	}
	var sb strings.Builder
	g.Render(&sb)
	if !strings.Contains(sb.String(), "request") {
		t.Fatal("graph render incomplete")
	}
}

func TestPublicAPIEventLoop(t *testing.T) {
	p := profiler.New("srv", whodunit.ModeWhodunit)
	l := event.NewLoop("srv", p.Table)
	var ctxts []string
	read := &whodunit.EventHandler{Name: "read", Fn: func(l *whodunit.EventLoop, ev *whodunit.Event) {
		ctxts = append(ctxts, l.Curr().String())
	}}
	accept := &whodunit.EventHandler{Name: "accept", Fn: func(l *whodunit.EventLoop, ev *whodunit.Event) {
		l.Ready(l.NewEvent(read, nil))
	}}
	l.Ready(&whodunit.Event{Handler: accept})
	l.Run()
	if len(ctxts) != 1 || ctxts[0] != "srv@accept | srv@read" {
		t.Fatalf("ctxts = %v", ctxts)
	}
}

func TestPublicAPIFlowDetection(t *testing.T) {
	// The Figure 1 pattern through the redesigned surface: a listener
	// pushes into an App.NewQueue, a worker pops, and the worker's probe
	// comes back carrying the listener's transaction context — with no
	// machine, tracker or token wiring in user code at all.
	app := whodunit.NewApp("flowapp", whodunit.WithFlowDetection())
	st := app.Stage("flowapp")
	fdq := app.NewQueue("fdqueue")

	var popped any
	var workerCtxt string
	done := false
	st.Go("worker", func(th *whodunit.Thread, pr *whodunit.Probe) {
		defer pr.Exit(pr.Enter("worker_thread"))
		popped = fdq.Pop(pr)
		workerCtxt = pr.Txn().Label()
		done = true
	})
	st.Go("listener", func(th *whodunit.Thread, pr *whodunit.Probe) {
		defer pr.Exit(pr.Enter("listener_thread"))
		st.BeginTxn(pr, "listener_thread", "accept")
		fdq.Push(pr, "conn-7")
	})
	rep := app.RunUntil(func() bool { return done })

	if popped != "conn-7" {
		t.Fatalf("popped %v, want conn-7", popped)
	}
	if want := "flowapp:listener_thread>accept"; workerCtxt != want {
		t.Fatalf("worker context = %q, want %q (producer's context not propagated)", workerCtxt, want)
	}
	if len(rep.Flows) == 0 {
		t.Fatal("no flow events in the report")
	}
	for _, f := range rep.Flows {
		if f.Producer == f.Consumer {
			t.Fatalf("self-flow reported: %v", f)
		}
	}
}

func TestQueueRawPutThenPop(t *testing.T) {
	// Elements injected through the raw Put face (e.g. external stimulus
	// from a scheduler callback) must come back out of Pop as-is — no
	// emulated critical section ever stored them — and must not be
	// confused with Push'd elements even when both are buffered at once:
	// provenance is per element, not a counter.
	app := whodunit.NewApp("mixed", whodunit.WithFlowDetection())
	st := app.Stage("mixed")
	q := app.NewQueue("q")
	q.Put("raw-1") // before any Push: nothing in the vm-side queue

	var got []any
	var ctxts []string
	done := false
	st.Go("consumer", func(th *whodunit.Thread, pr *whodunit.Probe) {
		// Let the producer finish first, so a raw and a pushed element
		// are both buffered before the first Pop.
		th.Sleep(whodunit.Millisecond)
		for i := 0; i < 2; i++ {
			got = append(got, q.Pop(pr))
			ctxts = append(ctxts, pr.Txn().Label())
		}
		done = true
	})
	st.Go("producer", func(th *whodunit.Thread, pr *whodunit.Probe) {
		st.BeginTxn(pr, "produce")
		q.Push(pr, "pushed-1")
	})
	app.RunUntil(func() bool { return done })

	if len(got) != 2 || got[0] != "raw-1" || got[1] != "pushed-1" {
		t.Fatalf("popped %v, want [raw-1 pushed-1] (each exactly once, FIFO head first)", got)
	}
	if ctxts[0] != "(root)" {
		t.Fatalf("raw element must not switch context, got %q", ctxts[0])
	}
	if want := "mixed:produce"; ctxts[1] != want {
		t.Fatalf("pushed element context = %q, want %q", ctxts[1], want)
	}
}

func TestQueueGetRefusesPushedElem(t *testing.T) {
	// Draining a Push'd element with raw Get would desynchronise the
	// vm-side queue; it must fail loudly instead.
	app := whodunit.NewApp("guard", whodunit.WithFlowDetection())
	st := app.Stage("guard")
	q := app.NewQueue("q")
	done := false
	st.Go("producer", func(th *whodunit.Thread, pr *whodunit.Probe) {
		q.Push(pr, "x")
		defer func() {
			if recover() == nil {
				t.Error("Get on a Push'd element did not panic")
			}
			done = true
		}()
		q.Get(th)
	})
	app.RunUntil(func() bool { return done })
	if !done {
		t.Fatal("producer did not run to the Get guard")
	}
}

func TestStageEmulatedCSCustomProgram(t *testing.T) {
	// A custom shared-memory structure (not the library queue): user
	// assembly run through Stage.EmulatedCS still gets token plumbing
	// and §3.5 adoption from the app. The lock id and memory region are
	// reserved through App.ReserveCS so they can never collide with a
	// queue's.
	app := whodunit.NewApp("custom", whodunit.WithFlowDetection())
	st := app.Stage("custom")
	lock, base := app.ReserveCS()
	push, err := whodunit.AssembleProgram("push", fmt.Sprintf(`
	main:
		lock %d
		store [r1], r4   ; produce
		unlock %d
		halt
	`, lock, lock))
	if err != nil {
		t.Fatal(err)
	}
	pop, err := whodunit.AssembleProgram("pop", fmt.Sprintf(`
	main:
		lock %d
		load r4, [r1]
		unlock %d
		store [r9], r4   ; consume
		halt
	`, lock, lock))
	if err != nil {
		t.Fatal(err)
	}

	done := false
	var consumerCtxt string
	st.Go("consumer", func(th *whodunit.Thread, pr *whodunit.Probe) {
		th.Sleep(whodunit.Millisecond) // let the producer store first
		st.EmulatedCS(pr, pop, "main", map[byte]int64{1: base, 9: base + 0x200})
		consumerCtxt = pr.Txn().Label()
		done = true
	})
	st.Go("producer", func(th *whodunit.Thread, pr *whodunit.Probe) {
		st.BeginTxn(pr, "produce_item")
		st.EmulatedCS(pr, push, "main", map[byte]int64{1: base, 4: 42})
	})
	app.RunUntil(func() bool { return done })

	if want := "custom:produce_item"; consumerCtxt != want {
		t.Fatalf("consumer context = %q, want %q", consumerCtxt, want)
	}
	if app.Machine().TotalCycles == 0 {
		t.Fatal("no cycles charged for the emulated critical sections")
	}
}

func TestStageCriticalSectionCrosstalk(t *testing.T) {
	// Two transactions contending for a lock through Stage.CriticalSection
	// land in the crosstalk matrix with their contexts classified.
	app := whodunit.NewApp("cs",
		whodunit.WithCrosstalk(func(tc whodunit.TxnCtxt) string { return tc.Label() }))
	st := app.Stage("cs")
	lock := app.NewLock("shared")
	body := func(name string) func(th *whodunit.Thread, pr *whodunit.Probe) {
		return func(th *whodunit.Thread, pr *whodunit.Probe) {
			st.BeginTxn(pr, name)
			for i := 0; i < 3; i++ {
				st.CriticalSection(pr, lock, func() {
					pr.Compute(2 * whodunit.Millisecond)
					th.Sleep(2 * whodunit.Millisecond)
				})
			}
		}
	}
	st.Go("alpha", body("alpha"))
	st.Go("beta", body("beta"))
	rep := app.Run()
	if len(rep.Crosstalk) == 0 {
		t.Fatal("no crosstalk recorded for contended critical sections")
	}
	found := false
	for _, p := range rep.Crosstalk {
		if p.Waiter == "cs:alpha" && p.Holder == "cs:beta" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected (cs:alpha <- cs:beta) pair, got %+v", rep.Crosstalk)
	}
}

func TestStageWithTxnRestoresContext(t *testing.T) {
	app := whodunit.NewApp("wt")
	st := app.Stage("wt")
	done := false
	st.Go("t", func(th *whodunit.Thread, pr *whodunit.Probe) {
		outer := st.BeginTxn(pr, "outer")
		inner := whodunit.TxnCtxt{Local: outer.Local.Extend(whodunit.CallHop("wt", "inner"))}
		st.WithTxn(pr, inner, func() {
			if pr.Txn().Label() != "wt:outer | wt:inner" {
				t.Errorf("inside WithTxn: %q", pr.Txn().Label())
			}
		})
		if pr.Txn().Label() != "wt:outer" {
			t.Errorf("after WithTxn: %q", pr.Txn().Label())
		}
		done = true
	})
	app.RunUntil(func() bool { return done })
	if !done {
		t.Fatal("thread did not run")
	}
}
