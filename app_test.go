package whodunit_test

import (
	"bytes"
	"strings"
	"testing"

	"whodunit"
	"whodunit/internal/experiments"
	"whodunit/internal/ipc"
	"whodunit/internal/profiler"
	"whodunit/internal/vclock"
)

// runTwoStageWorkload drives the canonical web+db workload against the
// probes handed to it; shared between the App-API test and the manual
// facade path it is compared with.
func twoStageWorkload(sim *whodunit.Sim, reqQ, respQ *vclock.Queue,
	webEP, dbEP *whodunit.Endpoint, goWeb, goDB func(body func(*whodunit.Thread, *whodunit.Probe))) {
	goDB(func(th *whodunit.Thread, pr *whodunit.Probe) {
		for i := 0; i < 4; i++ {
			msg := th.Get(reqQ).(whodunit.Msg)
			dbEP.Recv(pr, msg)
			func() {
				defer pr.Exit(pr.Enter("exec_query"))
				if msg.Data == "search" {
					pr.Compute(30 * whodunit.Millisecond)
				} else {
					pr.Compute(3 * whodunit.Millisecond)
				}
				respQ.Put(dbEP.Send(pr, nil))
			}()
		}
	})
	goWeb(func(th *whodunit.Thread, pr *whodunit.Probe) {
		for i := 0; i < 2; i++ {
			for _, page := range []string{"home", "search"} {
				func() {
					defer pr.Exit(pr.Enter("serve_" + page))
					pr.Compute(whodunit.Millisecond)
					reqQ.Put(webEP.Send(pr, page))
					webEP.Recv(pr, th.Get(respQ).(whodunit.Msg))
				}()
			}
		}
	})
}

// TestAppTwoStageEndToEnd runs the same two-stage application once
// through the App runtime and once through the manual Sim + Profiler +
// DumpStage + Stitch dance, and checks that App.Run's automatically
// stitched graph matches the manual one node for node and edge for edge.
func TestAppTwoStageEndToEnd(t *testing.T) {
	// --- App path -------------------------------------------------
	app := whodunit.NewApp("shop", whodunit.WithMode(whodunit.ModeWhodunit), whodunit.WithCores(2))
	web, db := app.Stage("web"), app.Stage("db")
	reqQ, respQ := app.NewQueue("req").Raw(), app.NewQueue("resp").Raw()
	twoStageWorkload(app.Sim(), reqQ, respQ, web.Endpoint(), db.Endpoint(),
		func(body func(*whodunit.Thread, *whodunit.Probe)) { web.Go("web", body) },
		func(body func(*whodunit.Thread, *whodunit.Probe)) { db.Go("db", body) })
	rep := app.Run()

	if rep.App != "shop" || len(rep.Stages) != 2 {
		t.Fatalf("report header wrong: app=%q stages=%d", rep.App, len(rep.Stages))
	}
	if rep.Elapsed <= 0 {
		t.Fatal("report elapsed time not set")
	}
	if rep.TotalSamples() == 0 {
		t.Fatal("no samples in report")
	}
	dbRep := rep.StageNamed("db")
	if dbRep == nil {
		t.Fatal("db stage missing from report")
	}
	withSamples := 0
	for _, sh := range dbRep.Shares {
		if sh.Samples > 0 {
			withSamples++
		}
	}
	if withSamples != 2 {
		t.Fatalf("db contexts with samples = %d, want 2 (home and search)", withSamples)
	}

	// --- Manual facade path --------------------------------------
	s := whodunit.NewSim()
	cpu := s.NewCPU("cpu", 2)
	webProf := profiler.New("web", whodunit.ModeWhodunit)
	dbProf := profiler.New("db", whodunit.ModeWhodunit)
	webEP, dbEP := ipc.NewEndpoint("web"), ipc.NewEndpoint("db")
	mReqQ, mRespQ := s.NewQueue("req"), s.NewQueue("resp")
	twoStageWorkload(s, mReqQ, mRespQ, webEP, dbEP,
		func(body func(*whodunit.Thread, *whodunit.Probe)) {
			s.Go("web", func(th *whodunit.Thread) { body(th, webProf.NewProbe(th, cpu)) })
		},
		func(body func(*whodunit.Thread, *whodunit.Probe)) {
			s.Go("db", func(th *whodunit.Thread) { body(th, dbProf.NewProbe(th, cpu)) })
		})
	s.Run()
	s.Shutdown()
	manual := whodunit.Stitch([]whodunit.StageDump{
		whodunit.DumpStage(webProf, webEP),
		whodunit.DumpStage(dbProf, dbEP),
	})

	// --- The graphs must agree -----------------------------------
	if len(rep.Graph.Nodes) != len(manual.Nodes) {
		t.Fatalf("auto-stitched nodes = %d, manual = %d", len(rep.Graph.Nodes), len(manual.Nodes))
	}
	if len(rep.Graph.Edges) != len(manual.Edges) {
		t.Fatalf("auto-stitched edges = %d, manual = %d", len(rep.Graph.Edges), len(manual.Edges))
	}
	for i, n := range rep.Graph.Nodes {
		m := manual.Nodes[i]
		if n.Stage != m.Stage || n.Label != m.Label || n.Total != m.Total {
			t.Errorf("node %d differs: app=(%s,%s,%d) manual=(%s,%s,%d)",
				i, n.Stage, n.Label, n.Total, m.Stage, m.Label, m.Total)
		}
	}
	for i, e := range rep.Graph.Edges {
		m := manual.Edges[i]
		if e != m {
			t.Errorf("edge %d differs: app=%+v manual=%+v", i, e, m)
		}
	}
	if len(rep.Graph.Edges) != 4 {
		t.Fatalf("stitched edges = %d, want 4 (2 request + 2 response)", len(rep.Graph.Edges))
	}

	var txt bytes.Buffer
	rep.Text(&txt)
	for _, want := range []string{"stage web", "stage db", "stitched transaction graph", "request"} {
		if !strings.Contains(txt.String(), want) {
			t.Errorf("Text output missing %q", want)
		}
	}
	var dot bytes.Buffer
	rep.DOT(&dot)
	if !strings.Contains(dot.String(), "digraph whodunit") {
		t.Error("DOT output incomplete")
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	app := whodunit.NewApp("shop", whodunit.WithMode(whodunit.ModeWhodunit))
	web, db := app.Stage("web"), app.Stage("db")
	reqQ, respQ := app.NewQueue("req").Raw(), app.NewQueue("resp").Raw()
	twoStageWorkload(app.Sim(), reqQ, respQ, web.Endpoint(), db.Endpoint(),
		func(body func(*whodunit.Thread, *whodunit.Probe)) { web.Go("web", body) },
		func(body func(*whodunit.Thread, *whodunit.Probe)) { db.Go("db", body) })
	rep := app.Run()

	var buf bytes.Buffer
	if err := rep.JSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := whodunit.ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.App != rep.App || back.Elapsed != rep.Elapsed {
		t.Fatalf("header mismatch after round trip: %q/%d vs %q/%d",
			back.App, back.Elapsed, rep.App, rep.Elapsed)
	}
	if len(back.Stages) != len(rep.Stages) {
		t.Fatalf("stage count after round trip = %d, want %d", len(back.Stages), len(rep.Stages))
	}
	for i := range rep.Stages {
		a, b := rep.Stages[i], back.Stages[i]
		if a.Stage != b.Stage || a.Mode != b.Mode || a.Samples != b.Samples || len(a.Shares) != len(b.Shares) {
			t.Errorf("stage %d mismatch: %+v vs %+v", i, a, b)
		}
	}
	// The graph is derived data: ReadReport must restitch it identically.
	if back.Graph == nil {
		t.Fatal("graph not restitched on decode")
	}
	if len(back.Graph.Nodes) != len(rep.Graph.Nodes) || len(back.Graph.Edges) != len(rep.Graph.Edges) {
		t.Fatalf("restitched graph %d/%d nodes/edges, want %d/%d",
			len(back.Graph.Nodes), len(back.Graph.Edges), len(rep.Graph.Nodes), len(rep.Graph.Edges))
	}
	for i, e := range back.Graph.Edges {
		if e != rep.Graph.Edges[i] {
			t.Errorf("restitched edge %d = %+v, want %+v", i, e, rep.Graph.Edges[i])
		}
	}
}

// TestRunAppsMatchesSerialRuns builds the same set of independent apps
// twice and checks that RunApps (across a deliberately oversized worker
// pool) returns reports bit-identical to running each app serially —
// parallel sweeps must be a pure wall-clock optimisation.
func TestRunAppsMatchesSerialRuns(t *testing.T) {
	build := func(name string, seed uint64) *whodunit.App {
		app := whodunit.NewApp(name, whodunit.WithMode(whodunit.ModeWhodunit), whodunit.WithSeed(seed))
		web, db := app.Stage("web"), app.Stage("db")
		reqQ, respQ := app.NewQueue("req").Raw(), app.NewQueue("resp").Raw()
		twoStageWorkload(app.Sim(), reqQ, respQ, web.Endpoint(), db.Endpoint(),
			func(body func(*whodunit.Thread, *whodunit.Probe)) { web.Go("web", body) },
			func(body func(*whodunit.Thread, *whodunit.Probe)) { db.Go("db", body) })
		return app
	}
	asJSON := func(rep *whodunit.Report) string {
		var buf bytes.Buffer
		if err := rep.JSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	const n = 4
	serial := make([]string, n)
	apps := make([]*whodunit.App, n)
	for i := 0; i < n; i++ {
		name := string(rune('a' + i))
		serial[i] = asJSON(build(name, uint64(i)).Run())
		apps[i] = build(name, uint64(i))
	}
	defer experiments.SetWorkers(experiments.SetWorkers(8))
	for i, rep := range whodunit.RunApps(apps...) {
		if got := asJSON(rep); got != serial[i] {
			t.Errorf("app %d report differs between serial Run and RunApps:\n%s\nvs\n%s", i, serial[i], got)
		}
	}
}

// TestAppEventLoopStage checks the Stage event-loop sugar: BindLoop
// routes each handler's samples into the handler-sequence context.
func TestAppEventLoopStage(t *testing.T) {
	app := whodunit.NewApp("proxy", whodunit.WithCores(1))
	st := app.Stage("proxy")
	loop := st.EventLoop()
	ready := app.NewQueue("ready")

	served := 0
	var hWrite, hRead *whodunit.EventHandler
	hWrite = &whodunit.EventHandler{Name: "write", Fn: func(l *whodunit.EventLoop, ev *whodunit.Event) {
		served++
	}}
	hRead = &whodunit.EventHandler{Name: "read", Fn: func(l *whodunit.EventLoop, ev *whodunit.Event) {
		ready.Put(l.NewEvent(hWrite, nil))
	}}
	for i := 0; i < 3; i++ {
		ready.Put(&whodunit.Event{Handler: hRead})
	}
	var seen []string
	st.Go("loop", func(th *whodunit.Thread, pr *whodunit.Probe) {
		st.BindLoop(pr)
		for served < 3 {
			loop.Dispatch(ready.Get(th).(*whodunit.Event))
			seen = append(seen, pr.Txn().Label())
		}
	})
	app.Run()
	if len(seen) != 6 {
		t.Fatalf("dispatches = %d, want 6", len(seen))
	}
	want := "proxy@read | proxy@write"
	found := false
	for _, s := range seen {
		if s == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("handler-sequence context %q not seen in %v", want, seen)
	}
}

// TestAppSEDAStage checks the Stage SEDA sugar: Worker-bound probes land
// samples in stage-sequence contexts and Inject feeds the pipeline.
func TestAppSEDAStage(t *testing.T) {
	app := whodunit.NewApp("pipe", whodunit.WithCores(1))
	st := app.Stage("pipe")
	qA, qB := app.NewQueue("a"), app.NewQueue("b")
	sA, sB := st.SEDAStage("A", qA), st.SEDAStage("B", qB)

	done := 0
	var ctxts []string
	st.Go("A", func(th *whodunit.Thread, pr *whodunit.Probe) {
		w := st.Worker(sA, pr)
		for {
			w.Begin(qA.Get(th).(*whodunit.SEDAElem))
			pr.Compute(whodunit.Millisecond)
			w.Enqueue(sB, nil)
		}
	})
	st.Go("B", func(th *whodunit.Thread, pr *whodunit.Probe) {
		w := st.Worker(sB, pr)
		for {
			w.Begin(qB.Get(th).(*whodunit.SEDAElem))
			ctxts = append(ctxts, pr.Txn().Label())
			done++
		}
	})
	for i := 0; i < 3; i++ {
		st.Inject(sA, i)
	}
	app.RunUntil(func() bool { return done >= 3 })
	if done != 3 {
		t.Fatalf("done = %d", done)
	}
	for _, c := range ctxts {
		if c != "pipe#A | pipe#B" {
			t.Fatalf("stage-sequence context = %q, want pipe#A | pipe#B", c)
		}
	}
}

// TestAppCrosstalk checks WithCrosstalk: locks created through the App
// feed the monitor and the matrix lands in the report.
func TestAppCrosstalk(t *testing.T) {
	app := whodunit.NewApp("ct",
		whodunit.WithCores(2),
		whodunit.WithCrosstalk(func(tc whodunit.TxnCtxt) string { return tc.Label() }))
	st := app.Stage("ct")
	lock := app.NewLock("shared")

	spin := func(name string, hold whodunit.Duration) {
		st.Go(name, func(th *whodunit.Thread, pr *whodunit.Probe) {
			defer pr.Exit(pr.Enter(name))
			for i := 0; i < 3; i++ {
				th.Lock(lock, whodunit.Exclusive)
				pr.Compute(hold)
				th.Sleep(hold)
				th.Unlock(lock)
			}
		})
	}
	spin("writer_a", 5*whodunit.Millisecond)
	spin("writer_b", 7*whodunit.Millisecond)
	rep := app.Run()
	if len(rep.Crosstalk) == 0 {
		t.Fatal("no crosstalk pairs in report despite contended lock")
	}
}

// TestStageDefaultEndpointDistinct guards against the default endpoint
// aliasing a connection's endpoint: queue traffic and wire traffic must
// keep separate sent-synopsis tables.
func TestStageDefaultEndpointDistinct(t *testing.T) {
	app := whodunit.NewApp("x")
	st := app.Stage("web")
	conn := st.Conn(nil)
	if st.Endpoint() == conn.E {
		t.Fatal("default endpoint aliases the connection endpoint")
	}
	if st.Endpoint() != st.Endpoint() {
		t.Fatal("default endpoint is not stable")
	}
}

func TestStageRedeclarePanics(t *testing.T) {
	app := whodunit.NewApp("x")
	app.Stage("web")
	if got := app.Stage("web"); got == nil {
		t.Fatal("fetching an existing stage failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("redeclaring a stage with options did not panic")
		}
	}()
	app.Stage("web", whodunit.StageCPU(4))
}
