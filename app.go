package whodunit

import (
	"fmt"

	"whodunit/internal/faults"
	"whodunit/internal/par"
	"whodunit/internal/vclock"
)

// RNG is the deterministic random number generator used by workloads.
type RNG = vclock.RNG

// App is the composition root of a Whodunit run: it owns the virtual-time
// simulator and a set of named Stages (tiers), and wires the cross-cutting
// machinery — crosstalk monitoring, shared-memory flow detection, and the
// post-mortem stitching of per-stage profiles — so that applications are
// declared rather than hand-plumbed.
//
//	app := whodunit.NewApp("shop", whodunit.WithMode(whodunit.ModeWhodunit))
//	web := app.Stage("web")
//	db := app.Stage("db", whodunit.StageCPU(4))
//	... declare threads with web.Go / db.Go ...
//	report := app.Run()
//	report.Text(os.Stdout)
//
// App.Run drives the simulation to completion, shuts it down, and returns
// a unified Report carrying per-stage profiles, the crosstalk matrix,
// detected flows, and the automatically stitched transaction graph.
type App struct {
	Name string

	sim      *Sim
	cpu      *CPU // shared CPU, created lazily
	cores    int
	mode     Mode
	interval Duration
	seed     uint64
	rng      *RNG

	stages  []*Stage
	byName  map[string]*Stage
	monitor *CrosstalkMonitor
	machine *Machine
	tracker *FlowTracker

	flowWanted   bool
	flow         *flowState
	cyclesPerSec int64

	// Fault injection (WithFaults / SetFaults): the plan as configured
	// and the seeded injector that evaluates it during the run.
	faultPlan *faults.Plan
	injector  *faults.Injector

	// Windowed (continuous-profiling) runs: profiles are retired into
	// per-window Reports every `window` of virtual time (WithWindow).
	window   Duration
	onWindow func(*Report)
	winSeq   int64
	winStart vclock.Time

	ran bool
}

// NewApp returns an app with a fresh simulator, configured by opts. The
// defaults are ModeWhodunit profiling, a 2-core shared CPU, the standard
// sampling interval, and no crosstalk or flow machinery.
func NewApp(name string, opts ...Option) *App {
	a := &App{
		Name:         name,
		sim:          NewSim(),
		cores:        2,
		mode:         ModeWhodunit,
		byName:       make(map[string]*Stage),
		cyclesPerSec: DefaultCyclesPerSecond,
	}
	for _, opt := range opts {
		opt(a)
	}
	a.rng = vclock.NewRNG(a.seed)
	// Options are pure configuration; the cross-cutting machinery is
	// built here, once the mode, clock rate and flow settings are all
	// known — so option order never matters.
	if a.flowWanted {
		a.initFlow()
	}
	if a.faultPlan != nil {
		a.SetFaults(a.faultPlan)
	}
	return a
}

// Sim returns the app's simulator, for direct access to scheduling
// primitives (At, After, RunFor, ...).
func (a *App) Sim() *Sim { return a.sim }

// RNG returns the app's seeded random number generator (see WithSeed).
func (a *App) RNG() *RNG { return a.rng }

// CPU returns the app's shared CPU, creating it on first use.
func (a *App) CPU() *CPU {
	if a.cpu == nil {
		a.cpu = a.sim.NewCPU(a.Name+"-cpu", a.cores)
	}
	return a.cpu
}

// Stage declares (or, called without options, fetches) the named stage.
// Redeclaring an existing stage with options panics — a stage is
// configured exactly once.
func (a *App) Stage(name string, opts ...StageOption) *Stage {
	if st, ok := a.byName[name]; ok {
		if len(opts) > 0 {
			panic(fmt.Sprintf("whodunit: stage %q already declared", name))
		}
		return st
	}
	st := newStage(a, name, opts...)
	a.byName[name] = st
	a.stages = append(a.stages, st)
	return st
}

// Stages returns the app's stages in declaration order.
func (a *App) Stages() []*Stage {
	out := make([]*Stage, len(a.stages))
	copy(out, a.stages)
	return out
}

// NewLock creates a lock; if the app has a crosstalk monitor
// (WithCrosstalk), the lock reports contention to it.
func (a *App) NewLock(name string) *Lock {
	l := a.sim.NewLock(name)
	if a.monitor != nil {
		l.Observer = a.monitor
	}
	return l
}

// Crosstalk returns the app's crosstalk monitor, or nil without
// WithCrosstalk.
func (a *App) Crosstalk() *CrosstalkMonitor { return a.monitor }

// Machine returns the app's machine emulator, or nil without
// WithFlowDetection. The machine is owned by the app: Queue.Push/Pop
// and Stage.EmulatedCS run programs on it with the token plumbing
// already wired; read TotalCycles from it for emulation-cost accounting.
func (a *App) Machine() *Machine { return a.machine }

// FlowTracker returns the app's flow tracker, or nil unless the app was
// built with WithFlowDetection and profiles in ModeWhodunit. Its
// ThreadCtxt, OnFlow and OnNonFlow hooks are owned by the app's token
// plumbing; read detected flows through Flows or Report.Flows.
func (a *App) FlowTracker() *FlowTracker { return a.tracker }

// Run drives the simulation until no events remain, unwinds surviving
// threads, and returns the unified report — per-stage profiles stitched
// into the global transaction graph, plus crosstalk and flow data.
func (a *App) Run() *Report { return a.run(nil) }

// RunUntil is Run with a stop predicate, checked between simulator
// events (e.g. "all requests served").
func (a *App) RunUntil(stop func() bool) *Report { return a.run(stop) }

// RunFor is Run bounded to d of virtual time.
func (a *App) RunFor(d Duration) *Report {
	end := a.sim.Now().Add(d)
	return a.run(func() bool { return a.sim.Now() >= end })
}

func (a *App) run(stop func() bool) *Report {
	rep, err := a.runSupervised(stop)
	if err != nil {
		// Unsupervised callers keep the historical contract: an injected
		// (or genuine) panic in the simulation aborts the run loudly.
		panic(err)
	}
	return rep
}

// runSupervised is run with crash capture surfaced instead of raised:
// if a simulated thread or scheduler callback panics, the simulation
// halts at that instant, whatever profiles accumulated are still
// retired, dumped and stitched into the returned (partial) report, and
// the crash comes back as the error. This is the degraded-operation
// contract the Server's supervision loop builds on.
func (a *App) runSupervised(stop func() bool) (*Report, error) {
	if a.ran {
		panic(fmt.Sprintf("whodunit: app %q already run", a.Name))
	}
	a.ran = true
	a.armFaults()
	if a.window > 0 {
		if stop == nil {
			panic(fmt.Sprintf("whodunit: app %q has WithWindow but no stop condition; use RunUntil, RunFor or a Server", a.Name))
		}
		a.winStart = a.sim.Now()
		a.sim.Every(a.window, func() { a.retireWindow(a.sim.Now()) })
	}
	a.sim.RunUntil(stop)
	var err error
	if c := a.sim.Crashed(); c != nil {
		err = c
	}
	if a.window > 0 {
		// Retire whatever accumulated since the last tick as a final
		// (possibly partial) window, so shutdown loses no samples.
		a.retireWindow(a.sim.Now())
	}
	a.sim.Shutdown()
	return a.Report(), err
}

// Window returns the app's aggregation-window length (0 when the app is
// not windowed).
func (a *App) Window() Duration { return a.window }

// OnWindow registers the window-retirement callback of a windowed app
// (WithWindow): fn receives each per-window Report, in sequence order,
// from the goroutine driving the simulation. Must be set before Run.
func (a *App) OnWindow(fn func(*Report)) {
	if a.ran {
		panic("whodunit: OnWindow after run started")
	}
	a.onWindow = fn
}

// retireWindow closes the aggregation window ending at end: every
// stage's profiler retires its tree set (an O(1) swap — see
// profiler.Retire), the retired snapshots are assembled into a
// per-window Report, and the OnWindow callback receives it. Runs in
// scheduler context at window ticks and once more after RunUntil
// returns, for the final partial window.
//
// Window reports deliberately omit the crosstalk matrix and flow list:
// those accumulate over the whole run, and copying cumulative totals
// into every window would make behaviorally identical adjacent windows
// diff non-empty.
func (a *App) retireWindow(end vclock.Time) {
	if end <= a.winStart {
		return // empty window (e.g. final retire landing on a tick)
	}
	meta := &WindowMeta{Seq: a.winSeq, Start: Duration(a.winStart), End: Duration(end)}
	srs := make([]StageReport, 0, len(a.stages))
	for _, st := range a.stages {
		snap := st.prof.Retire()
		srs = append(srs, NewStageReportFrom(snap, st.endpoints...))
	}
	rep := NewReport(a.Name, srs...)
	rep.Elapsed = Duration(end.Sub(a.winStart))
	rep.Window = meta
	a.winSeq, a.winStart = a.winSeq+1, end
	if a.onWindow != nil {
		a.onWindow(rep)
	}
}

// LiveWindowReport builds a Report of the in-progress window without
// retiring it: the same shape retireWindow will eventually produce for
// this window, computed from detached profiler snapshots
// (profiler.Snapshot), so the returned report shares nothing mutable
// with the live run. Must be called synchronously with the simulation
// (scheduler context or between events); the result is then
// free-threaded. This is the snapshot-while-running path behind the
// serving API's live /report.
func (a *App) LiveWindowReport() *Report {
	now := a.sim.Now()
	srs := make([]StageReport, 0, len(a.stages))
	for _, st := range a.stages {
		srs = append(srs, NewStageReportFrom(st.prof.Snapshot(), st.endpoints...))
	}
	rep := NewReport(a.Name, srs...)
	rep.Elapsed = Duration(now.Sub(a.winStart))
	rep.Window = &WindowMeta{Seq: a.winSeq, Start: Duration(a.winStart), End: Duration(now)}
	return rep
}

// Arrivals installs an open-loop arrival process: arrive(i) is invoked
// in scheduler context at exponentially distributed virtual-time
// intervals with the given mean, i counting arrivals from 0. The
// process draws from its own RNG stream (derived from the app seed and
// name), so adding an arrival process never perturbs other seeded
// draws. It reschedules itself forever — open-loop apps must be run
// with a stop condition (RunFor, RunUntil or a Server).
//
// arrive runs in scheduler context and must not block; typically it
// puts work on a Queue for stage threads to consume.
func (a *App) Arrivals(name string, mean Duration, arrive func(i int64)) {
	if mean <= 0 {
		panic("whodunit: Arrivals needs a positive mean interarrival time")
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	rng := vclock.NewRNG(a.seed ^ h)
	var n int64
	var next func()
	next = func() {
		i := n
		n++
		arrive(i)
		a.sim.After(rng.Exp(mean), next)
	}
	a.sim.After(rng.Exp(mean), next)
}

// RunApps runs independent apps concurrently across GOMAXPROCS workers
// and returns their reports in input order. Each app owns its simulator,
// profilers, context tables and seeded RNG (WithSeed), so a parallel
// sweep produces bit-identical reports to running the same apps one by
// one — this is how the experiment harness regenerates every
// client-count point of a figure at once. Apps must not share mutable
// state (queues, locks, stages); read-only inputs like a generated
// workload trace are fine.
func RunApps(apps ...*App) []*Report {
	reports := make([]*Report, len(apps))
	par.Do(len(apps), func(i int) { reports[i] = apps[i].Run() })
	return reports
}

// Report assembles the current state of every stage into a unified
// Report, stitching the per-stage profiles into the transaction graph.
// App.Run calls it automatically; call it directly only when driving the
// simulator by hand through App.Sim.
func (a *App) Report() *Report {
	srs := make([]StageReport, 0, len(a.stages))
	for _, st := range a.stages {
		srs = append(srs, NewStageReport(st.prof, st.endpoints...))
	}
	rep := NewReport(a.Name, srs...)
	rep.Elapsed = Duration(a.sim.Now())
	if a.monitor != nil {
		rep.Crosstalk = a.monitor.Pairs()
	}
	if a.tracker != nil {
		rep.Flows = a.tracker.Flows()
	}
	if a.injector != nil {
		if s := a.injector.Stats(); !s.Zero() {
			rep.Faults = &s
		}
	}
	return rep
}
