package whodunit

import (
	"fmt"

	"whodunit/internal/par"
	"whodunit/internal/vclock"
)

// RNG is the deterministic random number generator used by workloads.
type RNG = vclock.RNG

// App is the composition root of a Whodunit run: it owns the virtual-time
// simulator and a set of named Stages (tiers), and wires the cross-cutting
// machinery — crosstalk monitoring, shared-memory flow detection, and the
// post-mortem stitching of per-stage profiles — so that applications are
// declared rather than hand-plumbed.
//
//	app := whodunit.NewApp("shop", whodunit.WithMode(whodunit.ModeWhodunit))
//	web := app.Stage("web")
//	db := app.Stage("db", whodunit.StageCPU(4))
//	... declare threads with web.Go / db.Go ...
//	report := app.Run()
//	report.Text(os.Stdout)
//
// App.Run drives the simulation to completion, shuts it down, and returns
// a unified Report carrying per-stage profiles, the crosstalk matrix,
// detected flows, and the automatically stitched transaction graph.
type App struct {
	Name string

	sim      *Sim
	cpu      *CPU // shared CPU, created lazily
	cores    int
	mode     Mode
	interval Duration
	seed     uint64
	rng      *RNG

	stages  []*Stage
	byName  map[string]*Stage
	monitor *CrosstalkMonitor
	machine *Machine
	tracker *FlowTracker

	flowWanted   bool
	flow         *flowState
	cyclesPerSec int64

	ran bool
}

// NewApp returns an app with a fresh simulator, configured by opts. The
// defaults are ModeWhodunit profiling, a 2-core shared CPU, the standard
// sampling interval, and no crosstalk or flow machinery.
func NewApp(name string, opts ...Option) *App {
	a := &App{
		Name:         name,
		sim:          NewSim(),
		cores:        2,
		mode:         ModeWhodunit,
		byName:       make(map[string]*Stage),
		cyclesPerSec: DefaultCyclesPerSecond,
	}
	for _, opt := range opts {
		opt(a)
	}
	a.rng = vclock.NewRNG(a.seed)
	// Options are pure configuration; the cross-cutting machinery is
	// built here, once the mode, clock rate and flow settings are all
	// known — so option order never matters.
	if a.flowWanted {
		a.initFlow()
	}
	return a
}

// Sim returns the app's simulator, for direct access to scheduling
// primitives (At, After, RunFor, ...).
func (a *App) Sim() *Sim { return a.sim }

// RNG returns the app's seeded random number generator (see WithSeed).
func (a *App) RNG() *RNG { return a.rng }

// CPU returns the app's shared CPU, creating it on first use.
func (a *App) CPU() *CPU {
	if a.cpu == nil {
		a.cpu = a.sim.NewCPU(a.Name+"-cpu", a.cores)
	}
	return a.cpu
}

// Stage declares (or, called without options, fetches) the named stage.
// Redeclaring an existing stage with options panics — a stage is
// configured exactly once.
func (a *App) Stage(name string, opts ...StageOption) *Stage {
	if st, ok := a.byName[name]; ok {
		if len(opts) > 0 {
			panic(fmt.Sprintf("whodunit: stage %q already declared", name))
		}
		return st
	}
	st := newStage(a, name, opts...)
	a.byName[name] = st
	a.stages = append(a.stages, st)
	return st
}

// Stages returns the app's stages in declaration order.
func (a *App) Stages() []*Stage {
	out := make([]*Stage, len(a.stages))
	copy(out, a.stages)
	return out
}

// NewLock creates a lock; if the app has a crosstalk monitor
// (WithCrosstalk), the lock reports contention to it.
func (a *App) NewLock(name string) *Lock {
	l := a.sim.NewLock(name)
	if a.monitor != nil {
		l.Observer = a.monitor
	}
	return l
}

// Crosstalk returns the app's crosstalk monitor, or nil without
// WithCrosstalk.
func (a *App) Crosstalk() *CrosstalkMonitor { return a.monitor }

// Machine returns the app's machine emulator, or nil without
// WithFlowDetection. The machine is owned by the app: Queue.Push/Pop
// and Stage.EmulatedCS run programs on it with the token plumbing
// already wired; read TotalCycles from it for emulation-cost accounting.
func (a *App) Machine() *Machine { return a.machine }

// FlowTracker returns the app's flow tracker, or nil unless the app was
// built with WithFlowDetection and profiles in ModeWhodunit. Its
// ThreadCtxt, OnFlow and OnNonFlow hooks are owned by the app's token
// plumbing; read detected flows through Flows or Report.Flows.
func (a *App) FlowTracker() *FlowTracker { return a.tracker }

// Run drives the simulation until no events remain, unwinds surviving
// threads, and returns the unified report — per-stage profiles stitched
// into the global transaction graph, plus crosstalk and flow data.
func (a *App) Run() *Report { return a.run(nil) }

// RunUntil is Run with a stop predicate, checked between simulator
// events (e.g. "all requests served").
func (a *App) RunUntil(stop func() bool) *Report { return a.run(stop) }

// RunFor is Run bounded to d of virtual time.
func (a *App) RunFor(d Duration) *Report {
	end := a.sim.Now().Add(d)
	return a.run(func() bool { return a.sim.Now() >= end })
}

func (a *App) run(stop func() bool) *Report {
	if a.ran {
		panic(fmt.Sprintf("whodunit: app %q already run", a.Name))
	}
	a.ran = true
	a.sim.RunUntil(stop)
	a.sim.Shutdown()
	return a.Report()
}

// RunApps runs independent apps concurrently across GOMAXPROCS workers
// and returns their reports in input order. Each app owns its simulator,
// profilers, context tables and seeded RNG (WithSeed), so a parallel
// sweep produces bit-identical reports to running the same apps one by
// one — this is how the experiment harness regenerates every
// client-count point of a figure at once. Apps must not share mutable
// state (queues, locks, stages); read-only inputs like a generated
// workload trace are fine.
func RunApps(apps ...*App) []*Report {
	reports := make([]*Report, len(apps))
	par.Do(len(apps), func(i int) { reports[i] = apps[i].Run() })
	return reports
}

// Report assembles the current state of every stage into a unified
// Report, stitching the per-stage profiles into the transaction graph.
// App.Run calls it automatically; call it directly only when driving the
// simulator by hand through App.Sim.
func (a *App) Report() *Report {
	srs := make([]StageReport, 0, len(a.stages))
	for _, st := range a.stages {
		srs = append(srs, NewStageReport(st.prof, st.endpoints...))
	}
	rep := NewReport(a.Name, srs...)
	rep.Elapsed = Duration(a.sim.Now())
	if a.monitor != nil {
		rep.Crosstalk = a.monitor.Pairs()
	}
	if a.tracker != nil {
		rep.Flows = a.tracker.Flows()
	}
	return rep
}
