package whodunit

import (
	"fmt"

	"whodunit/internal/faults"
	"whodunit/internal/par"
	"whodunit/internal/vclock"
)

// RNG is the deterministic random number generator used by workloads.
type RNG = vclock.RNG

// App is the composition root of a Whodunit run: it owns the virtual-time
// simulator and a set of named Stages (tiers), and wires the cross-cutting
// machinery — crosstalk monitoring, shared-memory flow detection, and the
// post-mortem stitching of per-stage profiles — so that applications are
// declared rather than hand-plumbed.
//
//	app := whodunit.NewApp("shop", whodunit.WithMode(whodunit.ModeWhodunit))
//	web := app.Stage("web")
//	db := app.Stage("db", whodunit.StageCPU(4))
//	... declare threads with web.Go / db.Go ...
//	report := app.Run()
//	report.Text(os.Stdout)
//
// App.Run drives the simulation to completion, shuts it down, and returns
// a unified Report carrying per-stage profiles, the crosstalk matrix,
// detected flows, and the automatically stitched transaction graph.
type App struct {
	Name string

	sim      *Sim // time domain 0, the "home" domain
	group    *vclock.Group
	cpu      *CPU // shared CPU, created lazily
	cores    int
	mode     Mode
	interval Duration
	seed     uint64
	rng      *RNG

	// Sharded simulated time (WithShards): shards is the effective time-
	// domain count after the serial-collapse rules, pipes the declared
	// cross-domain channels (resolved into vclock links when the run
	// starts), placedOffZero whether any stage, thread or queue has been
	// placed on a domain other than 0.
	shards        int
	shardsWanted  int
	shardsSet     bool
	pipes         []*Pipe
	placedOffZero bool

	stages  []*Stage
	byName  map[string]*Stage
	monitor *CrosstalkMonitor
	machine *Machine
	tracker *FlowTracker

	flowWanted   bool
	flow         *flowState
	cyclesPerSec int64

	// Fault injection (WithFaults / SetFaults): the plan as configured
	// and the seeded injector that evaluates it during the run.
	faultPlan *faults.Plan
	injector  *faults.Injector

	// Windowed (continuous-profiling) runs: profiles are retired into
	// per-window Reports every `window` of virtual time (WithWindow).
	window   Duration
	onWindow func(*Report)
	winSeq   int64
	winStart vclock.Time

	ran bool
}

// DefaultShards, when nonzero, applies WithShards(DefaultShards) to
// every app built without an explicit WithShards — the hook the
// corpus-wide sharded determinism sweep uses to rerun every existing
// scenario under sharding without touching the scenario builders (the
// same pattern as par.MaxWorkers for the sweep pool). Like every shard
// request it is subject to the serial-collapse rules; see WithShards.
var DefaultShards int

// NewApp returns an app with a fresh simulator, configured by opts. The
// defaults are ModeWhodunit profiling, a 2-core shared CPU, the standard
// sampling interval, and no crosstalk or flow machinery.
func NewApp(name string, opts ...Option) *App {
	a := &App{
		Name:         name,
		cores:        2,
		mode:         ModeWhodunit,
		byName:       make(map[string]*Stage),
		cyclesPerSec: DefaultCyclesPerSecond,
	}
	for _, opt := range opts {
		opt(a)
	}
	// Resolve the time-domain count, now that every option is known.
	// Crosstalk monitoring, flow detection, windowed aggregation and
	// fault plans all read or mutate state across the whole app from one
	// scheduler's context, so any of them collapses the run to a single
	// domain — the documented serial fallback, not an error, so a
	// scenario can be rerun under DefaultShards unchanged.
	n := 1
	switch {
	case a.shardsSet:
		n = a.shardsWanted
		if n == 0 {
			n = par.Limit()
		}
	case DefaultShards > 0:
		n = DefaultShards
	}
	if a.monitor != nil || a.flowWanted || a.window > 0 || a.faultPlan != nil {
		n = 1
	}
	a.shards = n
	a.group = vclock.NewGroup(n)
	a.sim = a.group.Domain(0)
	a.rng = vclock.NewRNG(a.seed)
	// Options are pure configuration; the cross-cutting machinery is
	// built here, once the mode, clock rate and flow settings are all
	// known — so option order never matters.
	if a.flowWanted {
		a.initFlow()
	}
	if a.faultPlan != nil {
		a.SetFaults(a.faultPlan)
	}
	return a
}

// Sim returns the app's simulator — time domain 0 of a sharded app —
// for direct access to scheduling primitives (At, After, RunFor, ...).
func (a *App) Sim() *Sim { return a.sim }

// Shards reports the app's effective time-domain count: the WithShards
// request after the serial-collapse rules (see WithShards). Application
// models size their round-robin partitioning from it, so a collapsed
// app transparently places everything on domain 0.
func (a *App) Shards() int { return a.shards }

// ShardSim returns the simulator of time domain k%Shards(). The modulo
// makes placement written against a sharded layout valid verbatim on a
// collapsed app: every index maps to domain 0.
func (a *App) ShardSim(k int) *Sim {
	if k < 0 {
		panic("whodunit: negative shard index")
	}
	s := a.group.Domain(k % a.shards)
	// The flag gates pre-run configuration (zero-latency pipe fallback,
	// SetFaults); don't touch it from inside the run, where threads of
	// several domains may resolve their own sims concurrently.
	if s != a.sim && !a.ran {
		a.placedOffZero = true
	}
	return s
}

// GoShard starts a raw simulated thread on time domain k%Shards() — how
// load generators partition clients round-robin across shards. Threads
// on different domains may only communicate through Pipes; everything a
// thread touches (queues, CPUs, stages) must live on its own domain.
func (a *App) GoShard(k int, name string, body func(*Thread)) *Thread {
	return a.ShardSim(k).Go(name, body)
}

// GoCoroShard is GoShard for run-to-completion bodies: the thread's
// program is the resumable frame f, executed by the domain's dispatcher
// with zero goroutine switches per blocking operation (see Sim.GoCoro).
// This is the shape for very large client populations — a coroutine
// client costs a small struct, not a goroutine stack and channel.
func (a *App) GoCoroShard(k int, name string, f Frame) *Thread {
	return a.ShardSim(k).GoCoro(name, f)
}

// Pipe declares a unidirectional cross-domain channel: Send(v) from
// shard `from`'s execution delivers v onto dst after `latency` of
// virtual time. Pipes are the only legal communication edge between
// time domains; their minimum latency is the group's lookahead (the
// epoch width), so model a real transport hop — network latency, client
// think time — rather than an infinitesimal delay. Declaration order
// matters: it is part of the deterministic barrier-merge key, so
// declare pipes in a fixed order (and before the run starts).
//
// A non-positive latency provides no lookahead; it is accepted as the
// safe serial fallback — the app collapses to one time domain — but
// only while nothing has been placed off shard 0 yet.
func (a *App) Pipe(from int, dst *Queue, latency Duration) *Pipe {
	if a.ran {
		panic("whodunit: Pipe after run started")
	}
	if from < 0 {
		panic("whodunit: negative shard index")
	}
	if latency <= 0 {
		if a.placedOffZero {
			panic(fmt.Sprintf("whodunit: app %q: zero-latency pipe onto %q with work already placed off shard 0 (no lookahead to shard by); give every pipe positive latency or declare zero-latency pipes first", a.Name, dst.Name))
		}
		a.shards = 1
	}
	p := &Pipe{app: a, from: from, dst: dst, latency: latency}
	a.pipes = append(a.pipes, p)
	return p
}

// Pipe is a declared cross-domain channel; see App.Pipe. Until the run
// starts it is only a declaration — Send panics before then.
type Pipe struct {
	app     *App
	from    int
	dst     *Queue
	latency Duration
	link    *vclock.Link
}

// Send delivers v onto the pipe's destination queue after the pipe's
// latency. It may only be called from the source shard's execution (its
// threads or scheduler callbacks), once the run has started.
func (p *Pipe) Send(v any) {
	if p.link == nil {
		panic(fmt.Sprintf("whodunit: Pipe.Send onto %q before the app run started", p.dst.Name))
	}
	p.link.Send(v)
}

// Latency reports the pipe's configured delivery delay.
func (p *Pipe) Latency() Duration { return p.latency }

// armPipes resolves pipe declarations into vclock links once the run
// starts, after every zero-latency collapse has settled — so source
// indexes fold with the same modulo as every other placement.
func (a *App) armPipes() {
	for _, p := range a.pipes {
		src := a.group.Domain(p.from % a.shards)
		p.link = a.group.Connect(src, p.dst.inner, p.latency)
	}
}

// RNG returns the app's seeded random number generator (see WithSeed).
func (a *App) RNG() *RNG { return a.rng }

// CPU returns the app's shared CPU, creating it on first use.
func (a *App) CPU() *CPU {
	if a.cpu == nil {
		a.cpu = a.sim.NewCPU(a.Name+"-cpu", a.cores)
	}
	return a.cpu
}

// Stage declares (or, called without options, fetches) the named stage.
// Redeclaring an existing stage with options panics — a stage is
// configured exactly once.
func (a *App) Stage(name string, opts ...StageOption) *Stage {
	if st, ok := a.byName[name]; ok {
		if len(opts) > 0 {
			panic(fmt.Sprintf("whodunit: stage %q already declared", name))
		}
		return st
	}
	st := newStage(a, name, opts...)
	a.byName[name] = st
	a.stages = append(a.stages, st)
	return st
}

// Stages returns the app's stages in declaration order.
func (a *App) Stages() []*Stage {
	out := make([]*Stage, len(a.stages))
	copy(out, a.stages)
	return out
}

// NewLock creates a lock; if the app has a crosstalk monitor
// (WithCrosstalk), the lock reports contention to it.
func (a *App) NewLock(name string) *Lock {
	l := a.sim.NewLock(name)
	if a.monitor != nil {
		l.Observer = a.monitor
	}
	return l
}

// Crosstalk returns the app's crosstalk monitor, or nil without
// WithCrosstalk.
func (a *App) Crosstalk() *CrosstalkMonitor { return a.monitor }

// Machine returns the app's machine emulator, or nil without
// WithFlowDetection. The machine is owned by the app: Queue.Push/Pop
// and Stage.EmulatedCS run programs on it with the token plumbing
// already wired; read TotalCycles from it for emulation-cost accounting.
func (a *App) Machine() *Machine { return a.machine }

// FlowTracker returns the app's flow tracker, or nil unless the app was
// built with WithFlowDetection and profiles in ModeWhodunit. Its
// ThreadCtxt, OnFlow and OnNonFlow hooks are owned by the app's token
// plumbing; read detected flows through Flows or Report.Flows.
func (a *App) FlowTracker() *FlowTracker { return a.tracker }

// Run drives the simulation until no events remain, unwinds surviving
// threads, and returns the unified report — per-stage profiles stitched
// into the global transaction graph, plus crosstalk and flow data.
func (a *App) Run() *Report { return a.run(nil) }

// RunUntil is Run with a stop predicate, checked between simulator
// events (e.g. "all requests served").
func (a *App) RunUntil(stop func() bool) *Report { return a.run(stop) }

// RunFor is Run bounded to d of virtual time. On a sharded app the
// bound is checked against the group clock at epoch barriers, so the
// run stops at the first barrier past the bound.
func (a *App) RunFor(d Duration) *Report {
	end := a.group.Now().Add(d)
	return a.run(func() bool { return a.group.Now() >= end })
}

func (a *App) run(stop func() bool) *Report {
	rep, err := a.runSupervised(stop)
	if err != nil {
		// Unsupervised callers keep the historical contract: an injected
		// (or genuine) panic in the simulation aborts the run loudly.
		panic(err)
	}
	return rep
}

// runSupervised is run with crash capture surfaced instead of raised:
// if a simulated thread or scheduler callback panics, the simulation
// halts at that instant, whatever profiles accumulated are still
// retired, dumped and stitched into the returned (partial) report, and
// the crash comes back as the error. This is the degraded-operation
// contract the Server's supervision loop builds on.
func (a *App) runSupervised(stop func() bool) (*Report, error) {
	if a.ran {
		panic(fmt.Sprintf("whodunit: app %q already run", a.Name))
	}
	a.ran = true
	a.armPipes()
	a.armFaults()
	if a.window > 0 {
		if stop == nil {
			panic(fmt.Sprintf("whodunit: app %q has WithWindow but no stop condition; use RunUntil, RunFor or a Server", a.Name))
		}
		a.winStart = a.sim.Now()
		a.sim.Every(a.window, func() { a.retireWindow(a.sim.Now()) })
	}
	a.group.RunUntil(stop)
	var err error
	if c := a.group.Crashed(); c != nil {
		err = c
	}
	if a.window > 0 {
		// Retire whatever accumulated since the last tick as a final
		// (possibly partial) window, so shutdown loses no samples.
		a.retireWindow(a.sim.Now())
	}
	a.group.Shutdown()
	return a.Report(), err
}

// Window returns the app's aggregation-window length (0 when the app is
// not windowed).
func (a *App) Window() Duration { return a.window }

// OnWindow registers the window-retirement callback of a windowed app
// (WithWindow): fn receives each per-window Report, in sequence order,
// from the goroutine driving the simulation. Must be set before Run.
func (a *App) OnWindow(fn func(*Report)) {
	if a.ran {
		panic("whodunit: OnWindow after run started")
	}
	a.onWindow = fn
}

// retireWindow closes the aggregation window ending at end: every
// stage's profiler retires its tree set (an O(1) swap — see
// profiler.Retire), the retired snapshots are assembled into a
// per-window Report, and the OnWindow callback receives it. Runs in
// scheduler context at window ticks and once more after RunUntil
// returns, for the final partial window.
//
// Window reports deliberately omit the crosstalk matrix and flow list:
// those accumulate over the whole run, and copying cumulative totals
// into every window would make behaviorally identical adjacent windows
// diff non-empty.
func (a *App) retireWindow(end vclock.Time) {
	if end <= a.winStart {
		return // empty window (e.g. final retire landing on a tick)
	}
	meta := &WindowMeta{Seq: a.winSeq, Start: Duration(a.winStart), End: Duration(end)}
	srs := make([]StageReport, 0, len(a.stages))
	for _, st := range a.stages {
		snap := st.prof.Retire()
		srs = append(srs, NewStageReportFrom(snap, st.endpoints...))
	}
	rep := NewReport(a.Name, srs...)
	rep.Elapsed = Duration(end.Sub(a.winStart))
	rep.Window = meta
	a.winSeq, a.winStart = a.winSeq+1, end
	if a.onWindow != nil {
		a.onWindow(rep)
	}
}

// LiveWindowReport builds a Report of the in-progress window without
// retiring it: the same shape retireWindow will eventually produce for
// this window, computed from detached profiler snapshots
// (profiler.Snapshot), so the returned report shares nothing mutable
// with the live run. Must be called synchronously with the simulation
// (scheduler context or between events); the result is then
// free-threaded. This is the snapshot-while-running path behind the
// serving API's live /report.
func (a *App) LiveWindowReport() *Report {
	now := a.sim.Now()
	srs := make([]StageReport, 0, len(a.stages))
	for _, st := range a.stages {
		srs = append(srs, NewStageReportFrom(st.prof.Snapshot(), st.endpoints...))
	}
	rep := NewReport(a.Name, srs...)
	rep.Elapsed = Duration(now.Sub(a.winStart))
	rep.Window = &WindowMeta{Seq: a.winSeq, Start: Duration(a.winStart), End: Duration(now)}
	return rep
}

// Arrivals installs an open-loop arrival process: arrive(i) is invoked
// in scheduler context at exponentially distributed virtual-time
// intervals with the given mean, i counting arrivals from 0. The
// process draws from its own RNG stream (derived from the app seed and
// name), so adding an arrival process never perturbs other seeded
// draws. It reschedules itself forever — open-loop apps must be run
// with a stop condition (RunFor, RunUntil or a Server).
//
// arrive runs in scheduler context and must not block; typically it
// puts work on a Queue for stage threads to consume.
func (a *App) Arrivals(name string, mean Duration, arrive func(i int64)) {
	if mean <= 0 {
		panic("whodunit: Arrivals needs a positive mean interarrival time")
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	rng := vclock.NewRNG(a.seed ^ h)
	var n int64
	var next func()
	next = func() {
		i := n
		n++
		arrive(i)
		a.sim.After(rng.Exp(mean), next)
	}
	a.sim.After(rng.Exp(mean), next)
}

// RunApps runs independent apps concurrently across GOMAXPROCS workers
// and returns their reports in input order. Each app owns its simulator,
// profilers, context tables and seeded RNG (WithSeed), so a parallel
// sweep produces bit-identical reports to running the same apps one by
// one — this is how the experiment harness regenerates every
// client-count point of a figure at once. Apps must not share mutable
// state (queues, locks, stages); read-only inputs like a generated
// workload trace are fine.
func RunApps(apps ...*App) []*Report {
	reports := make([]*Report, len(apps))
	par.Do(len(apps), func(i int) { reports[i] = apps[i].Run() })
	return reports
}

// Report assembles the current state of every stage into a unified
// Report, stitching the per-stage profiles into the transaction graph.
// App.Run calls it automatically; call it directly only when driving the
// simulator by hand through App.Sim.
func (a *App) Report() *Report {
	srs := make([]StageReport, 0, len(a.stages))
	for _, st := range a.stages {
		srs = append(srs, NewStageReport(st.prof, st.endpoints...))
	}
	rep := NewReport(a.Name, srs...)
	rep.Elapsed = Duration(a.group.Now())
	if a.monitor != nil {
		rep.Crosstalk = a.monitor.Pairs()
	}
	if a.tracker != nil {
		rep.Flows = a.tracker.Flows()
	}
	if a.injector != nil {
		if s := a.injector.Stats(); !s.Zero() {
			rep.Faults = &s
		}
	}
	return rep
}
