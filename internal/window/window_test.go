package window

import (
	"sync"
	"testing"

	"whodunit/internal/vclock"
)

func meta(seq int64) Meta {
	start := vclock.Time(0).Add(vclock.Duration(seq) * vclock.Second)
	return Meta{Seq: seq, Start: start, End: start.Add(vclock.Second)}
}

func TestMetaDuration(t *testing.T) {
	m := meta(3)
	if got := m.Duration(); got != vclock.Second {
		t.Fatalf("Duration = %v, want %v", got, vclock.Second)
	}
}

func TestRingAppendGetEvict(t *testing.T) {
	r := NewRing[string](3)
	if _, ok := r.Latest(); ok {
		t.Fatal("Latest on empty ring reported a value")
	}
	for i := int64(0); i < 5; i++ {
		r.Append(meta(i), "w")
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	if r.Total() != 5 {
		t.Fatalf("Total = %d, want 5", r.Total())
	}
	// 0 and 1 evicted, 2..4 retained.
	for i := int64(0); i < 2; i++ {
		if _, ok := r.Get(i); ok {
			t.Fatalf("Get(%d) found an evicted window", i)
		}
	}
	for i := int64(2); i < 5; i++ {
		kv, ok := r.Get(i)
		if !ok || kv.Meta.Seq != i {
			t.Fatalf("Get(%d) = %+v, %v", i, kv, ok)
		}
	}
	latest, ok := r.Latest()
	if !ok || latest.Meta.Seq != 4 {
		t.Fatalf("Latest = %+v, %v", latest, ok)
	}
	entries := r.Entries()
	if len(entries) != 3 || entries[0].Meta.Seq != 2 || entries[2].Meta.Seq != 4 {
		t.Fatalf("Entries = %+v", entries)
	}
}

func TestRingBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRing(0) did not panic")
		}
	}()
	NewRing[int](0)
}

func TestSubscribeDeliversAndCancels(t *testing.T) {
	r := NewRing[int](4)
	ch, cancel := r.Subscribe(8)
	r.Append(meta(0), 10)
	r.Append(meta(1), 11)
	for i := int64(0); i < 2; i++ {
		kv := <-ch
		if kv.Meta.Seq != i || kv.V != int(10+i) {
			t.Fatalf("got %+v, want seq %d", kv, i)
		}
	}
	cancel()
	cancel() // idempotent
	if _, open := <-ch; open {
		t.Fatal("channel still open after cancel")
	}
	r.Append(meta(2), 12) // must not panic or deliver to cancelled sub
}

func TestSubscribeDropsWhenFull(t *testing.T) {
	r := NewRing[int](8)
	ch, cancel := r.Subscribe(1)
	defer cancel()
	r.Append(meta(0), 0)
	r.Append(meta(1), 1) // buffer full: dropped
	kv := <-ch
	if kv.Meta.Seq != 0 {
		t.Fatalf("first delivery seq = %d, want 0", kv.Meta.Seq)
	}
	select {
	case kv := <-ch:
		t.Fatalf("unexpected second delivery %+v", kv)
	default:
	}
}

// TestDroppedLedgerUnderStalledConsumer pins the backpressure contract:
// a subscriber that never drains (a stalled SSE client) must not stall
// Append — every skipped delivery lands in the Dropped ledger instead —
// and a healthy subscriber on the same ring still sees every window.
func TestDroppedLedgerUnderStalledConsumer(t *testing.T) {
	r := NewRing[int](4)
	stalled, cancelStalled := r.Subscribe(1)
	defer cancelStalled()
	healthy, cancelHealthy := r.Subscribe(64)
	defer cancelHealthy()

	const windows = 20
	for i := int64(0); i < windows; i++ {
		r.Append(meta(i), int(i)) // must never block
	}
	// The stalled subscriber's 1-slot buffer took window 0; the other 19
	// deliveries were skipped and counted.
	if got := r.Dropped(); got != windows-1 {
		t.Fatalf("Dropped = %d, want %d", got, windows-1)
	}
	if kv := <-stalled; kv.Meta.Seq != 0 {
		t.Fatalf("stalled subscriber's single delivery seq = %d, want 0", kv.Meta.Seq)
	}
	// The healthy subscriber saw the full dense series: drops are
	// per-subscriber verdicts, not a shared fate.
	for i := int64(0); i < windows; i++ {
		kv := <-healthy
		if kv.Meta.Seq != i {
			t.Fatalf("healthy subscriber delivery %d has seq %d", i, kv.Meta.Seq)
		}
	}
	// A cancelled subscriber stops counting: it is detached, not stalled.
	cancelStalled()
	before := r.Dropped()
	r.Append(meta(windows), windows)
	if got := r.Dropped(); got != before {
		t.Fatalf("Dropped grew to %d after cancel (was %d); detached subscribers must not count", got, before)
	}
	if r.Total() != windows+1 {
		t.Fatalf("Total = %d; Append must survive stalled and cancelled subscribers alike", r.Total())
	}
}

func TestCloseEndsStreams(t *testing.T) {
	r := NewRing[int](2)
	ch, _ := r.Subscribe(1)
	r.Close()
	r.Close() // idempotent
	if _, open := <-ch; open {
		t.Fatal("subscriber channel open after Close")
	}
	// Subscribing after close yields an already-closed channel.
	ch2, cancel2 := r.Subscribe(1)
	cancel2()
	if _, open := <-ch2; open {
		t.Fatal("post-close subscription channel open")
	}
	// Retained entries stay readable after close.
	if r.Len() != 0 {
		t.Fatalf("Len = %d, want 0", r.Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Append after Close did not panic")
		}
	}()
	r.Append(meta(0), 1)
}

// TestConcurrentFanOut hammers the ring from one producer and several
// consumer/cancel goroutines; run with -race this is the concurrency
// contract check for the serving path.
func TestConcurrentFanOut(t *testing.T) {
	r := NewRing[int](16)
	const windows = 200
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		ch, cancel := r.Subscribe(windows)
		wg.Add(1)
		go func(ch <-chan Keyed[int], cancel func()) {
			defer wg.Done()
			last := int64(-1)
			for kv := range ch {
				if kv.Meta.Seq <= last {
					t.Errorf("out-of-order delivery: %d after %d", kv.Meta.Seq, last)
					break
				}
				last = kv.Meta.Seq
			}
			cancel()
		}(ch, cancel)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(0); i < windows; i++ {
			r.Append(meta(i), int(i))
			if i%3 == 0 {
				r.Latest()
				r.Entries()
			}
		}
		r.Close()
	}()
	wg.Wait()
	if r.Total() != windows {
		t.Fatalf("Total = %d, want %d", r.Total(), windows)
	}
}
