// Package window holds the retained-window machinery of the continuous
// profiling service: metadata for fixed virtual-time aggregation windows
// and a bounded ring that retains the most recent retired values while
// fanning each retirement out to subscribers (the /stream SSE feed).
//
// The ring is deliberately generic over its element type — the server
// stores retired *whodunit.Report values, tests store small structs —
// and is the only piece of the serving subsystem that is safe for
// concurrent use: the simulation retires windows from its own goroutine
// while HTTP handlers read retained ones.
package window

import (
	"sync"

	"whodunit/internal/vclock"
)

// Meta identifies one aggregation window: its sequence number (0-based,
// dense) and its [Start, End) span on the virtual clock.
type Meta struct {
	Seq   int64
	Start vclock.Time
	End   vclock.Time
}

// Duration reports the window's virtual span.
func (m Meta) Duration() vclock.Duration { return m.End.Sub(m.Start) }

// Keyed pairs a retired value with its window metadata.
type Keyed[T any] struct {
	Meta Meta
	V    T
}

// Ring retains the last cap retired windows and broadcasts each
// retirement to subscribers. Older windows are evicted in FIFO order;
// Get on an evicted (or not yet retired) sequence number reports a miss.
// All methods are safe for concurrent use.
type Ring[T any] struct {
	mu      sync.Mutex
	entries []Keyed[T] // oldest first, len <= cap
	cap     int
	total   int64 // windows ever appended
	dropped int64 // subscriber deliveries skipped on full buffers
	subs    []*subscriber[T]
	closed  bool
}

type subscriber[T any] struct {
	ch     chan Keyed[T]
	closed bool
}

// NewRing returns a ring retaining up to cap windows.
func NewRing[T any](cap int) *Ring[T] {
	if cap < 1 {
		panic("window: ring capacity must be at least 1")
	}
	return &Ring[T]{cap: cap}
}

// Append retires one window into the ring, evicting the oldest retained
// entry if full, and publishes it to every subscriber. Publication is
// non-blocking: a subscriber whose buffer is full misses the window
// (slow SSE clients drop frames rather than stalling the simulation).
func (r *Ring[T]) Append(m Meta, v T) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		panic("window: append to closed ring")
	}
	if len(r.entries) == r.cap {
		copy(r.entries, r.entries[1:])
		r.entries = r.entries[:r.cap-1]
	}
	kv := Keyed[T]{Meta: m, V: v}
	r.entries = append(r.entries, kv)
	r.total++
	for _, s := range r.subs {
		if s.closed {
			continue
		}
		select {
		case s.ch <- kv:
		default:
			r.dropped++
		}
	}
}

// Dropped reports how many subscriber deliveries were skipped because a
// subscriber's buffer was full — the backpressure ledger: a stalled SSE
// consumer shows up here instead of stalling window retirement.
func (r *Ring[T]) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Get returns the retained window with the given sequence number.
func (r *Ring[T]) Get(seq int64) (Keyed[T], bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.entries {
		if r.entries[i].Meta.Seq == seq {
			return r.entries[i], true
		}
	}
	var zero Keyed[T]
	return zero, false
}

// Latest returns the most recently retired window, if any.
func (r *Ring[T]) Latest() (Keyed[T], bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.entries) == 0 {
		var zero Keyed[T]
		return zero, false
	}
	return r.entries[len(r.entries)-1], true
}

// Entries returns a copy of the retained windows, oldest first.
func (r *Ring[T]) Entries() []Keyed[T] {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Keyed[T], len(r.entries))
	copy(out, r.entries)
	return out
}

// Len reports how many windows are currently retained.
func (r *Ring[T]) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Total reports how many windows have ever been appended.
func (r *Ring[T]) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Subscribe registers a listener for future retirements, delivered on a
// channel with the given buffer. The returned cancel function detaches
// the subscription and closes the channel; it is idempotent. Close on
// the ring also closes every subscriber channel.
func (r *Ring[T]) Subscribe(buf int) (<-chan Keyed[T], func()) {
	if buf < 1 {
		buf = 1
	}
	s := &subscriber[T]{ch: make(chan Keyed[T], buf)}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		close(s.ch)
		return s.ch, func() {}
	}
	r.subs = append(r.subs, s)
	r.mu.Unlock()
	cancel := func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		if s.closed {
			return
		}
		s.closed = true
		close(s.ch)
		for i, sub := range r.subs {
			if sub == s {
				r.subs = append(r.subs[:i], r.subs[i+1:]...)
				break
			}
		}
	}
	return s.ch, cancel
}

// Close marks the ring complete: every subscriber channel is closed
// (signalling end-of-stream to SSE clients) and further Appends panic.
// Retained entries remain readable.
func (r *Ring[T]) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.closed = true
	for _, s := range r.subs {
		if !s.closed {
			s.closed = true
			close(s.ch)
		}
	}
	r.subs = nil
}
