package faults

import (
	"testing"

	"whodunit/internal/vclock"
)

func TestValidate(t *testing.T) {
	ok := &Plan{
		Seed:     7,
		Crashes:  []StageCrash{{Stage: "db", At: vclock.Time(vclock.Second)}},
		Stalls:   []Stall{{Stage: "web", At: 0, For: vclock.Millisecond}},
		Messages: []MessageFault{{Queue: "q", Drop: 0.1, Dup: 0.1, DelayProb: 0.1, Delay: vclock.Millisecond}},
		Failures: []Fail{{At: vclock.Time(vclock.Second), Msg: "boom"}},
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if err := (*Plan)(nil).Validate(); err != nil {
		t.Fatalf("nil plan rejected: %v", err)
	}
	bad := []*Plan{
		{Crashes: []StageCrash{{Stage: ""}}},
		{Crashes: []StageCrash{{Stage: "db", At: -1}}},
		{Stalls: []Stall{{Stage: "web", For: 0}}},
		{Messages: []MessageFault{{Queue: "q", Drop: 1.5}}},
		{Messages: []MessageFault{{Queue: "q", Drop: 0.6, Dup: 0.6}}},
		{Messages: []MessageFault{{Queue: "q", DelayProb: 0.5}}},
		{Messages: []MessageFault{{Queue: "q"}}},
		{Failures: []Fail{{At: -1}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d accepted", i)
		}
	}
}

func TestEmpty(t *testing.T) {
	if !(&Plan{Seed: 3}).Empty() || !(*Plan)(nil).Empty() {
		t.Fatal("plan with no faults should be Empty")
	}
	if (&Plan{Failures: []Fail{{Msg: "x"}}}).Empty() {
		t.Fatal("plan with a failure reported Empty")
	}
}

func TestMessageVerdictsDeterministic(t *testing.T) {
	plan := &Plan{
		Seed: 42,
		Messages: []MessageFault{
			{Queue: "faulted", Drop: 0.2, Dup: 0.1, DelayProb: 0.1, Delay: vclock.Millisecond},
		},
	}
	run := func() []Action {
		in := NewInjector(plan, 9)
		var out []Action
		for i := 0; i < 500; i++ {
			a, _ := in.Message("faulted")
			out = append(out, a)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
	counts := map[Action]int{}
	for _, v := range a {
		counts[v]++
	}
	// With 500 draws at 20/10/10% the faulted counts cannot plausibly be
	// zero; this guards against a verdict ladder that never fires.
	for _, act := range []Action{Drop, Dup, Delay} {
		if counts[act] == 0 {
			t.Errorf("no %v verdicts in 500 draws", act)
		}
	}
	if counts[Deliver] < 200 {
		t.Errorf("only %d deliveries in 500 draws at 60%% deliver", counts[Deliver])
	}
}

func TestUnmatchedQueueConsumesNoRandomness(t *testing.T) {
	plan := &Plan{Messages: []MessageFault{{Queue: "faulted", Drop: 0.5}}}
	a := NewInjector(plan, 1)
	b := NewInjector(plan, 1)
	// Interleave traffic on an un-faulted queue in one injector only; the
	// faulted queue's verdict stream must not shift.
	for i := 0; i < 100; i++ {
		if act, _ := a.Message("other"); act != Deliver {
			t.Fatal("un-faulted queue was faulted")
		}
		av, _ := a.Message("faulted")
		bv, _ := b.Message("faulted")
		if av != bv {
			t.Fatalf("draw %d diverged after un-faulted traffic: %v vs %v", i, av, bv)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	plan1 := &Plan{Seed: 1, Messages: []MessageFault{{Queue: "", Drop: 0.5}}}
	plan2 := &Plan{Seed: 2, Messages: []MessageFault{{Queue: "", Drop: 0.5}}}
	a := NewInjector(plan1, 7)
	b := NewInjector(plan2, 7)
	same := 0
	const n = 200
	for i := 0; i < n; i++ {
		av, _ := a.Message("q")
		bv, _ := b.Message("q")
		if av == bv {
			same++
		}
	}
	if same == n {
		t.Fatal("different plan seeds produced identical verdict streams")
	}
}

func TestStatsLedger(t *testing.T) {
	plan := &Plan{Messages: []MessageFault{{Queue: "", Drop: 1}}}
	in := NewInjector(plan, 0)
	for i := 0; i < 3; i++ {
		in.Message("q")
	}
	in.NoteCrash()
	in.NoteRestart()
	in.NoteStall()
	in.NoteFailure()
	got := in.Stats()
	want := Stats{Dropped: 3, Crashes: 1, Restarts: 1, Stalls: 1, Failures: 1}
	if got != want {
		t.Fatalf("stats = %+v, want %+v", got, want)
	}
	if got.Zero() || (Stats{}).Zero() == false {
		t.Fatal("Zero() misreported")
	}
}
