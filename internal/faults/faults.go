// Package faults is the deterministic fault-injection plane for the
// whodunit runtime. A Plan declares what goes wrong and when — stage
// crashes, message-level drop/duplication/delay, CPU stalls, whole-run
// failures — entirely in virtual time, and an Injector turns the plan
// into per-message verdicts drawn from a seeded RNG. Because every
// verdict is a deterministic function of (plan seed, app seed, draw
// index) and every scheduled fault is an ordinary vclock heap event,
// a faulted run replays bit-identically at a fixed seed: same messages
// dropped, same tier crashing at the same virtual instant, same partial
// profile out the other end.
//
// The package deliberately knows nothing about stages or apps beyond
// their names; the App runtime owns the wiring (see WithFaults).
package faults

import (
	"fmt"

	"whodunit/internal/vclock"
)

// StageCrash kills every thread of a stage at a virtual instant. If
// RestartAfter is positive the stage's declared thread bodies are
// respawned that much later, modelling a supervised process restart;
// otherwise the stage stays down for the rest of the run.
type StageCrash struct {
	Stage        string
	At           vclock.Time
	RestartAfter vclock.Duration
}

// Stall steals CPU from a stage's node for a window of virtual time —
// the classic slow-node fault. An empty Stage targets the app's shared
// CPU when stages don't have private ones.
type Stall struct {
	Stage string
	At    vclock.Time
	For   vclock.Duration
}

// MessageFault perturbs messages Put on a named queue. An empty Queue
// matches every queue. Drop, Dup and DelayProb are per-message
// probabilities and must sum to at most 1; a delayed message is
// re-enqueued Delay later. One RNG draw decides each message's fate,
// so verdicts are independent of queue interleaving.
type MessageFault struct {
	Queue     string
	Drop      float64
	Dup       float64
	DelayProb float64
	Delay     vclock.Duration
}

// Fail injects a panic into the run at a virtual instant, as if a bug
// fired in a scheduler callback. The vclock crash-capture machinery
// turns it into a supervised error rather than a process abort.
type Fail struct {
	At  vclock.Time
	Msg string
}

// Plan is a complete fault schedule. The zero Plan injects nothing.
type Plan struct {
	// Seed decorrelates this plan's message verdicts from the app's own
	// workload randomness; two plans with different seeds drop different
	// messages even against the same app seed.
	Seed uint64

	Crashes  []StageCrash
	Stalls   []Stall
	Messages []MessageFault
	Failures []Fail
}

// Empty reports whether the plan injects nothing at all.
func (p *Plan) Empty() bool {
	return p == nil ||
		(len(p.Crashes) == 0 && len(p.Stalls) == 0 &&
			len(p.Messages) == 0 && len(p.Failures) == 0)
}

// Validate rejects plans that cannot mean anything sensible: negative
// times or durations, probabilities outside [0,1] or summing past 1,
// delays without a duration, crashes or stalls without a stage.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for i, c := range p.Crashes {
		if c.Stage == "" {
			return fmt.Errorf("faults: crash %d names no stage", i)
		}
		if c.At < 0 || c.RestartAfter < 0 {
			return fmt.Errorf("faults: crash %d (%s) has a negative time", i, c.Stage)
		}
	}
	for i, st := range p.Stalls {
		if st.At < 0 || st.For <= 0 {
			return fmt.Errorf("faults: stall %d (%s) needs a positive duration at a non-negative time", i, st.Stage)
		}
	}
	for i, m := range p.Messages {
		for _, pr := range []float64{m.Drop, m.Dup, m.DelayProb} {
			if pr < 0 || pr > 1 {
				return fmt.Errorf("faults: message fault %d (%q) has a probability outside [0,1]", i, m.Queue)
			}
		}
		if m.Drop+m.Dup+m.DelayProb > 1 {
			return fmt.Errorf("faults: message fault %d (%q) probabilities sum past 1", i, m.Queue)
		}
		if m.DelayProb > 0 && m.Delay <= 0 {
			return fmt.Errorf("faults: message fault %d (%q) delays with no delay duration", i, m.Queue)
		}
		if m.Drop+m.Dup+m.DelayProb == 0 {
			return fmt.Errorf("faults: message fault %d (%q) injects nothing", i, m.Queue)
		}
	}
	for i, f := range p.Failures {
		if f.At < 0 {
			return fmt.Errorf("faults: failure %d is scheduled before time zero", i)
		}
	}
	return nil
}

// Action is a message verdict.
type Action uint8

const (
	// Deliver passes the message through untouched.
	Deliver Action = iota
	// Drop discards the message.
	Drop
	// Dup delivers the message twice.
	Dup
	// Delay delivers the message after the returned duration.
	Delay
)

func (a Action) String() string {
	switch a {
	case Drop:
		return "drop"
	case Dup:
		return "dup"
	case Delay:
		return "delay"
	default:
		return "deliver"
	}
}

// Stats counts what the injector actually did, for the run report.
// All fields are omitempty so fault-free reports stay byte-identical.
type Stats struct {
	Dropped    int64 `json:"dropped,omitempty"`
	Duplicated int64 `json:"duplicated,omitempty"`
	Delayed    int64 `json:"delayed,omitempty"`
	Crashes    int64 `json:"crashes,omitempty"`
	Restarts   int64 `json:"restarts,omitempty"`
	Stalls     int64 `json:"stalls,omitempty"`
	Failures   int64 `json:"failures,omitempty"`
}

// Zero reports whether no fault fired.
func (s Stats) Zero() bool { return s == Stats{} }

// Injector evaluates a Plan's message faults against a private seeded
// RNG stream and accumulates Stats. The scheduled faults (crashes,
// stalls, failures) are armed by the runtime, which calls the Note*
// methods as they fire, so Stats is the one ledger of everything the
// plan did.
type Injector struct {
	plan  *Plan
	rng   *vclock.RNG
	stats Stats
}

// mix finalizes a seed avalanche-style (splitmix64 finalizer) so plan
// seed 0 against app seed 0 still yields a well-spread stream.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewInjector builds an injector for plan, decorrelating its RNG from
// the app's own seed-derived streams. plan must already be validated.
func NewInjector(plan *Plan, appSeed uint64) *Injector {
	return &Injector{plan: plan, rng: vclock.NewRNG(mix(appSeed ^ mix(plan.Seed)))}
}

// Plan returns the plan the injector was built from.
func (in *Injector) Plan() *Plan { return in.plan }

// Message draws the verdict for one message on the named queue. The
// first matching MessageFault rule decides; if none matches, Deliver
// with no draw, so un-faulted queues cost nothing and do not perturb
// the stream consumed by faulted ones.
func (in *Injector) Message(queue string) (Action, vclock.Duration) {
	for i := range in.plan.Messages {
		m := &in.plan.Messages[i]
		if m.Queue != "" && m.Queue != queue {
			continue
		}
		u := in.rng.Float64()
		switch {
		case u < m.Drop:
			in.stats.Dropped++
			return Drop, 0
		case u < m.Drop+m.Dup:
			in.stats.Duplicated++
			return Dup, 0
		case u < m.Drop+m.Dup+m.DelayProb:
			in.stats.Delayed++
			return Delay, m.Delay
		}
		return Deliver, 0
	}
	return Deliver, 0
}

// NoteCrash records a stage crash firing.
func (in *Injector) NoteCrash() { in.stats.Crashes++ }

// NoteRestart records a crashed stage respawning.
func (in *Injector) NoteRestart() { in.stats.Restarts++ }

// NoteStall records a CPU stall firing.
func (in *Injector) NoteStall() { in.stats.Stalls++ }

// NoteFailure records an injected run failure firing.
func (in *Injector) NoteFailure() { in.stats.Failures++ }

// Stats returns the fault ledger accumulated so far.
func (in *Injector) Stats() Stats { return in.stats }
