//go:build !race

package vclock

// raceEnabled reports whether the build carries the race detector; the
// race build forces DefaultEngine to EngineGoroutine (see engine.go).
const raceEnabled = false
