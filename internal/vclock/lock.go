package vclock

// LockMode distinguishes shared (reader) from exclusive (writer) lock
// acquisitions.
type LockMode uint8

const (
	// Shared allows concurrent holders that all acquired in Shared mode.
	Shared LockMode = iota
	// Exclusive allows exactly one holder.
	Exclusive
)

func (m LockMode) String() string {
	if m == Exclusive {
		return "exclusive"
	}
	return "shared"
}

// LockObserver receives lock events; the crosstalk monitor implements it.
// All durations are virtual. blockers is the set of threads holding the
// lock at the moment the waiter started waiting (nil when the acquisition
// was immediate).
type LockObserver interface {
	LockAcquired(l *Lock, t *Thread, mode LockMode, wait Duration, blockers []*Thread)
	LockReleased(l *Lock, t *Thread, mode LockMode, held Duration)
}

type lockWaiter struct {
	t        *Thread
	mode     LockMode
	since    Time
	blockers []*Thread
}

type lockHolder struct {
	t     *Thread
	mode  LockMode
	since Time
}

// Lock is a reader/writer lock with FIFO fairness: requests are granted in
// arrival order; consecutive shared requests at the head of the line are
// granted together. This matches the behaviour the paper assumes (a writer
// blocks later readers, so crosstalk is visible in both directions).
type Lock struct {
	Name string

	sim      *Sim
	holders  []lockHolder
	waiters  []lockWaiter
	Observer LockObserver

	contended int64 // acquisitions that had to wait
	acquired  int64 // total acquisitions
	waitTotal Duration
}

// NewLock returns an unlocked lock attached to s.
func (s *Sim) NewLock(name string) *Lock {
	return &Lock{Name: name, sim: s}
}

// Stats reports total acquisitions, how many of them waited, and the total
// wait time accumulated.
func (l *Lock) Stats() (acquired, contended int64, waitTotal Duration) {
	return l.acquired, l.contended, l.waitTotal
}

// HeldBy reports whether t currently holds the lock (in either mode).
func (l *Lock) HeldBy(t *Thread) bool {
	for _, h := range l.holders {
		if h.t == t {
			return true
		}
	}
	return false
}

// Holders returns the threads currently holding the lock.
func (l *Lock) Holders() []*Thread {
	out := make([]*Thread, len(l.holders))
	for i, h := range l.holders {
		out[i] = h.t
	}
	return out
}

func (l *Lock) grantable(mode LockMode) bool {
	if len(l.holders) == 0 {
		return true
	}
	if mode == Exclusive {
		return false
	}
	// Shared: grantable only if every holder is shared.
	for _, h := range l.holders {
		if h.mode == Exclusive {
			return false
		}
	}
	return true
}

// Lock acquires l in the given mode, blocking the calling thread until the
// acquisition is granted. Recursive acquisition is not supported and
// panics, as it would self-deadlock.
func (t *Thread) Lock(l *Lock, mode LockMode) {
	if l.HeldBy(t) {
		panic("vclock: recursive lock acquisition by " + t.Name + " on " + l.Name)
	}
	l.acquired++
	// FIFO fairness: even a grantable shared request must queue behind
	// earlier waiters so writers are not starved.
	if len(l.waiters) == 0 && l.grantable(mode) {
		l.holders = append(l.holders, lockHolder{t, mode, l.sim.now})
		if l.Observer != nil {
			l.Observer.LockAcquired(l, t, mode, 0, nil)
		}
		return
	}
	l.contended++
	w := lockWaiter{t: t, mode: mode, since: l.sim.now, blockers: l.Holders()}
	l.waiters = append(l.waiters, w)
	t.park()
	// The releaser has installed us as a holder and scheduled this wake.
	wait := l.sim.now.Sub(w.since)
	l.waitTotal += wait
	if l.Observer != nil {
		l.Observer.LockAcquired(l, t, mode, wait, w.blockers)
	}
}

// Unlock releases the calling thread's hold on l and grants the lock to
// the next waiters per FIFO policy. It panics if t does not hold l.
func (t *Thread) Unlock(l *Lock) {
	idx := -1
	for i, h := range l.holders {
		if h.t == t {
			idx = i
			break
		}
	}
	if idx < 0 {
		panic("vclock: unlock of " + l.Name + " by non-holder " + t.Name)
	}
	h := l.holders[idx]
	l.holders = append(l.holders[:idx], l.holders[idx+1:]...)
	if l.Observer != nil {
		l.Observer.LockReleased(l, t, h.mode, l.sim.now.Sub(h.since))
	}
	l.grantWaiters()
}

// grantWaiters admits the longest-waiting requests that are now grantable:
// either one exclusive waiter, or the maximal prefix of shared waiters.
func (l *Lock) grantWaiters() {
	for len(l.waiters) > 0 {
		w := l.waiters[0]
		if w.t.dead {
			// The waiter was killed while queued; drop its request so it
			// neither blocks later waiters nor becomes a zombie holder.
			l.waiters = l.waiters[1:]
			continue
		}
		if !l.grantable(w.mode) {
			return
		}
		l.waiters = l.waiters[1:]
		l.holders = append(l.holders, lockHolder{w.t, w.mode, l.sim.now})
		l.sim.wakeAt(l.sim.now, w.t, nil)
		if w.mode == Exclusive {
			return
		}
	}
}
