package vclock

import (
	"strings"
	"testing"
)

func TestKillParkedThreadRunsDefers(t *testing.T) {
	s := New()
	q := s.NewQueue("q")
	var unwound bool
	victim := s.Go("victim", func(th *Thread) {
		defer func() { unwound = true }()
		th.Get(q) // parks forever
		t.Error("victim ran past Get after kill")
	})
	s.At(Time(5*Millisecond), func() { s.Kill(victim) })
	s.Run()
	if !unwound {
		t.Fatal("killed thread's deferred function did not run")
	}
	if !victim.Dead() {
		t.Fatal("victim not marked dead")
	}
	if s.Live() != 0 {
		t.Fatalf("live = %d after kill, want 0", s.Live())
	}
	s.Shutdown()
}

func TestKillSleepingThreadSkipsStaleWake(t *testing.T) {
	s := New()
	var woke bool
	victim := s.Go("sleeper", func(th *Thread) {
		th.Sleep(10 * Millisecond)
		woke = true
	})
	// Keep another event pending so the sleeper parks instead of taking
	// the inline fast path, leaving a stale wake event in the heap.
	s.Go("other", func(th *Thread) { th.Sleep(20 * Millisecond) })
	s.At(Time(5*Millisecond), func() { s.Kill(victim) })
	s.Run()
	if woke {
		t.Fatal("killed sleeper woke up")
	}
	s.Shutdown()
}

func TestKillQueueWaiterDoesNotSwallowItems(t *testing.T) {
	s := New()
	q := s.NewQueue("q")
	var got any
	victim := s.Go("victim", func(th *Thread) {
		th.Get(q)
		t.Error("victim received an item after kill")
	})
	s.Go("survivor", func(th *Thread) {
		th.Sleep(Millisecond) // queue behind the victim in the waiter list
		got = th.Get(q)
	})
	s.At(Time(2*Millisecond), func() { s.Kill(victim) })
	s.At(Time(3*Millisecond), func() { q.Put("item") })
	s.Run()
	if got != "item" {
		t.Fatalf("survivor got %v, want the item the dead waiter would have taken", got)
	}
	s.Shutdown()
}

func TestKillReleasesDeferredLock(t *testing.T) {
	s := New()
	l := s.NewLock("l")
	q := s.NewQueue("q")
	var acquired bool
	victim := s.Go("victim", func(th *Thread) {
		th.Lock(l, Exclusive)
		defer th.Unlock(l)
		th.Get(q) // parks holding the lock
	})
	s.Go("waiter", func(th *Thread) {
		th.Sleep(Millisecond)
		th.Lock(l, Exclusive)
		acquired = true
		th.Unlock(l)
	})
	s.At(Time(2*Millisecond), func() { s.Kill(victim) })
	s.Run()
	if !acquired {
		t.Fatal("lock held by killed thread was never released to the waiter")
	}
	s.Shutdown()
}

func TestKillLockWaiterIsSkipped(t *testing.T) {
	s := New()
	l := s.NewLock("l")
	var acquired bool
	s.Go("holder", func(th *Thread) {
		th.Lock(l, Exclusive)
		th.Sleep(10 * Millisecond)
		th.Unlock(l)
	})
	victim := s.Go("victim", func(th *Thread) {
		th.Sleep(Millisecond)
		th.Lock(l, Exclusive)
		t.Error("killed waiter acquired the lock")
	})
	s.Go("behind", func(th *Thread) {
		th.Sleep(2 * Millisecond)
		th.Lock(l, Exclusive)
		acquired = true
		th.Unlock(l)
	})
	s.At(Time(5*Millisecond), func() { s.Kill(victim) })
	s.Run()
	if !acquired {
		t.Fatal("waiter behind the killed one never got the lock")
	}
	s.Shutdown()
}

func TestKillBeforeStartDropsThread(t *testing.T) {
	s := New()
	s.At(0, func() {}) // ensure the heap is non-empty before GoAt fires
	victim := s.GoAt(Time(10*Millisecond), "late", func(th *Thread) {
		t.Error("killed-before-start thread ran")
	})
	s.At(Time(Millisecond), func() { s.Kill(victim) })
	s.Run()
	if s.Live() != 0 {
		t.Fatalf("live = %d, want 0", s.Live())
	}
	s.Shutdown()
}

func TestSelfKillFromCallback(t *testing.T) {
	s := New()
	var after bool
	var victim *Thread
	victim = s.Go("self", func(th *Thread) {
		// The kill callback runs while this thread dispatches inside its
		// own park (Sleep), so the kill event targets the dispatcher.
		th.Sleep(10 * Millisecond)
		after = true
	})
	s.At(Time(5*Millisecond), func() { s.Kill(victim) })
	s.Go("other", func(th *Thread) { th.Sleep(20 * Millisecond) })
	s.Run()
	if after {
		t.Fatal("self-killed thread resumed after its wake")
	}
	if s.Live() != 0 {
		t.Fatalf("live = %d, want 0", s.Live())
	}
	s.Shutdown()
}

func TestGetTimeoutExpires(t *testing.T) {
	s := New()
	q := s.NewQueue("q")
	var ok bool
	var at Time
	s.Go("getter", func(th *Thread) {
		_, ok = th.GetTimeout(q, 5*Millisecond)
		at = th.Now()
	})
	s.Run()
	if ok {
		t.Fatal("GetTimeout on an empty queue reported an item")
	}
	if at != Time(5*Millisecond) {
		t.Fatalf("timed out at %v, want 5ms", at)
	}
	s.Shutdown()
}

func TestGetTimeoutDelivers(t *testing.T) {
	s := New()
	q := s.NewQueue("q")
	var got any
	s.Go("getter", func(th *Thread) {
		got, _ = th.GetTimeout(q, 5*Millisecond)
	})
	s.At(Time(2*Millisecond), func() { q.Put("v") })
	s.Run()
	if got != "v" {
		t.Fatalf("got %v, want v", got)
	}
	s.Shutdown()
}

func TestGetTimeoutStaleTimerDoesNotFire(t *testing.T) {
	s := New()
	q := s.NewQueue("q")
	var vals []any
	s.Go("getter", func(th *Thread) {
		// First wait is satisfied before its timer fires; the thread is
		// waiting again (plain Get) when the stale timer event runs.
		v, ok := th.GetTimeout(q, 10*Millisecond)
		if !ok {
			t.Error("first GetTimeout timed out unexpectedly")
		}
		vals = append(vals, v)
		vals = append(vals, th.Get(q))
	})
	s.At(Time(Millisecond), func() { q.Put("a") })
	s.At(Time(20*Millisecond), func() { q.Put("b") })
	s.Run()
	if len(vals) != 2 || vals[0] != "a" || vals[1] != "b" {
		t.Fatalf("vals = %v, want [a b]", vals)
	}
	s.Shutdown()
}

func TestPreemptDelaysCompute(t *testing.T) {
	s := New()
	c := s.NewCPU("c", 2)
	var done Time
	s.Go("worker", func(th *Thread) {
		th.Sleep(Millisecond)
		th.Compute(c, Millisecond)
		done = th.Now()
	})
	s.At(0, func() { c.Preempt(5 * Millisecond) })
	s.Run()
	if done != Time(6*Millisecond) {
		t.Fatalf("compute finished at %v, want 6ms (5ms stall + 1ms work)", done)
	}
	if c.Stolen() != 10*Millisecond {
		t.Fatalf("stolen = %v, want 10ms (5ms x 2 cores)", c.Stolen())
	}
	if c.Busy() != Millisecond {
		t.Fatalf("busy = %v, want 1ms (stalls are not app work)", c.Busy())
	}
	s.Shutdown()
}

func TestCrashCaptureHaltsDispatch(t *testing.T) {
	s := New()
	var after bool
	s.Go("bomb", func(th *Thread) {
		th.Sleep(5 * Millisecond)
		panic("injected")
	})
	s.Go("bystander", func(th *Thread) {
		th.Sleep(10 * Millisecond)
		after = true
	})
	s.Run()
	c := s.Crashed()
	if c == nil {
		t.Fatal("crash not captured")
	}
	if c.Thread != "bomb" || c.Value != "injected" || c.At != Time(5*Millisecond) {
		t.Fatalf("crash = %+v", c)
	}
	if !strings.Contains(c.Error(), "injected") {
		t.Fatalf("crash error %q does not mention the panic value", c.Error())
	}
	if len(c.Stack) == 0 {
		t.Fatal("crash captured no stack")
	}
	if after {
		t.Fatal("dispatch continued past the crash")
	}
	s.Shutdown()
}

func TestCallbackCrashCaptured(t *testing.T) {
	s := New()
	s.At(Time(Millisecond), func() { panic("cb") })
	s.Run()
	c := s.Crashed()
	if c == nil || c.Thread != "(scheduler)" || c.Value != "cb" {
		t.Fatalf("crash = %+v", c)
	}
	s.Shutdown()
}

func TestKillDeterministic(t *testing.T) {
	// The same kill schedule must produce the same final state every run.
	run := func() (Time, int64) {
		s := New()
		q := s.NewQueue("q")
		rng := NewRNG(3)
		var victims []*Thread
		for i := 0; i < 8; i++ {
			victims = append(victims, s.Go("w", func(th *Thread) {
				for {
					th.Get(q)
					th.Sleep(Duration(rng.Intn(1000)) * Microsecond)
				}
			}))
		}
		for i := 0; i < 50; i++ {
			d := Duration(i) * Millisecond
			s.At(Time(d), func() { q.Put(i) })
		}
		s.At(Time(20*Millisecond), func() { s.Kill(victims[2]) })
		s.At(Time(25*Millisecond), func() { s.Kill(victims[5]) })
		s.RunFor(Time(60 * Millisecond))
		_, gets, _ := q.Stats()
		now := s.Now()
		s.Shutdown()
		return now, gets
	}
	t1, g1 := run()
	t2, g2 := run()
	if t1 != t2 || g1 != g2 {
		t.Fatalf("kill schedule diverged: (%v, %d) vs (%v, %d)", t1, g1, t2, g2)
	}
}
