package vclock

import (
	"fmt"
	"sort"

	"whodunit/internal/par"
)

// Group runs one application across several Sims ("time domains") with
// conservative parallel discrete-event simulation. Each domain advances
// independently through an epoch window [t, t+Δ) on its own pool worker
// (internal/par), and cross-domain messages travel over Links, which
// buffer sends during an epoch and exchange them at the epoch barrier
// through a deterministic merge. Δ is the lookahead: the minimum
// positive Link latency. Because every cross-domain message is delayed
// by at least Δ, nothing sent during an epoch can be due inside it —
// each domain can burn through its own heap for a whole window without
// ever missing an input.
//
// Determinism is the design center, not a side effect. Within a domain
// the ordinary (when, seq) heap order applies unchanged. At a barrier
// the gathered messages are delivered in (deliverAt, link id, per-link
// seq) order — all three components are functions of the program, not
// of the domain layout — so delivered messages acquire destination
// sequence numbers in an order independent of how work was spread over
// domains. A Group with one domain runs the same exchange protocol, so
// serial and sharded runs of the same program are bit-identical; the
// scenario-corpus Diff gate pins exactly that.
//
// A Group whose links all have zero latency has no lookahead to exploit;
// Connect restricts such "direct" links to a single domain (the safe
// serial fallback), where Send delivers straight onto the destination
// heap.
type Group struct {
	domains []*Sim
	links   []*Link
	delta   Duration   // lookahead; computed when a run starts
	pending []delivery // barrier merge scratch, reused across epochs
	running bool
}

// Link is a unidirectional cross-domain channel created by
// Group.Connect: Send(v) from the source domain delivers v onto the
// destination queue `latency` later in virtual time. Send may only be
// called from the source domain's execution (its threads or scheduler
// callbacks), and only while the group is running or before the first
// run.
type Link struct {
	id      int
	src     *Sim
	dst     *Sim
	q       *Queue
	latency Duration
	direct  bool // zero latency: deliver immediately, no epoch buffering
	seq     uint64
	outbox  []xmsg
}

// xmsg is one buffered cross-domain send awaiting the epoch barrier.
type xmsg struct {
	at  Time
	seq uint64
	v   any
}

// delivery is one merged barrier delivery; the sort key (at, id, seq)
// is domain-layout-independent, which is what makes serial and sharded
// runs bit-identical.
type delivery struct {
	at  Time
	id  int
	seq uint64
	dst *Sim
	q   *Queue
	v   any
}

// NewGroup returns a group of n fresh time domains. Domain 0 is the
// "home" domain: single-domain callers use it exactly like a bare Sim.
func NewGroup(n int) *Group {
	if n < 1 {
		panic("vclock: NewGroup needs at least one domain")
	}
	g := &Group{domains: make([]*Sim, n)}
	for i := range g.domains {
		g.domains[i] = New()
	}
	return g
}

// Domains reports the number of time domains in the group.
func (g *Group) Domains() int { return len(g.domains) }

// Domain returns the i-th time domain.
func (g *Group) Domain(i int) *Sim {
	if i < 0 || i >= len(g.domains) {
		panic(fmt.Sprintf("vclock: domain %d out of range [0,%d)", i, len(g.domains)))
	}
	return g.domains[i]
}

func (g *Group) owns(s *Sim) bool {
	for _, d := range g.domains {
		if d == s {
			return true
		}
	}
	return false
}

// Connect declares a link from src's execution onto dst, delivering
// `latency` later in virtual time. Links must be declared in the same
// order in every run — the declaration index is part of the barrier
// merge key. A non-positive latency makes the link "direct" (immediate
// delivery with no epoch buffering), which is only legal when source
// and destination share a domain: a zero-latency cross-domain edge has
// no lookahead, so the caller must fall back to placing both sides on
// one domain.
func (g *Group) Connect(src *Sim, dst *Queue, latency Duration) *Link {
	if g.running {
		panic("vclock: Connect while the group is running")
	}
	if !g.owns(src) {
		panic("vclock: Connect source is not a domain of this group")
	}
	if !g.owns(dst.sim) {
		panic("vclock: Connect destination queue is not on a domain of this group")
	}
	direct := latency <= 0
	if direct && src != dst.sim {
		panic("vclock: zero-latency link across domains (no lookahead); co-locate both sides or give the link positive latency")
	}
	l := &Link{id: len(g.links), src: src, dst: dst.sim, q: dst, latency: latency, direct: direct}
	g.links = append(g.links, l)
	return l
}

// Send delivers v onto the link's destination queue l.latency after the
// source domain's current time. On a direct (zero-latency, same-domain)
// link the delivery event is pushed immediately; otherwise the send
// waits in the link's outbox for the epoch barrier.
func (l *Link) Send(v any) {
	at := l.src.now.Add(l.latency)
	if l.direct {
		l.src.deliver(at, l.q, v)
		return
	}
	l.outbox = append(l.outbox, xmsg{at: at, seq: l.seq, v: v})
	l.seq++
}

// Latency reports the link's configured delivery delay.
func (l *Link) Latency() Duration { return l.latency }

// Lookahead reports the epoch width the group will run with: the
// minimum positive link latency, or 0 when no epoch link exists (the
// domains are then independent and run without barriers).
func (g *Group) Lookahead() Duration {
	var d Duration
	for _, l := range g.links {
		if l.direct {
			continue
		}
		if d == 0 || l.latency < d {
			d = l.latency
		}
	}
	return d
}

// Run drives every domain until no events remain anywhere and all
// outboxes have drained.
func (g *Group) Run() { g.RunUntil(nil) }

// RunUntil drives the group until stop returns true or no events
// remain. With epoch links the stop predicate is evaluated at epoch
// barriers only — every domain quiescent, exchanged messages delivered
// — so it may read state owned by any domain; barrier granularity (at
// most one lookahead of virtual time) is the price of that safety.
// Without epoch links the domains are independent: the predicate then
// applies to domain 0 alone and the remaining domains run to
// completion, exactly as if each had been driven by its own RunUntil.
func (g *Group) RunUntil(stop func() bool) {
	if g.running {
		panic("vclock: Group.RunUntil called re-entrantly")
	}
	g.running = true
	defer func() { g.running = false }()
	g.delta = g.Lookahead()
	if g.delta == 0 {
		if len(g.domains) == 1 {
			g.domains[0].RunUntil(stop)
			return
		}
		par.Do(len(g.domains), func(i int) {
			if i == 0 {
				g.domains[0].RunUntil(stop)
				return
			}
			g.domains[i].Run()
		})
		return
	}
	g.epochRun(stop)
}

// epochRun is the conservative PDES loop: find the globally earliest
// pending event time m, advance every domain to the horizon — the next
// Δ-grid point strictly after m — in parallel, then exchange buffered
// cross-domain messages in deterministic order. Aligning horizons to
// the Δ grid (rather than to m+Δ) keeps barrier instants a function of
// the event set alone, so they are identical for every domain layout.
//
// Conservatism: any message sent during the epoch leaves at some t >= m
// and is delivered at t+L >= m+Δ >= h, so no domain ever runs past a
// message it has not yet received. Skipping empty grid slots (h derived
// from m, not incremented) costs nothing in fidelity: barriers with no
// work on either side deliver nothing.
func (g *Group) epochRun(stop func() bool) {
	d := int64(g.delta)
	for {
		if g.Crashed() != nil {
			return
		}
		if stop != nil && stop() {
			return
		}
		m, ok := g.nextEventTime()
		if !ok {
			return
		}
		h := Time((int64(m)/d + 1) * d)
		par.Do(len(g.domains), func(i int) { g.domains[i].RunBefore(h) })
		g.exchange()
	}
}

// nextEventTime reports the earliest pending event time across all
// domains. It is a function of the union of pending events, so it is
// identical for every domain layout of the same program.
func (g *Group) nextEventTime() (Time, bool) {
	var m Time
	found := false
	for _, s := range g.domains {
		if len(s.events) == 0 {
			continue
		}
		if t := s.events[0].when; !found || t < m {
			m, found = t, true
		}
	}
	return m, found
}

// exchange gathers every link's outbox, sorts by (deliverAt, link id,
// per-link seq) and pushes delivery events onto the destination heaps
// in that order. Pushing in sorted order fixes the destination sequence
// numbers — and therefore all same-instant tie-breaks — independently
// of the domain layout.
func (g *Group) exchange() {
	g.pending = g.pending[:0]
	for _, l := range g.links {
		for _, m := range l.outbox {
			g.pending = append(g.pending, delivery{at: m.at, id: l.id, seq: m.seq, dst: l.dst, q: l.q, v: m.v})
		}
		clear(l.outbox)
		l.outbox = l.outbox[:0]
	}
	p := g.pending
	sort.Slice(p, func(i, j int) bool {
		if p[i].at != p[j].at {
			return p[i].at < p[j].at
		}
		if p[i].id != p[j].id {
			return p[i].id < p[j].id
		}
		return p[i].seq < p[j].seq
	})
	for i := range p {
		p[i].dst.deliver(p[i].at, p[i].q, p[i].v)
		p[i].v = nil
	}
}

// Now reports the group's clock: the maximum domain clock. At a barrier
// every domain has advanced to the same horizon's edge, so this is the
// virtual time the run as a whole has reached; it is independent of the
// domain layout because each domain's clock stops at its last executed
// event.
func (g *Group) Now() Time {
	var t Time
	for _, s := range g.domains {
		if s.now > t {
			t = s.now
		}
	}
	return t
}

// Crashed returns the earliest captured crash across the domains (ties
// broken by domain index), or nil. A crash in any domain halts the
// epoch loop at the next barrier; domains that were mid-epoch finish
// their window first, so — unlike a clean run — the post-crash
// simulation state is not guaranteed bit-identical across layouts. The
// crash itself is: it happened inside one domain's deterministic event
// order.
func (g *Group) Crashed() *Crash {
	var best *Crash
	for _, s := range g.domains {
		c := s.crash
		if c == nil {
			continue
		}
		if best == nil || c.At < best.At {
			best = c
		}
	}
	return best
}

// Shutdown unwinds parked threads in every domain, domain order. Call
// only after RunUntil has returned.
func (g *Group) Shutdown() {
	for _, s := range g.domains {
		s.Shutdown()
	}
}
