package vclock

// This file is the run-to-completion scheduler: simulated threads whose
// bodies are resumable state machines instead of goroutines. A Frame is
// one straight-line segment of such a body; it runs non-blocking code
// and ends by taking exactly one step — continue into another frame,
// block on a scheduling primitive naming the frame to resume in, or
// finish. The dispatcher pops the event heap and invokes continuations
// directly, so a blocking operation costs a method call instead of a
// goroutine hand-off: no channel operations, no scheduler round trip,
// no parked stack.
//
// Bit-identity with the goroutine engine is by construction: every Coro
// operation performs the same bookkeeping — the same heap pushes, the
// same waiter-list mutations, the same inline-sleep fast path, in the
// same order — as its blocking Thread counterpart. Only the control
// transfer differs, and the event order is a function of the heap
// contents alone, so a program expressed as frames produces the same
// event order on either engine. The quick-check property tests and the
// scenario corpus sweep pin this.

// Step is the opaque receipt a Frame returns. Frames cannot construct a
// meaningful Step themselves — they obtain one by calling exactly one
// stepping operation (Get, Sleep, Lock, Call, Return, ...); the
// trampoline panics if a frame returns without stepping, which turns
// "forgot to block or continue" bugs into immediate failures instead of
// silently wedged threads.
type Step struct{ _ byte }

// Frame is one resumable segment of a run-to-completion thread body. It
// receives the coroutine and the value delivered by the wake that
// resumed it (the queue item for Get, nil for sleeps and locks), runs
// arbitrary non-blocking code, and must finish by taking exactly one
// step.
type Frame func(c *Coro, v any) Step

// BlockOn is Resume's verdict: whether the coroutine parked on a
// scheduling primitive or ran to completion.
type BlockOn uint8

const (
	// CoroParked: the program blocked; the next wake event delivered to
	// its thread resumes it.
	CoroParked BlockOn = iota
	// CoroDone: the program finished; Resume's second result is the
	// value passed to the final Return.
	CoroDone
)

// blockKind records which primitive the coroutine blocked on, so Resume
// can run the operation's post-wake bookkeeping before re-entering user
// frames.
type blockKind uint8

const (
	blockNone       blockKind = iota
	blockWake                 // plain wake: queue get, sleep, yield, compute
	blockLock                 // lock acquisition: wait accounting + observer pending
	blockGetTimeout           // timed get: the wake payload may be the timeout sentinel
)

// Coro is the execution state of one run-to-completion thread: the
// pending continuation, a return stack for Call/Return composition, and
// the bookkeeping its blocking operations leave for Resume. All fields
// are owned by the dispatcher (whoever holds the baton), so no locking
// is needed — the same single-active-goroutine discipline as the rest
// of the simulator.
type Coro struct {
	t     *Thread
	next  Frame
	stack []Frame // return continuations pushed by Call
	passv any     // value handed to the next frame when not blocking

	blocked blockKind
	stepped bool // set by the one permitted step per frame
	done    bool
	ret     any

	timedOut bool

	// Post-wake bookkeeping for a contended Lock (mirrors the tail of
	// Thread.Lock, which runs after park returns).
	lock         *Lock
	lockMode     LockMode
	lockSince    Time
	lockBlockers []*Thread

	cleanups []func() // Defer stack, run on finish, kill and shutdown
}

func newCoro(t *Thread, f Frame) *Coro {
	c := &Coro{t: t, next: f}
	t.coro = c
	return c
}

// Thread returns the simulated thread this coroutine runs as.
func (c *Coro) Thread() *Thread { return c.t }

// Now reports the current virtual time.
func (c *Coro) Now() Time { return c.t.sim.now }

// op validates the one-step-per-frame discipline and mints the receipt.
func (c *Coro) op() Step {
	if c.stepped {
		panic("vclock: coroutine frame in thread " + c.t.Name + " took two steps; a frame must take exactly one")
	}
	c.stepped = true
	return Step{}
}

// Goto continues immediately with f (which receives nil): a tail
// transfer between frames.
func (c *Coro) Goto(f Frame) Step {
	c.next = f
	return c.op()
}

// Call invokes f now and arranges for ret to receive the value f's
// chain eventually passes to Return — subroutine composition for
// frame-based programs.
func (c *Coro) Call(f, ret Frame) Step {
	c.stack = append(c.stack, ret)
	c.next = f
	return c.op()
}

// Return pops the innermost Call continuation and continues there with
// v. On an empty stack the program is finished and v becomes the
// coroutine's final value.
func (c *Coro) Return(v any) Step {
	if n := len(c.stack); n > 0 {
		c.next = c.stack[n-1]
		c.stack[n-1] = nil
		c.stack = c.stack[:n-1]
		c.passv = v
		return c.op()
	}
	c.done = true
	c.ret = v
	return c.op()
}

// End finishes the program (Return with a nil value).
func (c *Coro) End() Step { return c.Return(nil) }

// Defer registers fn to run — last registered first — when the program
// finishes, is killed, or is unwound by Shutdown: the coroutine
// equivalent of a goroutine body's deferred functions. Like those, fn
// must not block on simulator primitives.
func (c *Coro) Defer(fn func()) { c.cleanups = append(c.cleanups, fn) }

// runCleanups runs the Defer stack. A panicking cleanup is recorded as
// the run's crash (first crash wins) and the remaining cleanups still
// run, so one failing teardown cannot leak the others' resources.
func (c *Coro) runCleanups() {
	for i := len(c.cleanups) - 1; i >= 0; i-- {
		fn := c.cleanups[i]
		c.cleanups[i] = nil
		func() {
			defer func() {
				if r := recover(); r != nil {
					c.t.sim.recordCrash(c.t.Name, r)
				}
			}()
			fn()
		}()
	}
	c.cleanups = c.cleanups[:0]
}

// Get is Queue.Get for coroutines: if an item is buffered, k continues
// immediately with it; otherwise the thread joins the waiter list and k
// runs when a Put hands an item over. Bookkeeping is identical to the
// blocking Get — same TryGet, same waitGen bump, same waiter append.
func (c *Coro) Get(q *Queue, k Frame) Step {
	t := c.t
	if v, ok := t.TryGet(q); ok {
		c.next, c.passv = k, v
		return c.op()
	}
	t.waitGen++
	q.enqueueWaiter(t)
	c.next = k
	c.blocked = blockWake
	return c.op()
}

// GetTimeout is Thread.GetTimeout for coroutines: k continues with the
// item, or with nil once d elapses first — distinguish with TimedOut,
// which is valid inside k. A non-positive d degrades to TryGet, exactly
// like the blocking API.
func (c *Coro) GetTimeout(q *Queue, d Duration, k Frame) Step {
	t := c.t
	c.timedOut = false
	if v, ok := t.TryGet(q); ok {
		c.next, c.passv = k, v
		return c.op()
	}
	if d <= 0 {
		c.timedOut = true
		c.next, c.passv = k, nil
		return c.op()
	}
	s := t.sim
	t.waitGen++
	gen := t.waitGen
	q.enqueueWaiter(t)
	s.At(s.now.Add(d), func() {
		if t.waitGen == gen && !t.dead && q.removeWaiter(t) {
			s.wakeAt(s.now, t, timeoutWake{})
		}
	})
	c.next = k
	c.blocked = blockGetTimeout
	return c.op()
}

// TimedOut reports whether the GetTimeout that last resumed this
// coroutine expired without an item. It is meaningful inside the
// continuation frame passed to GetTimeout, until the next GetTimeout.
func (c *Coro) TimedOut() bool { return c.timedOut }

// SleepUntil parks the coroutine until virtual time `at`, then runs k.
// The inline fast path is byte-for-byte the one in Thread.SleepUntil:
// when the wake would be the strictly earliest pending event, the clock
// advances in place and k continues without touching the heap.
func (c *Coro) SleepUntil(at Time, k Frame) Step {
	t := c.t
	s := t.sim
	if at < s.now {
		at = s.now
	}
	if s.running && s.crash == nil && (len(s.events) == 0 || at < s.events[0].when) && (s.stop == nil || !s.stop()) {
		s.now = at
		c.next = k
		return c.op()
	}
	s.schedule(at, t)
	c.next = k
	c.blocked = blockWake
	return c.op()
}

// Sleep parks the coroutine for d of virtual time, then runs k.
func (c *Coro) Sleep(d Duration, k Frame) Step { return c.SleepUntil(c.t.sim.now.Add(d), k) }

// Yield lets every other runnable thread scheduled at the current
// instant run before k continues — Thread.Yield for coroutines.
func (c *Coro) Yield(k Frame) Step { return c.SleepUntil(c.t.sim.now, k) }

// Compute consumes d of CPU time on cpu, then runs k — Thread.Compute
// for coroutines, with the identical reserve-then-sleep shape.
func (c *Coro) Compute(cpu *CPU, d Duration, k Frame) Step {
	if d <= 0 {
		c.next = k
		return c.op()
	}
	return c.SleepUntil(cpu.reserve(d), k)
}

// Lock acquires l in the given mode, then runs k — Thread.Lock for
// coroutines, with the identical grant/queue bookkeeping; the post-wake
// wait accounting and observer notification run in Resume just before
// k, exactly where the blocking Lock performs them after park.
func (c *Coro) Lock(l *Lock, mode LockMode, k Frame) Step {
	t := c.t
	if l.HeldBy(t) {
		panic("vclock: recursive lock acquisition by " + t.Name + " on " + l.Name)
	}
	l.acquired++
	if len(l.waiters) == 0 && l.grantable(mode) {
		l.holders = append(l.holders, lockHolder{t, mode, l.sim.now})
		if l.Observer != nil {
			l.Observer.LockAcquired(l, t, mode, 0, nil)
		}
		c.next = k
		return c.op()
	}
	l.contended++
	w := lockWaiter{t: t, mode: mode, since: l.sim.now, blockers: l.Holders()}
	l.waiters = append(l.waiters, w)
	c.lock, c.lockMode, c.lockSince, c.lockBlockers = l, mode, w.since, w.blockers
	c.next = k
	c.blocked = blockLock
	return c.op()
}

// Unlock releases the coroutine's hold on l (never blocks; not a step).
func (c *Coro) Unlock(l *Lock) { c.t.Unlock(l) }

// Resume is the trampoline: it runs the post-wake bookkeeping of the
// operation the coroutine blocked on, then invokes frames — feeding each
// one the value the previous step produced — until the program blocks
// again (CoroParked) or finishes (CoroDone, with the final value). The
// dispatcher calls it with each wake's payload; the goroutine engine's
// driver calls it between parks.
func (c *Coro) Resume(v any) (BlockOn, any) {
	t := c.t
	switch c.blocked {
	case blockLock:
		l := c.lock
		wait := l.sim.now.Sub(c.lockSince)
		l.waitTotal += wait
		if l.Observer != nil {
			l.Observer.LockAcquired(l, t, c.lockMode, wait, c.lockBlockers)
		}
		c.lock, c.lockBlockers = nil, nil
	case blockGetTimeout:
		if _, ok := v.(timeoutWake); ok {
			c.timedOut = true
			v = nil
		}
	}
	c.blocked = blockNone
	for {
		f := c.next
		c.next = nil
		c.stepped = false
		f(c, v)
		if !c.stepped {
			panic("vclock: coroutine frame in thread " + t.Name + " returned without taking a step (Get/Sleep/Lock/Goto/Return/...)")
		}
		if c.blocked != blockNone {
			return CoroParked, nil
		}
		if c.done {
			return CoroDone, c.ret
		}
		v, c.passv = c.passv, nil
	}
}

// driveGoroutine adapts a coroutine program to the goroutine engine: a
// dedicated goroutine alternates Resume with the ordinary baton-passing
// park, so the program performs exactly the scheduling operations the
// run-to-completion engine would — the engines are interchangeable per
// thread. Kill and Shutdown unwind through park's poison panic; the
// deferred cleanup run mirrors stepCoro's.
func (c *Coro) driveGoroutine(t *Thread) {
	defer c.runCleanups()
	var v any
	for {
		op, _ := c.Resume(v)
		if op == CoroDone {
			return
		}
		v = t.park()
	}
}
