package vclock

import "testing"

func TestClockStartsAtZero(t *testing.T) {
	s := New()
	if s.Now() != 0 {
		t.Fatalf("new sim clock = %v, want 0", s.Now())
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	s := New()
	var woke Time
	s.Go("sleeper", func(th *Thread) {
		th.Sleep(5 * Millisecond)
		woke = th.Now()
	})
	s.Run()
	if woke != Time(5*Millisecond) {
		t.Fatalf("woke at %v, want 5ms", woke)
	}
}

func TestThreadsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		s := New()
		var order []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			s.Go(name, func(th *Thread) {
				for i := 0; i < 3; i++ {
					order = append(order, name)
					th.Sleep(Millisecond)
				}
			})
		}
		s.Run()
		return order
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		got := run()
		if len(got) != len(first) {
			t.Fatalf("run %d produced %d steps, want %d", trial, len(got), len(first))
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("run %d diverged at step %d: %q vs %q", trial, i, got[i], first[i])
			}
		}
	}
	// Same wake time, creation-order tie-break.
	want := []string{"a", "b", "c", "a", "b", "c", "a", "b", "c"}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("order[%d] = %q, want %q (full: %v)", i, first[i], want[i], first)
		}
	}
}

func TestAtCallbackRunsAtScheduledTime(t *testing.T) {
	s := New()
	var at Time
	s.At(Time(7*Millisecond), func() { at = s.Now() })
	s.Run()
	if at != Time(7*Millisecond) {
		t.Fatalf("callback ran at %v, want 7ms", at)
	}
}

func TestRunForStopsEarly(t *testing.T) {
	s := New()
	ticks := 0
	s.Go("ticker", func(th *Thread) {
		for i := 0; i < 100; i++ {
			th.Sleep(Millisecond)
			ticks++
		}
	})
	s.RunFor(Time(10 * Millisecond))
	if ticks >= 100 {
		t.Fatalf("RunFor did not stop early: %d ticks", ticks)
	}
	if s.Now() > Time(11*Millisecond) {
		t.Fatalf("clock overshot: %v", s.Now())
	}
}

func TestQueueFIFOAndBlocking(t *testing.T) {
	s := New()
	q := s.NewQueue("q")
	var got []int
	s.Go("consumer", func(th *Thread) {
		for i := 0; i < 3; i++ {
			got = append(got, th.Get(q).(int))
		}
	})
	s.Go("producer", func(th *Thread) {
		for i := 1; i <= 3; i++ {
			th.Sleep(Millisecond)
			q.Put(i)
		}
	})
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("consumer got %v, want [1 2 3]", got)
	}
}

func TestQueueBufferedBeforeGet(t *testing.T) {
	s := New()
	q := s.NewQueue("q")
	q.Put("x")
	q.Put("y")
	var got []string
	s.Go("c", func(th *Thread) {
		got = append(got, th.Get(q).(string), th.Get(q).(string))
	})
	s.Run()
	if got[0] != "x" || got[1] != "y" {
		t.Fatalf("got %v, want [x y]", got)
	}
	if q.Len() != 0 {
		t.Fatalf("queue should be drained, len=%d", q.Len())
	}
}

func TestQueueNilItemDelivered(t *testing.T) {
	s := New()
	q := s.NewQueue("q")
	delivered := false
	s.Go("c", func(th *Thread) {
		v := th.Get(q)
		if v != nil {
			t.Errorf("got %v, want nil item", v)
		}
		delivered = true
	})
	s.Go("p", func(th *Thread) {
		th.Sleep(Millisecond)
		q.Put(nil)
	})
	s.Run()
	if !delivered {
		t.Fatal("nil item was not delivered")
	}
}

func TestCPUSingleCoreSerializes(t *testing.T) {
	s := New()
	cpu := s.NewCPU("cpu", 1)
	var ends []Time
	for i := 0; i < 3; i++ {
		s.Go("w", func(th *Thread) {
			th.Compute(cpu, 10*Millisecond)
			ends = append(ends, th.Now())
		})
	}
	s.Run()
	want := []Time{Time(10 * Millisecond), Time(20 * Millisecond), Time(30 * Millisecond)}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("end[%d] = %v, want %v", i, ends[i], want[i])
		}
	}
	if cpu.Busy() != 30*Millisecond {
		t.Fatalf("busy = %v, want 30ms", cpu.Busy())
	}
}

func TestCPUMultiCoreParallel(t *testing.T) {
	s := New()
	cpu := s.NewCPU("cpu", 2)
	var ends []Time
	for i := 0; i < 2; i++ {
		s.Go("w", func(th *Thread) {
			th.Compute(cpu, 10*Millisecond)
			ends = append(ends, th.Now())
		})
	}
	s.Run()
	for i, e := range ends {
		if e != Time(10*Millisecond) {
			t.Fatalf("end[%d] = %v, want 10ms (parallel)", i, e)
		}
	}
	if u := cpu.Utilization(); u != 1.0 {
		t.Fatalf("utilization = %v, want 1.0", u)
	}
}

func TestCPUZeroDurationNoop(t *testing.T) {
	s := New()
	cpu := s.NewCPU("cpu", 1)
	s.Go("w", func(th *Thread) {
		th.Compute(cpu, 0)
		if th.Now() != 0 {
			t.Errorf("zero compute advanced clock to %v", th.Now())
		}
	})
	s.Run()
}

func TestExclusiveLockSerializes(t *testing.T) {
	s := New()
	l := s.NewLock("mtx")
	cpu := s.NewCPU("cpu", 4)
	var sections [][2]Time
	for i := 0; i < 3; i++ {
		s.Go("w", func(th *Thread) {
			th.Lock(l, Exclusive)
			start := th.Now()
			th.Compute(cpu, 10*Millisecond)
			sections = append(sections, [2]Time{start, th.Now()})
			th.Unlock(l)
		})
	}
	s.Run()
	if len(sections) != 3 {
		t.Fatalf("expected 3 critical sections, got %d", len(sections))
	}
	for i := 1; i < len(sections); i++ {
		if sections[i][0] < sections[i-1][1] {
			t.Fatalf("critical sections overlap: %v then %v", sections[i-1], sections[i])
		}
	}
}

func TestSharedLockAllowsConcurrency(t *testing.T) {
	s := New()
	l := s.NewLock("rw")
	cpu := s.NewCPU("cpu", 4)
	var ends []Time
	for i := 0; i < 3; i++ {
		s.Go("r", func(th *Thread) {
			th.Lock(l, Shared)
			th.Compute(cpu, 10*Millisecond)
			ends = append(ends, th.Now())
			th.Unlock(l)
		})
	}
	s.Run()
	for i, e := range ends {
		if e != Time(10*Millisecond) {
			t.Fatalf("reader %d ended at %v, want 10ms (concurrent)", i, e)
		}
	}
}

func TestWriterBlocksAndIsNotStarved(t *testing.T) {
	s := New()
	l := s.NewLock("rw")
	var order []string
	// Reader holds 0-10ms; writer arrives at 1ms; second reader arrives at
	// 2ms and must queue behind the writer (FIFO), not jump in.
	s.Go("r1", func(th *Thread) {
		th.Lock(l, Shared)
		th.Sleep(10 * Millisecond)
		th.Unlock(l)
		order = append(order, "r1-done")
	})
	s.GoAt(Time(Millisecond), "w", func(th *Thread) {
		th.Lock(l, Exclusive)
		order = append(order, "w-acquired")
		th.Sleep(5 * Millisecond)
		th.Unlock(l)
	})
	s.GoAt(Time(2*Millisecond), "r2", func(th *Thread) {
		th.Lock(l, Shared)
		order = append(order, "r2-acquired")
		th.Unlock(l)
	})
	s.Run()
	want := []string{"r1-done", "w-acquired", "r2-acquired"}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

type recordingObserver struct {
	waits    []Duration
	blockers [][]*Thread
}

func (o *recordingObserver) LockAcquired(l *Lock, t *Thread, m LockMode, w Duration, b []*Thread) {
	if w > 0 {
		o.waits = append(o.waits, w)
		o.blockers = append(o.blockers, b)
	}
}
func (o *recordingObserver) LockReleased(l *Lock, t *Thread, m LockMode, h Duration) {}

func TestLockObserverSeesWaitAndBlocker(t *testing.T) {
	s := New()
	l := s.NewLock("mtx")
	obs := &recordingObserver{}
	l.Observer = obs
	var holder *Thread
	holder = s.Go("holder", func(th *Thread) {
		th.Lock(l, Exclusive)
		th.Sleep(8 * Millisecond)
		th.Unlock(l)
	})
	s.GoAt(Time(2*Millisecond), "waiter", func(th *Thread) {
		th.Lock(l, Exclusive)
		th.Unlock(l)
	})
	s.Run()
	if len(obs.waits) != 1 {
		t.Fatalf("observer saw %d waits, want 1", len(obs.waits))
	}
	if obs.waits[0] != 6*Millisecond {
		t.Fatalf("wait = %v, want 6ms", obs.waits[0])
	}
	if len(obs.blockers[0]) != 1 || obs.blockers[0][0] != holder {
		t.Fatalf("blockers = %v, want [holder]", obs.blockers[0])
	}
}

func TestRecursiveLockPanics(t *testing.T) {
	s := New()
	l := s.NewLock("mtx")
	panicked := false
	s.Go("w", func(th *Thread) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		th.Lock(l, Exclusive)
		th.Lock(l, Exclusive)
	})
	s.Run()
	if !panicked {
		t.Fatal("recursive lock did not panic")
	}
}

func TestUnlockByNonHolderPanics(t *testing.T) {
	s := New()
	l := s.NewLock("mtx")
	panicked := false
	s.Go("w", func(th *Thread) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		th.Unlock(l)
	})
	s.Run()
	if !panicked {
		t.Fatal("unlock by non-holder did not panic")
	}
}

func TestShutdownReleasesBlockedThreads(t *testing.T) {
	s := New()
	q := s.NewQueue("never")
	cleaned := false
	s.Go("stuck", func(th *Thread) {
		defer func() { cleaned = true }()
		th.Get(q) // blocks forever
	})
	s.Run()
	if s.Live() != 1 {
		t.Fatalf("live = %d, want 1 blocked thread", s.Live())
	}
	s.Shutdown()
	if s.Live() != 0 {
		t.Fatalf("live after shutdown = %d, want 0", s.Live())
	}
	if !cleaned {
		t.Fatal("deferred cleanup did not run during shutdown")
	}
}

func TestLockStats(t *testing.T) {
	s := New()
	l := s.NewLock("mtx")
	s.Go("a", func(th *Thread) {
		th.Lock(l, Exclusive)
		th.Sleep(4 * Millisecond)
		th.Unlock(l)
	})
	s.GoAt(Time(Millisecond), "b", func(th *Thread) {
		th.Lock(l, Exclusive)
		th.Unlock(l)
	})
	s.Run()
	acq, cont, wait := l.Stats()
	if acq != 2 || cont != 1 || wait != 3*Millisecond {
		t.Fatalf("stats = (%d, %d, %v), want (2, 1, 3ms)", acq, cont, wait)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different-seed RNGs agree on %d/100 draws", same)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(7)
	var sum Duration
	n := 20000
	for i := 0; i < n; i++ {
		sum += r.Exp(10 * Millisecond)
	}
	mean := Duration(float64(sum) / float64(n))
	if mean < 9500*Microsecond || mean > 10500*Microsecond {
		t.Fatalf("exp mean = %v, want ~10ms", mean.Millis())
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(9)
	z := NewZipf(r, 1000, 1.0)
	counts := make([]int, 1000)
	for i := 0; i < 50000; i++ {
		counts[z.Next()]++
	}
	if counts[0] < counts[1] || counts[1] < counts[10] {
		t.Fatalf("zipf not skewed: c0=%d c1=%d c10=%d", counts[0], counts[1], counts[10])
	}
	if counts[0] == 0 || counts[0] < 50000/20 {
		t.Fatalf("rank 0 count %d implausibly small", counts[0])
	}
}

func TestPickWeighted(t *testing.T) {
	r := NewRNG(11)
	w := []float64{0.1, 0.9}
	counts := [2]int{}
	for i := 0; i < 10000; i++ {
		counts[r.Pick(w)]++
	}
	if counts[1] < 8500 || counts[1] > 9500 {
		t.Fatalf("weighted pick off: %v", counts)
	}
}

// TestRunUntilReentrancyPanics: a nested RunUntil (from a callback or a
// stop predicate) would clear the outer run's dispatch state on return,
// silently truncating the simulation — it must panic instead.
func TestRunUntilReentrancyPanics(t *testing.T) {
	s := New()
	recovered := false
	s.At(0, func() {
		defer func() {
			if recover() != nil {
				recovered = true
			}
		}()
		s.Run()
	})
	s.Go("w", func(th *Thread) { th.Sleep(Millisecond) })
	s.Run()
	s.Shutdown()
	if !recovered {
		t.Fatal("nested Run did not panic")
	}
}
