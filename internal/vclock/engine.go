package vclock

import "os"

// EngineKind selects how coroutine threads (Sim.GoCoro) execute their
// resumable programs. Legacy free-form bodies (Sim.Go) always run on
// dedicated goroutines — only structured, Frame-based programs have a
// choice of engine, because only they can be suspended and resumed
// without a goroutine stack to park.
type EngineKind uint8

const (
	// EngineCoro runs each coroutine program to completion on the
	// dispatching goroutine: the event loop pops a wake and invokes the
	// thread's continuation directly — zero channel operations and zero
	// goroutine switches per blocking operation. This is the default
	// engine (except under -race; see EngineGoroutine).
	EngineCoro EngineKind = iota
	// EngineGoroutine drives each coroutine program from a dedicated
	// goroutine through the same baton-passing park/resume protocol as
	// legacy bodies. The event order is identical by construction — the
	// frames perform exactly the same scheduling operations, only the
	// control transfer differs — so this engine exists for two reasons:
	// bit-identity cross-checks against EngineCoro, and -race builds,
	// where real goroutines give the race detector schedules to examine.
	EngineGoroutine
)

func (k EngineKind) String() string {
	if k == EngineGoroutine {
		return "goroutine"
	}
	return "coro"
}

// DefaultEngine is the engine every Sim is born with (snapshotted by
// New, so mutating it never affects simulations already built — the
// same override pattern as whodunit.DefaultShards). It resolves to
// EngineCoro unless the build has the race detector enabled (which
// forces EngineGoroutine, so -race sweeps keep real goroutines to
// detect races against) or the WHODUNIT_ENGINE environment variable
// says "goroutine".
var DefaultEngine = func() EngineKind {
	if raceEnabled {
		return EngineGoroutine
	}
	if os.Getenv("WHODUNIT_ENGINE") == "goroutine" {
		return EngineGoroutine
	}
	return EngineCoro
}()

// Engine reports the engine this simulation runs coroutine threads on.
func (s *Sim) Engine() EngineKind { return s.engine }

// SetEngine overrides the simulation's coroutine engine, which New
// seeded from DefaultEngine. It must be called before any thread is
// created: a Sim cannot mix a thread spawned under one engine with a
// later engine change.
func (s *Sim) SetEngine(k EngineKind) {
	if len(s.threads) > 0 {
		panic("vclock: SetEngine after threads were created")
	}
	s.engine = k
}
