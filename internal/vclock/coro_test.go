package vclock

import (
	"strings"
	"testing"
	"testing/quick"
)

// forEachEngine runs f once per coroutine engine, as a subtest named
// after the engine. Tests using it pin that GoCoro programs behave
// identically whichever engine executes them.
func forEachEngine(t *testing.T, f func(t *testing.T, k EngineKind)) {
	for _, k := range []EngineKind{EngineCoro, EngineGoroutine} {
		k := k
		t.Run(k.String(), func(t *testing.T) { f(t, k) })
	}
}

// coroPinger is one side of a two-thread ping-pong over a pair of
// queues, written as a run-to-completion program: get the counter,
// record it, pass it back incremented, sleep a beat. Continuations are
// bound once at construction so the steady-state loop allocates nothing.
type coroPinger struct {
	name    string
	in, out *Queue
	rounds  int
	trace   *[]traceEntry
	starter bool

	loopF, getF Frame
}

func (p *coroPinger) begin(c *Coro, _ any) Step {
	if p.starter {
		p.out.Put(0)
	}
	return c.Get(p.in, p.loopF)
}

func (p *coroPinger) loop(c *Coro, v any) Step {
	*p.trace = append(*p.trace, traceEntry{p.name, c.Now(), v})
	n := v.(int)
	if n >= p.rounds {
		p.out.Put(n + 1)
		return c.End()
	}
	p.out.Put(n + 1)
	return c.Sleep(Microsecond, p.getF)
}

func (p *coroPinger) get(c *Coro, _ any) Step { return c.Get(p.in, p.loopF) }

// pingPongCoro builds and runs the ping-pong as GoCoro threads on the
// given engine and returns the observed trace.
func pingPongCoro(k EngineKind, rounds int) []traceEntry {
	s := New()
	s.SetEngine(k)
	qa, qb := s.NewQueue("a"), s.NewQueue("b")
	var trace []traceEntry
	a := &coroPinger{name: "a", in: qa, out: qb, rounds: rounds, trace: &trace, starter: true}
	b := &coroPinger{name: "b", in: qb, out: qa, rounds: rounds, trace: &trace}
	a.loopF, a.getF = a.loop, a.get
	b.loopF, b.getF = b.loop, b.get
	s.GoCoro("a", a.begin)
	s.GoCoro("b", b.begin)
	s.Run()
	s.Shutdown()
	return trace
}

// pingPongThreads is the identical program written against the blocking
// Thread API, for cross-checking the engines against the legacy path.
func pingPongThreads(rounds int) []traceEntry {
	s := New()
	qa, qb := s.NewQueue("a"), s.NewQueue("b")
	var trace []traceEntry
	body := func(name string, in, out *Queue, starter bool) func(*Thread) {
		return func(th *Thread) {
			if starter {
				out.Put(0)
			}
			for {
				v := th.Get(in)
				trace = append(trace, traceEntry{name, th.Now(), v})
				n := v.(int)
				out.Put(n + 1)
				if n >= rounds {
					return
				}
				th.Sleep(Microsecond)
			}
		}
	}
	s.Go("a", body("a", qa, qb, true))
	s.Go("b", body("b", qb, qa, false))
	s.Run()
	s.Shutdown()
	return trace
}

// TestCoroPingPongEngineParity: the same coroutine program produces the
// identical trace under both engines, and matches the blocking-API
// rendering of the same program.
func TestCoroPingPongEngineParity(t *testing.T) {
	const rounds = 50
	want := pingPongThreads(rounds)
	if len(want) == 0 {
		t.Fatal("empty reference trace")
	}
	for _, k := range []EngineKind{EngineCoro, EngineGoroutine} {
		got := pingPongCoro(k, rounds)
		if len(got) != len(want) {
			t.Fatalf("%v: trace length %d, want %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%v: trace[%d] = %+v, want %+v", k, i, got[i], want[i])
			}
		}
	}
}

// TestCoroCallReturn: Call pushes a return continuation, Return pops it
// and hands its value over; Return on an empty stack finishes the
// program.
func TestCoroCallReturn(t *testing.T) {
	forEachEngine(t, func(t *testing.T, k EngineKind) {
		s := New()
		s.SetEngine(k)
		var got []any
		sub := func(c *Coro, v any) Step { return c.Return(v.(int) * 2) }
		s.GoCoro("caller", func(c *Coro, _ any) Step {
			return c.Call(func(c *Coro, _ any) Step {
				c.passv = 21 // simulate an argument via Goto
				return c.Goto(sub)
			}, func(c *Coro, v any) Step {
				got = append(got, v)
				return c.Return("fin")
			})
		})
		s.Run()
		s.Shutdown()
		if len(got) != 1 || got[0] != 42 {
			t.Fatalf("got %v, want [42]", got)
		}
	})
}

// TestCoroDeferOrder: Defer cleanups run last-registered-first when the
// program finishes, on both engines.
func TestCoroDeferOrder(t *testing.T) {
	forEachEngine(t, func(t *testing.T, k EngineKind) {
		s := New()
		s.SetEngine(k)
		var order []string
		s.GoCoro("w", func(c *Coro, _ any) Step {
			c.Defer(func() { order = append(order, "first") })
			c.Defer(func() { order = append(order, "second") })
			return c.End()
		})
		s.Run()
		s.Shutdown()
		if len(order) != 2 || order[0] != "second" || order[1] != "first" {
			t.Fatalf("cleanup order %v, want [second first]", order)
		}
	})
}

// TestCoroKillRunsDefers: Sim.Kill of a parked coroutine thread runs its
// Defer stack at the kill instant — the coroutine twin of
// TestKillParkedThreadRunsDefers — and the sim drains afterwards.
func TestCoroKillRunsDefers(t *testing.T) {
	forEachEngine(t, func(t *testing.T, k EngineKind) {
		s := New()
		s.SetEngine(k)
		q := s.NewQueue("q")
		var cleaned []Time
		th := s.GoCoro("victim", func(c *Coro, _ any) Step {
			c.Defer(func() { cleaned = append(cleaned, c.Now()) })
			return c.Get(q, func(c *Coro, _ any) Step { return c.End() })
		})
		s.After(5*Millisecond, func() { s.Kill(th) })
		s.Run()
		s.Shutdown()
		if len(cleaned) != 1 || cleaned[0] != Time(5*Millisecond) {
			t.Fatalf("cleanups ran at %v, want [5ms]", cleaned)
		}
		if s.Live() != 0 {
			t.Fatalf("live = %d, want 0", s.Live())
		}
	})
}

// TestCoroKillReleasesDeferredLock: a killed coroutine holding a lock
// through a Defer'd Unlock releases it, so the waiter proceeds — the
// fault plane's crash semantics hold for run-to-completion threads.
func TestCoroKillReleasesDeferredLock(t *testing.T) {
	forEachEngine(t, func(t *testing.T, k EngineKind) {
		s := New()
		s.SetEngine(k)
		l := s.NewLock("l")
		q := s.NewQueue("q")
		var acquired []Time
		holder := s.GoCoro("holder", func(c *Coro, _ any) Step {
			return c.Lock(l, Exclusive, func(c *Coro, _ any) Step {
				c.Defer(func() { c.Unlock(l) })
				return c.Get(q, func(c *Coro, _ any) Step { return c.End() })
			})
		})
		s.GoCoroAt(Time(Millisecond), "waiter", func(c *Coro, _ any) Step {
			return c.Lock(l, Exclusive, func(c *Coro, _ any) Step {
				acquired = append(acquired, c.Now())
				c.Unlock(l)
				return c.End()
			})
		})
		s.After(3*Millisecond, func() { s.Kill(holder) })
		s.Run()
		s.Shutdown()
		if len(acquired) != 1 || acquired[0] != Time(3*Millisecond) {
			t.Fatalf("waiter acquired at %v, want [3ms]", acquired)
		}
	})
}

// TestCoroFramePanicRecordsCrash: a panic escaping a frame is captured
// as the run's crash (dispatch halts), and the thread's cleanups run —
// exactly like a panicking goroutine body.
func TestCoroFramePanicRecordsCrash(t *testing.T) {
	forEachEngine(t, func(t *testing.T, k EngineKind) {
		s := New()
		s.SetEngine(k)
		cleaned := false
		s.GoCoro("bomb", func(c *Coro, _ any) Step {
			c.Defer(func() { cleaned = true })
			return c.Sleep(Millisecond, func(c *Coro, _ any) Step {
				panic("boom")
			})
		})
		s.Run()
		s.Shutdown()
		cr := s.Crashed()
		if cr == nil || cr.Thread != "bomb" || cr.At != Time(Millisecond) {
			t.Fatalf("crash = %+v, want bomb at 1ms", cr)
		}
		if !cleaned {
			t.Fatal("cleanups did not run after frame panic")
		}
	})
}

// TestCoroMissingStepPanics: a frame that returns a forged zero Step
// without calling a stepping operation is an immediate, attributed
// failure, not a wedged thread.
func TestCoroMissingStepPanics(t *testing.T) {
	s := New()
	s.SetEngine(EngineCoro)
	s.GoCoro("lazy", func(c *Coro, _ any) Step { return Step{} })
	s.Run()
	cr := s.Crashed()
	if cr == nil || !strings.Contains(crashText(cr), "without taking a step") {
		t.Fatalf("crash = %+v, want missing-step panic", cr)
	}
}

// TestCoroDoubleStepPanics: two stepping operations in one frame
// invocation fail loudly.
func TestCoroDoubleStepPanics(t *testing.T) {
	s := New()
	s.SetEngine(EngineCoro)
	s.GoCoro("greedy", func(c *Coro, _ any) Step {
		c.Sleep(Millisecond, func(c *Coro, _ any) Step { return c.End() })
		return c.End()
	})
	s.Run()
	cr := s.Crashed()
	if cr == nil || !strings.Contains(crashText(cr), "two steps") {
		t.Fatalf("crash = %+v, want double-step panic", cr)
	}
}

// TestCoroBlockingAPIMisusePanics: calling the goroutine blocking API
// from a run-to-completion thread fails loudly even when the call would
// have hit the inline fast path.
func TestCoroBlockingAPIMisusePanics(t *testing.T) {
	s := New()
	s.SetEngine(EngineCoro)
	s.GoCoro("confused", func(c *Coro, _ any) Step {
		c.Thread().Sleep(Millisecond) // must panic, not fast-path
		return c.End()
	})
	s.Run()
	cr := s.Crashed()
	if cr == nil || !strings.Contains(crashText(cr), "goroutine blocking API") {
		t.Fatalf("crash = %+v, want blocking-API misuse panic", cr)
	}
}

func crashText(cr *Crash) string {
	if v, ok := cr.Value.(string); ok {
		return v
	}
	return cr.Error()
}

// TestCoroGetTimeout: both outcomes of a timed get — expiry with the
// TimedOut flag, and delivery in time — behave identically on both
// engines and match the blocking API's virtual timing.
func TestCoroGetTimeout(t *testing.T) {
	forEachEngine(t, func(t *testing.T, k EngineKind) {
		s := New()
		s.SetEngine(k)
		q := s.NewQueue("q")
		type obs struct {
			v        any
			timedOut bool
			at       Time
		}
		var got []obs
		record := func(c *Coro, v any) obs { return obs{v, c.TimedOut(), c.Now()} }
		s.GoCoro("waiter", func(c *Coro, _ any) Step {
			return c.GetTimeout(q, 2*Millisecond, func(c *Coro, v any) Step {
				got = append(got, record(c, v))
				return c.GetTimeout(q, 10*Millisecond, func(c *Coro, v any) Step {
					got = append(got, record(c, v))
					return c.End()
				})
			})
		})
		s.After(5*Millisecond, func() { q.Put("late") })
		s.Run()
		s.Shutdown()
		want := []obs{
			{nil, true, Time(2 * Millisecond)},
			{"late", false, Time(5 * Millisecond)},
		}
		if len(got) != len(want) {
			t.Fatalf("observations %+v, want %+v", got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("obs[%d] = %+v, want %+v", i, got[i], want[i])
			}
		}
	})
}

// TestCoroLockStatsParity: contended acquisition through c.Lock leaves
// the same lock statistics (acquired, contended, total wait) as the
// blocking Thread.Lock, on both engines.
func TestCoroLockStatsParity(t *testing.T) {
	run := func(build func(s *Sim, l *Lock)) (int64, int64, Duration) {
		s := New()
		l := s.NewLock("l")
		build(s, l)
		s.Run()
		s.Shutdown()
		return l.Stats()
	}
	wantAcq, wantCont, wantWait := run(func(s *Sim, l *Lock) {
		s.Go("h", func(th *Thread) {
			th.Lock(l, Exclusive)
			th.Sleep(4 * Millisecond)
			th.Unlock(l)
		})
		s.GoAt(Time(Millisecond), "w", func(th *Thread) {
			th.Lock(l, Exclusive)
			th.Unlock(l)
		})
	})
	forEachEngine(t, func(t *testing.T, k EngineKind) {
		s := New()
		s.SetEngine(k)
		l := s.NewLock("l")
		s.GoCoro("h", func(c *Coro, _ any) Step {
			return c.Lock(l, Exclusive, func(c *Coro, _ any) Step {
				return c.Sleep(4*Millisecond, func(c *Coro, _ any) Step {
					c.Unlock(l)
					return c.End()
				})
			})
		})
		s.GoCoroAt(Time(Millisecond), "w", func(c *Coro, _ any) Step {
			return c.Lock(l, Exclusive, func(c *Coro, _ any) Step {
				c.Unlock(l)
				return c.End()
			})
		})
		s.Run()
		s.Shutdown()
		acq, cont, wait := l.Stats()
		if acq != wantAcq || cont != wantCont || wait != wantWait {
			t.Fatalf("stats = (%d, %d, %v), want (%d, %d, %v)",
				acq, cont, wait, wantAcq, wantCont, wantWait)
		}
	})
}

// TestYieldFIFOFairness: threads yielding at the same instant resume in
// strict FIFO order — the (when, seq) heap order guarantees round-robin
// progress, so no yielder can starve another. Pinned on both engines.
func TestYieldFIFOFairness(t *testing.T) {
	const workers, rounds = 3, 5
	names := []string{"a", "b", "c"}
	var want []string
	for r := 0; r < rounds; r++ {
		want = append(want, names...)
	}
	forEachEngine(t, func(t *testing.T, k EngineKind) {
		s := New()
		s.SetEngine(k)
		var order []string
		for w := 0; w < workers; w++ {
			name := names[w]
			n := 0
			var loop Frame
			loop = func(c *Coro, _ any) Step {
				order = append(order, name)
				n++
				if n == rounds {
					return c.End()
				}
				return c.Yield(loop)
			}
			s.GoCoro(name, loop)
		}
		s.Run()
		s.Shutdown()
		if len(order) != len(want) {
			t.Fatalf("order %v, want %v", order, want)
		}
		for i := range order {
			if order[i] != want[i] {
				t.Fatalf("order[%d] = %q, want %q (full: %v)", i, order[i], want[i], order)
			}
		}
	})
	// The same program on the legacy blocking API keeps the same order.
	s := New()
	var order []string
	for w := 0; w < workers; w++ {
		name := names[w]
		s.Go(name, func(th *Thread) {
			for n := 0; n < rounds; n++ {
				order = append(order, name)
				if n < rounds-1 {
					th.Yield()
				}
			}
		})
	}
	s.Run()
	s.Shutdown()
	for i := range order {
		if order[i] != want[i] {
			t.Fatalf("thread order[%d] = %q, want %q (full: %v)", i, order[i], want[i], order)
		}
	}
}

// TestShutdownIdempotent: Shutdown unwinds every blocked thread exactly
// once, in creation order, and a second call finds nothing to do — on
// both engines, with Defer/defer cleanups observing the order.
func TestShutdownIdempotent(t *testing.T) {
	forEachEngine(t, func(t *testing.T, k EngineKind) {
		s := New()
		s.SetEngine(k)
		q := s.NewQueue("q")
		var unwound []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			s.GoCoro(name, func(c *Coro, _ any) Step {
				c.Defer(func() { unwound = append(unwound, name) })
				return c.Get(q, func(c *Coro, _ any) Step { return c.End() })
			})
		}
		s.Run()
		s.Shutdown()
		s.Shutdown() // must be a no-op, not a double unwind or a hang
		if len(unwound) != 3 || unwound[0] != "a" || unwound[1] != "b" || unwound[2] != "c" {
			t.Fatalf("unwound %v, want [a b c]", unwound)
		}
		if s.Live() != 0 {
			t.Fatalf("live = %d after double shutdown", s.Live())
		}
	})
}

// TestShutdownWithPendingKill: a thread marked dead by Sim.Kill whose
// kill event never dispatched (the run stopped first) is still unwound
// by Shutdown — its cleanups run exactly once.
func TestShutdownWithPendingKill(t *testing.T) {
	forEachEngine(t, func(t *testing.T, k EngineKind) {
		s := New()
		s.SetEngine(k)
		q := s.NewQueue("q")
		cleanups := 0
		th := s.GoCoro("victim", func(c *Coro, _ any) Step {
			c.Defer(func() { cleanups++ })
			return c.Get(q, func(c *Coro, _ any) Step { return c.End() })
		})
		s.Run() // parks the victim on q, then runs out of events
		s.Kill(th)
		// The kill event sits undispatched; Shutdown must cope.
		s.Shutdown()
		if cleanups != 1 {
			t.Fatalf("cleanups ran %d times, want 1", cleanups)
		}
		if s.Live() != 0 {
			t.Fatalf("live = %d, want 0", s.Live())
		}
	})
}

// TestShutdownWithTimedWaiter: a thread parked in GetTimeout leaves a
// pending timer callback in the heap; Shutdown unwinds the waiter
// without dispatching the timer, and resuming the sim afterwards lets
// the stale timer fire harmlessly (the waitGen guard drops it).
func TestShutdownWithTimedWaiter(t *testing.T) {
	forEachEngine(t, func(t *testing.T, k EngineKind) {
		s := New()
		s.SetEngine(k)
		q := s.NewQueue("q")
		resumed := false
		s.GoCoro("waiter", func(c *Coro, _ any) Step {
			return c.GetTimeout(q, 10*Millisecond, func(c *Coro, _ any) Step {
				resumed = true
				return c.End()
			})
		})
		// The no-op callback gives the run an event to stop on at 1ms, so
		// the 10ms timer is still undispatched when Shutdown runs.
		s.After(Millisecond, func() {})
		s.RunUntil(func() bool { return s.Now() >= Time(Millisecond) })
		s.Shutdown()
		if resumed {
			t.Fatal("waiter resumed during shutdown")
		}
		if s.Live() != 0 {
			t.Fatalf("live = %d, want 0", s.Live())
		}
		s.Run() // drain the stale timer; must not crash or wake anything
		if cr := s.Crashed(); cr != nil {
			t.Fatalf("stale timer crashed the sim: %v", cr)
		}
		if resumed {
			t.Fatal("stale timer resumed an unwound thread")
		}
	})
}

// TestShutdownNeverStartedThread: threads created but never dispatched
// (the run didn't reach their start event) are forgotten cleanly.
func TestShutdownNeverStartedThread(t *testing.T) {
	forEachEngine(t, func(t *testing.T, k EngineKind) {
		s := New()
		s.SetEngine(k)
		started := false
		s.GoCoroAt(Time(Minute), "late", func(c *Coro, _ any) Step {
			started = true
			return c.End()
		})
		s.RunUntil(func() bool { return true }) // dispatch nothing
		s.Shutdown()
		if started {
			t.Fatal("thread started during shutdown")
		}
		if s.Live() != 0 {
			t.Fatalf("live = %d, want 0", s.Live())
		}
	})
}

// TestCoroSwitchZeroAllocs pins the headline property of the
// run-to-completion engine: a blocking operation plus its resume
// allocates nothing. Two coroutines ping-pong a zero-size token through
// a queue pair; after warm-up (heap and waiter slices at steady
// capacity) whole batches of round trips must run allocation-free.
func TestCoroSwitchZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the coro engine is exercised without -race")
	}
	s := New()
	s.SetEngine(EngineCoro)
	qa, qb := s.NewQueue("a"), s.NewQueue("b")
	var token any = struct{}{}
	rounds := 0
	var echoF, countF Frame
	echoF = func(c *Coro, v any) Step {
		qa.Put(v)
		return c.Get(qb, echoF)
	}
	countF = func(c *Coro, v any) Step {
		rounds++
		qb.Put(v)
		return c.Get(qa, countF)
	}
	s.GoCoro("echo", func(c *Coro, _ any) Step { return c.Get(qb, echoF) })
	s.GoCoro("count", func(c *Coro, _ any) Step {
		qb.Put(token)
		return c.Get(qa, countF)
	})
	target := 0
	stop := func() bool { return rounds >= target }
	// Warm up: let slices reach steady capacity.
	target = 5000
	s.RunUntil(stop)
	const batch = 2000
	avg := testing.AllocsPerRun(20, func() {
		target = rounds + batch
		s.RunUntil(stop)
	})
	if avg != 0 {
		t.Fatalf("%.2f allocs per %d-round-trip batch, want 0 (each round trip is 2 block+resume pairs)", avg, batch)
	}
	s.Shutdown()
}

// --- randomized cross-engine property test ---------------------------

// qop is one instruction of a randomized structured-blocking program.
type qop struct {
	op  int // 0 sleep, 1 put, 2 get, 3 getTimeout, 4 lock, 5 unlock, 6 compute, 7 yield
	q   int
	d   Duration
	val int
}

func decodeProg(raw []byte, id, maxLen int) []qop {
	if len(raw) > maxLen {
		raw = raw[:maxLen]
	}
	prog := make([]qop, 0, len(raw))
	for i, b := range raw {
		prog = append(prog, qop{
			op:  int(b) % 8,
			q:   int(b>>3) % 2,
			d:   Duration(int(b>>4)%7) * Microsecond,
			val: id*1000 + i,
		})
	}
	return prog
}

// interp runs one program against the blocking Thread API, recording an
// observation after every blocking operation.
func interpThread(th *Thread, prog []qop, name string, qs []*Queue, lk *Lock, cpu *CPU, trace *[]traceEntry) {
	held := false
	rec := func(v any) { *trace = append(*trace, traceEntry{name, th.Now(), v}) }
	for _, in := range prog {
		switch in.op {
		case 0:
			th.Sleep(in.d)
			rec(nil)
		case 1:
			qs[in.q].Put(in.val)
		case 2:
			rec(th.Get(qs[in.q]))
		case 3:
			v, ok := th.GetTimeout(qs[in.q], in.d)
			rec([2]any{v, !ok})
		case 4:
			if !held {
				th.Lock(lk, Exclusive)
				held = true
				rec("lock")
			}
		case 5:
			if held {
				th.Unlock(lk)
				held = false
			}
		case 6:
			th.Compute(cpu, in.d)
			rec(nil)
		case 7:
			th.Yield()
			rec(nil)
		}
	}
}

// interpCoro is the same interpreter as a resumable program: a pc walks
// the instruction list, blocking ops park the coroutine and the resume
// frame records the observation — the same observations, in the same
// places, as interpThread.
type interpCoro struct {
	name  string
	prog  []qop
	pc    int
	last  int // op of the blocking instruction awaiting its observation
	held  bool
	qs    []*Queue
	lk    *Lock
	cpu   *CPU
	trace *[]traceEntry

	resumeF Frame
}

func (it *interpCoro) rec(at Time, v any) {
	*it.trace = append(*it.trace, traceEntry{it.name, at, v})
}

func (it *interpCoro) resume(c *Coro, v any) Step {
	switch it.last {
	case 2:
		it.rec(c.Now(), v)
	case 3:
		it.rec(c.Now(), [2]any{v, c.TimedOut()})
	case 4:
		it.rec(c.Now(), "lock")
	default: // sleep, compute, yield
		it.rec(c.Now(), nil)
	}
	return it.step(c)
}

func (it *interpCoro) begin(c *Coro, _ any) Step { return it.step(c) }

func (it *interpCoro) step(c *Coro) Step {
	for {
		if it.pc >= len(it.prog) {
			return c.End()
		}
		in := it.prog[it.pc]
		it.pc++
		switch in.op {
		case 0:
			it.last = in.op
			return c.Sleep(in.d, it.resumeF)
		case 1:
			it.qs[in.q].Put(in.val)
		case 2:
			it.last = in.op
			return c.Get(it.qs[in.q], it.resumeF)
		case 3:
			it.last = in.op
			return c.GetTimeout(it.qs[in.q], in.d, it.resumeF)
		case 4:
			if !it.held {
				it.held = true
				it.last = in.op
				return c.Lock(it.lk, Exclusive, it.resumeF)
			}
		case 5:
			if it.held {
				c.Unlock(it.lk)
				it.held = false
			}
		case 6:
			it.last = in.op
			return c.Compute(it.cpu, in.d, it.resumeF)
		case 7:
			it.last = in.op
			return c.Yield(it.resumeF)
		}
	}
}

// interpRun executes the given per-thread programs and returns the
// merged observation trace plus the final clock. mode selects the
// rendering: plain goroutine bodies, or coroutine programs on either
// engine.
func interpRun(progs [][]qop, mode string) ([]traceEntry, Time) {
	s := New()
	switch mode {
	case "coro":
		s.SetEngine(EngineCoro)
	case "goroutine":
		s.SetEngine(EngineGoroutine)
	}
	qs := []*Queue{s.NewQueue("q0"), s.NewQueue("q1")}
	lk := s.NewLock("lk")
	cpu := s.NewCPU("cpu", 1)
	var trace []traceEntry
	for i, prog := range progs {
		prog := prog
		name := string(rune('A' + i))
		if mode == "threads" {
			s.Go(name, func(th *Thread) {
				interpThread(th, prog, name, qs, lk, cpu, &trace)
			})
			continue
		}
		it := &interpCoro{name: name, prog: prog, qs: qs, lk: lk, cpu: cpu, trace: &trace}
		it.resumeF = it.resume
		s.GoCoro(name, it.begin)
	}
	s.Run()
	s.Shutdown()
	return trace, s.Now()
}

// TestQuickCoroEngineParity: for any three randomized structured-blocking
// programs over shared queues, a lock and a CPU, the observation trace
// and final clock are identical whether the programs run as goroutine
// bodies, as coroutines on the run-to-completion engine, or as
// coroutines driven by goroutines.
func TestQuickCoroEngineParity(t *testing.T) {
	f := func(ra, rb, rc []byte) bool {
		progs := [][]qop{
			decodeProg(ra, 0, 14),
			decodeProg(rb, 1, 14),
			decodeProg(rc, 2, 14),
		}
		ref, refNow := interpRun(progs, "threads")
		for _, mode := range []string{"coro", "goroutine"} {
			got, gotNow := interpRun(progs, mode)
			if gotNow != refNow || len(got) != len(ref) {
				return false
			}
			for i := range got {
				if got[i] != ref[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
