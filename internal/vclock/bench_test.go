package vclock

import "testing"

// BenchmarkThreadSwitch measures the cost of one blocking-operation
// hand-off — a queue Get parking the thread plus the Put-driven resume —
// under each coroutine engine. The program is the same two-coroutine
// ping-pong either way; only the control transfer differs: the coro
// engine invokes continuations inline on the dispatching goroutine,
// the goroutine engine pays the channel hand-off of the baton protocol.
// The "ns/switch" metric counts each wake as one switch (two per round
// trip).
func BenchmarkThreadSwitch(b *testing.B) {
	for _, k := range []EngineKind{EngineCoro, EngineGoroutine} {
		k := k
		b.Run(k.String(), func(b *testing.B) {
			s := New()
			s.SetEngine(k)
			qa, qb := s.NewQueue("a"), s.NewQueue("b")
			var token any = struct{}{}
			rounds := 0
			var echoF, countF Frame
			echoF = func(c *Coro, v any) Step {
				qa.Put(v)
				return c.Get(qb, echoF)
			}
			countF = func(c *Coro, v any) Step {
				rounds++
				qb.Put(v)
				return c.Get(qa, countF)
			}
			s.GoCoro("echo", func(c *Coro, _ any) Step { return c.Get(qb, echoF) })
			s.GoCoro("count", func(c *Coro, _ any) Step {
				qb.Put(token)
				return c.Get(qa, countF)
			})
			target := 0
			stop := func() bool { return rounds >= target }
			target = 100 // warm-up: start both threads, settle capacities
			s.RunUntil(stop)
			b.ResetTimer()
			target = rounds + b.N
			s.RunUntil(stop)
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*2), "ns/switch")
			s.Shutdown()
		})
	}
}
