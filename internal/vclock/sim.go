package vclock

import (
	"fmt"
)

// Sim is a deterministic discrete-event simulator. It owns the virtual
// clock and schedules simulated threads. Create one with New, start threads
// with Go, and drive the simulation with Run or RunUntil.
//
// A Sim is not safe for concurrent use from multiple host goroutines; all
// interaction must happen either from the goroutine that calls Run or from
// inside simulated threads.
type Sim struct {
	now     Time
	events  eventHeap
	seq     uint64
	parked  chan parkMsg
	live    int // threads started and not yet exited
	nextID  int
	threads map[int]*Thread
}

// poison is sent to a parked thread by Shutdown to unwind it.
type poison struct{}

type parkKind uint8

const (
	parkBlocked parkKind = iota
	parkExited
)

type parkMsg struct {
	t    *Thread
	kind parkKind
}

type event struct {
	when Time
	seq  uint64
	t    *Thread // thread to wake, or
	fn   func()  // callback to run in scheduler context
}

// eventHeap is a hand-rolled binary min-heap ordered by (when, seq).
// container/heap is deliberately not used: its interface methods box every
// pushed and popped event into an `any`, which costs two heap allocations
// per scheduled event — on the profiler hot path, where every
// Probe.Compute schedules a wake-up, that is the difference between an
// allocation-free steady state and ~2 allocs per sample.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

func (s *Sim) push(e event) {
	e.seq = s.seq
	s.seq++
	h := append(s.events, e)
	// Sift up.
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	s.events = h
}

func (s *Sim) pop() event {
	h := s.events
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release the fn closure for GC
	h = h[:n]
	// Sift down.
	for i := 0; ; {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && h.less(r, c) {
			c = r
		}
		if !h.less(c, i) {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	s.events = h
	return top
}

func (s *Sim) schedule(at Time, t *Thread) { s.push(event{when: at, t: t}) }

// New returns an empty simulation with the clock at zero.
func New() *Sim {
	return &Sim{parked: make(chan parkMsg), threads: make(map[int]*Thread)}
}

// Now reports the current virtual time.
func (s *Sim) Now() Time { return s.now }

// At schedules fn to run in scheduler context at virtual time `at`
// (or immediately if `at` is in the past). The callback must not block on
// any vclock primitive; it may wake threads by putting items on queues.
func (s *Sim) At(at Time, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.push(event{when: at, fn: fn})
}

// After schedules fn to run d after the current virtual time.
func (s *Sim) After(d Duration, fn func()) { s.At(s.now.Add(d), fn) }

// Thread is a simulated thread of execution. A Thread may only call its
// blocking methods (Sleep, Compute, Get, Lock, ...) from inside its own
// body function.
type Thread struct {
	ID   int
	Name string

	sim     *Sim
	resume  chan any // scheduler -> thread; payload for queue gets
	body    func(*Thread)
	started bool

	// Data is an arbitrary per-thread payload. The profiler attaches its
	// per-thread probe here so that libraries handed only a *Thread can
	// reach the probe without a package cycle.
	Data any
}

// Sim returns the simulation the thread belongs to.
func (t *Thread) Sim() *Sim { return t.sim }

// Now reports the current virtual time.
func (t *Thread) Now() Time { return t.sim.now }

// Go creates a simulated thread named name running body, scheduled to start
// at the current virtual time. It returns the thread handle immediately; the
// body runs once the scheduler reaches it.
func (s *Sim) Go(name string, body func(*Thread)) *Thread {
	return s.GoAt(s.now, name, body)
}

// GoAt is like Go but delays the thread's start until virtual time `at`.
func (s *Sim) GoAt(at Time, name string, body func(*Thread)) *Thread {
	t := &Thread{ID: s.nextID, Name: name, sim: s, resume: make(chan any), body: body}
	s.nextID++
	s.live++
	s.threads[t.ID] = t
	if at < s.now {
		at = s.now
	}
	s.push(event{when: at, fn: func() {
		if t.started {
			return
		}
		t.started = true
		go t.run()
		t.resume <- nil
		s.waitParked()
	}})
	return t
}

// waitParked blocks until the currently running simulated thread parks or
// exits, and performs exit bookkeeping.
func (s *Sim) waitParked() {
	msg := <-s.parked
	if msg.kind == parkExited {
		s.live--
		delete(s.threads, msg.t.ID)
	}
}

func (t *Thread) run() {
	v := <-t.resume // wait for first dispatch
	if _, dead := v.(poison); !dead {
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(poison); !ok {
						panic(r)
					}
				}
			}()
			t.body(t)
		}()
	}
	t.sim.parked <- parkMsg{t, parkExited}
}

// park blocks the calling simulated thread until another event wakes it.
// It returns the value passed by the waker (used by queues to hand items
// over), or nil for plain wakes.
func (t *Thread) park() any {
	t.sim.parked <- parkMsg{t, parkBlocked}
	v := <-t.resume
	if p, dead := v.(poison); dead {
		panic(p)
	}
	return v
}

// wakeAt schedules t to resume at virtual time `at` with payload v.
func (s *Sim) wakeAt(at Time, t *Thread, v any) {
	s.push(event{when: at, fn: func() {
		t.resumeWith(v)
		s.waitParked()
	}})
}

func (t *Thread) resumeWith(v any) { t.resume <- v }

// SleepUntil parks the calling thread until virtual time `at`.
func (t *Thread) SleepUntil(at Time) {
	if at < t.sim.now {
		at = t.sim.now
	}
	t.sim.schedule(at, t)
	t.park()
}

// Sleep parks the calling thread for duration d of virtual time.
func (t *Thread) Sleep(d Duration) { t.SleepUntil(t.sim.now.Add(d)) }

// Yield lets every other runnable thread scheduled at the current instant
// run before the calling thread continues.
func (t *Thread) Yield() { t.SleepUntil(t.sim.now) }

// Run drives the simulation until no events remain. It panics if called
// re-entrantly from a simulated thread.
func (s *Sim) Run() { s.RunUntil(nil) }

// RunFor drives the simulation until virtual time `end` (events after end
// remain pending) or until no events remain.
func (s *Sim) RunFor(end Time) {
	s.RunUntil(func() bool { return s.now >= end })
}

// RunUntil drives the simulation until stop returns true (checked between
// events) or until no events remain. A nil stop runs to completion.
func (s *Sim) RunUntil(stop func() bool) {
	for len(s.events) > 0 {
		if stop != nil && stop() {
			return
		}
		e := s.pop()
		if e.when < s.now {
			panic(fmt.Sprintf("vclock: event scheduled in the past: %v < %v", e.when, s.now))
		}
		s.now = e.when
		switch {
		case e.fn != nil:
			e.fn()
		case e.t != nil:
			e.t.resumeWith(nil)
			s.waitParked()
		}
	}
}

// Live reports the number of simulated threads that have been created and
// have not yet exited. A nonzero value after Run returns indicates threads
// blocked forever (e.g. waiting on a queue nobody fills); that is legal and
// common for server threads.
func (s *Sim) Live() int { return s.live }

// Shutdown unwinds every simulated thread that is still parked, releasing
// their goroutines. It must be called only after Run/RunUntil has returned
// (i.e. from the host goroutine, with no events pending that the caller
// still cares about). Threads are unwound via a panic recovered inside the
// thread wrapper, so their deferred functions run.
func (s *Sim) Shutdown() {
	// Collect first: waitParked mutates the map.
	var ts []*Thread
	for _, t := range s.threads {
		ts = append(ts, t)
	}
	for _, t := range ts {
		if !t.started {
			// The goroutine was never created; just forget the thread.
			s.live--
			delete(s.threads, t.ID)
			continue
		}
		t.resume <- poison{}
		s.waitParked()
	}
}
