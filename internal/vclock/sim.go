package vclock

import (
	"fmt"
	"runtime/debug"
	"sort"
)

// Sim is a deterministic discrete-event simulator. It owns the virtual
// clock and schedules simulated threads. Create one with New, start threads
// with Go, and drive the simulation with Run or RunUntil.
//
// A Sim is not safe for concurrent use from multiple host goroutines; all
// interaction must happen either from the goroutine that calls Run or from
// inside simulated threads.
//
// Scheduling is baton-passing: exactly one goroutine — the RunUntil
// caller or one simulated thread — is active at a time, and whoever
// blocks dispatches the next event itself, waking its successor
// directly. The classic alternative (park into a central scheduler
// goroutine which then dispatches) costs two goroutine hand-offs per
// context switch; the baton costs one. Event order is identical either
// way: both run the same pop-min dispatch loop over the same heap.
type Sim struct {
	now     Time
	events  eventHeap
	seq     uint64
	parked  chan struct{} // hand-back to the RunUntil caller
	live    int           // threads started and not yet exited
	nextID  int
	threads map[int]*Thread

	running  bool        // inside RunUntil
	stop     func() bool // RunUntil's stop predicate, nil when absent
	selfWake any         // payload of a baton-self wake (see dispatchFrom)
	engine   EngineKind  // how GoCoro threads execute (snapshot of DefaultEngine)

	crash   *Crash        // first captured panic; halts dispatch
	killAck chan struct{} // killed thread -> killer handshake
}

// poison is sent to a parked thread by Shutdown (and by Kill) to unwind
// it: the panic is recovered inside the thread wrapper, so the thread's
// deferred functions run.
type poison struct{}

// Crash records the first panic that escaped a simulated thread's body
// or a scheduler callback. Dispatch halts at the crash — no further
// event runs — so the failure point is deterministic: with a fixed seed
// the same crash happens at the same virtual time with the same events
// already dispatched, every run.
type Crash struct {
	Thread string // crashing thread's name, or "(scheduler)" for a callback
	At     Time   // virtual time of the crash
	Value  any    // the panic value
	Stack  []byte // goroutine stack at the panic site
}

// Error renders the crash; Crash satisfies error so supervisors can
// return it.
func (c *Crash) Error() string {
	return fmt.Sprintf("vclock: %s crashed at %v: %v", c.Thread, c.At, c.Value)
}

type event struct {
	when  Time
	seq   uint64
	t     *Thread // thread to wake (or start), or
	fn    func()  // callback to run in dispatcher context, or
	q     *Queue  // queue to deliver v to in dispatcher context
	v     any     // payload delivered to t (queue item), nil for plain wakes
	start bool    // t is to be started, not resumed
	kill  bool    // t is to be unwound (Sim.Kill)
}

// eventHeap is a hand-rolled 4-ary min-heap ordered by (when, seq).
// container/heap is deliberately not used: its interface methods box every
// pushed and popped event into an `any`, which costs two heap allocations
// per scheduled event — on the profiler hot path, where every
// Probe.Compute schedules a wake-up, that is the difference between an
// allocation-free steady state and ~2 allocs per sample. The 4-ary shape
// halves the sift depth of the dispatcher's pop (the busiest heap
// operation); because (when, seq) is a total order, the pop sequence is
// identical whatever the heap's internal arity.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

func (s *Sim) push(e event) {
	e.seq = s.seq
	s.seq++
	h := append(s.events, e)
	// Sift up.
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 4
		if !h.less(i, p) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	s.events = h
}

func (s *Sim) pop() event {
	h := s.events
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release the fn closure (and payload) for GC
	h = h[:n]
	// Sift down.
	for i := 0; ; {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		for k := c + 1; k < end; k++ {
			if h.less(k, c) {
				c = k
			}
		}
		if !h.less(c, i) {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	s.events = h
	return top
}

func (s *Sim) schedule(at Time, t *Thread) { s.push(event{when: at, t: t}) }

// New returns an empty simulation with the clock at zero.
func New() *Sim {
	return &Sim{
		parked:  make(chan struct{}),
		killAck: make(chan struct{}),
		threads: make(map[int]*Thread),
		engine:  DefaultEngine,
	}
}

// Now reports the current virtual time.
func (s *Sim) Now() Time { return s.now }

// At schedules fn to run in scheduler context at virtual time `at`
// (or immediately if `at` is in the past). The callback must not block on
// any vclock primitive; it may wake threads by putting items on queues.
func (s *Sim) At(at Time, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.push(event{when: at, fn: fn})
}

// After schedules fn to run d after the current virtual time.
func (s *Sim) After(d Duration, fn func()) { s.At(s.now.Add(d), fn) }

// Every schedules fn to run in scheduler context every d of virtual time,
// first at now+d. Successive ticks land at exact multiples — the next
// tick is computed from the previous tick's nominal time, never from the
// clock, so the series cannot drift even if fn itself advances wall
// time. The series self-reschedules for the life of the simulation, so a
// Sim with an Every never runs out of events: drive it with
// RunUntil/RunFor, not Run. This is the window-tick primitive of the
// continuous profiling service.
func (s *Sim) Every(d Duration, fn func()) {
	if d <= 0 {
		panic("vclock: Every needs a positive period")
	}
	next := s.now.Add(d)
	var tick func()
	tick = func() {
		fn()
		next = next.Add(d)
		s.At(next, tick)
	}
	s.At(next, tick)
}

// Thread is a simulated thread of execution. A Thread may only call its
// blocking methods (Sleep, Compute, Get, Lock, ...) from inside its own
// body function.
type Thread struct {
	ID   int
	Name string

	sim     *Sim
	resume  chan any // scheduler -> thread; payload for queue gets (nil for rtc threads)
	body    func(*Thread)
	coro    *Coro // the thread's resumable program (GoCoro threads, both engines)
	rtc     bool  // run-to-completion: stepped inline by the dispatcher, no goroutine
	started bool
	exited  bool
	dead    bool   // marked by Kill; pending events for it are skipped
	killed  bool   // unwinding via Kill (run() acks instead of dispatching)
	waitGen uint64 // bumped per queue wait; guards stale timeout wakes

	// Data is an arbitrary per-thread payload. The profiler attaches its
	// per-thread probe here so that libraries handed only a *Thread can
	// reach the probe without a package cycle.
	Data any
}

// Sim returns the simulation the thread belongs to.
func (t *Thread) Sim() *Sim { return t.sim }

// Now reports the current virtual time.
func (t *Thread) Now() Time { return t.sim.now }

// Go creates a simulated thread named name running body, scheduled to start
// at the current virtual time. It returns the thread handle immediately; the
// body runs once the scheduler reaches it.
func (s *Sim) Go(name string, body func(*Thread)) *Thread {
	return s.GoAt(s.now, name, body)
}

// GoAt is like Go but delays the thread's start until virtual time `at`.
func (s *Sim) GoAt(at Time, name string, body func(*Thread)) *Thread {
	t := &Thread{ID: s.nextID, Name: name, sim: s, resume: make(chan any), body: body}
	s.nextID++
	s.live++
	s.threads[t.ID] = t
	if at < s.now {
		at = s.now
	}
	s.push(event{when: at, t: t, start: true})
	return t
}

// GoCoro creates a run-to-completion simulated thread named name whose
// body is the resumable program starting at frame f, scheduled to start
// at the current virtual time. Under the default EngineCoro the thread
// has no goroutine at all: the dispatcher invokes its continuations
// inline, so every blocking operation costs a method call instead of a
// channel hand-off. Under EngineGoroutine (forced by -race builds) the
// identical program is driven from a dedicated goroutine through the
// ordinary park/resume protocol — the event order is the same either
// way.
func (s *Sim) GoCoro(name string, f Frame) *Thread {
	return s.GoCoroAt(s.now, name, f)
}

// GoCoroAt is GoCoro with the thread's start delayed until virtual
// time `at`.
func (s *Sim) GoCoroAt(at Time, name string, f Frame) *Thread {
	if s.engine == EngineGoroutine {
		t := s.GoAt(at, name, nil)
		c := newCoro(t, f)
		t.body = c.driveGoroutine
		return t
	}
	t := &Thread{ID: s.nextID, Name: name, sim: s, rtc: true}
	newCoro(t, f)
	s.nextID++
	s.live++
	s.threads[t.ID] = t
	if at < s.now {
		at = s.now
	}
	s.push(event{when: at, t: t, start: true})
	return t
}

// stepCoro resumes a run-to-completion thread with a wake payload and,
// when the program finishes or panics, performs the same cleanup-then-
// exit sequence the goroutine wrapper runs: deferred cleanups first
// (they are deeper in the conceptual stack), then the crash record,
// then the exit bookkeeping. The caller is the dispatcher; it keeps the
// baton throughout.
func (s *Sim) stepCoro(t *Thread, v any) {
	c := t.coro
	done := false
	crashed := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				crashed = true
				c.runCleanups()
				s.recordCrash(t.Name, r)
			}
		}()
		op, _ := c.Resume(v)
		done = op == CoroDone
	}()
	if done {
		c.runCleanups()
	}
	if done || crashed {
		t.exited = true
		s.live--
		delete(s.threads, t.ID)
	}
}

// Kill schedules t's death at the current virtual time: a kill event
// enters the heap like any other, so at a fixed seed the thread dies at
// the same point of the event order every run. When the event
// dispatches, t is unwound via a recovered panic (its deferred functions
// run — a killed thread inside Stage.CriticalSection releases its lock),
// and every event still pending for t is skipped. Kill is the fault
// plane's stage-crash primitive; it may be called from scheduler
// callbacks and from other simulated threads. Killing an exited or
// already-killed thread is a no-op. Like Shutdown, Kill requires the
// victim's deferred functions not to block on vclock primitives.
func (s *Sim) Kill(t *Thread) {
	if t.dead || t.exited {
		return
	}
	t.dead = true
	s.push(event{when: s.now, t: t, kill: true})
}

// Dead reports whether t was killed (or marked for death) by Sim.Kill.
func (t *Thread) Dead() bool { return t.dead }

// Crashed returns the first panic captured from a simulated thread or
// scheduler callback, or nil. A non-nil crash halts dispatch:
// Run/RunUntil return normally with the crash recorded, and the caller
// decides whether to propagate it or degrade gracefully.
func (s *Sim) Crashed() *Crash { return s.crash }

// recordCrash captures the first escaping panic. It must run inside the
// recovering deferred function, while the panicking frames are still on
// the stack, so the recorded stack shows the panic site.
func (s *Sim) recordCrash(thread string, v any) {
	if s.crash == nil {
		s.crash = &Crash{Thread: thread, At: s.now, Value: v, Stack: debug.Stack()}
	}
}

// runCallback runs a scheduler callback, capturing an escaping panic as
// a crash. poison is re-raised: a callback that kills the dispatching
// thread itself unwinds through here.
func (s *Sim) runCallback(fn func()) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(poison); ok {
				panic(r)
			}
			s.recordCrash("(scheduler)", r)
		}
	}()
	fn()
}

// deliver schedules v to be put on q at virtual time `at`, in dispatcher
// context. The queue rides in the event itself — like wake payloads, a
// closure here would put one heap allocation on every cross-domain
// hand-off.
func (s *Sim) deliver(at Time, q *Queue, v any) {
	if at < s.now {
		at = s.now
	}
	s.push(event{when: at, q: q, v: v})
}

// deliverNow runs a scheduled queue delivery, capturing an escaping
// panic as a crash (mirroring runCallback, without the per-event
// closure).
func (s *Sim) deliverNow(q *Queue, v any) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(poison); ok {
				panic(r)
			}
			s.recordCrash("(scheduler)", r)
		}
	}()
	q.Put(v)
}

// waitParked blocks the RunUntil caller until the dispatch chain hands
// the baton back (no more events, or the stop predicate fired).
func (s *Sim) waitParked() { <-s.parked }

// baton is dispatchFrom's verdict on where execution continues.
type baton uint8

const (
	// batonDone: no dispatchable event remains (or stop fired); the
	// caller must hand back to the RunUntil goroutine.
	batonDone baton = iota
	// batonPassed: another thread has been resumed; the caller blocks
	// (or exits).
	batonPassed
	// batonSelf: the caller's own wake-up was the next event; it keeps
	// running with the payload left in s.selfWake.
	batonSelf
)

// dispatchFrom runs the dispatch loop on the calling goroutine until the
// baton moves: the caller is a simulated thread about to block (self
// non-nil), a thread about to exit, or the RunUntil goroutine (self
// nil). Exactly one goroutine executes dispatchFrom at a time — the
// baton discipline — so no locking is needed anywhere in the simulator.
func (s *Sim) dispatchFrom(self *Thread) baton {
	if !s.running {
		// Outside RunUntil (Shutdown's unwind): never dispatch.
		return batonDone
	}
	for len(s.events) > 0 {
		if s.crash != nil {
			return batonDone
		}
		if s.stop != nil && s.stop() {
			return batonDone
		}
		e := s.pop()
		if e.when < s.now {
			panic(fmt.Sprintf("vclock: event scheduled in the past: %v < %v", e.when, s.now))
		}
		s.now = e.when
		switch {
		case e.kill:
			t := e.t
			if t.exited {
				continue
			}
			if !t.started {
				// The goroutine was never created; just forget the thread
				// (its start event is skipped by the dead check below).
				t.exited = true
				s.live--
				delete(s.threads, t.ID)
				continue
			}
			if t.rtc {
				// No goroutine to hand the poison to: unwind the
				// coroutine in place — cleanups, then the same exit
				// bookkeeping the goroutine wrapper performs — and keep
				// dispatching. No killAck handshake is needed because
				// the victim never held a baton to give up.
				t.coro.runCleanups()
				t.exited = true
				s.live--
				delete(s.threads, t.ID)
				continue
			}
			if t == self {
				// Self-kill: unwind in place. run() recovers the poison,
				// does the exit bookkeeping and continues dispatch, so
				// the baton is preserved.
				panic(poison{})
			}
			// Every live non-dispatching thread is blocked in <-resume
			// (the baton discipline), so the hand-off cannot block. The
			// ack keeps the baton here: the dying thread must not
			// dispatch, the killer continues the loop.
			t.killed = true
			t.resumeWith(poison{})
			<-s.killAck
			continue
		case e.fn != nil:
			s.runCallback(e.fn)
		case e.q != nil:
			s.deliverNow(e.q, e.v)
		case e.start:
			if e.t.started || e.t.dead {
				continue
			}
			e.t.started = true
			if e.t.rtc {
				// Run-to-completion start: invoke the program inline
				// until it blocks, then keep dispatching. The baton
				// never moves.
				s.stepCoro(e.t, nil)
				continue
			}
			go e.t.run()
			e.t.resumeWith(nil)
			return batonPassed
		case e.t == self:
			// Own wake-up: no hand-off, keep running.
			s.selfWake = e.v
			return batonSelf
		case e.t != nil:
			if e.t.dead || e.t.exited {
				// Stale wake for a killed thread (its sleep or queue
				// hand-off was already scheduled); drop it.
				continue
			}
			if e.t.rtc {
				// Zero-handoff resume: the wake's payload goes straight
				// into the continuation, on this goroutine.
				s.stepCoro(e.t, e.v)
				continue
			}
			e.t.resumeWith(e.v)
			return batonPassed
		}
	}
	return batonDone
}

func (t *Thread) run() {
	v := <-t.resume // wait for first dispatch
	if _, dead := v.(poison); !dead {
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(poison); ok {
						return
					}
					// An application panic: record it as the run's crash
					// and let the thread exit cleanly. Dispatch halts at
					// the crash; RunUntil returns with Crashed() set.
					t.sim.recordCrash(t.Name, r)
				}
			}()
			t.body(t)
		}()
	}
	// Exit bookkeeping runs on the exiting thread itself (it holds the
	// baton), then the baton moves on.
	s := t.sim
	t.exited = true
	s.live--
	delete(s.threads, t.ID)
	if t.killed {
		// The killer holds the baton and is waiting for the ack; do not
		// dispatch from here.
		s.killAck <- struct{}{}
		return
	}
	if s.dispatchFrom(nil) == batonDone {
		s.parked <- struct{}{}
	}
}

// park blocks the calling simulated thread until another event wakes it.
// It returns the value passed by the waker (used by queues to hand items
// over), or nil for plain wakes. Before blocking, the thread dispatches
// onward: if the very next event is its own wake-up it returns without
// blocking at all.
func (t *Thread) park() any {
	if t.rtc {
		panic("vclock: run-to-completion thread " + t.Name + " used the goroutine blocking API (use the Coro methods)")
	}
	s := t.sim
	switch s.dispatchFrom(t) {
	case batonSelf:
		v := s.selfWake
		s.selfWake = nil
		return v
	case batonDone:
		s.parked <- struct{}{}
	}
	v := <-t.resume
	if p, dead := v.(poison); dead {
		panic(p)
	}
	return v
}

// wakeAt schedules t to resume at virtual time `at` with payload v. The
// payload rides in the event itself — a closure here would put one heap
// allocation on every queue hand-off.
func (s *Sim) wakeAt(at Time, t *Thread, v any) {
	s.push(event{when: at, t: t, v: v})
}

func (t *Thread) resumeWith(v any) { t.resume <- v }

// SleepUntil parks the calling thread until virtual time `at`.
//
// When the sleeper's wake-up would be the strictly earliest pending
// event, parking is a formality: the scheduler would check the stop
// predicate once, pop the wake and resume this same thread with the
// clock advanced. SleepUntil performs exactly that transition inline —
// same stop-predicate evaluation, same clock, no other event can run in
// between because none is scheduled before the wake (ties lose to
// already-pushed events, which hold smaller sequence numbers, so
// equality takes the slow path). This removes two goroutine hand-offs
// and a heap push/pop from every uncontended Compute/Sleep, without
// changing the event order observed by any thread.
func (t *Thread) SleepUntil(at Time) {
	if t.rtc {
		// Fail even on the would-be fast path: an API misuse that only
		// panics under contention would be maddening to reproduce.
		panic("vclock: run-to-completion thread " + t.Name + " used the goroutine blocking API (use the Coro methods)")
	}
	s := t.sim
	if at < s.now {
		at = s.now
	}
	if s.running && s.crash == nil && (len(s.events) == 0 || at < s.events[0].when) && (s.stop == nil || !s.stop()) {
		s.now = at
		return
	}
	s.schedule(at, t)
	t.park()
}

// Sleep parks the calling thread for duration d of virtual time.
func (t *Thread) Sleep(d Duration) { t.SleepUntil(t.sim.now.Add(d)) }

// Yield lets every other runnable thread scheduled at the current instant
// run before the calling thread continues.
func (t *Thread) Yield() { t.SleepUntil(t.sim.now) }

// Run drives the simulation until no events remain. It panics if called
// re-entrantly from a simulated thread.
func (s *Sim) Run() { s.RunUntil(nil) }

// RunFor drives the simulation until virtual time `end` (events after end
// remain pending) or until no events remain.
func (s *Sim) RunFor(end Time) {
	s.RunUntil(func() bool { return s.now >= end })
}

// RunBefore drives the simulation until every pending event lies at or
// after `horizon` (or no events remain). This is the epoch-window
// primitive of Group: unlike RunFor — whose stop predicate only trips
// after an event at or past the bound has already run — RunBefore peeks
// at the heap, so an event at exactly `horizon` stays pending for the
// next epoch. The stop predicate composes with the SleepUntil fast
// path: a sleeper targeting a time at or past the horizon always takes
// the slow path and parks.
func (s *Sim) RunBefore(horizon Time) {
	s.RunUntil(func() bool { return len(s.events) == 0 || s.events[0].when >= horizon })
}

// RunUntil drives the simulation until stop returns true (checked between
// events) or until no events remain. A nil stop runs to completion. The
// stop predicate must be a pure function of simulation state: the
// inline sleep fast path evaluates it at the same junctures the dispatch
// loop would, but may evaluate it one extra time at the juncture where
// it first returns true.
func (s *Sim) RunUntil(stop func() bool) {
	if s.running {
		// A nested run would tear down the outer dispatch state on
		// return, silently truncating the outer run; fail loudly instead.
		panic("vclock: RunUntil called re-entrantly (from a callback, stop predicate, or simulated thread)")
	}
	s.running, s.stop = true, stop
	defer func() { s.running, s.stop = false, nil }()
	for {
		switch s.dispatchFrom(nil) {
		case batonDone:
			return
		case batonPassed:
			s.waitParked()
		}
	}
}

// Live reports the number of simulated threads that have been created and
// have not yet exited. A nonzero value after Run returns indicates threads
// blocked forever (e.g. waiting on a queue nobody fills); that is legal and
// common for server threads.
func (s *Sim) Live() int { return s.live }

// Shutdown unwinds every simulated thread that is still blocked,
// releasing their goroutines (run-to-completion threads have none; only
// their cleanups run). It must be called only after Run/RunUntil has
// returned (i.e. from the host goroutine, with no events pending that
// the caller still cares about). Goroutine threads are unwound via a
// panic recovered inside the thread wrapper, so their deferred
// functions run; coroutine threads run their Defer stacks.
//
// Threads unwind in ID (creation) order — not map order — so any side
// effects of their teardown (released locks, final counter updates) are
// the same every run. Shutdown is idempotent: every thread it touches
// is forgotten, so a second call finds nothing to do. It also copes
// with threads a Sim.Kill marked dead whose kill event never
// dispatched because the run stopped first: they are still blocked
// like any other thread and unwind the same way.
func (s *Sim) Shutdown() {
	// Collect and order first: the unwinds mutate the map.
	ids := make([]int, 0, len(s.threads))
	for id := range s.threads {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		t, ok := s.threads[id]
		if !ok || t.exited {
			continue
		}
		if !t.started {
			// The thread never ran (no defers registered, no goroutine
			// created); just forget it.
			t.exited = true
			s.live--
			delete(s.threads, t.ID)
			continue
		}
		if t.rtc {
			// No goroutine to poison: run the coroutine's cleanups and
			// forget it.
			t.coro.runCleanups()
			t.exited = true
			s.live--
			delete(s.threads, t.ID)
			continue
		}
		t.resume <- poison{}
		s.waitParked()
	}
}
