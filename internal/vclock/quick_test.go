package vclock

import (
	"testing"
	"testing/quick"
)

// TestQuickCPUConservation: for any set of compute demands on any core
// count, total busy time equals the sum of demands, and the finish time is
// at least sum/cores (work conservation) and at most the serialized sum.
func TestQuickCPUConservation(t *testing.T) {
	f := func(demands []uint16, cores uint8) bool {
		nc := int(cores%4) + 1
		if len(demands) > 20 {
			demands = demands[:20]
		}
		s := New()
		cpu := s.NewCPU("cpu", nc)
		var total Duration
		for _, d := range demands {
			d := Duration(d) + 1
			total += d
			s.Go("w", func(th *Thread) { th.Compute(cpu, d) })
		}
		s.Run()
		s.Shutdown()
		if cpu.Busy() != total {
			return false
		}
		end := Duration(s.Now())
		lower := total / Duration(nc)
		return end >= lower && end <= total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickQueueFIFOTotalOrder: any interleaving of producers with
// distinct items delivers every item exactly once, in put order.
func TestQuickQueueFIFO(t *testing.T) {
	f := func(items uint8) bool {
		n := int(items%30) + 1
		s := New()
		q := s.NewQueue("q")
		var got []int
		s.Go("consumer", func(th *Thread) {
			for i := 0; i < n; i++ {
				got = append(got, th.Get(q).(int))
			}
		})
		s.Go("producer", func(th *Thread) {
			for i := 0; i < n; i++ {
				q.Put(i)
				th.Sleep(Microsecond)
			}
		})
		s.Run()
		s.Shutdown()
		if len(got) != n {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLockMutualExclusionInvariant: random mixes of shared and
// exclusive holders never overlap illegally.
func TestQuickLockInvariant(t *testing.T) {
	f := func(pattern []bool) bool {
		if len(pattern) > 12 {
			pattern = pattern[:12]
		}
		if len(pattern) == 0 {
			return true
		}
		s := New()
		l := s.NewLock("l")
		readers, writers := 0, 0
		ok := true
		for _, excl := range pattern {
			excl := excl
			s.Go("t", func(th *Thread) {
				mode := Shared
				if excl {
					mode = Exclusive
				}
				th.Lock(l, mode)
				if excl {
					writers++
					if writers != 1 || readers != 0 {
						ok = false
					}
				} else {
					readers++
					if writers != 0 {
						ok = false
					}
				}
				th.Sleep(Millisecond)
				if excl {
					writers--
				} else {
					readers--
				}
				th.Unlock(l)
			})
		}
		s.Run()
		s.Shutdown()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
