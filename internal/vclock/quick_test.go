package vclock

import (
	"testing"
	"testing/quick"
)

// TestQuickCPUConservation: for any set of compute demands on any core
// count, total busy time equals the sum of demands, and the finish time is
// at least sum/cores (work conservation) and at most the serialized sum.
func TestQuickCPUConservation(t *testing.T) {
	f := func(demands []uint16, cores uint8) bool {
		nc := int(cores%4) + 1
		if len(demands) > 20 {
			demands = demands[:20]
		}
		s := New()
		cpu := s.NewCPU("cpu", nc)
		var total Duration
		for _, d := range demands {
			d := Duration(d) + 1
			total += d
			s.Go("w", func(th *Thread) { th.Compute(cpu, d) })
		}
		s.Run()
		s.Shutdown()
		if cpu.Busy() != total {
			return false
		}
		end := Duration(s.Now())
		lower := total / Duration(nc)
		return end >= lower && end <= total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickQueueFIFOTotalOrder: any interleaving of producers with
// distinct items delivers every item exactly once, in put order.
func TestQuickQueueFIFO(t *testing.T) {
	f := func(items uint8) bool {
		n := int(items%30) + 1
		s := New()
		q := s.NewQueue("q")
		var got []int
		s.Go("consumer", func(th *Thread) {
			for i := 0; i < n; i++ {
				got = append(got, th.Get(q).(int))
			}
		})
		s.Go("producer", func(th *Thread) {
			for i := 0; i < n; i++ {
				q.Put(i)
				th.Sleep(Microsecond)
			}
		})
		s.Run()
		s.Shutdown()
		if len(got) != n {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEpochMergeDomainInvariance: for any producer schedule and
// any link latencies, the consumer's observed delivery order is
// identical for every domain assignment of the producers — the
// epoch-barrier merge key is a function of the program, not the layout.
func TestQuickEpochMergeDomainInvariance(t *testing.T) {
	f := func(offsets []uint16, latSel [4]uint8) bool {
		if len(offsets) == 0 {
			return true
		}
		if len(offsets) > 24 {
			offsets = offsets[:24]
		}
		const nprod = 4
		run := func(domains int) []traceEntry {
			g := NewGroup(domains)
			q := g.Domain(0).NewQueue("sink")
			links := make([]*Link, nprod)
			for p := 0; p < nprod; p++ {
				lat := Duration(1+int(latSel[p])%5) * Millisecond
				links[p] = g.Connect(g.Domain(p%domains), q, lat)
			}
			var trace []traceEntry
			total := 0
			for p := 0; p < nprod; p++ {
				p := p
				var mine []uint16
				for i, off := range offsets {
					if i%nprod == p {
						mine = append(mine, off)
					}
				}
				total += len(mine)
				g.Domain(p%domains).Go("producer", func(th *Thread) {
					for i, off := range mine {
						th.SleepUntil(Time(Duration(off) * 50 * Microsecond))
						links[p].Send(p*1000 + i)
					}
				})
			}
			got := 0
			g.Domain(0).Go("consumer", func(th *Thread) {
				for got < total {
					v := th.Get(q)
					trace = append(trace, traceEntry{"c", th.Now(), v})
					got++
				}
			})
			g.Run()
			g.Shutdown()
			return trace
		}
		a := run(1)
		for _, domains := range []int{2, 3, 4} {
			b := run(domains)
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickKillAcrossBarrier: a Sim.Kill of a producer whose messages
// cross domain barriers lands at the same point of the delivery order
// for every layout — faults stay bit-reproducible under sharding.
func TestQuickKillAcrossBarrier(t *testing.T) {
	f := func(killAt uint16, n uint8) bool {
		rounds := int(n%20) + 5
		run := func(domains int) []traceEntry {
			g := NewGroup(domains)
			q := g.Domain(0).NewQueue("sink")
			prodSim := g.Domain(domains - 1)
			l := g.Connect(prodSim, q, Millisecond)
			victim := prodSim.Go("victim", func(th *Thread) {
				for i := 0; i < rounds; i++ {
					l.Send(i)
					th.Sleep(700 * Microsecond)
				}
			})
			prodSim.At(Time(Duration(killAt%20000)*Microsecond), func() {
				prodSim.Kill(victim)
			})
			var trace []traceEntry
			g.Domain(0).Go("consumer", func(th *Thread) {
				for {
					v := th.Get(q)
					trace = append(trace, traceEntry{"c", th.Now(), v})
				}
			})
			g.Run()
			g.Shutdown()
			return trace
		}
		a, b := run(1), run(2)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTimeoutAcrossBarrier: GetTimeout races between a timer and a
// cross-domain delivery resolve identically for every layout — the
// timer is a domestic heap event and the delivery lands at a
// layout-independent (time, link, seq) slot.
func TestQuickTimeoutAcrossBarrier(t *testing.T) {
	f := func(sendGaps []uint16, timeoutSel uint8) bool {
		if len(sendGaps) == 0 {
			return true
		}
		if len(sendGaps) > 16 {
			sendGaps = sendGaps[:16]
		}
		timeout := Duration(1+int(timeoutSel)%8) * Millisecond
		type obs struct {
			at Time
			ok bool
			v  any
		}
		run := func(domains int) []obs {
			g := NewGroup(domains)
			q := g.Domain(0).NewQueue("sink")
			prodSim := g.Domain(domains - 1)
			l := g.Connect(prodSim, q, Millisecond)
			prodSim.Go("producer", func(th *Thread) {
				for i, gap := range sendGaps {
					th.Sleep(Duration(gap%5000) * Microsecond)
					l.Send(i)
				}
			})
			var trace []obs
			g.Domain(0).Go("consumer", func(th *Thread) {
				got := 0
				for got < len(sendGaps) {
					v, ok := th.GetTimeout(q, timeout)
					trace = append(trace, obs{th.Now(), ok, v})
					if ok {
						got++
					}
				}
			})
			g.Run()
			g.Shutdown()
			return trace
		}
		a, b := run(1), run(2)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLockMutualExclusionInvariant: random mixes of shared and
// exclusive holders never overlap illegally.
func TestQuickLockInvariant(t *testing.T) {
	f := func(pattern []bool) bool {
		if len(pattern) > 12 {
			pattern = pattern[:12]
		}
		if len(pattern) == 0 {
			return true
		}
		s := New()
		l := s.NewLock("l")
		readers, writers := 0, 0
		ok := true
		for _, excl := range pattern {
			excl := excl
			s.Go("t", func(th *Thread) {
				mode := Shared
				if excl {
					mode = Exclusive
				}
				th.Lock(l, mode)
				if excl {
					writers++
					if writers != 1 || readers != 0 {
						ok = false
					}
				} else {
					readers++
					if writers != 0 {
						ok = false
					}
				}
				th.Sleep(Millisecond)
				if excl {
					writers--
				} else {
					readers--
				}
				th.Unlock(l)
			})
		}
		s.Run()
		s.Shutdown()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
