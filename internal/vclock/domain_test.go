package vclock

import (
	"fmt"
	"testing"
)

// traceEntry is one observed delivery: which consumer saw what, when.
type traceEntry struct {
	who string
	at  Time
	v   any
}

// pingPong builds the same two-party program on a group of n domains
// and returns the observation trace: a client issues `rounds` requests
// with 3ms think time over a 1ms link; a server answers each after
// 500µs of handling over another 1ms link. With n=1 both parties share
// a domain (all links same-domain, still epoch-buffered); with n=2 the
// server is on domain 0 and the client on domain 1.
func pingPong(n, rounds int) []traceEntry {
	g := NewGroup(n)
	srvSim := g.Domain(0)
	cliSim := g.Domain((n - 1) % n)
	srvQ := srvSim.NewQueue("srv")
	cliQ := cliSim.NewQueue("cli")
	toSrv := g.Connect(cliSim, srvQ, Millisecond)
	toCli := g.Connect(srvSim, cliQ, Millisecond)
	var trace []traceEntry
	srvSim.Go("server", func(th *Thread) {
		for {
			v := th.Get(srvQ)
			trace = append(trace, traceEntry{"server", th.Now(), v})
			th.Sleep(500 * Microsecond)
			toCli.Send(v)
		}
	})
	cliSim.Go("client", func(th *Thread) {
		for i := 0; i < rounds; i++ {
			toSrv.Send(i)
			v := th.Get(cliQ)
			trace = append(trace, traceEntry{"client", th.Now(), v})
			th.Sleep(3 * Millisecond)
		}
	})
	g.Run()
	g.Shutdown()
	return trace
}

// TestGroupSerialShardedIdentity pins the tentpole invariant at the
// vclock layer: the observation trace of the same program is identical
// whether its parties share one time domain or are split across two.
func TestGroupSerialShardedIdentity(t *testing.T) {
	serial := pingPong(1, 20)
	sharded := pingPong(2, 20)
	if len(serial) != len(sharded) {
		t.Fatalf("trace lengths differ: serial %d, sharded %d", len(serial), len(sharded))
	}
	if len(serial) != 40 {
		t.Fatalf("expected 40 observations, got %d", len(serial))
	}
	for i := range serial {
		if serial[i] != sharded[i] {
			t.Fatalf("trace[%d] differs: serial %+v, sharded %+v", i, serial[i], sharded[i])
		}
	}
}

func TestGroupLookahead(t *testing.T) {
	g := NewGroup(2)
	q0 := g.Domain(0).NewQueue("q0")
	q1 := g.Domain(1).NewQueue("q1")
	g.Connect(g.Domain(0), q1, 3*Millisecond)
	g.Connect(g.Domain(1), q0, Millisecond)
	g.Connect(g.Domain(0), q0, 0) // direct: excluded from lookahead
	if got := g.Lookahead(); got != Millisecond {
		t.Fatalf("Lookahead = %v, want %v", got, Millisecond)
	}
}

func TestConnectZeroLatencyCrossDomainPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Connect accepted a zero-latency cross-domain link")
		}
	}()
	g := NewGroup(2)
	q1 := g.Domain(1).NewQueue("q1")
	g.Connect(g.Domain(0), q1, 0)
}

// TestGroupDirectLink: a zero-latency same-domain link delivers
// immediately, without waiting for any barrier.
func TestGroupDirectLink(t *testing.T) {
	g := NewGroup(1)
	s := g.Domain(0)
	q := s.NewQueue("q")
	l := g.Connect(s, q, 0)
	var at Time
	s.Go("consumer", func(th *Thread) { th.Get(q); at = th.Now() })
	s.Go("producer", func(th *Thread) {
		th.Sleep(2 * Millisecond)
		l.Send("x")
	})
	g.Run()
	g.Shutdown()
	if at != Time(2*Millisecond) {
		t.Fatalf("delivery at %v, want %v", at, Time(2*Millisecond))
	}
}

// TestGroupCrash: a panic in a non-home domain halts the group run and
// surfaces through Group.Crashed.
func TestGroupCrash(t *testing.T) {
	g := NewGroup(2)
	q1 := g.Domain(1).NewQueue("q1")
	g.Connect(g.Domain(0), q1, Millisecond) // epoch mode
	g.Domain(1).Go("boom", func(th *Thread) {
		th.Sleep(5 * Millisecond)
		panic("injected")
	})
	g.Domain(0).Go("spin", func(th *Thread) {
		for i := 0; i < 100; i++ {
			th.Sleep(Millisecond)
		}
	})
	g.Run()
	c := g.Crashed()
	if c == nil || c.Thread != "boom" || c.At != Time(5*Millisecond) {
		t.Fatalf("Crashed = %+v, want boom at 5ms", c)
	}
	g.Shutdown()
}

func TestGroupNowIsMaxDomainClock(t *testing.T) {
	g := NewGroup(2)
	g.Domain(0).Go("a", func(th *Thread) { th.Sleep(Millisecond) })
	g.Domain(1).Go("b", func(th *Thread) { th.Sleep(7 * Millisecond) })
	g.Run()
	g.Shutdown()
	if got := g.Now(); got != Time(7*Millisecond) {
		t.Fatalf("Now = %v, want 7ms", got)
	}
}

// TestRunBefore: events strictly before the horizon run; an event at
// exactly the horizon stays pending (the off-by-one RunFor would make).
func TestRunBefore(t *testing.T) {
	s := New()
	var ran []string
	s.At(Time(Millisecond), func() { ran = append(ran, "before") })
	s.At(Time(2*Millisecond), func() { ran = append(ran, "at") })
	s.RunBefore(Time(2 * Millisecond))
	if fmt.Sprint(ran) != "[before]" {
		t.Fatalf("ran %v, want [before] only", ran)
	}
	if len(s.events) != 1 || s.events[0].when != Time(2*Millisecond) {
		t.Fatalf("event at the horizon should stay pending")
	}
	s.Run()
	if fmt.Sprint(ran) != "[before at]" {
		t.Fatalf("ran %v after full run", ran)
	}
}

// TestGroupRunUntilStopAtBarrier: the stop predicate is honored at
// epoch barriers, leaving later work pending.
func TestGroupRunUntilStopAtBarrier(t *testing.T) {
	g := NewGroup(2)
	q0 := g.Domain(0).NewQueue("q0")
	l := g.Connect(g.Domain(1), q0, Millisecond)
	count := 0
	g.Domain(0).Go("consumer", func(th *Thread) {
		for {
			th.Get(q0)
			count++
		}
	})
	g.Domain(1).Go("producer", func(th *Thread) {
		for i := 0; i < 100; i++ {
			l.Send(i)
			th.Sleep(Millisecond)
		}
	})
	g.RunUntil(func() bool { return count >= 10 })
	if count < 10 || count >= 100 {
		t.Fatalf("count = %d, want stopped in [10,100)", count)
	}
	g.Shutdown()
}
