// Package vclock provides a deterministic discrete-event simulation
// substrate: a virtual clock, simulated threads, multi-core CPU resources,
// FIFO queues and reader/writer locks.
//
// Every experiment in this repository runs on virtual time so that results
// are reproducible bit-for-bit. Simulated threads are ordinary goroutines,
// but the scheduler runs exactly one of them at a time and picks the next
// runnable thread deterministically (earliest wake time, ties broken by
// sequence number), so no data race or nondeterminism is possible as long
// as threads only communicate through vclock primitives.
package vclock

import "fmt"

// Time is a point in virtual time, measured in nanoseconds from the start
// of the simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
	Minute      Duration = 60 * Second
)

// String renders the time as seconds with microsecond precision.
func (t Time) String() string {
	return fmt.Sprintf("%d.%06ds", int64(t)/1e9, (int64(t)%1e9)/1000)
}

// Micros returns the duration in (fractional) microseconds.
func (d Duration) Micros() float64 { return float64(d) / 1e3 }

// Millis returns the duration in (fractional) milliseconds.
func (d Duration) Millis() float64 { return float64(d) / 1e6 }

// Seconds returns the duration in (fractional) seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// Add returns the time d later than t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and earlier time u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }
