package vclock

// Queue is an unbounded FIFO queue connecting simulated threads (and
// scheduler callbacks) to simulated threads. Put never blocks; Get blocks
// the calling thread until an item is available. Items are delivered in
// FIFO order and waiting threads are served in FIFO order, so behaviour is
// deterministic.
// Consumed slots are tracked with head indexes rather than by reslicing
// from the front: items[1:] permanently gives up a slot of capacity, so
// a queue that oscillates around empty — the steady state of every
// worker loop — would reallocate its backing array on nearly every
// Put/Get cycle. With head indexes the arrays are compacted in place
// once drained and reach a steady capacity with no per-cycle
// allocation.
type Queue struct {
	Name string

	sim     *Sim
	items   []any
	ihead   int // items[:ihead] already served
	waiters []*Thread
	whead   int // waiters[:whead] already woken
	puts    int64
	gets    int64
	maxLen  int
}

// NewQueue returns an empty queue attached to s.
func (s *Sim) NewQueue(name string) *Queue {
	return &Queue{Name: name, sim: s}
}

// Len reports the number of items currently buffered.
func (q *Queue) Len() int { return len(q.items) - q.ihead }

// Stats reports the total number of puts and gets and the maximum buffered
// length observed.
func (q *Queue) Stats() (puts, gets int64, maxLen int) {
	return q.puts, q.gets, q.maxLen
}

// Put appends v to the queue, waking the longest-waiting getter if any.
// It never blocks and may be called from scheduler callbacks as well as
// from simulated threads.
func (q *Queue) Put(v any) {
	q.puts++
	for q.whead < len(q.waiters) {
		w := q.waiters[q.whead]
		q.waiters[q.whead] = nil
		q.whead++
		if q.whead == len(q.waiters) {
			q.waiters = q.waiters[:0]
			q.whead = 0
		}
		if w.dead {
			// The waiter was killed while parked here; the item goes to
			// the next waiter (or the buffer) instead of vanishing into
			// a dead thread.
			continue
		}
		q.gets++
		q.sim.wakeAt(q.sim.now, w, v)
		return
	}
	if q.ihead > 0 && len(q.items) == cap(q.items) {
		n := copy(q.items, q.items[q.ihead:])
		clear(q.items[n:])
		q.items = q.items[:n]
		q.ihead = 0
	}
	q.items = append(q.items, v)
	if n := len(q.items) - q.ihead; n > q.maxLen {
		q.maxLen = n
	}
}

// Get removes and returns the oldest item in the queue, blocking the
// calling thread until one is available. The item rides the wake-up
// payload unboxed: a thread parked in Get can only ever be woken by a
// Put hand-off (a parked thread waits for exactly one reason), so the
// payload — even a legitimate nil — is the delivered item.
func (t *Thread) Get(q *Queue) any {
	if v, ok := t.TryGet(q); ok {
		return v
	}
	t.waitGen++
	q.enqueueWaiter(t)
	return t.park()
}

// timeoutWake is the payload a GetTimeout timer delivers; unexported, so
// a Put can never legitimately hand it over.
type timeoutWake struct{}

// GetTimeout is Get bounded to d of virtual time: it returns (item,
// true) if one arrives in time, or (nil, false) once d elapses with the
// thread still waiting. The timer is an ordinary heap event, so a
// timeout is as deterministic as any other wake-up. A non-positive d
// degrades to TryGet. This is the client-side timeout primitive under
// retry-with-backoff request handling.
func (t *Thread) GetTimeout(q *Queue, d Duration) (any, bool) {
	if v, ok := t.TryGet(q); ok {
		return v, true
	}
	if d <= 0 {
		return nil, false
	}
	s := t.sim
	// The generation stamp ties the timer to THIS wait: if a Put wins and
	// the thread is already waiting again (on any queue) when the timer
	// fires, the stamp has moved on and the timer does nothing. Together
	// with removeWaiter this preserves the single-wake invariant — a
	// parked thread is woken by exactly one of {hand-off, timeout}.
	t.waitGen++
	gen := t.waitGen
	q.enqueueWaiter(t)
	s.At(s.now.Add(d), func() {
		if t.waitGen == gen && !t.dead && q.removeWaiter(t) {
			s.wakeAt(s.now, t, timeoutWake{})
		}
	})
	v := t.park()
	if _, timedOut := v.(timeoutWake); timedOut {
		return nil, false
	}
	return v, true
}

// enqueueWaiter appends t to the waiter list, compacting consumed slots
// first (same steady-capacity discipline as the item buffer).
func (q *Queue) enqueueWaiter(t *Thread) {
	if q.whead > 0 && len(q.waiters) == cap(q.waiters) {
		n := copy(q.waiters, q.waiters[q.whead:])
		clear(q.waiters[n:])
		q.waiters = q.waiters[:n]
		q.whead = 0
	}
	q.waiters = append(q.waiters, t)
}

// removeWaiter withdraws t from the waiter list, preserving FIFO order
// of the rest. It reports whether t was still waiting.
func (q *Queue) removeWaiter(t *Thread) bool {
	for i := q.whead; i < len(q.waiters); i++ {
		if q.waiters[i] != t {
			continue
		}
		copy(q.waiters[i:], q.waiters[i+1:])
		q.waiters[len(q.waiters)-1] = nil
		q.waiters = q.waiters[:len(q.waiters)-1]
		if q.whead == len(q.waiters) {
			q.waiters = q.waiters[:0]
			q.whead = 0
		}
		return true
	}
	return false
}

// TryGet removes and returns the oldest item if one is buffered; it never
// blocks. The second result reports whether an item was returned.
func (t *Thread) TryGet(q *Queue) (any, bool) {
	if q.ihead == len(q.items) {
		return nil, false
	}
	v := q.items[q.ihead]
	q.items[q.ihead] = nil
	q.ihead++
	if q.ihead == len(q.items) {
		q.items = q.items[:0]
		q.ihead = 0
	}
	q.gets++
	return v, true
}
