package vclock

// Queue is an unbounded FIFO queue connecting simulated threads (and
// scheduler callbacks) to simulated threads. Put never blocks; Get blocks
// the calling thread until an item is available. Items are delivered in
// FIFO order and waiting threads are served in FIFO order, so behaviour is
// deterministic.
type Queue struct {
	Name string

	sim     *Sim
	items   []any
	waiters []*Thread
	puts    int64
	gets    int64
	maxLen  int
}

// NewQueue returns an empty queue attached to s.
func (s *Sim) NewQueue(name string) *Queue {
	return &Queue{Name: name, sim: s}
}

// Len reports the number of items currently buffered.
func (q *Queue) Len() int { return len(q.items) }

// Stats reports the total number of puts and gets and the maximum buffered
// length observed.
func (q *Queue) Stats() (puts, gets int64, maxLen int) {
	return q.puts, q.gets, q.maxLen
}

// Put appends v to the queue, waking the longest-waiting getter if any.
// It never blocks and may be called from scheduler callbacks as well as
// from simulated threads.
func (q *Queue) Put(v any) {
	q.puts++
	if len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		q.gets++
		q.sim.wakeAt(q.sim.now, w, v)
		return
	}
	q.items = append(q.items, v)
	if len(q.items) > q.maxLen {
		q.maxLen = len(q.items)
	}
}

// Get removes and returns the oldest item in the queue, blocking the
// calling thread until one is available. The item rides the wake-up
// payload unboxed: a thread parked in Get can only ever be woken by a
// Put hand-off (a parked thread waits for exactly one reason), so the
// payload — even a legitimate nil — is the delivered item.
func (t *Thread) Get(q *Queue) any {
	if len(q.items) > 0 {
		v := q.items[0]
		q.items = q.items[1:]
		q.gets++
		return v
	}
	q.waiters = append(q.waiters, t)
	return t.park()
}

// TryGet removes and returns the oldest item if one is buffered; it never
// blocks. The second result reports whether an item was returned.
func (t *Thread) TryGet(q *Queue) (any, bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	q.gets++
	return v, true
}
