package vclock

// CPU models a multi-core processor. Compute requests occupy a core for
// their full duration, non-preemptively, in FIFO order of issue; when all
// cores are busy a request waits for the earliest core to free up. This is
// the contention model behind every throughput/saturation experiment.
type CPU struct {
	Name string

	sim      *Sim
	nextFree []Time   // per-core time at which the core becomes free
	busy     Duration // total core-occupancy accumulated
	stolen   Duration // occupancy injected by Preempt (slow-node faults)
}

// NewCPU returns a CPU with `cores` cores attached to s.
func (s *Sim) NewCPU(name string, cores int) *CPU {
	if cores < 1 {
		cores = 1
	}
	return &CPU{Name: name, sim: s, nextFree: make([]Time, cores)}
}

// Cores reports the number of cores.
func (c *CPU) Cores() int { return len(c.nextFree) }

// Busy reports the total core-occupancy time accumulated so far.
func (c *CPU) Busy() Duration { return c.busy }

// Utilization reports mean utilization over [0, now]: busy time divided by
// cores * elapsed. It is 0 before any time has passed.
func (c *CPU) Utilization() float64 {
	elapsed := int64(c.sim.now)
	if elapsed == 0 {
		return 0
	}
	return float64(c.busy) / (float64(len(c.nextFree)) * float64(elapsed))
}

// reserve books d of CPU starting no earlier than now and returns the time
// the computation finishes.
func (c *CPU) reserve(d Duration) Time {
	best := 0
	for i := 1; i < len(c.nextFree); i++ {
		if c.nextFree[i] < c.nextFree[best] {
			best = i
		}
	}
	start := c.nextFree[best]
	if start < c.sim.now {
		start = c.sim.now
	}
	end := start.Add(d)
	c.nextFree[best] = end
	c.busy += d
	return end
}

// Preempt steals d of CPU time on every core starting now: pending and
// future Compute requests finish at least d later, exactly as if a
// co-located process had hogged the whole machine — the slow-node fault.
// The stolen time is tracked separately from Busy, so application
// utilization figures keep their meaning; read it with Stolen. Callable
// from scheduler callbacks; it never blocks.
func (c *CPU) Preempt(d Duration) {
	if d <= 0 {
		return
	}
	for i := range c.nextFree {
		start := c.nextFree[i]
		if start < c.sim.now {
			start = c.sim.now
		}
		c.nextFree[i] = start.Add(d)
	}
	c.stolen += d * Duration(len(c.nextFree))
}

// Stolen reports the total core-occupancy injected by Preempt.
func (c *CPU) Stolen() Duration { return c.stolen }

// Compute consumes d of CPU time on c: the calling thread blocks until a
// core has executed its request. Zero and negative durations return
// immediately.
func (t *Thread) Compute(c *CPU, d Duration) {
	if d <= 0 {
		return
	}
	end := c.reserve(d)
	t.SleepUntil(end)
}
