package vclock

import "math"

// RNG is a small, fast, deterministic random number generator
// (splitmix64). Every workload draws from explicitly seeded RNG streams so
// that experiments are reproducible regardless of Go version or map
// iteration order.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed. Distinct seeds give
// independent-looking streams.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed + 0x9e3779b97f4a7c15} }

// Skip advances the generator past k draws in O(1): splitmix64's state
// moves by a fixed increment per draw, so the state after k draws is
// directly computable. This is what lets sharded workload generation
// reproduce a sequential draw sequence bit-for-bit — each worker jumps
// its own RNG to the shard's position in the one global stream.
func (r *RNG) Skip(k uint64) { r.state += k * 0x9e3779b97f4a7c15 }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("vclock: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Exp returns an exponentially distributed duration with the given mean.
func (r *RNG) Exp(mean Duration) Duration {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return Duration(-float64(mean) * math.Log(u))
}

// Pareto returns a bounded Pareto sample in [min, max) with shape alpha.
// Used for heavy-tailed file sizes.
func (r *RNG) Pareto(min, max float64, alpha float64) float64 {
	u := r.Float64()
	ha := math.Pow(min, alpha)
	la := math.Pow(max, alpha)
	x := -(u*la - u*ha - la) / (la * ha)
	return math.Pow(x, -1/alpha)
}

// Zipf draws from a Zipf distribution over [0, n) with exponent s, using a
// precomputed cumulative table for determinism and speed.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a Zipf sampler over n items with exponent s (> 0) fed by
// rng. Rank 0 is the most popular item.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	z := NewZipfTable(n, s)
	z.rng = rng
	return z
}

// NewZipfTable builds the sampler without an RNG of its own: only Sample
// (which takes the caller's RNG) may be used, not Next. Sharded workload
// generators share one table across workers that each hold a per-item
// stream.
func NewZipfTable(n int, s float64) *Zipf {
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf}
}

// Next returns the next sample's rank in [0, n). It requires a sampler
// built with NewZipf; table-only samplers (NewZipfTable) must use Sample.
func (z *Zipf) Next() int { return z.Sample(z.rng) }

// Sample draws a rank using r instead of the sampler's own stream. The
// cumulative table is read-only after construction, so one Zipf can be
// shared by concurrent workers each holding its own RNG.
func (z *Zipf) Sample(r *RNG) int {
	u := r.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Pick returns k with probability weights[k]/sum(weights). It panics on an
// empty or all-zero weight vector.
func (r *RNG) Pick(weights []float64) int {
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	if sum <= 0 {
		panic("vclock: Pick with non-positive weight sum")
	}
	u := r.Float64() * sum
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}
