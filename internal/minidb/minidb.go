// Package minidb is the database substrate standing in for MySQL 4.0 in
// the TPC-W case study (§8.4). It provides tables with two storage
// engines that differ exactly where the paper's optimisation story needs
// them to:
//
//   - EngineMyISAM supports only table-wide locking: reads take the table
//     lock shared, writes take it exclusive — so one row update blocks
//     every reader of the table;
//   - EngineInnoDB supports row-level locking with non-locking consistent
//     reads: readers take no lock at all, writers lock only their row.
//
// Query execution consumes CPU according to a calibrated cost model and
// is instrumented through profiler probes, so the database's CPU profile
// per transaction context (Table 1) and its lock crosstalk fall out of
// the same machinery as every other stage.
package minidb

import (
	"fmt"
	"slices"

	"whodunit/internal/profiler"
	"whodunit/internal/vclock"
)

// Engine selects a table's locking strategy.
type Engine uint8

const (
	// EngineMyISAM: table-level locking only.
	EngineMyISAM Engine = iota
	// EngineInnoDB: row-level write locks, lock-free consistent reads.
	EngineInnoDB
)

func (e Engine) String() string {
	if e == EngineInnoDB {
		return "InnoDB"
	}
	return "MyISAM"
}

// Attr is one named integer attribute of a row.
type Attr struct {
	Name string
	Val  int64
}

// Row is one table row: an id plus integer attributes (strings are
// modelled as interned codes — the workload only ever compares them).
// Attributes are a small slice, not a map: rows carry at most a handful,
// a linear scan beats a map lookup at that size, and bulk-loading tens
// of thousands of rows per experiment run was allocating a map (and its
// hash state) per row — the single largest allocation source in the
// TPC-W runs.
type Row struct {
	ID    int64
	Attrs []Attr
}

// Attr returns the named attribute (0 when absent).
func (r Row) Attr(name string) int64 {
	for i := range r.Attrs {
		if r.Attrs[i].Name == name {
			return r.Attrs[i].Val
		}
	}
	return 0
}

// SetAttr sets the named attribute, adding it if absent.
func (r *Row) SetAttr(name string, v int64) {
	for i := range r.Attrs {
		if r.Attrs[i].Name == name {
			r.Attrs[i].Val = v
			return
		}
	}
	r.Attrs = append(r.Attrs, Attr{Name: name, Val: v})
}

// AddAttr adds delta to the named attribute (treating absent as 0).
func (r *Row) AddAttr(name string, delta int64) {
	for i := range r.Attrs {
		if r.Attrs[i].Name == name {
			r.Attrs[i].Val += delta
			return
		}
	}
	r.Attrs = append(r.Attrs, Attr{Name: name, Val: delta})
}

// CostModel gives the CPU demand of query operators, per row.
type CostModel struct {
	ScanPerRow   vclock.Duration // sequential scan, per row examined
	SortPerCmp   vclock.Duration // sort, per comparison (n log2 n total)
	LookupCost   vclock.Duration // index lookup, per access
	UpdateCost   vclock.Duration // in-place row update
	InsertCost   vclock.Duration // row insert
	TempPerRow   vclock.Duration // temp-table materialisation, per row
	AggPerRow    vclock.Duration // aggregation, per input row
	ReturnPerRow vclock.Duration // result marshalling, per returned row
}

// DefaultCost is calibrated so the TPC-W browsing mix reproduces Table
// 1's CPU split (BestSellers and SearchResult dominating).
var DefaultCost = CostModel{
	ScanPerRow:   800 * vclock.Nanosecond,
	SortPerCmp:   150 * vclock.Nanosecond,
	LookupCost:   60 * vclock.Microsecond,
	UpdateCost:   250 * vclock.Microsecond,
	InsertCost:   120 * vclock.Microsecond,
	TempPerRow:   2 * vclock.Microsecond,
	AggPerRow:    1 * vclock.Microsecond,
	ReturnPerRow: 4 * vclock.Microsecond,
}

// Table is a named collection of rows under one engine.
type Table struct {
	Name   string
	Engine Engine

	db       *DB
	rows     []Row
	byID     map[int64]int
	lock     *vclock.Lock
	rowLocks map[int64]*vclock.Lock

	// Profiler frame names for this table's operators, concatenated once
	// at creation instead of on every query (Select/Lookup run thousands
	// of times per experiment).
	frameSelect, frameLookup, frameUpdate, frameInsert string

	// buckets caches, per attribute, the row indexes grouped by value —
	// the equality index behind WhereAttr scans. Built lazily, dropped
	// whole on any write. Index slices hold row positions in row order,
	// so bucketed results match what a row-order scan would produce.
	buckets map[string]map[int64][]int
}

// bucket returns the cached value→row-indexes index for attr, building
// it on first use after a write.
func (t *Table) bucket(attr string) map[int64][]int {
	if b, ok := t.buckets[attr]; ok {
		return b
	}
	if t.buckets == nil {
		t.buckets = make(map[string]map[int64][]int)
	}
	b := make(map[int64][]int)
	for i := range t.rows {
		v := t.rows[i].Attr(attr)
		b[v] = append(b[v], i)
	}
	t.buckets[attr] = b
	return b
}

// invalidateCols drops the equality-index cache after a write.
func (t *Table) invalidateCols() { t.buckets = nil }

// DB is one database instance bound to a simulation and a CPU.
type DB struct {
	Name string
	CPU  *vclock.CPU
	Cost CostModel

	sim      *vclock.Sim
	tables   map[string]*Table
	observer vclock.LockObserver
}

// New creates a database computing on cpu.
func New(sim *vclock.Sim, name string, cpu *vclock.CPU) *DB {
	return &DB{Name: name, CPU: cpu, Cost: DefaultCost, sim: sim, tables: make(map[string]*Table)}
}

// SetLockObserver attaches obs (e.g. a crosstalk monitor) to every
// current and future lock in the database.
func (db *DB) SetLockObserver(obs vclock.LockObserver) {
	db.observer = obs
	for _, t := range db.tables {
		t.lock.Observer = obs
		for _, rl := range t.rowLocks {
			rl.Observer = obs
		}
	}
}

// CreateTable adds an empty table with the given engine.
func (db *DB) CreateTable(name string, engine Engine) *Table {
	t := &Table{
		Name:        name,
		Engine:      engine,
		db:          db,
		byID:        make(map[int64]int),
		lock:        db.sim.NewLock(db.Name + "." + name),
		rowLocks:    make(map[int64]*vclock.Lock),
		frameSelect: "select_" + name,
		frameLookup: "lookup_" + name,
		frameUpdate: "update_" + name,
		frameInsert: "insert_" + name,
	}
	t.lock.Observer = db.observer
	db.tables[name] = t
	return t
}

// Table looks up a table by name; it panics if missing (schema errors are
// programming errors in this codebase).
func (db *DB) Table(name string) *Table {
	t, ok := db.tables[name]
	if !ok {
		panic(fmt.Sprintf("minidb: no table %q in %s", name, db.Name))
	}
	return t
}

// AlterEngine switches the table's engine — the paper's MyISAM→InnoDB
// optimisation (§8.4).
func (t *Table) AlterEngine(e Engine) { t.Engine = e }

// Len reports the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// LoadRow appends a row without consuming simulated time (bulk loading
// during setup).
func (t *Table) LoadRow(r Row) {
	t.byID[r.ID] = len(t.rows)
	t.rows = append(t.rows, r)
	t.invalidateCols()
}

func (t *Table) rowLock(id int64) *vclock.Lock {
	l, ok := t.rowLocks[id]
	if !ok {
		l = t.db.sim.NewLock(fmt.Sprintf("%s.%s[%d]", t.db.Name, t.Name, id))
		l.Observer = t.db.observer
		t.rowLocks[id] = l
	}
	return l
}

// lockRead/unlockRead bracket whatever locking the engine requires for
// reading (a no-op for InnoDB's non-locking consistent reads). They are
// paired methods rather than a returned unlock closure: Select and
// Lookup run thousands of times per experiment and the closure was one
// heap allocation per query.
func (t *Table) lockRead(th *vclock.Thread) {
	if t.Engine == EngineMyISAM {
		th.Lock(t.lock, vclock.Shared)
	}
}

func (t *Table) unlockRead(th *vclock.Thread) {
	if t.Engine == EngineMyISAM {
		th.Unlock(t.lock)
	}
}

// lockWrite/unlockWrite are the write-side pair: the whole table for
// MyISAM, the row's lock for InnoDB (resolved again on unlock — a map
// hit is cheaper than a captured closure).
func (t *Table) lockWrite(th *vclock.Thread, id int64) {
	if t.Engine == EngineMyISAM {
		th.Lock(t.lock, vclock.Exclusive)
		return
	}
	th.Lock(t.rowLock(id), vclock.Exclusive)
}

func (t *Table) unlockWrite(th *vclock.Thread, id int64) {
	if t.Engine == EngineMyISAM {
		th.Unlock(t.lock)
		return
	}
	th.Unlock(t.rowLock(id))
}

// Pred filters rows; a nil Pred matches everything.
type Pred func(Row) bool

// SelectOpts modifies Select: SortBy triggers an n·log n sort by the
// named attribute (descending), Limit truncates the result, and
// TempSortRows > 0 materialises and sorts that many rows into a temporary
// table *while the read lock is held* — the heavy query shape of
// BestSellers / SearchResult / AdminConfirm (§8.4), and the reason those
// queries hold their table locks long enough to cause crosstalk.
//
// Two execution-shape options keep the modelled cost identical while
// skipping work the caller does not want:
//
//   - WhereAttr/WhereEquals (with a nil Pred) filter by attribute
//     equality through a per-table equality index (value → row indexes,
//     rebuilt lazily after writes) — no per-row work at all;
//   - CountOnly charges exactly the CPU demand, takes exactly the locks
//     and emits exactly the profiler frames the full query would, but
//     materialises no result rows (callers that only want the query's
//     cost and contention — the TPC-W servlets — drop ~half their
//     allocation and sort work this way).
type SelectOpts struct {
	SortBy       string
	Limit        int
	TempSortRows int

	// WhereAttr, when non-empty and Pred is nil, selects rows whose named
	// attribute equals WhereEquals.
	WhereAttr   string
	WhereEquals int64

	// CountOnly suppresses result materialisation; Select returns nil.
	// CPU demand, lock hold times and profiler frames are unchanged.
	CountOnly bool
}

// log2 returns ceil(log2(n)) for cost computation, minimum 1.
func log2(n int) int64 {
	l := int64(1)
	for v := 1; v < n; v <<= 1 {
		l++
	}
	return l
}

// Select scans the table under the engine's read locking, filters with
// pred, optionally sorts and limits; all CPU demand is charged through
// pr. The returned rows are copies of the row headers (attribute maps are
// shared — the workload treats them as immutable).
func (db *DB) Select(pr *profiler.Probe, t *Table, pred Pred, opts SelectOpts) []Row {
	defer pr.Exit(pr.Enter(t.frameSelect))
	t.lockRead(pr.Thread())
	defer t.unlockRead(pr.Thread())

	func() {
		defer pr.Exit(pr.Enter("scan_rows"))
		pr.ComputeN(vclock.Duration(len(t.rows))*db.Cost.ScanPerRow, len(t.rows))
	}()
	// Filter. The three shapes (everything, attribute equality, arbitrary
	// predicate) agree on `matched`; only the non-CountOnly ones
	// materialise rows.
	var out []Row
	matched := 0
	switch {
	case pred == nil && opts.WhereAttr != "":
		idxs := t.bucket(opts.WhereAttr)[opts.WhereEquals]
		matched = len(idxs)
		if !opts.CountOnly && matched > 0 {
			out = make([]Row, 0, matched)
			for _, i := range idxs {
				out = append(out, t.rows[i])
			}
		}
	case pred == nil:
		matched = len(t.rows)
		if !opts.CountOnly {
			out = slices.Clone(t.rows)
		}
	default:
		for _, r := range t.rows {
			if pred(r) {
				matched++
				if !opts.CountOnly {
					out = append(out, r)
				}
			}
		}
	}
	if opts.SortBy != "" && matched > 1 {
		func() {
			defer pr.Exit(pr.Enter("sort_rows"))
			pr.ComputeN(vclock.Duration(int64(matched)*log2(matched))*db.Cost.SortPerCmp, matched)
		}()
		if !opts.CountOnly {
			// Decorate-sort-undecorate: extract each row's sort key once
			// and sort descending with a reflection-free generic stable
			// sort — no map lookup per comparison, no reflect.Swapper per
			// swap (sort.SliceStable cost the old Select most of its
			// time).
			key := opts.SortBy
			type decorated struct {
				key int64
				row Row
			}
			dec := make([]decorated, len(out))
			for i, r := range out {
				dec[i] = decorated{key: r.Attr(key), row: r}
			}
			slices.SortStableFunc(dec, func(a, b decorated) int {
				switch {
				case a.key > b.key:
					return -1
				case a.key < b.key:
					return 1
				}
				return 0
			})
			for i := range dec {
				out[i] = dec[i].row
			}
		}
	}
	if opts.TempSortRows > 0 {
		db.TempSort(pr, opts.TempSortRows)
	}
	if opts.Limit > 0 && matched > opts.Limit {
		matched = opts.Limit
		if !opts.CountOnly {
			out = out[:opts.Limit]
		}
	}
	pr.Compute(vclock.Duration(matched) * db.Cost.ReturnPerRow)
	return out
}

// Lookup fetches a row by primary key under read locking.
func (db *DB) Lookup(pr *profiler.Probe, t *Table, id int64) (Row, bool) {
	defer pr.Exit(pr.Enter(t.frameLookup))
	t.lockRead(pr.Thread())
	defer t.unlockRead(pr.Thread())
	pr.Compute(db.Cost.LookupCost)
	idx, ok := t.byID[id]
	if !ok {
		return Row{}, false
	}
	return t.rows[idx], true
}

// Update applies fn to the row with the given id under the engine's write
// locking. It reports whether the row existed.
func (db *DB) Update(pr *profiler.Probe, t *Table, id int64, fn func(*Row)) bool {
	defer pr.Exit(pr.Enter(t.frameUpdate))
	t.lockWrite(pr.Thread(), id)
	defer t.unlockWrite(pr.Thread(), id)
	pr.Compute(db.Cost.UpdateCost)
	idx, ok := t.byID[id]
	if !ok {
		return false
	}
	fn(&t.rows[idx])
	t.invalidateCols()
	return true
}

// Insert appends a row under write locking (the whole table for MyISAM,
// the new row's lock for InnoDB).
func (db *DB) Insert(pr *profiler.Probe, t *Table, r Row) {
	defer pr.Exit(pr.Enter(t.frameInsert))
	t.lockWrite(pr.Thread(), r.ID)
	defer t.unlockWrite(pr.Thread(), r.ID)
	pr.Compute(db.Cost.InsertCost)
	t.LoadRow(r)
}

// TempSort models the heavy-weight "sort into a temporary table" query
// shape (AdminConfirm, BestSellers): materialise n rows into a temp table
// and sort them, charging temp+agg+sort costs. Only the cost (and the
// profiler frames) matter; callers aggregate real data themselves.
func (db *DB) TempSort(pr *profiler.Probe, n int) {
	defer pr.Exit(pr.Enter("temp_table_sort"))
	pr.ComputeN(vclock.Duration(n)*(db.Cost.TempPerRow+db.Cost.AggPerRow)+
		vclock.Duration(int64(n)*log2(n))*db.Cost.SortPerCmp, n)
}
