package minidb

import (
	"testing"

	"whodunit/internal/profiler"
	"whodunit/internal/vclock"
)

// env builds a sim, db and a way to run a body with a probe.
type env struct {
	s   *vclock.Sim
	cpu *vclock.CPU
	db  *DB
	p   *profiler.Profiler
}

func newEnv() *env {
	s := vclock.New()
	// Two cores so that lock behaviour, not CPU queueing, decides who
	// waits in the engine tests.
	cpu := s.NewCPU("dbcpu", 2)
	return &env{s: s, cpu: cpu, db: New(s, "mysql", cpu), p: profiler.New("mysql", profiler.ModeWhodunit)}
}

func (e *env) go_(name string, body func(pr *profiler.Probe, th *vclock.Thread)) {
	e.s.Go(name, func(th *vclock.Thread) {
		pr := e.p.NewProbe(th, e.cpu)
		th.Data = pr
		body(pr, th)
	})
}

func (e *env) goAt(at vclock.Time, name string, body func(pr *profiler.Probe, th *vclock.Thread)) {
	e.s.GoAt(at, name, func(th *vclock.Thread) {
		pr := e.p.NewProbe(th, e.cpu)
		th.Data = pr
		body(pr, th)
	})
}

func loadItems(t *Table, n int) {
	for i := 0; i < n; i++ {
		t.LoadRow(Row{ID: int64(i), Attrs: []Attr{{Name: "subject", Val: int64(i % 5)}, {Name: "stock", Val: 10}, {Name: "sales", Val: int64(i)}}})
	}
}

func TestSelectFilters(t *testing.T) {
	e := newEnv()
	item := e.db.CreateTable("item", EngineMyISAM)
	loadItems(item, 100)
	var got []Row
	e.go_("q", func(pr *profiler.Probe, th *vclock.Thread) {
		got = e.db.Select(pr, item, func(r Row) bool { return r.Attr("subject") == 2 }, SelectOpts{})
	})
	e.s.Run()
	e.s.Shutdown()
	if len(got) != 20 {
		t.Fatalf("rows = %d, want 20", len(got))
	}
}

func TestSelectSortAndLimit(t *testing.T) {
	e := newEnv()
	item := e.db.CreateTable("item", EngineMyISAM)
	loadItems(item, 50)
	var got []Row
	e.go_("q", func(pr *profiler.Probe, th *vclock.Thread) {
		got = e.db.Select(pr, item, nil, SelectOpts{SortBy: "sales", Limit: 3})
	})
	e.s.Run()
	e.s.Shutdown()
	if len(got) != 3 || got[0].Attr("sales") != 49 || got[2].Attr("sales") != 47 {
		t.Fatalf("top rows = %+v", got)
	}
}

func TestLookupAndUpdate(t *testing.T) {
	e := newEnv()
	item := e.db.CreateTable("item", EngineInnoDB)
	loadItems(item, 10)
	e.go_("q", func(pr *profiler.Probe, th *vclock.Thread) {
		if ok := e.db.Update(pr, item, 7, func(r *Row) { r.SetAttr("stock", 99) }); !ok {
			t.Error("update missed row")
		}
		r, ok := e.db.Lookup(pr, item, 7)
		if !ok || r.Attr("stock") != 99 {
			t.Errorf("lookup after update: %+v %v", r, ok)
		}
		if _, ok := e.db.Lookup(pr, item, 12345); ok {
			t.Error("lookup of missing id succeeded")
		}
		if ok := e.db.Update(pr, item, 999, func(*Row) {}); ok {
			t.Error("update of missing id succeeded")
		}
	})
	e.s.Run()
	e.s.Shutdown()
}

func TestInsert(t *testing.T) {
	e := newEnv()
	tab := e.db.CreateTable("orders", EngineInnoDB)
	e.go_("q", func(pr *profiler.Probe, th *vclock.Thread) {
		e.db.Insert(pr, tab, Row{ID: 1, Attrs: []Attr{{Name: "total", Val: 5}}})
	})
	e.s.Run()
	e.s.Shutdown()
	if tab.Len() != 1 {
		t.Fatalf("len = %d", tab.Len())
	}
}

func TestMyISAMWriterBlocksReaders(t *testing.T) {
	// A long MyISAM update must serialize a concurrent reader.
	e := newEnv()
	e.db.Cost.UpdateCost = 50 * vclock.Millisecond
	item := e.db.CreateTable("item", EngineMyISAM)
	loadItems(item, 10)
	var readerDone vclock.Time
	e.go_("writer", func(pr *profiler.Probe, th *vclock.Thread) {
		e.db.Update(pr, item, 1, func(r *Row) {})
	})
	e.goAt(vclock.Time(vclock.Millisecond), "reader", func(pr *profiler.Probe, th *vclock.Thread) {
		e.db.Lookup(pr, item, 2)
		readerDone = th.Now()
	})
	e.s.Run()
	e.s.Shutdown()
	if readerDone < vclock.Time(50*vclock.Millisecond) {
		t.Fatalf("reader finished at %v, before writer released the table lock", readerDone)
	}
}

func TestInnoDBReadersUnblocked(t *testing.T) {
	// Same scenario with InnoDB: the reader must not wait for the writer.
	e := newEnv()
	e.db.Cost.UpdateCost = 50 * vclock.Millisecond
	item := e.db.CreateTable("item", EngineInnoDB)
	loadItems(item, 10)
	var readerDone vclock.Time
	e.go_("writer", func(pr *profiler.Probe, th *vclock.Thread) {
		e.db.Update(pr, item, 1, func(r *Row) {})
	})
	e.goAt(vclock.Time(vclock.Millisecond), "reader", func(pr *profiler.Probe, th *vclock.Thread) {
		e.db.Lookup(pr, item, 2)
		readerDone = th.Now()
	})
	e.s.Run()
	e.s.Shutdown()
	// Reader needs only its own lookup (plus CPU queueing behind the
	// writer's CPU demand on the single core — so give it a bound well
	// under the lock-serialized 50ms+).
	if readerDone >= vclock.Time(50*vclock.Millisecond) {
		t.Fatalf("InnoDB reader waited for the writer: done at %v", readerDone)
	}
}

func TestInnoDBRowLocksIndependent(t *testing.T) {
	// Two writers on different rows proceed concurrently; on the same row
	// they serialize.
	e := newEnv()
	e.cpu = e.s.NewCPU("cpu4", 4)
	e.db.CPU = e.cpu
	e.db.Cost.UpdateCost = 20 * vclock.Millisecond
	item := e.db.CreateTable("item", EngineInnoDB)
	loadItems(item, 10)
	var t1, t2, t3 vclock.Time
	e.go_("w1", func(pr *profiler.Probe, th *vclock.Thread) {
		e.db.Update(pr, item, 1, func(r *Row) {})
		t1 = th.Now()
	})
	e.go_("w2", func(pr *profiler.Probe, th *vclock.Thread) {
		e.db.Update(pr, item, 2, func(r *Row) {})
		t2 = th.Now()
	})
	e.go_("w3", func(pr *profiler.Probe, th *vclock.Thread) {
		e.db.Update(pr, item, 1, func(r *Row) {}) // same row as w1
		t3 = th.Now()
	})
	e.s.Run()
	e.s.Shutdown()
	if t1 != t2 {
		t.Fatalf("different-row writers should be concurrent: %v vs %v", t1, t2)
	}
	if t3 <= t1 {
		t.Fatalf("same-row writer should serialize: w1=%v w3=%v", t1, t3)
	}
}

func TestAlterEngineSwitchesLocking(t *testing.T) {
	e := newEnv()
	e.db.Cost.UpdateCost = 50 * vclock.Millisecond
	item := e.db.CreateTable("item", EngineMyISAM)
	loadItems(item, 10)
	item.AlterEngine(EngineInnoDB)
	if item.Engine != EngineInnoDB {
		t.Fatal("engine not switched")
	}
	var readerDone vclock.Time
	e.go_("writer", func(pr *profiler.Probe, th *vclock.Thread) {
		e.db.Update(pr, item, 1, func(r *Row) {})
	})
	e.goAt(vclock.Time(vclock.Millisecond), "reader", func(pr *profiler.Probe, th *vclock.Thread) {
		e.db.Lookup(pr, item, 2)
		readerDone = th.Now()
	})
	e.s.Run()
	e.s.Shutdown()
	if readerDone >= vclock.Time(50*vclock.Millisecond) {
		t.Fatal("reader still blocked after engine switch")
	}
}

func TestProfilerSeesQueryFrames(t *testing.T) {
	e := newEnv()
	item := e.db.CreateTable("item", EngineMyISAM)
	loadItems(item, 2000)
	e.go_("q", func(pr *profiler.Probe, th *vclock.Thread) {
		defer pr.Exit(pr.Enter("dispatch_query"))
		e.db.Select(pr, item, nil, SelectOpts{SortBy: "sales"})
	})
	e.s.Run()
	e.s.Shutdown()
	m := e.p.Merged()
	if m.Find("dispatch_query", "select_item", "sort_rows") == nil {
		t.Fatal("sort frame missing from profile")
	}
	if m.Total() == 0 {
		t.Fatal("no samples collected")
	}
}

func TestTempSortCharges(t *testing.T) {
	e := newEnv()
	e.go_("q", func(pr *profiler.Probe, th *vclock.Thread) {
		e.db.TempSort(pr, 10000)
	})
	e.s.Run()
	e.s.Shutdown()
	if e.cpu.Busy() == 0 {
		t.Fatal("TempSort consumed no CPU")
	}
}

func TestMissingTablePanics(t *testing.T) {
	e := newEnv()
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	e.db.Table("nope")
}
