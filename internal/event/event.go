// Package event is a libevent-style event notification library augmented
// for transactional profiling, following Figure 4 of the paper (§4.1).
//
// Every event carries the transaction context (ev_tran_ctxt) captured when
// it was created; the loop computes the current transaction context before
// invoking a handler by appending the handler to the event's context with
// the §4.1 sequence rules (consecutive-collapse, loop pruning), and
// exposes it so the profiler annotates samples with it. An event-driven
// program written against this library needs no modification at all to be
// transactionally profiled.
//
// The library is transport-agnostic: Dispatch performs the context
// bookkeeping for one delivered event, and the built-in ready list
// (Ready/RunOne) serves programs that do not bring their own scheduler.
package event

import (
	"fmt"

	"whodunit/internal/tranctx"
)

// Handler is a named event handler. Names identify stages in transaction
// contexts (httpAccept, clientReadRequest, ...).
type Handler struct {
	Name string
	Fn   func(l *Loop, ev *Event)
}

// Event is a continuation: a handler to run plus the transaction context
// captured when the continuation was produced (ev_tran_ctxt in Figure 4).
type Event struct {
	Handler *Handler
	Ctxt    *tranctx.Ctxt
	Data    any
}

// Loop is the event loop. Its Curr tracks curr_tran_ctxt from Figure 4.
type Loop struct {
	// Stage names the event-driven program (used in handler hops).
	Stage string

	// OnDispatch, if set, is called with the freshly computed transaction
	// context before each handler runs; the profiler hooks in here.
	OnDispatch func(curr *tranctx.Ctxt)

	table      *tranctx.Table
	curr       *tranctx.Ctxt
	ready      []*Event
	dispatched int64
}

// NewLoop returns an event loop for the named stage interning contexts in
// table. The current context starts at the root (the initial handler's
// context is simply the call path, §4.1).
func NewLoop(stage string, table *tranctx.Table) *Loop {
	return &Loop{Stage: stage, table: table, curr: table.Root()}
}

// Curr returns the current transaction context (curr_tran_ctxt).
func (l *Loop) Curr() *tranctx.Ctxt { return l.curr }

// Dispatched reports how many events have been dispatched.
func (l *Loop) Dispatched() int64 { return l.dispatched }

// NewEvent creates a continuation for h, capturing the loop's current
// transaction context — Figure 4's event_add, line 12.
func (l *Loop) NewEvent(h *Handler, data any) *Event {
	if h == nil {
		panic("event: nil handler")
	}
	return &Event{Handler: h, Ctxt: l.curr, Data: data}
}

// Ready appends ev to the loop's internal ready list (the event has been
// triggered). Programs driving the loop through an external scheduler use
// Dispatch directly instead.
func (l *Loop) Ready(ev *Event) { l.ready = append(l.ready, ev) }

// Pending reports the number of triggered-but-undispatched events.
func (l *Loop) Pending() int { return len(l.ready) }

// RunOne dispatches the oldest ready event; it reports false if none is
// pending.
func (l *Loop) RunOne() bool {
	if len(l.ready) == 0 {
		return false
	}
	ev := l.ready[0]
	l.ready = l.ready[1:]
	l.Dispatch(ev)
	return true
}

// Run dispatches ready events until the list drains.
func (l *Loop) Run() {
	for l.RunOne() {
	}
}

// Dispatch computes the current transaction context for ev — the event's
// captured context extended with its handler under the §4.1 collapse and
// loop-pruning rules (Figure 4, lines 5-6) — then invokes the handler.
func (l *Loop) Dispatch(ev *Event) {
	if ev == nil || ev.Handler == nil {
		panic("event: dispatch of nil event or handler")
	}
	base := ev.Ctxt
	if base == nil {
		base = l.table.Root()
	}
	l.curr = base.Append(tranctx.HandlerHop(l.Stage, ev.Handler.Name))
	l.dispatched++
	if l.OnDispatch != nil {
		l.OnDispatch(l.curr)
	}
	ev.Handler.Fn(l, ev)
}

// String describes the loop state briefly.
func (l *Loop) String() string {
	return fmt.Sprintf("event.Loop(%s, pending=%d, curr=%s)", l.Stage, len(l.ready), l.curr)
}
