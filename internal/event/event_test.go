package event

import (
	"reflect"
	"testing"

	"whodunit/internal/tranctx"
)

func TestInitialHandlerContextIsItself(t *testing.T) {
	tb := tranctx.NewTable()
	l := NewLoop("srv", tb)
	var got []string
	h := &Handler{Name: "accept", Fn: func(l *Loop, ev *Event) {
		got = l.Curr().Labels()
	}}
	l.Ready(&Event{Handler: h, Ctxt: tb.Root()})
	l.Run()
	if !reflect.DeepEqual(got, []string{"accept"}) {
		t.Fatalf("ctxt = %v, want [accept]", got)
	}
}

func TestContinuationInheritsContext(t *testing.T) {
	// accept creates a read continuation; read's context must be
	// [accept, read] (§4.1).
	tb := tranctx.NewTable()
	l := NewLoop("srv", tb)
	var readCtxt []string
	read := &Handler{Name: "read", Fn: func(l *Loop, ev *Event) {
		readCtxt = l.Curr().Labels()
	}}
	accept := &Handler{Name: "accept", Fn: func(l *Loop, ev *Event) {
		l.Ready(l.NewEvent(read, nil))
	}}
	l.Ready(&Event{Handler: accept, Ctxt: tb.Root()})
	l.Run()
	if !reflect.DeepEqual(readCtxt, []string{"accept", "read"}) {
		t.Fatalf("read ctxt = %v", readCtxt)
	}
}

func TestRepeatedHandlerCollapses(t *testing.T) {
	// A read handler rescheduling itself (partial reads) keeps the context
	// at [accept, read], not [accept, read, read, ...].
	tb := tranctx.NewTable()
	l := NewLoop("srv", tb)
	depths := []int{}
	var read *Handler
	n := 0
	read = &Handler{Name: "read", Fn: func(l *Loop, ev *Event) {
		depths = append(depths, l.Curr().Depth())
		if n++; n < 4 {
			l.Ready(l.NewEvent(read, nil))
		}
	}}
	accept := &Handler{Name: "accept", Fn: func(l *Loop, ev *Event) {
		l.Ready(l.NewEvent(read, nil))
	}}
	l.Ready(&Event{Handler: accept, Ctxt: tb.Root()})
	l.Run()
	for _, d := range depths {
		if d != 2 {
			t.Fatalf("depths = %v, want all 2", depths)
		}
	}
}

func TestPersistentConnectionLoopPruned(t *testing.T) {
	// write -> read -> write -> read ... (persistent connection): context
	// stays bounded and prunes back to [accept, read] (§4.1).
	tb := tranctx.NewTable()
	l := NewLoop("srv", tb)
	var lastRead []string
	rounds := 0
	var read, write *Handler
	read = &Handler{Name: "read", Fn: func(l *Loop, ev *Event) {
		lastRead = l.Curr().Labels()
		l.Ready(l.NewEvent(write, nil))
	}}
	write = &Handler{Name: "write", Fn: func(l *Loop, ev *Event) {
		if rounds++; rounds < 5 {
			l.Ready(l.NewEvent(read, nil))
		}
	}}
	accept := &Handler{Name: "accept", Fn: func(l *Loop, ev *Event) {
		l.Ready(l.NewEvent(read, nil))
	}}
	l.Ready(&Event{Handler: accept, Ctxt: tb.Root()})
	l.Run()
	if !reflect.DeepEqual(lastRead, []string{"accept", "read"}) {
		t.Fatalf("read ctxt after persistent rounds = %v", lastRead)
	}
	if l.Dispatched() != 1+5+5 { // accept + 5 reads + 5 writes
		t.Fatalf("dispatched = %d", l.Dispatched())
	}
}

func TestDistinctPathsGetDistinctContexts(t *testing.T) {
	// DNS-server example (§4.1): hit and miss handlers establish separate
	// transaction contexts.
	tb := tranctx.NewTable()
	l := NewLoop("dns", tb)
	ctxts := map[string]string{}
	record := func(name string) *Handler {
		return &Handler{Name: name, Fn: func(l *Loop, ev *Event) {
			ctxts[name] = l.Curr().String()
		}}
	}
	hit, miss := record("cache_hit"), record("cache_miss")
	lookup := &Handler{Name: "lookup", Fn: func(l *Loop, ev *Event) {
		if ev.Data.(bool) {
			l.Ready(l.NewEvent(hit, nil))
		} else {
			l.Ready(l.NewEvent(miss, nil))
		}
	}}
	l.Ready(&Event{Handler: lookup, Ctxt: tb.Root(), Data: true})
	l.Run()
	l.Ready(&Event{Handler: lookup, Ctxt: tb.Root(), Data: false})
	l.Run()
	if ctxts["cache_hit"] == ctxts["cache_miss"] {
		t.Fatal("hit and miss should have distinct contexts")
	}
	if ctxts["cache_hit"] != "dns@lookup | dns@cache_hit" {
		t.Fatalf("hit ctxt = %q", ctxts["cache_hit"])
	}
}

func TestOnDispatchHookSeesContext(t *testing.T) {
	tb := tranctx.NewTable()
	l := NewLoop("srv", tb)
	var seen []string
	l.OnDispatch = func(c *tranctx.Ctxt) { seen = append(seen, c.String()) }
	h := &Handler{Name: "h", Fn: func(l *Loop, ev *Event) {}}
	l.Ready(&Event{Handler: h, Ctxt: tb.Root()})
	l.Run()
	if len(seen) != 1 || seen[0] != "srv@h" {
		t.Fatalf("hook saw %v", seen)
	}
}

func TestRunOneOrderFIFO(t *testing.T) {
	tb := tranctx.NewTable()
	l := NewLoop("srv", tb)
	var order []string
	mk := func(n string) *Event {
		return &Event{Handler: &Handler{Name: n, Fn: func(l *Loop, ev *Event) {
			order = append(order, n)
		}}, Ctxt: tb.Root()}
	}
	l.Ready(mk("a"))
	l.Ready(mk("b"))
	if !l.RunOne() || !l.RunOne() || l.RunOne() {
		t.Fatal("RunOne sequencing wrong")
	}
	if !reflect.DeepEqual(order, []string{"a", "b"}) {
		t.Fatalf("order = %v", order)
	}
}

func TestNilEventPanics(t *testing.T) {
	tb := tranctx.NewTable()
	l := NewLoop("srv", tb)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	l.Dispatch(nil)
}

// TestNestedEnqueueOrdering pins global FIFO ordering across handlers
// that enqueue continuations while the loop drains: events dispatch in
// exactly the order they became ready, even when readiness interleaves
// with dispatch (the §4.1 loop's queue discipline).
func TestNestedEnqueueOrdering(t *testing.T) {
	table := tranctx.NewTable()
	l := NewLoop("srv", table)

	var order []string
	record := func(name string) *Handler {
		return &Handler{Name: name, Fn: func(l *Loop, ev *Event) {
			order = append(order, name)
		}}
	}
	hLeaf1, hLeaf2 := record("leaf1"), record("leaf2")
	hMid := &Handler{Name: "mid", Fn: func(l *Loop, ev *Event) {
		order = append(order, "mid")
		l.Ready(l.NewEvent(hLeaf2, nil))
	}}
	hRoot := &Handler{Name: "root", Fn: func(l *Loop, ev *Event) {
		order = append(order, "root")
		l.Ready(l.NewEvent(hMid, nil))
		l.Ready(l.NewEvent(hLeaf1, nil))
	}}

	l.Ready(l.NewEvent(hRoot, nil))
	l.Run()

	// root enqueues mid then leaf1; mid (dispatched before leaf1 — FIFO)
	// enqueues leaf2 behind leaf1.
	want := []string{"root", "mid", "leaf1", "leaf2"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if l.Dispatched() != 4 {
		t.Fatalf("dispatched = %d, want 4", l.Dispatched())
	}
}
