package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"whodunit"
)

func TestGenDeterministic(t *testing.T) {
	cfg := CacheTrace()
	a, b := Gen(cfg), Gen(cfg)
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Fatal("two Gen runs at the same seed differ")
	}
	cfg.Seed = 2
	if reflect.DeepEqual(a.Events, Gen(cfg).Events) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenShape(t *testing.T) {
	cfg := CacheTrace()
	cfg.Events = 5000
	tr := Gen(cfg)
	if len(tr.Events) != cfg.Events || tr.Lost != 0 {
		t.Fatalf("got %d events, lost %d", len(tr.Events), tr.Lost)
	}
	gets, prev := 0, whodunit.Duration(0)
	keys := map[string]int{}
	for _, ev := range tr.Events {
		if !ev.valid(prev) {
			t.Fatalf("invalid event %+v after t=%d", ev, prev)
		}
		prev = ev.T
		if ev.Op == "get" {
			gets++
			if ev.Size != cfg.GetSize {
				t.Fatalf("get size %d, want %d", ev.Size, cfg.GetSize)
			}
		} else if ev.Size < cfg.MinSize || ev.Size > cfg.MaxSize {
			t.Fatalf("set size %d outside [%d, %d]", ev.Size, cfg.MinSize, cfg.MaxSize)
		}
		keys[ev.Key]++
	}
	frac := float64(gets) / float64(cfg.Events)
	if frac < cfg.ReadFrac-0.05 || frac > cfg.ReadFrac+0.05 {
		t.Fatalf("read fraction %.3f far from configured %.2f", frac, cfg.ReadFrac)
	}
	// Zipf skew: the most popular key should dwarf the uniform share.
	max := 0
	for _, n := range keys {
		if n > max {
			max = n
		}
	}
	if uniform := cfg.Events / cfg.Keys; max < 4*uniform {
		t.Fatalf("top key has %d events; expected heavy skew over uniform share %d", max, uniform)
	}
}

func TestGenHotKeys(t *testing.T) {
	cfg := CacheTrace()
	cfg.Events = 4000
	cfg.HotKeys = 3
	cfg.HotFrac = 0.6
	tr := Gen(cfg)
	hot := 0
	for _, ev := range tr.Events {
		if ev.Key == "k0000" || ev.Key == "k0001" || ev.Key == "k0002" {
			hot++
		}
	}
	if frac := float64(hot) / float64(cfg.Events); frac < 0.55 {
		t.Fatalf("hot keys drew %.3f of events, want >= 0.55", frac)
	}
}

func TestGenBursts(t *testing.T) {
	cfg := MetaKV()
	cfg.Events = 6000
	tr := Gen(cfg)
	inBurst, outBurst := 0, 0
	for _, ev := range tr.Events {
		if ev.T%cfg.BurstEvery < cfg.BurstLen {
			inBurst++
		} else {
			outBurst++
		}
	}
	// Burst windows cover 20% of time; with a 4x rate they should hold
	// roughly 4*0.2/(4*0.2+0.8) = 50% of events.
	if frac := float64(inBurst) / float64(inBurst+outBurst); frac < 0.35 {
		t.Fatalf("burst windows hold only %.3f of events; bursts not happening", frac)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	cfg := MetaKV()
	cfg.Events = 300
	tr := Gen(cfg)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Lost != 0 {
		t.Fatalf("round trip lost %d events", got.Lost)
	}
	if !reflect.DeepEqual(got.Events, tr.Events) {
		t.Fatal("round-tripped events differ")
	}
}

func TestReadSalvagesTruncation(t *testing.T) {
	cfg := CacheTrace()
	cfg.Events = 100
	tr := Gen(cfg)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	// Cut the stream mid-way through a line: the salvaged prefix holds
	// every complete valid record, the header count accounts the rest.
	full := buf.Bytes()
	cut := full[:len(full)*2/3]
	got, err := Read(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) == 0 || len(got.Events) >= 100 {
		t.Fatalf("salvaged %d of 100 events from a 2/3 truncation", len(got.Events))
	}
	if got.Lost != 100-len(got.Events) {
		t.Fatalf("lost %d, want %d", got.Lost, 100-len(got.Events))
	}
	if !reflect.DeepEqual(got.Events, tr.Events[:len(got.Events)]) {
		t.Fatal("salvaged prefix is not a prefix of the original")
	}
}

func TestReadStopsAtCorruptLine(t *testing.T) {
	lines := []string{
		`{"format":"whodunit-trace/v1","events":4}`,
		`{"t":10,"stream":0,"op":"get","key":"a","size":1}`,
		`{"t":5,"stream":0,"op":"get","key":"b","size":1}`, // time goes backwards
		`{"t":20,"stream":0,"op":"get","key":"c","size":1}`,
	}
	got, err := Read(strings.NewReader(strings.Join(lines, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != 1 || got.Lost != 3 {
		t.Fatalf("kept %d lost %d; want 1 kept (the rest after the corrupt line is lost: 3)", len(got.Events), got.Lost)
	}
}

func TestReadHeaderErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"garbage":      "not json at all",
		"wrong format": `{"format":"something-else/v9"}`,
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s input: want an error, got none", name)
		}
	}
}

// TestReplayBitReproducible drives the same trace through two identical
// apps and pins the reports bit-for-bit — the replay acceptance bar.
func TestReplayBitReproducible(t *testing.T) {
	cfg := CacheTrace()
	cfg.Events = 200
	tr := Gen(cfg)
	run := func() []byte {
		app := whodunit.NewApp("replay", whodunit.WithMode(whodunit.ModeWhodunit), whodunit.WithSeed(9))
		st := app.Stage("sink")
		q := app.NewQueue("in")
		done := 0
		st.Go("worker", func(th *whodunit.Thread, pr *whodunit.Probe) {
			for {
				ev := q.Get(th).(Event)
				st.BeginTxn(pr, "ingest_"+ev.Op)
				pr.Compute(whodunit.Duration(50000 + ev.Size))
				done++
			}
		})
		Replay(app, tr, func(ev Event) { q.Put(ev) })
		rep := app.RunUntil(func() bool { return done >= len(tr.Events) })
		var buf bytes.Buffer
		if err := rep.JSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("two replays of the same trace diverge")
	}
}

// TestOpenLoopMatchesGen: the open-loop stream is Gen's sequence
// continued — the first n injected events equal Gen(cfg).Events[:n].
func TestOpenLoopMatchesGen(t *testing.T) {
	cfg := MetaKV()
	cfg.Events = 150
	want := Gen(cfg).Events

	app := whodunit.NewApp("openloop", whodunit.WithSeed(1))
	var got []Event
	OpenLoop(app, cfg, func(ev Event) { got = append(got, ev) })
	app.RunUntil(func() bool { return len(got) >= len(want) })
	if !reflect.DeepEqual(got[:len(want)], want) {
		t.Fatal("open-loop stream diverges from Gen at the same config")
	}
}

func TestGenConfigValidation(t *testing.T) {
	bad := []func(*GenConfig){
		func(c *GenConfig) { c.Keys = 0 },
		func(c *GenConfig) { c.Streams = 0 },
		func(c *GenConfig) { c.MeanGap = 0 },
	}
	for i, mutate := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: bad config did not panic", i)
				}
			}()
			cfg := CacheTrace()
			mutate(&cfg)
			Gen(cfg)
		}()
	}
}
