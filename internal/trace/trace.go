// Package trace is the deterministic trace-replay workload engine: a
// JSONL request-trace format (one event per line — virtual timestamp,
// stream, op, key, size), a seeded synthetic generator producing
// cache-trace and meta-kv-trace shapes (Zipfian key skew, read/write
// mix, burst arrivals), a loader that salvages truncated traces the way
// stitch.ReadDumpStream salvages dump streams, and replay drivers that
// feed open-loop injection bit-reproducibly at a fixed seed.
//
// A trace file is a header line followed by one event per line:
//
//	{"format":"whodunit-trace/v1","events":3}
//	{"t":151,"stream":2,"op":"get","key":"k0007","size":96}
//	{"t":1423,"stream":0,"op":"set","key":"k0021","size":2048}
//	{"t":1423,"stream":5,"op":"get","key":"k0007","size":96}
//
// Timestamps are virtual nanoseconds from the start of the trace and
// must be non-decreasing; the header's event count lets the loader
// report how much of a truncated trace was lost.
package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"whodunit"
	"whodunit/internal/vclock"
)

// Format is the header format tag of trace files this package writes.
const Format = "whodunit-trace/v1"

// Event is one request record.
type Event struct {
	T      whodunit.Duration `json:"t"` // arrival, virtual ns from trace start
	Stream int               `json:"stream"`
	Op     string            `json:"op"`
	Key    string            `json:"key"`
	Size   int64             `json:"size"` // request payload bytes
}

// valid reports whether ev is a well-formed successor of an event at
// prev: fields in range and time non-decreasing.
func (ev Event) valid(prev whodunit.Duration) bool {
	return ev.Op != "" && ev.T >= prev && ev.T >= 0 && ev.Stream >= 0 && ev.Size >= 0
}

// Trace is a loaded or generated request trace. Lost counts trailing
// records a salvaging Read could not recover (0 for generated traces).
type Trace struct {
	Events []Event
	Lost   int
}

// header is the first line of a trace file.
type header struct {
	Format string `json:"format"`
	Events int    `json:"events"`
}

// Write encodes tr onto w in the JSONL trace format.
func Write(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(header{Format: Format, Events: len(tr.Events)}); err != nil {
		return err
	}
	for i := range tr.Events {
		if err := enc.Encode(&tr.Events[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read decodes a JSONL trace from r, salvaging what it can: a missing
// or malformed header is an error (there is nothing to salvage), but
// once the header is in, events are kept up to the first corrupt or
// out-of-order line and everything after it — plus any events the
// header promised that never arrived — is counted in Trace.Lost. Read
// never panics on malformed input (see FuzzReadTrace).
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("trace: read header: %w", err)
		}
		return nil, errors.New("trace: empty input (missing header)")
	}
	var hdr header
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("trace: bad header: %w", err)
	}
	if hdr.Format != Format {
		return nil, fmt.Errorf("trace: unsupported format %q (want %q)", hdr.Format, Format)
	}
	tr := &Trace{}
	prev := whodunit.Duration(0)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil || !ev.valid(prev) {
			// Corrupt record: keep the salvaged prefix, count the rest.
			tr.Lost++
			for sc.Scan() {
				tr.Lost++
			}
			break
		}
		tr.Events = append(tr.Events, ev)
		prev = ev.T
	}
	if sc.Err() != nil {
		// A line the scanner could not finish (oversized or IO error)
		// is one more lost record.
		tr.Lost++
	}
	if hdr.Events > len(tr.Events)+tr.Lost {
		tr.Lost = hdr.Events - len(tr.Events)
	}
	return tr, nil
}

// GenConfig parameterises the synthetic generator. The zero value is
// not runnable — start from CacheTrace or MetaKV and override.
type GenConfig struct {
	Seed    uint64
	Events  int // ignored by OpenLoop
	Streams int
	Keys    int     // distinct keys
	ZipfS   float64 // Zipf skew over the key space (<=0: uniform)

	// HotKeys/HotFrac concentrate extra mass: with probability HotFrac
	// the key is drawn uniformly from the first HotKeys keys instead of
	// the Zipf tail — the hot-key scenarios' skew knob.
	HotKeys int
	HotFrac float64

	ReadFrac float64 // fraction of "get" events (the rest are "set")

	MeanGap whodunit.Duration // mean inter-arrival gap (exponential)
	// Burst arrivals: inside every [k*BurstEvery, k*BurstEvery+BurstLen)
	// window the mean gap shrinks by BurstFactor (>1). BurstEvery 0
	// disables bursts.
	BurstEvery  whodunit.Duration
	BurstLen    whodunit.Duration
	BurstFactor float64

	GetSize   int64   // request payload of a get
	MinSize   int64   // set value sizes: Pareto(MinSize, MaxSize, SizeAlpha)
	MaxSize   int64
	SizeAlpha float64
}

// CacheTrace is the read-heavy cache-trace shape: 95/5 get/set over a
// moderately skewed key space at a steady arrival rate.
func CacheTrace() GenConfig {
	return GenConfig{
		Seed:     1,
		Events:   2000,
		Streams:  8,
		Keys:     512,
		ZipfS:    0.9,
		ReadFrac: 0.95,
		MeanGap:  3 * whodunit.Millisecond,
		GetSize:  96,
		MinSize:  512,
		MaxSize:  64 << 10,
		SizeAlpha: 1.3,
	}
}

// MetaKV is the metadata-KV shape: smaller values, a more write-heavy
// mix, a sharper key skew, and bursty arrivals.
func MetaKV() GenConfig {
	return GenConfig{
		Seed:        1,
		Events:      2000,
		Streams:     4,
		Keys:        256,
		ZipfS:       1.1,
		ReadFrac:    0.7,
		MeanGap:     2 * whodunit.Millisecond,
		BurstEvery:  400 * whodunit.Millisecond,
		BurstLen:    80 * whodunit.Millisecond,
		BurstFactor: 4,
		GetSize:     64,
		MinSize:     128,
		MaxSize:     4096,
		SizeAlpha:   1.1,
	}
}

// gen is the generator state: one RNG stream, so the event sequence is
// a pure function of the config.
type gen struct {
	cfg  GenConfig
	rng  *vclock.RNG
	zipf *vclock.Zipf
	t    whodunit.Duration
}

func newGen(cfg GenConfig) *gen {
	if cfg.Keys < 1 {
		panic(fmt.Sprintf("trace: GenConfig.Keys must be >= 1 (got %d)", cfg.Keys))
	}
	if cfg.Streams < 1 {
		panic(fmt.Sprintf("trace: GenConfig.Streams must be >= 1 (got %d)", cfg.Streams))
	}
	if cfg.MeanGap <= 0 {
		panic(fmt.Sprintf("trace: GenConfig.MeanGap must be positive (got %v)", cfg.MeanGap))
	}
	g := &gen{cfg: cfg, rng: vclock.NewRNG(cfg.Seed)}
	if cfg.ZipfS > 0 {
		g.zipf = vclock.NewZipfTable(cfg.Keys, cfg.ZipfS)
	}
	return g
}

// next draws the following event. Draw order is fixed (gap, hot, key,
// op, size, stream) — it is part of the bit-reproducibility contract.
func (g *gen) next() Event {
	gap := g.cfg.MeanGap
	if g.cfg.BurstEvery > 0 && g.cfg.BurstFactor > 1 && g.t%g.cfg.BurstEvery < g.cfg.BurstLen {
		gap = whodunit.Duration(float64(gap) / g.cfg.BurstFactor)
	}
	g.t += g.rng.Exp(gap)

	var id int
	if g.cfg.HotKeys > 0 && g.rng.Float64() < g.cfg.HotFrac {
		id = g.rng.Intn(g.cfg.HotKeys)
	} else if g.zipf != nil {
		id = g.zipf.Sample(g.rng)
	} else {
		id = g.rng.Intn(g.cfg.Keys)
	}

	op, size := "set", int64(0)
	if g.rng.Float64() < g.cfg.ReadFrac {
		op, size = "get", g.cfg.GetSize
	} else {
		size = int64(g.rng.Pareto(float64(g.cfg.MinSize), float64(g.cfg.MaxSize), g.cfg.SizeAlpha))
	}
	return Event{
		T:      g.t,
		Stream: g.rng.Intn(g.cfg.Streams),
		Op:     op,
		Key:    fmt.Sprintf("k%04d", id),
		Size:   size,
	}
}

// Gen produces cfg.Events synthetic events — the same sequence OpenLoop
// would inject, materialised.
func Gen(cfg GenConfig) *Trace {
	g := newGen(cfg)
	tr := &Trace{Events: make([]Event, cfg.Events)}
	for i := range tr.Events {
		tr.Events[i] = g.next()
	}
	return tr
}
