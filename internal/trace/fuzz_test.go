package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzReadTrace: malformed and truncated inputs must salvage-or-error,
// never panic; and whatever Read salvages must survive a Write/Read
// round trip unchanged (re-reading a salvaged trace loses nothing).
func FuzzReadTrace(f *testing.F) {
	var full bytes.Buffer
	cfg := CacheTrace()
	cfg.Events = 20
	if err := Write(&full, Gen(cfg)); err != nil {
		f.Fatal(err)
	}
	f.Add(full.Bytes())
	f.Add(full.Bytes()[:full.Len()*2/3]) // truncated mid-line
	f.Add([]byte(""))
	f.Add([]byte(`{"format":"whodunit-trace/v1","events":2}`))
	f.Add([]byte(`{"format":"whodunit-trace/v1","events":1}` + "\n" + `{"t":-5,"op":"get"}`))
	f.Add([]byte(`{"format":"whodunit-trace/v1"}` + "\n" + `{"t":1,"op":"get","key":"k","size":1}` + "\nnot json\n" + `{"t":2,"op":"get","key":"k","size":1}`))
	f.Add([]byte("garbage header\n{}"))
	f.Add([]byte(`{"format":"other/v1","events":0}`))
	f.Add([]byte(`{"format":"whodunit-trace/v1","events":99999}` + "\n" + `{"t":1,"stream":0,"op":"set","key":"x","size":0}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Write(&out, tr); err != nil {
			t.Fatalf("re-encoding a salvaged trace failed: %v", err)
		}
		again, err := Read(&out)
		if err != nil {
			t.Fatalf("re-reading a salvaged trace failed: %v", err)
		}
		if again.Lost != 0 {
			t.Fatalf("re-read lost %d events of a complete re-encoding", again.Lost)
		}
		if len(tr.Events) != len(again.Events) || (len(tr.Events) > 0 && !reflect.DeepEqual(tr.Events, again.Events)) {
			t.Fatalf("round trip changed the salvaged events (%d vs %d)", len(tr.Events), len(again.Events))
		}
	})
}
