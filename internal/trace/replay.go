package trace

import "whodunit"

// Replay schedules every event of tr onto the app's virtual clock,
// offset from the clock's current position: inject(ev) runs in
// scheduler context at now+ev.T. Events chain — each callback schedules
// the next — so the injection sequence interleaves deterministically
// with the app's own work and the run is bit-reproducible at a fixed
// seed. Call before App.Run/RunUntil; drive the app with a stop
// predicate (e.g. all events completed) since mesh worker loops never
// terminate on their own.
func Replay(app *whodunit.App, tr *Trace, inject func(ev Event)) {
	evs := tr.Events
	if len(evs) == 0 {
		return
	}
	sim := app.Sim()
	base := sim.Now()
	var step func(i int)
	step = func(i int) {
		inject(evs[i])
		if i+1 < len(evs) {
			sim.At(base.Add(evs[i+1].T), func() { step(i + 1) })
		}
	}
	sim.At(base.Add(evs[0].T), func() { step(0) })
}

// OpenLoop installs an endless arrival process drawing events from
// cfg's generator on the fly — the serving-scenario counterpart of
// Replay. The injected sequence is exactly Gen(cfg) continued forever
// (cfg.Events is ignored), so a bounded open-loop run and a finite
// replay of the same shape see identical workloads.
func OpenLoop(app *whodunit.App, cfg GenConfig, inject func(ev Event)) {
	g := newGen(cfg)
	sim := app.Sim()
	base := sim.Now()
	var step func(ev Event)
	step = func(ev Event) {
		inject(ev)
		next := g.next()
		sim.At(base.Add(next.T), func() { step(next) })
	}
	first := g.next()
	sim.At(base.Add(first.T), func() { step(first) })
}
