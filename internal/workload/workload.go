// Package workload generates the synthetic workloads driving the case
// studies: a web trace standing in for the Rice CS department trace used
// throughout §8-§9 (Zipf file popularity, heavy-tailed sizes, sessioned
// connections with a few requests each), and the TPC-W browsing mix with
// its fourteen interactions and exponential think times (§8.4).
//
// Everything is generated from explicit seeds so experiments are
// reproducible.
package workload

import (
	"whodunit/internal/par"
	"whodunit/internal/vclock"
)

// Request is one HTTP request: a file id and its size in bytes.
type Request struct {
	File int
	Size int64
}

// Connection is one client connection carrying a few requests
// (persistent connections, then closed — the pattern that makes Apache's
// listener push new work through shared memory, §9.2).
type Connection struct {
	ID   int
	Reqs []Request
}

// WebTrace is a generated web workload.
type WebTrace struct {
	Conns      []Connection
	Files      []int64 // size per file id
	TotalBytes int64
}

// WebConfig parameterises web trace generation.
type WebConfig struct {
	Seed      uint64
	NumFiles  int     // distinct files on the server
	NumConns  int     // connections in the trace
	MeanReqs  int     // mean requests per connection (geometric, >=1)
	ZipfS     float64 // popularity skew
	MinSize   int64   // bytes
	MaxSize   int64   // bytes
	SizeAlpha float64 // bounded-Pareto shape for file sizes
}

// DefaultWebConfig mimics a departmental web server trace: 2000 files,
// skewed popularity, mostly-small files with a heavy tail.
func DefaultWebConfig() WebConfig {
	return WebConfig{
		Seed:      42,
		NumFiles:  2000,
		NumConns:  600,
		MeanReqs:  4,
		ZipfS:     0.9,
		MinSize:   512,
		MaxSize:   2 << 20,
		SizeAlpha: 1.2,
	}
}

// genShard is the number of items one worker generates per grab.
const genShard = 256

// GenWeb generates a web trace from cfg. The draw sequence is the
// classic single-stream one — sizes for every file, then per connection
// a geometric request count followed by one Zipf draw per request — so
// the trace is bit-identical to the original sequential generator at any
// seed. Generation is still sharded across the par worker pool: the
// expensive draws (Pareto sizes, Zipf binary searches) consume a known
// number of stream positions, so a cheap sequential pre-pass records
// each connection's offset in the stream and every worker jumps there in
// O(1) with RNG.Skip.
func GenWeb(cfg WebConfig) *WebTrace {
	// File sizes: size i is draw i of the stream.
	sizes := make([]int64, cfg.NumFiles)
	par.Do((cfg.NumFiles+genShard-1)/genShard, func(s int) {
		lo, hi := s*genShard, (s+1)*genShard
		if hi > cfg.NumFiles {
			hi = cfg.NumFiles
		}
		rng := vclock.NewRNG(cfg.Seed)
		rng.Skip(uint64(lo))
		for i := lo; i < hi; i++ {
			sizes[i] = int64(rng.Pareto(float64(cfg.MinSize), float64(cfg.MaxSize), cfg.SizeAlpha))
		}
	})

	// Pre-pass: draw each connection's geometric request count (cheap)
	// and record where its Zipf draws start in the stream; skip past them.
	type connPlan struct {
		n         int
		zipfStart uint64
	}
	plans := make([]connPlan, cfg.NumConns)
	rng := vclock.NewRNG(cfg.Seed)
	rng.Skip(uint64(cfg.NumFiles))
	off := uint64(cfg.NumFiles)
	for c := range plans {
		// Geometric number of requests with the configured mean (same
		// draw-per-test shape as the original loop).
		n := 1
		for {
			off++
			if rng.Float64() <= 1.0/float64(cfg.MeanReqs) {
				break
			}
			n++
			if n >= 8*cfg.MeanReqs {
				break
			}
		}
		plans[c] = connPlan{n: n, zipfStart: off}
		rng.Skip(uint64(n))
		off += uint64(n)
	}

	// Requests: workers replay each connection's Zipf draws from its
	// recorded stream position.
	zipf := vclock.NewZipfTable(cfg.NumFiles, cfg.ZipfS) // shared read-only table
	tr := &WebTrace{Files: sizes, Conns: make([]Connection, cfg.NumConns)}
	par.Do((cfg.NumConns+genShard-1)/genShard, func(s int) {
		lo, hi := s*genShard, (s+1)*genShard
		if hi > cfg.NumConns {
			hi = cfg.NumConns
		}
		for c := lo; c < hi; c++ {
			crng := vclock.NewRNG(cfg.Seed)
			crng.Skip(plans[c].zipfStart)
			conn := Connection{ID: c, Reqs: make([]Request, plans[c].n)}
			for r := range conn.Reqs {
				f := zipf.Sample(crng)
				conn.Reqs[r] = Request{File: f, Size: sizes[f]}
			}
			tr.Conns[c] = conn
		}
	})
	// Deterministic index-order total (int64 addition commutes, but keep
	// the reduction out of the parallel phase anyway).
	for _, conn := range tr.Conns {
		for _, r := range conn.Reqs {
			tr.TotalBytes += r.Size
		}
	}
	return tr
}

// The fourteen TPC-W interactions (§8.4, Table 1).
const (
	AdminConfirm         = "AdminConfirm"
	AdminRequest         = "AdminRequest"
	BestSellers          = "BestSellers"
	BuyConfirm           = "BuyConfirm"
	BuyRequest           = "BuyRequest"
	CustomerRegistration = "CustomerRegistration"
	Home                 = "Home"
	NewProducts          = "NewProducts"
	OrderDisplay         = "OrderDisplay"
	OrderInquiry         = "OrderInquiry"
	ProductDetail        = "ProductDetail"
	SearchRequest        = "SearchRequest"
	SearchResult         = "SearchResult"
	ShoppingCart         = "ShoppingCart"
)

// Interactions lists all fourteen TPC-W interactions in a stable order.
var Interactions = []string{
	AdminConfirm, AdminRequest, BestSellers, BuyConfirm, BuyRequest,
	CustomerRegistration, Home, NewProducts, OrderDisplay, OrderInquiry,
	ProductDetail, SearchRequest, SearchResult, ShoppingCart,
}

// BrowsingMix gives the TPC-W browsing-mix probability (percent) per
// interaction — the mix used throughout §8.4.
var BrowsingMix = map[string]float64{
	Home:                 29.00,
	NewProducts:          11.00,
	BestSellers:          11.00,
	ProductDetail:        21.00,
	SearchRequest:        12.00,
	SearchResult:         11.00,
	ShoppingCart:         2.00,
	CustomerRegistration: 0.82,
	BuyRequest:           0.75,
	BuyConfirm:           0.69,
	OrderInquiry:         0.30,
	OrderDisplay:         0.25,
	AdminRequest:         0.10,
	AdminConfirm:         0.09,
}

// ShoppingMix is the TPC-W shopping mix (WIPSo): more cart and order
// activity than browsing. Provided for experiments beyond the paper's
// browsing-mix runs.
var ShoppingMix = map[string]float64{
	Home:                 16.00,
	NewProducts:          5.00,
	BestSellers:          5.00,
	ProductDetail:        17.00,
	SearchRequest:        20.00,
	SearchResult:         17.00,
	ShoppingCart:         11.60,
	CustomerRegistration: 3.00,
	BuyRequest:           2.60,
	BuyConfirm:           1.20,
	OrderInquiry:         0.75,
	OrderDisplay:         0.66,
	AdminRequest:         0.10,
	AdminConfirm:         0.09,
}

// OrderingMix is the TPC-W ordering mix (WIPSb): order-heavy, exercising
// the write paths (BuyConfirm's order_line inserts) hardest.
var OrderingMix = map[string]float64{
	Home:                 9.12,
	NewProducts:          0.46,
	BestSellers:          0.46,
	ProductDetail:        12.35,
	SearchRequest:        14.53,
	SearchResult:         13.08,
	ShoppingCart:         13.53,
	CustomerRegistration: 12.86,
	BuyRequest:           12.73,
	BuyConfirm:           10.18,
	OrderInquiry:         0.25,
	OrderDisplay:         0.22,
	AdminRequest:         0.12,
	AdminConfirm:         0.11,
}

// MixSampler draws interactions from a weighted mix.
type MixSampler struct {
	rng       *vclock.RNG
	names     []string
	weights   []float64
	thinkMean vclock.Duration
}

// NewMixSampler builds a sampler over the given mix with its own seeded
// stream.
func NewMixSampler(seed uint64, mix map[string]float64) *MixSampler {
	s := &MixSampler{rng: vclock.NewRNG(seed), thinkMean: 7 * vclock.Second}
	for _, name := range Interactions {
		if w, ok := mix[name]; ok && w > 0 {
			s.names = append(s.names, name)
			s.weights = append(s.weights, w)
		}
	}
	return s
}

// Next draws the next interaction name.
func (s *MixSampler) Next() string { return s.names[s.rng.Pick(s.weights)] }

// SetThinkMean overrides the TPC-W default 7s think-time mean (the
// 10x cap scales with it). The default draws are unchanged, so seeded
// runs that never call this stay bit-identical.
func (s *MixSampler) SetThinkMean(mean vclock.Duration) {
	if mean <= 0 {
		panic("workload: think-time mean must be positive")
	}
	s.thinkMean = mean
}

// ThinkTime draws a TPC-W think time: exponential with mean 7s (see
// SetThinkMean), capped at ten times the mean per the TPC-W spec.
func (s *MixSampler) ThinkTime() vclock.Duration {
	d := s.rng.Exp(s.thinkMean)
	if max := 10 * s.thinkMean; d > max {
		d = max
	}
	return d
}
