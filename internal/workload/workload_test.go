package workload

import (
	"testing"
	"testing/quick"

	"whodunit/internal/par"
	"whodunit/internal/vclock"
)

func TestGenWebDeterministic(t *testing.T) {
	a := GenWeb(DefaultWebConfig())
	b := GenWeb(DefaultWebConfig())
	if a.TotalBytes != b.TotalBytes || len(a.Conns) != len(b.Conns) {
		t.Fatal("same-seed traces differ")
	}
	cfg := DefaultWebConfig()
	cfg.Seed = 99
	c := GenWeb(cfg)
	if c.TotalBytes == a.TotalBytes {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenWebShape(t *testing.T) {
	cfg := DefaultWebConfig()
	tr := GenWeb(cfg)
	if len(tr.Conns) != cfg.NumConns {
		t.Fatalf("conns = %d", len(tr.Conns))
	}
	totalReqs, sum := 0, int64(0)
	counts := make([]int, cfg.NumFiles)
	for _, c := range tr.Conns {
		if len(c.Reqs) == 0 {
			t.Fatal("connection with no requests")
		}
		totalReqs += len(c.Reqs)
		for _, r := range c.Reqs {
			if r.Size < cfg.MinSize || r.Size > cfg.MaxSize {
				t.Fatalf("size %d out of [%d,%d]", r.Size, cfg.MinSize, cfg.MaxSize)
			}
			if r.Size != tr.Files[r.File] {
				t.Fatal("request size inconsistent with file table")
			}
			sum += r.Size
			counts[r.File]++
		}
	}
	if sum != tr.TotalBytes {
		t.Fatalf("TotalBytes %d != sum %d", tr.TotalBytes, sum)
	}
	// Mean requests per connection should be in the ballpark of MeanReqs.
	mean := float64(totalReqs) / float64(len(tr.Conns))
	if mean < 2 || mean > 8 {
		t.Fatalf("mean reqs/conn = %.1f, config asked ~%d", mean, cfg.MeanReqs)
	}
	// Zipf popularity: the most popular file should be requested far more
	// often than the median.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < totalReqs/100 {
		t.Fatalf("popularity not skewed: max count %d of %d", max, totalReqs)
	}
}

func TestBrowsingMixSumsTo100(t *testing.T) {
	sum := 0.0
	for _, name := range Interactions {
		sum += BrowsingMix[name]
	}
	if sum < 99.9 || sum > 100.1 {
		t.Fatalf("browsing mix sums to %.2f", sum)
	}
}

func TestMixSamplerFrequencies(t *testing.T) {
	s := NewMixSampler(5, BrowsingMix)
	counts := map[string]int{}
	n := 100000
	for i := 0; i < n; i++ {
		counts[s.Next()]++
	}
	for _, name := range Interactions {
		want := BrowsingMix[name] / 100
		got := float64(counts[name]) / float64(n)
		if want > 0.01 && (got < want*0.8 || got > want*1.2) {
			t.Fatalf("%s frequency %.4f, want ~%.4f", name, got, want)
		}
	}
	// Rare interactions still occur.
	if counts[AdminConfirm] == 0 {
		t.Fatal("AdminConfirm never sampled in 100k draws")
	}
}

func TestThinkTimeDistribution(t *testing.T) {
	s := NewMixSampler(6, BrowsingMix)
	var sum vclock.Duration
	n := 20000
	for i := 0; i < n; i++ {
		d := s.ThinkTime()
		if d < 0 || d > 70*vclock.Second {
			t.Fatalf("think time %v out of range", d)
		}
		sum += d
	}
	mean := sum / vclock.Duration(n)
	if mean < 6*vclock.Second || mean > 8*vclock.Second {
		t.Fatalf("mean think = %v, want ~7s", mean)
	}
}

func TestQuickTraceInvariants(t *testing.T) {
	f := func(seed uint64, conns uint8) bool {
		cfg := DefaultWebConfig()
		cfg.Seed = seed
		cfg.NumConns = int(conns%50) + 1
		tr := GenWeb(cfg)
		var sum int64
		for _, c := range tr.Conns {
			for _, r := range c.Reqs {
				if r.File < 0 || r.File >= cfg.NumFiles {
					return false
				}
				sum += r.Size
			}
		}
		return sum == tr.TotalBytes && len(tr.Conns) == cfg.NumConns
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAllMixesWellFormed(t *testing.T) {
	for name, mix := range map[string]map[string]float64{
		"browsing": BrowsingMix, "shopping": ShoppingMix, "ordering": OrderingMix,
	} {
		sum := 0.0
		for inter, w := range mix {
			if w < 0 {
				t.Fatalf("%s: negative weight for %s", name, inter)
			}
			found := false
			for _, known := range Interactions {
				if known == inter {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s: unknown interaction %s", name, inter)
			}
			sum += w
		}
		if sum < 99 || sum > 101 {
			t.Fatalf("%s mix sums to %.2f", name, sum)
		}
	}
}

func TestOrderingMixShiftsLoad(t *testing.T) {
	// The ordering mix must sample far more BuyConfirm and far fewer
	// BestSellers than the browsing mix.
	n := 50000
	count := func(mix map[string]float64, inter string) int {
		s := NewMixSampler(3, mix)
		c := 0
		for i := 0; i < n; i++ {
			if s.Next() == inter {
				c++
			}
		}
		return c
	}
	if count(OrderingMix, BuyConfirm) < 5*count(BrowsingMix, BuyConfirm) {
		t.Fatal("ordering mix should buy much more")
	}
	if count(OrderingMix, BestSellers) > count(BrowsingMix, BestSellers)/5 {
		t.Fatal("ordering mix should browse much less")
	}
}

// TestGenWebShardBoundaries pins the sharded generator at the exact
// worker-shard edges: trace sizes straddling the 256-item shard
// (genShard-1, genShard, genShard+1, 2*genShard) must come out
// bit-identical whether the par pool runs one worker or many — the
// regime where an off-by-one in a shard's [lo, hi) bounds or its
// RNG.Skip offset would duplicate or drop the boundary item.
func TestGenWebShardBoundaries(t *testing.T) {
	for _, n := range []int{genShard - 1, genShard, genShard + 1, 2 * genShard} {
		cfg := DefaultWebConfig()
		cfg.NumConns = n
		cfg.NumFiles = n

		prev := par.MaxWorkers
		par.MaxWorkers = 1
		serial := GenWeb(cfg)
		par.MaxWorkers = prev
		parallel := GenWeb(cfg)

		if len(serial.Conns) != n || len(parallel.Conns) != n {
			t.Fatalf("n=%d: conns = %d serial / %d parallel", n, len(serial.Conns), len(parallel.Conns))
		}
		if serial.TotalBytes != parallel.TotalBytes {
			t.Fatalf("n=%d: total bytes differ: %d vs %d", n, serial.TotalBytes, parallel.TotalBytes)
		}
		for i := range serial.Files {
			if serial.Files[i] != parallel.Files[i] {
				t.Fatalf("n=%d: file %d size differs across worker counts", n, i)
			}
		}
		for c := range serial.Conns {
			a, b := serial.Conns[c], parallel.Conns[c]
			if len(a.Reqs) != len(b.Reqs) {
				t.Fatalf("n=%d: conn %d request count differs: %d vs %d", n, c, len(a.Reqs), len(b.Reqs))
			}
			for r := range a.Reqs {
				if a.Reqs[r] != b.Reqs[r] {
					t.Fatalf("n=%d: conn %d req %d differs: %+v vs %+v", n, c, r, a.Reqs[r], b.Reqs[r])
				}
			}
		}
	}
}
