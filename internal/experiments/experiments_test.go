package experiments

import (
	"strings"
	"testing"
)

func TestFig8ShapeHolds(t *testing.T) {
	r := Fig8Apache(QuickScale)
	if r.Flows == 0 {
		t.Fatal("no flows detected")
	}
	if r.AcceptSharePct <= 0 || r.ServeSharePct <= 0 {
		t.Fatalf("shares: accept=%.2f serve=%.2f", r.AcceptSharePct, r.ServeSharePct)
	}
	// Paper shape: serving dominates the accept path (22.7% vs 2.4%).
	if r.ServeSharePct < 2*r.AcceptSharePct {
		t.Fatalf("serve %.2f%% should dwarf accept %.2f%%", r.ServeSharePct, r.AcceptSharePct)
	}
	var sb strings.Builder
	r.Render(&sb)
	if !strings.Contains(sb.String(), "Figure 8") {
		t.Fatal("render missing header")
	}
}

func TestFig9ShapeHolds(t *testing.T) {
	r := Fig9Squid(QuickScale)
	if r.HitWritePct <= 0 || r.MissWritePct <= 0 {
		t.Fatalf("write split: hit=%.2f miss=%.2f", r.HitWritePct, r.MissWritePct)
	}
	// Paper shape: the miss-path write context carries more CPU than the
	// hit-path one (38.5% vs 28.2% — misses also pay receive costs
	// upstream, and each miss writes the same bytes).
	if len(r.Rows) < 3 {
		t.Fatalf("too few contexts: %+v", r.Rows)
	}
	var sb strings.Builder
	r.Render(&sb)
	if !strings.Contains(sb.String(), "commHandleWrite split") {
		t.Fatal("render incomplete")
	}
}

func TestFig10ShapeHolds(t *testing.T) {
	r := Fig10Haboob(QuickScale)
	if r.HitWritePct <= 0 || r.MissWritePct <= 0 {
		t.Fatalf("WriteStage split: hit=%.2f miss=%.2f", r.HitWritePct, r.MissWritePct)
	}
	var sb strings.Builder
	r.Render(&sb)
	if !strings.Contains(sb.String(), "WriteStage split") {
		t.Fatal("render incomplete")
	}
}

func TestTable3Shape(t *testing.T) {
	r := Table3Emulation()
	for _, row := range r.Rows {
		// Paper shape: translate+emulate >> cached emulation >> direct.
		if !(row.TranslateCycles > 2*row.CachedEmuCycles) {
			t.Fatalf("%s: translate %d not >> cached %d", row.Name, row.TranslateCycles, row.CachedEmuCycles)
		}
		if !(row.CachedEmuCycles > 20*row.DirectCycles) {
			t.Fatalf("%s: cached %d not >> direct %d", row.Name, row.CachedEmuCycles, row.DirectCycles)
		}
		// Rough magnitudes: direct O(100) cycles, translate O(10K-100K).
		if row.DirectCycles < 50 || row.DirectCycles > 500 {
			t.Fatalf("%s direct cycles %d out of calibrated range", row.Name, row.DirectCycles)
		}
		if row.TranslateCycles < 10000 || row.TranslateCycles > 200000 {
			t.Fatalf("%s translate cycles %d out of calibrated range", row.Name, row.TranslateCycles)
		}
	}
}

func TestServerOverheadsSmall(t *testing.T) {
	r := ServerOverheads(QuickScale)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.OverheadPct < 0 || row.OverheadPct > 15 {
			t.Fatalf("%s overhead %.1f%% implausible", row.Server, row.OverheadPct)
		}
	}
}

func TestFlowValidation(t *testing.T) {
	r := FlowValidation()
	if r.ApacheFlows == 0 {
		t.Fatal("apache flows missing")
	}
	if r.CounterFlows != 0 {
		t.Fatalf("counter flows = %d, want 0 (the MySQL validation)", r.CounterFlows)
	}
	if !r.AllocatorDemoted {
		t.Fatal("allocator not demoted")
	}
}

func TestTable1Shape(t *testing.T) {
	r := Table1TPCW(QuickTPCW)
	shares := map[string]float64{}
	waits := map[string]float64{}
	for _, row := range r.Rows {
		shares[row.Interaction] = row.CPUSharePct
		waits[row.Interaction] = row.MeanWaitMs
	}
	if shares["BestSellers"]+shares["SearchResult"] < 60 {
		t.Fatalf("BestSellers+SearchResult = %.1f%%, want > 60%%", shares["BestSellers"]+shares["SearchResult"])
	}
	if shares["BestSellers"] < shares["SearchResult"] {
		t.Fatalf("BestSellers %.1f%% should lead SearchResult %.1f%%", shares["BestSellers"], shares["SearchResult"])
	}
	// AdminConfirm: tiny CPU share but the largest crosstalk wait.
	if shares["AdminConfirm"] > 5 {
		t.Fatalf("AdminConfirm share %.1f%% too large", shares["AdminConfirm"])
	}
}

func TestFig12CachingWins(t *testing.T) {
	r := Fig12Throughput(TPCWScale{Duration: QuickTPCW.Duration, Sweep: []int{300}})
	row := r.Rows[0]
	if row.CachedPerMin < 1.3*row.OriginalPerMin {
		t.Fatalf("caching %f not >> original %f at 300 clients", row.CachedPerMin, row.OriginalPerMin)
	}
}

func TestTable2Ordering(t *testing.T) {
	r := Table2Overhead(TPCWScale{Duration: QuickTPCW.Duration})
	byMode := map[string]float64{}
	for _, row := range r.Rows {
		byMode[row.Mode] = row.PerMin
	}
	if !(byMode["gprof"] < byMode["whodunit"] && byMode["whodunit"] <= byMode["no profile"]) {
		t.Fatalf("throughput ordering wrong: %+v", byMode)
	}
	if r.CommOverheadPct <= 0 || r.CommOverheadPct > 5 {
		t.Fatalf("comm overhead %.2f%% implausible", r.CommOverheadPct)
	}
}
