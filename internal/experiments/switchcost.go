package experiments

import (
	"fmt"
	"io"
	"time"

	"whodunit/internal/vclock"
)

// --- switchcost: context-switch cost of the two scheduler engines ----

// SwitchCostRow is one engine's measured hand-off cost.
type SwitchCostRow struct {
	Engine      string
	Switches    int
	NsPerSwitch float64
}

// SwitchCostResult compares the run-to-completion engine against the
// goroutine baton protocol on the same two-thread ping-pong program.
type SwitchCostResult struct {
	Rows  []SwitchCostRow
	Ratio float64 // goroutine ns/switch over coro ns/switch
}

// SwitchCost measures the wall-clock cost of one blocking operation —
// queue Get parking the thread plus the Put-driven resume — under each
// coroutine engine. The program is identical either way (the same
// GoCoro frames); the engine is overridden per Sim with SetEngine, not
// through the process-global default, because experiment jobs run
// concurrently in the worker pool. Each round trip is two switches.
func SwitchCost(rounds int) SwitchCostResult {
	measure := func(k vclock.EngineKind) float64 {
		s := vclock.New()
		s.SetEngine(k)
		qa, qb := s.NewQueue("a"), s.NewQueue("b")
		var token any = struct{}{}
		done := 0
		var echoF, countF vclock.Frame
		echoF = func(c *vclock.Coro, v any) vclock.Step {
			qa.Put(v)
			return c.Get(qb, echoF)
		}
		countF = func(c *vclock.Coro, v any) vclock.Step {
			done++
			qb.Put(v)
			return c.Get(qa, countF)
		}
		s.GoCoro("echo", func(c *vclock.Coro, _ any) vclock.Step { return c.Get(qb, echoF) })
		s.GoCoro("count", func(c *vclock.Coro, _ any) vclock.Step {
			qb.Put(token)
			return c.Get(qa, countF)
		})
		target := 0
		stop := func() bool { return done >= target }
		target = rounds / 10 // warm-up: slices at steady capacity
		s.RunUntil(stop)
		start := time.Now()
		target = done + rounds
		s.RunUntil(stop)
		elapsed := time.Since(start)
		s.Shutdown()
		return float64(elapsed.Nanoseconds()) / float64(rounds*2)
	}
	coro := measure(vclock.EngineCoro)
	gor := measure(vclock.EngineGoroutine)
	res := SwitchCostResult{Rows: []SwitchCostRow{
		{Engine: vclock.EngineCoro.String(), Switches: rounds * 2, NsPerSwitch: coro},
		{Engine: vclock.EngineGoroutine.String(), Switches: rounds * 2, NsPerSwitch: gor},
	}}
	if coro > 0 {
		res.Ratio = gor / coro
	}
	return res
}

// Render prints the switch-cost comparison.
func (r SwitchCostResult) Render(w io.Writer) {
	fmt.Fprintln(w, "== switchcost: scheduler hand-off cost per blocking operation ==")
	fmt.Fprintf(w, "%-12s %12s %12s\n", "engine", "switches", "ns/switch")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12s %12d %12.1f\n", row.Engine, row.Switches, row.NsPerSwitch)
	}
	fmt.Fprintf(w, "goroutine/coro ratio: %.1fx (zero-handoff run-to-completion vs baton-passing goroutines)\n", r.Ratio)
}
