package experiments

import (
	"fmt"
	"io"

	"whodunit/internal/apps/meshkv"
	"whodunit/internal/trace"
)

// --- Mesh traffic: the microservice-mesh workload ---------------------

// MeshRow is one topology's steady-state traffic summary.
type MeshRow struct {
	Topology   string
	Events     int
	Throughput float64 // requests per virtual second
	HitRatePct float64
	GetMeanMs  float64
	SetMeanMs  float64
	MaxShardPct float64 // busiest shard's share of shard traffic
}

// MeshResult compares the standard and deep mesh topologies replaying
// the same cache trace — the beyond-paper workload exercising flow
// propagation across 4- and 7-tier service chains.
type MeshResult struct {
	Rows []MeshRow
}

// MeshTraffic replays a seeded Zipfian cache trace through the standard
// and the deep meshkv topologies and summarises per-op latency, cache
// behavior and shard balance.
func MeshTraffic(sc Scale) MeshResult {
	gcfg := trace.CacheTrace()
	gcfg.Events = 4 * sc.WebConns
	row := func(name string, deep bool) MeshRow {
		cfg := meshkv.DefaultConfig(trace.Gen(gcfg))
		cfg.Deep = deep
		res := meshkv.Run(cfg)
		var shardMax, shardTotal int64
		for _, n := range res.ShardLoad {
			shardTotal += n
			if n > shardMax {
				shardMax = n
			}
		}
		r := MeshRow{
			Topology:   name,
			Events:     len(cfg.Trace.Events),
			Throughput: res.ThroughputRPS,
			HitRatePct: 100 * res.HitRate(),
			GetMeanMs:  res.Gets.MeanLatency().Seconds() * 1e3,
			SetMeanMs:  res.Sets.MeanLatency().Seconds() * 1e3,
		}
		if shardTotal > 0 {
			r.MaxShardPct = 100 * float64(shardMax) / float64(shardTotal)
		}
		return r
	}
	var res MeshResult
	parallelInto(&res.Rows, []func() MeshRow{
		func() MeshRow { return row("standard (4-tier)", false) },
		func() MeshRow { return row("deep (7-tier)", true) },
	})
	return res
}

// parallelInto fans the row builders out through the experiment pool.
func parallelInto(dst *[]MeshRow, fns []func() MeshRow) {
	rows := make([]MeshRow, len(fns))
	Parallel(len(fns), func(i int) { rows[i] = fns[i]() })
	*dst = rows
}

// Render prints the mesh traffic table.
func (r MeshResult) Render(w io.Writer) {
	fmt.Fprintln(w, "== Mesh traffic: microservice-mesh KV under trace replay ==")
	fmt.Fprintf(w, "%-20s %8s %10s %8s %10s %10s %10s\n",
		"topology", "events", "thru(r/s)", "hit%", "get(ms)", "set(ms)", "maxshard%")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-20s %8d %10.0f %7.1f%% %10.2f %10.2f %9.1f%%\n",
			row.Topology, row.Events, row.Throughput, row.HitRatePct,
			row.GetMeanMs, row.SetMeanMs, row.MaxShardPct)
	}
	fmt.Fprintln(w)
}
