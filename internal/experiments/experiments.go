// Package experiments regenerates every table and figure of the paper's
// evaluation (§8, §9). Each experiment has a typed result and a Render
// method printing rows in the paper's layout; DESIGN.md maps experiment
// ids to the modules involved, and EXPERIMENTS.md records paper-vs-
// measured values.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"whodunit/internal/apps/apacheweb"
	"whodunit/internal/apps/haboob"
	"whodunit/internal/apps/squidproxy"
	"whodunit/internal/profiler"
	"whodunit/internal/shmflow"
	"whodunit/internal/vm"
	"whodunit/internal/workload"
)

// Scale shrinks workloads for quick runs (tests, benches). Full-size runs
// use Scale = 1.
type Scale struct {
	WebConns int // connections in the web trace
}

// FullScale matches the paper-scale runs used by cmd/whodunit-bench.
var FullScale = Scale{WebConns: 2000}

// QuickScale keeps unit tests and benches fast.
var QuickScale = Scale{WebConns: 250}

func webTrace(sc Scale) *workload.WebTrace {
	cfg := workload.DefaultWebConfig()
	cfg.NumConns = sc.WebConns
	cfg.MinSize = 4 << 10
	return workload.GenWeb(cfg)
}

// --- Figure 8: Apache transactional profile --------------------------

// Fig8Result is the Apache listener→worker transactional profile.
type Fig8Result struct {
	Flows          int     // shared-memory flow events detected
	AcceptSharePct float64 // accept path share of total samples
	ServeSharePct  float64 // ap_process_connection share
	ProfileText    string
}

// Fig8Apache reproduces Figure 8. An optional mode overrides the default
// Whodunit profiling (e.g. to compare against the csprof baseline).
func Fig8Apache(sc Scale, mode ...profiler.Mode) Fig8Result {
	cfg := apacheweb.DefaultConfig(webTrace(sc))
	if len(mode) > 0 {
		cfg.Mode = mode[0]
	}
	res := apacheweb.Run(cfg)
	m := res.Profiler.Merged()
	total := m.Total()
	share := func(path ...string) float64 {
		n := m.Find(path...)
		if n == nil || total == 0 {
			return 0
		}
		return 100 * float64(n.Inclusive()) / float64(total)
	}
	var sb strings.Builder
	m.Render(&sb, total, 0.5)
	return Fig8Result{
		Flows:          len(res.Flows),
		AcceptSharePct: share("listener_thread"),
		ServeSharePct:  share("worker_thread", "ap_process_connection"),
		ProfileText:    sb.String(),
	}
}

// Render prints the Figure 8 summary.
func (r Fig8Result) Render(w io.Writer) {
	fmt.Fprintln(w, "== Figure 8: transactional profile of Apache ==")
	fmt.Fprintf(w, "shared-memory flows detected (ap_queue_push -> ap_queue_pop): %d\n", r.Flows)
	fmt.Fprintf(w, "listener accept path: %5.2f%% of profile (paper: 2.4%%)\n", r.AcceptSharePct)
	fmt.Fprintf(w, "ap_process_connection: %5.2f%% of profile (paper: 22.7%% + sendfile)\n", r.ServeSharePct)
	fmt.Fprintln(w, r.ProfileText)
}

// --- Figure 9: Squid transactional profile ---------------------------

// Fig9Row is one transaction context of the Squid profile.
type Fig9Row struct {
	Context  string
	SharePct float64
}

// Fig9Result is the per-context Squid profile.
type Fig9Result struct {
	Rows         []Fig9Row
	HitWritePct  float64 // commHandleWrite via the hit context
	MissWritePct float64 // commHandleWrite via the miss context
	Hits, Misses int64
}

// Fig9Squid reproduces Figure 9. An optional mode overrides the default
// Whodunit profiling.
func Fig9Squid(sc Scale, mode ...profiler.Mode) Fig9Result {
	cfg := squidproxy.DefaultConfig(webTrace(sc))
	if len(mode) > 0 {
		cfg.Mode = mode[0]
	}
	res := squidproxy.Run(cfg)
	out := Fig9Result{Hits: res.Hits, Misses: res.Misses}
	for _, sh := range res.Profiler.Shares() {
		if sh.Samples == 0 {
			continue
		}
		out.Rows = append(out.Rows, Fig9Row{Context: sh.Label, SharePct: 100 * sh.Share})
		if strings.HasSuffix(sh.Label, "commHandleWrite") {
			if strings.Contains(sh.Label, "httpReadReply") {
				out.MissWritePct += 100 * sh.Share
			} else {
				out.HitWritePct += 100 * sh.Share
			}
		}
	}
	return out
}

// Render prints the Figure 9 rows.
func (r Fig9Result) Render(w io.Writer) {
	fmt.Fprintln(w, "== Figure 9: transactional profile of Squid ==")
	fmt.Fprintf(w, "cache hits: %d  misses: %d\n", r.Hits, r.Misses)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%6.2f%%  %s\n", row.SharePct, row.Context)
	}
	fmt.Fprintf(w, "commHandleWrite split: hit-path %.2f%% vs miss-path %.2f%% (paper: 28.2%% vs 38.5%%)\n",
		r.HitWritePct, r.MissWritePct)
}

// --- Figure 10: Haboob transactional profile -------------------------

// Fig10Row is one (context, share) pair of the Haboob profile.
type Fig10Row struct {
	Context  string
	SharePct float64
}

// Fig10Result is the per-context Haboob profile.
type Fig10Result struct {
	Rows         []Fig10Row
	HitWritePct  float64
	MissWritePct float64
}

// Fig10Haboob reproduces Figure 10. An optional mode overrides the
// default Whodunit profiling.
func Fig10Haboob(sc Scale, mode ...profiler.Mode) Fig10Result {
	cfg := haboob.DefaultConfig(webTrace(sc))
	if len(mode) > 0 {
		cfg.Mode = mode[0]
	}
	res := haboob.Run(cfg)
	out := Fig10Result{}
	for _, sh := range res.Profiler.Shares() {
		if sh.Samples == 0 {
			continue
		}
		out.Rows = append(out.Rows, Fig10Row{Context: sh.Label, SharePct: 100 * sh.Share})
		if strings.HasSuffix(sh.Label, "haboob#WriteStage") {
			if strings.Contains(sh.Label, "MissStage") {
				out.MissWritePct += 100 * sh.Share
			} else {
				out.HitWritePct += 100 * sh.Share
			}
		}
	}
	return out
}

// Render prints the Figure 10 rows.
func (r Fig10Result) Render(w io.Writer) {
	fmt.Fprintln(w, "== Figure 10: transactional profile of Haboob (SEDA) ==")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%6.2f%%  %s\n", row.SharePct, row.Context)
	}
	fmt.Fprintf(w, "WriteStage split: hit-path %.2f%% vs miss-path %.2f%% (paper: 37.65%% vs 46.58%%)\n",
		r.HitWritePct, r.MissWritePct)
}

// --- Table 3: cost of emulation ---------------------------------------

// Table3Row is one critical section's cycle costs under the three modes.
type Table3Row struct {
	Name            string
	DirectCycles    int64
	TranslateCycles int64
	CachedEmuCycles int64
}

// Table3Result reproduces Table 3.
type Table3Result struct{ Rows []Table3Row }

// Table3Emulation measures Apache's queue critical sections under direct
// execution, first-time translation+emulation, and cached emulation.
func Table3Emulation() Table3Result {
	measure := func(prog *vm.Program, entry string, regs map[byte]int64) Table3Row {
		row := Table3Row{Name: prog.Name}
		runOnce := func(m *vm.Machine) int64 {
			th, err := m.Spawn(prog, entry)
			if err != nil {
				panic(err)
			}
			for r, v := range regs {
				th.Regs[r] = v
			}
			// A queue element must exist for pop to read.
			m.Mem.Store(shmflow.QueueBase, 1)
			if err := m.Run(100000); err != nil {
				panic(err)
			}
			return th.Cycles
		}
		md := vm.NewMachine()
		md.Mode = vm.ModeDirect
		row.DirectCycles = runOnce(md)

		me := vm.NewMachine()
		me.Mode = vm.ModeEmulateCS
		row.TranslateCycles = runOnce(me) // cold cache: translate + emulate
		row.CachedEmuCycles = runOnce(me) // warm cache: emulate only
		return row
	}
	return Table3Result{Rows: []Table3Row{
		measure(shmflow.ApachePush, "push", map[byte]int64{1: shmflow.QueueBase, 4: 1, 5: 2}),
		measure(shmflow.ApachePop, "pop", map[byte]int64{1: shmflow.QueueBase, 9: 0x8000}),
	}}
}

// Render prints Table 3.
func (r Table3Result) Render(w io.Writer) {
	fmt.Fprintln(w, "== Table 3: execution time of Apache's critical sections (cycles) ==")
	fmt.Fprintf(w, "%-16s %12s %22s %16s\n", "critical section", "direct", "translate+emulate", "emulation only")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-16s %12d %22d %16d\n", row.Name, row.DirectCycles, row.TranslateCycles, row.CachedEmuCycles)
	}
	fmt.Fprintln(w, "(paper: push 131.64 / 62508 / 11606.8; pop 109.72 / 40852 / 12118)")
}

// --- §9.2 / §9.3: server overheads ------------------------------------

// OverheadRow is one server's throughput with and without Whodunit.
type OverheadRow struct {
	Server       string
	BaselineMbps float64
	ProfiledMbps float64
	OverheadPct  float64
}

// OverheadResult covers §9.2 (Apache) and §9.3 (Squid, Haboob).
type OverheadResult struct{ Rows []OverheadRow }

// ServerOverheads measures Whodunit's throughput cost on the three web
// servers. The six runs (three servers, profiled and baseline) are
// independent simulations sharing one read-only trace, so they fan out
// across the worker pool.
func ServerOverheads(sc Scale) OverheadResult {
	tr := webTrace(sc)
	runs := []struct {
		name string
		run  func(mode profiler.Mode) float64
	}{
		{"apache (§9.2)", func(m profiler.Mode) float64 {
			cfg := apacheweb.DefaultConfig(tr)
			cfg.Mode = m
			return apacheweb.Run(cfg).ThroughputMbps
		}},
		{"squid (§9.3)", func(m profiler.Mode) float64 {
			cfg := squidproxy.DefaultConfig(tr)
			cfg.Mode = m
			return squidproxy.Run(cfg).ThroughputMbps
		}},
		{"haboob (§9.3)", func(m profiler.Mode) float64 {
			cfg := haboob.DefaultConfig(tr)
			cfg.Mode = m
			return haboob.Run(cfg).ThroughputMbps
		}},
	}
	mbps := make([]float64, 2*len(runs))
	Parallel(2*len(runs), func(j int) {
		r := runs[j/2]
		mode := profiler.ModeOff
		if j%2 == 1 {
			mode = profiler.ModeWhodunit
		}
		mbps[j] = r.run(mode)
	})
	var out OverheadResult
	for i, r := range runs {
		base, prof := mbps[2*i], mbps[2*i+1]
		out.Rows = append(out.Rows, OverheadRow{Server: r.name, BaselineMbps: base,
			ProfiledMbps: prof, OverheadPct: 100 * (base - prof) / base})
	}
	return out
}

// Render prints the overhead rows.
func (r OverheadResult) Render(w io.Writer) {
	fmt.Fprintln(w, "== §9.2/§9.3: Whodunit overhead on server peak throughput ==")
	fmt.Fprintf(w, "%-16s %14s %14s %10s\n", "server", "baseline Mb/s", "profiled Mb/s", "overhead")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-16s %14.2f %14.2f %9.1f%%\n", row.Server, row.BaselineMbps, row.ProfiledMbps, row.OverheadPct)
	}
	fmt.Fprintln(w, "(paper: apache 393.64->384.58 = 2.3%; squid 262.27->247.85 = 5.5%; haboob 31.16->29.84 = 4.2%)")
}

// FlowValidation re-runs the §8.1 validation: flow detected in the Apache
// pattern, none in the shared-counter (MySQL) pattern, allocator demoted.
type FlowValidationResult struct {
	ApacheFlows      int
	CounterFlows     int
	AllocatorDemoted bool
}

// FlowValidation runs the three §3 validation scenarios on the VM.
func FlowValidation() FlowValidationResult {
	run := func(setup func(m *vm.Machine, tr *shmflow.Tracker)) *shmflow.Tracker {
		m := vm.NewMachine()
		m.Mode = vm.ModeEmulateCS
		tr := shmflow.NewTracker()
		tr.ThreadCtxt = func(tid int) shmflow.Token { return shmflow.Token(tid + 1) }
		m.Tracer = tr
		setup(m, tr)
		if err := m.Run(1_000_000); err != nil {
			panic(err)
		}
		return tr
	}
	apache := run(func(m *vm.Machine, _ *shmflow.Tracker) {
		p, _ := m.Spawn(shmflow.ApachePush, "push")
		p.Regs[1], p.Regs[4], p.Regs[5] = shmflow.QueueBase, 7, 8
		c, _ := m.Spawn(shmflow.ApachePop, "pop")
		c.Regs[1], c.Regs[9] = shmflow.QueueBase, 0x8000
	})
	counter := run(func(m *vm.Machine, _ *shmflow.Tracker) {
		for i := 0; i < 2; i++ {
			t, _ := m.Spawn(shmflow.SharedCounter, "main")
			t.Regs[1], t.Regs[2] = shmflow.CounterAddr, 25
		}
	})
	alloc := run(func(m *vm.Machine, _ *shmflow.Tracker) {
		t, _ := m.Spawn(shmflow.AllocWork, "main")
		t.Regs[2], t.Regs[4], t.Regs[9] = shmflow.FreeHead, 0x3100, 0x8000
	})
	return FlowValidationResult{
		ApacheFlows:      len(apache.Flows()),
		CounterFlows:     len(counter.Flows()),
		AllocatorDemoted: alloc.NonFlow(shmflow.AllocLock),
	}
}

// Render prints the validation summary.
func (r FlowValidationResult) Render(w io.Writer) {
	fmt.Fprintln(w, "== §8.1 validation: shared-memory flow detection ==")
	fmt.Fprintf(w, "apache queue: %d flows (want >0); shared counter: %d flows (want 0); allocator demoted: %v (want true)\n",
		r.ApacheFlows, r.CounterFlows, r.AllocatorDemoted)
}
