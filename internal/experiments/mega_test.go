package experiments

import "testing"

func TestMegaScaleQuickSmoke(t *testing.T) {
	r := MegaScale(QuickMega)
	for _, row := range r.Rows {
		if !row.Identical {
			t.Errorf("%s at %d clients: serial and sharded reports differ", row.App, row.Clients)
		}
		if row.Completed == 0 {
			t.Errorf("%s: nothing completed", row.App)
		}
	}
}
