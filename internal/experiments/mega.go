package experiments

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"time"

	"whodunit"
	"whodunit/internal/apps/meshkv"
	"whodunit/internal/apps/tpcw"
	"whodunit/internal/trace"
	"whodunit/internal/vclock"
	"whodunit/internal/workload"
)

// --- Mega-scale: epoch-sharded parallel simulation --------------------

// MegaSweep sets the scale of the sharded-simulation experiment.
type MegaSweep struct {
	Clients  []int // tpcw client counts; also the meshkv trace sizes
	Replicas int
	Duration vclock.Duration
	Think    vclock.Duration
}

// FullMega is the 10^5-client point: one hundred thousand closed-loop
// TPC-W clients over eight pods, and a hundred-thousand-event mesh
// trace over eight pods.
var FullMega = MegaSweep{
	Clients:  []int{100_000},
	Replicas: 8,
	Duration: 30 * vclock.Second,
	Think:    7 * vclock.Second,
}

// QuickMega keeps tests and quick benches fast.
var QuickMega = MegaSweep{
	Clients:  []int{240},
	Replicas: 4,
	Duration: 4 * vclock.Second,
	Think:    250 * vclock.Millisecond,
}

// MegaRow is one app's serial-vs-sharded comparison at one scale: the
// wall-clock times of the identical run on one time domain and on one
// domain per pod, the resulting speedup, and whether the two reports
// were bit-identical (they must be). PerMin and MeanRespMs are the
// model-level throughput/response-time columns — the Figure 11/12
// measurements at a scale the serial simulator alone would make
// painful to sweep.
type MegaRow struct {
	App        string
	Clients    int
	Replicas   int
	SerialSec  float64
	ShardedSec float64
	Speedup    float64
	Identical  bool
	Completed  int64
	PerMin     float64 // completed interactions (or requests) per virtual minute
	MeanRespMs float64
}

// MegaScaleResult carries the sweep plus the host parallelism it ran
// at: the speedup column is only meaningful relative to HostCPUs and
// GoMaxProcs (a 1-CPU host runs the sharded schedule with no
// parallelism, so speedup ~1 is the honest expected value there).
type MegaScaleResult struct {
	HostCPUs   int
	GoMaxProcs int
	Rows       []MegaRow
}

func identicalReports(a, b *whodunit.Report) bool {
	if !whodunit.Diff(a, b).Empty() {
		return false
	}
	var ja, jb bytes.Buffer
	if a.JSON(&ja) != nil || b.JSON(&jb) != nil {
		return false
	}
	return bytes.Equal(ja.Bytes(), jb.Bytes())
}

func megaTPCWRow(sw MegaSweep, clients int) MegaRow {
	cfg := tpcw.DefaultMegaConfig(clients)
	cfg.Replicas = sw.Replicas
	cfg.Duration = sw.Duration
	cfg.ThinkMean = sw.Think
	run := func(sharded bool) (*tpcw.MegaResult, float64) {
		c := cfg
		c.Sharded = sharded
		start := time.Now()
		r := tpcw.MegaRun(c)
		return r, time.Since(start).Seconds()
	}
	serial, serialSec := run(false)
	sharded, shardedSec := run(true)
	row := MegaRow{
		App:        "tpcw-mega",
		Clients:    clients,
		Replicas:   sw.Replicas,
		SerialSec:  serialSec,
		ShardedSec: shardedSec,
		Identical:  serial.Completed == sharded.Completed && identicalReports(serial.Report, sharded.Report),
		Completed:  sharded.Completed,
		PerMin:     sharded.ThroughputPerMin,
	}
	if shardedSec > 0 {
		row.Speedup = serialSec / shardedSec
	}
	var count int64
	var resp vclock.Duration
	for _, name := range workload.Interactions {
		count += sharded.PerType[name].Count
		resp += sharded.PerType[name].TotalResp
	}
	if count > 0 {
		row.MeanRespMs = (resp / vclock.Duration(count)).Millis()
	}
	return row
}

func megaMeshRow(sw MegaSweep, events int) MegaRow {
	g := trace.CacheTrace()
	g.Events = events
	tr := trace.Gen(g)
	run := func(sharded bool) (*meshkv.MegaResult, float64) {
		cfg := meshkv.DefaultMegaConfig(tr)
		cfg.Replicas = sw.Replicas
		cfg.Sharded = sharded
		start := time.Now()
		r := meshkv.MegaRun(cfg)
		return r, time.Since(start).Seconds()
	}
	serial, serialSec := run(false)
	sharded, shardedSec := run(true)
	row := MegaRow{
		App:        "mesh-mega",
		Clients:    events,
		Replicas:   sw.Replicas,
		SerialSec:  serialSec,
		ShardedSec: shardedSec,
		Identical:  serial.Completed == sharded.Completed && identicalReports(serial.Report, sharded.Report),
		Completed:  sharded.Completed,
		PerMin:     sharded.ThroughputRPS * 60,
	}
	if shardedSec > 0 {
		row.Speedup = serialSec / shardedSec
	}
	if n := sharded.Gets.Count + sharded.Sets.Count; n > 0 {
		row.MeanRespMs = ((sharded.Gets.TotalLatency + sharded.Sets.TotalLatency) / vclock.Duration(n)).Millis()
	}
	return row
}

// MegaScale runs the replicated TPC-W and mesh deployments at each
// sweep scale, serial then sharded, and reports wall-clock speedup and
// bit-identity. The timed runs execute sequentially — not through the
// experiment pool — so each sharded run has the whole host to itself
// and the wall-clock comparison is fair.
func MegaScale(sw MegaSweep) MegaScaleResult {
	out := MegaScaleResult{HostCPUs: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0)}
	for _, clients := range sw.Clients {
		out.Rows = append(out.Rows, megaTPCWRow(sw, clients))
		out.Rows = append(out.Rows, megaMeshRow(sw, clients))
	}
	return out
}

// Render prints the mega-scale table.
func (r MegaScaleResult) Render(w io.Writer) {
	fmt.Fprintln(w, "== Mega-scale: one run parallelized across time domains (WithShards) ==")
	fmt.Fprintf(w, "host: %d cpus, GOMAXPROCS %d\n", r.HostCPUs, r.GoMaxProcs)
	fmt.Fprintf(w, "%-10s %9s %9s %10s %11s %8s %10s %12s %9s\n",
		"app", "clients", "replicas", "serial(s)", "sharded(s)", "speedup", "identical", "tx/min", "resp(ms)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10s %9d %9d %10.2f %11.2f %7.2fx %10v %12.0f %9.1f\n",
			row.App, row.Clients, row.Replicas, row.SerialSec, row.ShardedSec,
			row.Speedup, row.Identical, row.PerMin, row.MeanRespMs)
	}
	fmt.Fprintln(w, "(speedup tracks min(GOMAXPROCS, replicas+1) on a multi-core host; 1-CPU hosts honestly report ~1x)")
}
