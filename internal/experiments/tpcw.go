package experiments

import (
	"fmt"
	"io"

	"whodunit/internal/apps/tpcw"
	"whodunit/internal/minidb"
	"whodunit/internal/profiler"
	"whodunit/internal/vclock"
	"whodunit/internal/workload"
)

// TPCWScale sets run lengths for the TPC-W experiments.
type TPCWScale struct {
	Duration vclock.Duration
	Sweep    []int // client counts for Figures 11/12
}

// FullTPCW matches the paper sweep (50..500 clients).
var FullTPCW = TPCWScale{
	Duration: 5 * vclock.Minute,
	Sweep:    []int{50, 100, 150, 200, 250, 300, 350, 400, 450, 500},
}

// QuickTPCW keeps tests and benches fast.
var QuickTPCW = TPCWScale{
	Duration: 90 * vclock.Second,
	Sweep:    []int{50, 150, 300},
}

// --- Table 1 ----------------------------------------------------------

// Table1Row is one interaction's MySQL CPU share and mean crosstalk wait.
type Table1Row struct {
	Interaction string
	CPUSharePct float64
	MeanWaitMs  float64
}

// Table1Result reproduces Table 1 (browsing mix, 100 clients, MyISAM).
type Table1Result struct {
	Rows       []Table1Row
	Throughput float64
}

// Table1TPCW runs the browsing mix with 100 concurrent clients and
// reports MySQL CPU share and mean crosstalk per interaction.
func Table1TPCW(sc TPCWScale) Table1Result {
	cfg := tpcw.DefaultConfig(100)
	cfg.Duration = sc.Duration
	res := tpcw.Run(cfg)
	out := Table1Result{Throughput: res.ThroughputPerMin}
	for _, name := range workload.Interactions {
		out.Rows = append(out.Rows, Table1Row{
			Interaction: name,
			CPUSharePct: 100 * res.DBShare[name],
			MeanWaitMs:  res.MeanCrosstalk[name].Millis(),
		})
	}
	return out
}

// Render prints Table 1.
func (r Table1Result) Render(w io.Writer) {
	fmt.Fprintln(w, "== Table 1: MySQL CPU profile (%) and mean crosstalk wait (ms), browsing mix, 100 clients ==")
	fmt.Fprintf(w, "%-24s %12s %16s\n", "transaction", "MySQL CPU %", "mean wait (ms)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-24s %12.2f %16.2f\n", row.Interaction, row.CPUSharePct, row.MeanWaitMs)
	}
	fmt.Fprintln(w, "(paper: BestSellers 51.50%/22.16ms, SearchResult 43.28%/5.52ms, AdminConfirm 0.82%/93.76ms)")
}

// --- Figure 11 ---------------------------------------------------------

// Fig11Row is one client count's mean response times for the three
// interactions under original and optimized configurations.
type Fig11Row struct {
	Clients int
	// Milliseconds.
	AdminOrig, AdminOpt      float64
	BestOrig, BestCached     float64
	SearchOrig, SearchCached float64
}

// Fig11Result reproduces Figure 11.
type Fig11Result struct{ Rows []Fig11Row }

// Fig11ResponseTimes sweeps client counts, comparing the original system
// (MyISAM item table, no caching) against the optimized one (InnoDB item
// table for AdminConfirm; servlet caching for BestSellers/SearchResult).
// Every (client count, configuration) run is an independent simulation,
// so the whole sweep fans out across the worker pool; rows are assembled
// by sweep index, identical to the serial order.
func Fig11ResponseTimes(sc TPCWScale) Fig11Result {
	n := len(sc.Sweep)
	origs := make([]*tpcw.Result, n)
	opts := make([]*tpcw.Result, n)
	Parallel(2*n, func(j int) {
		i, optimized := j/2, j%2 == 1
		cfg := tpcw.DefaultConfig(sc.Sweep[i])
		cfg.Duration = sc.Duration
		if optimized {
			cfg.ItemEngine = minidb.EngineInnoDB
			cfg.ServletCaching = true
			opts[i] = tpcw.Run(cfg)
		} else {
			origs[i] = tpcw.Run(cfg)
		}
	})
	out := Fig11Result{Rows: make([]Fig11Row, n)}
	for i, clients := range sc.Sweep {
		ro, rp := origs[i], opts[i]
		out.Rows[i] = Fig11Row{
			Clients:      clients,
			AdminOrig:    ro.PerType[workload.AdminConfirm].Mean().Millis(),
			AdminOpt:     rp.PerType[workload.AdminConfirm].Mean().Millis(),
			BestOrig:     ro.PerType[workload.BestSellers].Mean().Millis(),
			BestCached:   rp.PerType[workload.BestSellers].Mean().Millis(),
			SearchOrig:   ro.PerType[workload.SearchResult].Mean().Millis(),
			SearchCached: rp.PerType[workload.SearchResult].Mean().Millis(),
		}
	}
	return out
}

// Render prints Figure 11's series.
func (r Fig11Result) Render(w io.Writer) {
	fmt.Fprintln(w, "== Figure 11: avg response time (ms), original vs optimized ==")
	fmt.Fprintf(w, "%8s %12s %12s %12s %12s %12s %12s\n",
		"clients", "admin-orig", "admin-opt", "best-orig", "best-cache", "search-orig", "search-cache")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%8d %12.0f %12.0f %12.0f %12.0f %12.0f %12.0f\n",
			row.Clients, row.AdminOrig, row.AdminOpt, row.BestOrig, row.BestCached,
			row.SearchOrig, row.SearchCached)
	}
	fmt.Fprintln(w, "(paper: AdminConfirm 640->550ms at 100 clients; caching slashes BestSellers/SearchResult)")
}

// --- Figure 12 ---------------------------------------------------------

// Fig12Row is one client count's throughput with and without caching.
type Fig12Row struct {
	Clients        int
	OriginalPerMin float64
	CachedPerMin   float64
}

// Fig12Result reproduces Figure 12.
type Fig12Result struct{ Rows []Fig12Row }

// Fig12Throughput sweeps client counts with and without servlet caching,
// fanning the independent (client count, caching) runs across the worker
// pool.
func Fig12Throughput(sc TPCWScale) Fig12Result {
	n := len(sc.Sweep)
	perMin := make([]float64, 2*n)
	Parallel(2*n, func(j int) {
		cfg := tpcw.DefaultConfig(sc.Sweep[j/2])
		cfg.Duration = sc.Duration
		cfg.ServletCaching = j%2 == 1
		perMin[j] = tpcw.Run(cfg).ThroughputPerMin
	})
	out := Fig12Result{Rows: make([]Fig12Row, n)}
	for i, clients := range sc.Sweep {
		out.Rows[i] = Fig12Row{
			Clients:        clients,
			OriginalPerMin: perMin[2*i],
			CachedPerMin:   perMin[2*i+1],
		}
	}
	return out
}

// Render prints Figure 12's series.
func (r Fig12Result) Render(w io.Writer) {
	fmt.Fprintln(w, "== Figure 12: throughput (interactions/min), browsing mix ==")
	fmt.Fprintf(w, "%8s %14s %14s\n", "clients", "original", "caching")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%8d %14.0f %14.0f\n", row.Clients, row.OriginalPerMin, row.CachedPerMin)
	}
	fmt.Fprintln(w, "(paper: original saturates ~200 clients at 1184/min; caching ~450 clients at 3376/min, ~3x)")
}

// --- Table 2 -----------------------------------------------------------

// Table2Row is one profiling mode's peak TPC-W throughput.
type Table2Row struct {
	Mode        string
	PerMin      float64
	OverheadPct float64
}

// Table2Result reproduces Table 2.
type Table2Result struct {
	Rows []Table2Row
	// CommOverheadPct is the synopsis bytes / application bytes ratio of
	// the Whodunit run (§9.1 reports ~1%).
	CommOverheadPct float64
}

// Table2Overhead measures peak TPC-W throughput (past the saturation
// point) under no profiling, csprof, Whodunit and gprof.
func Table2Overhead(sc TPCWScale) Table2Result {
	modes := []profiler.Mode{
		profiler.ModeOff, profiler.ModeSampling, profiler.ModeWhodunit, profiler.ModeInstrumented,
	}
	results := make([]*tpcw.Result, len(modes))
	Parallel(len(modes), func(i int) {
		cfg := tpcw.DefaultConfig(300) // beyond the no-caching knee
		cfg.Duration = sc.Duration
		cfg.Mode = modes[i]
		results[i] = tpcw.Run(cfg)
	})
	base, cs, who, gp := results[0], results[1], results[2], results[3]
	row := func(name string, r *tpcw.Result) Table2Row {
		return Table2Row{Mode: name, PerMin: r.ThroughputPerMin,
			OverheadPct: 100 * (base.ThroughputPerMin - r.ThroughputPerMin) / base.ThroughputPerMin}
	}
	out := Table2Result{Rows: []Table2Row{
		row("no profile", base),
		row("csprof", cs),
		row("whodunit", who),
		row("gprof", gp),
	}}
	if who.AppBytes > 0 {
		out.CommOverheadPct = 100 * float64(who.CtxtBytes) / float64(who.AppBytes)
	}
	return out
}

// Render prints Table 2.
func (r Table2Result) Render(w io.Writer) {
	fmt.Fprintln(w, "== Table 2: peak TPC-W throughput (interactions/min) under profiling tools ==")
	fmt.Fprintf(w, "%-12s %14s %10s\n", "profiler", "tx/min", "overhead")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12s %14.0f %9.1f%%\n", row.Mode, row.PerMin, row.OverheadPct)
	}
	fmt.Fprintf(w, "context-synopsis communication overhead: %.2f%% of application bytes (paper ~1%%)\n", r.CommOverheadPct)
	fmt.Fprintln(w, "(paper: none 1184, csprof 1151 (<3%), whodunit 1150 (+<0.1%), gprof 898 (~24%))")
}
