// Worker pool for the experiment sweeps. Every experiment run (one
// simulated application at one configuration) is independent — it owns
// its simulator, profilers, context tables and RNG streams — so the
// client-count sweeps of Figures 11/12, the four profiling modes of
// Table 2 and the baseline/profiled pairs of §9.2/§9.3 all fan out
// across GOMAXPROCS workers. Results land in index-addressed slots, so
// a sweep's output is bit-identical to the serial run at the same seed.
package experiments

import (
	"bytes"
	"io"

	"whodunit/internal/par"
)

// Parallel runs fn(i) for i in [0, n) across the worker pool (see
// par.MaxWorkers; SetWorkers adjusts it). fn must write its result into
// caller-owned storage by index and must not touch shared mutable state —
// each index is one self-contained experiment run.
func Parallel(n int, fn func(i int)) { par.Do(n, fn) }

// SetWorkers caps sweep parallelism: 1 forces serial execution, 0
// restores the GOMAXPROCS default. It returns the previous setting so
// tests can defer-restore it.
func SetWorkers(n int) (prev int) {
	prev = par.MaxWorkers
	par.MaxWorkers = n
	return prev
}

// Job is one named experiment for RunAll: Run renders the experiment's
// result into w.
type Job struct {
	Name string
	Run  func(w io.Writer)
}

// RunAll executes jobs across the worker pool, rendering each into its
// own buffer, and streams the buffers to w in job order (each followed
// by a blank line, matching the serial bench layout) as soon as a job
// and all its predecessors have finished — a long full-scale sweep
// produces output incrementally instead of going silent until the end.
// A panic in a job surfaces on the caller after the preceding jobs (and
// whatever the failing job managed to render) have been flushed, like a
// serial run crashing mid-table. The experiment binaries sweep every
// table and figure through this.
func RunAll(w io.Writer, jobs []Job) error {
	n := len(jobs)
	bufs := make([]bytes.Buffer, n)
	done := make([]chan struct{}, n)
	for i := range done {
		done[i] = make(chan struct{})
	}
	var panicked any
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		defer func() { panicked = recover() }()
		Parallel(n, func(i int) {
			defer close(done[i])
			jobs[i].Run(&bufs[i])
		})
	}()
	for i := 0; i < n; i++ {
		select {
		case <-done[i]:
		case <-finished:
			if panicked != nil {
				// The pool stopped early; jobs after the failure never
				// signal. Re-raise on the caller, like a serial run.
				panic(panicked)
			}
			<-done[i] // pool drained normally, so every job signalled
		}
		if _, err := io.Copy(w, &bufs[i]); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	<-finished
	if panicked != nil {
		panic(panicked)
	}
	return nil
}
