// Package crosstalk measures interference between concurrent transactions
// caused by lock contention (paper §6, §7.5).
//
// The monitor observes lock acquire/release events (via vclock's
// LockObserver), measures the waiting time of each acquisition, looks up
// which transaction was holding the lock at the moment the waiter started
// waiting, and aggregates waits per ordered (waiting transaction type,
// holding transaction type) pair.
package crosstalk

import (
	"fmt"
	"io"
	"sort"

	"whodunit/internal/profiler"
	"whodunit/internal/vclock"
)

// Classifier maps a transaction context to a transaction *type* label
// (e.g. the TPC-W interaction name). Crosstalk is reported between types,
// as in Table 1.
type Classifier func(tc profiler.TxnCtxt) string

// TxnOf extracts the current transaction context of a simulated thread.
// The default implementation expects the thread's Data to be a
// *profiler.Probe (or a ProbeCarrier).
type TxnOf func(t *vclock.Thread) (profiler.TxnCtxt, bool)

// ProbeCarrier lets applications that store richer per-thread state in
// Thread.Data expose the probe to the monitor.
type ProbeCarrier interface {
	Probe() *profiler.Probe
}

// DefaultTxnOf resolves a thread's transaction context through Thread.Data
// holding either a *profiler.Probe or a ProbeCarrier.
func DefaultTxnOf(t *vclock.Thread) (profiler.TxnCtxt, bool) {
	switch v := t.Data.(type) {
	case *profiler.Probe:
		return v.Txn(), true
	case ProbeCarrier:
		if p := v.Probe(); p != nil {
			return p.Txn(), true
		}
	}
	return profiler.TxnCtxt{}, false
}

type pairKey struct{ waiter, holder string }

type stat struct {
	count int64
	total vclock.Duration
}

// PairStat is one row of the crosstalk matrix: waiter waited for holder.
type PairStat struct {
	Waiter string
	Holder string
	Count  int64
	Total  vclock.Duration
	Mean   vclock.Duration
}

// Monitor implements vclock.LockObserver and accumulates the crosstalk
// matrix. Attach it to every lock of interest (Lock.Observer = monitor).
type Monitor struct {
	Classify Classifier
	Resolve  TxnOf

	pairs   map[pairKey]*stat
	waiters map[string]*stat // per waiting transaction type, all waits
	holds   map[string]*stat // per holding transaction type, hold times
}

// NewMonitor returns a monitor classifying transactions with classify.
// A nil resolve uses DefaultTxnOf.
func NewMonitor(classify Classifier, resolve TxnOf) *Monitor {
	if resolve == nil {
		resolve = DefaultTxnOf
	}
	return &Monitor{
		Classify: classify,
		Resolve:  resolve,
		pairs:    make(map[pairKey]*stat),
		waiters:  make(map[string]*stat),
		holds:    make(map[string]*stat),
	}
}

var _ vclock.LockObserver = (*Monitor)(nil)

func (m *Monitor) typeOf(t *vclock.Thread) string {
	tc, ok := m.Resolve(t)
	if !ok {
		return "(unknown)"
	}
	return m.Classify(tc)
}

// LockAcquired implements vclock.LockObserver. A contended acquisition
// charges the full wait to each (waiter, holder) pair for the
// transactions holding the lock when the wait began; with exclusive locks
// there is exactly one holder.
func (m *Monitor) LockAcquired(l *vclock.Lock, t *vclock.Thread, mode vclock.LockMode, wait vclock.Duration, blockers []*vclock.Thread) {
	if wait <= 0 {
		return
	}
	wt := m.typeOf(t)
	ws, ok := m.waiters[wt]
	if !ok {
		ws = &stat{}
		m.waiters[wt] = ws
	}
	ws.count++
	ws.total += wait
	for _, b := range blockers {
		ht := m.typeOf(b)
		k := pairKey{wt, ht}
		ps, ok := m.pairs[k]
		if !ok {
			ps = &stat{}
			m.pairs[k] = ps
		}
		ps.count++
		ps.total += wait
	}
}

// LockReleased implements vclock.LockObserver, accumulating hold times per
// transaction type.
func (m *Monitor) LockReleased(l *vclock.Lock, t *vclock.Thread, mode vclock.LockMode, held vclock.Duration) {
	ht := m.typeOf(t)
	hs, ok := m.holds[ht]
	if !ok {
		hs = &stat{}
		m.holds[ht] = hs
	}
	hs.count++
	hs.total += held
}

// Pairs returns the crosstalk matrix rows sorted by descending total wait,
// ties by waiter then holder.
func (m *Monitor) Pairs() []PairStat {
	out := make([]PairStat, 0, len(m.pairs))
	for k, s := range m.pairs {
		out = append(out, PairStat{
			Waiter: k.waiter, Holder: k.holder,
			Count: s.count, Total: s.total,
			Mean: s.total / vclock.Duration(s.count),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		if out[i].Waiter != out[j].Waiter {
			return out[i].Waiter < out[j].Waiter
		}
		return out[i].Holder < out[j].Holder
	})
	return out
}

// WaitTotal reports the total time transactions of type label spent
// waiting on locks, and the number of waits.
func (m *Monitor) WaitTotal(label string) (vclock.Duration, int64) {
	s, ok := m.waiters[label]
	if !ok {
		return 0, 0
	}
	return s.total, s.count
}

// WaiterTypes returns every transaction type that ever waited, sorted.
func (m *Monitor) WaiterTypes() []string {
	out := make([]string, 0, len(m.waiters))
	for k := range m.waiters {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Render writes the crosstalk matrix as text.
func (m *Monitor) Render(w io.Writer) {
	fmt.Fprintf(w, "%-24s %-24s %8s %12s\n", "waiter", "holder", "count", "mean wait")
	for _, p := range m.Pairs() {
		fmt.Fprintf(w, "%-24s %-24s %8d %10.2fms\n", p.Waiter, p.Holder, p.Count, p.Mean.Millis())
	}
}
