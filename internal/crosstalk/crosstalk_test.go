package crosstalk

import (
	"strings"
	"testing"

	"whodunit/internal/profiler"
	"whodunit/internal/tranctx"
	"whodunit/internal/vclock"
)

// labelClassifier returns the last hop label of the local context.
func labelClassifier(tc profiler.TxnCtxt) string {
	if tc.Local == nil || tc.Local.IsRoot() {
		return "(none)"
	}
	return tc.Local.Last().Label
}

// setup builds a sim, profiler, monitored lock and a helper that spawns a
// thread running a transaction of a given type.
func setup() (*vclock.Sim, *profiler.Profiler, *vclock.Lock, *Monitor) {
	s := vclock.New()
	p := profiler.New("db", profiler.ModeWhodunit)
	l := s.NewLock("item_table")
	mon := NewMonitor(labelClassifier, nil)
	l.Observer = mon
	return s, p, l, mon
}

func spawnTxn(s *vclock.Sim, p *profiler.Profiler, cpu *vclock.CPU, l *vclock.Lock,
	at vclock.Time, txnType string, mode vclock.LockMode, hold vclock.Duration) {
	s.GoAt(at, txnType, func(th *vclock.Thread) {
		pr := p.NewProbe(th, cpu)
		th.Data = pr
		pr.SetTxn(profiler.TxnCtxt{Local: p.Table.Root().Append(tranctx.HandlerHop("db", txnType))})
		th.Lock(l, mode)
		th.Sleep(hold)
		th.Unlock(l)
	})
}

func TestCrosstalkPairRecorded(t *testing.T) {
	s, p, l, mon := setup()
	cpu := s.NewCPU("cpu", 4)
	// BestSellers holds exclusively 0-20ms; AdminConfirm arrives at 5ms.
	spawnTxn(s, p, cpu, l, 0, "BestSellers", vclock.Exclusive, 20*vclock.Millisecond)
	spawnTxn(s, p, cpu, l, vclock.Time(5*vclock.Millisecond), "AdminConfirm", vclock.Exclusive, vclock.Millisecond)
	s.Run()
	s.Shutdown()

	pairs := mon.Pairs()
	if len(pairs) != 1 {
		t.Fatalf("pairs = %+v, want 1", pairs)
	}
	pr := pairs[0]
	if pr.Waiter != "AdminConfirm" || pr.Holder != "BestSellers" {
		t.Fatalf("pair = %+v", pr)
	}
	if pr.Mean != 15*vclock.Millisecond {
		t.Fatalf("mean wait = %v, want 15ms", pr.Mean)
	}
	total, n := mon.WaitTotal("AdminConfirm")
	if total != 15*vclock.Millisecond || n != 1 {
		t.Fatalf("wait total = %v/%d", total, n)
	}
}

func TestCrosstalkBothDirections(t *testing.T) {
	// §6: crosstalk for (tA,tB) and (tB,tA) are measured independently.
	s, p, l, mon := setup()
	cpu := s.NewCPU("cpu", 4)
	spawnTxn(s, p, cpu, l, 0, "A", vclock.Exclusive, 10*vclock.Millisecond)
	spawnTxn(s, p, cpu, l, vclock.Time(2*vclock.Millisecond), "B", vclock.Exclusive, 10*vclock.Millisecond)
	// A second A arrives while B holds.
	spawnTxn(s, p, cpu, l, vclock.Time(12*vclock.Millisecond), "A", vclock.Exclusive, vclock.Millisecond)
	s.Run()
	s.Shutdown()

	var ab, ba bool
	for _, pr := range mon.Pairs() {
		if pr.Waiter == "B" && pr.Holder == "A" {
			ba = true
		}
		if pr.Waiter == "A" && pr.Holder == "B" {
			ab = true
		}
	}
	if !ab || !ba {
		t.Fatalf("expected both directions, got %+v", mon.Pairs())
	}
}

func TestSharedReadersDoNotCrosstalk(t *testing.T) {
	s, p, l, mon := setup()
	cpu := s.NewCPU("cpu", 4)
	for i := 0; i < 3; i++ {
		spawnTxn(s, p, cpu, l, 0, "Read", vclock.Shared, 5*vclock.Millisecond)
	}
	s.Run()
	s.Shutdown()
	if len(mon.Pairs()) != 0 {
		t.Fatalf("readers should not wait: %+v", mon.Pairs())
	}
}

func TestWriterWaitsOnReadersAttributed(t *testing.T) {
	// The MyISAM situation: AdminConfirm (writer) waits for read-only
	// transactions holding the shared table lock.
	s, p, l, mon := setup()
	cpu := s.NewCPU("cpu", 4)
	spawnTxn(s, p, cpu, l, 0, "SearchResult", vclock.Shared, 30*vclock.Millisecond)
	spawnTxn(s, p, cpu, l, vclock.Time(vclock.Millisecond), "AdminConfirm", vclock.Exclusive, vclock.Millisecond)
	s.Run()
	s.Shutdown()
	pairs := mon.Pairs()
	if len(pairs) != 1 || pairs[0].Waiter != "AdminConfirm" || pairs[0].Holder != "SearchResult" {
		t.Fatalf("pairs = %+v", pairs)
	}
	if pairs[0].Mean != 29*vclock.Millisecond {
		t.Fatalf("mean = %v", pairs[0].Mean)
	}
}

func TestUnknownThreadsClassified(t *testing.T) {
	s := vclock.New()
	l := s.NewLock("l")
	mon := NewMonitor(labelClassifier, nil)
	l.Observer = mon
	s.Go("plain", func(th *vclock.Thread) { // no probe in Data
		th.Lock(l, vclock.Exclusive)
		th.Sleep(5 * vclock.Millisecond)
		th.Unlock(l)
	})
	s.GoAt(vclock.Time(vclock.Millisecond), "plain2", func(th *vclock.Thread) {
		th.Lock(l, vclock.Exclusive)
		th.Unlock(l)
	})
	s.Run()
	s.Shutdown()
	pairs := mon.Pairs()
	if len(pairs) != 1 || pairs[0].Waiter != "(unknown)" {
		t.Fatalf("pairs = %+v", pairs)
	}
}

func TestRenderOutput(t *testing.T) {
	s, p, l, mon := setup()
	cpu := s.NewCPU("cpu", 4)
	spawnTxn(s, p, cpu, l, 0, "X", vclock.Exclusive, 4*vclock.Millisecond)
	spawnTxn(s, p, cpu, l, vclock.Time(vclock.Millisecond), "Y", vclock.Exclusive, vclock.Millisecond)
	s.Run()
	s.Shutdown()
	var sb strings.Builder
	mon.Render(&sb)
	if !strings.Contains(sb.String(), "Y") || !strings.Contains(sb.String(), "X") {
		t.Fatalf("render missing rows: %s", sb.String())
	}
}

func TestWaiterTypesSorted(t *testing.T) {
	s, p, l, mon := setup()
	cpu := s.NewCPU("cpu", 4)
	spawnTxn(s, p, cpu, l, 0, "Zed", vclock.Exclusive, 10*vclock.Millisecond)
	spawnTxn(s, p, cpu, l, vclock.Time(vclock.Millisecond), "Alpha", vclock.Exclusive, vclock.Millisecond)
	spawnTxn(s, p, cpu, l, vclock.Time(2*vclock.Millisecond), "Beta", vclock.Exclusive, vclock.Millisecond)
	s.Run()
	s.Shutdown()
	types := mon.WaiterTypes()
	if len(types) != 2 || types[0] != "Alpha" || types[1] != "Beta" {
		t.Fatalf("types = %v", types)
	}
}
