package crosstalk

import (
	"strings"
	"testing"

	"whodunit/internal/profiler"
	"whodunit/internal/tranctx"
	"whodunit/internal/vclock"
)

// labelClassifier returns the last hop label of the local context.
func labelClassifier(tc profiler.TxnCtxt) string {
	if tc.Local == nil || tc.Local.IsRoot() {
		return "(none)"
	}
	return tc.Local.Last().Label
}

// setup builds a sim, profiler, monitored lock and a helper that spawns a
// thread running a transaction of a given type.
func setup() (*vclock.Sim, *profiler.Profiler, *vclock.Lock, *Monitor) {
	s := vclock.New()
	p := profiler.New("db", profiler.ModeWhodunit)
	l := s.NewLock("item_table")
	mon := NewMonitor(labelClassifier, nil)
	l.Observer = mon
	return s, p, l, mon
}

func spawnTxn(s *vclock.Sim, p *profiler.Profiler, cpu *vclock.CPU, l *vclock.Lock,
	at vclock.Time, txnType string, mode vclock.LockMode, hold vclock.Duration) {
	s.GoAt(at, txnType, func(th *vclock.Thread) {
		pr := p.NewProbe(th, cpu)
		th.Data = pr
		pr.SetTxn(profiler.TxnCtxt{Local: p.Table.Root().Append(tranctx.HandlerHop("db", txnType))})
		th.Lock(l, mode)
		th.Sleep(hold)
		th.Unlock(l)
	})
}

func TestCrosstalkPairRecorded(t *testing.T) {
	s, p, l, mon := setup()
	cpu := s.NewCPU("cpu", 4)
	// BestSellers holds exclusively 0-20ms; AdminConfirm arrives at 5ms.
	spawnTxn(s, p, cpu, l, 0, "BestSellers", vclock.Exclusive, 20*vclock.Millisecond)
	spawnTxn(s, p, cpu, l, vclock.Time(5*vclock.Millisecond), "AdminConfirm", vclock.Exclusive, vclock.Millisecond)
	s.Run()
	s.Shutdown()

	pairs := mon.Pairs()
	if len(pairs) != 1 {
		t.Fatalf("pairs = %+v, want 1", pairs)
	}
	pr := pairs[0]
	if pr.Waiter != "AdminConfirm" || pr.Holder != "BestSellers" {
		t.Fatalf("pair = %+v", pr)
	}
	if pr.Mean != 15*vclock.Millisecond {
		t.Fatalf("mean wait = %v, want 15ms", pr.Mean)
	}
	total, n := mon.WaitTotal("AdminConfirm")
	if total != 15*vclock.Millisecond || n != 1 {
		t.Fatalf("wait total = %v/%d", total, n)
	}
}

func TestCrosstalkBothDirections(t *testing.T) {
	// §6: crosstalk for (tA,tB) and (tB,tA) are measured independently.
	s, p, l, mon := setup()
	cpu := s.NewCPU("cpu", 4)
	spawnTxn(s, p, cpu, l, 0, "A", vclock.Exclusive, 10*vclock.Millisecond)
	spawnTxn(s, p, cpu, l, vclock.Time(2*vclock.Millisecond), "B", vclock.Exclusive, 10*vclock.Millisecond)
	// A second A arrives while B holds.
	spawnTxn(s, p, cpu, l, vclock.Time(12*vclock.Millisecond), "A", vclock.Exclusive, vclock.Millisecond)
	s.Run()
	s.Shutdown()

	var ab, ba bool
	for _, pr := range mon.Pairs() {
		if pr.Waiter == "B" && pr.Holder == "A" {
			ba = true
		}
		if pr.Waiter == "A" && pr.Holder == "B" {
			ab = true
		}
	}
	if !ab || !ba {
		t.Fatalf("expected both directions, got %+v", mon.Pairs())
	}
}

func TestSharedReadersDoNotCrosstalk(t *testing.T) {
	s, p, l, mon := setup()
	cpu := s.NewCPU("cpu", 4)
	for i := 0; i < 3; i++ {
		spawnTxn(s, p, cpu, l, 0, "Read", vclock.Shared, 5*vclock.Millisecond)
	}
	s.Run()
	s.Shutdown()
	if len(mon.Pairs()) != 0 {
		t.Fatalf("readers should not wait: %+v", mon.Pairs())
	}
}

func TestWriterWaitsOnReadersAttributed(t *testing.T) {
	// The MyISAM situation: AdminConfirm (writer) waits for read-only
	// transactions holding the shared table lock.
	s, p, l, mon := setup()
	cpu := s.NewCPU("cpu", 4)
	spawnTxn(s, p, cpu, l, 0, "SearchResult", vclock.Shared, 30*vclock.Millisecond)
	spawnTxn(s, p, cpu, l, vclock.Time(vclock.Millisecond), "AdminConfirm", vclock.Exclusive, vclock.Millisecond)
	s.Run()
	s.Shutdown()
	pairs := mon.Pairs()
	if len(pairs) != 1 || pairs[0].Waiter != "AdminConfirm" || pairs[0].Holder != "SearchResult" {
		t.Fatalf("pairs = %+v", pairs)
	}
	if pairs[0].Mean != 29*vclock.Millisecond {
		t.Fatalf("mean = %v", pairs[0].Mean)
	}
}

func TestUnknownThreadsClassified(t *testing.T) {
	s := vclock.New()
	l := s.NewLock("l")
	mon := NewMonitor(labelClassifier, nil)
	l.Observer = mon
	s.Go("plain", func(th *vclock.Thread) { // no probe in Data
		th.Lock(l, vclock.Exclusive)
		th.Sleep(5 * vclock.Millisecond)
		th.Unlock(l)
	})
	s.GoAt(vclock.Time(vclock.Millisecond), "plain2", func(th *vclock.Thread) {
		th.Lock(l, vclock.Exclusive)
		th.Unlock(l)
	})
	s.Run()
	s.Shutdown()
	pairs := mon.Pairs()
	if len(pairs) != 1 || pairs[0].Waiter != "(unknown)" {
		t.Fatalf("pairs = %+v", pairs)
	}
}

func TestRenderOutput(t *testing.T) {
	s, p, l, mon := setup()
	cpu := s.NewCPU("cpu", 4)
	spawnTxn(s, p, cpu, l, 0, "X", vclock.Exclusive, 4*vclock.Millisecond)
	spawnTxn(s, p, cpu, l, vclock.Time(vclock.Millisecond), "Y", vclock.Exclusive, vclock.Millisecond)
	s.Run()
	s.Shutdown()
	var sb strings.Builder
	mon.Render(&sb)
	if !strings.Contains(sb.String(), "Y") || !strings.Contains(sb.String(), "X") {
		t.Fatalf("render missing rows: %s", sb.String())
	}
}

func TestWaiterTypesSorted(t *testing.T) {
	s, p, l, mon := setup()
	cpu := s.NewCPU("cpu", 4)
	spawnTxn(s, p, cpu, l, 0, "Zed", vclock.Exclusive, 10*vclock.Millisecond)
	spawnTxn(s, p, cpu, l, vclock.Time(vclock.Millisecond), "Alpha", vclock.Exclusive, vclock.Millisecond)
	spawnTxn(s, p, cpu, l, vclock.Time(2*vclock.Millisecond), "Beta", vclock.Exclusive, vclock.Millisecond)
	s.Run()
	s.Shutdown()
	types := mon.WaiterTypes()
	if len(types) != 2 || types[0] != "Alpha" || types[1] != "Beta" {
		t.Fatalf("types = %v", types)
	}
}

// TestMatrixAccumulation pins the aggregation arithmetic: repeated waits
// on the same (waiter, holder) pair accumulate count and total, the
// reported mean is total/count, and WaitTotal aggregates across holders.
func TestMatrixAccumulation(t *testing.T) {
	s, p, l, mon := setup()
	cpu := s.NewCPU("cpu", 8)
	// Three rounds: OrderDisplay holds 10ms, Home arrives mid-hold and
	// waits 6ms, 4ms, 2ms respectively.
	for i, wait := range []vclock.Duration{6 * vclock.Millisecond, 4 * vclock.Millisecond, 2 * vclock.Millisecond} {
		base := vclock.Time(i * int(20*vclock.Millisecond))
		spawnTxn(s, p, cpu, l, base, "OrderDisplay", vclock.Exclusive, 10*vclock.Millisecond)
		spawnTxn(s, p, cpu, l, base+vclock.Time(10*vclock.Millisecond-wait), "Home", vclock.Exclusive, vclock.Millisecond)
	}
	s.Run()
	s.Shutdown()

	pairs := mon.Pairs()
	if len(pairs) != 1 {
		t.Fatalf("pairs = %+v, want exactly the accumulated (Home, OrderDisplay) cell", pairs)
	}
	got := pairs[0]
	if got.Waiter != "Home" || got.Holder != "OrderDisplay" {
		t.Fatalf("pair = %+v", got)
	}
	if got.Count != 3 {
		t.Fatalf("count = %d, want 3 accumulated waits", got.Count)
	}
	if want := 12 * vclock.Millisecond; got.Total != want {
		t.Fatalf("total = %v, want %v", got.Total, want)
	}
	if want := 4 * vclock.Millisecond; got.Mean != want {
		t.Fatalf("mean = %v, want %v", got.Mean, want)
	}
	total, n := mon.WaitTotal("Home")
	if total != 12*vclock.Millisecond || n != 3 {
		t.Fatalf("WaitTotal(Home) = %v/%d, want 12ms/3", total, n)
	}
	if total, n := mon.WaitTotal("OrderDisplay"); total != 0 || n != 0 {
		t.Fatalf("WaitTotal(OrderDisplay) = %v/%d, want zero (it never waited)", total, n)
	}
}

// TestPairsSortedByTotalWait pins the matrix ordering contract: rows
// sort by descending total wait, ties broken by waiter then holder.
func TestPairsSortedByTotalWait(t *testing.T) {
	s, p, l, mon := setup()
	cpu := s.NewCPU("cpu", 8)
	// BestSellers holds 30ms; two distinct waiters arrive at different
	// points, giving different totals.
	spawnTxn(s, p, cpu, l, 0, "BestSellers", vclock.Exclusive, 30*vclock.Millisecond)
	spawnTxn(s, p, cpu, l, vclock.Time(5*vclock.Millisecond), "Home", vclock.Exclusive, vclock.Millisecond)
	spawnTxn(s, p, cpu, l, vclock.Time(20*vclock.Millisecond), "AdminConfirm", vclock.Exclusive, vclock.Millisecond)
	s.Run()
	s.Shutdown()

	pairs := mon.Pairs()
	if len(pairs) < 2 {
		t.Fatalf("pairs = %+v", pairs)
	}
	for i := 1; i < len(pairs); i++ {
		if pairs[i].Total > pairs[i-1].Total {
			t.Fatalf("pairs not sorted by descending total: %+v", pairs)
		}
	}
	if pairs[0].Waiter != "Home" {
		t.Fatalf("largest total should be Home's 25ms wait: %+v", pairs[0])
	}
}
