package stitch

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"whodunit/internal/ipc"
)

// Streaming dump format: a stage writes its profile as JSON Lines — a
// header line naming the stage, then one line per tree and per send —
// so a dump interrupted mid-write (the stage crashed, the disk filled)
// is still a parseable prefix. ReadDumpStream salvages that prefix and
// reports how many records were lost, instead of the all-or-nothing
// failure a truncated monolithic JSON document gives.

// streamLine is one line of the streaming format. Exactly one field is
// set: Stage on the header line, Tree or Send on record lines.
type streamLine struct {
	Stage *string         `json:"stage,omitempty"`
	Tree  *TreeDump       `json:"tree,omitempty"`
	Send  *ipc.SendRecord `json:"send,omitempty"`
}

// EncodeStream writes the dump in the streaming (JSON Lines) format.
func (d StageDump) EncodeStream(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(streamLine{Stage: &d.Stage}); err != nil {
		return fmt.Errorf("stitch: encode stream header: %w", err)
	}
	for i := range d.Trees {
		if err := enc.Encode(streamLine{Tree: &d.Trees[i]}); err != nil {
			return fmt.Errorf("stitch: encode tree record: %w", err)
		}
	}
	for i := range d.Sends {
		if err := enc.Encode(streamLine{Send: &d.Sends[i]}); err != nil {
			return fmt.Errorf("stitch: encode send record: %w", err)
		}
	}
	return nil
}

// ReadDumpStream reads a streaming dump back, salvaging what it can:
// records up to the first truncated or corrupt line are kept, and that
// line plus everything after it is counted in lost (also recorded on
// the returned dump as Lost). Only a missing or unreadable header line
// is an error — with no stage name the records cannot be attributed,
// so there is nothing to salvage.
func ReadDumpStream(r io.Reader) (d StageDump, lost int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if serr := sc.Err(); serr != nil {
			return StageDump{}, 0, fmt.Errorf("stitch: read stream header: %w", serr)
		}
		return StageDump{}, 0, fmt.Errorf("stitch: stream dump is empty")
	}
	var hdr streamLine
	if uerr := json.Unmarshal(sc.Bytes(), &hdr); uerr != nil || hdr.Stage == nil {
		return StageDump{}, 0, fmt.Errorf("stitch: stream dump has no stage header")
	}
	d.Stage = *hdr.Stage
	salvaging := true
	for sc.Scan() {
		if !salvaging {
			lost++
			continue
		}
		var line streamLine
		if uerr := json.Unmarshal(sc.Bytes(), &line); uerr != nil {
			salvaging = false
			lost++
			continue
		}
		switch {
		case line.Tree != nil:
			d.Trees = append(d.Trees, *line.Tree)
		case line.Send != nil:
			d.Sends = append(d.Sends, *line.Send)
		default:
			// A well-formed JSON line that is none of the three record
			// kinds is corruption all the same.
			salvaging = false
			lost++
		}
	}
	if serr := sc.Err(); serr != nil {
		// The reader failed mid-stream (or a line overflowed the buffer):
		// whatever was decoded so far is the salvageable prefix, and at
		// least one record is unaccounted for.
		lost++
	}
	d.Lost = lost
	return d, lost, nil
}
