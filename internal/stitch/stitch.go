// Package stitch performs Whodunit's post-mortem presentation phase
// (§7.1, Figure 7): it takes the per-stage profiles written at the end of
// each stage's run and stitches them into one global transaction graph,
// connecting the context a request was sent from in one stage to the CCT
// it established in the next, with request edges (and the implied
// response edges back).
package stitch

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"whodunit/internal/cct"
	"whodunit/internal/ipc"
	"whodunit/internal/profiler"
)

// TreeDump is one serialized CCT with its transaction-context annotation.
type TreeDump struct {
	Key     string           `json:"key"`     // TxnCtxt key (prefix|local)
	Prefix  string           `json:"prefix"`  // rendered synopsis chain
	Label   string           `json:"label"`   // human-readable context
	Total   int64            `json:"total"`   // samples in the tree
	Records []cct.FlatRecord `json:"records"` // flattened tree
}

// StageDump is the on-disk profile of one stage: its CCTs plus the chains
// it sent (with originating contexts), i.e. everything the presentation
// phase needs.
type StageDump struct {
	Stage string           `json:"stage"`
	Trees []TreeDump       `json:"trees"`
	Sends []ipc.SendRecord `json:"sends"`
	// Lost counts dump records that could not be salvaged when the dump
	// was read back from a truncated or corrupt stream (ReadDumpStream);
	// the rest of the dump is the complete prefix that survived.
	Lost int `json:"lost,omitempty"`
}

// Source is anything holding a per-context tree dictionary to dump: a
// live *profiler.Profiler or a retired *profiler.Snapshot (the windowed
// serving path dumps snapshots, not live profilers).
type Source interface {
	Entries() []profiler.TreeEntry
}

// Dump captures a stage's profiler (and optionally its endpoint) into a
// serializable StageDump.
func Dump(p *profiler.Profiler, eps ...*ipc.Endpoint) StageDump {
	return DumpFrom(p.Stage, p, eps...)
}

// DumpFrom is Dump for any tree Source, with the stage name supplied by
// the caller.
func DumpFrom(stage string, src Source, eps ...*ipc.Endpoint) StageDump {
	d := StageDump{Stage: stage}
	for _, e := range src.Entries() {
		d.Trees = append(d.Trees, TreeDump{
			Key:     e.Key,
			Prefix:  e.Ctxt.Prefix.String(),
			Label:   e.Ctxt.Label(),
			Total:   e.Tree.Total(),
			Records: e.Tree.Flatten(),
		})
	}
	for _, ep := range eps {
		d.Sends = append(d.Sends, ep.Sends()...)
	}
	return d
}

// Encode writes the dump as JSON.
func (d StageDump) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// DecodeDump reads a StageDump from JSON.
func DecodeDump(r io.Reader) (StageDump, error) {
	var d StageDump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return StageDump{}, fmt.Errorf("stitch: decode dump: %w", err)
	}
	return d, nil
}

// Node is one (stage, transaction context) profile in the stitched graph.
type Node struct {
	Stage string
	Label string
	Total int64
	Tree  *cct.Tree
}

// Edge connects the context a message was sent from to the context it
// established (request), or back (response).
type Edge struct {
	From, To int // node indices
	Kind     string
}

// Graph is the stitched end-to-end transactional profile.
type Graph struct {
	Nodes []Node
	Edges []Edge
	// Missing names stages declared absent when the graph was built
	// partially (BuildPartial): a crashed tier whose dump never landed.
	// Sends that found no receiver are then represented by severed edges
	// to a synthetic "(missing)" node instead of being dropped.
	Missing []string
}

// Build stitches per-stage dumps into the global graph. Trees are matched
// by synopsis chain: stage B's tree with prefix P connects to the stage A
// context that sent chain P. Sends with no matching receiver are simply
// omitted — in a complete profile those are response sends back to a
// context the stitcher already connected, not evidence of loss.
func Build(dumps []StageDump) *Graph { return BuildPartial(dumps, nil) }

// BuildPartial is Build for profiles known to be incomplete: missing
// names the stages whose dumps are absent (a crashed tier, a dump file
// lost in collection). When missing is non-empty, each sender context
// whose sends matched no receiver gets one "severed" edge to a synthetic
// "(missing)" node, so the partial graph shows where transactions left
// the observed world instead of silently ending. With an empty missing
// list it is exactly Build — unmatched response sends in a complete
// profile are expected and must not be severed.
func BuildPartial(dumps []StageDump, missing []string) *Graph {
	g := &Graph{}
	if len(missing) > 0 {
		g.Missing = append([]string(nil), missing...)
		sort.Strings(g.Missing)
	}
	// Index nodes by (stage, context key), and receiver candidates by
	// prefix chain, in one pass. The per-send matching below is then a
	// single map lookup instead of the previous O(sends × stages × trees)
	// rescan of every dump. Candidate lists keep dump/tree order, so the
	// emitted edge set is identical.
	byStageKey := make(map[string]int)
	byPrefix := make(map[string][]int)
	stageOf := make([]string, 0)
	for _, d := range dumps {
		for _, td := range d.Trees {
			idx := len(g.Nodes)
			g.Nodes = append(g.Nodes, Node{
				Stage: d.Stage,
				Label: td.Label,
				Total: td.Total,
				Tree:  cct.FromRecords(td.Label, td.Records),
			})
			byStageKey[d.Stage+"\x00"+td.Key] = idx
			byPrefix[td.Prefix] = append(byPrefix[td.Prefix], idx)
			stageOf = append(stageOf, d.Stage)
		}
	}
	// Request edges: sender context --chain--> receiver tree whose prefix
	// equals the sent chain (in another stage).
	severed := make(map[int]bool) // sender nodes with at least one lost send
	for _, d := range dumps {
		for _, send := range d.Sends {
			from, ok := byStageKey[d.Stage+"\x00"+send.FromKey]
			if !ok {
				continue
			}
			matched := false
			for _, to := range byPrefix[send.Chain] {
				if stageOf[to] == d.Stage {
					continue
				}
				matched = true
				g.Edges = append(g.Edges, Edge{From: from, To: to, Kind: "request"})
				g.Edges = append(g.Edges, Edge{From: to, To: from, Kind: "response"})
			}
			if !matched && len(g.Missing) > 0 {
				severed[from] = true
			}
		}
	}
	if len(severed) > 0 {
		sink := len(g.Nodes)
		g.Nodes = append(g.Nodes, Node{
			Stage: "(missing)",
			Label: "lost to: " + strings.Join(g.Missing, ", "),
			Tree:  cct.New("(missing)"),
		})
		for from := range severed {
			g.Edges = append(g.Edges, Edge{From: from, To: sink, Kind: "severed"})
		}
	}
	sort.Slice(g.Edges, func(i, j int) bool {
		a, b := g.Edges[i], g.Edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Kind < b.Kind
	})
	return g
}

// Render writes a text form of the graph: nodes with totals and edges.
func (g *Graph) Render(w io.Writer) {
	if len(g.Missing) > 0 {
		fmt.Fprintf(w, "partial graph; missing stages: %s\n", strings.Join(g.Missing, ", "))
	}
	grand := int64(0)
	for _, n := range g.Nodes {
		grand += n.Total
	}
	for i, n := range g.Nodes {
		pct := 0.0
		if grand > 0 {
			pct = 100 * float64(n.Total) / float64(grand)
		}
		fmt.Fprintf(w, "node %d: [%s] %s  samples=%d (%.2f%%)\n", i, n.Stage, n.Label, n.Total, pct)
	}
	for _, e := range g.Edges {
		fmt.Fprintf(w, "edge: %d -%s-> %d\n", e.From, e.Kind, e.To)
	}
}

// DOT renders the graph in Graphviz dot syntax; request edges solid,
// response edges dashed (as in Figure 7).
func (g *Graph) DOT(w io.Writer) {
	fmt.Fprintln(w, "digraph whodunit {")
	fmt.Fprintln(w, "  rankdir=LR;")
	for i, n := range g.Nodes {
		label := strings.ReplaceAll(fmt.Sprintf("%s\\n%s\\n%d samples", n.Stage, n.Label, n.Total), `"`, `'`)
		fmt.Fprintf(w, "  n%d [shape=box,label=\"%s\"];\n", i, label)
	}
	for _, e := range g.Edges {
		style := "solid"
		switch e.Kind {
		case "response":
			style = "dashed"
		case "severed":
			style = "dotted"
		}
		fmt.Fprintf(w, "  n%d -> n%d [style=%s,label=\"%s\"];\n", e.From, e.To, style, e.Kind)
	}
	fmt.Fprintln(w, "}")
}
