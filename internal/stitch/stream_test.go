package stitch

import (
	"bytes"
	"strings"
	"testing"

	"whodunit/internal/cct"
	"whodunit/internal/ipc"
)

func sampleDump() StageDump {
	return StageDump{
		Stage: "web",
		Trees: []TreeDump{
			{Key: "|root", Prefix: "", Label: "root", Total: 10,
				Records: []cct.FlatRecord{{Path: []string{"main", "handle"}, Self: 10, Calls: 1}}},
			{Key: "c|q", Prefix: "c", Label: "query", Total: 4,
				Records: []cct.FlatRecord{{Path: []string{"main", "query"}, Self: 4, Calls: 2}}},
		},
		Sends: []ipc.SendRecord{{FromKey: "|root", Chain: "web:1"}},
	}
}

func TestStreamRoundTrip(t *testing.T) {
	d := sampleDump()
	var buf bytes.Buffer
	if err := d.EncodeStream(&buf); err != nil {
		t.Fatal(err)
	}
	got, lost, err := ReadDumpStream(&buf)
	if err != nil || lost != 0 {
		t.Fatalf("ReadDumpStream: lost=%d err=%v", lost, err)
	}
	if got.Stage != d.Stage || len(got.Trees) != 2 || len(got.Sends) != 1 {
		t.Fatalf("round trip mangled the dump: %+v", got)
	}
	if got.Trees[1].Label != "query" || got.Trees[1].Records[0].Self != 4 {
		t.Fatalf("tree record mangled: %+v", got.Trees[1])
	}
}

func TestStreamSalvagesTruncatedTail(t *testing.T) {
	d := sampleDump()
	var buf bytes.Buffer
	if err := d.EncodeStream(&buf); err != nil {
		t.Fatal(err)
	}
	// Chop the stream mid-way through its final line, as a crash during
	// dump writing would.
	whole := buf.Bytes()
	cut := bytes.LastIndexByte(whole[:len(whole)-1], '\n') + 1 + 5
	got, lost, err := ReadDumpStream(bytes.NewReader(whole[:cut]))
	if err != nil {
		t.Fatalf("truncated stream should salvage, got error %v", err)
	}
	if lost != 1 || got.Lost != 1 {
		t.Fatalf("lost = %d (dump.Lost = %d), want 1", lost, got.Lost)
	}
	if len(got.Trees) != 2 || len(got.Sends) != 0 {
		t.Fatalf("salvaged prefix wrong: %d trees, %d sends", len(got.Trees), len(got.Sends))
	}
}

func TestStreamCorruptMiddleStopsSalvage(t *testing.T) {
	lines := []string{
		`{"stage":"web"}`,
		`{"tree":{"key":"|a","label":"a","total":1}}`,
		`garbage not json`,
		`{"tree":{"key":"|b","label":"b","total":2}}`,
	}
	got, lost, err := ReadDumpStream(strings.NewReader(strings.Join(lines, "\n") + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	// Records after the corrupt line are unaccounted for: the complete
	// prefix is one tree, everything else counts as lost.
	if len(got.Trees) != 1 || lost != 2 {
		t.Fatalf("trees=%d lost=%d, want 1 salvaged and 2 lost", len(got.Trees), lost)
	}
}

func TestStreamNoHeaderErrors(t *testing.T) {
	for _, in := range []string{"", "not json\n", `{"tree":{"key":"|a"}}` + "\n"} {
		if _, _, err := ReadDumpStream(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: want error, got none", in)
		}
	}
}

func FuzzReadDump(f *testing.F) {
	var buf bytes.Buffer
	if err := sampleDump().EncodeStream(&buf); err != nil {
		f.Fatal(err)
	}
	whole := buf.String()
	f.Add(whole)
	f.Add(whole[:len(whole)/2])
	f.Add(whole[:len(whole)-3])
	f.Add(`{"stage":"x"}` + "\n" + `{"send":{"FromKey":"k","Chain":"c"}}` + "\n")
	f.Add("{\"stage\":\"x\"}\n{}\n")
	f.Add("")
	f.Add("\x00\x01\x02")
	f.Add(`{"stage":"x"}` + "\n" + strings.Repeat(`{"tree":{"key":"|t","total":1}}`+"\n", 50))
	f.Fuzz(func(t *testing.T, in string) {
		// Whatever the bytes, ReadDumpStream must either salvage or error
		// — never panic — and a non-error result must account for every
		// record line as either salvaged or lost.
		d, lost, err := ReadDumpStream(strings.NewReader(in))
		if err != nil {
			return
		}
		if lost < 0 || d.Lost != lost {
			t.Fatalf("lost accounting broken: lost=%d dump.Lost=%d", lost, d.Lost)
		}
		// Salvaged dumps must stitch without panicking, Lost and all.
		BuildPartial([]StageDump{d}, []string{"gone"})
	})
}
