package stitch

import (
	"bytes"
	"strings"
	"testing"

	"whodunit/internal/ipc"
	"whodunit/internal/profiler"
	"whodunit/internal/vclock"
)

// buildTwoTier runs the Figure 6/7 caller/callee scenario and returns the
// two stage dumps.
func buildTwoTier(t *testing.T) []StageDump {
	t.Helper()
	s := vclock.New()
	cpu := s.NewCPU("cpu", 2)
	callerProf := profiler.New("caller", profiler.ModeWhodunit)
	calleeProf := profiler.New("callee", profiler.ModeWhodunit)
	callerEP, calleeEP := ipc.NewEndpoint("caller"), ipc.NewEndpoint("callee")
	reqQ, respQ := s.NewQueue("req"), s.NewQueue("resp")

	s.Go("callee", func(th *vclock.Thread) {
		pr := calleeProf.NewProbe(th, cpu)
		for i := 0; i < 2; i++ {
			msg := th.Get(reqQ).(ipc.Msg)
			calleeEP.Recv(pr, msg)
			func() {
				defer pr.Exit(pr.Enter("callee_rpc_svc"))
				pr.Compute(5 * profiler.DefaultInterval)
				respQ.Put(calleeEP.Send(pr, nil))
			}()
		}
	})
	s.Go("caller", func(th *vclock.Thread) {
		pr := callerProf.NewProbe(th, cpu)
		for _, path := range []string{"foo", "bar"} {
			func() {
				defer pr.Exit(pr.Enter("main_caller"))
				defer pr.Exit(pr.Enter(path))
				pr.Compute(2 * profiler.DefaultInterval)
				reqQ.Put(callerEP.Send(pr, nil))
				callerEP.Recv(pr, th.Get(respQ).(ipc.Msg))
			}()
		}
	})
	s.Run()
	s.Shutdown()
	return []StageDump{Dump(callerProf, callerEP), Dump(calleeProf, calleeEP)}
}

func TestBuildConnectsTiers(t *testing.T) {
	g := Build(buildTwoTier(t))
	// The callee should contribute two context nodes (foo path, bar path),
	// each connected by a request and response edge.
	var reqEdges, respEdges int
	for _, e := range g.Edges {
		switch e.Kind {
		case "request":
			reqEdges++
		case "response":
			respEdges++
		}
	}
	if reqEdges != 2 || respEdges != 2 {
		t.Fatalf("edges: %d requests, %d responses, want 2/2 (graph: %+v)", reqEdges, respEdges, g.Edges)
	}
	// Request edges must cross stages.
	for _, e := range g.Edges {
		if g.Nodes[e.From].Stage == g.Nodes[e.To].Stage {
			t.Fatalf("edge within one stage: %+v", e)
		}
	}
}

func TestCalleeTreesDuplicatedPerContext(t *testing.T) {
	// Figure 7: the callee's call-path tree appears once per caller
	// context.
	g := Build(buildTwoTier(t))
	calleeNodes := 0
	for _, n := range g.Nodes {
		if n.Stage == "callee" && n.Total > 0 {
			calleeNodes++
			if n.Tree.Find("callee_rpc_svc") == nil {
				t.Fatalf("callee node missing svc frame: %+v", n)
			}
		}
	}
	if calleeNodes != 2 {
		t.Fatalf("callee context nodes = %d, want 2", calleeNodes)
	}
}

func TestDumpJSONRoundTrip(t *testing.T) {
	dumps := buildTwoTier(t)
	var buf bytes.Buffer
	if err := dumps[1].Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Stage != "callee" || len(back.Trees) != len(dumps[1].Trees) {
		t.Fatalf("round trip: %+v", back)
	}
	// Graph built from decoded dumps must match.
	g := Build([]StageDump{dumps[0], back})
	if len(g.Edges) != 4 {
		t.Fatalf("edges after round trip = %d", len(g.Edges))
	}
}

func TestRenderAndDOT(t *testing.T) {
	g := Build(buildTwoTier(t))
	var txt, dot bytes.Buffer
	g.Render(&txt)
	g.DOT(&dot)
	if !strings.Contains(txt.String(), "request") {
		t.Fatalf("render: %s", txt.String())
	}
	out := dot.String()
	if !strings.HasPrefix(out, "digraph whodunit {") || !strings.Contains(out, "style=dashed") {
		t.Fatalf("dot: %s", out)
	}
}

func TestDecodeBadJSON(t *testing.T) {
	if _, err := DecodeDump(strings.NewReader("{nope")); err == nil {
		t.Fatal("bad JSON should fail")
	}
}

func TestBuildPartialSeversLostSends(t *testing.T) {
	dumps := buildTwoTier(t)
	// Lose the callee tier entirely, as a crashed stage whose dump never
	// landed. The caller's sends now match nothing; a partial build must
	// surface them as severed edges instead of dropping them.
	partial := BuildPartial(dumps[:1], []string{"callee"})
	if len(partial.Missing) != 1 || partial.Missing[0] != "callee" {
		t.Fatalf("Missing = %v, want [callee]", partial.Missing)
	}
	var sink = -1
	for i, n := range partial.Nodes {
		if n.Stage == "(missing)" {
			sink = i
			if !strings.Contains(n.Label, "callee") {
				t.Errorf("sink label %q does not name the missing stage", n.Label)
			}
		}
	}
	if sink < 0 {
		t.Fatal("no (missing) sink node in the partial graph")
	}
	severed := 0
	for _, e := range partial.Edges {
		if e.Kind == "severed" {
			severed++
			if e.To != sink {
				t.Errorf("severed edge points at node %d, not the sink %d", e.To, sink)
			}
		}
	}
	if severed == 0 {
		t.Fatal("no severed edges for the caller's unmatched sends")
	}
	// A complete profile must never sever: the same dumps with no
	// declared-missing stages build exactly as before.
	full := BuildPartial(dumps, nil)
	for _, e := range full.Edges {
		if e.Kind == "severed" {
			t.Fatal("complete profile grew a severed edge")
		}
	}
	for _, n := range full.Nodes {
		if n.Stage == "(missing)" {
			t.Fatal("complete profile grew a (missing) node")
		}
	}
	var buf bytes.Buffer
	partial.Render(&buf)
	if !strings.Contains(buf.String(), "missing stages: callee") {
		t.Errorf("Render does not announce the missing stage:\n%s", buf.String())
	}
	buf.Reset()
	partial.DOT(&buf)
	if !strings.Contains(buf.String(), "style=dotted") {
		t.Errorf("DOT does not dot the severed edges:\n%s", buf.String())
	}
}
