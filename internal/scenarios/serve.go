package scenarios

import (
	"fmt"
	"time"

	"whodunit"
	"whodunit/internal/vclock"
)

// Serving scenarios: open-loop, self-sustaining apps for the continuous
// profiling service (whodunit.Server, cmd/whodunit-serve). Unlike the
// batch corpus above, these apps never terminate on their own — an
// arrival process keeps injecting work on the virtual clock — so they
// live in their own registry: RunAll would hang on them, and the serving
// harness (bounded window counts, Stop) is the only way to drive them.
//
// Determinism carries over unchanged: with a fixed seed the sequence of
// retired-window Reports is bit-identical across runs, and the windowed
// goldens in testdata pin it.

// ServeScenario is one serving-corpus entry: an open-loop app plus the
// recommended window length and adjacent-window alert threshold for
// serving it.
type ServeScenario struct {
	Name     string
	About    string
	Defaults Params
	// Window is the recommended aggregation-window length.
	Window whodunit.Duration
	// Threshold is the recommended adjacent-window alert threshold (in
	// sample units, see ReportDiff.MaxDelta): comfortably above the
	// scenario's steady-state window-to-window noise, comfortably below
	// any real behavior shift it models.
	Threshold int64

	// Exactly one of MakeApp and MakeRun is set. MakeApp builds the app
	// for an unsupervised server; MakeRun (supervised scenarios) builds
	// the app for the given 0-based run attempt — the server rebuilds
	// through it after a crash, so a scenario can inject a failure into
	// run 0 only and model recovery.
	MakeApp func(p Params) *whodunit.App
	MakeRun func(p Params, run int) *whodunit.App
}

// serveWebApp builds the open-loop two-tier web app: a Poisson arrival
// process puts page requests on the request queue, web workers serve
// them against a db stage, forever. searchShift, when positive, is the
// virtual time at which the workload mix shifts from mostly-home to
// mostly-search — the injected regression of the serve-shift scenario.
func serveWebApp(name string, p Params, searchShift whodunit.Duration) *whodunit.App {
	app := whodunit.NewApp(name,
		whodunit.WithMode(p.Mode),
		whodunit.WithCores(2),
		whodunit.WithSeed(p.Seed))
	web, db := app.Stage("web"), app.Stage("db")
	reqQ, dbQ := app.NewQueue("requests"), app.NewQueue("db-requests")

	// Page mix: mostly cheap home pages; after searchShift (if set) the
	// mix inverts to mostly expensive searches. The draw comes from the
	// arrival process's own RNG stream, so the request sequence is a pure
	// function of (seed, virtual time).
	pageRNG := vclock.NewRNG(p.Seed ^ 0x9e3779b97f4a7c15)
	page := func() string {
		searchProb := 0.2
		if searchShift > 0 && app.Sim().Now() >= vclock.Time(searchShift) {
			searchProb = 0.8
		}
		if pageRNG.Float64() < searchProb {
			return "search"
		}
		return "home"
	}
	app.Arrivals("requests", 15*whodunit.Millisecond, func(i int64) {
		reqQ.Put(page())
	})

	// dbReq routes the db's response back to the issuing web worker.
	type dbReq struct {
		page  string
		respQ *whodunit.Queue
	}
	serveFrame := map[string]string{"home": "serve_home", "search": "serve_search"}

	db.Go("db", func(th *whodunit.Thread, pr *whodunit.Probe) {
		for {
			msg := dbQ.Get(th).(whodunit.Msg)
			db.Endpoint().Recv(pr, msg)
			req := msg.Data.(dbReq)
			func() {
				defer pr.Exit(pr.Enter("exec_query"))
				if req.page == "search" {
					defer pr.Exit(pr.Enter("sort_rows"))
					pr.Compute(30 * whodunit.Millisecond)
				} else {
					pr.Compute(3 * whodunit.Millisecond)
				}
				req.respQ.Put(db.Endpoint().Send(pr, nil))
			}()
		}
	})
	const webWorkers = 4
	for w := 0; w < webWorkers; w++ {
		respQ := app.NewQueue(fmt.Sprintf("responses-%d", w))
		web.Go(fmt.Sprintf("web-%d", w), func(th *whodunit.Thread, pr *whodunit.Probe) {
			for {
				pg := reqQ.Get(th).(string)
				func() {
					defer pr.Exit(pr.Enter(serveFrame[pg]))
					pr.Compute(whodunit.Millisecond)
					dbQ.Put(web.Endpoint().Send(pr, dbReq{page: pg, respQ: respQ}))
					web.Endpoint().Recv(pr, respQ.Get(th).(whodunit.Msg))
				}()
			}
		})
	}
	return app
}

// serveCrashyApp builds the degraded-operation variant of the web app:
// the db-request queue drops ~12% of its messages (web workers retry
// under a timeout, so the drops surface as "retry" frames in the web
// CCT), and run 0 additionally dies from an injected failure at t=5s —
// the supervised server rebuilds through MakeRun and recovers.
func serveCrashyApp(name string, p Params, run int) *whodunit.App {
	plan := &whodunit.FaultPlan{
		Seed:     p.Seed,
		Messages: []whodunit.MessageFault{{Queue: "db-requests", Drop: 0.12}},
	}
	if run == 0 {
		plan.Failures = []whodunit.Fail{{
			At:  whodunit.Time(5 * whodunit.Second),
			Msg: "injected tier panic (run 0)",
		}}
	}
	app := whodunit.NewApp(name,
		whodunit.WithMode(p.Mode),
		whodunit.WithCores(2),
		whodunit.WithSeed(p.Seed),
		whodunit.WithFaults(plan))
	web, db := app.Stage("web"), app.Stage("db")
	reqQ, dbQ := app.NewQueue("requests"), app.NewQueue("db-requests")

	pageRNG := vclock.NewRNG(p.Seed ^ 0x9e3779b97f4a7c15)
	page := func() string {
		if pageRNG.Float64() < 0.2 {
			return "search"
		}
		return "home"
	}
	app.Arrivals("requests", 15*whodunit.Millisecond, func(i int64) {
		reqQ.Put(page())
	})

	type dbReq struct {
		page  string
		respQ *whodunit.Queue
	}
	serveFrame := map[string]string{"home": "serve_home", "search": "serve_search"}

	db.Go("db", func(th *whodunit.Thread, pr *whodunit.Probe) {
		for {
			msg := dbQ.Get(th).(whodunit.Msg)
			db.Endpoint().Recv(pr, msg)
			req := msg.Data.(dbReq)
			func() {
				defer pr.Exit(pr.Enter("exec_query"))
				if req.page == "search" {
					defer pr.Exit(pr.Enter("sort_rows"))
					pr.Compute(30 * whodunit.Millisecond)
				} else {
					pr.Compute(3 * whodunit.Millisecond)
				}
				req.respQ.Put(db.Endpoint().Send(pr, nil))
			}()
		}
	})
	// The retry timeout sits far above the worst-case db backlog (4
	// blocked workers x 30ms searches), so a timeout always means the
	// request was dropped — never a late response that would desync the
	// per-worker response queue.
	pol := whodunit.RetryPolicy{
		Attempts: 3,
		Timeout:  200 * whodunit.Millisecond,
		Backoff:  5 * whodunit.Millisecond,
	}
	const webWorkers = 4
	for w := 0; w < webWorkers; w++ {
		respQ := app.NewQueue(fmt.Sprintf("responses-%d", w))
		web.Go(fmt.Sprintf("web-%d", w), func(th *whodunit.Thread, pr *whodunit.Probe) {
			for {
				pg := reqQ.Get(th).(string)
				func() {
					defer pr.Exit(pr.Enter(serveFrame[pg]))
					pr.Compute(whodunit.Millisecond)
					web.Retry(pr, pol, func(int) bool {
						// Marshalling cost per attempt: retried attempts
						// sample under the "retry" frame.
						pr.Compute(200 * whodunit.Microsecond)
						dbQ.Put(web.Endpoint().Send(pr, dbReq{page: pg, respQ: respQ}))
						resp, ok := respQ.GetTimeout(th, pol.Timeout)
						if ok {
							web.Endpoint().Recv(pr, resp.(whodunit.Msg))
						}
						return ok
					})
				}()
			}
		})
	}
	return app
}

// serveAll is the serving corpus, in golden-regeneration order.
var serveAll = []ServeScenario{
	{
		Name:      "serve-web",
		About:     "open-loop two-tier web app, steady 80/20 home/search mix",
		Defaults:  Params{Seed: 11, Mode: whodunit.ModeWhodunit},
		Window:    2 * whodunit.Second,
		Threshold: 400,
		MakeApp: func(p Params) *whodunit.App {
			return serveWebApp("serve-web", p, 0)
		},
	},
	{
		Name:      "serve-shift",
		About:     "serve-web with the mix inverting to 80% search at t=6s (injected regression)",
		Defaults:  Params{Seed: 11, Mode: whodunit.ModeWhodunit},
		Window:    2 * whodunit.Second,
		Threshold: 400,
		MakeApp: func(p Params) *whodunit.App {
			return serveWebApp("serve-shift", p, 6*whodunit.Second)
		},
	},
	{
		Name:      "serve-crashy",
		About:     "serve-web under faults: 12% db-request drops (retried), run 0 dies at t=5s and the supervisor recovers",
		Defaults:  Params{Seed: 11, Mode: whodunit.ModeWhodunit},
		Window:    2 * whodunit.Second,
		Threshold: -1,
		MakeRun: func(p Params, run int) *whodunit.App {
			return serveCrashyApp("serve-crashy", p, run)
		},
	},
	{
		Name:  "serve-mesh",
		About: "open-loop 4-shard mesh KV under a steady Zipfian cache-trace arrival stream",

		Defaults: Params{Seed: 11, Mode: whodunit.ModeWhodunit},
		Window:   2 * whodunit.Second,
		// Measured: steady-state window-to-window drift stays under ~40
		// samples; the cache-warmup taper peaks at ~117 on the db stage.
		Threshold: 200,
		MakeApp:   serveMeshApp,
	},
}

// ServeAll returns the serving corpus in its stable order.
func ServeAll() []ServeScenario {
	out := make([]ServeScenario, len(serveAll))
	copy(out, serveAll)
	return out
}

// ServeNames returns every serving-scenario name, in corpus order.
func ServeNames() []string {
	out := make([]string, 0, len(serveAll))
	for _, s := range serveAll {
		out = append(out, s.Name)
	}
	return out
}

// ServeByName looks a serving scenario up.
func ServeByName(name string) (ServeScenario, bool) {
	for _, s := range serveAll {
		if s.Name == name {
			return s, true
		}
	}
	return ServeScenario{}, false
}

// Windows runs the scenario at its defaults until n windows of the
// scenario's recommended length have retired and returns them in
// sequence order — the deterministic core the windowed goldens and the
// serving tests share. The final partial window (retired when the stop
// condition trips mid-window) is excluded.
func (s ServeScenario) Windows(n int) []*whodunit.Report {
	return s.WindowsWith(s.Defaults, n)
}

// WindowsWith is Windows with explicit parameters.
func (s ServeScenario) WindowsWith(p Params, n int) []*whodunit.Report {
	var out []*whodunit.Report
	for _, ev := range s.EventsWith(p, n) {
		if ev.Report.Elapsed == s.Window && len(out) < n {
			out = append(out, ev.Report)
		}
	}
	return out
}

// Events runs the scenario at its defaults until n windows have retired
// (full and partial alike) and returns every retired WindowEvent in
// sequence order — the raw feed the degraded-operation goldens pin:
// unlike Windows it keeps the crash-partial windows and the
// degraded/recovered annotations. Supervised scenarios (MakeRun) run
// under a supervised Server; the restart backoff is wall-clock only, so
// the event sequence stays a pure function of the seed.
func (s ServeScenario) Events(n int) []*whodunit.WindowEvent {
	return s.EventsWith(s.Defaults, n)
}

// EventsWith is Events with explicit parameters.
func (s ServeScenario) EventsWith(p Params, n int) []*whodunit.WindowEvent {
	cfg := whodunit.ServeConfig{
		Window:     s.Window,
		Retain:     n + 1,
		Threshold:  -1,
		MaxWindows: n,
	}
	var app *whodunit.App
	if s.MakeRun != nil {
		cfg.MakeApp = func(run int) *whodunit.App { return s.MakeRun(p, run) }
		cfg.RestartBackoff = time.Millisecond
	} else {
		app = s.MakeApp(p)
	}
	srv := whodunit.NewServer(app, cfg)
	srv.Run()
	var out []*whodunit.WindowEvent
	for _, kv := range srv.Ring().Entries() {
		out = append(out, kv.V)
	}
	return out
}
