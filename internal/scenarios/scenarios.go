// Package scenarios is the seeded scenario corpus behind Whodunit's
// regression harness: a table of small, fully deterministic runs
// spanning the four internal app models (apacheweb, squidproxy, haboob,
// tpcw) across profiling modes and core counts, plus API-level
// scenarios mirroring the examples (quickstart's request/response
// pair, the fdqueue flow handoff, the event-driven server, the SEDA
// pipeline). Every scenario produces a Report pinned bit-for-bit as a
// golden file (see scenarios_test.go, regenerable with -update), and
// the harness additionally asserts Diff(golden, fresh) is empty — so a
// behavioral regression surfaces both as a byte drift and as a
// structural CCT delta a human can read.
//
// cmd/whodunit-diff runs scenarios by name (with seed and mode
// overrides) to compare two runs without writing any harness code.
package scenarios

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"whodunit"
	"whodunit/internal/apps/apacheweb"
	"whodunit/internal/apps/haboob"
	"whodunit/internal/apps/squidproxy"
	"whodunit/internal/apps/tpcw"
	"whodunit/internal/par"
	"whodunit/internal/vclock"
	"whodunit/internal/workload"
)

// Params are the knobs every scenario exposes: the RNG seed feeding its
// workload and the profiling mode. cmd/whodunit-diff overrides them per
// run spec ("apache:seed=7,mode=csprof").
type Params struct {
	Seed uint64
	Mode whodunit.Mode
}

// Scenario is one corpus entry. Exactly one of MakeApp and Make is set:
// MakeApp builds an unrun App (API-level scenarios, fanned out through
// whodunit.RunApps), Make runs a model whose App lives inside its Run
// function and returns the assembled report.
type Scenario struct {
	Name     string
	About    string
	Defaults Params

	MakeApp func(p Params) *whodunit.App
	Make    func(p Params) *whodunit.Report
}

// Report runs the scenario fresh at its default parameters.
func (s Scenario) Report() *whodunit.Report { return s.ReportWith(s.Defaults) }

// ReportWith runs the scenario fresh with p.
func (s Scenario) ReportWith(p Params) *whodunit.Report {
	if s.MakeApp != nil {
		return s.MakeApp(p).Run()
	}
	return s.Make(p)
}

// goldenTrace is the fixed web workload the three legacy web-server
// scenarios share — the exact shape the pre-corpus golden tests pinned.
func goldenTrace(seed uint64) *workload.WebTrace {
	cfg := workload.DefaultWebConfig()
	cfg.Seed = seed
	cfg.NumConns = 150
	cfg.NumFiles = 200
	cfg.MinSize = 8 << 10
	return workload.GenWeb(cfg)
}

// smallTrace is the reduced workload of the mode/core-count spanning
// scenarios, sized so the whole corpus stays test-suite fast.
func smallTrace(seed uint64) *workload.WebTrace {
	cfg := workload.DefaultWebConfig()
	cfg.Seed = seed
	cfg.NumConns = 60
	cfg.NumFiles = 120
	cfg.MinSize = 8 << 10
	return workload.GenWeb(cfg)
}

func apacheScenario(name, about string, defaults Params, cores int, trace func(uint64) *workload.WebTrace) Scenario {
	return Scenario{
		Name: name, About: about, Defaults: defaults,
		Make: func(p Params) *whodunit.Report {
			cfg := apacheweb.DefaultConfig(trace(p.Seed))
			cfg.Mode = p.Mode
			cfg.Cores = cores
			res := apacheweb.Run(cfg)
			rep := whodunit.NewReport("apache", whodunit.NewStageReport(res.Profiler))
			rep.Elapsed = res.Elapsed
			rep.Flows = res.Flows
			return rep
		},
	}
}

func squidScenario(name, about string, defaults Params, trace func(uint64) *workload.WebTrace) Scenario {
	return Scenario{
		Name: name, About: about, Defaults: defaults,
		Make: func(p Params) *whodunit.Report {
			cfg := squidproxy.DefaultConfig(trace(p.Seed))
			cfg.Mode = p.Mode
			res := squidproxy.Run(cfg)
			rep := whodunit.NewReport("squid", whodunit.NewStageReport(res.Profiler))
			rep.Elapsed = res.Elapsed
			return rep
		},
	}
}

func haboobScenario(name, about string, defaults Params, threadsPerStage int, trace func(uint64) *workload.WebTrace) Scenario {
	return Scenario{
		Name: name, About: about, Defaults: defaults,
		Make: func(p Params) *whodunit.Report {
			cfg := haboob.DefaultConfig(trace(p.Seed))
			cfg.Mode = p.Mode
			if threadsPerStage > 0 {
				cfg.ThreadsPerStage = threadsPerStage
			}
			res := haboob.Run(cfg)
			rep := whodunit.NewReport("haboob", whodunit.NewStageReport(res.Profiler))
			rep.Elapsed = res.Elapsed
			return rep
		},
	}
}

func tpcwScenario(name, about string, defaults Params, clients int, duration whodunit.Duration) Scenario {
	return Scenario{
		Name: name, About: about, Defaults: defaults,
		Make: func(p Params) *whodunit.Report {
			cfg := tpcw.DefaultConfig(clients)
			cfg.Duration = duration
			cfg.Mode = p.Mode
			cfg.Seed = p.Seed
			res := tpcw.Run(cfg)
			rep := whodunit.NewReport("tpcw",
				whodunit.NewStageReport(res.SquidProf, res.SquidEP),
				whodunit.NewStageReport(res.TomcatProf, res.TomcatEP),
				whodunit.NewStageReport(res.MySQLProf, res.MySQLEP))
			rep.Elapsed = res.Elapsed
			rep.Crosstalk = res.Crosstalk.Pairs()
			return rep
		},
	}
}

// quickstartApp is the examples/quickstart shape: a web and a db stage
// exchanging request/response messages, with the page sequence drawn
// from the scenario seed.
func quickstartApp(p Params) *whodunit.App {
	app := whodunit.NewApp("quickstart",
		whodunit.WithMode(p.Mode),
		whodunit.WithCores(2),
		whodunit.WithSeed(p.Seed))
	web, db := app.Stage("web"), app.Stage("db")
	reqQ, respQ := app.NewQueue("requests"), app.NewQueue("responses")

	// The page sequence is fixed before any thread runs, so every worker
	// loop has a static bound and the app terminates on its own (RunApps
	// drives it with plain Run, no stop predicate).
	rng := vclock.NewRNG(p.Seed)
	pages := make([]string, 100)
	for i := range pages {
		if rng.Float64() < 0.5 {
			pages[i] = "home"
		} else {
			pages[i] = "search"
		}
	}

	db.Go("db", func(th *whodunit.Thread, pr *whodunit.Probe) {
		for i := 0; i < len(pages); i++ {
			msg := reqQ.Get(th).(whodunit.Msg)
			db.Endpoint().Recv(pr, msg)
			func() {
				defer pr.Exit(pr.Enter("exec_query"))
				if msg.Data == "search" {
					defer pr.Exit(pr.Enter("sort_rows"))
					pr.Compute(30 * whodunit.Millisecond)
				} else {
					pr.Compute(3 * whodunit.Millisecond)
				}
				respQ.Put(db.Endpoint().Send(pr, nil))
			}()
		}
	})
	web.Go("web", func(th *whodunit.Thread, pr *whodunit.Probe) {
		for _, page := range pages {
			func() {
				defer pr.Exit(pr.Enter("serve_" + page))
				pr.Compute(whodunit.Millisecond)
				reqQ.Put(web.Endpoint().Send(pr, page))
				web.Endpoint().Recv(pr, respQ.Get(th).(whodunit.Msg))
			}()
		}
	})
	return app
}

// fdqueueApp is the examples/fdqueue shape: transaction context crossing
// a shared-memory queue with zero propagation code (§3.5). Each worker
// pops a fixed share of the connections, so the app self-terminates.
func fdqueueApp(p Params) *whodunit.App {
	app := whodunit.NewApp("fdqueue",
		whodunit.WithMode(p.Mode),
		whodunit.WithCores(2),
		whodunit.WithSeed(p.Seed),
		whodunit.WithFlowDetection())
	st := app.Stage("fdqueue")
	connQ := app.NewQueue("conns")

	const conns, workers = 120, 4
	rng := vclock.NewRNG(p.Seed)
	kinds := make([]string, conns)
	for i := range kinds {
		if rng.Float64() < 1.0/3 {
			kinds[i] = "dynamic"
		} else {
			kinds[i] = "static"
		}
	}

	st.Go("listener", func(th *whodunit.Thread, pr *whodunit.Probe) {
		for _, kind := range kinds {
			kind := kind
			func() {
				defer pr.Exit(pr.Enter("listener_thread"))
				st.BeginTxn(pr, "listener_thread", "accept_"+kind)
				pr.Compute(50 * whodunit.Microsecond)
				connQ.Push(pr, kind)
			}()
		}
	})
	for w := 0; w < workers; w++ {
		st.Go(fmt.Sprintf("worker-%d", w), func(th *whodunit.Thread, pr *whodunit.Probe) {
			for i := 0; i < conns/workers; i++ {
				func() {
					defer pr.Exit(pr.Enter("worker_thread"))
					kind := connQ.Pop(pr).(string)
					cost := 2 * whodunit.Millisecond
					if kind == "dynamic" {
						cost = 6 * whodunit.Millisecond
					}
					func() {
						defer pr.Exit(pr.Enter("serve_connection"))
						pr.Compute(cost)
					}()
				}()
			}
		})
	}
	return app
}

// eventserverApp is the examples/eventserver shape: an event-driven
// proxy whose write handler's cost splits between the hit and miss
// handler-sequence contexts (the Figure 9 effect).
func eventserverApp(p Params) *whodunit.App {
	app := whodunit.NewApp("eventserver",
		whodunit.WithMode(p.Mode),
		whodunit.WithCores(1),
		whodunit.WithSeed(p.Seed))
	proxy := app.Stage("proxy")
	loop := proxy.EventLoop()
	ready := app.NewQueue("ready")

	cache := map[int]bool{}
	served := 0
	const total = 200
	rng := vclock.NewRNG(p.Seed)

	var pr *whodunit.Probe
	var hWrite, hFetch, hRead *whodunit.EventHandler
	hWrite = &whodunit.EventHandler{Name: "write_reply", Fn: func(l *whodunit.EventLoop, ev *whodunit.Event) {
		pr.Compute(4 * whodunit.Millisecond)
		served++
	}}
	hFetch = &whodunit.EventHandler{Name: "fetch_origin", Fn: func(l *whodunit.EventLoop, ev *whodunit.Event) {
		pr.Compute(9 * whodunit.Millisecond)
		cache[ev.Data.(int)] = true
		ready.Put(l.NewEvent(hWrite, ev.Data))
	}}
	hRead = &whodunit.EventHandler{Name: "read_request", Fn: func(l *whodunit.EventLoop, ev *whodunit.Event) {
		pr.Compute(whodunit.Millisecond)
		obj := ev.Data.(int)
		if cache[obj] {
			ready.Put(l.NewEvent(hWrite, obj))
		} else {
			ready.Put(l.NewEvent(hFetch, obj))
		}
	}}
	for i := 0; i < total; i++ {
		ready.Put(&whodunit.Event{Handler: hRead, Data: rng.Intn(40)})
	}
	proxy.Go("event_loop", func(th *whodunit.Thread, probe *whodunit.Probe) {
		pr = probe
		proxy.BindLoop(pr)
		for served < total {
			loop.Dispatch(ready.Get(th).(*whodunit.Event))
		}
	})
	return app
}

// sedapipelineApp is the examples/sedapipeline shape: a four-stage SEDA
// pipeline whose shared Reply stage splits between the fast- and
// slow-path stage-sequence contexts (the Figure 10 effect). The hit and
// miss counts are drawn up front so every stage worker has a static
// loop bound.
func sedapipelineApp(p Params) *whodunit.App {
	app := whodunit.NewApp("sedapipeline",
		whodunit.WithMode(p.Mode),
		whodunit.WithCores(2),
		whodunit.WithSeed(p.Seed))
	pipe := app.Stage("pipe")

	qIn, qHit, qMiss, qOut := app.NewQueue("in"), app.NewQueue("hit"), app.NewQueue("miss"), app.NewQueue("out")
	stIn := pipe.SEDAStage("Classify", qIn)
	stHit := pipe.SEDAStage("FastPath", qHit)
	stMiss := pipe.SEDAStage("SlowPath", qMiss)
	stOut := pipe.SEDAStage("Reply", qOut)

	const total = 300
	rng := vclock.NewRNG(p.Seed)
	miss := make([]bool, total)
	misses := 0
	for i := range miss {
		if rng.Float64() < 1.0/3 {
			miss[i] = true
			misses++
		}
	}
	next := 0

	worker := func(st *whodunit.SEDAStage, n int, body func(w *whodunit.SEDAWorker, pr *whodunit.Probe, data any)) {
		pipe.Go(st.Name, func(th *whodunit.Thread, pr *whodunit.Probe) {
			w := pipe.Worker(st, pr)
			q := st.In.(*whodunit.Queue)
			for i := 0; i < n; i++ {
				data := w.Begin(q.Get(th).(*whodunit.SEDAElem))
				func() {
					defer pr.Exit(pr.Enter(st.Name))
					body(w, pr, data)
				}()
			}
		})
	}
	worker(stIn, total, func(w *whodunit.SEDAWorker, pr *whodunit.Probe, data any) {
		pr.Compute(whodunit.Millisecond)
		if miss[next] {
			w.Enqueue(stMiss, data)
		} else {
			w.Enqueue(stHit, data)
		}
		next++
	})
	worker(stHit, total-misses, func(w *whodunit.SEDAWorker, pr *whodunit.Probe, data any) {
		pr.Compute(2 * whodunit.Millisecond)
		w.Enqueue(stOut, data)
	})
	worker(stMiss, misses, func(w *whodunit.SEDAWorker, pr *whodunit.Probe, data any) {
		pr.Compute(12 * whodunit.Millisecond)
		w.Enqueue(stOut, data)
	})
	worker(stOut, total, func(w *whodunit.SEDAWorker, pr *whodunit.Probe, data any) {
		pr.Compute(3 * whodunit.Millisecond)
	})
	for i := 0; i < total; i++ {
		pipe.Inject(stIn, i)
	}
	return app
}

// all is the corpus. Scenario order is the order goldens regenerate and
// RunAll reports — keep it stable.
var all = []Scenario{
	// The four app models at the legacy golden configurations; their
	// goldens are the bit-identical continuation of the pre-corpus
	// internal/apps/golden files.
	apacheScenario("apache", "Apache worker model, whodunit mode, 2 cores (legacy golden scale)",
		Params{Seed: 42, Mode: whodunit.ModeWhodunit}, 2, goldenTrace),
	squidScenario("squid", "Squid event-driven proxy, whodunit mode (legacy golden scale)",
		Params{Seed: 42, Mode: whodunit.ModeWhodunit}, goldenTrace),
	haboobScenario("haboob", "Haboob SEDA server, whodunit mode (legacy golden scale)",
		Params{Seed: 42, Mode: whodunit.ModeWhodunit}, 0, goldenTrace),
	tpcwScenario("tpcw", "TPC-W three-tier system, whodunit mode, 25 clients (legacy golden scale)",
		Params{Seed: 1, Mode: whodunit.ModeWhodunit}, 25, 45*whodunit.Second),

	// Mode x core-count spanning scenarios at reduced scale.
	apacheScenario("apache-csprof-1core", "Apache, plain csprof sampling, 1 core",
		Params{Seed: 42, Mode: whodunit.ModeSampling}, 1, smallTrace),
	apacheScenario("apache-gprof-4core", "Apache, instrumented gprof mode, 4 cores",
		Params{Seed: 42, Mode: whodunit.ModeInstrumented}, 4, smallTrace),
	apacheScenario("apache-off", "Apache, profiling off (overhead baseline), 2 cores",
		Params{Seed: 42, Mode: whodunit.ModeOff}, 2, smallTrace),
	squidScenario("squid-csprof", "Squid, plain csprof sampling",
		Params{Seed: 42, Mode: whodunit.ModeSampling}, smallTrace),
	squidScenario("squid-gprof", "Squid, instrumented gprof mode",
		Params{Seed: 42, Mode: whodunit.ModeInstrumented}, smallTrace),
	haboobScenario("haboob-gprof-4workers", "Haboob, instrumented gprof mode, 4 threads per stage",
		Params{Seed: 42, Mode: whodunit.ModeInstrumented}, 4, smallTrace),
	tpcwScenario("tpcw-csprof-10c", "TPC-W, plain csprof sampling, 10 clients",
		Params{Seed: 1, Mode: whodunit.ModeSampling}, 10, 30*whodunit.Second),

	// API-level scenarios mirroring the examples.
	{Name: "quickstart", About: "two-stage request/response app (examples/quickstart)",
		Defaults: Params{Seed: 7, Mode: whodunit.ModeWhodunit}, MakeApp: quickstartApp},
	{Name: "fdqueue", About: "shared-memory flow handoff through App.NewQueue (examples/fdqueue)",
		Defaults: Params{Seed: 7, Mode: whodunit.ModeWhodunit}, MakeApp: fdqueueApp},
	{Name: "eventserver", About: "event-driven proxy with handler-sequence contexts (examples/eventserver)",
		Defaults: Params{Seed: 7, Mode: whodunit.ModeWhodunit}, MakeApp: eventserverApp},
	{Name: "sedapipeline", About: "four-stage SEDA pipeline (examples/sedapipeline)",
		Defaults: Params{Seed: 7, Mode: whodunit.ModeWhodunit}, MakeApp: sedapipelineApp},

	// Degraded-mode scenario: the TPC-W run with the mysql tier's dump
	// lost — the partial stitched report (severed edges into the
	// "(missing)" sink) is pinned bit-for-bit like any healthy report.
	{Name: "tpcw-partial", About: "TPC-W, 10 clients, with the mysql tier's dump lost (partial stitched report)",
		Defaults: Params{Seed: 1, Mode: whodunit.ModeWhodunit},
		Make: func(p Params) *whodunit.Report {
			full := tpcwScenario("", "", Params{}, 10, 30*whodunit.Second).Make(p)
			return full.DropStage("mysql")
		}},

	// Microservice-mesh scenarios: trace-replay driven meshkv topologies
	// (see mesh.go).
	meshScenario("mesh-steady", "4-shard mesh KV replaying a steady Zipfian cache trace",
		Params{Seed: 5, Mode: whodunit.ModeWhodunit}, meshSteadyTrace(), false),
	meshScenario("mesh-hot-key", "4-shard mesh KV with 60% of gets on 3 hot keys (shard imbalance)",
		Params{Seed: 5, Mode: whodunit.ModeWhodunit}, meshHotKeyTrace(), false),
	meshScenario("mesh-deep", "deep 7-tier proxy-chain mesh replaying a bursty meta-KV trace (≥6-hop chains)",
		Params{Seed: 5, Mode: whodunit.ModeWhodunit}, meshDeepTrace(), true),

	// Mega-scale replicated deployments, each as a sharded/serial pair
	// with byte-identical goldens (see mega.go).
	tpcwMegaScenario("tpcw-mega", "replicated TPC-W, 3 pods on their own time domains + shared MySQL (WithShards)", true),
	tpcwMegaScenario("tpcw-mega-serial", "replicated TPC-W, identical topology on one time domain (sharding baseline)", false),
	meshMegaScenario("mesh-mega", "replicated mesh KV, 4 pods on their own time domains, key-hash load balancing (WithShards)", true),
	meshMegaScenario("mesh-mega-serial", "replicated mesh KV, identical topology on one time domain (sharding baseline)", false),
}

// All returns the corpus in its stable order.
func All() []Scenario {
	out := make([]Scenario, len(all))
	copy(out, all)
	return out
}

// Names returns every scenario name, sorted.
func Names() []string {
	out := make([]string, 0, len(all))
	for _, s := range all {
		out = append(out, s.Name)
	}
	sort.Strings(out)
	return out
}

// ByName looks a scenario up.
func ByName(name string) (Scenario, bool) {
	for _, s := range all {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// ParseSpec resolves a run spec of the form
//
//	name[:key=value[,key=value...]]
//
// where keys are "seed" (uint) and "mode" (off|csprof|whodunit|gprof),
// returning the scenario with its defaults overridden. This is the
// grammar of cmd/whodunit-diff's -run flag.
func ParseSpec(spec string) (Scenario, error) {
	name, overrides, _ := strings.Cut(spec, ":")
	s, ok := ByName(name)
	if !ok {
		if in, serving := Lookup(name); serving && in.Kind == KindServing {
			return Scenario{}, fmt.Errorf("scenarios: %q is a serving scenario (run it with whodunit-serve -scenario %s)", name, name)
		}
		return Scenario{}, fmt.Errorf("scenarios: unknown scenario %q (known: %s)", name, strings.Join(Names(), ", "))
	}
	if overrides == "" {
		return s, nil
	}
	for _, kv := range strings.Split(overrides, ",") {
		key, val, found := strings.Cut(kv, "=")
		if !found {
			return Scenario{}, fmt.Errorf("scenarios: bad override %q in %q (want key=value)", kv, spec)
		}
		switch key {
		case "seed":
			seed, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return Scenario{}, fmt.Errorf("scenarios: bad seed %q in %q: %v", val, spec, err)
			}
			s.Defaults.Seed = seed
		case "mode":
			m, err := whodunit.ParseMode(val)
			if err != nil {
				return Scenario{}, fmt.Errorf("scenarios: %v in %q", err, spec)
			}
			s.Defaults.Mode = m
		default:
			return Scenario{}, fmt.Errorf("scenarios: unknown override key %q in %q (want seed or mode)", key, spec)
		}
	}
	return s, nil
}

// RunAll runs every scenario in list fresh and returns their reports in
// input order. API-level scenarios (MakeApp) fan out through
// whodunit.RunApps; model-backed scenarios fan out through the same
// par worker pool their internal sweeps use. Reports are bit-identical
// to running each scenario serially — that is the differential-
// determinism regression test.
func RunAll(list []Scenario) []*whodunit.Report {
	reports := make([]*whodunit.Report, len(list))
	var apps []*whodunit.App
	var appIdx, modelIdx []int
	for i, s := range list {
		if s.MakeApp != nil {
			apps = append(apps, s.MakeApp(s.Defaults))
			appIdx = append(appIdx, i)
		} else {
			modelIdx = append(modelIdx, i)
		}
	}
	for i, rep := range whodunit.RunApps(apps...) {
		reports[appIdx[i]] = rep
	}
	par.Do(len(modelIdx), func(j int) {
		reports[modelIdx[j]] = list[modelIdx[j]].Report()
	})
	return reports
}
