// The sharded-determinism sweep: the entire scenario corpus rerun with
// whodunit.DefaultShards forcing every app that doesn't pick a layout
// itself onto four time domains, asserted bit-identical to the serial
// baseline — including under a seeded fault plan. Together with the
// byte-identical tpcw-mega / mesh-mega golden pairs this is the
// acceptance bar for epoch-sharded simulated time: sharding may never
// change a single output byte.
package scenarios_test

import (
	"bytes"
	"testing"

	"whodunit"
	"whodunit/internal/scenarios"
)

func renderJSON(t *testing.T, rep *whodunit.Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.JSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCorpusShardedSweep: RunAll over the whole corpus with
// DefaultShards=4 is bit-identical to the serial baseline. Apps with
// cross-cutting machinery (crosstalk, flow detection, windows, fault
// plans) collapse to one domain by design; everything else runs under
// the epoch scheduler with its work on domain 0 — either way the output
// may not drift.
func TestCorpusShardedSweep(t *testing.T) {
	list := scenarios.All()
	baseline := scenarios.RunAll(list)

	prev := whodunit.DefaultShards
	whodunit.DefaultShards = 4
	defer func() { whodunit.DefaultShards = prev }()
	sharded := scenarios.RunAll(list)

	for i, s := range list {
		if d := whodunit.Diff(baseline[i], sharded[i]); !d.Empty() {
			var buf bytes.Buffer
			d.Text(&buf)
			t.Errorf("%s: sharded run diverges from serial baseline:\n%s", s.Name, buf.String())
			continue
		}
		a, b := renderJSON(t, baseline[i]), renderJSON(t, sharded[i])
		if !bytes.Equal(a, b) {
			t.Errorf("%s: sharded run diff-empty but not bit-identical (%d vs %d bytes)",
				s.Name, len(a), len(b))
		}
	}
}

// TestCorpusShardedUnderFaultPlan: attaching a fault plan to an app
// built under DefaultShards collapses it to one domain (fault plans run
// serially), so the faulted sharded corpus must be bit-identical to the
// faulted serial corpus.
func TestCorpusShardedUnderFaultPlan(t *testing.T) {
	plan := &whodunit.FaultPlan{
		Seed:     3,
		Messages: []whodunit.MessageFault{{DelayProb: 0.25, Delay: 2 * whodunit.Millisecond}},
	}
	var list []scenarios.Scenario
	for _, s := range scenarios.All() {
		if s.MakeApp != nil {
			list = append(list, s)
		}
	}
	run := func() [][]byte {
		out := make([][]byte, len(list))
		for i, s := range list {
			app := s.MakeApp(s.Defaults)
			app.SetFaults(plan)
			out[i] = renderJSON(t, app.Run())
		}
		return out
	}
	baseline := run()

	prev := whodunit.DefaultShards
	whodunit.DefaultShards = 4
	defer func() { whodunit.DefaultShards = prev }()
	sharded := run()

	for i, s := range list {
		if !bytes.Equal(baseline[i], sharded[i]) {
			t.Errorf("%s: faulted sharded run differs from faulted serial run (%d vs %d bytes)",
				s.Name, len(baseline[i]), len(sharded[i]))
		}
	}
}

// TestMegaGoldenPairsIdentical: the sharded and serial members of each
// mega pair produce byte-identical reports — the invariant the paired
// golden files and the CI whodunit-diff gate rest on.
func TestMegaGoldenPairsIdentical(t *testing.T) {
	for _, pair := range [][2]string{
		{"tpcw-mega", "tpcw-mega-serial"},
		{"mesh-mega", "mesh-mega-serial"},
	} {
		a, ok := scenarios.ByName(pair[0])
		if !ok {
			t.Fatalf("missing scenario %s", pair[0])
		}
		b, ok := scenarios.ByName(pair[1])
		if !ok {
			t.Fatalf("missing scenario %s", pair[1])
		}
		ja, jb := renderJSON(t, a.Report()), renderJSON(t, b.Report())
		if !bytes.Equal(ja, jb) {
			t.Errorf("%s and %s reports are not byte-identical (%d vs %d bytes)",
				pair[0], pair[1], len(ja), len(jb))
		}
	}
}
