// The serving-corpus regression harness: each serving scenario's first
// few retired-window Reports are pinned bit-for-bit as a concatenated
// JSON golden (regenerable with -update), the sequence is asserted
// deterministic across runs, and the adjacent-window alert gate is
// checked at the scenario's recommended threshold — steady pairs pass,
// the serve-shift injected regression alerts.
package scenarios_test

import (
	"bytes"
	"fmt"
	"testing"

	"whodunit"
	"whodunit/internal/scenarios"
)

const serveGoldenWindows = 5

// renderWindows concatenates the windows' JSON forms — the bit-pinned
// serving artifact.
func renderWindows(t *testing.T, reps []*whodunit.Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, rep := range reps {
		if err := rep.JSON(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// renderEvents renders the full event feed — full and partial windows
// with their degraded/recovered annotations — one header line plus the
// report JSON per event. This is the pinned artifact of the supervised
// (MakeRun) scenarios, where the crash-partial window and the recovery
// point are exactly what the golden must not let drift.
func renderEvents(t *testing.T, evs []*whodunit.WindowEvent) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, ev := range evs {
		fmt.Fprintf(&buf, "# window %d elapsed_ns=%d degraded=%v recovered=%v restarts=%d alert=%v\n",
			ev.Report.Window.Seq, ev.Report.Elapsed, ev.Degraded, ev.Recovered, ev.Restarts, ev.Alert)
		if err := ev.Report.JSON(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestServeWindowsGolden(t *testing.T) {
	for _, s := range scenarios.ServeAll() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			if s.MakeRun != nil {
				// Supervised scenario: pin the whole event feed instead —
				// six windows spanning the crash, the partial salvage and
				// the recovery.
				evs := s.Events(6)
				if len(evs) != 6 {
					t.Fatalf("got %d events, want 6", len(evs))
				}
				sawPartial, sawRecovered := false, false
				for i, ev := range evs {
					if ev.Report.Window == nil || ev.Report.Window.Seq != int64(i) {
						t.Fatalf("event %d has window metadata %+v; series not dense across the restart",
							i, ev.Report.Window)
					}
					if ev.Report.Elapsed < s.Window {
						sawPartial = true
					}
					if ev.Recovered {
						sawRecovered = true
					}
				}
				if !sawPartial || !sawRecovered {
					t.Fatalf("event feed missing the crash partial (%v) or the recovery (%v)",
						sawPartial, sawRecovered)
				}
				checkBytes(t, s.Name, "events", renderEvents(t, evs))
				return
			}
			reps := s.Windows(serveGoldenWindows)
			if len(reps) != serveGoldenWindows {
				t.Fatalf("got %d windows, want %d", len(reps), serveGoldenWindows)
			}
			for i, rep := range reps {
				if rep.Window == nil || rep.Window.Seq != int64(i) {
					t.Fatalf("window %d has metadata %+v", i, rep.Window)
				}
				if rep.Elapsed != s.Window {
					t.Fatalf("window %d elapsed %v, want %v", i, rep.Elapsed, s.Window)
				}
				if rep.TotalSamples() == 0 {
					t.Fatalf("window %d took no samples", i)
				}
			}
			checkBytes(t, s.Name, "windows.json", renderWindows(t, reps))
		})
	}
}

// TestServeWindowsDeterministic runs each serving scenario twice and
// asserts the retired-window sequences are byte-identical — the fixed
// point the goldens rely on.
func TestServeWindowsDeterministic(t *testing.T) {
	for _, s := range scenarios.ServeAll() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			var a, b []byte
			if s.MakeRun != nil {
				// Supervised scenarios must be deterministic through the
				// crash and restart, wall-clock backoff and all.
				a = renderEvents(t, s.Events(4))
				b = renderEvents(t, s.Events(4))
			} else {
				a = renderWindows(t, s.Windows(3))
				b = renderWindows(t, s.Windows(3))
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("two runs of %s produced different window sequences (%d vs %d bytes)",
					s.Name, len(a), len(b))
			}
		})
	}
}

// TestServeThresholdGate asserts the recommended thresholds gate
// correctly: every adjacent steady pair of serve-web stays under, and
// serve-shift's mix inversion (t=6s, i.e. between windows 2 and 3)
// exceeds — while its pre-shift pairs stay quiet.
func TestServeThresholdGate(t *testing.T) {
	check := func(t *testing.T, name string, wantAlerts []int) {
		s, ok := scenarios.ServeByName(name)
		if !ok {
			t.Fatalf("scenario %s missing", name)
		}
		reps := s.Windows(serveGoldenWindows)
		alerted := []int{}
		for i := 1; i < len(reps); i++ {
			d := whodunit.Diff(reps[i-1], reps[i])
			if d.WindowA == nil || d.WindowB == nil || d.WindowA.Seq+1 != d.WindowB.Seq {
				t.Fatalf("diff %d lost window metadata: %+v vs %+v", i, d.WindowA, d.WindowB)
			}
			if d.Exceeds(s.Threshold) {
				alerted = append(alerted, i)
			}
		}
		if len(alerted) != len(wantAlerts) {
			t.Fatalf("%s alerted at windows %v, want %v", name, alerted, wantAlerts)
		}
		for i := range alerted {
			if alerted[i] != wantAlerts[i] {
				t.Fatalf("%s alerted at windows %v, want %v", name, alerted, wantAlerts)
			}
		}
	}
	t.Run("serve-web", func(t *testing.T) { check(t, "serve-web", []int{}) })
	t.Run("serve-shift", func(t *testing.T) { check(t, "serve-shift", []int{3}) })
	// serve-mesh models no shift: the cache-warmup taper must stay under
	// the recommended threshold.
	t.Run("serve-mesh", func(t *testing.T) { check(t, "serve-mesh", []int{}) })
}
