package scenarios

import (
	"fmt"

	"whodunit"
)

// The unified registry: one lookup surface over both scenario corpora,
// so every tool lists and resolves scenarios from the same place. A
// scenario added to all or serveAll appears in cmd/whodunit-diff -list
// and cmd/whodunit-serve -list automatically, and each tool can explain
// a name that belongs to the other kind instead of claiming it is
// unknown.

// Kind says which corpus a scenario lives in.
type Kind string

const (
	// KindBatch scenarios terminate on their own and produce one Report
	// (cmd/whodunit-diff -run).
	KindBatch Kind = "batch"
	// KindServing scenarios run open-loop under the continuous profiling
	// service (cmd/whodunit-serve).
	KindServing Kind = "serving"
)

// Info is the registry's uniform view of one scenario of either kind.
type Info struct {
	Kind     Kind
	Name     string
	About    string
	Defaults Params

	// Serving-only recommendations (zero for batch scenarios).
	Window     whodunit.Duration
	Threshold  int64
	Supervised bool
}

// Index returns every scenario — the batch corpus in its stable order,
// then the serving corpus in its stable order.
func Index() []Info {
	out := make([]Info, 0, len(all)+len(serveAll))
	for _, s := range all {
		out = append(out, Info{Kind: KindBatch, Name: s.Name, About: s.About, Defaults: s.Defaults})
	}
	for _, s := range serveAll {
		out = append(out, Info{
			Kind: KindServing, Name: s.Name, About: s.About, Defaults: s.Defaults,
			Window: s.Window, Threshold: s.Threshold, Supervised: s.MakeRun != nil,
		})
	}
	return out
}

// Lookup finds a scenario of either kind by name.
func Lookup(name string) (Info, bool) {
	for _, in := range Index() {
		if in.Name == name {
			return in, true
		}
	}
	return Info{}, false
}

// The two corpora share one namespace: a batch and a serving scenario
// with the same name would make Lookup ambiguous and the tools' "did
// you mean the other kind" redirects wrong.
func init() {
	seen := map[string]Kind{}
	for _, in := range Index() {
		if prev, dup := seen[in.Name]; dup {
			panic(fmt.Sprintf("scenarios: name %q registered as both %s and %s", in.Name, prev, in.Kind))
		}
		seen[in.Name] = in.Kind
	}
}
