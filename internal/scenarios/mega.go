package scenarios

import (
	"whodunit"
	"whodunit/internal/apps/meshkv"
	"whodunit/internal/apps/tpcw"
	"whodunit/internal/trace"
)

// Mega scenarios: the replicated mega-scale deployments (tpcw.MegaRun,
// meshkv.MegaRun) at corpus scale, each registered twice — sharded (one
// time domain per pod) and serial (identical topology on one domain).
// The two members of a pair are built from the same config except the
// Sharded flag, and their goldens are byte-identical files: the corpus
// pins the epoch scheduler's bit-identity guarantee, and CI gates
// whodunit-diff between the pair at -threshold 0.

// tpcwMegaConfig is the corpus-scale replicated TPC-W: 24 clients over
// three pods with fast think times so the run stays test-suite sized.
func tpcwMegaConfig(p Params, sharded bool) tpcw.MegaConfig {
	cfg := tpcw.DefaultMegaConfig(24)
	cfg.Replicas = 3
	cfg.Sharded = sharded
	cfg.Duration = 4 * whodunit.Second
	cfg.ThinkMean = 250 * whodunit.Millisecond
	cfg.TomcatWorkers = 4
	cfg.SquidWorkers = 2
	cfg.DBWorkers = 3
	cfg.Mode = p.Mode
	cfg.Seed = p.Seed
	return cfg
}

func tpcwMegaScenario(name, about string, sharded bool) Scenario {
	return Scenario{
		Name: name, About: about,
		Defaults: Params{Seed: 1, Mode: whodunit.ModeWhodunit},
		Make: func(p Params) *whodunit.Report {
			return tpcw.MegaRun(tpcwMegaConfig(p, sharded)).Report
		},
	}
}

// meshMegaConfig is the corpus-scale replicated mesh: a 600-event cache
// trace fanned across four pods by key hash. The app name is fixed so
// the sharded and serial reports stay byte-identical.
func meshMegaConfig(p Params, sharded bool) meshkv.MegaConfig {
	g := trace.CacheTrace()
	g.Events = 600
	g.Seed = p.Seed
	cfg := meshkv.DefaultMegaConfig(trace.Gen(g))
	cfg.Name = "mesh-mega"
	cfg.Mode = p.Mode
	cfg.Seed = p.Seed
	cfg.Sharded = sharded
	return cfg
}

func meshMegaScenario(name, about string, sharded bool) Scenario {
	return Scenario{
		Name: name, About: about,
		Defaults: Params{Seed: 5, Mode: whodunit.ModeWhodunit},
		Make: func(p Params) *whodunit.Report {
			return meshkv.MegaRun(meshMegaConfig(p, sharded)).Report
		},
	}
}
