// The scenario-corpus regression harness: every corpus scenario's
// Report is pinned bit-for-bit (Text and JSON goldens, regenerable with
// -update), and each fresh run is additionally compared to its decoded
// golden through the Diff engine — so a regression fails twice: once as
// a byte drift and once as a structural CCT/crosstalk/flow/graph delta
// rendered in the failure message.
//
// The four legacy goldens (apache, squid, haboob, tpcw) are the
// bit-identical continuation of the retired internal/apps/golden files.
package scenarios_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"whodunit"
	"whodunit/internal/par"
	"whodunit/internal/scenarios"
)

var update = flag.Bool("update", false, "rewrite the golden files")

func goldenPath(name, kind string) string {
	return filepath.Join("testdata", name+"."+kind+".golden")
}

func readGolden(t *testing.T, name, kind string) []byte {
	t.Helper()
	want, err := os.ReadFile(goldenPath(name, kind))
	if err != nil {
		t.Fatalf("missing golden (run `go test ./internal/scenarios -update` to capture): %v", err)
	}
	return want
}

func checkBytes(t *testing.T, name, kind string, got []byte) {
	t.Helper()
	path := goldenPath(name, kind)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want := readGolden(t, name, kind)
	if !bytes.Equal(got, want) {
		dump := filepath.Join(os.TempDir(), "whodunit-scenario-"+name+"."+kind+".got")
		_ = os.WriteFile(dump, got, 0o644)
		t.Errorf("%s %s drifted from the pinned golden (%d bytes vs %d; got written to %s)",
			name, kind, len(got), len(want), dump)
	}
}

// render produces the two pinned forms of a report.
func render(t *testing.T, rep *whodunit.Report) (jsonBytes, textBytes []byte) {
	t.Helper()
	var js, txt bytes.Buffer
	if err := rep.JSON(&js); err != nil {
		t.Fatal(err)
	}
	rep.Text(&txt)
	return js.Bytes(), txt.Bytes()
}

// TestCorpusGoldens pins every scenario bit-for-bit and, independently,
// asserts the structural diff against the decoded golden is empty.
func TestCorpusGoldens(t *testing.T) {
	for _, s := range scenarios.All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			rep := s.Report()
			js, txt := render(t, rep)
			checkBytes(t, s.Name, "json", js)
			checkBytes(t, s.Name, "text", txt)
			if *update {
				return
			}
			golden, err := whodunit.ReadReport(bytes.NewReader(readGolden(t, s.Name, "json")))
			if err != nil {
				t.Fatalf("decode golden: %v", err)
			}
			if d := whodunit.Diff(golden, rep); !d.Empty() {
				var buf bytes.Buffer
				d.Text(&buf)
				t.Errorf("fresh %s run diverges structurally from its golden:\n%s", s.Name, buf.String())
			}
		})
	}
}

// TestDiffSelfEmptyCorpus: Diff(r, r) is empty for every corpus report
// — the reflexivity half of the diff-engine property tests, run over
// the real corpus rather than synthetic trees.
func TestDiffSelfEmptyCorpus(t *testing.T) {
	for _, s := range scenarios.All() {
		f, err := os.Open(goldenPath(s.Name, "json"))
		if err != nil {
			t.Fatalf("%s: %v (run -update first)", s.Name, err)
		}
		rep, err := whodunit.ReadReport(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: decode: %v", s.Name, err)
		}
		if d := whodunit.Diff(rep, rep); !d.Empty() {
			t.Errorf("%s: Diff(r, r) not empty: max delta %d", s.Name, d.MaxDelta())
		}
	}
}

// TestCorpusUnderFaultPlan reruns the API-level corpus under a seeded
// message-delay fault plan and asserts the faulted reports are
// bit-identical across repeated serial runs AND across the RunApps
// parallel fan-out — the bit-reproducibility acceptance bar extended to
// injected faults. Delays (not drops) keep every scenario's bounded
// worker loops live.
func TestCorpusUnderFaultPlan(t *testing.T) {
	plan := &whodunit.FaultPlan{
		Seed:     3,
		Messages: []whodunit.MessageFault{{DelayProb: 0.25, Delay: 2 * whodunit.Millisecond}},
	}
	var list []scenarios.Scenario
	for _, s := range scenarios.All() {
		if s.MakeApp != nil {
			list = append(list, s)
		}
	}
	faultedApps := func() []*whodunit.App {
		apps := make([]*whodunit.App, len(list))
		for i, s := range list {
			apps[i] = s.MakeApp(s.Defaults)
			apps[i].SetFaults(plan)
		}
		return apps
	}
	renderOne := func(rep *whodunit.Report) []byte {
		var buf bytes.Buffer
		if err := rep.JSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	runSerial := func() [][]byte {
		out := make([][]byte, len(list))
		for i, app := range faultedApps() {
			out[i] = renderOne(app.Run())
		}
		return out
	}
	a, b := runSerial(), runSerial()
	parallel := whodunit.RunApps(faultedApps()...)
	injected := false
	for i, s := range list {
		if !bytes.Equal(a[i], b[i]) {
			t.Errorf("%s: two serial faulted runs differ (%d vs %d bytes)", s.Name, len(a[i]), len(b[i]))
		}
		if got := renderOne(parallel[i]); !bytes.Equal(a[i], got) {
			t.Errorf("%s: RunApps-parallel faulted run differs from serial (%d vs %d bytes)",
				s.Name, len(a[i]), len(got))
		}
		if parallel[i].Faults != nil {
			injected = true
		}
	}
	if !injected {
		t.Fatal("the fault plan injected nothing across the whole corpus")
	}
}

// TestRunAllDeterminism runs the whole corpus serially and through the
// parallel RunAll fan-out (whodunit.RunApps + the par pool) and asserts
// every pair of reports is bit-identical and diff-empty — PR 2's
// serial-vs-parallel bit-identity discipline extended to the corpus.
func TestRunAllDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus double-run is not short")
	}
	list := scenarios.All()

	prev := par.MaxWorkers
	par.MaxWorkers = 1
	serial := scenarios.RunAll(list)
	par.MaxWorkers = prev
	parallel := scenarios.RunAll(list)

	for i, s := range list {
		d := whodunit.Diff(serial[i], parallel[i])
		if !d.Empty() {
			var buf bytes.Buffer
			d.Text(&buf)
			t.Errorf("%s: serial vs RunApps-parallel run differ:\n%s", s.Name, buf.String())
			continue
		}
		var js1, js2 bytes.Buffer
		if err := serial[i].JSON(&js1); err != nil {
			t.Fatal(err)
		}
		if err := parallel[i].JSON(&js2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(js1.Bytes(), js2.Bytes()) {
			t.Errorf("%s: serial and parallel runs diff-empty but not bit-identical (%d vs %d bytes)",
				s.Name, js1.Len(), js2.Len())
		}
	}
}
