package scenarios

import (
	"whodunit"
	"whodunit/internal/apps/meshkv"
	"whodunit/internal/trace"
)

// Mesh scenarios: the microservice-mesh app model (internal/apps/meshkv)
// driven by deterministic generated traces (internal/trace). The trace
// seed and the app seed both derive from the scenario seed, so the whole
// pipeline — generation, ring routing, cache behavior, scheduling,
// stitching — is a pure function of Params.

// meshScenario builds one mesh corpus entry. tweak adjusts the generated
// trace's shape; deep selects the 7-tier proxy-chain topology.
func meshScenario(name, about string, defaults Params, gcfg trace.GenConfig, deep bool) Scenario {
	return Scenario{
		Name: name, About: about, Defaults: defaults,
		Make: func(p Params) *whodunit.Report {
			gcfg := gcfg
			gcfg.Seed = p.Seed
			cfg := meshkv.DefaultConfig(trace.Gen(gcfg))
			cfg.Name = name
			cfg.Mode = p.Mode
			cfg.Seed = p.Seed
			cfg.Deep = deep
			return meshkv.Run(cfg).Report
		},
	}
}

func meshSteadyTrace() trace.GenConfig {
	g := trace.CacheTrace()
	g.Events = 1500
	return g
}

func meshHotKeyTrace() trace.GenConfig {
	g := meshSteadyTrace()
	g.HotKeys = 3
	g.HotFrac = 0.6
	return g
}

func meshDeepTrace() trace.GenConfig {
	g := trace.MetaKV()
	g.Events = 1000
	return g
}

// serveMeshApp builds the open-loop mesh: the standard 4-shard topology
// fed by an endless cache-trace arrival stream.
func serveMeshApp(p Params) *whodunit.App {
	cfg := meshkv.DefaultConfig(nil)
	cfg.Name = "serve-mesh"
	cfg.Mode = p.Mode
	cfg.Seed = p.Seed
	gen := trace.CacheTrace()
	gen.Seed = p.Seed
	return meshkv.Serve(cfg, gen)
}
