package scenarios_test

import (
	"strings"
	"testing"

	"whodunit/internal/scenarios"
)

// TestIndexCoversBothCorpora: the unified registry lists every batch
// and every serving scenario exactly once, batch first, with the right
// kind and metadata.
func TestIndexCoversBothCorpora(t *testing.T) {
	index := scenarios.Index()
	if want := len(scenarios.All()) + len(scenarios.ServeAll()); len(index) != want {
		t.Fatalf("Index has %d entries, corpora have %d", len(index), want)
	}
	byName := map[string]scenarios.Info{}
	for _, in := range index {
		if _, dup := byName[in.Name]; dup {
			t.Fatalf("Index lists %q twice", in.Name)
		}
		byName[in.Name] = in
	}
	for _, s := range scenarios.All() {
		in, ok := byName[s.Name]
		if !ok || in.Kind != scenarios.KindBatch {
			t.Errorf("batch scenario %q missing or miskinded in the index: %+v", s.Name, in)
		}
		if in.About != s.About || in.Defaults != s.Defaults {
			t.Errorf("%q: index metadata %+v drifted from the corpus", s.Name, in)
		}
	}
	for _, s := range scenarios.ServeAll() {
		in, ok := byName[s.Name]
		if !ok || in.Kind != scenarios.KindServing {
			t.Errorf("serving scenario %q missing or miskinded in the index: %+v", s.Name, in)
		}
		if in.Window != s.Window || in.Threshold != s.Threshold {
			t.Errorf("%q: index window/threshold (%v, %d) drifted from the corpus (%v, %d)",
				s.Name, in.Window, in.Threshold, s.Window, s.Threshold)
		}
		if in.Supervised != (s.MakeRun != nil) {
			t.Errorf("%q: Supervised = %v, MakeRun set = %v", s.Name, in.Supervised, s.MakeRun != nil)
		}
	}
	// Batch entries precede serving entries — the tools rely on the
	// stable corpus order for their listings.
	sawServing := false
	for _, in := range index {
		if in.Kind == scenarios.KindServing {
			sawServing = true
		} else if sawServing {
			t.Fatalf("batch scenario %q listed after a serving scenario", in.Name)
		}
	}
}

func TestLookupBothKinds(t *testing.T) {
	if in, ok := scenarios.Lookup("mesh-steady"); !ok || in.Kind != scenarios.KindBatch {
		t.Errorf("Lookup(mesh-steady) = %+v, %v", in, ok)
	}
	if in, ok := scenarios.Lookup("serve-mesh"); !ok || in.Kind != scenarios.KindServing {
		t.Errorf("Lookup(serve-mesh) = %+v, %v", in, ok)
	}
	if _, ok := scenarios.Lookup("no-such-scenario"); ok {
		t.Error("Lookup invented a scenario")
	}
}

// TestParseSpecRedirectsServingNames: naming a serving scenario in a
// batch run spec explains the right tool instead of "unknown".
func TestParseSpecRedirectsServingNames(t *testing.T) {
	_, err := scenarios.ParseSpec("serve-mesh")
	if err == nil {
		t.Fatal("ParseSpec accepted a serving scenario")
	}
	if !strings.Contains(err.Error(), "whodunit-serve") {
		t.Fatalf("error does not point at whodunit-serve: %v", err)
	}
}
