// The engine-determinism sweep: the entire scenario corpus rerun under
// both coroutine engines, asserted bit-identical — serial, under
// DefaultShards=4, and under a seeded fault plan. Together with the
// golden files (which predate the run-to-completion engine) this is the
// acceptance bar for the zero-handoff scheduler: the engine may never
// change a single output byte.
package scenarios_test

import (
	"bytes"
	"testing"

	"whodunit"
	"whodunit/internal/scenarios"
	"whodunit/internal/vclock"
)

// withEngine runs f with vclock.DefaultEngine forced to k, restoring
// the build default afterwards.
func withEngine(k vclock.EngineKind, f func()) {
	prev := vclock.DefaultEngine
	vclock.DefaultEngine = k
	defer func() { vclock.DefaultEngine = prev }()
	f()
}

// TestCorpusEngineSweep: RunAll over the whole corpus is bit-identical
// whether coroutine threads run to completion on the dispatcher
// (EngineCoro) or are driven from dedicated goroutines
// (EngineGoroutine).
func TestCorpusEngineSweep(t *testing.T) {
	list := scenarios.All()
	var baseline, coro []*whodunit.Report
	withEngine(vclock.EngineGoroutine, func() { baseline = scenarios.RunAll(list) })
	withEngine(vclock.EngineCoro, func() { coro = scenarios.RunAll(list) })

	for i, s := range list {
		if d := whodunit.Diff(baseline[i], coro[i]); !d.Empty() {
			var buf bytes.Buffer
			d.Text(&buf)
			t.Errorf("%s: coro engine diverges from goroutine engine:\n%s", s.Name, buf.String())
			continue
		}
		a, b := renderJSON(t, baseline[i]), renderJSON(t, coro[i])
		if !bytes.Equal(a, b) {
			t.Errorf("%s: engines diff-empty but not bit-identical (%d vs %d bytes)",
				s.Name, len(a), len(b))
		}
	}
}

// TestCorpusEngineSweepSharded: the coro engine composes with the epoch
// scheduler — the corpus under EngineCoro and DefaultShards=4 matches
// the serial goroutine-engine baseline byte for byte.
func TestCorpusEngineSweepSharded(t *testing.T) {
	list := scenarios.All()
	var baseline, sharded []*whodunit.Report
	withEngine(vclock.EngineGoroutine, func() { baseline = scenarios.RunAll(list) })
	withEngine(vclock.EngineCoro, func() {
		prev := whodunit.DefaultShards
		whodunit.DefaultShards = 4
		defer func() { whodunit.DefaultShards = prev }()
		sharded = scenarios.RunAll(list)
	})

	for i, s := range list {
		a, b := renderJSON(t, baseline[i]), renderJSON(t, sharded[i])
		if !bytes.Equal(a, b) {
			t.Errorf("%s: coro+sharded run differs from goroutine serial run (%d vs %d bytes)",
				s.Name, len(a), len(b))
		}
	}
}

// TestCorpusEngineSweepUnderFaultPlan: killing and respawning
// run-to-completion threads through a fault plan stays bit-identical
// across engines — the same seeded plan as the sharded fault sweep.
func TestCorpusEngineSweepUnderFaultPlan(t *testing.T) {
	plan := &whodunit.FaultPlan{
		Seed:     3,
		Messages: []whodunit.MessageFault{{DelayProb: 0.25, Delay: 2 * whodunit.Millisecond}},
	}
	var list []scenarios.Scenario
	for _, s := range scenarios.All() {
		if s.MakeApp != nil {
			list = append(list, s)
		}
	}
	run := func() [][]byte {
		out := make([][]byte, len(list))
		for i, s := range list {
			app := s.MakeApp(s.Defaults)
			app.SetFaults(plan)
			out[i] = renderJSON(t, app.Run())
		}
		return out
	}
	var baseline, coro [][]byte
	withEngine(vclock.EngineGoroutine, func() { baseline = run() })
	withEngine(vclock.EngineCoro, func() { coro = run() })

	for i, s := range list {
		if !bytes.Equal(baseline[i], coro[i]) {
			t.Errorf("%s: faulted coro run differs from faulted goroutine run (%d vs %d bytes)",
				s.Name, len(baseline[i]), len(coro[i]))
		}
	}
}
