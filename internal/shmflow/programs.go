package shmflow

import "whodunit/internal/vm"

// Memory-layout constants shared by the scenario programs. The word-
// addressed layout mirrors Figure 1's fd_queue_t: a counter word plus an
// array of two-word elements (sd, p).
const (
	QueueBase = 0x1000 // fd_queue_t: [QueueBase] = nelts
	QueueData = 0x1010 // data array, stride 2 words: sd, p
	QueueLock = 1      // one_big_mutex

	CounterAddr = 0x2000 // shared event counter (Figure 2)
	CounterLock = 2

	FreeHead  = 0x3000 // memory allocator free-list head (Figure 3)
	AllocLock = 3

	ListHead = 0x4000 // sys/queue.h-style singly-linked list head
	ListLock = 4
)

// ApachePush is ap_queue_push from Figure 1: under one_big_mutex, store
// the connection's sd and p (passed in r4, r5) into data[nelts] and bump
// nelts. r1 must hold &queue (QueueBase).
var ApachePush = vm.MustAssemble("ap_queue_push", `
	push:
		lock 1
		load  r3, [r1]       ; r3 = queue->nelts
		add   r6, r3, r3     ; r6 = nelts * 2 (element stride)
		movi  r7, 0x1010     ; r7 = &queue->data[0]
		add   r7, r7, r6     ; r7 = &queue->data[nelts]
		store [r7+0], r4     ; elem->sd = sd   (produce)
		store [r7+1], r5     ; elem->p  = p    (produce)
		incm  [r1]           ; queue->nelts++
		unlock 1
		halt
`)

// ApachePop is ap_queue_pop from Figure 1: under one_big_mutex, read
// data[--nelts] into r4, r5, then — after releasing the mutex — use the
// values by storing them into caller locals at [r9]. r1 must hold &queue;
// r9 a private scratch address.
var ApachePop = vm.MustAssemble("ap_queue_pop", `
	pop:
		lock 1
		decm  [r1]           ; --queue->nelts
		load  r3, [r1]       ; r3 = nelts
		add   r6, r3, r3
		movi  r7, 0x1010
		add   r7, r7, r6     ; r7 = &queue->data[nelts]
		load  r4, [r7+0]     ; *sd = elem->sd
		load  r5, [r7+1]     ; *p  = elem->p
		unlock 1
		store [r9+0], r4     ; caller uses sd after return (consume)
		store [r9+1], r5     ; caller uses p  after return (consume)
		halt
`)

// SharedCounter is Figure 2's pattern: each thread increments a shared
// counter under a mutex r2 times. No MOV ever crosses threads, so no flow
// may be inferred. r1 must hold CounterAddr.
var SharedCounter = vm.MustAssemble("shared_counter", `
	main:
		lock 2
		incm [r1]
		unlock 2
		addi r2, r2, -1
		jne  r2, 0, main
		halt
`)

// AllocWork is Figure 3's do_work body: a thread frees its block onto the
// shared list and then allocates one back, repeatedly becoming both
// producer and consumer of the allocator lock's resource — the pattern
// §3.4's producer/consumer intersection rule demotes to non-flow.
// r2 = FreeHead, r4 = block address, r9 = scratch.
var AllocWork = vm.MustAssemble("alloc_work", `
	main:
		lock 3
		load  r3, [r2]
		store [r4], r3       ; block->next = head
		store [r2], r4       ; head = block (produce)
		unlock 3
		nop
		lock 3
		load  r4, [r2]       ; block = head
		load  r3, [r4]       ; next
		store [r2], r3       ; head = next
		unlock 3
		store [r9], r4       ; use block (consume)
		halt
`)

// MemFree is Figure 3's mem_free: push block (address in r4) onto the
// free list. r2 must hold &mem_free_list (FreeHead).
var MemFree = vm.MustAssemble("mem_free", `
	free:
		lock 3
		load  r3, [r2]       ; r3 = old head
		store [r4], r3       ; block->next = head
		store [r2], r4       ; head = block  (produce)
		unlock 3
		halt
`)

// MemAlloc is Figure 3's mem_alloc: pop the head block and use it after
// the critical section. r2 must hold FreeHead; r9 a private scratch
// address. The returned block address lands in r4.
var MemAlloc = vm.MustAssemble("mem_alloc", `
	alloc:
		lock 3
		load  r4, [r2]       ; r4 = head
		load  r3, [r4]       ; r3 = head->next
		store [r2], r3       ; head = next
		unlock 3
		store [r9], r4       ; use the block (consume)
		halt
`)

// ListPush pushes a (data, elem-address) pair onto a singly-linked list
// in the style of FreeBSD sys/queue.h SLIST_INSERT_HEAD (§3.3.2). r8 is
// the element's address, r4 its payload, r1 must hold ListHead.
var ListPush = vm.MustAssemble("list_push", `
	push:
		lock 4
		store [r8+0], r4     ; elem->data = v      (produce)
		load  r3, [r1]       ; r3 = head
		store [r8+1], r3     ; elem->next = head
		store [r1], r8       ; head = elem         (produce)
		unlock 4
		halt
`)

// ListPop pops the head element, consuming its payload after the critical
// section, and writes the successor back to the head — including the NULL
// (invalid-context) case discussed in §3.3.2. r1 must hold ListHead, r9 a
// private scratch address. Payload lands in r4; the popped element's
// address in r8.
var ListPop = vm.MustAssemble("list_pop", `
	pop:
		lock 4
		load  r8, [r1]       ; r8 = head
		jeq   r8, 0, empty
		load  r3, [r8+1]     ; r3 = head->next
		store [r1], r3       ; head = next
		load  r4, [r8+0]     ; r4 = elem->data
		unlock 4
		store [r9], r4       ; use payload (consume)
		halt
	empty:
		movi  r4, 0
		unlock 4
		store [r9], r4       ; "uses" NULL: must NOT be a consume
		halt
`)

// ListPushNullInit is ListPush with the §3.3.2 consistency-check style:
// the producer initialises elem->next with the immediate NULL before
// linking, so an empty-list pop propagates the invalid context.
var ListPushNullInit = vm.MustAssemble("list_push_null", `
	push:
		lock 4
		store  [r8+0], r4    ; elem->data = v   (produce)
		storei [r8+1], 0     ; elem->next = NULL (invalid context)
		load   r3, [r1]      ; r3 = head
		jeq    r3, 0, link   ; empty list: keep NULL next
		store  [r8+1], r3    ; elem->next = head
	link:
		store [r1], r8       ; head = elem      (produce)
		unlock 4
		halt
`)

// QueueMove relocates an element (two words) from slot src to slot dst
// within the shared queue under the queue lock — the priority-queue
// reshuffling case of §3.2: the destination must inherit the source's
// context, not the mover's. r1 = &queue, r6 = src slot addr, r7 = dst
// slot addr.
var QueueMove = vm.MustAssemble("queue_move", `
	move:
		lock 1
		load  r4, [r6+0]
		load  r5, [r6+1]
		store [r7+0], r4
		store [r7+1], r5
		unlock 1
		halt
`)

// CrossLockRead reads the first queue slot under an unrelated lock (id 5)
// and uses the value after exit; the lock-mismatch flush must prevent any
// flow inference. r7 = slot addr, r9 = scratch.
var CrossLockRead = vm.MustAssemble("cross_lock_read", `
	read:
		lock 5
		load r4, [r7+0]
		unlock 5
		store [r9], r4
		halt
`)
