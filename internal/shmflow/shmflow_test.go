package shmflow

import (
	"testing"

	"whodunit/internal/vm"
)

// rig wires a machine in emulate mode to a tracker whose thread contexts
// are supplied by the ctxts map (thread id -> token).
type rig struct {
	m     *vm.Machine
	tr    *Tracker
	ctxts map[int]Token
}

func newRig() *rig {
	r := &rig{m: vm.NewMachine(), tr: NewTracker(), ctxts: make(map[int]Token)}
	r.m.Mode = vm.ModeEmulateCS
	r.m.Tracer = r.tr
	r.tr.ThreadCtxt = func(tid int) Token { return r.ctxts[tid] }
	return r
}

func (r *rig) spawn(t *testing.T, p *vm.Program, label string, tok Token, regs map[byte]int64) *vm.Thread {
	t.Helper()
	th, err := r.m.Spawn(p, label)
	if err != nil {
		t.Fatal(err)
	}
	for reg, v := range regs {
		th.Regs[reg] = v
	}
	r.ctxts[th.ID] = tok
	return th
}

func (r *rig) run(t *testing.T) {
	t.Helper()
	if err := r.m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
}

func TestApacheQueueFlowDetected(t *testing.T) {
	// Figure 1 / §3.3.1: the listener's push and a worker's pop must yield
	// a flow from producer to consumer carrying the producer's context.
	r := newRig()
	prod := r.spawn(t, ApachePush, "push", 77, map[byte]int64{1: QueueBase, 4: 1234, 5: 5678})
	cons := r.spawn(t, ApachePop, "pop", 0, map[byte]int64{1: QueueBase, 9: 0x8000})
	r.run(t)

	flows := r.tr.Flows()
	if len(flows) == 0 {
		t.Fatal("no flow detected for Apache queue pattern")
	}
	for _, f := range flows {
		if f.Producer != prod.ID || f.Consumer != cons.ID || f.Token != 77 || f.Lock != QueueLock {
			t.Fatalf("unexpected flow %v", f)
		}
	}
	// The consumer must have obtained the actual values.
	if cons.Regs[4] != 1234 || cons.Regs[5] != 5678 {
		t.Fatalf("consumer regs = %d,%d want 1234,5678", cons.Regs[4], cons.Regs[5])
	}
	if r.tr.NonFlow(QueueLock) {
		t.Fatal("queue lock wrongly classified non-flow")
	}
}

func TestApacheQueueMultipleWorkers(t *testing.T) {
	// One listener pushes two connections; two workers each pop one.
	// Both workers must consume the listener's context.
	r := newRig()
	// Two sequential pushes by the same producer thread: run push, then
	// respawn with new values (the program halts after one push).
	prodA := r.spawn(t, ApachePush, "push", 7, map[byte]int64{1: QueueBase, 4: 11, 5: 12})
	r.run(t)
	prodB := r.spawn(t, ApachePush, "push", 7, map[byte]int64{1: QueueBase, 4: 21, 5: 22})
	r.run(t)
	w1 := r.spawn(t, ApachePop, "pop", 0, map[byte]int64{1: QueueBase, 9: 0x8000})
	w2 := r.spawn(t, ApachePop, "pop", 0, map[byte]int64{1: QueueBase, 9: 0x8100})
	r.run(t)

	consumers := map[int]bool{}
	for _, f := range r.tr.Flows() {
		if f.Token != 7 {
			t.Fatalf("flow with wrong token: %v", f)
		}
		consumers[f.Consumer] = true
	}
	if !consumers[w1.ID] || !consumers[w2.ID] {
		t.Fatalf("both workers should consume, got %v", consumers)
	}
	_ = prodA
	_ = prodB
	// LIFO pop order: w1 gets the second push's values.
	if w1.Regs[4] != 21 || w2.Regs[4] != 11 {
		t.Fatalf("pop values: w1=%d w2=%d", w1.Regs[4], w2.Regs[4])
	}
}

func TestSharedCounterNoFlow(t *testing.T) {
	// Figure 2 / §3.4: a shared counter must produce no flow and no
	// producers — MySQL's shared counter validation (§8.1).
	r := newRig()
	r.spawn(t, SharedCounter, "main", 1, map[byte]int64{1: CounterAddr, 2: 50})
	r.spawn(t, SharedCounter, "main", 2, map[byte]int64{1: CounterAddr, 2: 50})
	r.run(t)

	if n := len(r.tr.Flows()); n != 0 {
		t.Fatalf("shared counter produced %d flows: %v", n, r.tr.Flows())
	}
	if p := r.tr.Producers(CounterLock); len(p) != 0 {
		t.Fatalf("counter lock has producers %v", p)
	}
	if r.m.Mem.Load(CounterAddr) != 100 {
		t.Fatalf("counter = %d, want 100", r.m.Mem.Load(CounterAddr))
	}
}

func TestAllocatorPatternClassifiedNonFlow(t *testing.T) {
	// Figure 3 / §3.4: threads that both free (produce) and allocate
	// (consume) from the same free list mark the lock non-flow the first
	// time a thread appears in both sets.
	r := newRig()
	var demoted []int
	r.tr.OnNonFlow = func(lock int) { demoted = append(demoted, lock) }

	r.spawn(t, AllocWork, "main", 5, map[byte]int64{2: FreeHead, 4: 0x3100, 9: 0x8000})
	r.spawn(t, AllocWork, "main", 6, map[byte]int64{2: FreeHead, 4: 0x3200, 9: 0x8100})
	r.run(t)

	if !r.tr.NonFlow(AllocLock) {
		t.Fatalf("allocator lock not classified non-flow; producers=%v consumers=%v",
			r.tr.Producers(AllocLock), r.tr.Consumers(AllocLock))
	}
	if len(demoted) != 1 || demoted[0] != AllocLock {
		t.Fatalf("OnNonFlow calls = %v, want exactly [3]", demoted)
	}
}

func TestAllocatorSameThreadRoundTripIsNotFlow(t *testing.T) {
	// A single thread freeing and then allocating the same block must not
	// emit a flow event (producer == consumer).
	r := newRig()
	free, err := r.m.Spawn(MemFree, "free")
	if err != nil {
		t.Fatal(err)
	}
	free.Regs[2], free.Regs[4] = FreeHead, 0x3100
	r.ctxts[free.ID] = 9
	r.run(t)
	// Same machine thread id cannot be reused after halt; emulate "same
	// thread" by giving the alloc thread the same id in the tracker's
	// producer set: instead verify no flow is emitted for a same-context
	// round trip where producer thread consumes its own produce via a
	// fresh CS in one program.
	combined := vm.MustAssemble("free_then_alloc", `
	main:
		lock 3
		load  r3, [r2]
		store [r4], r3
		store [r2], r4      ; free: head = block (produce)
		unlock 3
		nop
		lock 3
		load  r4, [r2]      ; alloc: r4 = head (context-carrying)
		load  r3, [r4]
		store [r2], r3
		unlock 3
		store [r9], r4      ; use block: consume by the SAME thread
		halt
	`)
	th, err := r.m.Spawn(combined, "main")
	if err != nil {
		t.Fatal(err)
	}
	th.Regs[2], th.Regs[4], th.Regs[9] = FreeHead, 0x3200, 0x8000
	r.ctxts[th.ID] = 10
	r.run(t)

	for _, f := range r.tr.Flows() {
		if f.Producer == f.Consumer {
			t.Fatalf("self-flow emitted: %v", f)
		}
	}
	if !r.tr.NonFlow(AllocLock) {
		t.Fatal("free-then-alloc by one thread should classify the allocator lock non-flow")
	}
}

func TestLinkedListFlow(t *testing.T) {
	// §3.3.2: sys/queue.h-style list. Producer pushes an element; consumer
	// pops it and uses the payload.
	r := newRig()
	r.spawn(t, ListPush, "push", 42, map[byte]int64{1: ListHead, 4: 999, 8: 0x4100})
	r.run(t)
	cons := r.spawn(t, ListPop, "pop", 0, map[byte]int64{1: ListHead, 9: 0x8000})
	r.run(t)

	found := false
	for _, f := range r.tr.Flows() {
		if f.Consumer == cons.ID && f.Token == 42 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no flow to list consumer; flows=%v", r.tr.Flows())
	}
	if cons.Regs[4] != 999 {
		t.Fatalf("payload = %d, want 999", cons.Regs[4])
	}
}

func TestEmptyListNullIsNotFlow(t *testing.T) {
	// §3.3.2: producer initialises next=NULL (immediate). First consumer
	// pops the element (real flow); second consumer finds head==NULL and
	// must NOT be inferred as consuming from the first consumer.
	r := newRig()
	r.spawn(t, ListPushNullInit, "push", 42, map[byte]int64{1: ListHead, 4: 999, 8: 0x4100})
	r.run(t)
	c1 := r.spawn(t, ListPop, "pop", 0, map[byte]int64{1: ListHead, 9: 0x8000})
	r.run(t)
	c2 := r.spawn(t, ListPop, "pop", 0, map[byte]int64{1: ListHead, 9: 0x8100})
	r.run(t)

	for _, f := range r.tr.Flows() {
		if f.Consumer == c2.ID {
			t.Fatalf("empty-list pop wrongly inferred flow: %v", f)
		}
	}
	ok := false
	for _, f := range r.tr.Flows() {
		if f.Consumer == c1.ID && f.Token == 42 {
			ok = true
		}
	}
	if !ok {
		t.Fatal("real flow to first consumer missing")
	}
}

func TestQueueElementMovePreservesContext(t *testing.T) {
	// §3.2: moving a produced element to a new location inside a critical
	// section must carry the original producer's context to the new
	// location; the eventual consumer sees the original context.
	r := newRig()
	r.spawn(t, ApachePush, "push", 31, map[byte]int64{1: QueueBase, 4: 1, 5: 2})
	r.run(t)
	// Move slot 0 (0x1010) to slot 3 (0x1016) — a different thread does
	// the reshuffle, as in a priority queue.
	r.spawn(t, QueueMove, "move", 99, map[byte]int64{1: QueueBase, 6: QueueData, 7: QueueData + 6})
	r.run(t)
	// Consumer reads slot 3 directly.
	direct := vm.MustAssemble("consume_slot3", `
	main:
		lock 1
		load r4, [r7+0]
		load r5, [r7+1]
		unlock 1
		store [r9], r4
		halt
	`)
	cons, err := r.m.Spawn(direct, "main")
	if err != nil {
		t.Fatal(err)
	}
	cons.Regs[7], cons.Regs[9] = QueueData+6, 0x8000
	r.ctxts[cons.ID] = 0
	r.run(t)

	var toks []Token
	for _, f := range r.tr.Flows() {
		if f.Consumer == cons.ID {
			toks = append(toks, f.Token)
		}
	}
	if len(toks) == 0 || toks[0] != 31 {
		t.Fatalf("consumer should get original producer token 31, flows=%v", r.tr.Flows())
	}
}

func TestLockMismatchFlushes(t *testing.T) {
	// §3.2: an address last tagged under lock 1 accessed from a critical
	// section under lock 5 is flushed; no flow may be inferred.
	r := newRig()
	r.spawn(t, ApachePush, "push", 13, map[byte]int64{1: QueueBase, 4: 5, 5: 6})
	r.run(t)
	cons := r.spawn(t, CrossLockRead, "read", 0, map[byte]int64{7: QueueData, 9: 0x8000})
	r.run(t)
	for _, f := range r.tr.Flows() {
		if f.Consumer == cons.ID {
			t.Fatalf("cross-lock read wrongly inferred flow: %v", f)
		}
	}
}

func TestConsumeWindowBounds(t *testing.T) {
	// §7.2: the consume must happen within MAX instructions of the exit.
	// A consumer that waits past the window is not detected.
	mkSrc := func(pad int) string {
		src := "main:\n lock 1\n load r4, [r7+0]\n unlock 1\n"
		for i := 0; i < pad; i++ {
			src += " nop\n"
		}
		src += " store [r9], r4\n halt\n"
		return src
	}
	for _, tc := range []struct {
		pad  int
		want bool
	}{
		{0, true},
		{vm.DefaultMaxWindow - 2, true},
		{vm.DefaultMaxWindow + 2, false},
	} {
		r := newRig()
		r.spawn(t, ApachePush, "push", 55, map[byte]int64{1: QueueBase, 4: 1, 5: 2})
		r.run(t)
		cons, err := r.m.Spawn(vm.MustAssemble("late", mkSrc(tc.pad)), "main")
		if err != nil {
			t.Fatal(err)
		}
		cons.Regs[7], cons.Regs[9] = QueueData, 0x8000
		r.ctxts[cons.ID] = 0
		r.run(t)
		got := false
		for _, f := range r.tr.Flows() {
			if f.Consumer == cons.ID {
				got = true
			}
		}
		if got != tc.want {
			t.Fatalf("pad=%d: flow detected=%v, want %v", tc.pad, got, tc.want)
		}
	}
}

func TestOnFlowCallbackFires(t *testing.T) {
	r := newRig()
	var events []FlowEvent
	r.tr.OnFlow = func(ev FlowEvent) { events = append(events, ev) }
	r.spawn(t, ApachePush, "push", 3, map[byte]int64{1: QueueBase, 4: 1, 5: 2})
	r.spawn(t, ApachePop, "pop", 0, map[byte]int64{1: QueueBase, 9: 0x8000})
	r.run(t)
	if len(events) == 0 {
		t.Fatal("OnFlow callback never fired")
	}
	if events[0].Token != 3 {
		t.Fatalf("callback token = %d", events[0].Token)
	}
}

func TestNonFlowDemotionStopsEmulation(t *testing.T) {
	// Wire OnNonFlow to Machine.SetNonFlow as the implementation does
	// (§7.2) and verify subsequent critical sections run native (cheap).
	r := newRig()
	r.tr.OnNonFlow = func(lock int) { r.m.SetNonFlow(lock) }

	r.spawn(t, AllocWork, "main", 1, map[byte]int64{2: FreeHead, 4: 0x3100, 9: 0x8000})
	r.run(t)
	if !r.m.NonFlow(AllocLock) {
		t.Fatal("machine never told to run allocator natively")
	}
	// A fresh free on the demoted lock must cost native cycles.
	t5 := r.spawn(t, MemFree, "free", 3, map[byte]int64{2: FreeHead, 4: 0x3300})
	r.run(t)
	native := vm.NewMachine()
	nt, _ := native.Spawn(MemFree, "free")
	nt.Regs[2], nt.Regs[4] = FreeHead, 0x3300
	native.Run(1000)
	if t5.Cycles != nt.Cycles {
		t.Fatalf("demoted CS cycles %d != native %d", t5.Cycles, nt.Cycles)
	}
}

func TestFlowEventString(t *testing.T) {
	ev := FlowEvent{Producer: 1, Consumer: 2, Token: 9, Lock: 1, Loc: vm.MemLoc(0x10)}
	if ev.String() == "" {
		t.Fatal("empty event string")
	}
}
