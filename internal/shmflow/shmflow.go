// Package shmflow implements Whodunit's algorithm for automatically
// detecting transaction flow through shared memory (paper §3).
//
// The algorithm watches every MOV-family memory operation executed inside
// critical sections (and a bounded window after each critical-section
// exit) on the vm machine, and maintains a dictionary associating
// locations — memory words and per-thread registers — with transaction
// contexts:
//
//   - moving a value whose source has an associated context propagates
//     that context to the destination;
//   - moving a value with no associated context associates the executing
//     thread's own context with the destination and, for memory
//     destinations, marks the thread a *producer* for the critical
//     section's lock;
//   - any non-MOV modification (immediates, arithmetic, increments)
//     associates the special invalid context, which also propagates —
//     this is what rejects NULL sanity-checks and shared counters;
//   - a location touched from a critical section protected by a
//     different lock than the one that last set its context is flushed;
//   - a thread that *uses* (reads) a context-carrying location within
//     MAX instructions after leaving the critical section is a
//     *consumer*: the context is assigned to it and a flow event is
//     emitted;
//   - the first time a lock's producer and consumer sets intersect, the
//     lock is declared non-flow (the memory-allocator pattern) and its
//     critical sections may fall back to native execution.
package shmflow

import (
	"fmt"
	"sort"

	"whodunit/internal/vm"
)

// Token identifies a transaction context opaquely. The application maps
// its real transaction contexts to tokens (e.g. a tranctx synopsis).
// Token 0 conventionally means "no transaction".
type Token uint32

// FlowEvent records one detected transaction flow: consumer picked up the
// context tok that producer left at loc, under the given lock.
type FlowEvent struct {
	Producer int
	Consumer int
	Token    Token
	Lock     int
	Loc      vm.Loc
}

func (e FlowEvent) String() string {
	return fmt.Sprintf("flow t%d->t%d tok=%d lock=%d at %v", e.Producer, e.Consumer, e.Token, e.Lock, e.Loc)
}

// entry is a dictionary entry: the context associated with a location.
// valid=false is the paper's invlctxt.
type entry struct {
	tok      Token
	valid    bool
	lock     int
	producer int
}

// lockInfo tracks the producer/consumer thread sets per lock object.
type lockInfo struct {
	producers map[int]bool
	consumers map[int]bool
	nonFlow   bool
}

// Tracker implements vm.Tracer and runs the §3 algorithm.
type Tracker struct {
	// ThreadCtxt supplies the executing thread's current transaction
	// context token; required.
	ThreadCtxt func(thread int) Token
	// OnFlow, if set, is invoked for every detected flow (after the
	// consumer set updates). This is where the profiler propagates the
	// context to the consuming thread (§3.5).
	OnFlow func(ev FlowEvent)
	// OnNonFlow, if set, is invoked once per lock when its accesses are
	// classified as not constituting transaction flow; the application
	// typically responds with Machine.SetNonFlow to drop to native
	// execution (§7.2).
	OnNonFlow func(lock int)

	dict  map[vm.Loc]entry
	locks map[int]*lockInfo
	flows []FlowEvent
}

var _ vm.Tracer = (*Tracker)(nil)

// NewTracker returns a tracker with an empty dictionary. ThreadCtxt must
// be assigned before use.
func NewTracker() *Tracker {
	return &Tracker{
		dict:  make(map[vm.Loc]entry),
		locks: make(map[int]*lockInfo),
	}
}

// Flows returns every detected flow event in order.
func (tr *Tracker) Flows() []FlowEvent { return tr.flows }

// NonFlow reports whether lock has been classified non-flow.
func (tr *Tracker) NonFlow(lock int) bool {
	li := tr.locks[lock]
	return li != nil && li.nonFlow
}

// Producers returns the sorted producer thread ids recorded for lock.
func (tr *Tracker) Producers(lock int) []int { return tr.side(lock, true) }

// Consumers returns the sorted consumer thread ids recorded for lock.
func (tr *Tracker) Consumers(lock int) []int { return tr.side(lock, false) }

func (tr *Tracker) side(lock int, prod bool) []int {
	li := tr.locks[lock]
	if li == nil {
		return nil
	}
	set := li.consumers
	if prod {
		set = li.producers
	}
	out := make([]int, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// DictSize reports the number of live dictionary entries (for tests and
// capacity monitoring).
func (tr *Tracker) DictSize() int { return len(tr.dict) }

func (tr *Tracker) lockInfoFor(lock int) *lockInfo {
	li, ok := tr.locks[lock]
	if !ok {
		li = &lockInfo{producers: make(map[int]bool), consumers: make(map[int]bool)}
		tr.locks[lock] = li
	}
	return li
}

// OnLock implements vm.Tracer: entering the outermost critical section.
// The thread's register entries are flushed — registers were freely
// overwritten outside the traced region, so any old association is stale.
// This realises the §3.2 premise that a producer's source locations have
// no associated context on critical-section entry.
func (tr *Tracker) OnLock(thread, lock int) {
	for r := byte(0); r < vm.NumRegs; r++ {
		delete(tr.dict, vm.RegLoc(thread, r))
	}
}

// OnUnlock implements vm.Tracer. The consume window is handled by the
// machine; nothing to do here.
func (tr *Tracker) OnUnlock(thread, lock int) {}

// OnAccess implements vm.Tracer: the per-instruction algorithm.
func (tr *Tracker) OnAccess(ac vm.Access) {
	if ac.InCS {
		tr.inCS(ac)
		return
	}
	if ac.InWindow {
		tr.inWindow(ac)
	}
}

// flushMismatched drops loc's entry if it was last set under a different
// lock (§3.2: a location may serve different purposes at different times).
func (tr *Tracker) flushMismatched(loc vm.Loc, lock int) {
	if e, ok := tr.dict[loc]; ok && e.lock != lock {
		delete(tr.dict, loc)
	}
}

func (tr *Tracker) inCS(ac vm.Access) {
	switch ac.Kind {
	case vm.AccMove:
		tr.flushMismatched(ac.Src, ac.Lock)
		tr.flushMismatched(ac.Dst, ac.Lock)
		if e, ok := tr.dict[ac.Src]; ok {
			// Propagate, valid or invalid (§3.3.2: the NULL/invalid
			// context is transferred just like a valid one).
			e.lock = ac.Lock
			tr.dict[ac.Dst] = e
			return
		}
		// Source has no associated context: associate the executing
		// thread's context with the destination. A memory destination is
		// a produce (§3.2).
		tok := Token(0)
		if tr.ThreadCtxt != nil {
			tok = tr.ThreadCtxt(ac.Thread)
		}
		tr.dict[ac.Dst] = entry{tok: tok, valid: true, lock: ac.Lock, producer: ac.Thread}
		if ac.Dst.Kind == vm.LocMem {
			tr.addProducer(ac.Lock, ac.Thread)
		}
	case vm.AccWrite:
		tr.flushMismatched(ac.Dst, ac.Lock)
		// Non-MOV modification: invalid context (§3.2).
		tr.dict[ac.Dst] = entry{valid: false, lock: ac.Lock}
	case vm.AccRead:
		// Reads inside the critical section carry no inference; consumes
		// are detected after exit (§3.2's consumer definition).
	}
}

func (tr *Tracker) inWindow(ac vm.Access) {
	// Uses of context-carrying locations after critical-section exit are
	// consumes (§3.2, §7.2).
	for _, loc := range ac.Reads {
		e, ok := tr.dict[loc]
		if !ok || !e.valid {
			continue
		}
		// The value has been consumed; drop the association so repeated
		// uses in the same window do not re-fire.
		delete(tr.dict, loc)
		li := tr.addConsumer(e.lock, ac.Thread)
		if li.nonFlow {
			continue
		}
		if e.producer == ac.Thread {
			// A thread picking up its own context is not a transaction
			// flow (it contributes to the allocator-pattern sets above,
			// but assigning a thread its own context is a no-op).
			continue
		}
		ev := FlowEvent{Producer: e.producer, Consumer: ac.Thread, Token: e.tok, Lock: e.lock, Loc: loc}
		tr.flows = append(tr.flows, ev)
		if tr.OnFlow != nil {
			tr.OnFlow(ev)
		}
	}
	// Writes outside the critical section are untracked computation;
	// whatever the instruction stores there is not a traced value, so any
	// stale association must be dropped.
	if ac.Kind == vm.AccMove || ac.Kind == vm.AccWrite {
		delete(tr.dict, ac.Dst)
	}
}

// addProducer and addConsumer grow a lock's thread sets and apply §3.4's
// allocator rule incrementally: the producer/consumer intersection first
// becomes non-empty exactly when a thread newly added to one set is
// already in the other, so membership of the new thread is the only
// check needed — the full rescan this replaces was O(producers) per
// traced instruction, quadratic over an app's lifetime of one-shot
// critical-section executions.
func (tr *Tracker) addProducer(lock, thread int) {
	li := tr.lockInfoFor(lock)
	if li.producers[thread] {
		return
	}
	li.producers[thread] = true
	if !li.nonFlow && li.consumers[thread] {
		tr.markNonFlow(lock, li)
	}
}

func (tr *Tracker) addConsumer(lock, thread int) *lockInfo {
	li := tr.lockInfoFor(lock)
	if !li.consumers[thread] {
		li.consumers[thread] = true
		if !li.nonFlow && li.producers[thread] {
			tr.markNonFlow(lock, li)
		}
	}
	return li
}

func (tr *Tracker) markNonFlow(lock int, li *lockInfo) {
	li.nonFlow = true
	if tr.OnNonFlow != nil {
		tr.OnNonFlow(lock)
	}
}
