package shmflow

import (
	"testing"

	"whodunit/internal/vm"
)

// §3.3.2 verifies the algorithm against FreeBSD sys/queue.h structures.
// This file covers the TAILQ (doubly-linked tail queue) shape: insertion
// at the tail maintains both next pointers and a tail pointer, and
// removal from the head rewires both directions — more pointer traffic
// inside the critical section than the SLIST case, all of which must
// propagate contexts correctly without spurious flows.

const (
	tqHead = 0x5000 // [tqHead] = first element, [tqHead+1] = last element
	tqLock = 6
)

// TailqInsertTail inserts the element at r8 (payload in r4) at the tail.
var TailqInsertTail = vm.MustAssemble("tailq_insert_tail", `
	insert:
		lock 6
		store  [r8+0], r4    ; elem->data = v (produce)
		storei [r8+1], 0     ; elem->next = NULL
		load   r3, [r1+1]    ; r3 = head->last
		store  [r8+2], r3    ; elem->prev = last
		jeq    r3, 0, first
		store  [r3+1], r8    ; last->next = elem
		jmp    done
	first:
		store  [r1+0], r8    ; head->first = elem
	done:
		store  [r1+1], r8    ; head->last = elem
		unlock 6
		halt
`)

// TailqRemoveHead removes the first element, consuming its payload after
// the critical section. Payload lands in r4.
var TailqRemoveHead = vm.MustAssemble("tailq_remove_head", `
	remove:
		lock 6
		load  r8, [r1+0]     ; r8 = first
		jeq   r8, 0, empty
		load  r3, [r8+1]     ; r3 = first->next
		store [r1+0], r3     ; head->first = next
		jne   r3, 0, fix
		storei [r1+1], 0     ; list now empty: last = NULL
		jmp   get
	fix:
		storei [r3+2], 0     ; next->prev = NULL
	get:
		load  r4, [r8+0]     ; r4 = elem->data
		unlock 6
		store [r9], r4       ; use payload (consume)
		halt
	empty:
		movi  r4, 0
		unlock 6
		store [r9], r4
		halt
`)

func TestTailqFlowDetected(t *testing.T) {
	r := newRig()
	r.spawn(t, TailqInsertTail, "insert", 61, map[byte]int64{1: tqHead, 4: 111, 8: 0x5100})
	r.run(t)
	r.spawn(t, TailqInsertTail, "insert", 62, map[byte]int64{1: tqHead, 4: 222, 8: 0x5200})
	r.run(t)
	c1 := r.spawn(t, TailqRemoveHead, "remove", 0, map[byte]int64{1: tqHead, 9: 0x8000})
	r.run(t)
	c2 := r.spawn(t, TailqRemoveHead, "remove", 0, map[byte]int64{1: tqHead, 9: 0x8100})
	r.run(t)

	// FIFO semantics: first consumer gets the first producer's payload.
	if c1.Regs[4] != 111 || c2.Regs[4] != 222 {
		t.Fatalf("payloads: c1=%d c2=%d, want 111/222", c1.Regs[4], c2.Regs[4])
	}
	toks := map[int]Token{}
	for _, f := range r.tr.Flows() {
		toks[f.Consumer] = f.Token
	}
	if toks[c1.ID] != 61 || toks[c2.ID] != 62 {
		t.Fatalf("tokens: %v, want c1<-61 c2<-62 (flows: %v)", toks, r.tr.Flows())
	}
	if r.tr.NonFlow(tqLock) {
		t.Fatal("tailq lock wrongly demoted")
	}
}

func TestTailqEmptyRemoveNoFlow(t *testing.T) {
	r := newRig()
	r.spawn(t, TailqInsertTail, "insert", 61, map[byte]int64{1: tqHead, 4: 111, 8: 0x5100})
	r.run(t)
	r.spawn(t, TailqRemoveHead, "remove", 0, map[byte]int64{1: tqHead, 9: 0x8000})
	r.run(t)
	// Queue now empty; the next remove reads NULL pointers only.
	c := r.spawn(t, TailqRemoveHead, "remove", 0, map[byte]int64{1: tqHead, 9: 0x8100})
	r.run(t)
	for _, f := range r.tr.Flows() {
		if f.Consumer == c.ID {
			t.Fatalf("empty remove produced flow: %v", f)
		}
	}
	if c.Regs[4] != 0 {
		t.Fatalf("empty remove payload = %d", c.Regs[4])
	}
}

func TestTailqInterleavedProducersDistinctTokens(t *testing.T) {
	// Two different producers, two consumers: each consumer must pick up
	// the context of the producer whose element it dequeued, even though
	// the elements share head/tail pointer words.
	r := newRig()
	r.spawn(t, TailqInsertTail, "insert", 71, map[byte]int64{1: tqHead, 4: 1, 8: 0x5100})
	r.spawn(t, TailqInsertTail, "insert", 72, map[byte]int64{1: tqHead, 4: 2, 8: 0x5200})
	r.run(t)
	c1 := r.spawn(t, TailqRemoveHead, "remove", 0, map[byte]int64{1: tqHead, 9: 0x8000})
	r.run(t)
	c2 := r.spawn(t, TailqRemoveHead, "remove", 0, map[byte]int64{1: tqHead, 9: 0x8100})
	r.run(t)
	got := map[int]Token{}
	for _, f := range r.tr.Flows() {
		got[f.Consumer] = f.Token
	}
	// Round-robin interleaving means either producer may have inserted
	// first; but each consumer's token must match the payload's producer.
	want := map[int64]Token{1: 71, 2: 72}
	if got[c1.ID] != want[c1.Regs[4]] || got[c2.ID] != want[c2.Regs[4]] {
		t.Fatalf("token/payload mismatch: c1 got tok %d payload %d; c2 tok %d payload %d",
			got[c1.ID], c1.Regs[4], got[c2.ID], c2.Regs[4])
	}
}
