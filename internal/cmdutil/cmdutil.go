// Package cmdutil holds the flag and output plumbing shared by the
// cmd/whodunit-* binaries, so mode parsing and report emission have a
// single implementation.
package cmdutil

import (
	"flag"
	"fmt"
	"os"

	"whodunit"
	"whodunit/internal/profiler"
)

// ModeFlag registers the standard -mode flag (default whodunit, parsed
// through profiler.ParseMode) and returns a pointer to the chosen mode.
func ModeFlag() *profiler.Mode {
	m := profiler.ModeWhodunit
	flag.Var(&m, "mode", "profiling mode: off|csprof|whodunit|gprof")
	return &m
}

// JSONFlag registers the standard -json flag.
func JSONFlag() *bool {
	return flag.Bool("json", false, "emit the report as JSON instead of text")
}

// EmitJSON writes the report as JSON to stdout, exiting the tool with
// status 1 on error.
func EmitJSON(tool string, r *whodunit.Report) {
	if err := r.JSON(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
		os.Exit(1)
	}
}
