package cmdutil_test

import (
	"bytes"
	"flag"
	"io"
	"os"
	"testing"

	"whodunit"
	"whodunit/internal/cmdutil"
)

// The flag helpers register on the global CommandLine (that is their
// contract — every whodunit-* binary shares one flag set), so each is
// registered exactly once for the whole test binary.
var (
	modeFlag = cmdutil.ModeFlag()
	jsonFlag = cmdutil.JSONFlag()
)

func TestModeFlagDefault(t *testing.T) {
	if *modeFlag != whodunit.ModeWhodunit {
		t.Fatalf("default mode = %v, want whodunit", *modeFlag)
	}
}

func TestModeFlagParsesEveryMode(t *testing.T) {
	want := map[string]whodunit.Mode{
		"off":      whodunit.ModeOff,
		"csprof":   whodunit.ModeSampling,
		"whodunit": whodunit.ModeWhodunit,
		"gprof":    whodunit.ModeInstrumented,
	}
	for name, m := range want {
		if err := flag.CommandLine.Set("mode", name); err != nil {
			t.Fatalf("set mode=%s: %v", name, err)
		}
		if *modeFlag != m {
			t.Fatalf("mode %s parsed to %v, want %v", name, *modeFlag, m)
		}
	}
	if err := flag.CommandLine.Set("mode", "bogus"); err == nil {
		t.Fatal("mode=bogus accepted")
	}
	// Leave the shared flag at its documented default.
	if err := flag.CommandLine.Set("mode", "whodunit"); err != nil {
		t.Fatal(err)
	}
}

func TestJSONFlag(t *testing.T) {
	if *jsonFlag {
		t.Fatal("json flag defaults to true")
	}
	if err := flag.CommandLine.Set("json", "true"); err != nil {
		t.Fatal(err)
	}
	if !*jsonFlag {
		t.Fatal("json flag did not set")
	}
	if err := flag.CommandLine.Set("json", "false"); err != nil {
		t.Fatal(err)
	}
}

func TestEmitJSONRoundTrips(t *testing.T) {
	rep := whodunit.NewReport("cmdutil-test")
	rep.Elapsed = 3 * whodunit.Millisecond

	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	cmdutil.EmitJSON("cmdutil-test", rep)
	w.Close()
	os.Stdout = old

	raw, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := whodunit.ReadReport(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("EmitJSON output does not decode: %v\n%s", err, raw)
	}
	if decoded.App != "cmdutil-test" || decoded.Elapsed != rep.Elapsed {
		t.Fatalf("decoded = %+v", decoded)
	}
}
