package profiler

import (
	"encoding/json"
	"flag"
	"testing"
)

func TestParseMode(t *testing.T) {
	cases := []struct {
		in   string
		want Mode
	}{
		{"off", ModeOff},
		{"csprof", ModeSampling},
		{"sampling", ModeSampling},
		{"whodunit", ModeWhodunit},
		{"WHODUNIT", ModeWhodunit},
		{" gprof ", ModeInstrumented},
		{"instrumented", ModeInstrumented},
	}
	for _, c := range cases {
		got, err := ParseMode(c.in)
		if err != nil {
			t.Errorf("ParseMode(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParseMode(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("ParseMode(bogus) succeeded, want error")
	}
}

func TestModeFlagValue(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	mode := ModeWhodunit
	fs.Var(&mode, "mode", "profiling mode")
	if err := fs.Parse([]string{"-mode", "gprof"}); err != nil {
		t.Fatal(err)
	}
	if mode != ModeInstrumented {
		t.Fatalf("mode = %v, want gprof", mode)
	}
	fs2 := flag.NewFlagSet("test2", flag.ContinueOnError)
	fs2.SetOutput(discard{})
	mode2 := ModeOff
	fs2.Var(&mode2, "mode", "profiling mode")
	if err := fs2.Parse([]string{"-mode", "nope"}); err == nil {
		t.Fatal("parsing -mode nope succeeded, want error")
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func TestModeJSONRoundTrip(t *testing.T) {
	for _, m := range []Mode{ModeOff, ModeSampling, ModeWhodunit, ModeInstrumented} {
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		var back Mode
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back != m {
			t.Fatalf("round trip %v -> %s -> %v", m, b, back)
		}
	}
}
