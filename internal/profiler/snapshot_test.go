package profiler

import (
	"reflect"
	"sync"
	"testing"

	"whodunit/internal/tranctx"
	"whodunit/internal/vclock"
)

// workload drives a probe through three contexts and two call paths —
// enough structure to exercise every presentation method.
func workload(pr *Probe) {
	root := pr.Profiler().Table.Root()
	defer pr.Exit(pr.Enter("serve"))
	pr.SetTxn(TxnCtxt{Local: root.Append(tranctx.HandlerHop("s", "home"))})
	func() {
		defer pr.Exit(pr.Enter("render"))
		pr.Compute(5 * DefaultInterval)
	}()
	pr.SetTxn(TxnCtxt{Local: root.Append(tranctx.HandlerHop("s", "search"))})
	func() {
		defer pr.Exit(pr.Enter("query"))
		pr.Compute(9 * DefaultInterval)
	}()
	pr.SetTxn(TxnCtxt{Prefix: tranctx.Chain{42}, Local: root})
	pr.Compute(2 * DefaultInterval)
}

// TestSnapshotPresentationParity checks a Snapshot answers every
// presentation question exactly as the live Profiler it was copied from.
func TestSnapshotPresentationParity(t *testing.T) {
	for _, ctor := range []struct {
		name string
		take func(p *Profiler) *Snapshot
	}{
		{"Snapshot", func(p *Profiler) *Snapshot { return p.Snapshot() }},
		{"Retire", func(p *Profiler) *Snapshot { return p.Retire() }},
	} {
		t.Run(ctor.name, func(t *testing.T) {
			p := harness(t, ModeWhodunit, workload)
			wantShares := p.Shares()
			wantMergedTotal := p.Merged().Total()
			wantSamples, wantCalls, wantSwitches, wantOverhead := p.Stats()
			wantEntries := len(p.Entries())
			wantLabels := make([]string, 0, wantEntries)
			for _, tr := range p.Trees() {
				wantLabels = append(wantLabels, tr.Label)
			}

			s := ctor.take(p)
			if got := s.Shares(); !reflect.DeepEqual(got, wantShares) {
				t.Fatalf("Shares: %+v, want %+v", got, wantShares)
			}
			if got := s.Merged().Total(); got != wantMergedTotal {
				t.Fatalf("Merged total %d, want %d", got, wantMergedTotal)
			}
			samples, calls, switches, overhead := s.Stats()
			if samples != wantSamples || calls != wantCalls || switches != wantSwitches || overhead != wantOverhead {
				t.Fatalf("Stats (%d,%d,%d,%v), want (%d,%d,%d,%v)",
					samples, calls, switches, overhead, wantSamples, wantCalls, wantSwitches, wantOverhead)
			}
			if s.TotalSamples() != wantSamples {
				t.Fatalf("TotalSamples %d, want %d", s.TotalSamples(), wantSamples)
			}
			if got := len(s.Entries()); got != wantEntries {
				t.Fatalf("Entries %d, want %d", got, wantEntries)
			}
			for i, tr := range s.Trees() {
				if tr.Label != wantLabels[i] {
					t.Fatalf("tree %d label %q, want %q", i, tr.Label, wantLabels[i])
				}
				if got := s.TreeByLabel(tr.Label); got != tr {
					t.Fatalf("TreeByLabel(%q) = %p, want %p", tr.Label, got, tr)
				}
			}
			if s.TreeByLabel("no-such-context") != nil {
				t.Fatal("TreeByLabel on an unknown label must return nil")
			}
			// The search context dominates: its query path must survive the
			// copy with exact counts.
			top := s.Shares()[0]
			if top.Samples != 9 {
				t.Fatalf("top share %+v, want 9 samples", top)
			}
			if n := s.TreeByLabel(top.Label).Find("serve", "query"); n == nil || n.Self != 9 {
				t.Fatalf("query node %+v, want self 9", n)
			}
		})
	}
}

// TestRetireResetsLiveState: after Retire the live profiler starts an
// empty window — counters zeroed, tree set fresh, probes re-resolving
// their cached tree — while the snapshot keeps the full history.
func TestRetireResetsLiveState(t *testing.T) {
	var snap *Snapshot
	p := harness(t, ModeWhodunit, func(pr *Probe) {
		defer pr.Exit(pr.Enter("f"))
		pr.Compute(4 * DefaultInterval)
		snap = pr.Profiler().Retire()
		pr.Compute(6 * DefaultInterval)
	})
	if snap.TotalSamples() != 4 {
		t.Fatalf("retired window has %d samples, want 4", snap.TotalSamples())
	}
	if p.TotalSamples() != 6 {
		t.Fatalf("live profiler has %d samples after retire, want 6", p.TotalSamples())
	}
	// The post-retire samples must land in a fresh tree, not the
	// retired one.
	if n := snap.Merged().Find("f"); n.Self != 4 {
		t.Fatalf("retired f self %d, want 4 (post-retire samples leaked in)", n.Self)
	}
	if n := p.Merged().Find("f"); n.Self != 6 {
		t.Fatalf("live f self %d, want 6", n.Self)
	}
}

// TestRetiredWindowsSumToUnwindowedRun: splitting a run into retired
// windows conserves samples — the windows plus the live residue sum to
// exactly what one unwindowed run of the same body accumulates.
func TestRetiredWindowsSumToUnwindowedRun(t *testing.T) {
	whole := harness(t, ModeWhodunit, workload)

	var windows []*Snapshot
	split := harness(t, ModeWhodunit, func(pr *Probe) {
		root := pr.Profiler().Table.Root()
		defer pr.Exit(pr.Enter("serve"))
		pr.SetTxn(TxnCtxt{Local: root.Append(tranctx.HandlerHop("s", "home"))})
		func() {
			defer pr.Exit(pr.Enter("render"))
			pr.Compute(5 * DefaultInterval)
		}()
		windows = append(windows, pr.Profiler().Retire())
		pr.SetTxn(TxnCtxt{Local: root.Append(tranctx.HandlerHop("s", "search"))})
		func() {
			defer pr.Exit(pr.Enter("query"))
			pr.Compute(9 * DefaultInterval)
		}()
		windows = append(windows, pr.Profiler().Retire())
		pr.SetTxn(TxnCtxt{Prefix: tranctx.Chain{42}, Local: root})
		pr.Compute(2 * DefaultInterval)
	})

	var sum int64
	for _, w := range windows {
		sum += w.TotalSamples()
	}
	sum += split.TotalSamples()
	if sum != whole.TotalSamples() {
		t.Fatalf("windows+residue = %d samples, unwindowed run = %d", sum, whole.TotalSamples())
	}
	// Per-context conservation: merge every window's share map and
	// compare against the whole run's.
	got := map[string]int64{}
	for _, w := range windows {
		for _, sh := range w.Shares() {
			got[sh.Label] += sh.Samples
		}
	}
	for _, sh := range split.Shares() {
		got[sh.Label] += sh.Samples
	}
	want := map[string]int64{}
	for _, sh := range whole.Shares() {
		want[sh.Label] += sh.Samples
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("per-context samples %v, want %v", got, want)
	}
}

// TestSnapshotDetachedFromLiveProfiler: a Snapshot taken mid-run is
// immutable — samples accumulated afterwards never show through, and
// its private frame table keeps resolving names even as the live table
// grows.
func TestSnapshotDetachedFromLiveProfiler(t *testing.T) {
	var snap *Snapshot
	harness(t, ModeWhodunit, func(pr *Probe) {
		defer pr.Exit(pr.Enter("f"))
		pr.Compute(3 * DefaultInterval)
		snap = pr.Profiler().Snapshot()
		defer pr.Exit(pr.Enter("g"))
		pr.Compute(8 * DefaultInterval)
	})
	if snap.TotalSamples() != 3 {
		t.Fatalf("snapshot has %d samples, want the 3 taken before it", snap.TotalSamples())
	}
	m := snap.Merged()
	if n := m.Find("f"); n == nil || n.Self != 3 {
		t.Fatalf("snapshot f = %+v, want self 3", m.Find("f"))
	}
	if m.Find("g") != nil {
		t.Fatal("frame entered after the snapshot leaked into it")
	}
}

// TestSnapshotWhileRunning is the -race witness for the live /report
// path: detached snapshots are taken at event boundaries while the
// simulation keeps running, and a separate goroutine walks every
// presentation method concurrently with further sampling.
func TestSnapshotWhileRunning(t *testing.T) {
	s := vclock.New()
	cpu := s.NewCPU("cpu", 1)
	p := New("stage", ModeWhodunit)

	snaps := make(chan *Snapshot, 64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for snap := range snaps {
			for _, sh := range snap.Shares() {
				if sh.Samples < 0 {
					t.Errorf("negative share %+v", sh)
				}
			}
			snap.Merged()
			snap.Stats()
			for _, tr := range snap.Trees() {
				snap.TreeByLabel(tr.Label)
			}
		}
	}()

	done := false
	s.Go("worker", func(th *vclock.Thread) {
		pr := p.NewProbe(th, cpu)
		root := p.Table.Root()
		defer pr.Exit(pr.Enter("serve"))
		for i := 0; i < 400; i++ {
			pr.SetTxn(TxnCtxt{Local: root.Append(tranctx.HandlerHop("s", []string{"a", "b", "c"}[i%3]))})
			pr.Compute(DefaultInterval)
		}
		done = true
	})
	// Scheduler context: snapshot every few sample intervals while the
	// worker is mid-loop. Non-blocking send — a slow reader drops
	// snapshots, never stalls the simulation.
	s.Every(3*DefaultInterval, func() {
		select {
		case snaps <- p.Snapshot():
		default:
		}
	})
	// The ticker reschedules forever, so run under a stop predicate
	// rather than to event exhaustion.
	s.RunUntil(func() bool { return done })
	s.Shutdown()
	close(snaps)
	wg.Wait()
}
