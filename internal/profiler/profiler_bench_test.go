package profiler

import (
	"fmt"
	"testing"

	"whodunit/internal/tranctx"
	"whodunit/internal/vclock"
)

// benchProbe runs body inside a one-thread sim against a fresh profiler.
func benchProbe(mode Mode, body func(pr *Probe)) {
	s := vclock.New()
	cpu := s.NewCPU("cpu", 1)
	p := New("stage", mode)
	s.Go("w", func(th *vclock.Thread) {
		body(p.NewProbe(th, cpu))
	})
	s.Run()
	s.Shutdown()
}

// BenchmarkProbeCompute measures the steady-state sampling path — Compute
// calls that accumulate phase and periodically take a sample into the
// current context's CCT — including the simulator round-trip each
// blocking Compute implies. Zero allocs/op is the contract (see
// TestComputeZeroAllocSteadyState).
func BenchmarkProbeCompute(b *testing.B) {
	for _, mode := range []Mode{ModeOff, ModeSampling, ModeWhodunit, ModeInstrumented} {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			n := b.N
			benchProbe(mode, func(pr *Probe) {
				defer pr.Exit(pr.Enter("hot"))
				pr.Compute(DefaultInterval) // warm the tree path
				b.ResetTimer()
				for i := 0; i < n; i++ {
					pr.Compute(DefaultInterval / 8)
				}
			})
		})
	}
}

// BenchmarkSetTxnSwitch measures a transaction-context switch in
// Whodunit mode (the §7.1 CCT dictionary switch): compare against the
// current context, swap, and invalidate the probe's cached tree. The
// contexts carry synopsis-chain prefixes so the comparison exercises the
// chain path, and every other iteration is a redundant SetTxn (the
// same-context fast path).
func BenchmarkSetTxnSwitch(b *testing.B) {
	b.ReportAllocs()
	n := b.N
	benchProbe(ModeWhodunit, func(pr *Probe) {
		defer pr.Exit(pr.Enter("serve"))
		root := pr.Profiler().Table.Root()
		ctxA := TxnCtxt{Prefix: tranctx.Chain{7}, Local: root.Append(tranctx.HandlerHop("stage", "hit"))}
		ctxB := TxnCtxt{Prefix: tranctx.Chain{9}, Local: root.Append(tranctx.HandlerHop("stage", "miss"))}
		// Materialise both trees so the bench measures switching, not
		// first-touch tree creation.
		pr.SetTxn(ctxA)
		pr.Compute(DefaultInterval)
		pr.SetTxn(ctxB)
		pr.Compute(DefaultInterval)
		b.ResetTimer()
		for i := 0; i < n; i++ {
			if i%2 == 0 {
				pr.SetTxn(ctxA)
			} else {
				pr.SetTxn(ctxB)
			}
			pr.SetTxn(pr.Txn()) // redundant switch: the fast path
		}
	})
}

// TestComputeZeroAllocSteadyState asserts the headline property of the
// interned hot path: once a probe's call stack and context tree exist,
// Probe.Compute allocates nothing in any mode — no string keys, no CCT
// dictionary lookups, no event boxing in the simulator.
func TestComputeZeroAllocSteadyState(t *testing.T) {
	for _, mode := range []Mode{ModeOff, ModeSampling, ModeWhodunit, ModeInstrumented} {
		var allocs float64
		benchProbe(mode, func(pr *Probe) {
			defer pr.Exit(pr.Enter("outer"))
			defer pr.Exit(pr.Enter("hot"))
			// Warm up: create the tree, its path nodes, and grow the
			// event-heap and stack capacities.
			for i := 0; i < 32; i++ {
				pr.Compute(DefaultInterval / 8)
			}
			allocs = testing.AllocsPerRun(200, func() {
				pr.Compute(DefaultInterval / 8)
			})
		})
		if allocs != 0 {
			t.Errorf("mode %s: Compute allocates %.2f allocs/op in steady state, want 0", mode, allocs)
		}
	}
}

// TestSetTxnSwitchZeroAllocSteadyState is the same contract for context
// switches: once both context trees exist, switching between them (and
// the samples that follow) allocates nothing.
func TestSetTxnSwitchZeroAllocSteadyState(t *testing.T) {
	var allocs float64
	benchProbe(ModeWhodunit, func(pr *Probe) {
		defer pr.Exit(pr.Enter("serve"))
		root := pr.Profiler().Table.Root()
		ctxA := TxnCtxt{Prefix: tranctx.Chain{7}, Local: root.Append(tranctx.HandlerHop("stage", "hit"))}
		ctxB := TxnCtxt{Prefix: tranctx.Chain{9}, Local: root.Append(tranctx.HandlerHop("stage", "miss"))}
		for i := 0; i < 8; i++ {
			pr.SetTxn(ctxA)
			pr.Compute(DefaultInterval)
			pr.SetTxn(ctxB)
			pr.Compute(DefaultInterval)
		}
		allocs = testing.AllocsPerRun(200, func() {
			pr.SetTxn(ctxA)
			pr.Compute(DefaultInterval)
			pr.SetTxn(ctxB)
			pr.Compute(DefaultInterval)
		})
	})
	if allocs != 0 {
		t.Errorf("SetTxn+Compute allocates %.2f allocs/op in steady state, want 0", allocs)
	}
}

// sink prevents the compiler from proving results unused.
var sink string

// BenchmarkTxnCtxtKey documents why Key is presentation-only: the
// rendered dictionary key costs string building the interned identity
// avoids.
func BenchmarkTxnCtxtKey(b *testing.B) {
	b.ReportAllocs()
	tb := tranctx.NewTable()
	tc := TxnCtxt{Prefix: tranctx.Chain{7, 9}, Local: tb.Root().Append(tranctx.HandlerHop("s", "h"))}
	for i := 0; i < b.N; i++ {
		sink = tc.Key()
	}
	if sink == "" {
		b.Fatal(fmt.Errorf("empty key"))
	}
}
