package profiler

import (
	"testing"

	"whodunit/internal/tranctx"
	"whodunit/internal/vclock"
)

// harness runs body inside a one-thread sim with a probe and returns the
// profiler afterwards.
func harness(t *testing.T, mode Mode, body func(pr *Probe)) *Profiler {
	t.Helper()
	s := vclock.New()
	cpu := s.NewCPU("cpu", 1)
	p := New("stage", mode)
	s.Go("worker", func(th *vclock.Thread) {
		body(p.NewProbe(th, cpu))
	})
	s.Run()
	s.Shutdown()
	return p
}

func TestSamplingCountsAreExact(t *testing.T) {
	p := harness(t, ModeSampling, func(pr *Probe) {
		defer pr.Exit(pr.Enter("main"))
		// 10 intervals of CPU => exactly 10 samples.
		pr.Compute(10 * DefaultInterval)
	})
	if p.TotalSamples() != 10 {
		t.Fatalf("samples = %d, want 10", p.TotalSamples())
	}
	tr := p.Trees()[0]
	if n := tr.Find("main"); n == nil || n.Self != 10 {
		t.Fatalf("main self = %v, want 10", n)
	}
}

func TestSamplingPhaseCarriesAcrossComputes(t *testing.T) {
	half := DefaultInterval / 2
	p := harness(t, ModeSampling, func(pr *Probe) {
		defer pr.Exit(pr.Enter("f"))
		for i := 0; i < 20; i++ {
			pr.Compute(half)
		}
	})
	want := int64(20*half) / int64(DefaultInterval) // exact phase accumulation
	if got := p.TotalSamples(); got != want {
		t.Fatalf("samples = %d, want %d (phase accumulation)", got, want)
	}
	if want < 9 {
		t.Fatalf("test misconfigured: want=%d", want)
	}
}

func TestModeOffTakesNoSamplesAndNoOverhead(t *testing.T) {
	p := harness(t, ModeOff, func(pr *Probe) {
		defer pr.Exit(pr.Enter("main"))
		pr.Compute(100 * DefaultInterval)
	})
	if p.TotalSamples() != 0 {
		t.Fatalf("off mode took %d samples", p.TotalSamples())
	}
	if _, _, _, ov := p.Stats(); ov != 0 {
		t.Fatalf("off mode charged overhead %v", ov)
	}
}

func TestSamplesLandOnCurrentStack(t *testing.T) {
	p := harness(t, ModeSampling, func(pr *Probe) {
		tok := pr.Enter("main")
		inner := pr.Enter("inner")
		pr.Compute(4 * DefaultInterval)
		pr.Exit(inner)
		pr.Compute(6 * DefaultInterval)
		pr.Exit(tok)
	})
	tr := p.Trees()[0]
	if n := tr.Find("main", "inner"); n.Self != 4 {
		t.Fatalf("inner self = %d, want 4", n.Self)
	}
	if n := tr.Find("main"); n.Self != 6 || n.Inclusive() != 10 {
		t.Fatalf("main self=%d incl=%d, want 6/10", n.Self, n.Inclusive())
	}
}

func TestWhodunitSeparatesContexts(t *testing.T) {
	p := harness(t, ModeWhodunit, func(pr *Probe) {
		defer pr.Exit(pr.Enter("serve"))
		ctxA := TxnCtxt{Local: pr.Profiler().Table.Root().Append(tranctx.HandlerHop("stage", "hit"))}
		ctxB := TxnCtxt{Local: pr.Profiler().Table.Root().Append(tranctx.HandlerHop("stage", "miss"))}
		pr.SetTxn(ctxA)
		pr.Compute(3 * DefaultInterval)
		pr.SetTxn(ctxB)
		pr.Compute(7 * DefaultInterval)
	})
	shares := p.Shares()
	if len(shares) != 2 {
		t.Fatalf("contexts = %d, want 2: %+v", len(shares), shares)
	}
	if shares[0].Samples != 7 || shares[1].Samples != 3 {
		t.Fatalf("shares = %+v, want 7 and 3", shares)
	}
	if shares[0].Label != "stage@miss" {
		t.Fatalf("top context = %q, want stage@miss", shares[0].Label)
	}
}

func TestSamplingModeIgnoresContexts(t *testing.T) {
	p := harness(t, ModeSampling, func(pr *Probe) {
		defer pr.Exit(pr.Enter("serve"))
		pr.SetTxn(TxnCtxt{Local: pr.Profiler().Table.Root().Append(tranctx.HandlerHop("stage", "x"))})
		pr.Compute(5 * DefaultInterval)
	})
	if len(p.Trees()) != 1 {
		t.Fatalf("csprof mode should keep one tree, got %d", len(p.Trees()))
	}
}

func TestInstrumentedCountsCallsAndCharges(t *testing.T) {
	p := harness(t, ModeInstrumented, func(pr *Probe) {
		for i := 0; i < 50; i++ {
			tok := pr.Enter("f")
			pr.Compute(DefaultInterval / 10)
			pr.Exit(tok)
		}
	})
	_, calls, _, ov := p.Stats()
	if calls != 50 {
		t.Fatalf("calls = %d, want 50", calls)
	}
	if ov < 50*DefaultOverhead.PerCall {
		t.Fatalf("overhead %v < 50 per-call charges", ov)
	}
	if p.Merged().Find("f").Calls != 50 {
		t.Fatal("call counts not in CCT")
	}
}

func TestOverheadOrdering(t *testing.T) {
	// For a call-dense workload, modelled overhead must rank
	// gprof >> csprof >= off, with whodunit only slightly above csprof —
	// the shape of Table 2.
	demand := func(mode Mode, switches bool) vclock.Duration {
		var total vclock.Duration
		s := vclock.New()
		cpu := s.NewCPU("cpu", 1)
		p := New("stage", mode)
		s.Go("w", func(th *vclock.Thread) {
			pr := p.NewProbe(th, cpu)
			root := p.Table.Root()
			for i := 0; i < 200; i++ {
				if switches {
					which := "a"
					if i%2 == 0 {
						which = "b"
					}
					pr.SetTxn(TxnCtxt{Local: root.Append(tranctx.HandlerHop("stage", which))})
				}
				tok := pr.Enter("handler")
				in := pr.Enter("work")
				// Call-dense inner work: 100 per-row calls per handler.
				pr.ComputeN(DefaultInterval/4, 100)
				pr.Exit(in)
				pr.Exit(tok)
			}
		})
		s.Run()
		s.Shutdown()
		total = cpu.Busy()
		return total
	}
	off := demand(ModeOff, false)
	cs := demand(ModeSampling, false)
	who := demand(ModeWhodunit, true)
	gp := demand(ModeInstrumented, false)
	if !(off < cs && cs <= who && who < gp) {
		t.Fatalf("overhead ordering wrong: off=%v csprof=%v whodunit=%v gprof=%v", off, cs, who, gp)
	}
	// gprof should cost several times the sampling overhead here.
	if (gp - off) < 3*(cs-off) {
		t.Fatalf("gprof overhead %v not >> csprof overhead %v", gp-off, cs-off)
	}
	// Whodunit's extra cost over csprof should be small relative to csprof's
	// own overhead (the paper reports +0.1% on top of csprof's <3%).
	if (who - cs) > (cs - off) {
		t.Fatalf("whodunit extra %v too large vs csprof %v", who-cs, cs-off)
	}
}

func TestCallCtxtIncludesStack(t *testing.T) {
	p := harness(t, ModeWhodunit, func(pr *Probe) {
		tok := pr.Enter("main")
		in := pr.Enter("rpc_call")
		tc := pr.CallCtxt()
		hops := tc.Local.Hops()
		if len(hops) != 1 || hops[0].Label != "main>rpc_call" {
			t.Errorf("call ctxt hops = %v", hops)
		}
		pr.Exit(in)
		pr.Exit(tok)
	})
	_ = p
}

func TestExitBadTokenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad exit token should panic")
		}
	}()
	p := New("s", ModeOff)
	s := vclock.New()
	cpu := s.NewCPU("c", 1)
	var pr *Probe
	s.Go("w", func(th *vclock.Thread) { pr = p.NewProbe(th, cpu) })
	s.Run()
	pr.Exit(5)
}

func TestSetTxnSameKeyIsFree(t *testing.T) {
	p := harness(t, ModeWhodunit, func(pr *Probe) {
		c := pr.Txn()
		for i := 0; i < 10; i++ {
			pr.SetTxn(c)
		}
		pr.Compute(DefaultInterval)
	})
	if _, _, sw, _ := p.Stats(); sw != 0 {
		t.Fatalf("redundant SetTxn counted %d switches", sw)
	}
}

func TestMergedCombinesContexts(t *testing.T) {
	p := harness(t, ModeWhodunit, func(pr *Probe) {
		defer pr.Exit(pr.Enter("f"))
		root := pr.Profiler().Table.Root()
		pr.SetTxn(TxnCtxt{Local: root.Append(tranctx.HandlerHop("s", "a"))})
		pr.Compute(2 * DefaultInterval)
		pr.SetTxn(TxnCtxt{Local: root.Append(tranctx.HandlerHop("s", "b"))})
		pr.Compute(3 * DefaultInterval)
	})
	m := p.Merged()
	if m.Total() != 5 || m.Find("f").Self != 5 {
		t.Fatalf("merged total = %d f=%v", m.Total(), m.Find("f"))
	}
}

func TestTxnCtxtKeyDistinguishesPrefix(t *testing.T) {
	tb := tranctx.NewTable()
	a := TxnCtxt{Local: tb.Root()}
	b := TxnCtxt{Prefix: tranctx.Chain{7}, Local: tb.Root()}
	if a.Key() == b.Key() {
		t.Fatal("prefix must affect the context key")
	}
	if b.Label() != "[00000007]" {
		t.Fatalf("label = %q", b.Label())
	}
}
