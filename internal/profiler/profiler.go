// Package profiler implements Whodunit's profiler core (§7.1): a
// statistical call-path profiler in the style of csprof that accumulates
// samples into Calling Context Trees, one CCT per transaction context,
// plus a gprof-style instrumented baseline used by the overhead
// comparison (Table 2).
//
// Profiling runs on virtual time: a probe charges CPU demand to a
// vclock.CPU and takes one profile sample per sampling interval of CPU
// actually consumed. Profiling overhead is itself modelled as extra CPU
// demand — per sample for the statistical modes, per procedure call for
// the instrumented mode — so enabling a profiler changes the simulated
// application's throughput exactly the way the paper measures.
package profiler

import (
	"fmt"
	"slices"
	"sort"

	"whodunit/internal/cct"
	"whodunit/internal/tranctx"
	"whodunit/internal/vclock"
)

// Mode selects the profiling strategy.
type Mode uint8

const (
	// ModeOff disables profiling; probes only charge application CPU.
	ModeOff Mode = iota
	// ModeSampling is the csprof baseline: statistical call-path samples
	// into one CCT, no transaction contexts.
	ModeSampling
	// ModeWhodunit is sampling plus transaction-context tracking: samples
	// land in the CCT of the current transaction context.
	ModeWhodunit
	// ModeInstrumented is the gprof baseline: per-call instrumentation
	// (with its proportional overhead) plus statistical samples, no
	// transaction contexts.
	ModeInstrumented
)

func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeSampling:
		return "csprof"
	case ModeWhodunit:
		return "whodunit"
	case ModeInstrumented:
		return "gprof"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Overhead models the profiler's own CPU costs (virtual time).
type Overhead struct {
	// PerSample is charged for every statistical sample taken (unwinding
	// the stack and bumping a CCT node — csprof-style).
	PerSample vclock.Duration
	// PerCall is charged on every procedure entry in ModeInstrumented
	// (gprof's inserted counting code).
	PerCall vclock.Duration
	// PerCtxtSwitch is charged in ModeWhodunit whenever the transaction
	// context changes (CCT dictionary lookup and switch, §7.1).
	PerCtxtSwitch vclock.Duration
}

// DefaultOverhead is calibrated so the relative overheads land where §9.1
// reports them: csprof < 3% (40us per 1.5ms sampling interval), Whodunit
// ≈ csprof + ~0.1% (2us per context switch), gprof ≈ 24% for call-dense
// workloads (1.2us of counting code per procedure call, with call counts
// supplied through ComputeN).
var DefaultOverhead = Overhead{
	PerSample:     40 * vclock.Microsecond,
	PerCall:       1200 * vclock.Nanosecond,
	PerCtxtSwitch: 2 * vclock.Microsecond,
}

// DefaultInterval is the sampling period: 666 samples per second of CPU
// consumed, gprof's default frequency on the paper's platform (§9.1).
const DefaultInterval = vclock.Second / 666

// TxnCtxt is a profiler-level transaction context: the synopsis chain
// received from upstream stages (opaque to this stage) plus the locally
// built context (call-path, handler and stage hops interned in this
// stage's table).
type TxnCtxt struct {
	Prefix tranctx.Chain
	Local  *tranctx.Ctxt
}

// Key returns the CCT dictionary key for the context. It is a rendered,
// serializable form used in stage dumps and stitching metadata; the
// profiler's own dictionary is keyed by the interned numeric identity
// (see ctxtID), so Key is only built at send points and presentation
// time, never per sample.
func (tc TxnCtxt) Key() string {
	if len(tc.Prefix) == 0 {
		return localKey(tc.Local)
	}
	return tc.Prefix.String() + "|" + localKey(tc.Local)
}

func localKey(c *tranctx.Ctxt) string {
	if c == nil {
		return "0"
	}
	return fmt.Sprintf("%d", c.Synopsis())
}

// localSynopsis is the numeric identity Key's local part renders: the nil
// context and the root context both map to synopsis 0.
func localSynopsis(c *tranctx.Ctxt) tranctx.Synopsis {
	if c == nil {
		return 0
	}
	return c.Synopsis()
}

// ctxtID is the interned numeric identity of a TxnCtxt: the local
// context's synopsis plus a hash of the prefix chain. Two contexts with
// equal ctxtID and equal prefix chains have equal Keys, so the CCT
// dictionary can be keyed by this comparable struct (with chain-equality
// confirmation against hash collisions) instead of a built string.
type ctxtID struct {
	chain uint64 // tranctx.Chain.Hash of Prefix
	local tranctx.Synopsis
}

func (tc TxnCtxt) id() ctxtID {
	return ctxtID{chain: tc.Prefix.Hash(), local: localSynopsis(tc.Local)}
}

// sameCtxt reports whether a and b name the same CCT dictionary entry
// (i.e. a.Key() == b.Key()) without building either key.
func sameCtxt(a, b TxnCtxt) bool {
	return localSynopsis(a.Local) == localSynopsis(b.Local) && a.Prefix.Equal(b.Prefix)
}

// Label renders the context for humans.
func (tc TxnCtxt) Label() string {
	switch {
	case len(tc.Prefix) == 0 && (tc.Local == nil || tc.Local.IsRoot()):
		return "(root)"
	case len(tc.Prefix) == 0:
		return tc.Local.String()
	case tc.Local == nil || tc.Local.IsRoot():
		return "[" + tc.Prefix.String() + "]"
	default:
		return "[" + tc.Prefix.String() + "] " + tc.Local.String()
	}
}

// Profiler is the per-stage profiler state: mode, sampling parameters and
// the CCT dictionary keyed by interned transaction-context identity
// (§7.1). All of the stage's trees share one frame table, so a probe's
// interned call stack is valid in whichever context tree a sample lands.
type Profiler struct {
	Stage    string
	Table    *tranctx.Table
	Mode     Mode
	Interval vclock.Duration
	Overhead Overhead

	frames       *cct.FrameTable
	slots        []treeSlot       // creation order, deterministic
	index        map[ctxtID][]int // ctxtID -> slot indexes (hash bucket)
	byLabel      map[string]int   // rendered label -> first slot index
	probes       []*Probe         // every probe issued; Retire invalidates their caches
	samples      int64
	calls        int64
	ctxtSwitches int64
	overheadAcc  vclock.Duration
}

// treeSlot is one CCT dictionary entry: the context and its tree.
type treeSlot struct {
	ctxt TxnCtxt
	tree *cct.Tree
}

// New returns a profiler for the named stage in the given mode with
// default interval and overhead model.
func New(stage string, mode Mode) *Profiler {
	return &Profiler{
		Stage:    stage,
		Table:    tranctx.NewTable(),
		Mode:     mode,
		Interval: DefaultInterval,
		Overhead: DefaultOverhead,
		frames:   cct.NewFrameTable(),
		index:    make(map[ctxtID][]int),
		byLabel:  make(map[string]int),
	}
}

// RootTxn returns the empty transaction context for this stage.
func (p *Profiler) RootTxn() TxnCtxt { return TxnCtxt{Local: p.Table.Root()} }

// Frames returns the stage-wide frame table shared by every tree.
func (p *Profiler) Frames() *cct.FrameTable { return p.frames }

// tree returns (creating if needed) the CCT for the given context. The
// lookup is a single map access on the interned numeric identity plus a
// chain-equality confirmation — no strings are built; the label and key
// strings exist only from creation (once per distinct context) onward.
func (p *Profiler) tree(tc TxnCtxt) *cct.Tree {
	id := tc.id()
	for _, i := range p.index[id] {
		if p.slots[i].ctxt.Prefix.Equal(tc.Prefix) {
			return p.slots[i].tree
		}
	}
	t := cct.NewShared(tc.Label(), p.frames)
	i := len(p.slots)
	p.slots = append(p.slots, treeSlot{ctxt: tc, tree: t})
	p.index[id] = append(p.index[id], i)
	if _, ok := p.byLabel[t.Label]; !ok {
		p.byLabel[t.Label] = i
	}
	return t
}

// TreeEntry pairs a CCT with the transaction context it is annotated
// with; used for post-mortem stitching (§7.1).
type TreeEntry struct {
	Key  string
	Ctxt TxnCtxt
	Tree *cct.Tree
}

// Entries returns every (context, CCT) pair in creation order. The
// serializable Key strings are rendered here, at presentation time.
func (p *Profiler) Entries() []TreeEntry {
	out := make([]TreeEntry, 0, len(p.slots))
	for _, s := range p.slots {
		out = append(out, TreeEntry{Key: s.ctxt.Key(), Ctxt: s.ctxt, Tree: s.tree})
	}
	return out
}

// Trees returns every CCT in creation order.
func (p *Profiler) Trees() []*cct.Tree {
	out := make([]*cct.Tree, 0, len(p.slots))
	for _, s := range p.slots {
		out = append(out, s.tree)
	}
	return out
}

// TreeByLabel finds a CCT by its rendered context label, or nil. Labels
// are indexed at tree creation, so this is a single map lookup; when two
// contexts render to the same label the earliest-created tree wins, as
// the previous linear scan did.
func (p *Profiler) TreeByLabel(label string) *cct.Tree {
	if i, ok := p.byLabel[label]; ok {
		return p.slots[i].tree
	}
	return nil
}

// TotalSamples reports all samples taken across every context.
func (p *Profiler) TotalSamples() int64 { return p.samples }

// Stats reports sample count, instrumented call count, context switches
// and the total modelled profiling overhead.
func (p *Profiler) Stats() (samples, calls, ctxtSwitches int64, overhead vclock.Duration) {
	return p.samples, p.calls, p.ctxtSwitches, p.overheadAcc
}

// Merged returns a single CCT merging every context (what a conventional
// profiler would report).
func (p *Profiler) Merged() *cct.Tree {
	m := cct.New("(all contexts)")
	for _, s := range p.slots {
		m.Merge(s.tree)
	}
	return m
}

// ContextShares returns each context label with its share of total
// samples, sorted by descending share then label. This is the "percentage
// in a triangle" data of Figures 8-10.
type ContextShare struct {
	Label   string
	Samples int64
	Share   float64 // fraction of all samples, 0..1
}

// Shares computes per-context sample shares.
func (p *Profiler) Shares() []ContextShare {
	out := make([]ContextShare, 0, len(p.slots))
	for _, s := range p.slots {
		t := s.tree
		sh := 0.0
		if p.samples > 0 {
			sh = float64(t.Total()) / float64(p.samples)
		}
		out = append(out, ContextShare{Label: t.Label, Samples: t.Total(), Share: sh})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Samples != out[j].Samples {
			return out[i].Samples > out[j].Samples
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// Snapshot is a read-only view of a profiler's accumulated state: the
// per-context CCT dictionary plus the sampling counters, detached from
// the live sampling path. Snapshots come from two constructors with
// different cost/safety trade-offs:
//
//   - Profiler.Retire transfers ownership of the active tree set in O(1)
//     (copy-on-retire): the snapshot's trees still share the profiler's
//     frame table, so they must be read from the goroutine driving the
//     simulation (scheduler callbacks, stop predicates, post-run code).
//     This is the window-retirement path of the continuous profiling
//     service.
//   - Profiler.Snapshot deep-copies every tree into a snapshot-private
//     frame table: the result shares nothing mutable with the live
//     profiler and can be read from any goroutine while the simulation
//     advances (the snapshot-while-running path behind live /report).
//
// A Snapshot mirrors the Profiler's presentation API (Entries, Trees,
// TreeByLabel, TotalSamples, Stats, Merged, Shares) so report builders
// accept either.
type Snapshot struct {
	Stage string
	Mode  Mode

	slots        []treeSlot
	byLabel      map[string]int
	samples      int64
	calls        int64
	ctxtSwitches int64
	overheadAcc  vclock.Duration
}

// Retire ends the current aggregation window: it returns a Snapshot
// owning every tree accumulated since the previous Retire (or the start
// of the run) and resets the profiler to an empty dictionary. The
// retirement itself is O(1) — the active tree set is swapped out, not
// copied. Counters (samples, calls, context switches, overhead) move to
// the snapshot and restart from zero; probes' sampling phases, call
// stacks and transaction contexts carry over, so the concatenation of
// retired windows is sample-for-sample the profile an unwindowed run
// would have taken.
//
// See Snapshot for the concurrency contract of the returned view.
func (p *Profiler) Retire() *Snapshot {
	s := &Snapshot{
		Stage:        p.Stage,
		Mode:         p.Mode,
		slots:        p.slots,
		byLabel:      p.byLabel,
		samples:      p.samples,
		calls:        p.calls,
		ctxtSwitches: p.ctxtSwitches,
		overheadAcc:  p.overheadAcc,
	}
	p.slots = nil
	p.index = make(map[ctxtID][]int)
	p.byLabel = make(map[string]int)
	p.samples, p.calls, p.ctxtSwitches, p.overheadAcc = 0, 0, 0, 0
	// Every probe's cached tree pointer now names a retired tree; the
	// next sample must re-resolve against the fresh dictionary.
	for _, pr := range p.probes {
		pr.cur = nil
	}
	return s
}

// Snapshot returns a detached deep copy of the profiler's current state:
// every tree is cloned into a snapshot-private frame table, so the result
// can be read from any goroutine while probes keep mutating the live
// profiler. The copy itself must be taken synchronously with the
// simulation (from the run goroutine, a scheduler callback, or a stop
// predicate); only the returned snapshot is free-threaded.
func (p *Profiler) Snapshot() *Snapshot {
	ft := cct.NewFrameTable()
	slots := make([]treeSlot, len(p.slots))
	for i, sl := range p.slots {
		slots[i] = treeSlot{ctxt: sl.ctxt, tree: sl.tree.CloneShared(ft)}
	}
	byLabel := make(map[string]int, len(p.byLabel))
	for k, v := range p.byLabel {
		byLabel[k] = v
	}
	return &Snapshot{
		Stage:        p.Stage,
		Mode:         p.Mode,
		slots:        slots,
		byLabel:      byLabel,
		samples:      p.samples,
		calls:        p.calls,
		ctxtSwitches: p.ctxtSwitches,
		overheadAcc:  p.overheadAcc,
	}
}

// Entries returns every (context, CCT) pair in creation order, rendering
// the serializable Key strings at call time.
func (s *Snapshot) Entries() []TreeEntry {
	out := make([]TreeEntry, 0, len(s.slots))
	for _, sl := range s.slots {
		out = append(out, TreeEntry{Key: sl.ctxt.Key(), Ctxt: sl.ctxt, Tree: sl.tree})
	}
	return out
}

// Trees returns every CCT in creation order.
func (s *Snapshot) Trees() []*cct.Tree {
	out := make([]*cct.Tree, 0, len(s.slots))
	for _, sl := range s.slots {
		out = append(out, sl.tree)
	}
	return out
}

// TreeByLabel finds a CCT by its rendered context label, or nil, with
// Profiler.TreeByLabel's first-created-wins semantics.
func (s *Snapshot) TreeByLabel(label string) *cct.Tree {
	if i, ok := s.byLabel[label]; ok {
		return s.slots[i].tree
	}
	return nil
}

// TotalSamples reports all samples in the snapshot.
func (s *Snapshot) TotalSamples() int64 { return s.samples }

// Stats reports the snapshot's sample count, instrumented call count,
// context switches and modelled profiling overhead.
func (s *Snapshot) Stats() (samples, calls, ctxtSwitches int64, overhead vclock.Duration) {
	return s.samples, s.calls, s.ctxtSwitches, s.overheadAcc
}

// Merged returns a single CCT merging every context. The merge matches
// frames by name into a fresh private tree, so it is safe under the same
// contract as the snapshot's other read paths.
func (s *Snapshot) Merged() *cct.Tree {
	m := cct.New("(all contexts)")
	for _, sl := range s.slots {
		m.Merge(sl.tree)
	}
	return m
}

// Shares computes per-context sample shares, sorted by descending share
// then label.
func (s *Snapshot) Shares() []ContextShare {
	out := make([]ContextShare, 0, len(s.slots))
	for _, sl := range s.slots {
		t := sl.tree
		sh := 0.0
		if s.samples > 0 {
			sh = float64(t.Total()) / float64(s.samples)
		}
		out = append(out, ContextShare{Label: t.Label, Samples: t.Total(), Share: sh})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Samples != out[j].Samples {
			return out[i].Samples > out[j].Samples
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// Probe is a per-thread instrumentation handle: it owns the thread's call
// stack, current transaction context and sampling phase. All application
// CPU consumption flows through Probe.Compute.
type Probe struct {
	prof *Profiler
	th   *vclock.Thread
	cpu  *vclock.CPU

	stack   []cct.FrameID // interned call stack, outermost first
	txn     TxnCtxt
	cur     *cct.Tree       // cached tree for the current context, nil = recompute
	phase   vclock.Duration // CPU consumed since the last sample boundary
	pending vclock.Duration // overhead to charge on the next Compute

	// CallCtxt cache: sends from an already-seen (context, call stack)
	// pair — the steady state of every server loop, even one that
	// round-robins across handler frames — reuse the interned extension
	// instead of re-joining the call path. Extend interns, so a cached
	// Ctxt is pointer-identical to what a recomputation would return.
	// Contexts outlive window retirement (the tranctx Table is
	// stage-lifetime), so the cache never needs invalidating.
	ccTab map[uint64][]ccEntry
}

// ccEntry is one memoized CallCtxt extension: base context + interned
// call stack -> extended context.
type ccEntry struct {
	base  *tranctx.Ctxt
	stack []cct.FrameID
	ext   *tranctx.Ctxt
}

// NewProbe creates a probe for thread th charging CPU demand to cpu. The
// probe starts with the root transaction context and an empty call stack.
func (p *Profiler) NewProbe(th *vclock.Thread, cpu *vclock.CPU) *Probe {
	pr := &Probe{prof: p, th: th, cpu: cpu, txn: p.RootTxn()}
	p.probes = append(p.probes, pr)
	return pr
}

// Thread returns the probed thread.
func (pr *Probe) Thread() *vclock.Thread { return pr.th }

// Profiler returns the owning profiler.
func (pr *Probe) Profiler() *Profiler { return pr.prof }

// Enter pushes fn onto the call stack and returns a token for Exit.
// Use as: defer pr.Exit(pr.Enter("func")). The frame name is interned in
// the stage-wide frame table; for frames already seen this is a single
// map lookup and an append into retained capacity.
func (pr *Probe) Enter(fn string) int {
	pr.stack = append(pr.stack, pr.prof.frames.ID(fn))
	if pr.prof.Mode == ModeInstrumented {
		pr.prof.calls++
		pr.tree().AddCallIDs(pr.stack)
		pr.pending += pr.prof.Overhead.PerCall
	}
	return len(pr.stack) - 1
}

// Exit pops the stack back to the depth returned by the matching Enter.
func (pr *Probe) Exit(token int) {
	if token < 0 || token > len(pr.stack) {
		panic(fmt.Sprintf("profiler: bad exit token %d (depth %d)", token, len(pr.stack)))
	}
	pr.stack = pr.stack[:token]
}

// Stack returns a copy of the current call stack (outermost first),
// resolving interned frame IDs back to names.
func (pr *Probe) Stack() []string {
	out := make([]string, len(pr.stack))
	for i, id := range pr.stack {
		out[i] = pr.prof.frames.Name(id)
	}
	return out
}

// Txn returns the probe's current transaction context.
func (pr *Probe) Txn() TxnCtxt { return pr.txn }

// SetTxn switches the probe to a different transaction context (e.g. after
// consuming a produced item, dispatching an event, or receiving a
// message). In Whodunit mode the switch costs PerCtxtSwitch of CPU,
// charged with the next Compute.
func (pr *Probe) SetTxn(tc TxnCtxt) {
	if tc.Local == nil {
		tc.Local = pr.prof.Table.Root()
	}
	if sameCtxt(tc, pr.txn) {
		return
	}
	pr.txn = tc
	if pr.prof.Mode == ModeWhodunit {
		pr.cur = nil // the cached tree belongs to the previous context
		pr.prof.ctxtSwitches++
		pr.pending += pr.prof.Overhead.PerCtxtSwitch
	}
}

// SetLocal replaces only the local part of the transaction context.
func (pr *Probe) SetLocal(c *tranctx.Ctxt) {
	pr.SetTxn(TxnCtxt{Prefix: pr.txn.Prefix, Local: c})
}

// CallCtxt returns the probe's transaction context extended with the
// current call path — the "transaction context at a send point" of §5.
func (pr *Probe) CallCtxt() TxnCtxt {
	local := pr.txn.Local
	if len(pr.stack) > 0 {
		h := uint64(local.Synopsis())
		for _, id := range pr.stack {
			h = (h ^ uint64(id)) * 1099511628211 // FNV-1a step
		}
		bucket := pr.ccTab[h]
		hit := false
		for i := range bucket {
			if bucket[i].base == local && slices.Equal(bucket[i].stack, pr.stack) {
				local = bucket[i].ext
				hit = true
				break
			}
		}
		if !hit {
			ext := local.Extend(tranctx.CallHop(pr.prof.Stage, pr.Stack()...))
			if pr.ccTab == nil {
				pr.ccTab = make(map[uint64][]ccEntry)
			}
			pr.ccTab[h] = append(bucket, ccEntry{base: local, stack: slices.Clone(pr.stack), ext: ext})
			local = ext
		}
	}
	return TxnCtxt{Prefix: pr.txn.Prefix, Local: local}
}

// tree returns the CCT samples should currently land in: the per-context
// tree in Whodunit mode, a single anonymous tree otherwise. The result is
// cached on the probe and invalidated only when SetTxn actually switches
// context, so the steady-state path is a nil check and a field read — no
// dictionary lookup per sample.
func (pr *Probe) tree() *cct.Tree {
	if pr.cur == nil {
		if pr.prof.Mode == ModeWhodunit {
			pr.cur = pr.prof.tree(pr.txn)
		} else {
			pr.cur = pr.prof.tree(TxnCtxt{Local: pr.prof.Table.Root()})
		}
	}
	return pr.cur
}

// ComputeN is Compute for work that internally executes `calls` procedure
// calls (e.g. a scan calling a per-row comparator): in instrumented
// (gprof) mode each call charges PerCall of counting overhead — this is
// why gprof's overhead is proportional to call counts (§9.1) — while the
// statistical modes are unaffected.
func (pr *Probe) ComputeN(d vclock.Duration, calls int) {
	if pr.prof.Mode == ModeInstrumented && calls > 0 {
		pr.prof.calls += int64(calls)
		pr.pending += vclock.Duration(calls) * pr.prof.Overhead.PerCall
	}
	pr.Compute(d)
}

// Compute charges d of application CPU demand (plus any pending profiling
// overhead) to the probe's CPU and takes the statistical samples that fall
// within it. The calling thread blocks until the CPU has served the
// demand.
func (pr *Probe) Compute(d vclock.Duration) {
	if total := pr.account(d); total > 0 {
		pr.th.Compute(pr.cpu, total)
	}
}

// ComputeStep is Compute for run-to-completion threads: the identical
// sampling and overhead accounting, with the CPU occupancy expressed as
// a coroutine step instead of a blocking call — k continues once the
// probe's CPU has served the demand.
func (pr *Probe) ComputeStep(c *vclock.Coro, d vclock.Duration, k vclock.Frame) vclock.Step {
	return c.Compute(pr.cpu, pr.account(d), k)
}

// account performs the non-blocking half of Compute: sample-taking by
// phase accumulation plus deferred-overhead settlement. It returns the
// total CPU demand to charge — the application's plus the profiler's
// own.
func (pr *Probe) account(d vclock.Duration) vclock.Duration {
	if d < 0 {
		d = 0
	}
	total := d
	if pr.prof.Mode != ModeOff {
		// Samples that fall in this computation, by phase accumulation.
		n := int64(0)
		if pr.prof.Interval > 0 {
			pr.phase += d
			n = int64(pr.phase / pr.prof.Interval)
			pr.phase %= pr.prof.Interval
		}
		if n > 0 {
			pr.prof.samples += n
			pr.tree().AddSamplesIDs(pr.stack, n)
			pr.pending += vclock.Duration(n) * pr.prof.Overhead.PerSample
		}
		total += pr.pending
		pr.prof.overheadAcc += pr.pending
		pr.pending = 0
	}
	return total
}
