package profiler

import (
	"fmt"
	"strings"
)

// ModeNames lists the accepted spellings of each Mode, in Mode order.
// These are the strings Mode.String produces and ParseMode accepts.
var ModeNames = []string{"off", "csprof", "whodunit", "gprof"}

// ParseMode parses a mode name ("off", "csprof", "whodunit", "gprof",
// case-insensitively; "sampling" and "instrumented" are accepted synonyms)
// into a Mode. Unknown names return an error listing the valid ones.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "off":
		return ModeOff, nil
	case "csprof", "sampling":
		return ModeSampling, nil
	case "whodunit":
		return ModeWhodunit, nil
	case "gprof", "instrumented":
		return ModeInstrumented, nil
	}
	return ModeOff, fmt.Errorf("profiler: unknown mode %q (want %s)", s, strings.Join(ModeNames, "|"))
}

// Set implements flag.Value, so a Mode can be bound directly to a
// command-line flag: mode := ModeWhodunit; flag.Var(&mode, "mode", ...).
func (m *Mode) Set(s string) error {
	v, err := ParseMode(s)
	if err != nil {
		return err
	}
	*m = v
	return nil
}

// MarshalText implements encoding.TextMarshaler; modes serialize as their
// canonical names in JSON reports.
func (m Mode) MarshalText() ([]byte, error) { return []byte(m.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (m *Mode) UnmarshalText(b []byte) error { return m.Set(string(b)) }
