package meshkv

import (
	"bytes"
	"testing"

	"whodunit"
	"whodunit/internal/trace"
)

func megaTestConfig(replicas int, sharded bool) MegaConfig {
	g := trace.CacheTrace()
	g.Events = 600
	g.Seed = 11
	cfg := DefaultMegaConfig(trace.Gen(g))
	cfg.Replicas = replicas
	cfg.Sharded = sharded
	return cfg
}

// TestMeshMegaSerialShardedIdentity: the replicated mesh produces
// bit-identical reports and counters on one time domain and on one
// domain per pod.
func TestMeshMegaSerialShardedIdentity(t *testing.T) {
	for _, replicas := range []int{1, 4} {
		serial := MegaRun(megaTestConfig(replicas, false))
		sharded := MegaRun(megaTestConfig(replicas, true))
		if serial.Completed == 0 || serial.Completed != serial.Injected {
			t.Fatalf("replicas=%d: completed %d of %d injected", replicas, serial.Completed, serial.Injected)
		}
		if serial.Completed != sharded.Completed || serial.Hits != sharded.Hits ||
			serial.Misses != sharded.Misses || serial.Gets != sharded.Gets ||
			serial.Sets != sharded.Sets || serial.Elapsed != sharded.Elapsed {
			t.Errorf("replicas=%d: counters differ:\nserial  %+v\nsharded %+v", replicas, serial, sharded)
		}
		for r := range serial.ReplicaLoad {
			if serial.ReplicaLoad[r] != sharded.ReplicaLoad[r] {
				t.Errorf("replicas=%d: ReplicaLoad[%d] %d vs %d",
					replicas, r, serial.ReplicaLoad[r], sharded.ReplicaLoad[r])
			}
		}
		var a, b bytes.Buffer
		if err := serial.Report.JSON(&a); err != nil {
			t.Fatal(err)
		}
		if err := sharded.Report.JSON(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("replicas=%d: report JSON differs between serial and sharded", replicas)
		}
		if d := whodunit.Diff(serial.Report, sharded.Report); !d.Empty() {
			t.Errorf("replicas=%d: diff not empty (max delta %d)", replicas, d.MaxDelta())
		}
	}
}
