// Package meshkv is the microservice-mesh app model: a modern
// frontend → rpc-proxy → sharded KV/cache → DB topology wired from the
// internal/mesh layer and driven by internal/trace request traces. It
// exercises flow propagation across far more hops than the 2007-era
// paper models — the deep variant stitches ≥6-hop transaction chains —
// and gives the bench suite a heavy-traffic workload with realistic
// Zipfian skew.
//
// Standard topology (Config.Deep false):
//
//	frontend → rpc-proxy(streaming) → kv-0..N (consistent-hash ring) → db
//
// Deep topology (Config.Deep true) interposes buffering proxy hops:
//
//	frontend → edge-proxy(full-buffering) → rpc-proxy(streaming)
//	         → cache-proxy(streaming+buffering) → kv-0..N
//	         → db-proxy(streaming) → db
//
// The kv tier is a write-through cache: a get probes the shard's cache
// and on a miss invokes the db ("fill") and installs the value; a set
// stores locally and writes through ("store"). Every request completes
// back at the frontend, whose OnComplete hook recycles the envelope —
// the steady-state request path allocates nothing.
package meshkv

import (
	"fmt"

	"whodunit"
	"whodunit/internal/mesh"
	"whodunit/internal/trace"
)

// Config parameterises a mesh-KV run.
type Config struct {
	Name  string // app name in the report
	Mode  whodunit.Mode
	Seed  uint64
	Cores int

	Shards int // kv/cache shards on the consistent-hash ring
	VNodes int // ring virtual nodes per shard
	Deep   bool

	FrontendWorkers int
	ProxyWorkers    int
	ShardWorkers    int
	DBWorkers       int

	// Trace drives Run; Serve ignores it and generates on the fly.
	Trace *trace.Trace
}

// DefaultConfig is the 4-shard scenario scale.
func DefaultConfig(tr *trace.Trace) Config {
	return Config{
		Name:            "meshkv",
		Mode:            whodunit.ModeWhodunit,
		Seed:            1,
		Cores:           4,
		Shards:          4,
		VNodes:          16,
		FrontendWorkers: 4,
		ProxyWorkers:    2,
		ShardWorkers:    2,
		DBWorkers:       2,
		Trace:           tr,
	}
}

// OpStats aggregates one op family's completions.
type OpStats struct {
	Count        int64
	TotalLatency whodunit.Duration
}

// MeanLatency is the mean injection-to-completion round trip.
func (o OpStats) MeanLatency() whodunit.Duration {
	if o.Count == 0 {
		return 0
	}
	return o.TotalLatency / whodunit.Duration(o.Count)
}

// Result is the outcome of a finite replay run.
type Result struct {
	Config    Config
	Report    *whodunit.Report
	Elapsed   whodunit.Duration
	Injected  int64
	Completed int64
	Hits      int64
	Misses    int64
	Gets      OpStats
	Sets      OpStats
	ShardLoad []int64 // requests served per kv shard
	ThroughputRPS float64
}

// HitRate is the cache hit fraction across all gets.
func (r *Result) HitRate() float64 {
	if r.Hits+r.Misses == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Hits+r.Misses)
}

// CPU cost model: hand-picked constants in the spirit of the paper
// models, byte costs rounded up per KB so all charges stay integral.
const (
	parseCost   = 180 * whodunit.Microsecond // frontend parse + route
	respondCost = 90 * whodunit.Microsecond  // frontend response serialization
	probeCost   = 110 * whodunit.Microsecond // shard index probe
	hitReadCost = 40 * whodunit.Microsecond  // cache read, plus per-KB
	installCost = 70 * whodunit.Microsecond  // fill install into the cache
	storeCost   = 120 * whodunit.Microsecond // cache store
	dbReadCost  = 1400 * whodunit.Microsecond
	dbWriteCost = 2100 * whodunit.Microsecond
	perKBCost   = 2 * whodunit.Microsecond
)

func kb(n int64) whodunit.Duration {
	if n <= 0 {
		return 0
	}
	return perKBCost * whodunit.Duration((n+1023)/1024)
}

// vsize is the canonical value size of a key that was never explicitly
// set — a pure function of the key, so fills are deterministic.
func vsize(key string) int64 {
	return 256 + int64(mesh.KeyHash(key)%3840)
}

// system is one wired mesh plus its counters.
type system struct {
	cfg    Config
	app    *whodunit.App
	topo   *mesh.Topology
	front  *mesh.Service
	shards []*mesh.Service

	injected  int64
	completed int64
	hits      int64
	misses    int64
	gets      OpStats
	sets      OpStats
	free      []*mesh.Request
}

// build wires the topology. The counters live on sys; the simulator
// runs one thread at a time, so shard handlers update them unlocked.
func build(cfg Config) *system {
	if cfg.Shards < 1 {
		panic(fmt.Sprintf("meshkv: Shards must be >= 1 (got %d)", cfg.Shards))
	}
	app := whodunit.NewApp(cfg.Name,
		whodunit.WithMode(cfg.Mode),
		whodunit.WithCores(cfg.Cores),
		whodunit.WithSeed(cfg.Seed))
	topo := mesh.New(app)
	sys := &system{cfg: cfg, app: app, topo: topo}

	db := topo.Service("db", cfg.DBWorkers, func(c *mesh.Call) {
		req := c.Req()
		switch req.Op {
		case "fill": // read the canonical value for a cache miss
			c.Compute(dbReadCost + kb(vsize(req.Key)))
			req.RespSize = vsize(req.Key)
		case "store": // write-through of a set
			c.Compute(dbWriteCost + kb(req.Size))
			req.RespSize = 64
		}
	})
	dbNext := db
	if cfg.Deep {
		dbNext = topo.Proxy("db-proxy", mesh.Streaming, cfg.ProxyWorkers, mesh.To(db))
	}

	sys.shards = make([]*mesh.Service, cfg.Shards)
	for i := range sys.shards {
		cache := map[string]int64{}
		sys.shards[i] = topo.Service(fmt.Sprintf("kv-%d", i), cfg.ShardWorkers, func(c *mesh.Call) {
			req := c.Req()
			pr := c.Probe()
			switch req.Op {
			case "get":
				c.Compute(probeCost)
				if sz, ok := cache[req.Key]; ok {
					sys.hits++
					func() {
						defer pr.Exit(pr.Enter("cache_hit"))
						c.Compute(hitReadCost + kb(sz))
					}()
					req.RespSize = sz
				} else {
					sys.misses++
					func() {
						defer pr.Exit(pr.Enter("cache_miss"))
						op, size := req.Op, req.Size
						req.Op, req.Size = "fill", 96
						c.Invoke(dbNext)
						req.Op, req.Size = op, size
						cache[req.Key] = req.RespSize
						c.Compute(installCost + kb(req.RespSize))
					}()
				}
			case "set":
				func() {
					defer pr.Exit(pr.Enter("cache_store"))
					c.Compute(storeCost + kb(req.Size))
				}()
				cache[req.Key] = req.Size
				op := req.Op
				req.Op = "store"
				c.Invoke(dbNext) // write-through
				req.Op = op
				req.RespSize = 64
			}
		})
	}

	ring := mesh.NewRing(cfg.VNodes, sys.shards...)
	var next *mesh.Service
	if cfg.Deep {
		cachep := topo.Proxy("cache-proxy", mesh.StreamingWithBuffering, cfg.ProxyWorkers, ring)
		rpc := topo.Proxy("rpc-proxy", mesh.Streaming, cfg.ProxyWorkers, mesh.To(cachep))
		next = topo.Proxy("edge-proxy", mesh.FullBuffering, cfg.ProxyWorkers, mesh.To(rpc))
	} else {
		next = topo.Proxy("rpc-proxy", mesh.Streaming, cfg.ProxyWorkers, ring)
	}

	sys.front = topo.Service("frontend", cfg.FrontendWorkers, func(c *mesh.Call) {
		req := c.Req()
		c.Compute(parseCost + kb(req.Size))
		c.Invoke(next)
		c.Compute(respondCost + kb(req.RespSize))
	})
	sys.front.OnComplete = sys.complete
	return sys
}

func (sys *system) complete(req *mesh.Request, now whodunit.Time) {
	sys.completed++
	st := &sys.gets
	if req.Op == "set" {
		st = &sys.sets
	}
	st.Count++
	st.TotalLatency += now.Sub(req.Start)
	sys.free = append(sys.free, req)
}

// inject turns a trace event into a mesh request, recycling completed
// envelopes (runs in scheduler context via trace.Replay/OpenLoop).
func (sys *system) inject(ev trace.Event) {
	var req *mesh.Request
	if n := len(sys.free); n > 0 {
		req = sys.free[n-1]
		sys.free = sys.free[:n-1]
	} else {
		req = &mesh.Request{}
	}
	req.Op, req.Key, req.Size, req.Stream = ev.Op, ev.Key, ev.Size, ev.Stream
	req.RespSize = 0
	sys.injected++
	sys.front.Inject(req)
}

// Run replays cfg.Trace through a fresh mesh until every event's
// request has completed and returns the result, report included.
func Run(cfg Config) *Result {
	sys := build(cfg)
	total := int64(len(cfg.Trace.Events))
	trace.Replay(sys.app, cfg.Trace, sys.inject)
	rep := sys.app.RunUntil(func() bool { return sys.completed >= total })
	return sys.finish(rep)
}

// Serve builds the open-loop serving variant: the same mesh, driven by
// an endless trace.OpenLoop arrival stream (cfg.Trace is ignored) —
// the app behind the serve-mesh serving scenario.
func Serve(cfg Config, gen trace.GenConfig) *whodunit.App {
	sys := build(cfg)
	trace.OpenLoop(sys.app, gen, sys.inject)
	return sys.app
}

func (sys *system) finish(rep *whodunit.Report) *Result {
	res := &Result{
		Config:    sys.cfg,
		Report:    rep,
		Elapsed:   rep.Elapsed,
		Injected:  sys.injected,
		Completed: sys.completed,
		Hits:      sys.hits,
		Misses:    sys.misses,
		Gets:      sys.gets,
		Sets:      sys.sets,
		ShardLoad: make([]int64, len(sys.shards)),
	}
	for i, sh := range sys.shards {
		res.ShardLoad[i] = sh.Handled()
	}
	if s := res.Elapsed.Seconds(); s > 0 {
		res.ThroughputRPS = float64(res.Completed) / s
	}
	return res
}
