package meshkv

import (
	"testing"

	"whodunit/internal/trace"
)

// BenchmarkMeshRequest measures the steady-state per-request cost of
// the full mesh pipeline — trace replay, ring routing, proxy hops,
// cache/DB tiers, and transaction propagation — amortised over a
// 2000-event replay. The envelope free-list should keep steady-state
// allocations near zero per request.
func BenchmarkMeshRequest(b *testing.B) {
	gcfg := trace.CacheTrace()
	gcfg.Events = 2000
	tr := trace.Gen(gcfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Run(DefaultConfig(tr))
		if res.Completed != int64(len(tr.Events)) {
			b.Fatalf("completed %d of %d", res.Completed, len(tr.Events))
		}
	}
	b.StopTimer()
	reqs := int64(b.N) * int64(len(tr.Events))
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(reqs), "ns/request")
}
