package meshkv

import (
	"bytes"
	"testing"

	"whodunit"
	"whodunit/internal/trace"
)

func smallTrace(t *testing.T) *trace.Trace {
	t.Helper()
	cfg := trace.CacheTrace()
	cfg.Events = 400
	return trace.Gen(cfg)
}

func TestRunCompletesEveryEvent(t *testing.T) {
	tr := smallTrace(t)
	res := Run(DefaultConfig(tr))
	if res.Completed != int64(len(tr.Events)) {
		t.Fatalf("completed %d of %d events", res.Completed, len(tr.Events))
	}
	if res.Injected != res.Completed {
		t.Fatalf("injected %d but completed %d", res.Injected, res.Completed)
	}
	if got, want := res.Gets.Count+res.Sets.Count, res.Completed; got != want {
		t.Fatalf("op stats count %d, completed %d", got, want)
	}
	// A Zipfian read-heavy trace must produce both hits and misses.
	if res.Hits == 0 || res.Misses == 0 {
		t.Fatalf("degenerate cache behavior: %d hits, %d misses", res.Hits, res.Misses)
	}
	if hr := res.HitRate(); hr < 0.2 || hr > 0.99 {
		t.Fatalf("hit rate %.2f outside plausible band", hr)
	}
	if res.ThroughputRPS <= 0 {
		t.Fatalf("throughput %f", res.ThroughputRPS)
	}
	// Every shard should have seen traffic, spread by the ring.
	var total int64
	for i, n := range res.ShardLoad {
		if n == 0 {
			t.Errorf("shard kv-%d served no requests", i)
		}
		total += n
	}
	if total < res.Completed {
		t.Fatalf("shards served %d requests for %d completions", total, res.Completed)
	}
	// Sets cost a synchronous write-through; they must be slower.
	if res.Sets.Count > 0 && res.Sets.MeanLatency() <= res.Gets.MeanLatency() {
		t.Errorf("set latency %v not above get latency %v", res.Sets.MeanLatency(), res.Gets.MeanLatency())
	}
}

func TestRunStages(t *testing.T) {
	tr := smallTrace(t)
	cfg := DefaultConfig(tr)
	res := Run(cfg)
	stages := map[string]bool{}
	for _, sr := range res.Report.Stages {
		stages[sr.Stage] = true
	}
	for _, want := range []string{"frontend", "rpc-proxy", "kv-0", "kv-1", "kv-2", "kv-3", "db"} {
		if !stages[want] {
			t.Errorf("stage %s missing from the report", want)
		}
	}
	if len(res.Report.Missing) != 0 {
		t.Errorf("report lists missing stages: %v", res.Report.Missing)
	}
}

// TestDeepTopologyStitchesLongChains pins the tentpole depth property:
// the deep topology's transaction graph contains request-edge paths of
// at least 6 hops (frontend → edge-proxy → rpc-proxy → cache-proxy →
// kv-i → db-proxy → db) with no severed edges.
func TestDeepTopologyStitchesLongChains(t *testing.T) {
	cfg := DefaultConfig(smallTrace(t))
	cfg.Deep = true
	res := Run(cfg)
	g := res.Report.Graph
	if g == nil {
		t.Fatal("no stitched graph")
	}
	if len(g.Missing) != 0 {
		t.Fatalf("deep mesh stitched with missing stages: %v", g.Missing)
	}
	for _, n := range g.Nodes {
		if n.Stage == "(missing)" {
			t.Fatal("severed edges in a complete deep mesh graph")
		}
	}
	// Longest request-edge path from any frontend node, by DFS over the
	// DAG of request edges.
	out := make(map[int][]int)
	for _, e := range g.Edges {
		if e.Kind == "request" {
			out[e.From] = append(out[e.From], e.To)
		}
	}
	memo := make(map[int]int)
	var depth func(n int) int
	depth = func(n int) int {
		if d, ok := memo[n]; ok {
			return d
		}
		memo[n] = 0 // cycle guard; request edges form a DAG in practice
		best := 0
		for _, m := range out[n] {
			if d := depth(m) + 1; d > best {
				best = d
			}
		}
		memo[n] = best
		return best
	}
	maxDepth := 0
	for i, n := range g.Nodes {
		if n.Stage == "frontend" {
			if d := depth(i); d > maxDepth {
				maxDepth = d
			}
		}
	}
	if maxDepth < 6 {
		t.Fatalf("deepest stitched request chain is %d hops, want >= 6", maxDepth)
	}
}

// TestRunBitReproducible: the full replay pipeline — generation,
// routing, caching, scheduling, stitching — renders bit-identically
// across two runs at the same seed.
func TestRunBitReproducible(t *testing.T) {
	render := func() ([]byte, []byte) {
		res := Run(DefaultConfig(smallTrace(t)))
		var txt, js bytes.Buffer
		res.Report.Text(&txt)
		if err := res.Report.JSON(&js); err != nil {
			t.Fatal(err)
		}
		return txt.Bytes(), js.Bytes()
	}
	txtA, jsA := render()
	txtB, jsB := render()
	if !bytes.Equal(txtA, txtB) {
		t.Error("text renders differ across identical runs")
	}
	if !bytes.Equal(jsA, jsB) {
		t.Error("JSON renders differ across identical runs")
	}
}

func TestServeRunsOpenLoop(t *testing.T) {
	cfg := DefaultConfig(nil)
	gen := trace.CacheTrace()
	app := Serve(cfg, gen)
	rep := app.RunFor(2 * whodunit.Second)
	if rep == nil {
		t.Fatal("no report")
	}
	found := false
	for _, sr := range rep.Stages {
		if sr.Stage == "frontend" && sr.Samples > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("open-loop serve charged no frontend CPU in 2s")
	}
}

func TestBuildPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Shards=0 did not panic")
		}
	}()
	cfg := DefaultConfig(nil)
	cfg.Shards = 0
	build(cfg)
}
