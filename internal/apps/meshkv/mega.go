package meshkv

import (
	"fmt"

	"whodunit"
	"whodunit/internal/mesh"
	"whodunit/internal/trace"
)

// MegaConfig parameterises the mega-scale mesh deployment: R
// self-contained replica pods — each a full frontend → rpc-proxy →
// kv ring → db pipeline with private per-stage CPUs — fed from a
// domain-0 trace replay that routes each request to a pod by key hash
// (so every key has a home pod and the caches stay pod-coherent). With
// Sharded, pod r lives on time domain r+1 and injection crosses a
// mesh.Ingress pipe of HopLatency (the epoch lookahead); without it the
// identical topology runs on one domain. The output is bit-identical
// either way.
type MegaConfig struct {
	Name string
	Mode whodunit.Mode
	Seed uint64

	Replicas int
	Sharded  bool

	ShardsPerReplica int // kv/cache shards on each pod's ring
	VNodes           int

	FrontendWorkers int // per pod
	ProxyWorkers    int // per pod
	ShardWorkers    int // per kv shard
	DBWorkers       int // per pod

	// HopLatency is the client -> pod network latency; it is also the
	// conservative lookahead, so the epoch width. 0 = 1ms.
	HopLatency whodunit.Duration

	Trace *trace.Trace
}

// DefaultMegaConfig is the scale baseline: four pods, two kv shards
// each, sharded.
func DefaultMegaConfig(tr *trace.Trace) MegaConfig {
	return MegaConfig{
		Name:             "meshkv-mega",
		Mode:             whodunit.ModeWhodunit,
		Seed:             1,
		Replicas:         4,
		Sharded:          true,
		ShardsPerReplica: 2,
		VNodes:           16,
		FrontendWorkers:  4,
		ProxyWorkers:     2,
		ShardWorkers:     2,
		DBWorkers:        2,
		HopLatency:       whodunit.Millisecond,
		Trace:            tr,
	}
}

// MegaResult is the outcome of a mega-scale replay, with the pod-local
// counters merged in replica order.
type MegaResult struct {
	Config        MegaConfig
	Report        *whodunit.Report
	Elapsed       whodunit.Duration
	Injected      int64
	Completed     int64
	Hits          int64
	Misses        int64
	Gets          OpStats
	Sets          OpStats
	ReplicaLoad   []int64 // requests completed per pod
	ThroughputRPS float64
}

// HitRate is the cache hit fraction across all gets.
func (r *MegaResult) HitRate() float64 {
	if r.Hits+r.Misses == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Hits+r.Misses)
}

// megaPod is one replica's counters. All of a pod's tiers run on the
// pod's time domain, so the counters are domain-private during the run.
type megaPod struct {
	completed int64
	hits      int64
	misses    int64
	gets      OpStats
	sets      OpStats
}

// MegaRun replays cfg.Trace through the replicated mesh and returns the
// merged result. The replay is finite and every worker parks once the
// last response drains, so the run terminates on its own.
func MegaRun(cfg MegaConfig) *MegaResult {
	if cfg.Replicas < 1 {
		panic(fmt.Sprintf("meshkv: Replicas must be >= 1 (got %d)", cfg.Replicas))
	}
	if cfg.ShardsPerReplica < 1 {
		panic(fmt.Sprintf("meshkv: ShardsPerReplica must be >= 1 (got %d)", cfg.ShardsPerReplica))
	}
	hop := cfg.HopLatency
	if hop == 0 {
		hop = whodunit.Millisecond
	}
	shards := 1
	if cfg.Sharded {
		shards = cfg.Replicas + 1
	}
	app := whodunit.NewApp(cfg.Name,
		whodunit.WithMode(cfg.Mode),
		whodunit.WithSeed(cfg.Seed),
		whodunit.WithShards(shards))
	topo := mesh.New(app)

	pods := make([]*megaPod, cfg.Replicas)
	ingress := make([]*mesh.Ingress, cfg.Replicas)
	for r := 0; r < cfg.Replicas; r++ {
		shard := r + 1
		pod := &megaPod{}
		pods[r] = pod
		place := []whodunit.StageOption{whodunit.StageShard(shard)}

		db := topo.Service(fmt.Sprintf("db-%d", r), cfg.DBWorkers, func(c *mesh.Call) {
			req := c.Req()
			switch req.Op {
			case "fill":
				c.Compute(dbReadCost + kb(vsize(req.Key)))
				req.RespSize = vsize(req.Key)
			case "store":
				c.Compute(dbWriteCost + kb(req.Size))
				req.RespSize = 64
			}
		}, append([]whodunit.StageOption{whodunit.StageCPU(2)}, place...)...)

		kvs := make([]*mesh.Service, cfg.ShardsPerReplica)
		for i := range kvs {
			cache := map[string]int64{}
			kvs[i] = topo.Service(fmt.Sprintf("kv-%d-%d", r, i), cfg.ShardWorkers, func(c *mesh.Call) {
				req := c.Req()
				pr := c.Probe()
				switch req.Op {
				case "get":
					c.Compute(probeCost)
					if sz, ok := cache[req.Key]; ok {
						pod.hits++
						func() {
							defer pr.Exit(pr.Enter("cache_hit"))
							c.Compute(hitReadCost + kb(sz))
						}()
						req.RespSize = sz
					} else {
						pod.misses++
						func() {
							defer pr.Exit(pr.Enter("cache_miss"))
							op, size := req.Op, req.Size
							req.Op, req.Size = "fill", 96
							c.Invoke(db)
							req.Op, req.Size = op, size
							cache[req.Key] = req.RespSize
							c.Compute(installCost + kb(req.RespSize))
						}()
					}
				case "set":
					func() {
						defer pr.Exit(pr.Enter("cache_store"))
						c.Compute(storeCost + kb(req.Size))
					}()
					cache[req.Key] = req.Size
					op := req.Op
					req.Op = "store"
					c.Invoke(db)
					req.Op = op
					req.RespSize = 64
				}
			}, append([]whodunit.StageOption{whodunit.StageCPU(1)}, place...)...)
		}

		ring := mesh.NewRing(cfg.VNodes, kvs...)
		rpc := topo.Proxy(fmt.Sprintf("rpc-proxy-%d", r), mesh.Streaming, cfg.ProxyWorkers,
			ring, append([]whodunit.StageOption{whodunit.StageCPU(1)}, place...)...)

		front := topo.Service(fmt.Sprintf("frontend-%d", r), cfg.FrontendWorkers, func(c *mesh.Call) {
			req := c.Req()
			c.Compute(parseCost + kb(req.Size))
			c.Invoke(rpc)
			c.Compute(respondCost + kb(req.RespSize))
		}, append([]whodunit.StageOption{whodunit.StageCPU(2)}, place...)...)
		front.OnComplete = func(req *mesh.Request, now whodunit.Time) {
			pod.completed++
			st := &pod.gets
			if req.Op == "set" {
				st = &pod.sets
			}
			st.Count++
			st.TotalLatency += now.Sub(req.Start)
		}
		ingress[r] = front.Ingress(hop)
	}

	// The load balancer: domain-0 replay routes each event to its key's
	// home pod over that pod's ingress pipe. Envelopes are allocated per
	// event — completion happens on the pod's domain, so recycling the
	// envelope back into the domain-0 injector would race.
	var injected int64
	trace.Replay(app, cfg.Trace, func(ev trace.Event) {
		req := &mesh.Request{Op: ev.Op, Key: ev.Key, Size: ev.Size, Stream: ev.Stream}
		injected++
		ingress[int(mesh.KeyHash(ev.Key)%uint64(cfg.Replicas))].Inject(req)
	})
	rep := app.Run()

	res := &MegaResult{
		Config:      cfg,
		Report:      rep,
		Elapsed:     rep.Elapsed,
		Injected:    injected,
		ReplicaLoad: make([]int64, cfg.Replicas),
	}
	for r, pod := range pods {
		res.ReplicaLoad[r] = pod.completed
		res.Completed += pod.completed
		res.Hits += pod.hits
		res.Misses += pod.misses
		res.Gets.Count += pod.gets.Count
		res.Gets.TotalLatency += pod.gets.TotalLatency
		res.Sets.Count += pod.sets.Count
		res.Sets.TotalLatency += pod.sets.TotalLatency
	}
	if s := res.Elapsed.Seconds(); s > 0 {
		res.ThroughputRPS = float64(res.Completed) / s
	}
	return res
}
