package apacheweb

import (
	"testing"

	"whodunit/internal/profiler"
	"whodunit/internal/workload"
)

func smallTrace() *workload.WebTrace {
	cfg := workload.DefaultWebConfig()
	cfg.NumConns = 150
	cfg.NumFiles = 200
	cfg.MinSize = 8 << 10 // keep sendfile hot enough to catch samples
	return workload.GenWeb(cfg)
}

func TestRunServesWholeTrace(t *testing.T) {
	tr := smallTrace()
	res := Run(DefaultConfig(tr))
	if res.Conns != int64(len(tr.Conns)) {
		t.Fatalf("served %d conns, want %d", res.Conns, len(tr.Conns))
	}
	if res.BytesSent != tr.TotalBytes {
		t.Fatalf("bytes = %d, want %d", res.BytesSent, tr.TotalBytes)
	}
	if res.ThroughputMbps <= 0 {
		t.Fatalf("throughput = %v", res.ThroughputMbps)
	}
}

func TestFlowDetectedListenerToWorkers(t *testing.T) {
	res := Run(DefaultConfig(smallTrace()))
	if len(res.Flows) == 0 {
		t.Fatal("no shared-memory flows detected")
	}
	producers := map[int]bool{}
	for _, f := range res.Flows {
		producers[f.Producer] = true
		if f.Lock != 1 {
			t.Fatalf("flow under unexpected lock: %v", f)
		}
	}
}

func TestWorkerSamplesAnnotatedWithListenerContext(t *testing.T) {
	// §8.1 / Figure 8: worker CPU (ap_process_connection, sendfile) must
	// be attributed to the transaction context established by the
	// listener's call path.
	res := Run(DefaultConfig(smallTrace()))
	var found bool
	for _, e := range res.Profiler.Entries() {
		if e.Ctxt.Local.IsRoot() {
			continue
		}
		if e.Tree.Find("worker_thread", "ap_process_connection") != nil &&
			e.Ctxt.Local.Last().Label == "listener_thread>apr_socket_accept" {
			found = true
			if e.Tree.Find("worker_thread", "ap_process_connection", "sendfile") == nil {
				t.Fatal("sendfile frame missing under worker context")
			}
		}
	}
	if !found {
		t.Fatalf("no worker tree annotated with listener context; trees: %v",
			len(res.Profiler.Entries()))
	}
}

func TestProcessConnectionDominatesProfile(t *testing.T) {
	// Figure 8's shape: serving (ap_process_connection+sendfile) is much
	// hotter than the accept path.
	res := Run(DefaultConfig(smallTrace()))
	m := res.Profiler.Merged()
	serve := m.Find("worker_thread", "ap_process_connection")
	accept := m.Find("listener_thread", "apr_socket_accept")
	if serve == nil {
		t.Fatal("no serve samples")
	}
	if accept != nil && accept.Inclusive() > serve.Inclusive() {
		t.Fatalf("accept %d >= serve %d; profile shape wrong",
			accept.Inclusive(), serve.Inclusive())
	}
}

func TestWhodunitOverheadSmall(t *testing.T) {
	// §9.2: Whodunit (emulated critical sections + sampling) costs only a
	// few percent of throughput versus unprofiled direct execution.
	tr := smallTrace()
	base := DefaultConfig(tr)
	base.Mode = profiler.ModeOff
	off := Run(base)

	who := DefaultConfig(tr)
	on := Run(who)

	if on.EmulationCycles == 0 {
		t.Fatal("whodunit mode did not emulate any critical section")
	}
	overhead := (off.ThroughputMbps - on.ThroughputMbps) / off.ThroughputMbps
	if overhead < 0 {
		t.Fatalf("profiled run faster than baseline: %v vs %v", on.ThroughputMbps, off.ThroughputMbps)
	}
	if overhead > 0.15 {
		t.Fatalf("whodunit overhead %.1f%% too large", 100*overhead)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := Run(DefaultConfig(smallTrace()))
	b := Run(DefaultConfig(smallTrace()))
	if a.Elapsed != b.Elapsed || a.BytesSent != b.BytesSent ||
		a.Profiler.TotalSamples() != b.Profiler.TotalSamples() {
		t.Fatalf("runs diverged: %+v vs %+v", a.Elapsed, b.Elapsed)
	}
}
