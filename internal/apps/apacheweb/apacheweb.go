// Package apacheweb models the Apache 2.x worker architecture of §8.1 and
// §9.2: a listener thread accepts connections and pushes them into a
// shared fd queue; a pool of worker threads pops connections and serves
// their requests.
//
// The fd queue's critical sections (ap_queue_push / ap_queue_pop, Figure
// 1) are not instrumented by hand: they *execute on the vm machine* under
// emulation, and the shmflow tracker detects the transaction flow from
// listener to worker automatically, propagating the listener's
// transaction context to the worker exactly as §3.5 prescribes. The
// emulation cycles are charged to the server CPU, which is where
// Whodunit's 2.3% Apache overhead (§9.2) comes from.
package apacheweb

import (
	"fmt"

	"whodunit/internal/profiler"
	"whodunit/internal/shmflow"
	"whodunit/internal/tranctx"
	"whodunit/internal/vclock"
	"whodunit/internal/vm"
	"whodunit/internal/workload"
)

// CyclesPerSecond converts vm cycles to virtual time (the paper's 2.4 GHz
// Xeon).
const CyclesPerSecond = 2_400_000_000

func cyclesToTime(c int64) vclock.Duration {
	return vclock.Duration(c * int64(vclock.Second) / CyclesPerSecond)
}

// Config parameterises a run.
type Config struct {
	Workers int
	Cores   int
	Mode    profiler.Mode
	Trace   *workload.WebTrace
	// ConnInterval is the inter-arrival gap between accepted connections
	// at the listener; 0 means back-to-back (peak load).
	ConnInterval vclock.Duration
	// ParseCost is the fixed CPU demand to parse one request; SendPerByte
	// the per-byte cost of ap_process_connection/sendfile.
	ParseCost   vclock.Duration
	SendPerByte vclock.Duration
}

// DefaultConfig serves trace at peak load with 8 workers on 2 cores.
func DefaultConfig(trace *workload.WebTrace) Config {
	return Config{
		Workers:     8,
		Cores:       2,
		Mode:        profiler.ModeWhodunit,
		Trace:       trace,
		ParseCost:   60 * vclock.Microsecond,
		SendPerByte: 12 * vclock.Nanosecond, // ~80 MB/s per core sendfile path
	}
}

// Result summarises a run.
type Result struct {
	Profiler        *profiler.Profiler
	Flows           []shmflow.FlowEvent
	Elapsed         vclock.Duration
	BytesSent       int64
	Requests        int64
	Conns           int64
	ThroughputMbps  float64
	EmulationCycles int64
}

// Run executes the trace against the modelled server and returns the
// transactional profile and throughput.
func Run(cfg Config) *Result {
	if cfg.Trace == nil {
		panic("apacheweb: nil trace")
	}
	s := vclock.New()
	cpu := s.NewCPU("apache-cpu", cfg.Cores)
	prof := profiler.New("apache", cfg.Mode)

	// The VM hosting the fd-queue critical sections.
	machine := vm.NewMachine()
	tracker := shmflow.NewTracker()
	if cfg.Mode == profiler.ModeWhodunit {
		machine.Mode = vm.ModeEmulateCS
		machine.Tracer = tracker
		tracker.OnNonFlow = func(lock int) { machine.SetNonFlow(lock) }
	}

	// Token plumbing: vm thread id -> context token; token -> TxnCtxt.
	vmCtxt := make(map[int]shmflow.Token)
	tokens := make(map[shmflow.Token]profiler.TxnCtxt)
	keys := make(map[string]shmflow.Token)
	nextTok := shmflow.Token(1)
	tokenFor := func(tc profiler.TxnCtxt) shmflow.Token {
		k := tc.Key()
		if tok, ok := keys[k]; ok {
			return tok
		}
		tok := nextTok
		nextTok++
		keys[k] = tok
		tokens[tok] = tc
		return tok
	}
	tracker.ThreadCtxt = func(tid int) shmflow.Token { return vmCtxt[tid] }

	// flowTo records, per pop execution, the context token the consumer
	// picked up, delivered to the worker after the VM run completes.
	var lastConsumed map[int]shmflow.Token
	tracker.OnFlow = func(ev shmflow.FlowEvent) {
		if lastConsumed != nil {
			lastConsumed[ev.Consumer] = ev.Token
		}
	}

	// runVM executes one program on the shared machine as the calling sim
	// thread and charges the cycles to the CPU through the probe.
	runVM := func(pr *profiler.Probe, prog *vm.Program, entry string, regs map[byte]int64) *vm.Thread {
		th, err := machine.Spawn(prog, entry)
		if err != nil {
			panic(err)
		}
		for r, v := range regs {
			th.Regs[r] = v
		}
		vmCtxt[th.ID] = tokenFor(pr.Txn())
		before := th.Cycles
		if err := machine.Run(100000); err != nil {
			panic(fmt.Sprintf("apacheweb: vm: %v", err))
		}
		pr.Compute(cyclesToTime(th.Cycles - before))
		machine.Reap()
		delete(vmCtxt, th.ID)
		return th
	}

	res := &Result{Profiler: prof}
	workQ := s.NewQueue("fdqueue-sem")
	done := 0
	total := len(cfg.Trace.Conns)

	// Listener thread: accept, push into the VM fd queue, signal workers.
	s.Go("listener", func(th *vclock.Thread) {
		pr := prof.NewProbe(th, cpu)
		th.Data = pr
		root := prof.Table.Root()
		for _, conn := range cfg.Trace.Conns {
			func() {
				defer pr.Exit(pr.Enter("listener_thread"))
				// Each accepted connection is a fresh transaction whose
				// context is the listener's call path at the push point.
				pr.SetTxn(profiler.TxnCtxt{Local: root.Extend(
					tranctx.CallHop("apache", "listener_thread", "apr_socket_accept"))})
				func() {
					defer pr.Exit(pr.Enter("apr_socket_accept"))
					pr.Compute(30 * vclock.Microsecond)
				}()
				func() {
					defer pr.Exit(pr.Enter("ap_queue_push"))
					t := runVM(pr, shmflow.ApachePush, "push", map[byte]int64{
						1: shmflow.QueueBase, 4: int64(conn.ID), 5: int64(conn.ID) + 1_000_000,
					})
					res.EmulationCycles += t.Cycles
				}()
				workQ.Put(conn.ID)
			}()
			if cfg.ConnInterval > 0 {
				th.Sleep(cfg.ConnInterval)
			}
		}
	})

	// Worker threads: pop from the VM fd queue, serve the connection.
	for w := 0; w < cfg.Workers; w++ {
		w := w
		s.Go(fmt.Sprintf("worker-%d", w), func(th *vclock.Thread) {
			pr := prof.NewProbe(th, cpu)
			th.Data = pr
			scratch := int64(0x8000 + w*0x40)
			for {
				th.Get(workQ) // semaphore: an fd is available
				var connID int64
				func() {
					defer pr.Exit(pr.Enter("worker_thread"))
					var consumedTok shmflow.Token
					func() {
						defer pr.Exit(pr.Enter("ap_queue_pop"))
						lastConsumed = map[int]shmflow.Token{}
						t := runVM(pr, shmflow.ApachePop, "pop", map[byte]int64{
							1: shmflow.QueueBase, 9: scratch,
						})
						res.EmulationCycles += t.Cycles
						connID = t.Regs[4]
						for _, tok := range lastConsumed {
							consumedTok = tok
						}
						lastConsumed = nil
					}()
					// §3.5: the consumer adopts the producer's context.
					if consumedTok != 0 {
						if tc, ok := tokens[consumedTok]; ok {
							pr.SetTxn(tc)
						}
					}
					conn := cfg.Trace.Conns[connID]
					func() {
						defer pr.Exit(pr.Enter("ap_process_connection"))
						for _, req := range conn.Reqs {
							pr.Compute(cfg.ParseCost)
							func() {
								defer pr.Exit(pr.Enter("sendfile"))
								pr.Compute(vclock.Duration(req.Size) * cfg.SendPerByte)
							}()
							res.BytesSent += req.Size
							res.Requests++
						}
					}()
					res.Conns++
					done++
				}()
			}
		})
	}

	s.RunUntil(func() bool { return done >= total })
	res.Elapsed = s.Now().Sub(0)
	s.Shutdown()

	res.Flows = tracker.Flows()
	if res.Elapsed > 0 {
		res.ThroughputMbps = float64(res.BytesSent) * 8 / 1e6 / res.Elapsed.Seconds()
	}
	return res
}
