// Package apacheweb models the Apache 2.x worker architecture of §8.1 and
// §9.2: a listener thread accepts connections and pushes them into a
// shared fd queue; a pool of worker threads pops connections and serves
// their requests.
//
// The model is an App/Stage composition: the fd queue is App.NewQueue —
// Figure 1's ap_queue_push / ap_queue_pop as a library type — so its
// critical sections *execute on the emulated machine* and the shmflow
// tracker propagates the listener's transaction context to the worker
// automatically, exactly as §3.5 prescribes, with no plumbing in this
// package at all. The emulation cycles are charged to the server CPU,
// which is where Whodunit's 2.3% Apache overhead (§9.2) comes from.
package apacheweb

import (
	"fmt"

	"whodunit"
	"whodunit/internal/workload"
)

// CyclesPerSecond converts vm cycles to virtual time (the paper's 2.4 GHz
// Xeon).
const CyclesPerSecond = whodunit.DefaultCyclesPerSecond

// Config parameterises a run.
type Config struct {
	Workers int
	Cores   int
	Mode    whodunit.Mode
	Trace   *workload.WebTrace
	// ConnInterval is the inter-arrival gap between accepted connections
	// at the listener; 0 means back-to-back (peak load).
	ConnInterval whodunit.Duration
	// ParseCost is the fixed CPU demand to parse one request; SendPerByte
	// the per-byte cost of ap_process_connection/sendfile.
	ParseCost   whodunit.Duration
	SendPerByte whodunit.Duration
}

// DefaultConfig serves trace at peak load with 8 workers on 2 cores.
func DefaultConfig(trace *workload.WebTrace) Config {
	return Config{
		Workers:     8,
		Cores:       2,
		Mode:        whodunit.ModeWhodunit,
		Trace:       trace,
		ParseCost:   60 * whodunit.Microsecond,
		SendPerByte: 12 * whodunit.Nanosecond, // ~80 MB/s per core sendfile path
	}
}

// Result summarises a run.
type Result struct {
	Report          *whodunit.Report
	Profiler        *whodunit.Profiler
	Flows           []whodunit.FlowEvent
	Elapsed         whodunit.Duration
	BytesSent       int64
	Requests        int64
	Conns           int64
	ThroughputMbps  float64
	EmulationCycles int64
}

// Run executes the trace against the modelled server and returns the
// transactional profile and throughput.
func Run(cfg Config) *Result {
	if cfg.Trace == nil {
		panic("apacheweb: nil trace")
	}
	app := whodunit.NewApp("apache",
		whodunit.WithMode(cfg.Mode),
		whodunit.WithCores(cfg.Cores),
		whodunit.WithFlowDetection())
	st := app.Stage("apache")
	fdq := app.NewQueue("fdqueue-sem")

	res := &Result{Profiler: st.Profiler()}
	done := 0
	total := len(cfg.Trace.Conns)

	// Listener thread: accept, push into the shared-memory fd queue. The
	// push critical section runs on the emulated machine under the fresh
	// transaction context established at the accept point.
	st.Go("listener", func(th *whodunit.Thread, pr *whodunit.Probe) {
		for _, conn := range cfg.Trace.Conns {
			func() {
				defer pr.Exit(pr.Enter("listener_thread"))
				// Each accepted connection is a fresh transaction whose
				// context is the listener's call path at the push point.
				st.BeginTxn(pr, "listener_thread", "apr_socket_accept")
				func() {
					defer pr.Exit(pr.Enter("apr_socket_accept"))
					pr.Compute(30 * whodunit.Microsecond)
				}()
				fdq.Push(pr, conn)
			}()
			if cfg.ConnInterval > 0 {
				th.Sleep(cfg.ConnInterval)
			}
		}
	})

	// Worker threads: pop from the fd queue — the §3.5 flow detection
	// hands each worker the listener's transaction context — and serve
	// the connection.
	for w := 0; w < cfg.Workers; w++ {
		st.Go(fmt.Sprintf("worker-%d", w), func(th *whodunit.Thread, pr *whodunit.Probe) {
			for {
				func() {
					defer pr.Exit(pr.Enter("worker_thread"))
					conn := fdq.Pop(pr).(workload.Connection)
					func() {
						defer pr.Exit(pr.Enter("ap_process_connection"))
						for _, req := range conn.Reqs {
							pr.Compute(cfg.ParseCost)
							func() {
								defer pr.Exit(pr.Enter("sendfile"))
								pr.Compute(whodunit.Duration(req.Size) * cfg.SendPerByte)
							}()
							res.BytesSent += req.Size
							res.Requests++
						}
					}()
					res.Conns++
					done++
				}()
			}
		})
	}

	rep := app.RunUntil(func() bool { return done >= total })
	res.Report = rep
	res.Elapsed = rep.Elapsed
	res.Flows = rep.Flows
	res.EmulationCycles = app.Machine().TotalCycles
	if res.Elapsed > 0 {
		res.ThroughputMbps = float64(res.BytesSent) * 8 / 1e6 / res.Elapsed.Seconds()
	}
	return res
}
