package tpcw

import (
	"testing"

	"whodunit/internal/minidb"
	"whodunit/internal/profiler"
	"whodunit/internal/vclock"
	"whodunit/internal/workload"
)

func shortConfig(clients int) Config {
	cfg := DefaultConfig(clients)
	cfg.Duration = 2 * vclock.Minute
	return cfg
}

func TestCompletesInteractions(t *testing.T) {
	res := Run(shortConfig(40))
	if res.Completed == 0 {
		t.Fatal("no interactions completed")
	}
	if res.ThroughputPerMin <= 0 {
		t.Fatal("no throughput")
	}
	// Mix sanity: Home should be the most frequent interaction.
	if res.PerType[workload.Home].Count < res.PerType[workload.AdminConfirm].Count {
		t.Fatal("mix weights not respected")
	}
}

func TestDBShareShape(t *testing.T) {
	// Table 1's headline: BestSellers and SearchResult together dominate
	// MySQL CPU; everything else is small.
	res := Run(shortConfig(60))
	bs, sr := res.DBShare[workload.BestSellers], res.DBShare[workload.SearchResult]
	if bs+sr < 0.6 {
		t.Fatalf("BestSellers+SearchResult share = %.2f+%.2f, want > 0.6 (shares: %v)",
			bs, sr, res.DBShare)
	}
	if bs < sr/2 || sr < bs/4 {
		t.Fatalf("BestSellers %.2f vs SearchResult %.2f out of shape", bs, sr)
	}
	for _, small := range []string{workload.Home, workload.ProductDetail, workload.SearchRequest} {
		if res.DBShare[small] > 0.1 {
			t.Fatalf("%s share %.2f unexpectedly large", small, res.DBShare[small])
		}
	}
}

func TestAdminConfirmCrosstalkHighestOnMyISAM(t *testing.T) {
	res := Run(shortConfig(60))
	admin := res.MeanCrosstalk[workload.AdminConfirm]
	if admin == 0 {
		t.Skip("no AdminConfirm instances in this short run")
	}
	for name, d := range res.MeanCrosstalk {
		if name == workload.AdminConfirm {
			continue
		}
		if d > admin {
			t.Fatalf("%s crosstalk %v exceeds AdminConfirm's %v", name, d, admin)
		}
	}
}

func TestInnoDBReducesAdminConfirmCrosstalk(t *testing.T) {
	my := shortConfig(60)
	inno := shortConfig(60)
	inno.ItemEngine = minidb.EngineInnoDB
	a, b := Run(my), Run(inno)
	aw, _ := a.Crosstalk.WaitTotal(workload.AdminConfirm)
	bw, _ := b.Crosstalk.WaitTotal(workload.AdminConfirm)
	if a.PerType[workload.AdminConfirm].Count == 0 || b.PerType[workload.AdminConfirm].Count == 0 {
		t.Skip("no AdminConfirm instances")
	}
	if bw >= aw {
		t.Fatalf("InnoDB crosstalk %v not below MyISAM %v", bw, aw)
	}
}

func TestCachingImprovesThroughputUnderLoad(t *testing.T) {
	// Below ~200 clients the offered load, not the database, caps
	// throughput (Figure 12's curves only diverge past the no-caching
	// saturation point), so compare well beyond it.
	base := shortConfig(300)
	cached := shortConfig(300)
	cached.ServletCaching = true
	a, b := Run(base), Run(cached)
	if b.ThroughputPerMin < a.ThroughputPerMin*1.3 {
		t.Fatalf("caching throughput %.0f/min not >> baseline %.0f/min",
			b.ThroughputPerMin, a.ThroughputPerMin)
	}
	// Caching also slashes BestSellers response time.
	if b.PerType[workload.BestSellers].Mean() >= a.PerType[workload.BestSellers].Mean() {
		t.Fatalf("cached BestSellers response %v not below %v",
			b.PerType[workload.BestSellers].Mean(), a.PerType[workload.BestSellers].Mean())
	}
}

func TestContextBytesTiny(t *testing.T) {
	// §9.1: ~1% communication overhead from synopses.
	res := Run(shortConfig(40))
	ratio := float64(res.CtxtBytes) / float64(res.AppBytes)
	if ratio <= 0 || ratio > 0.05 {
		t.Fatalf("ctxt/app bytes = %.4f, want small positive", ratio)
	}
}

func TestWhodunitOverheadUnderThreePercent(t *testing.T) {
	// Table 2: Whodunit's throughput cost at identical load is small.
	off := shortConfig(60)
	off.Mode = profiler.ModeOff
	who := shortConfig(60)
	a, b := Run(off), Run(who)
	drop := (a.ThroughputPerMin - b.ThroughputPerMin) / a.ThroughputPerMin
	if drop > 0.06 {
		t.Fatalf("whodunit overhead %.1f%% too high (off=%.0f who=%.0f)",
			drop*100, a.ThroughputPerMin, b.ThroughputPerMin)
	}
}

func TestGprofCostlierThanWhodunit(t *testing.T) {
	gp := shortConfig(150)
	gp.Mode = profiler.ModeInstrumented
	who := shortConfig(150)
	a, b := Run(gp), Run(who)
	if a.ThroughputPerMin >= b.ThroughputPerMin {
		t.Fatalf("gprof throughput %.0f not below whodunit %.0f",
			a.ThroughputPerMin, b.ThroughputPerMin)
	}
}

func TestDeterministic(t *testing.T) {
	a, b := Run(shortConfig(30)), Run(shortConfig(30))
	if a.Completed != b.Completed || a.MySQLProf.TotalSamples() != b.MySQLProf.TotalSamples() {
		t.Fatalf("runs diverged: %d vs %d", a.Completed, b.Completed)
	}
}
