package tpcw

import (
	"bytes"
	"testing"

	"whodunit"
)

func megaTestConfig(clients, replicas int, sharded bool) MegaConfig {
	cfg := DefaultMegaConfig(clients)
	cfg.Replicas = replicas
	cfg.Sharded = sharded
	cfg.Duration = 4 * whodunit.Second
	cfg.ThinkMean = 250 * whodunit.Millisecond
	cfg.TomcatWorkers = 4
	cfg.SquidWorkers = 2
	cfg.DBWorkers = 3
	return cfg
}

// TestMegaSerialShardedIdentity pins the acceptance invariant on the
// real app model: the replicated TPC-W deployment produces bit-identical
// reports and client metrics whether it runs on one time domain or on
// one domain per pod.
func TestMegaSerialShardedIdentity(t *testing.T) {
	for _, replicas := range []int{1, 3} {
		serial := MegaRun(megaTestConfig(24, replicas, false))
		sharded := MegaRun(megaTestConfig(24, replicas, true))
		if serial.Completed == 0 {
			t.Fatalf("replicas=%d: no completed interactions", replicas)
		}
		if serial.Completed != sharded.Completed {
			t.Errorf("replicas=%d: Completed %d vs %d", replicas, serial.Completed, sharded.Completed)
		}
		if serial.Elapsed != sharded.Elapsed {
			t.Errorf("replicas=%d: Elapsed %v vs %v", replicas, serial.Elapsed, sharded.Elapsed)
		}
		for name, st := range serial.PerType {
			o := sharded.PerType[name]
			if st.Count != o.Count || st.TotalResp != o.TotalResp {
				t.Errorf("replicas=%d: PerType[%s] %+v vs %+v", replicas, name, st, o)
			}
		}
		if d := whodunit.Diff(serial.Report, sharded.Report); !d.Empty() {
			t.Errorf("replicas=%d: report diff not empty (max delta %d)", replicas, d.MaxDelta())
		}
		var a, b bytes.Buffer
		if err := serial.Report.JSON(&a); err != nil {
			t.Fatal(err)
		}
		if err := sharded.Report.JSON(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("replicas=%d: report JSON differs between serial and sharded", replicas)
		}
	}
}
