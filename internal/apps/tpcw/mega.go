package tpcw

import (
	"fmt"

	"whodunit"
	"whodunit/internal/minidb"
	"whodunit/internal/vclock"
	"whodunit/internal/workload"
)

// MegaConfig parameterises the mega-scale TPC-W deployment: R replicated
// web pods (a Squid front and a Tomcat servlet container each, with their
// own share of the clients) load-balanced round-robin, all backed by one
// shared MySQL. With Sharded the pods live on their own time domains —
// replica r on shard r+1, the database on shard 0 — and the run
// parallelises across GOMAXPROCS workers; without it the identical
// topology runs on a single domain. Either way the output is
// bit-identical: the tiers exchange requests over App.Pipe links whose
// latency (HopLatency) is the epoch lookahead, so the merge order is a
// function of the program, not the layout.
type MegaConfig struct {
	Clients  int // total, partitioned round-robin across replicas
	Replicas int
	Sharded  bool

	Duration       whodunit.Duration
	Mode           whodunit.Mode
	ItemEngine     minidb.Engine
	ServletCaching bool // per-pod result caches (clause 6.3.3.1)
	Seed           uint64

	TomcatWorkers int // per replica
	SquidWorkers  int // per replica
	DBWorkers     int
	ThinkMean     whodunit.Duration // 0 = TPC-W default (7s)
	// HopLatency is the app-server <-> database network latency; it is
	// also the conservative lookahead, so the epoch width. 0 = 1ms.
	HopLatency whodunit.Duration
	// Mix selects the interaction mix; nil means workload.BrowsingMix.
	Mix map[string]float64
}

// DefaultMegaConfig is the scale baseline: three pods, browsing mix,
// MyISAM item table, sharded.
func DefaultMegaConfig(clients int) MegaConfig {
	return MegaConfig{
		Clients:       clients,
		Replicas:      3,
		Sharded:       true,
		Duration:      3 * whodunit.Minute,
		Mode:          whodunit.ModeWhodunit,
		ItemEngine:    minidb.EngineMyISAM,
		Seed:          1,
		TomcatWorkers: 12,
		SquidWorkers:  4,
		DBWorkers:     6,
		HopLatency:    whodunit.Millisecond,
	}
}

// MegaResult carries the scale experiment's metrics: the unified report
// plus client-side counts merged across pods in replica order.
type MegaResult struct {
	Config           MegaConfig
	Report           *whodunit.Report
	Elapsed          whodunit.Duration
	Completed        int64
	PerType          map[string]*TypeStats
	ThroughputPerMin float64
}

// megaRequest is the envelope for the replicated deployment: one per
// client, reused around the whole round trip exactly like request, plus
// a reply pipe for the database leg — the issuing Tomcat worker's reply
// queue lives on the pod's domain, so MySQL answers over a cross-domain
// link rather than a direct Put.
type megaRequest struct {
	msg     whodunit.Msg
	web     webReq
	q       dbQuery
	replyQ  *whodunit.Queue // same-domain reply hop (squid->client, tomcat->squid)
	dbReply *whodunit.Pipe  // mysql -> issuing tomcat worker
}

// podStats is one replica's client-side accounting. Each pod's clients
// run on that pod's time domain, so giving every pod its own struct
// keeps the hot-path counters domain-private; the pods are merged in
// replica order after the run.
type podStats struct {
	completed int64
	perType   map[string]*TypeStats
}

// MegaRun executes the replicated deployment and collects the results.
func MegaRun(cfg MegaConfig) *MegaResult {
	if cfg.Clients <= 0 {
		panic("tpcw: need at least one client")
	}
	if cfg.Replicas <= 0 {
		panic("tpcw: need at least one replica")
	}
	think := cfg.ThinkMean
	if think == 0 {
		think = 7 * whodunit.Second
	}
	hop := cfg.HopLatency
	if hop == 0 {
		hop = whodunit.Millisecond
	}
	mixWeights := cfg.Mix
	if mixWeights == nil {
		mixWeights = workload.BrowsingMix
	}

	shards := 1
	if cfg.Sharded {
		shards = cfg.Replicas + 1
	}
	app := whodunit.NewApp("tpcw-mega",
		whodunit.WithMode(cfg.Mode),
		whodunit.WithShards(shards))
	s := app.Sim()

	// Shared database tier on shard 0.
	mysqlSt := app.Stage("mysql", whodunit.StageCPU(1))
	mysqlQ := app.NewQueueOn(0, "mysql-in")
	mysqlEP := mysqlSt.Endpoint()
	db := minidb.New(s, "mysql", mysqlSt.CPU())
	item, orderLine, customer, orders, author := loadTables(db, cfg.ItemEngine, cfg.Seed)

	for w := 0; w < cfg.DBWorkers; w++ {
		mysqlSt.Go(fmt.Sprintf("mysqld-%d", w), func(th *whodunit.Thread, pr *whodunit.Probe) {
			for {
				req := mysqlQ.Get(th).(*megaRequest)
				mysqlEP.Recv(pr, req.msg)
				q := req.q
				func() {
					defer pr.Exit(pr.Enter("dispatch_query"))
					execQuery(db, pr, q, item, orderLine, customer, orders, author)
				}()
				req.msg = mysqlEP.Send(pr, nil)
				req.dbReply.Send(req)
			}
		})
	}

	servletFrame := make(map[string]string, len(workload.Interactions))
	for _, name := range workload.Interactions {
		servletFrame[name] = "servlet_" + name
	}

	end := whodunit.Time(cfg.Duration)
	pods := make([]*podStats, cfg.Replicas)

	for r := 0; r < cfg.Replicas; r++ {
		r := r
		shard := r + 1
		pod := &podStats{perType: make(map[string]*TypeStats)}
		for _, name := range workload.Interactions {
			pod.perType[name] = &TypeStats{}
		}
		pods[r] = pod

		squidSt := app.Stage(fmt.Sprintf("squid-%d", r),
			whodunit.StageCPU(1), whodunit.StageShard(shard))
		tomcatSt := app.Stage(fmt.Sprintf("tomcat-%d", r),
			whodunit.StageCPU(2), whodunit.StageShard(shard))
		squidQ := app.NewQueueOn(shard, fmt.Sprintf("squid-in-%d", r))
		tomcatQ := app.NewQueueOn(shard, fmt.Sprintf("tomcat-in-%d", r))
		squidEP := squidSt.Endpoint()
		tomcatEP := tomcatSt.Endpoint()

		// The pod's one request link into the shared database.
		toDB := app.Pipe(shard, mysqlQ, hop)

		// Per-pod servlet caches: each app server caches independently.
		type cacheEntry struct{ until whodunit.Time }
		bestSellersCache := make(map[int64]cacheEntry)
		searchCache := make(map[int64]cacheEntry)

		for w := 0; w < cfg.TomcatWorkers; w++ {
			// The worker's reply queue and its return link from the
			// database, declared before the run starts (cross-domain
			// links must exist before the epoch loop arms).
			replyQ := app.NewQueueOn(shard, fmt.Sprintf("tomcat-%d-%d-reply", r, w))
			fromDB := app.Pipe(0, replyQ, hop)
			tomcatSt.Go(fmt.Sprintf("tomcat-%d", w), func(th *whodunit.Thread, pr *whodunit.Probe) {
				for {
					req := tomcatQ.Get(th).(*megaRequest)
					tomcatEP.Recv(pr, req.msg)
					wr := req.web
					upstream := req.replyQ
					func() {
						defer pr.Exit(pr.Enter(servletFrame[wr.interaction]))
						pr.ComputeN(2*whodunit.Millisecond, 400) // servlet + page generation

						needDB := true
						if cfg.ServletCaching {
							switch wr.interaction {
							case workload.BestSellers:
								if e, ok := bestSellersCache[wr.subject]; ok && th.Now() < e.until {
									needDB = false
								}
							case workload.SearchResult:
								if e, ok := searchCache[wr.subject]; ok && th.Now() < e.until {
									needDB = false
								}
							}
						}
						if needDB {
							func() {
								defer pr.Exit(pr.Enter("db_rpc"))
								req.msg = tomcatEP.Send(pr, nil)
								req.q = dbQuery{interaction: wr.interaction, subject: wr.subject, itemID: wr.itemID}
								req.dbReply = fromDB
								toDB.Send(req)
								resp := replyQ.Get(th).(*megaRequest)
								tomcatEP.Recv(pr, resp.msg)
							}()
							if cfg.ServletCaching {
								switch wr.interaction {
								case workload.BestSellers:
									bestSellersCache[wr.subject] = cacheEntry{until: th.Now().Add(30 * whodunit.Second)}
								case workload.SearchResult:
									searchCache[wr.subject] = cacheEntry{until: th.Now().Add(30 * whodunit.Second)}
								}
							}
						}
						pr.ComputeN(whodunit.Millisecond, 200) // response rendering
					}()
					req.msg = tomcatEP.Send(pr, nil)
					req.replyQ = nil
					upstream.Put(req)
				}
			})
		}

		// The squid workers are run-to-completion coroutines (the
		// Stage.GoCoro showcase): the hot path — dequeue, forward to
		// Tomcat, await the response, reply upstream — runs as direct
		// continuation calls on the domain goroutine, with CPU demand
		// charged through Probe.ComputeStep. The frames perform exactly
		// the operations of the old goroutine body, in the same order,
		// so the profile and goldens are bit-identical.
		for w := 0; w < cfg.SquidWorkers; w++ {
			sw := &megaSquid{app: app, shard: shard, squidQ: squidQ, tomcatQ: tomcatQ, ep: squidEP}
			sw.recvF, sw.fwdF, sw.respF, sw.doneF = sw.recv, sw.fwd, sw.resp, sw.done
			squidSt.GoCoro(fmt.Sprintf("squid-%d", w), sw.begin)
		}

		// The pod's share of the clients: global index c keeps the RNG
		// streams layout-independent; c % Replicas is the load balancer.
		// Like the single-pod clients, each one is a run-to-completion
		// coroutine — this is what makes the million-client closed loop
		// affordable: a client costs one small struct instead of a
		// goroutine stack, and each round trip costs continuation calls
		// instead of channel hand-offs.
		for c := r; c < cfg.Clients; c += cfg.Replicas {
			mix := workload.NewMixSampler(cfg.Seed+uint64(c)*7919, mixWeights)
			mix.SetThinkMean(think)
			crng := vclock.NewRNG(cfg.Seed + uint64(c)*104729)
			cl := &megaClient{
				app: app, shard: shard, squidQ: squidQ, mix: mix, crng: crng,
				end: end, think: think, pod: pod,
			}
			cl.issueF, cl.replyF = cl.issue, cl.reply
			app.GoCoroShard(shard, fmt.Sprintf("client-%d", c), cl.begin)
		}
	}

	// The clients stop issuing at the configured end and the stage
	// workers park on empty queues, so the run terminates on its own
	// once the last in-flight replies drain.
	rep := app.Run()

	res := &MegaResult{
		Config:  cfg,
		Report:  rep,
		Elapsed: rep.Elapsed,
		PerType: make(map[string]*TypeStats),
	}
	for _, name := range workload.Interactions {
		res.PerType[name] = &TypeStats{}
	}
	for _, pod := range pods {
		res.Completed += pod.completed
		for _, name := range workload.Interactions {
			res.PerType[name].Count += pod.perType[name].Count
			res.PerType[name].TotalResp += pod.perType[name].TotalResp
		}
	}
	if res.Elapsed > 0 {
		res.ThroughputPerMin = float64(res.Completed) / res.Elapsed.Seconds() * 60
	}
	return res
}

// megaClient is the replicated deployment's closed-loop client as a
// run-to-completion state machine — the mega-scale twin of client, with
// the pod-private stats struct in place of Result and a shard-pinned
// reply queue. Frames: begin (reply queue, envelope, desynchronise) →
// issue → reply → issue → ...
type megaClient struct {
	app    *whodunit.App
	shard  int
	squidQ *whodunit.Queue
	replyQ *whodunit.Queue
	env    *megaRequest
	mix    *workload.MixSampler
	crng   *whodunit.RNG
	end    whodunit.Time
	think  whodunit.Duration
	pod    *podStats

	name  string        // interaction in flight
	start whodunit.Time // round-trip start

	issueF, replyF whodunit.Frame
}

func (cl *megaClient) begin(c *whodunit.Coro, _ any) whodunit.Step {
	cl.replyQ = cl.app.NewQueueOn(cl.shard, c.Thread().Name+"-reply")
	cl.env = &megaRequest{}
	return c.Sleep(whodunit.Duration(cl.crng.Intn(int(cl.think))), cl.issueF)
}

func (cl *megaClient) issue(c *whodunit.Coro, _ any) whodunit.Step {
	if c.Now() >= cl.end {
		return c.End()
	}
	cl.name = cl.mix.Next()
	cl.env.msg = whodunit.Msg{}
	cl.env.web = webReq{
		interaction: cl.name,
		subject:     int64(cl.crng.Intn(24)),
		itemID:      int64(cl.crng.Intn(10000)),
	}
	cl.env.replyQ = cl.replyQ
	cl.start = c.Now()
	cl.squidQ.Put(cl.env)
	return c.Get(cl.replyQ.Raw(), cl.replyF)
}

func (cl *megaClient) reply(c *whodunit.Coro, v any) whodunit.Step {
	cl.replyQ.Check(v)
	if c.Now() >= cl.end {
		return c.End()
	}
	st := cl.pod.perType[cl.name]
	st.Count++
	st.TotalResp += c.Now().Sub(cl.start)
	cl.pod.completed++
	return c.Sleep(cl.mix.ThinkTime(), cl.issueF)
}

// megaSquid is one Squid front-tier worker as a run-to-completion state
// machine: recv (dequeue a request, open the forward_dynamic frame,
// charge the forward cost) → fwd (send to Tomcat, await its reply) →
// resp (charge the response cost) → done (close the frame, reply
// upstream, go back to the input queue). The probe frame opened in recv
// stays open across the Tomcat round trip, exactly like the deferred
// Exit of the old goroutine body.
type megaSquid struct {
	app     *whodunit.App
	shard   int
	squidQ  *whodunit.Queue
	tomcatQ *whodunit.Queue
	ep      *whodunit.Endpoint
	pr      *whodunit.Probe
	replyQ  *whodunit.Queue

	req      *megaRequest
	upstream *whodunit.Queue
	tok      int // forward_dynamic frame token

	recvF, fwdF, respF, doneF whodunit.Frame
}

func (sw *megaSquid) begin(th *whodunit.Thread, pr *whodunit.Probe) whodunit.Frame {
	sw.pr = pr
	sw.replyQ = sw.app.NewQueueOn(sw.shard, th.Name+"-reply")
	return sw.idle
}

func (sw *megaSquid) idle(c *whodunit.Coro, _ any) whodunit.Step {
	return c.Get(sw.squidQ.Raw(), sw.recvF)
}

func (sw *megaSquid) recv(c *whodunit.Coro, v any) whodunit.Step {
	sw.req = sw.squidQ.Check(v).(*megaRequest)
	sw.ep.Recv(sw.pr, sw.req.msg)
	sw.upstream = sw.req.replyQ
	sw.tok = sw.pr.Enter("forward_dynamic")
	return sw.pr.ComputeStep(c, 300*whodunit.Microsecond, sw.fwdF)
}

func (sw *megaSquid) fwd(c *whodunit.Coro, _ any) whodunit.Step {
	sw.req.msg = sw.ep.Send(sw.pr, nil)
	sw.req.replyQ = sw.replyQ
	sw.tomcatQ.Put(sw.req)
	return c.Get(sw.replyQ.Raw(), sw.respF)
}

func (sw *megaSquid) resp(c *whodunit.Coro, v any) whodunit.Step {
	resp := sw.replyQ.Check(v).(*megaRequest)
	sw.ep.Recv(sw.pr, resp.msg)
	return sw.pr.ComputeStep(c, 200*whodunit.Microsecond, sw.doneF)
}

func (sw *megaSquid) done(c *whodunit.Coro, _ any) whodunit.Step {
	sw.pr.Exit(sw.tok)
	sw.req.msg = sw.ep.Send(sw.pr, nil)
	sw.req.replyQ = nil
	sw.upstream.Put(sw.req)
	return c.Get(sw.squidQ.Raw(), sw.recvF)
}
