package tpcw

import (
	"testing"

	"whodunit"
	"whodunit/internal/workload"
)

// TestSteadyStateRequestAllocations pins the steady-state allocation
// cost of the three-tier request path. One envelope per client reused
// around the whole round trip, interned synopsis chains, precomputed
// servlet frame names and ID-interned CCT paths leave only amortized
// slice growth (simulator event heap, queue buffers) on the hot path —
// measured ~0.003 allocs/request. A regression that reintroduces a
// per-hop envelope, chain or frame-name allocation costs 1+ allocs per
// request and trips the bound by an order of magnitude.
func TestSteadyStateRequestAllocations(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.Duration = 30 * whodunit.Minute // out-lasts warmup + measurement
	cfg.ThinkMean = 50 * whodunit.Millisecond
	// Read-only mix: row inserts (BuyConfirm) legitimately allocate.
	cfg.Mix = map[string]float64{
		workload.Home:          0.4,
		workload.ProductDetail: 0.3,
		workload.SearchRequest: 0.2,
		workload.ShoppingCart:  0.1,
	}
	sys := build(cfg)
	sim := sys.app.Sim()
	runFor := func(d whodunit.Duration) {
		end := sim.Now().Add(d)
		sim.RunUntil(func() bool { return sim.Now() >= end })
	}
	// Warm up: intern every chain and frame, grow trees, queues and the
	// event heap to steady-state capacity.
	runFor(20 * whodunit.Second)

	before := sys.res.Completed
	const rounds = 5
	avgPerRound := testing.AllocsPerRun(rounds, func() { runFor(2 * whodunit.Second) })
	requests := sys.res.Completed - before // across all rounds+1 calls
	if requests < 100 {
		t.Fatalf("only %d requests completed during measurement; workload misconfigured", requests)
	}
	perRequest := avgPerRound * float64(rounds+1) / float64(requests)
	t.Logf("%.3f allocs/request over %d requests (%.1f allocs/round)", perRequest, requests, avgPerRound)
	if perRequest >= 0.1 {
		t.Errorf("steady-state request path allocates %.3f allocs/request, want < 0.1", perRequest)
	}
}
