// Package tpcw models the TPC-W online bookstore of §8.4: fourteen
// interactions implemented as servlets in a Tomcat-like container, fronted
// by a Squid-like pass-through tier and backed by a MySQL-like database
// (minidb). The model is an App with three Stages — each with its own
// private CPU — exchanging requests over queues with ipc's synopsis
// piggy-backing (the stages' endpoints), so each interaction establishes
// its own transaction context at the database: the separation that lets
// Table 1 attribute MySQL CPU and crosstalk per interaction. Crosstalk
// monitoring comes from WithCrosstalk; minidb's locks report to the
// app's monitor.
//
// Two optimisations from the paper are switchable:
//
//   - ItemEngine: the item table as MyISAM (table locks — AdminConfirm
//     blocks and is blocked by every item reader) or InnoDB (row locks —
//     Figure 11's first optimisation);
//   - ServletCaching: caching BestSellers and SearchResult results in the
//     servlets per TPC-W clause 6.3.3.1 (Figure 11/12's second
//     optimisation).
package tpcw

import (
	"fmt"

	"whodunit"
	"whodunit/internal/minidb"
	"whodunit/internal/tranctx"
	"whodunit/internal/vclock"
	"whodunit/internal/workload"
)

// chainKey is a comparable, rendering-free map key for a synopsis chain.
// The crosstalk classifier resolves a context's chain on every observed
// lock wait, so keying the registry by rendered strings put a fmt string
// build on the lock hot path. Chains longer than the inline array (which
// the three-tier model never produces) fall back to the rendered form,
// keeping the key injective in all cases.
type chainKey struct {
	n   int
	syn [6]tranctx.Synopsis
	str string // rendered fallback when n > len(syn)
}

func chainKeyOf(ch tranctx.Chain) chainKey {
	k := chainKey{n: len(ch)}
	if len(ch) > len(k.syn) {
		k.str = ch.String()
		return k
	}
	copy(k.syn[:], ch)
	return k
}

// Config parameterises one TPC-W run.
type Config struct {
	Clients        int
	Duration       whodunit.Duration // virtual run length
	Mode           whodunit.Mode
	ItemEngine     minidb.Engine
	ServletCaching bool
	Seed           uint64

	TomcatWorkers int
	DBWorkers     int
	ThinkMean     whodunit.Duration // 0 = TPC-W default (7s)
	// Mix selects the interaction mix; nil means workload.BrowsingMix.
	Mix map[string]float64
}

// DefaultConfig is the paper's baseline: browsing mix, MyISAM item table,
// no servlet caching, Whodunit profiling.
func DefaultConfig(clients int) Config {
	return Config{
		Clients:        clients,
		Duration:       3 * whodunit.Minute,
		Mode:           whodunit.ModeWhodunit,
		ItemEngine:     minidb.EngineMyISAM,
		ServletCaching: false,
		Seed:           1,
		TomcatWorkers:  12,
		DBWorkers:      6,
	}
}

// Result carries everything the §8.4/§9.1 experiments report.
type Result struct {
	Config Config

	// Report is the unified three-tier report App.Run assembled:
	// per-stage profiles, the crosstalk matrix and the stitched graph.
	Report *whodunit.Report

	SquidProf  *whodunit.Profiler
	TomcatProf *whodunit.Profiler
	MySQLProf  *whodunit.Profiler
	Crosstalk  *whodunit.CrosstalkMonitor

	// Per-tier message endpoints, exposed so callers can stitch the
	// three tiers into the global transaction graph.
	SquidEP  *whodunit.Endpoint
	TomcatEP *whodunit.Endpoint
	MySQLEP  *whodunit.Endpoint

	Elapsed          whodunit.Duration
	Completed        int64
	PerType          map[string]*TypeStats
	ThroughputPerMin float64

	// DBShare maps interaction -> fraction of MySQL CPU samples (Table 1
	// column 1). MeanCrosstalk maps interaction -> mean lock wait per
	// instance of that interaction (Table 1 column 2).
	DBShare       map[string]float64
	MeanCrosstalk map[string]whodunit.Duration

	// Bytes of application data vs context synopses shipped between tiers
	// (the §9.1 communication-overhead measurement).
	AppBytes, CtxtBytes int64
}

// TypeStats aggregates per-interaction client-side metrics.
type TypeStats struct {
	Count     int64
	TotalResp whodunit.Duration
}

// Mean returns the mean response time.
func (t *TypeStats) Mean() whodunit.Duration {
	if t.Count == 0 {
		return 0
	}
	return t.TotalResp / whodunit.Duration(t.Count)
}

// request is the in-sim message envelope between tiers. Exactly one
// envelope exists per client, allocated once and reused around the whole
// client → squid → tomcat → mysql → back round trip: each tier saves the
// upstream reply queue in a local, rewrites the envelope's fields for the
// next hop, and forwards the same pointer. Because every tier holds the
// envelope exclusively between its Get and its Put, the reuse is
// race-free by construction, and the steady-state request path allocates
// no envelopes at all (PR 4's remaining per-request allocation). The
// payloads are typed fields rather than an `any` slot for the same
// reason: interface boxing of webReq/dbQuery allocated per hop.
type request struct {
	msg    whodunit.Msg
	web    webReq  // client -> tomcat payload
	q      dbQuery // tomcat -> mysql payload
	replyQ *whodunit.Queue
}

// dbQuery is the Tomcat->MySQL payload.
type dbQuery struct {
	interaction string
	subject     int64
	itemID      int64
}

// webReq is the client->Squid->Tomcat payload.
type webReq struct {
	interaction string
	subject     int64
	itemID      int64
}

// Run executes the configured TPC-W system and collects the results.
func Run(cfg Config) *Result {
	return build(cfg).finish()
}

// system is the built-but-not-yet-run TPC-W model: every stage thread
// declared, tables loaded, clients installed. Run = build + finish; the
// allocation regression test drives the simulator in chunks between the
// two to measure the steady-state request path.
type system struct {
	app       *whodunit.App
	res       *Result
	end       whodunit.Time
	chainName map[chainKey]string
}

func build(cfg Config) *system {
	if cfg.Clients <= 0 {
		panic("tpcw: need at least one client")
	}
	think := cfg.ThinkMean
	if think == 0 {
		think = 7 * whodunit.Second
	}
	mixWeights := cfg.Mix
	if mixWeights == nil {
		mixWeights = workload.BrowsingMix
	}

	// chain -> interaction registry: filled when Tomcat sends a DB
	// request; this is how the experiment code (and the crosstalk
	// classifier) translate a MySQL-side context back to an interaction.
	chainName := make(map[chainKey]string)
	classify := func(tc whodunit.TxnCtxt) string {
		if n, ok := chainName[chainKeyOf(tc.Prefix)]; ok {
			return n
		}
		return "(other)"
	}

	app := whodunit.NewApp("tpcw",
		whodunit.WithMode(cfg.Mode),
		whodunit.WithCrosstalk(classify))
	squidSt := app.Stage("squid", whodunit.StageCPU(1))
	tomcatSt := app.Stage("tomcat", whodunit.StageCPU(2))
	mysqlSt := app.Stage("mysql", whodunit.StageCPU(1))
	s := app.Sim()

	res := &Result{
		Config:        cfg,
		Crosstalk:     app.Crosstalk(),
		SquidProf:     squidSt.Profiler(),
		TomcatProf:    tomcatSt.Profiler(),
		MySQLProf:     mysqlSt.Profiler(),
		PerType:       make(map[string]*TypeStats),
		DBShare:       make(map[string]float64),
		MeanCrosstalk: make(map[string]whodunit.Duration),
	}
	for _, name := range workload.Interactions {
		res.PerType[name] = &TypeStats{}
	}

	// Database schema and data.
	db := minidb.New(s, "mysql", mysqlSt.CPU())
	db.SetLockObserver(app.Crosstalk())
	item, orderLine, customer, orders, author := loadTables(db, cfg.ItemEngine, cfg.Seed)

	// Queues between tiers.
	squidQ := app.NewQueue("squid-in")
	tomcatQ := app.NewQueue("tomcat-in")
	mysqlQ := app.NewQueue("mysql-in")

	squidEP := squidSt.Endpoint()
	tomcatEP := tomcatSt.Endpoint()
	mysqlEP := mysqlSt.Endpoint()
	res.SquidEP, res.TomcatEP, res.MySQLEP = squidEP, tomcatEP, mysqlEP

	countMsg := func(m whodunit.Msg, appBytes int64) {
		res.CtxtBytes += int64(m.Chain.WireSize())
		res.AppBytes += appBytes
	}

	// MySQL tier: workers execute queries. The reply reuses the incoming
	// envelope: its replyQ already names the issuing Tomcat worker.
	for w := 0; w < cfg.DBWorkers; w++ {
		mysqlSt.Go(fmt.Sprintf("mysqld-%d", w), func(th *whodunit.Thread, pr *whodunit.Probe) {
			for {
				req := mysqlQ.Get(th).(*request)
				mysqlEP.Recv(pr, req.msg)
				q := req.q
				func() {
					defer pr.Exit(pr.Enter("dispatch_query"))
					execQuery(db, pr, q, item, orderLine, customer, orders, author)
				}()
				req.msg = mysqlEP.Send(pr, nil)
				countMsg(req.msg, 256)
				req.replyQ.Put(req)
			}
		})
	}

	// Servlet-side result caches (clause 6.3.3.1).
	type cacheEntry struct{ until whodunit.Time }
	bestSellersCache := make(map[int64]cacheEntry)
	searchCache := make(map[int64]cacheEntry)

	// Servlet frame names, precomputed: "servlet_" + interaction concat
	// on the request path was a per-request allocation.
	servletFrame := make(map[string]string, len(workload.Interactions))
	for _, name := range workload.Interactions {
		servletFrame[name] = "servlet_" + name
	}

	// Tomcat tier: servlets.
	for w := 0; w < cfg.TomcatWorkers; w++ {
		tomcatSt.Go(fmt.Sprintf("tomcat-%d", w), func(th *whodunit.Thread, pr *whodunit.Probe) {
			replyQ := app.NewQueue(th.Name + "-reply")
			for {
				req := tomcatQ.Get(th).(*request)
				tomcatEP.Recv(pr, req.msg)
				wr := req.web
				upstream := req.replyQ
				func() {
					defer pr.Exit(pr.Enter(servletFrame[wr.interaction]))
					pr.ComputeN(2*whodunit.Millisecond, 400) // servlet + page generation

					needDB := true
					if cfg.ServletCaching {
						switch wr.interaction {
						case workload.BestSellers:
							if e, ok := bestSellersCache[wr.subject]; ok && th.Now() < e.until {
								needDB = false
							}
						case workload.SearchResult:
							if e, ok := searchCache[wr.subject]; ok && th.Now() < e.until {
								needDB = false
							}
						}
					}
					if needDB {
						func() {
							defer pr.Exit(pr.Enter("db_rpc"))
							req.msg = tomcatEP.Send(pr, nil)
							chainName[chainKeyOf(req.msg.Chain)] = wr.interaction
							countMsg(req.msg, 512)
							req.q = dbQuery{interaction: wr.interaction, subject: wr.subject, itemID: wr.itemID}
							req.replyQ = replyQ
							mysqlQ.Put(req)
							resp := replyQ.Get(th).(*request)
							tomcatEP.Recv(pr, resp.msg)
						}()
						if cfg.ServletCaching {
							switch wr.interaction {
							case workload.BestSellers:
								bestSellersCache[wr.subject] = cacheEntry{until: th.Now().Add(30 * whodunit.Second)}
							case workload.SearchResult:
								searchCache[wr.subject] = cacheEntry{until: th.Now().Add(30 * whodunit.Second)}
							}
						}
					}
					pr.ComputeN(whodunit.Millisecond, 200) // response rendering
				}()
				req.msg = tomcatEP.Send(pr, nil)
				countMsg(req.msg, 8192)
				req.replyQ = nil
				upstream.Put(req)
			}
		})
	}

	// Squid front tier: pass-through for dynamic content.
	for w := 0; w < 4; w++ {
		squidSt.Go(fmt.Sprintf("squid-%d", w), func(th *whodunit.Thread, pr *whodunit.Probe) {
			replyQ := app.NewQueue(th.Name + "-reply")
			for {
				req := squidQ.Get(th).(*request)
				squidEP.Recv(pr, req.msg)
				upstream := req.replyQ
				func() {
					defer pr.Exit(pr.Enter("forward_dynamic"))
					pr.Compute(300 * whodunit.Microsecond)
					req.msg = squidEP.Send(pr, nil)
					countMsg(req.msg, 512)
					req.replyQ = replyQ
					tomcatQ.Put(req)
					resp := replyQ.Get(th).(*request)
					squidEP.Recv(pr, resp.msg)
					pr.Compute(200 * whodunit.Microsecond)
				}()
				req.msg = squidEP.Send(pr, nil)
				countMsg(req.msg, 8192)
				req.replyQ = nil
				upstream.Put(req)
			}
		})
	}

	// Clients: closed loop with think times. The clients are the load
	// generator, not part of the profiled application, so they run as
	// raw simulator threads outside any stage (and carry no probes) —
	// and as run-to-completion coroutines, so a client costs a small
	// struct rather than a goroutine stack, and each of its blocking
	// operations costs a continuation call rather than a channel
	// hand-off. The program performs exactly the operations of the old
	// goroutine loop, in the same order, so the output is bit-identical.
	end := whodunit.Time(cfg.Duration)
	for c := 0; c < cfg.Clients; c++ {
		mix := workload.NewMixSampler(cfg.Seed+uint64(c)*7919, mixWeights)
		mix.SetThinkMean(think)
		crng := vclock.NewRNG(cfg.Seed + uint64(c)*104729)
		cl := &client{
			app: app, squidQ: squidQ, mix: mix, crng: crng,
			end: end, think: think, res: res,
		}
		// Continuations are bound once here, so the steady-state loop
		// allocates nothing.
		cl.issueF, cl.replyF = cl.issue, cl.reply
		s.GoCoro(fmt.Sprintf("client-%d", c), cl.begin)
	}

	return &system{app: app, res: res, end: end, chainName: chainName}
}

// client is the run-to-completion state machine of one closed-loop
// client: begin (create the reply queue and envelope, desynchronise) →
// issue (draw an interaction, put the envelope to Squid, await the
// reply) → reply (account the round trip, think) → issue → ... Every
// mutable of the old goroutine body is a field; the frame continuations
// are bound once at construction.
type client struct {
	app    *whodunit.App
	squidQ *whodunit.Queue
	replyQ *whodunit.Queue
	env    *request
	mix    *workload.MixSampler
	crng   *whodunit.RNG
	end    whodunit.Time
	think  whodunit.Duration
	res    *Result

	name  string        // interaction in flight
	start whodunit.Time // round-trip start

	issueF, replyF whodunit.Frame
}

func (cl *client) begin(c *whodunit.Coro, _ any) whodunit.Step {
	cl.replyQ = cl.app.NewQueue(c.Thread().Name + "-reply")
	// The client's one envelope, reused for every request (see
	// request). It comes back on replyQ at the end of each round trip,
	// so reusing it here never races with a tier.
	cl.env = &request{}
	// Desynchronised start.
	return c.Sleep(whodunit.Duration(cl.crng.Intn(int(cl.think))), cl.issueF)
}

func (cl *client) issue(c *whodunit.Coro, _ any) whodunit.Step {
	if c.Now() >= cl.end {
		return c.End()
	}
	cl.name = cl.mix.Next()
	cl.env.msg = whodunit.Msg{}
	cl.env.web = webReq{
		interaction: cl.name,
		subject:     int64(cl.crng.Intn(24)),
		itemID:      int64(cl.crng.Intn(10000)),
	}
	cl.env.replyQ = cl.replyQ
	cl.start = c.Now()
	cl.squidQ.Put(cl.env)
	return c.Get(cl.replyQ.Raw(), cl.replyF)
}

func (cl *client) reply(c *whodunit.Coro, v any) whodunit.Step {
	cl.replyQ.Check(v)
	if c.Now() >= cl.end {
		return c.End()
	}
	st := cl.res.PerType[cl.name]
	st.Count++
	st.TotalResp += c.Now().Sub(cl.start)
	cl.res.Completed++
	return c.Sleep(cl.mix.ThinkTime(), cl.issueF)
}

// finish drives the built system to its configured end, shuts it down
// and computes the result metrics.
func (sys *system) finish() *Result {
	res, chainName := sys.res, sys.chainName
	s := sys.app.Sim()
	rep := sys.app.RunUntil(func() bool { return s.Now() >= sys.end })
	res.Report = rep
	res.Elapsed = rep.Elapsed

	if res.Elapsed > 0 {
		res.ThroughputPerMin = float64(res.Completed) / res.Elapsed.Seconds() * 60
	}

	// Table 1 column 1: MySQL CPU share per interaction, from the
	// database profiler's per-context trees resolved via the chain
	// registry.
	total := res.MySQLProf.TotalSamples()
	if total > 0 {
		for _, e := range res.MySQLProf.Entries() {
			name, ok := chainName[chainKeyOf(e.Ctxt.Prefix)]
			if !ok {
				continue
			}
			res.DBShare[name] += float64(e.Tree.Total()) / float64(total)
		}
	}
	// Table 1 column 2: mean crosstalk wait per interaction instance.
	for _, name := range workload.Interactions {
		totalWait, _ := res.Crosstalk.WaitTotal(name)
		if n := res.PerType[name].Count; n > 0 {
			res.MeanCrosstalk[name] = totalWait / whodunit.Duration(n)
		}
	}
	return res
}

// loadTables creates and populates the TPC-W schema on db, shared by the
// single-pod model and the mega-scale replicated model so that both load
// bit-identical data for a given seed.
func loadTables(db *minidb.DB, itemEngine minidb.Engine, seed uint64) (item, orderLine, customer, orders, author *minidb.Table) {
	rng := vclock.NewRNG(seed ^ 0x5eed)
	item = db.CreateTable("item", itemEngine)
	for i := 0; i < 10000; i++ {
		item.LoadRow(minidb.Row{ID: int64(i), Attrs: []minidb.Attr{
			{Name: "subject", Val: int64(i % 24)}, {Name: "cost", Val: int64(10 + i%90)},
			{Name: "sales", Val: int64(rng.Intn(100000))},
		}})
	}
	orderLine = db.CreateTable("order_line", minidb.EngineMyISAM)
	for i := 0; i < 7776; i++ {
		orderLine.LoadRow(minidb.Row{ID: int64(i), Attrs: []minidb.Attr{
			{Name: "item", Val: int64(rng.Intn(10000))}, {Name: "qty", Val: int64(1 + rng.Intn(5))},
		}})
	}
	customer = db.CreateTable("customer", minidb.EngineMyISAM)
	for i := 0; i < 2880; i++ {
		customer.LoadRow(minidb.Row{ID: int64(i), Attrs: []minidb.Attr{{Name: "discount", Val: int64(i % 50)}}})
	}
	orders = db.CreateTable("orders", minidb.EngineInnoDB)
	author = db.CreateTable("author", minidb.EngineMyISAM)
	for i := 0; i < 2500; i++ {
		author.LoadRow(minidb.Row{ID: int64(i)})
	}
	return item, orderLine, customer, orders, author
}

// execQuery performs the per-interaction database work. Row volumes are
// calibrated so the browsing mix reproduces Table 1's CPU split (heavy
// BestSellers/SearchResult, heavyweight-but-rare AdminConfirm).
func execQuery(db *minidb.DB, pr *whodunit.Probe, q dbQuery,
	item, orderLine, customer, orders, author *minidb.Table) {
	switch q.interaction {
	case workload.BestSellers:
		// Scan recent order lines, aggregate+sort into a temp table (held
		// under the order_line read lock), then join the top items. The
		// servlet only wants the query's cost and contention, so the
		// result set is not materialised (CountOnly).
		db.Select(pr, orderLine, nil, minidb.SelectOpts{TempSortRows: 38000, CountOnly: true})
		for i := int64(0); i < 50; i++ {
			db.Lookup(pr, item, (q.itemID+i*13)%10000)
		}
	case workload.SearchResult:
		// Subject search over the item table with a sorted temp table,
		// all under the item read lock (this is what AdminConfirm's
		// exclusive table lock collides with on MyISAM).
		db.Select(pr, item, nil, minidb.SelectOpts{WhereAttr: "subject", WhereEquals: q.subject,
			SortBy: "sales", Limit: 50, TempSortRows: 28000, CountOnly: true})
	case workload.AdminConfirm:
		// Heavy-weight: sort order lines into a temp table, then update
		// one row of item — exclusive table lock under MyISAM.
		db.Select(pr, orderLine, nil, minidb.SelectOpts{TempSortRows: 50000, CountOnly: true})
		db.Update(pr, item, q.itemID, func(r *minidb.Row) { r.AddAttr("cost", 1) })
	case workload.NewProducts:
		db.Select(pr, item, nil, minidb.SelectOpts{WhereAttr: "subject", WhereEquals: q.subject,
			SortBy: "sales", Limit: 50, CountOnly: true})
	case workload.Home:
		db.Lookup(pr, customer, q.itemID%2880)
		for i := int64(0); i < 5; i++ {
			db.Lookup(pr, item, (q.itemID+i)%10000)
		}
		db.TempSort(pr, 300)
	case workload.ProductDetail:
		db.Lookup(pr, item, q.itemID)
		db.Lookup(pr, author, q.itemID%2500)
	case workload.SearchRequest:
		db.Lookup(pr, item, q.itemID)
		db.Lookup(pr, author, q.itemID%2500)
	case workload.ShoppingCart:
		for i := int64(0); i < 3; i++ {
			db.Lookup(pr, item, (q.itemID+i)%10000)
		}
	case workload.BuyRequest:
		db.Lookup(pr, customer, q.itemID%2880)
		db.Lookup(pr, item, q.itemID)
	case workload.BuyConfirm:
		// Writes order rows: the order_line insert takes that table's
		// exclusive lock and collides with BestSellers' long reads.
		db.Lookup(pr, customer, q.itemID%2880)
		db.Insert(pr, orders, minidb.Row{ID: q.itemID*100000 + int64(pr.Thread().ID)})
		db.Insert(pr, orderLine, minidb.Row{ID: q.itemID*100000 + int64(pr.Thread().ID) + 50000,
			Attrs: []minidb.Attr{{Name: "item", Val: q.itemID}, {Name: "qty", Val: 1}}})
	case workload.OrderDisplay, workload.OrderInquiry:
		db.Lookup(pr, customer, q.itemID%2880)
		db.Lookup(pr, orders, q.itemID)
	case workload.CustomerRegistration:
		db.Lookup(pr, customer, q.itemID%2880)
	case workload.AdminRequest:
		db.Lookup(pr, item, q.itemID)
		db.Lookup(pr, author, q.itemID%2500)
	default:
		db.Lookup(pr, item, q.itemID)
	}
}
