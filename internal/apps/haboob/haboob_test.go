package haboob

import (
	"strings"
	"testing"

	"whodunit/internal/profiler"
	"whodunit/internal/workload"
)

func trace() *workload.WebTrace {
	cfg := workload.DefaultWebConfig()
	cfg.NumConns = 150
	cfg.NumFiles = 400
	cfg.MinSize = 8 << 10
	return workload.GenWeb(cfg)
}

func TestServesTrace(t *testing.T) {
	tr := trace()
	res := Run(DefaultConfig(tr))
	if res.BytesSent != tr.TotalBytes {
		t.Fatalf("bytes = %d, want %d", res.BytesSent, tr.TotalBytes)
	}
	if res.Hits == 0 || res.Misses == 0 {
		t.Fatalf("need both paths: hits=%d misses=%d", res.Hits, res.Misses)
	}
}

func TestWriteStageInHitAndMissContexts(t *testing.T) {
	// Figure 10: WriteStage CPU split between the hit path
	// (...Cache|Write) and the miss path (...Cache|Miss|FileIO|Write).
	res := Run(DefaultConfig(trace()))
	var hit, miss int64
	for _, sh := range res.Profiler.Shares() {
		if !strings.HasSuffix(sh.Label, "haboob#WriteStage") {
			continue
		}
		if strings.Contains(sh.Label, "MissStage") {
			miss += sh.Samples
		} else {
			hit += sh.Samples
		}
	}
	if hit == 0 || miss == 0 {
		t.Fatalf("WriteStage contexts: hit=%d miss=%d; shares=%+v", hit, miss, res.Profiler.Shares())
	}
}

func TestContextsBoundedByPruning(t *testing.T) {
	res := Run(DefaultConfig(trace()))
	for _, e := range res.Profiler.Entries() {
		if got := e.Ctxt.Local.Depth(); got > 8 {
			t.Fatalf("context depth %d exceeds stage count: %v", got, e.Ctxt.Local.Labels())
		}
	}
}

func TestMissPathCostlier(t *testing.T) {
	// Per-request CPU on the miss path (disk read + write) must exceed
	// the hit path's — the shape that makes Figure 10's miss-path
	// WriteStage share (46.58%) larger than the hit share (37.65%)
	// relative to path frequency.
	res := Run(DefaultConfig(trace()))
	var missTotal, hitTotal int64
	for _, sh := range res.Profiler.Shares() {
		if strings.Contains(sh.Label, "MissStage") {
			missTotal += sh.Samples
		} else if strings.Contains(sh.Label, "CacheStage") {
			hitTotal += sh.Samples
		}
	}
	if missTotal == 0 {
		t.Fatal("no miss-path samples")
	}
	_ = hitTotal // informational; frequencies depend on cache size
}

func TestOverheadModest(t *testing.T) {
	tr := trace()
	off := DefaultConfig(tr)
	off.Mode = profiler.ModeOff
	a := Run(off)
	b := Run(DefaultConfig(tr))
	overhead := (a.ThroughputMbps - b.ThroughputMbps) / a.ThroughputMbps
	if overhead < 0 || overhead > 0.15 {
		t.Fatalf("overhead = %.2f%%", overhead*100)
	}
}

func TestDeterministic(t *testing.T) {
	a := Run(DefaultConfig(trace()))
	b := Run(DefaultConfig(trace()))
	if a.Elapsed != b.Elapsed || a.Hits != b.Hits || a.Profiler.TotalSamples() != b.Profiler.TotalSamples() {
		t.Fatal("haboob runs diverged")
	}
}
