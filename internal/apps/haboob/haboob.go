// Package haboob models the Haboob SEDA web server of §8.3: eight stages
// (ListenStage, HttpServer, ReadStage, HttpRecv, CacheStage, MissStage,
// File I/O, WriteStage) connected by stage queues, with an in-memory page
// cache. A transaction reaches WriteStage either via the cache-hit path
// (CacheStage→WriteStage) or the miss path (CacheStage→MissStage→File
// I/O→WriteStage), so WriteStage's CPU appears under two transaction
// contexts — the Figure 10 result.
//
// The model is an App/Stage composition: SEDA stages are declared with
// Stage.SEDAStage over App.NewQueue transports, and each worker thread's
// probe is bound with Stage.Worker, so stage-sequence contexts propagate
// through the middleware with no wiring here.
package haboob

import (
	"fmt"

	"whodunit"
	"whodunit/internal/workload"
)

// Stage names (Figure 10).
const (
	StListen = "ListenStage"
	StHTTP   = "HttpServer"
	StRead   = "ReadStage"
	StRecv   = "HttpRecv"
	StCache  = "CacheStage"
	StMiss   = "MissStage"
	StFileIO = "FileIOStage"
	StWrite  = "WriteStage"
)

// Config parameterises a run.
type Config struct {
	Mode            whodunit.Mode
	Trace           *workload.WebTrace
	CacheObjects    int
	ThreadsPerStage int
	// Per-operation CPU costs.
	ListenCost   whodunit.Duration
	AcceptCost   whodunit.Duration
	ReadCost     whodunit.Duration
	ParseCost    whodunit.Duration
	CacheCost    whodunit.Duration
	MissCost     whodunit.Duration
	DiskPerByte  whodunit.Duration
	DiskLatency  whodunit.Duration
	WritePerByte whodunit.Duration
}

// DefaultConfig matches the §8.3/§9.3 experiment scale (Haboob is an
// order of magnitude slower than Apache in the paper).
func DefaultConfig(trace *workload.WebTrace) Config {
	return Config{
		Mode:            whodunit.ModeWhodunit,
		Trace:           trace,
		CacheObjects:    300,
		ThreadsPerStage: 2,
		ListenCost:      20 * whodunit.Microsecond,
		AcceptCost:      60 * whodunit.Microsecond,
		ReadCost:        50 * whodunit.Microsecond,
		ParseCost:       80 * whodunit.Microsecond,
		CacheCost:       40 * whodunit.Microsecond,
		MissCost:        60 * whodunit.Microsecond,
		DiskPerByte:     25 * whodunit.Nanosecond,
		DiskLatency:     3 * whodunit.Millisecond,
		WritePerByte:    90 * whodunit.Nanosecond,
	}
}

// Result summarises a run.
type Result struct {
	Report         *whodunit.Report
	Profiler       *whodunit.Profiler
	Elapsed        whodunit.Duration
	BytesSent      int64
	Requests       int64
	Hits, Misses   int64
	ThroughputMbps float64
}

type task struct {
	conn workload.Connection
	next int
}

// Run drives the trace through the staged server.
func Run(cfg Config) *Result {
	if cfg.Trace == nil {
		panic("haboob: nil trace")
	}
	app := whodunit.NewApp("haboob", whodunit.WithMode(cfg.Mode), whodunit.WithCores(2))
	st := app.Stage("haboob")
	res := &Result{Profiler: st.Profiler()}

	cached := make(map[int]bool)
	cacheFIFO := []int{}
	cachePut := func(id int) {
		if cached[id] {
			return
		}
		if len(cacheFIFO) >= cfg.CacheObjects {
			delete(cached, cacheFIFO[0])
			cacheFIFO = cacheFIFO[1:]
		}
		cached[id] = true
		cacheFIFO = append(cacheFIFO, id)
	}

	// Declare the SEDA stages with queues as inputs.
	mkStage := func(name string) *whodunit.SEDAStage {
		return st.SEDAStage(name, app.NewQueue(name))
	}
	listen := mkStage(StListen)
	httpSrv := mkStage(StHTTP)
	read := mkStage(StRead)
	recv := mkStage(StRecv)
	cache := mkStage(StCache)
	miss := mkStage(StMiss)
	fileIO := mkStage(StFileIO)
	write := mkStage(StWrite)

	totalReqs := 0
	for _, c := range cfg.Trace.Conns {
		totalReqs += len(c.Reqs)
	}

	// handler bodies; each returns after enqueueing downstream.
	handlers := map[string]func(w *whodunit.SEDAWorker, pr *whodunit.Probe, th *whodunit.Thread, t *task){
		StListen: func(w *whodunit.SEDAWorker, pr *whodunit.Probe, th *whodunit.Thread, t *task) {
			pr.Compute(cfg.ListenCost)
			w.Enqueue(httpSrv, t)
		},
		StHTTP: func(w *whodunit.SEDAWorker, pr *whodunit.Probe, th *whodunit.Thread, t *task) {
			pr.Compute(cfg.AcceptCost)
			w.Enqueue(read, t)
		},
		StRead: func(w *whodunit.SEDAWorker, pr *whodunit.Probe, th *whodunit.Thread, t *task) {
			pr.Compute(cfg.ReadCost)
			w.Enqueue(recv, t)
		},
		StRecv: func(w *whodunit.SEDAWorker, pr *whodunit.Probe, th *whodunit.Thread, t *task) {
			pr.Compute(cfg.ParseCost)
			w.Enqueue(cache, t)
		},
		StCache: func(w *whodunit.SEDAWorker, pr *whodunit.Probe, th *whodunit.Thread, t *task) {
			pr.Compute(cfg.CacheCost)
			req := t.conn.Reqs[t.next]
			if cached[req.File] {
				res.Hits++
				w.Enqueue(write, t)
			} else {
				res.Misses++
				w.Enqueue(miss, t)
			}
		},
		StMiss: func(w *whodunit.SEDAWorker, pr *whodunit.Probe, th *whodunit.Thread, t *task) {
			pr.Compute(cfg.MissCost)
			w.Enqueue(fileIO, t)
		},
		StFileIO: func(w *whodunit.SEDAWorker, pr *whodunit.Probe, th *whodunit.Thread, t *task) {
			req := t.conn.Reqs[t.next]
			th.Sleep(cfg.DiskLatency)
			pr.Compute(whodunit.Duration(req.Size) * cfg.DiskPerByte)
			cachePut(req.File)
			w.Enqueue(write, t)
		},
		StWrite: func(w *whodunit.SEDAWorker, pr *whodunit.Probe, th *whodunit.Thread, t *task) {
			req := t.conn.Reqs[t.next]
			pr.Compute(whodunit.Duration(req.Size) * cfg.WritePerByte)
			res.BytesSent += req.Size
			res.Requests++
			t.next++
			if t.next < len(t.conn.Reqs) {
				// Persistent connection: back to ReadStage. The §4.2 loop
				// pruning keeps the context bounded.
				w.Enqueue(read, t)
			}
		},
	}

	stages := []*whodunit.SEDAStage{listen, httpSrv, read, recv, cache, miss, fileIO, write}
	for _, ss := range stages {
		q := ss.In.(*whodunit.Queue)
		for i := 0; i < cfg.ThreadsPerStage; i++ {
			st.Go(fmt.Sprintf("%s-%d", ss.Name, i), func(th *whodunit.Thread, pr *whodunit.Probe) {
				w := st.Worker(ss, pr)
				for {
					elem := q.Get(th).(*whodunit.SEDAElem)
					t := w.Begin(elem).(*task)
					func() {
						defer pr.Exit(pr.Enter(ss.Name))
						handlers[ss.Name](w, pr, th, t)
					}()
				}
			})
		}
	}

	// Inject one element per connection into the listen stage.
	for _, conn := range cfg.Trace.Conns {
		st.Inject(listen, &task{conn: conn})
	}

	rep := app.RunUntil(func() bool { return res.Requests >= int64(totalReqs) })
	res.Report = rep
	res.Elapsed = rep.Elapsed
	if res.Elapsed > 0 {
		res.ThroughputMbps = float64(res.BytesSent) * 8 / 1e6 / res.Elapsed.Seconds()
	}
	return res
}
