// Package haboob models the Haboob SEDA web server of §8.3: eight stages
// (ListenStage, HttpServer, ReadStage, HttpRecv, CacheStage, MissStage,
// File I/O, WriteStage) connected by stage queues, with an in-memory page
// cache. A transaction reaches WriteStage either via the cache-hit path
// (CacheStage→WriteStage) or the miss path (CacheStage→MissStage→File
// I/O→WriteStage), so WriteStage's CPU appears under two transaction
// contexts — the Figure 10 result.
package haboob

import (
	"fmt"

	"whodunit/internal/profiler"
	"whodunit/internal/seda"
	"whodunit/internal/tranctx"
	"whodunit/internal/vclock"
	"whodunit/internal/workload"
)

// Stage names (Figure 10).
const (
	StListen = "ListenStage"
	StHTTP   = "HttpServer"
	StRead   = "ReadStage"
	StRecv   = "HttpRecv"
	StCache  = "CacheStage"
	StMiss   = "MissStage"
	StFileIO = "FileIOStage"
	StWrite  = "WriteStage"
)

// Config parameterises a run.
type Config struct {
	Mode            profiler.Mode
	Trace           *workload.WebTrace
	CacheObjects    int
	ThreadsPerStage int
	// Per-operation CPU costs.
	ListenCost   vclock.Duration
	AcceptCost   vclock.Duration
	ReadCost     vclock.Duration
	ParseCost    vclock.Duration
	CacheCost    vclock.Duration
	MissCost     vclock.Duration
	DiskPerByte  vclock.Duration
	DiskLatency  vclock.Duration
	WritePerByte vclock.Duration
}

// DefaultConfig matches the §8.3/§9.3 experiment scale (Haboob is an
// order of magnitude slower than Apache in the paper).
func DefaultConfig(trace *workload.WebTrace) Config {
	return Config{
		Mode:            profiler.ModeWhodunit,
		Trace:           trace,
		CacheObjects:    300,
		ThreadsPerStage: 2,
		ListenCost:      20 * vclock.Microsecond,
		AcceptCost:      60 * vclock.Microsecond,
		ReadCost:        50 * vclock.Microsecond,
		ParseCost:       80 * vclock.Microsecond,
		CacheCost:       40 * vclock.Microsecond,
		MissCost:        60 * vclock.Microsecond,
		DiskPerByte:     25 * vclock.Nanosecond,
		DiskLatency:     3 * vclock.Millisecond,
		WritePerByte:    90 * vclock.Nanosecond,
	}
}

// Result summarises a run.
type Result struct {
	Profiler       *profiler.Profiler
	Elapsed        vclock.Duration
	BytesSent      int64
	Requests       int64
	Hits, Misses   int64
	ThroughputMbps float64
}

type task struct {
	conn workload.Connection
	next int
}

// Run drives the trace through the staged server.
func Run(cfg Config) *Result {
	if cfg.Trace == nil {
		panic("haboob: nil trace")
	}
	s := vclock.New()
	cpu := s.NewCPU("haboob-cpu", 2)
	prof := profiler.New("haboob", cfg.Mode)
	res := &Result{Profiler: prof}

	cached := make(map[int]bool)
	cacheFIFO := []int{}
	cachePut := func(id int) {
		if cached[id] {
			return
		}
		if len(cacheFIFO) >= cfg.CacheObjects {
			delete(cached, cacheFIFO[0])
			cacheFIFO = cacheFIFO[1:]
		}
		cached[id] = true
		cacheFIFO = append(cacheFIFO, id)
	}

	// Build stages with vclock queues as inputs.
	mkStage := func(name string) *seda.Stage {
		return seda.NewStage("haboob", name, s.NewQueue(name))
	}
	listen := mkStage(StListen)
	httpSrv := mkStage(StHTTP)
	read := mkStage(StRead)
	recv := mkStage(StRecv)
	cache := mkStage(StCache)
	miss := mkStage(StMiss)
	fileIO := mkStage(StFileIO)
	write := mkStage(StWrite)

	totalReqs := 0
	for _, c := range cfg.Trace.Conns {
		totalReqs += len(c.Reqs)
	}

	// handler bodies; each returns after enqueueing downstream.
	handlers := map[string]func(w *seda.Worker, pr *profiler.Probe, th *vclock.Thread, t *task){
		StListen: func(w *seda.Worker, pr *profiler.Probe, th *vclock.Thread, t *task) {
			pr.Compute(cfg.ListenCost)
			w.Enqueue(httpSrv, t)
		},
		StHTTP: func(w *seda.Worker, pr *profiler.Probe, th *vclock.Thread, t *task) {
			pr.Compute(cfg.AcceptCost)
			w.Enqueue(read, t)
		},
		StRead: func(w *seda.Worker, pr *profiler.Probe, th *vclock.Thread, t *task) {
			pr.Compute(cfg.ReadCost)
			w.Enqueue(recv, t)
		},
		StRecv: func(w *seda.Worker, pr *profiler.Probe, th *vclock.Thread, t *task) {
			pr.Compute(cfg.ParseCost)
			w.Enqueue(cache, t)
		},
		StCache: func(w *seda.Worker, pr *profiler.Probe, th *vclock.Thread, t *task) {
			pr.Compute(cfg.CacheCost)
			req := t.conn.Reqs[t.next]
			if cached[req.File] {
				res.Hits++
				w.Enqueue(write, t)
			} else {
				res.Misses++
				w.Enqueue(miss, t)
			}
		},
		StMiss: func(w *seda.Worker, pr *profiler.Probe, th *vclock.Thread, t *task) {
			pr.Compute(cfg.MissCost)
			w.Enqueue(fileIO, t)
		},
		StFileIO: func(w *seda.Worker, pr *profiler.Probe, th *vclock.Thread, t *task) {
			req := t.conn.Reqs[t.next]
			th.Sleep(cfg.DiskLatency)
			pr.Compute(vclock.Duration(req.Size) * cfg.DiskPerByte)
			cachePut(req.File)
			w.Enqueue(write, t)
		},
		StWrite: func(w *seda.Worker, pr *profiler.Probe, th *vclock.Thread, t *task) {
			req := t.conn.Reqs[t.next]
			pr.Compute(vclock.Duration(req.Size) * cfg.WritePerByte)
			res.BytesSent += req.Size
			res.Requests++
			t.next++
			if t.next < len(t.conn.Reqs) {
				// Persistent connection: back to ReadStage. The §4.2 loop
				// pruning keeps the context bounded.
				w.Enqueue(read, t)
			}
		},
	}

	stages := []*seda.Stage{listen, httpSrv, read, recv, cache, miss, fileIO, write}
	for _, st := range stages {
		st := st
		for i := 0; i < cfg.ThreadsPerStage; i++ {
			s.Go(fmt.Sprintf("%s-%d", st.Name, i), func(th *vclock.Thread) {
				pr := prof.NewProbe(th, cpu)
				th.Data = pr
				w := seda.NewWorker(st, prof.Table)
				if cfg.Mode == profiler.ModeWhodunit {
					w.OnDispatch = func(curr *tranctx.Ctxt) { pr.SetLocal(curr) }
				}
				q := st.In.(*vclock.Queue)
				for {
					elem := th.Get(q).(*seda.Elem)
					t := w.Begin(elem).(*task)
					func() {
						defer pr.Exit(pr.Enter(st.Name))
						handlers[st.Name](w, pr, th, t)
					}()
				}
			})
		}
	}

	// Inject one element per connection into the listen stage.
	for _, conn := range cfg.Trace.Conns {
		seda.Inject(prof.Table, listen, &task{conn: conn})
	}

	s.RunUntil(func() bool { return res.Requests >= int64(totalReqs) })
	res.Elapsed = s.Now().Sub(0)
	s.Shutdown()
	if res.Elapsed > 0 {
		res.ThroughputMbps = float64(res.BytesSent) * 8 / 1e6 / res.Elapsed.Seconds()
	}
	return res
}
