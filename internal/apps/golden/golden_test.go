// Package golden pins the Text and JSON reports of the four internal
// app models at fixed seeds and reduced scales. The goldens were
// captured from the pre-App/Stage implementations; the ported models
// must reproduce them bit for bit — same samples, same crosstalk
// matrix, same detected flows, same stitched graph — so the App/Stage
// port is provably a pure refactor of the plumbing, not of the model.
//
// Regenerate with `go test ./internal/apps/golden -update` (only when a
// deliberate model change invalidates the pinned output).
package golden_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"whodunit"
	"whodunit/internal/apps/apacheweb"
	"whodunit/internal/apps/haboob"
	"whodunit/internal/apps/squidproxy"
	"whodunit/internal/apps/tpcw"
	"whodunit/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// goldenTrace is the fixed web workload shared by the three web-server
// models (the same shape the unit tests use).
func goldenTrace() *workload.WebTrace {
	cfg := workload.DefaultWebConfig()
	cfg.NumConns = 150
	cfg.NumFiles = 200
	cfg.MinSize = 8 << 10
	return workload.GenWeb(cfg)
}

func apacheReport() *whodunit.Report {
	res := apacheweb.Run(apacheweb.DefaultConfig(goldenTrace()))
	rep := whodunit.NewReport("apache", whodunit.NewStageReport(res.Profiler))
	rep.Elapsed = res.Elapsed
	rep.Flows = res.Flows
	return rep
}

func squidReport() *whodunit.Report {
	res := squidproxy.Run(squidproxy.DefaultConfig(goldenTrace()))
	rep := whodunit.NewReport("squid", whodunit.NewStageReport(res.Profiler))
	rep.Elapsed = res.Elapsed
	return rep
}

func haboobReport() *whodunit.Report {
	res := haboob.Run(haboob.DefaultConfig(goldenTrace()))
	rep := whodunit.NewReport("haboob", whodunit.NewStageReport(res.Profiler))
	rep.Elapsed = res.Elapsed
	return rep
}

func tpcwReport() *whodunit.Report {
	cfg := tpcw.DefaultConfig(25)
	cfg.Duration = 45 * whodunit.Second
	res := tpcw.Run(cfg)
	rep := whodunit.NewReport("tpcw",
		whodunit.NewStageReport(res.SquidProf, res.SquidEP),
		whodunit.NewStageReport(res.TomcatProf, res.TomcatEP),
		whodunit.NewStageReport(res.MySQLProf, res.MySQLEP))
	rep.Elapsed = res.Elapsed
	rep.Crosstalk = res.Crosstalk.Pairs()
	return rep
}

func check(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to capture): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		dump := filepath.Join(os.TempDir(), "whodunit-golden-"+name+".got")
		_ = os.WriteFile(dump, got, 0o644)
		t.Errorf("%s drifted from the pinned pre-port report (%d bytes vs %d); "+
			"the App/Stage model must be bit-identical (got written to %s)",
			name, len(got), len(want), dump)
	}
}

func renderBoth(t *testing.T, app string, rep *whodunit.Report) {
	t.Helper()
	var txt, js bytes.Buffer
	rep.Text(&txt)
	if err := rep.JSON(&js); err != nil {
		t.Fatal(err)
	}
	check(t, app+".text", txt.Bytes())
	check(t, app+".json", js.Bytes())
}

func TestGoldenApache(t *testing.T) { renderBoth(t, "apache", apacheReport()) }
func TestGoldenSquid(t *testing.T)  { renderBoth(t, "squid", squidReport()) }
func TestGoldenHaboob(t *testing.T) { renderBoth(t, "haboob", haboobReport()) }
func TestGoldenTPCW(t *testing.T)   { renderBoth(t, "tpcw", tpcwReport()) }
