package squidproxy

import (
	"strings"
	"testing"

	"whodunit/internal/profiler"
	"whodunit/internal/workload"
)

func trace() *workload.WebTrace {
	cfg := workload.DefaultWebConfig()
	cfg.NumConns = 200
	cfg.NumFiles = 500
	cfg.MinSize = 8 << 10
	return workload.GenWeb(cfg)
}

func TestServesAllRequests(t *testing.T) {
	tr := trace()
	res := Run(DefaultConfig(tr))
	want := int64(0)
	for _, c := range tr.Conns {
		want += int64(len(c.Reqs))
	}
	if res.Requests != want {
		t.Fatalf("requests = %d, want %d", res.Requests, want)
	}
	if res.Hits == 0 || res.Misses == 0 {
		t.Fatalf("need both hits (%d) and misses (%d) for Figure 9", res.Hits, res.Misses)
	}
	if res.Hits+res.Misses != want {
		t.Fatalf("hits+misses = %d, want %d", res.Hits+res.Misses, want)
	}
}

func TestWriteHandlerAppearsInTwoContexts(t *testing.T) {
	// The Figure 9 result: commHandleWrite's CPU is split between the hit
	// context (accept|read|write) and the miss context
	// (accept|read|connect|readReply|write).
	res := Run(DefaultConfig(trace()))
	var hitCtxt, missCtxt bool
	for _, sh := range res.Profiler.Shares() {
		if !strings.Contains(sh.Label, "commHandleWrite") || sh.Samples == 0 {
			continue
		}
		if strings.Contains(sh.Label, "httpReadReply") {
			missCtxt = true
		} else {
			hitCtxt = true
		}
	}
	if !hitCtxt || !missCtxt {
		t.Fatalf("write handler contexts: hit=%v miss=%v; shares=%+v", hitCtxt, missCtxt, res.Profiler.Shares())
	}
}

func TestContextsAreHandlerSequences(t *testing.T) {
	res := Run(DefaultConfig(trace()))
	foundMissSeq := false
	for _, e := range res.Profiler.Entries() {
		labels := e.Ctxt.Local.Labels()
		if len(labels) == 5 && labels[0] == "httpAccept" && labels[4] == "commHandleWrite" {
			foundMissSeq = true
		}
		// No context may grow beyond the five distinct handlers: loop
		// pruning must keep persistent connections bounded (§4.1).
		if len(labels) > 5 {
			t.Fatalf("context too long (pruning broken): %v", labels)
		}
	}
	if !foundMissSeq {
		t.Fatal("full miss sequence context not established")
	}
}

func TestCacheHitsIncreaseWithCapacity(t *testing.T) {
	tr := trace()
	small := DefaultConfig(tr)
	small.CacheObjects = 10
	big := DefaultConfig(tr)
	big.CacheObjects = 100000
	rs, rb := Run(small), Run(big)
	if rb.Hits <= rs.Hits {
		t.Fatalf("bigger cache should hit more: %d vs %d", rb.Hits, rs.Hits)
	}
}

func TestProfilingOverheadModest(t *testing.T) {
	// §9.3: Squid's throughput drops only ~5% under Whodunit.
	tr := trace()
	off := DefaultConfig(tr)
	off.Mode = profiler.ModeOff
	a := Run(off)
	b := Run(DefaultConfig(tr))
	if a.BytesSent != b.BytesSent {
		t.Fatalf("byte counts differ: %d vs %d", a.BytesSent, b.BytesSent)
	}
	overhead := (a.ThroughputMbps - b.ThroughputMbps) / a.ThroughputMbps
	if overhead < 0 || overhead > 0.15 {
		t.Fatalf("overhead = %.2f%%, want small positive", overhead*100)
	}
}

func TestDeterministic(t *testing.T) {
	a := Run(DefaultConfig(trace()))
	b := Run(DefaultConfig(trace()))
	if a.Elapsed != b.Elapsed || a.Hits != b.Hits {
		t.Fatal("squid runs diverged")
	}
}
