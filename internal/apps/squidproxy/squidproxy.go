// Package squidproxy models the Squid web proxy cache of §8.2: an
// event-driven, single-threaded server built on the event library, with
// the five handlers of Figure 9 — httpAccept, clientReadRequest,
// commConnectHandle, httpReadReply, commHandleWrite — and an LRU object
// cache. Cache hits take the short handler sequence
// (accept→read→write) and misses the long one
// (accept→read→connect→readReply→write), so the write handler's CPU
// appears under two distinct transaction contexts, which is exactly the
// distinction Figure 9 highlights.
package squidproxy

import (
	"container/list"

	"whodunit/internal/event"
	"whodunit/internal/profiler"
	"whodunit/internal/tranctx"
	"whodunit/internal/vclock"
	"whodunit/internal/workload"
)

// Config parameterises a run.
type Config struct {
	Mode  profiler.Mode
	Trace *workload.WebTrace
	// CacheObjects is the LRU capacity in objects.
	CacheObjects int
	// OriginDelay is the network+origin latency for a miss.
	OriginDelay vclock.Duration
	// Per-unit CPU costs.
	AcceptCost   vclock.Duration
	ParseCost    vclock.Duration
	ConnectCost  vclock.Duration
	RecvPerByte  vclock.Duration // receiving origin data (miss)
	WritePerByte vclock.Duration // writing the reply to the client
}

// DefaultConfig mirrors the §8.2 experiment: same web trace as Apache,
// origin on a separate machine.
func DefaultConfig(trace *workload.WebTrace) Config {
	return Config{
		Mode:         profiler.ModeWhodunit,
		Trace:        trace,
		CacheObjects: 400,
		OriginDelay:  2 * vclock.Millisecond,
		AcceptCost:   40 * vclock.Microsecond,
		ParseCost:    70 * vclock.Microsecond,
		ConnectCost:  50 * vclock.Microsecond,
		RecvPerByte:  10 * vclock.Nanosecond,
		WritePerByte: 14 * vclock.Nanosecond,
	}
}

// Result summarises a run.
type Result struct {
	Profiler       *profiler.Profiler
	Loop           *event.Loop
	Elapsed        vclock.Duration
	BytesSent      int64
	Requests       int64
	Hits, Misses   int64
	ThroughputMbps float64
}

// lru is a tiny LRU set of file ids.
type lru struct {
	cap   int
	order *list.List
	items map[int]*list.Element
}

func newLRU(cap int) *lru {
	return &lru{cap: cap, order: list.New(), items: make(map[int]*list.Element)}
}

func (c *lru) get(id int) bool {
	el, ok := c.items[id]
	if ok {
		c.order.MoveToFront(el)
	}
	return ok
}

func (c *lru) put(id int) {
	if el, ok := c.items[id]; ok {
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.cap {
		back := c.order.Back()
		if back != nil {
			delete(c.items, back.Value.(int))
			c.order.Remove(back)
		}
	}
	c.items[id] = c.order.PushFront(id)
}

// connState is the per-connection continuation data threaded through the
// handlers.
type connState struct {
	conn workload.Connection
	next int // index of the next request to serve
}

// Run drives the trace through the proxy and returns its transactional
// profile and throughput.
func Run(cfg Config) *Result {
	if cfg.Trace == nil {
		panic("squidproxy: nil trace")
	}
	s := vclock.New()
	cpu := s.NewCPU("squid-cpu", 1)
	prof := profiler.New("squid", cfg.Mode)
	loop := event.NewLoop("squid", prof.Table)
	cache := newLRU(cfg.CacheObjects)
	res := &Result{Profiler: prof, Loop: loop}

	readyQ := s.NewQueue("ready-events")
	var pr *profiler.Probe

	// Whodunit hook: the loop's freshly computed transaction context
	// becomes the probe's local context, so every sample under the handler
	// is annotated with the event-handler sequence (§4.1).
	loop.OnDispatch = func(curr *tranctx.Ctxt) {
		if pr != nil && cfg.Mode == profiler.ModeWhodunit {
			pr.SetLocal(curr)
		}
	}

	// Handlers (Figure 9). Each models its I/O latency by scheduling the
	// next event's readiness after a delay, and its CPU by Compute.
	var hAccept, hRead, hConnect, hReadReply, hWrite *event.Handler

	ioReady := func(ev *event.Event, after vclock.Duration) {
		s.After(after, func() { readyQ.Put(ev) })
	}

	hWrite = &event.Handler{Name: "commHandleWrite", Fn: func(l *event.Loop, ev *event.Event) {
		st := ev.Data.(*connState)
		req := st.conn.Reqs[st.next]
		func() {
			defer pr.Exit(pr.Enter("commHandleWrite"))
			pr.Compute(vclock.Duration(req.Size) * cfg.WritePerByte)
		}()
		res.BytesSent += req.Size
		res.Requests++
		st.next++
		if st.next < len(st.conn.Reqs) {
			// Persistent connection: wait for the next request — this is
			// the loop the §4.1 pruning keeps bounded.
			ioReady(l.NewEvent(hRead, st), 100*vclock.Microsecond)
		}
	}}

	hReadReply = &event.Handler{Name: "httpReadReply", Fn: func(l *event.Loop, ev *event.Event) {
		st := ev.Data.(*connState)
		req := st.conn.Reqs[st.next]
		func() {
			defer pr.Exit(pr.Enter("httpReadReply"))
			pr.Compute(vclock.Duration(req.Size) * cfg.RecvPerByte)
		}()
		cache.put(req.File)
		ioReady(l.NewEvent(hWrite, st), 50*vclock.Microsecond)
	}}

	hConnect = &event.Handler{Name: "commConnectHandle", Fn: func(l *event.Loop, ev *event.Event) {
		st := ev.Data.(*connState)
		func() {
			defer pr.Exit(pr.Enter("commConnectHandle"))
			pr.Compute(cfg.ConnectCost)
		}()
		ioReady(l.NewEvent(hReadReply, st), cfg.OriginDelay)
	}}

	hRead = &event.Handler{Name: "clientReadRequest", Fn: func(l *event.Loop, ev *event.Event) {
		st := ev.Data.(*connState)
		req := st.conn.Reqs[st.next]
		func() {
			defer pr.Exit(pr.Enter("clientReadRequest"))
			pr.Compute(cfg.ParseCost)
		}()
		if cache.get(req.File) {
			res.Hits++
			ioReady(l.NewEvent(hWrite, st), 20*vclock.Microsecond)
		} else {
			res.Misses++
			ioReady(l.NewEvent(hConnect, st), 30*vclock.Microsecond)
		}
	}}

	hAccept = &event.Handler{Name: "httpAccept", Fn: func(l *event.Loop, ev *event.Event) {
		st := ev.Data.(*connState)
		func() {
			defer pr.Exit(pr.Enter("httpAccept"))
			pr.Compute(cfg.AcceptCost)
		}()
		ioReady(l.NewEvent(hRead, st), 40*vclock.Microsecond)
	}}

	// Inject connection arrivals: accepts become ready back-to-back.
	for _, conn := range cfg.Trace.Conns {
		readyQ.Put(&event.Event{Handler: hAccept, Ctxt: prof.Table.Root(), Data: &connState{conn: conn}})
	}
	totalReqs := 0
	for _, c := range cfg.Trace.Conns {
		totalReqs += len(c.Reqs)
	}

	s.Go("comm_poll", func(th *vclock.Thread) {
		pr = prof.NewProbe(th, cpu)
		th.Data = pr
		defer pr.Exit(pr.Enter("main"))
		defer pr.Exit(pr.Enter("comm_poll"))
		for res.Requests < int64(totalReqs) {
			ev := th.Get(readyQ).(*event.Event)
			loop.Dispatch(ev)
		}
	})

	s.Run()
	res.Elapsed = s.Now().Sub(0)
	s.Shutdown()
	if res.Elapsed > 0 {
		res.ThroughputMbps = float64(res.BytesSent) * 8 / 1e6 / res.Elapsed.Seconds()
	}
	return res
}
