// Package squidproxy models the Squid web proxy cache of §8.2: an
// event-driven, single-threaded server built on the event library, with
// the five handlers of Figure 9 — httpAccept, clientReadRequest,
// commConnectHandle, httpReadReply, commHandleWrite — and an LRU object
// cache. Cache hits take the short handler sequence
// (accept→read→write) and misses the long one
// (accept→read→connect→readReply→write), so the write handler's CPU
// appears under two distinct transaction contexts, which is exactly the
// distinction Figure 9 highlights.
//
// The model is an App/Stage composition: the stage's event loop is
// bound to the dispatching probe (Stage.BindLoop), so every handler's
// samples land in the handler-sequence context with no instrumentation
// in the handlers themselves.
package squidproxy

import (
	"container/list"

	"whodunit"
	"whodunit/internal/workload"
)

// Config parameterises a run.
type Config struct {
	Mode  whodunit.Mode
	Trace *workload.WebTrace
	// CacheObjects is the LRU capacity in objects.
	CacheObjects int
	// OriginDelay is the network+origin latency for a miss.
	OriginDelay whodunit.Duration
	// Per-unit CPU costs.
	AcceptCost   whodunit.Duration
	ParseCost    whodunit.Duration
	ConnectCost  whodunit.Duration
	RecvPerByte  whodunit.Duration // receiving origin data (miss)
	WritePerByte whodunit.Duration // writing the reply to the client
}

// DefaultConfig mirrors the §8.2 experiment: same web trace as Apache,
// origin on a separate machine.
func DefaultConfig(trace *workload.WebTrace) Config {
	return Config{
		Mode:         whodunit.ModeWhodunit,
		Trace:        trace,
		CacheObjects: 400,
		OriginDelay:  2 * whodunit.Millisecond,
		AcceptCost:   40 * whodunit.Microsecond,
		ParseCost:    70 * whodunit.Microsecond,
		ConnectCost:  50 * whodunit.Microsecond,
		RecvPerByte:  10 * whodunit.Nanosecond,
		WritePerByte: 14 * whodunit.Nanosecond,
	}
}

// Result summarises a run.
type Result struct {
	Report         *whodunit.Report
	Profiler       *whodunit.Profiler
	Loop           *whodunit.EventLoop
	Elapsed        whodunit.Duration
	BytesSent      int64
	Requests       int64
	Hits, Misses   int64
	ThroughputMbps float64
}

// lru is a tiny LRU set of file ids.
type lru struct {
	cap   int
	order *list.List
	items map[int]*list.Element
}

func newLRU(cap int) *lru {
	return &lru{cap: cap, order: list.New(), items: make(map[int]*list.Element)}
}

func (c *lru) get(id int) bool {
	el, ok := c.items[id]
	if ok {
		c.order.MoveToFront(el)
	}
	return ok
}

func (c *lru) put(id int) {
	if el, ok := c.items[id]; ok {
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.cap {
		back := c.order.Back()
		if back != nil {
			delete(c.items, back.Value.(int))
			c.order.Remove(back)
		}
	}
	c.items[id] = c.order.PushFront(id)
}

// connState is the per-connection continuation data threaded through the
// handlers.
type connState struct {
	conn workload.Connection
	next int // index of the next request to serve
}

// Run drives the trace through the proxy and returns its transactional
// profile and throughput.
func Run(cfg Config) *Result {
	if cfg.Trace == nil {
		panic("squidproxy: nil trace")
	}
	app := whodunit.NewApp("squid", whodunit.WithMode(cfg.Mode), whodunit.WithCores(1))
	st := app.Stage("squid")
	loop := st.EventLoop()
	cache := newLRU(cfg.CacheObjects)
	res := &Result{Profiler: st.Profiler(), Loop: loop}

	readyQ := app.NewQueue("ready-events")
	sim := app.Sim()
	var pr *whodunit.Probe

	// Handlers (Figure 9). Each models its I/O latency by scheduling the
	// next event's readiness after a delay, and its CPU by Compute.
	var hAccept, hRead, hConnect, hReadReply, hWrite *whodunit.EventHandler

	ioReady := func(ev *whodunit.Event, after whodunit.Duration) {
		sim.After(after, func() { readyQ.Put(ev) })
	}

	hWrite = &whodunit.EventHandler{Name: "commHandleWrite", Fn: func(l *whodunit.EventLoop, ev *whodunit.Event) {
		st := ev.Data.(*connState)
		req := st.conn.Reqs[st.next]
		func() {
			defer pr.Exit(pr.Enter("commHandleWrite"))
			pr.Compute(whodunit.Duration(req.Size) * cfg.WritePerByte)
		}()
		res.BytesSent += req.Size
		res.Requests++
		st.next++
		if st.next < len(st.conn.Reqs) {
			// Persistent connection: wait for the next request — this is
			// the loop the §4.1 pruning keeps bounded.
			ioReady(l.NewEvent(hRead, st), 100*whodunit.Microsecond)
		}
	}}

	hReadReply = &whodunit.EventHandler{Name: "httpReadReply", Fn: func(l *whodunit.EventLoop, ev *whodunit.Event) {
		st := ev.Data.(*connState)
		req := st.conn.Reqs[st.next]
		func() {
			defer pr.Exit(pr.Enter("httpReadReply"))
			pr.Compute(whodunit.Duration(req.Size) * cfg.RecvPerByte)
		}()
		cache.put(req.File)
		ioReady(l.NewEvent(hWrite, st), 50*whodunit.Microsecond)
	}}

	hConnect = &whodunit.EventHandler{Name: "commConnectHandle", Fn: func(l *whodunit.EventLoop, ev *whodunit.Event) {
		st := ev.Data.(*connState)
		func() {
			defer pr.Exit(pr.Enter("commConnectHandle"))
			pr.Compute(cfg.ConnectCost)
		}()
		ioReady(l.NewEvent(hReadReply, st), cfg.OriginDelay)
	}}

	hRead = &whodunit.EventHandler{Name: "clientReadRequest", Fn: func(l *whodunit.EventLoop, ev *whodunit.Event) {
		st := ev.Data.(*connState)
		req := st.conn.Reqs[st.next]
		func() {
			defer pr.Exit(pr.Enter("clientReadRequest"))
			pr.Compute(cfg.ParseCost)
		}()
		if cache.get(req.File) {
			res.Hits++
			ioReady(l.NewEvent(hWrite, st), 20*whodunit.Microsecond)
		} else {
			res.Misses++
			ioReady(l.NewEvent(hConnect, st), 30*whodunit.Microsecond)
		}
	}}

	hAccept = &whodunit.EventHandler{Name: "httpAccept", Fn: func(l *whodunit.EventLoop, ev *whodunit.Event) {
		st := ev.Data.(*connState)
		func() {
			defer pr.Exit(pr.Enter("httpAccept"))
			pr.Compute(cfg.AcceptCost)
		}()
		ioReady(l.NewEvent(hRead, st), 40*whodunit.Microsecond)
	}}

	// Inject connection arrivals: accepts become ready back-to-back. The
	// loop has dispatched nothing yet, so NewEvent captures the root
	// (external stimulus) context.
	for _, conn := range cfg.Trace.Conns {
		readyQ.Put(loop.NewEvent(hAccept, &connState{conn: conn}))
	}
	totalReqs := 0
	for _, c := range cfg.Trace.Conns {
		totalReqs += len(c.Reqs)
	}

	st.Go("comm_poll", func(th *whodunit.Thread, probe *whodunit.Probe) {
		pr = probe
		st.BindLoop(pr)
		defer pr.Exit(pr.Enter("main"))
		defer pr.Exit(pr.Enter("comm_poll"))
		for res.Requests < int64(totalReqs) {
			loop.Dispatch(readyQ.Get(th).(*whodunit.Event))
		}
	})

	rep := app.Run()
	res.Report = rep
	res.Elapsed = rep.Elapsed
	if res.Elapsed > 0 {
		res.ThroughputMbps = float64(res.BytesSent) * 8 / 1e6 / res.Elapsed.Seconds()
	}
	return res
}
