package tranctx

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestRootProperties(t *testing.T) {
	tb := NewTable()
	r := tb.Root()
	if !r.IsRoot() || r.Depth() != 0 || r.Synopsis() != 0 {
		t.Fatalf("root malformed: depth=%d syn=%d", r.Depth(), r.Synopsis())
	}
	if got, ok := tb.Lookup(0); !ok || got != r {
		t.Fatal("Lookup(0) should return the root")
	}
}

func TestExtendInterns(t *testing.T) {
	tb := NewTable()
	a := tb.Root().Extend(CallHop("web", "main", "foo"))
	b := tb.Root().Extend(CallHop("web", "main", "foo"))
	if a != b {
		t.Fatal("identical extensions should intern to the same context")
	}
	c := tb.Root().Extend(CallHop("web", "main", "bar"))
	if a == c {
		t.Fatal("different paths should intern differently")
	}
	if tb.Size() != 3 { // root, foo, bar
		t.Fatalf("table size = %d, want 3", tb.Size())
	}
}

func TestSynopsisRoundTrip(t *testing.T) {
	tb := NewTable()
	c := tb.Root().
		Extend(CallHop("web", "main", "handle")).
		Extend(CallHop("app", "main", "servlet", "query"))
	got, ok := tb.Lookup(c.Synopsis())
	if !ok || got != c {
		t.Fatal("synopsis did not round-trip through the table")
	}
}

func TestHopStringForms(t *testing.T) {
	cases := []struct {
		hop  Hop
		want string
	}{
		{CallHop("web", "main", "send"), "web:main>send"},
		{HandlerHop("squid", "httpAccept"), "squid@httpAccept"},
		{StageHop("haboob", "ReadStage"), "haboob#ReadStage"},
	}
	for _, c := range cases {
		if got := c.hop.String(); got != c.want {
			t.Errorf("hop string = %q, want %q", got, c.want)
		}
	}
}

func TestAppendCollapsesConsecutive(t *testing.T) {
	// §4.1: [evhA, evhB, evhB, evhB] collapses to [evhA, evhB].
	tb := NewTable()
	c := tb.Root().Append(HandlerHop("srv", "A"))
	c = c.Append(HandlerHop("srv", "B"))
	c2 := c.Append(HandlerHop("srv", "B"))
	if c2 != c {
		t.Fatalf("consecutive handler should collapse: got %v", c2.Labels())
	}
	c3 := c2.Append(HandlerHop("srv", "B")).Append(HandlerHop("srv", "B"))
	if !reflect.DeepEqual(c3.Labels(), []string{"A", "B"}) {
		t.Fatalf("labels = %v, want [A B]", c3.Labels())
	}
}

func TestAppendPrunesLoops(t *testing.T) {
	// §4.1: [accept, read, write] + read prunes to [accept, read]
	// (persistent connection example).
	tb := NewTable()
	c := tb.Root().
		Append(HandlerHop("srv", "accept")).
		Append(HandlerHop("srv", "read")).
		Append(HandlerHop("srv", "write"))
	pruned := c.Append(HandlerHop("srv", "read"))
	if !reflect.DeepEqual(pruned.Labels(), []string{"accept", "read"}) {
		t.Fatalf("labels = %v, want [accept read]", pruned.Labels())
	}
	// Continuing the persistent connection keeps the context bounded.
	again := pruned.Append(HandlerHop("srv", "write")).Append(HandlerHop("srv", "read"))
	if again != pruned {
		t.Fatalf("looping contexts should be stable, got %v", again.Labels())
	}
}

func TestAppendDoesNotPruneAcrossStages(t *testing.T) {
	// A call-path hop between handler segments breaks the prune search:
	// contexts from *earlier stages* are never rewritten.
	tb := NewTable()
	c := tb.Root().
		Append(HandlerHop("front", "read")).
		Extend(CallHop("back", "main", "recv")).
		Append(HandlerHop("back", "read"))
	if !reflect.DeepEqual(c.Labels(), []string{"read", "main>recv", "read"}) {
		t.Fatalf("labels = %v; prune must not cross the call hop", c.Labels())
	}
	// Same handler name in a *different stage* segment is also untouched.
	d := c.Append(HandlerHop("back", "write")).Append(HandlerHop("back", "read"))
	if !reflect.DeepEqual(d.Labels(), []string{"read", "main>recv", "read"}) {
		t.Fatalf("labels = %v; loop prune should stay within back's segment", d.Labels())
	}
}

func TestStageHopsFollowSameRules(t *testing.T) {
	// §4.2: SEDA stage sequences use the same collapse/prune mechanism.
	tb := NewTable()
	c := tb.Root().
		Append(StageHop("haboob", "Read")).
		Append(StageHop("haboob", "Cache")).
		Append(StageHop("haboob", "Write"))
	back := c.Append(StageHop("haboob", "Read"))
	if !reflect.DeepEqual(back.Labels(), []string{"Read"}) {
		// first occurrence of Read is the first hop
		t.Fatalf("labels = %v, want [Read]", back.Labels())
	}
}

func TestHasPrefix(t *testing.T) {
	tb := NewTable()
	a := tb.Root().Extend(CallHop("w", "main"))
	b := a.Extend(CallHop("x", "srv"))
	if !b.HasPrefix(a) || !b.HasPrefix(tb.Root()) || !b.HasPrefix(b) {
		t.Fatal("prefix relations wrong")
	}
	if a.HasPrefix(b) {
		t.Fatal("a should not have deeper b as prefix")
	}
	other := NewTable().Root()
	if b.HasPrefix(other) {
		t.Fatal("prefix must not cross tables")
	}
}

func TestHopsOrder(t *testing.T) {
	tb := NewTable()
	c := tb.Root().
		Extend(CallHop("w", "main", "a")).
		Extend(CallHop("x", "main", "b"))
	hops := c.Hops()
	if len(hops) != 2 || hops[0].Stage != "w" || hops[1].Stage != "x" {
		t.Fatalf("hops = %v, want w then x", hops)
	}
}

func TestStringRendering(t *testing.T) {
	tb := NewTable()
	if tb.Root().String() != "(root)" {
		t.Fatalf("root string = %q", tb.Root().String())
	}
	c := tb.Root().Extend(CallHop("w", "main")).Append(HandlerHop("w", "h"))
	want := "w:main | w@h"
	if c.String() != want {
		t.Fatalf("string = %q, want %q", c.String(), want)
	}
}

func TestChainWireRoundTrip(t *testing.T) {
	ch := Chain{1, 0xdeadbeef, 42}
	buf := ch.AppendWire(nil)
	if len(buf) != ch.WireSize() {
		t.Fatalf("encoded %d bytes, WireSize says %d", len(buf), ch.WireSize())
	}
	got, n, err := DecodeChain(buf)
	if err != nil || n != len(buf) || !got.Equal(ch) {
		t.Fatalf("round trip failed: %v %d %v", got, n, err)
	}
}

func TestChainDecodeErrors(t *testing.T) {
	if _, _, err := DecodeChain(nil); err == nil {
		t.Fatal("empty buffer should fail")
	}
	if _, _, err := DecodeChain([]byte{2, 0, 0, 0, 1}); err == nil {
		t.Fatal("truncated chain should fail")
	}
	if _, _, err := DecodeChain([]byte{255}); err == nil {
		t.Fatal("oversized chain should fail")
	}
}

func TestChainString(t *testing.T) {
	ch := Chain{0x0a, 0x0b}
	if ch.String() != "0000000a#0000000b" {
		t.Fatalf("chain string = %q", ch.String())
	}
}

func TestQuickChainRoundTrip(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) > chainMax {
			raw = raw[:chainMax]
		}
		ch := make(Chain, len(raw))
		for i, v := range raw {
			ch[i] = Synopsis(v)
		}
		buf := ch.AppendWire(nil)
		got, n, err := DecodeChain(buf)
		return err == nil && n == len(buf) && got.Equal(ch)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAppendBoundedUnderLoops(t *testing.T) {
	// Property (§4.1): repeatedly appending handlers from a fixed set keeps
	// the context depth bounded by the set size — loop pruning prevents
	// unbounded growth on persistent connections.
	handlers := []string{"accept", "read", "parse", "write"}
	f := func(seq []uint8) bool {
		tb := NewTable()
		c := tb.Root()
		for _, b := range seq {
			c = c.Append(HandlerHop("srv", handlers[int(b)%len(handlers)]))
			if c.Depth() > len(handlers) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInterningIsCanonical(t *testing.T) {
	// Property: building the same hop sequence twice yields pointer-equal
	// contexts (and therefore equal synopses).
	f := func(seq []uint8) bool {
		tb := NewTable()
		build := func() *Ctxt {
			c := tb.Root()
			for _, b := range seq {
				switch b % 3 {
				case 0:
					c = c.Extend(CallHop("s", "f", string(rune('a'+b%5))))
				case 1:
					c = c.Append(HandlerHop("s", string(rune('h'+b%4))))
				default:
					c = c.Append(StageHop("s", string(rune('s'+b%4))))
				}
			}
			return c
		}
		return build() == build()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
