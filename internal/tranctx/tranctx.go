// Package tranctx implements Whodunit's transaction contexts (paper §2).
//
// A transaction context is the complete execution history of a request
// through the stages of a multi-tier application: the per-stage execution
// paths (call paths, event-handler sequences, SEDA stage sequences)
// concatenated in execution order. Contexts are immutable interned chains
// of hops; each distinct context has a 4-byte Synopsis (§7.4) that is what
// actually travels between threads and stages.
package tranctx

import (
	"fmt"
	"strings"
	"sync"
)

// Kind classifies a hop in a transaction context.
type Kind uint8

const (
	// KindCall is a call-path hop: the call path of a stage at the point
	// where it handed the transaction onward (message send, queue push).
	KindCall Kind = iota
	// KindHandler is an event-handler hop in an event-driven stage (§4.1).
	KindHandler
	// KindStage is a SEDA stage hop (§4.2).
	KindStage
)

func (k Kind) String() string {
	switch k {
	case KindCall:
		return "call"
	case KindHandler:
		return "handler"
	case KindStage:
		return "stage"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Hop is one step of a transaction context.
type Hop struct {
	Kind  Kind
	Stage string   // the program/stage the hop belongs to (e.g. "apache")
	Label string   // handler or stage name; for KindCall, the joined path
	Path  []string // call-path frames for KindCall hops, outermost first
}

// CallHop builds a call-path hop for the given stage.
func CallHop(stage string, path ...string) Hop {
	return Hop{Kind: KindCall, Stage: stage, Label: strings.Join(path, ">"), Path: path}
}

// HandlerHop builds an event-handler hop.
func HandlerHop(stage, handler string) Hop {
	return Hop{Kind: KindHandler, Stage: stage, Label: handler}
}

// StageHop builds a SEDA stage hop.
func StageHop(program, stage string) Hop {
	return Hop{Kind: KindStage, Stage: program, Label: stage}
}

// hopIdent is the comparable identity of a hop for interning: two hops
// are the same context step iff kind, stage and label agree (a KindCall
// hop's Label is its joined Path, so Path is covered too). Using a struct
// key instead of a rendered string keeps Extend free of fmt and string
// building — Extend runs on every message send.
type hopIdent struct {
	kind  Kind
	stage string
	label string
}

func (h Hop) ident() hopIdent { return hopIdent{kind: h.Kind, stage: h.Stage, label: h.Label} }

// String renders the hop compactly, e.g. "apache/listener:apr_accept>push"
// or "squid@httpAccept".
func (h Hop) String() string {
	switch h.Kind {
	case KindHandler:
		return h.Stage + "@" + h.Label
	case KindStage:
		return h.Stage + "#" + h.Label
	default:
		return h.Stage + ":" + h.Label
	}
}

// Synopsis is the compact, unique, 4-byte representation of a transaction
// context that Whodunit propagates between threads and stages (§7.4).
type Synopsis uint32

// Ctxt is an interned, immutable transaction context: a chain of hops.
// The zero context (Table.Root) is the empty history.
type Ctxt struct {
	id     Synopsis
	parent *Ctxt
	hop    Hop
	depth  int
	table  *Table
}

// Table interns contexts and maps synopses back to contexts. Each stage of
// an application owns one Table; synopses are only meaningful relative to
// the table that issued them plus the stitching metadata exchanged in
// messages.
//
// A Table is safe for concurrent use so the library can also run under real
// goroutines outside the simulator.
type Table struct {
	mu    sync.Mutex
	byKey map[extendKey]*Ctxt
	byID  []*Ctxt
	root  *Ctxt
}

// extendKey identifies an interned context by its parent (already unique
// within the table) and the identity of the final hop.
type extendKey struct {
	parent *Ctxt
	hop    hopIdent
}

// NewTable returns a table containing only the root (empty) context, whose
// synopsis is 0.
func NewTable() *Table {
	tb := &Table{byKey: make(map[extendKey]*Ctxt)}
	tb.root = &Ctxt{table: tb}
	tb.byID = []*Ctxt{tb.root}
	return tb
}

// Root returns the empty context.
func (tb *Table) Root() *Ctxt { return tb.root }

// Size reports how many distinct contexts have been interned (including
// the root).
func (tb *Table) Size() int {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	return len(tb.byID)
}

// Lookup resolves a synopsis issued by this table.
func (tb *Table) Lookup(s Synopsis) (*Ctxt, bool) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	if int(s) >= len(tb.byID) {
		return nil, false
	}
	return tb.byID[s], true
}

// Synopsis returns c's 4-byte synopsis.
func (c *Ctxt) Synopsis() Synopsis { return c.id }

// Parent returns the context with the last hop removed (nil for the root).
func (c *Ctxt) Parent() *Ctxt { return c.parent }

// Depth reports the number of hops in the context.
func (c *Ctxt) Depth() int { return c.depth }

// IsRoot reports whether c is the empty context.
func (c *Ctxt) IsRoot() bool { return c.parent == nil }

// Last returns the final hop (zero Hop for the root).
func (c *Ctxt) Last() Hop { return c.hop }

// Table returns the owning table.
func (c *Ctxt) Table() *Table { return c.table }

// Extend returns the interned context c + hop, with no sequence rewriting.
// Use Append for event-handler/SEDA hops that need §4.1's collapse and
// loop-pruning rules.
func (c *Ctxt) Extend(hop Hop) *Ctxt {
	tb := c.table
	tb.mu.Lock()
	defer tb.mu.Unlock()
	key := extendKey{parent: c, hop: hop.ident()}
	if got, ok := tb.byKey[key]; ok {
		return got
	}
	n := &Ctxt{id: Synopsis(len(tb.byID)), parent: c, hop: hop, depth: c.depth + 1, table: tb}
	tb.byKey[key] = n
	tb.byID = append(tb.byID, n)
	return n
}

// Append extends c with hop applying the paper's sequence rules (§4.1):
//
//   - consecutive occurrences of the same handler/stage collapse into one;
//   - a loop in the handler/stage sequence is pruned by truncating back to
//     the first occurrence of the handler (e.g. [accept read write] + read
//     becomes [accept read]).
//
// The search is confined to the contiguous suffix of hops with the same
// Kind and Stage; call-path hops from earlier stages are never pruned.
// For KindCall hops Append behaves exactly like Extend.
func (c *Ctxt) Append(hop Hop) *Ctxt {
	if hop.Kind == KindCall {
		return c.Extend(hop)
	}
	// Walk the same-kind, same-stage suffix from the tail towards the
	// root, remembering the earliest (closest to the segment start) node
	// whose label matches.
	var match *Ctxt
	for n := c; n != nil && !n.IsRoot(); n = n.parent {
		if n.hop.Kind != hop.Kind || n.hop.Stage != hop.Stage {
			break
		}
		if n.hop.Label == hop.Label {
			match = n
		}
	}
	if match != nil {
		return match
	}
	return c.Extend(hop)
}

// Hops returns the context's hops from the root outward.
func (c *Ctxt) Hops() []Hop {
	out := make([]Hop, c.depth)
	for n := c; n != nil && !n.IsRoot(); n = n.parent {
		out[n.depth-1] = n.hop
	}
	return out
}

// HasPrefix reports whether p is a (non-strict) prefix of c.
func (c *Ctxt) HasPrefix(p *Ctxt) bool {
	if p.table != c.table {
		return false
	}
	for n := c; n != nil; n = n.parent {
		if n == p {
			return true
		}
	}
	return false
}

// String renders the context as its hop sequence joined by " | ", or
// "(root)" for the empty context.
func (c *Ctxt) String() string {
	if c == nil {
		return "(nil)"
	}
	if c.IsRoot() {
		return "(root)"
	}
	hops := c.Hops()
	parts := make([]string, len(hops))
	for i, h := range hops {
		parts[i] = h.String()
	}
	return strings.Join(parts, " | ")
}

// Labels returns just the hop labels, root outward. Handy in tests.
func (c *Ctxt) Labels() []string {
	hops := c.Hops()
	out := make([]string, len(hops))
	for i, h := range hops {
		out[i] = h.Label
	}
	return out
}
