package tranctx

import (
	"encoding/binary"
	"fmt"
)

// Chain is the synopsis chain piggy-backed on messages (§7.4). A request
// carries [synopsis(α)] — the sender's context at the send point. A
// response carries [synopsis(α), synopsis(β)] — the original request
// synopsis followed by the callee's call-path synopsis, rendered
// "synopsis(α)#synopsis(β)". The receiver of a response recognises that a
// prefix of the chain originated from itself and infers "this is a reply",
// switching back to the CCT from which the request was issued, rather than
// inheriting the callee's context (§5).
type Chain []Synopsis

// String renders the chain with the paper's '#' delimiter: each synopsis
// as 8 lower-case hex digits. The encoder is hand-rolled — this renders
// on profiling hot paths (endpoint dictionaries, crosstalk classifiers),
// where fmt's machinery dominated the cost of the string itself.
func (ch Chain) String() string {
	if len(ch) == 0 {
		return ""
	}
	buf := make([]byte, 0, 9*len(ch)-1)
	for i, s := range ch {
		if i > 0 {
			buf = append(buf, '#')
		}
		v := uint32(s)
		for shift := 28; shift >= 0; shift -= 4 {
			buf = append(buf, "0123456789abcdef"[(v>>uint(shift))&0xF])
		}
	}
	return string(buf)
}

// Hash returns a 64-bit FNV-1a hash of the chain's synopses. The profiler
// keys its CCT dictionary by (chain hash, local synopsis) so steady-state
// context lookups build no strings; callers must confirm candidate hits
// with Equal since distinct chains may collide.
func (ch Chain) Hash() uint64 {
	h := uint64(14695981039346656037)
	for _, s := range ch {
		h ^= uint64(s)
		h *= 1099511628211
	}
	return h
}

// HashWith returns the hash of the chain that would result from appending
// last to ch, without materialising it. FNV-1a folds left to right, so the
// extended hash is one more fold over Hash's result. This is the send-path
// trick that lets an endpoint probe its chain dictionary before deciding
// whether a chain allocation is needed at all.
func (ch Chain) HashWith(last Synopsis) uint64 {
	h := ch.Hash()
	h ^= uint64(last)
	h *= 1099511628211
	return h
}

// EqualWith reports whether ch equals prefix followed by last — again
// without materialising the appended chain.
func (ch Chain) EqualWith(prefix Chain, last Synopsis) bool {
	if len(ch) != len(prefix)+1 {
		return false
	}
	for i := range prefix {
		if ch[i] != prefix[i] {
			return false
		}
	}
	return ch[len(prefix)] == last
}

// chainMax bounds decoded chains; real chains have 1 or 2 entries
// (request / response) but stitching records may concatenate a few more.
const chainMax = 64

// AppendWire appends the chain's wire form to buf: a 1-byte count followed
// by count big-endian 4-byte synopses. The encoding is deliberately tiny —
// the 4-byte synopsis is the whole point of §7.4.
func (ch Chain) AppendWire(buf []byte) []byte {
	if len(ch) > chainMax {
		panic("tranctx: chain too long to encode")
	}
	buf = append(buf, byte(len(ch)))
	for _, s := range ch {
		buf = binary.BigEndian.AppendUint32(buf, uint32(s))
	}
	return buf
}

// WireSize reports the encoded size in bytes.
func (ch Chain) WireSize() int { return 1 + 4*len(ch) }

// DecodeChain parses a chain from the front of buf, returning the chain
// and the number of bytes consumed.
func DecodeChain(buf []byte) (Chain, int, error) {
	if len(buf) < 1 {
		return nil, 0, fmt.Errorf("tranctx: short chain header")
	}
	n := int(buf[0])
	if n > chainMax {
		return nil, 0, fmt.Errorf("tranctx: chain length %d exceeds max %d", n, chainMax)
	}
	need := 1 + 4*n
	if len(buf) < need {
		return nil, 0, fmt.Errorf("tranctx: chain truncated: need %d bytes, have %d", need, len(buf))
	}
	ch := make(Chain, n)
	for i := 0; i < n; i++ {
		ch[i] = Synopsis(binary.BigEndian.Uint32(buf[1+4*i:]))
	}
	return ch, need, nil
}

// Equal reports element-wise equality.
func (ch Chain) Equal(other Chain) bool {
	if len(ch) != len(other) {
		return false
	}
	for i := range ch {
		if ch[i] != other[i] {
			return false
		}
	}
	return true
}
