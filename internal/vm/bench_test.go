package vm

import "testing"

// stepProg is a long straight-line body the Step benchmarks iterate over
// without re-spawning: a counter loop of data ops that runs until the
// step budget of the benchmark loop expires.
const stepProgSrc = `
main:
	movi r1, 0x100
	movi r2, 1000000000
loop:
	store [r1], r2
	load  r3, [r1]
	add   r4, r3, r2
	sub   r5, r4, r3
	incm  [r1+1]
	addi  r2, r2, -1
	jne   r2, 0, loop
	halt
`

// csProg alternates short critical sections with window activity — the
// shape every emulated-mode step executes.
const csProgSrc = `
main:
	movi r1, 0x100
	movi r2, 1000000000
loop:
	lock 1
	store [r1], r2
	load  r3, [r1]
	unlock 1
	store [r1+2], r3
	addi  r2, r2, -1
	jne   r2, 0, loop
	halt
`

// BenchmarkMachineStepDirect measures the native-execution interpreter
// hot path: one Step per iteration on a straight-line program.
func BenchmarkMachineStepDirect(b *testing.B) {
	b.ReportAllocs()
	m := NewMachine()
	if _, err := m.Spawn(MustAssemble("step_direct", stepProgSrc), "main"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}

// BenchmarkMachineStepEmulated measures the traced emulation hot path:
// critical sections plus their post-exit windows under a live shmflow-
// style tracer (a minimal recording tracer stands in to keep the
// package dependency-free).
func BenchmarkMachineStepEmulated(b *testing.B) {
	b.ReportAllocs()
	m := NewMachine()
	m.Mode = ModeEmulateCS
	m.Tracer = nopTracer{}
	if _, err := m.Spawn(MustAssemble("step_emulated", csProgSrc), "main"); err != nil {
		b.Fatal(err)
	}
	// Warm the translation cache so the loop measures steady-state
	// (cached-translation) emulation.
	for i := 0; i < 4096; i++ {
		m.Step()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}

// BenchmarkMachineRunSingle measures the single-runnable fast path end
// to end: whole straight-line runs with no scheduler re-entry.
func BenchmarkMachineRunSingle(b *testing.B) {
	b.ReportAllocs()
	m := NewMachine()
	if _, err := m.Spawn(MustAssemble("run_single", stepProgSrc), "main"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if err := m.Run(int64(b.N)); err != ErrStepLimit && err != nil {
		b.Fatal(err)
	}
}

type nopTracer struct{}

func (nopTracer) OnAccess(Access)   {}
func (nopTracer) OnLock(int, int)   {}
func (nopTracer) OnUnlock(int, int) {}

// TestStepZeroAllocs pins the steady-state Step paths — native and
// emulated-with-tracer — at zero allocations per executed instruction.
func TestStepZeroAllocs(t *testing.T) {
	direct := NewMachine()
	if _, err := direct.Spawn(MustAssemble("z_direct", stepProgSrc), "main"); err != nil {
		t.Fatal(err)
	}
	emulated := NewMachine()
	emulated.Mode = ModeEmulateCS
	emulated.Tracer = nopTracer{}
	if _, err := emulated.Spawn(MustAssemble("z_emulated", csProgSrc), "main"); err != nil {
		t.Fatal(err)
	}
	// Warm-up: translation bits, lock table and memory pages allocate on
	// first touch; the steady state must not.
	for i := 0; i < 4096; i++ {
		direct.Step()
		emulated.Step()
	}
	if avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < 64; i++ {
			direct.Step()
		}
	}); avg != 0 {
		t.Fatalf("direct Step: %v allocs per 64 steps, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < 64; i++ {
			emulated.Step()
		}
	}); avg != 0 {
		t.Fatalf("emulated Step: %v allocs per 64 steps, want 0", avg)
	}
}

// TestReapKeepsRoundRobinCursor: reaping halted threads must not reset
// the round-robin cursor among the survivors (it previously snapped back
// to thread 0, skewing fairness after every reap).
func TestReapKeepsRoundRobinCursor(t *testing.T) {
	quick := MustAssemble("quick", "main:\n halt\n")
	slow := MustAssemble("slow", "main:\n nop\n nop\n nop\n nop\n nop\n nop\n halt\n")
	m := NewMachine()
	a, _ := m.Spawn(quick, "main")
	bTh, _ := m.Spawn(slow, "main")
	c, _ := m.Spawn(slow, "main")

	m.Step() // a: halt (removed from the ring)
	m.Step() // b: nop — cursor now points at c
	if !a.Halted() || bTh.PC != 1 {
		t.Fatalf("setup: a.halted=%v b.PC=%d", a.Halted(), bTh.PC)
	}
	m.Reap()
	if len(m.Threads) != 2 {
		t.Fatalf("reap left %d threads", len(m.Threads))
	}
	m.Step() // must run c, not snap back to b
	if c.PC != 1 || bTh.PC != 1 {
		t.Fatalf("after reap, step ran the wrong thread: b.PC=%d c.PC=%d (want 1, 1)", bTh.PC, c.PC)
	}
}
