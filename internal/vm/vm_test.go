package vm

import (
	"strings"
	"testing"
)

func TestAssembleBasics(t *testing.T) {
	p, err := Assemble("t", `
		; a comment
		start:
			movi r1, 5
			addi r1, r1, -2
			jne r1, 0, start
			halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 4 {
		t.Fatalf("code len = %d, want 4", len(p.Code))
	}
	if pc, _ := p.Entry("start"); pc != 0 {
		t.Fatalf("start = %d", pc)
	}
	if p.Code[2].Target != 0 {
		t.Fatalf("jump target = %d, want 0", p.Code[2].Target)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus r1, r2",
		"mov r1",
		"movi r99, 1",
		"jmp nowhere",
		"load r1, r2",
		"store [r1+x], r2",
		"dup: nop\ndup: nop",
	}
	for _, src := range cases {
		if _, err := Assemble("t", src); err == nil {
			t.Errorf("assembling %q should fail", src)
		}
	}
}

func TestDisassembleRoundTripMnemonic(t *testing.T) {
	p := MustAssemble("t", `
		mov r1, r2
		load r3, [r4+8]
		store [r5-4], r6
		storei [r7], 9
		incm [r1]
		lock 3
		unlock 3
	`)
	wants := []string{"mov r1, r2", "load r3, [r4+8]", "store [r5-4], r6",
		"storei [r7+0], 9", "incm [r1+0]", "lock 3", "unlock 3"}
	for i, w := range wants {
		if got := p.Code[i].String(); got != w {
			t.Errorf("instr %d = %q, want %q", i, got, w)
		}
	}
}

func run(t *testing.T, src string) (*Machine, *Thread) {
	t.Helper()
	p := MustAssemble("t", src)
	m := NewMachine()
	th, err := m.Spawn(p, "main")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(100000); err != nil {
		t.Fatal(err)
	}
	return m, th
}

func TestArithmeticAndMemory(t *testing.T) {
	m, th := run(t, `
	main:
		movi r1, 0x100
		movi r2, 7
		store [r1], r2
		load r3, [r1]
		add r4, r3, r3
		sub r5, r4, r3
		incm [r1]
		halt
	`)
	if th.Regs[4] != 14 || th.Regs[5] != 7 {
		t.Fatalf("regs = %v", th.Regs[:6])
	}
	if m.Mem.Load(0x100) != 8 {
		t.Fatalf("mem = %d, want 8", m.Mem.Load(0x100))
	}
}

func TestLoopExecution(t *testing.T) {
	_, th := run(t, `
	main:
		movi r1, 0
		movi r2, 10
	loop:
		addi r1, r1, 1
		sub r3, r2, r1
		jne r3, 0, loop
		halt
	`)
	if th.Regs[1] != 10 {
		t.Fatalf("r1 = %d, want 10", th.Regs[1])
	}
}

func TestLockMutualExclusion(t *testing.T) {
	// Two threads each do 100 increments of a shared counter under a lock;
	// interleaved execution must still total 200 because LOCK serializes.
	prog := MustAssemble("counter", `
	main:
		movi r1, 0x100
		movi r2, 100
	loop:
		lock 1
		incm [r1]
		unlock 1
		addi r2, r2, -1
		jne r2, 0, loop
		halt
	`)
	m := NewMachine()
	if _, err := m.Spawn(prog, "main"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Spawn(prog, "main"); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1000000); err != nil {
		t.Fatal(err)
	}
	if m.Mem.Load(0x100) != 200 {
		t.Fatalf("counter = %d, want 200", m.Mem.Load(0x100))
	}
}

func TestDeadlockDetected(t *testing.T) {
	// Two threads acquire two locks in opposite order with a handshake that
	// guarantees the classic deadlock interleaving under round-robin.
	a := MustAssemble("a", `
	main:
		lock 1
		nop
		nop
		lock 2
		unlock 2
		unlock 1
		halt
	`)
	b := MustAssemble("b", `
	main:
		lock 2
		nop
		nop
		lock 1
		unlock 1
		unlock 2
		halt
	`)
	m := NewMachine()
	m.Spawn(a, "main")
	m.Spawn(b, "main")
	if err := m.Run(10000); err != ErrDeadlock {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestStepLimit(t *testing.T) {
	m := NewMachine()
	m.Spawn(MustAssemble("spin", "main: jmp main"), "main")
	if err := m.Run(100); err != ErrStepLimit {
		t.Fatalf("err = %v, want ErrStepLimit", err)
	}
}

func TestUnlockWithoutHoldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := NewMachine()
	m.Spawn(MustAssemble("bad", "main: unlock 1\nhalt"), "main")
	m.Run(100)
}

func TestDirectCostsCharged(t *testing.T) {
	m, th := run(t, `
	main:
		movi r1, 1
		halt
	`)
	want := m.Cost.direct(MOVI) + m.Cost.direct(HALT)
	if th.Cycles != want {
		t.Fatalf("cycles = %d, want %d", th.Cycles, want)
	}
}

func TestEmulationCostsAndTranslationCache(t *testing.T) {
	src := `
	main:
		lock 1
		movi r1, 1
		unlock 1
		halt
	`
	cold := func() *Machine {
		p := MustAssemble("t", src)
		m := NewMachine()
		m.Mode = ModeEmulateCS
		m.Spawn(p, "main")
		m.Run(1000)
		return m
	}
	m1 := cold()
	// Second run of the same program text on a machine with a warm cache.
	p := MustAssemble("t", src)
	m2 := NewMachine()
	m2.Mode = ModeEmulateCS
	m2.Spawn(p, "main")
	m2.Run(1000)
	warmThread, _ := m2.Spawn(p, "main")
	m2.Run(1000)

	coldCycles := m1.Threads[0].Cycles
	warmCycles := warmThread.Cycles
	if coldCycles <= warmCycles {
		t.Fatalf("cold %d should exceed warm %d (translation cached)", coldCycles, warmCycles)
	}
	// Warm emulation must still be far costlier than direct execution.
	m3 := NewMachine()
	m3.Spawn(MustAssemble("t", src), "main")
	m3.Run(1000)
	direct := m3.Threads[0].Cycles
	if warmCycles < 10*direct {
		t.Fatalf("warm emulation %d not >> direct %d", warmCycles, direct)
	}
}

func TestNonFlowLockRunsNative(t *testing.T) {
	src := `
	main:
		lock 1
		movi r1, 1
		unlock 1
		halt
	`
	m := NewMachine()
	m.Mode = ModeEmulateCS
	m.SetNonFlow(1)
	m.Spawn(MustAssemble("t", src), "main")
	m.Run(1000)
	native := NewMachine()
	native.Spawn(MustAssemble("t", src), "main")
	native.Run(1000)
	if m.Threads[0].Cycles != native.Threads[0].Cycles {
		t.Fatalf("non-flow CS cycles %d != native %d", m.Threads[0].Cycles, native.Threads[0].Cycles)
	}
}

type recordTracer struct {
	accesses []Access
	locks    []int
	unlocks  []int
}

func (r *recordTracer) OnAccess(ac Access)     { r.accesses = append(r.accesses, ac) }
func (r *recordTracer) OnLock(tid, lock int)   { r.locks = append(r.locks, lock) }
func (r *recordTracer) OnUnlock(tid, lock int) { r.unlocks = append(r.unlocks, lock) }

func TestTracerSeesOnlyCriticalSectionAndWindow(t *testing.T) {
	src := `
	main:
		movi r1, 0x100   ; outside: not traced
		lock 1
		store [r1], r2   ; traced, in CS
		unlock 1
		movi r3, 5       ; traced, window
		halt
	`
	p := MustAssemble("t", src)
	m := NewMachine()
	m.Mode = ModeEmulateCS
	tr := &recordTracer{}
	m.Tracer = tr
	m.Spawn(p, "main")
	m.Run(1000)
	if len(tr.locks) != 1 || len(tr.unlocks) != 1 {
		t.Fatalf("lock events = %v %v", tr.locks, tr.unlocks)
	}
	if len(tr.accesses) != 2 {
		t.Fatalf("accesses = %d, want 2 (store in CS + movi in window)", len(tr.accesses))
	}
	if !tr.accesses[0].InCS || tr.accesses[0].Lock != 1 {
		t.Fatalf("first access should be in CS of lock 1: %+v", tr.accesses[0])
	}
	if !tr.accesses[1].InWindow || tr.accesses[1].InCS {
		t.Fatalf("second access should be in window: %+v", tr.accesses[1])
	}
}

func TestWindowExpires(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("main:\n lock 1\n store [r1], r2\n unlock 1\n")
	for i := 0; i < DefaultMaxWindow+10; i++ {
		sb.WriteString(" movi r3, 1\n")
	}
	sb.WriteString(" halt\n")
	p := MustAssemble("t", sb.String())
	m := NewMachine()
	m.Mode = ModeEmulateCS
	tr := &recordTracer{}
	m.Tracer = tr
	m.Spawn(p, "main")
	if err := m.Run(100000); err != nil {
		t.Fatal(err)
	}
	// 1 store in CS + exactly MaxWindow window instructions.
	if got := len(tr.accesses); got != 1+DefaultMaxWindow {
		t.Fatalf("traced %d accesses, want %d", got, 1+DefaultMaxWindow)
	}
}

func TestNestedLocksTracedUnderOutermost(t *testing.T) {
	src := `
	main:
		lock 1
		lock 2
		store [r1], r2
		unlock 2
		store [r1], r3
		unlock 1
		halt
	`
	p := MustAssemble("t", src)
	m := NewMachine()
	m.Mode = ModeEmulateCS
	tr := &recordTracer{}
	m.Tracer = tr
	m.Spawn(p, "main")
	m.Run(1000)
	if len(tr.locks) != 1 || tr.locks[0] != 1 {
		t.Fatalf("outermost lock events = %v", tr.locks)
	}
	for _, ac := range tr.accesses {
		if ac.InCS && ac.Lock != 1 {
			t.Fatalf("access attributed to lock %d, want outermost 1", ac.Lock)
		}
	}
}
