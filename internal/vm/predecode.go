package vm

// dinstr is one predecoded instruction: operands unpacked from the
// assembler's Instr, the native cycle cost baked in from the machine's
// cost model, and the length of the straight-line run starting here — so
// the interpreter's charge/exec path touches no map and recomputes
// nothing per dispatch (the direct-threaded predecoding of the
// ICOOOLPS-style interpreter optimisation literature).
type dinstr struct {
	op         Op
	rd, rs, rt byte
	imm, off   int64
	target     int32
	cost       int64 // direct-execution cycles for this op (CostModel baked in)
	runLen     int32 // straight-line data-op run length starting at this pc
}

// progState is a machine's per-program execution state: the predecoded
// code and the per-pc translation bitmap (Table 3's translation cache).
// It is created once per (machine, program) pair on first Spawn and
// shared by every thread of that program on that machine.
type progState struct {
	code       []dinstr
	translated []bool
}

// straightLine reports whether op can neither transfer control, block,
// halt, nor change the thread's critical-section/tracing state — the ops
// a single-runnable thread may execute back to back with no scheduler or
// trace-regime re-checks in between.
func straightLine(op Op) bool {
	switch op {
	case JMP, JEQ, JNE, JLT, JGE, LOCK, UNLOCK, HALT:
		return false
	}
	return true
}

// predecode lowers a program into its dense internal form under the
// given cost model. Cost must not change after a program is first
// spawned on a machine; the per-op direct cycle cost is baked in here.
func predecode(p *Program, cost CostModel) *progState {
	code := make([]dinstr, len(p.Code))
	for i, in := range p.Code {
		code[i] = dinstr{
			op: in.Op, rd: in.RD, rs: in.RS, rt: in.RT,
			imm: in.Imm, off: in.Off, target: int32(in.Target),
			cost: cost.direct(in.Op),
		}
	}
	// Basic-block run lengths, computed backwards: runLen counts the
	// maximal stretch of straight-line data ops starting at each pc.
	run := int32(0)
	for i := len(code) - 1; i >= 0; i-- {
		if straightLine(code[i].op) {
			run++
		} else {
			run = 0
		}
		code[i].runLen = run
	}
	return &progState{code: code, translated: make([]bool, len(code))}
}
