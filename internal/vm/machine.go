package vm

import (
	"errors"
	"fmt"
)

// ExecMode selects how the machine runs critical sections.
type ExecMode uint8

const (
	// ModeDirect executes everything natively (no tracing, direct costs).
	ModeDirect ExecMode = iota
	// ModeEmulateCS executes critical sections (and a MaxWindow-instruction
	// window after each) under emulation with tracing, except for locks
	// marked non-flow, which fall back to native execution (§7.2).
	ModeEmulateCS
)

// CostModel gives per-instruction cycle costs under the three execution
// regimes of Table 3: native (direct) execution, first-time translation
// plus emulation, and cached-translation emulation.
type CostModel struct {
	Direct    map[Op]int64 // native cycles per op
	DirectDef int64        // native cycles for ops missing from Direct
	Translate int64        // one-time translation cycles per instruction
	Emulate   int64        // emulation cycles per instruction execution
}

// DefaultCostModel is calibrated so Apache's ~12-instruction ap_queue_push
// critical section costs on the order of 130 cycles natively, tens of
// thousands with translation and ~10K cycles from the translation cache,
// matching Table 3's relative magnitudes.
func DefaultCostModel() CostModel {
	return CostModel{
		Direct: map[Op]int64{
			NOP: 1, MOVRR: 4, MOVI: 4, LOAD: 10, STORE: 10, STOREI: 10,
			ADD: 5, SUB: 5, ADDI: 5, INCM: 14, DECM: 14,
			JMP: 4, JEQ: 6, JNE: 6, JLT: 6, JGE: 6,
			LOCK: 24, UNLOCK: 18, HALT: 1,
		},
		DirectDef: 5,
		Translate: 4300,
		Emulate:   950,
	}
}

func (c CostModel) direct(op Op) int64 {
	if v, ok := c.Direct[op]; ok {
		return v
	}
	return c.DirectDef
}

// DefaultMaxWindow is MAX from §7.2: the number of instructions emulated
// past a critical-section exit to observe the consume.
const DefaultMaxWindow = 128

// Thread is one hardware thread of the machine.
type Thread struct {
	ID   int
	Prog *Program
	PC   int
	Regs [NumRegs]int64

	// Cycles accumulates the cycle cost of every instruction this thread
	// executed, per the machine's cost model and execution mode.
	Cycles int64

	halted    bool
	blockedOn int // lock id the thread is waiting for, or -1
	granted   bool
	heldLocks []int
	window    int // remaining post-critical-section traced instructions
}

// Halted reports whether the thread has executed HALT or run off the end
// of its program.
func (t *Thread) Halted() bool { return t.halted }

// Blocked reports whether the thread is waiting on a lock.
func (t *Thread) Blocked() bool { return t.blockedOn >= 0 && !t.granted }

type mlock struct {
	owner   int // thread id, or -1
	waiters []*Thread
}

// Machine is a multi-threaded execution engine over a shared word
// memory. Threads are interleaved round-robin one instruction at a time,
// deterministically.
type Machine struct {
	Mem     map[uint32]int64
	Threads []*Thread
	Tracer  Tracer
	Cost    CostModel
	Mode    ExecMode
	// MaxWindow is the number of instructions traced after the outermost
	// critical-section exit (§7.2's MAX, default 128).
	MaxWindow int

	// TotalCycles sums cycle costs across all threads.
	TotalCycles int64

	locks      map[int]*mlock
	translated map[*Program][]bool
	nonFlow    map[int]bool
	rr         int
	nextID     int
}

// NewMachine returns an empty machine with the default cost model in
// direct mode.
func NewMachine() *Machine {
	return &Machine{
		Mem:        make(map[uint32]int64),
		Cost:       DefaultCostModel(),
		MaxWindow:  DefaultMaxWindow,
		locks:      make(map[int]*mlock),
		translated: make(map[*Program][]bool),
		nonFlow:    make(map[int]bool),
	}
}

// Spawn creates a thread running prog from the given label.
func (m *Machine) Spawn(prog *Program, label string) (*Thread, error) {
	pc, err := prog.Entry(label)
	if err != nil {
		return nil, err
	}
	t := &Thread{ID: m.nextID, Prog: prog, PC: pc, blockedOn: -1}
	m.nextID++
	m.Threads = append(m.Threads, t)
	return t, nil
}

// SetNonFlow marks a lock's critical sections for native execution —
// the optimisation Whodunit applies once a lock's accesses are known not
// to carry transaction flow (§7.2).
func (m *Machine) SetNonFlow(lock int) { m.nonFlow[lock] = true }

// NonFlow reports whether lock has been demoted to native execution.
func (m *Machine) NonFlow(lock int) bool { return m.nonFlow[lock] }

// FlushTranslation drops the translation cache (used by the Table 3
// micro-benchmark to measure first-execution cost).
func (m *Machine) FlushTranslation() { m.translated = make(map[*Program][]bool) }

// Reap removes halted threads so long-running hosts (e.g. the Apache
// model spawning one push/pop execution per connection) do not accumulate
// dead threads. Thread IDs are not reused; the translation cache is
// unaffected.
func (m *Machine) Reap() {
	live := m.Threads[:0]
	for _, t := range m.Threads {
		if !t.halted {
			live = append(live, t)
		}
	}
	for i := len(live); i < len(m.Threads); i++ {
		m.Threads[i] = nil
	}
	m.Threads = live
	m.rr = 0
}

// ErrDeadlock is returned by Run when unhalted threads exist but none can
// make progress.
var ErrDeadlock = errors.New("vm: deadlock: all live threads blocked")

// ErrStepLimit is returned by Run when maxSteps is exhausted.
var ErrStepLimit = errors.New("vm: step limit exceeded")

// Run interleaves all threads round-robin until every thread halts.
func (m *Machine) Run(maxSteps int64) error {
	for steps := int64(0); ; steps++ {
		if steps >= maxSteps {
			return ErrStepLimit
		}
		progressed, anyLive := m.Step()
		if !anyLive {
			return nil
		}
		if !progressed {
			return ErrDeadlock
		}
	}
}

// Step executes one instruction on the next runnable thread (round-robin).
// It reports whether any instruction executed and whether any thread is
// still live (not halted).
func (m *Machine) Step() (progressed, anyLive bool) {
	n := len(m.Threads)
	for i := 0; i < n; i++ {
		t := m.Threads[(m.rr+i)%n]
		if t.halted || t.Blocked() {
			continue
		}
		m.rr = (m.rr + i + 1) % n
		m.exec(t)
		return true, m.live()
	}
	return false, m.live()
}

func (m *Machine) live() bool {
	for _, t := range m.Threads {
		if !t.halted {
			return true
		}
	}
	return false
}

// traced reports whether thread t's next instruction runs under emulation
// (inside a flow-candidate critical section or its post-exit window).
func (m *Machine) traced(t *Thread) bool {
	if m.Mode != ModeEmulateCS {
		return false
	}
	if len(t.heldLocks) > 0 {
		return !m.nonFlow[t.heldLocks[0]]
	}
	return t.window > 0
}

// charge accounts the cycle cost of executing instruction pc of t's
// program under the current regime.
func (m *Machine) charge(t *Thread, pc int, emulated bool) {
	var c int64
	if emulated {
		cache := m.translated[t.Prog]
		if cache == nil {
			cache = make([]bool, len(t.Prog.Code))
			m.translated[t.Prog] = cache
		}
		c = m.Cost.Emulate
		if !cache[pc] {
			c += m.Cost.Translate
			cache[pc] = true
		}
	} else {
		c = m.Cost.direct(t.Prog.Code[pc].Op)
	}
	t.Cycles += c
	m.TotalCycles += c
}

func (m *Machine) lock(id int) *mlock {
	l, ok := m.locks[id]
	if !ok {
		l = &mlock{owner: -1}
		m.locks[id] = l
	}
	return l
}

// exec executes one instruction of t.
func (m *Machine) exec(t *Thread) {
	if t.PC < 0 || t.PC >= len(t.Prog.Code) {
		t.halted = true
		return
	}
	pc := t.PC
	in := t.Prog.Code[pc]
	emu := m.traced(t)

	// Lock operations are handled before generic charging because a LOCK
	// may block (charged only when it completes).
	switch in.Op {
	case LOCK:
		id := int(in.Imm)
		l := m.lock(id)
		switch {
		case l.owner == t.ID && t.granted:
			// Our pending acquisition was granted by the releaser.
			t.granted = false
			t.blockedOn = -1
		case l.owner == -1:
			l.owner = t.ID
		default:
			// Block; re-executed once granted.
			t.blockedOn = id
			l.waiters = append(l.waiters, t)
			return
		}
		t.heldLocks = append(t.heldLocks, id)
		// Entering the outermost critical section cancels any residual
		// window and notifies the tracer.
		if len(t.heldLocks) == 1 {
			t.window = 0
			if m.Tracer != nil && m.Mode == ModeEmulateCS && !m.nonFlow[id] {
				m.Tracer.OnLock(t.ID, id)
			}
		}
		m.charge(t, pc, m.traced(t))
		t.PC++
		return
	case UNLOCK:
		id := int(in.Imm)
		idx := -1
		for i, h := range t.heldLocks {
			if h == id {
				idx = i
				break
			}
		}
		if idx < 0 {
			panic(fmt.Sprintf("vm: thread %d unlocks %d it does not hold", t.ID, id))
		}
		wasEmu := m.traced(t)
		outermost := idx == 0 && len(t.heldLocks) == 1
		t.heldLocks = append(t.heldLocks[:idx], t.heldLocks[idx+1:]...)
		l := m.lock(id)
		l.owner = -1
		if len(l.waiters) > 0 {
			next := l.waiters[0]
			l.waiters = l.waiters[1:]
			l.owner = next.ID
			next.granted = true
		}
		if outermost && wasEmu {
			t.window = m.MaxWindow
			if m.Tracer != nil {
				m.Tracer.OnUnlock(t.ID, id)
			}
		}
		m.charge(t, pc, wasEmu)
		t.PC++
		return
	}

	// Generic instruction: consume window budget if running post-CS.
	if len(t.heldLocks) == 0 && t.window > 0 {
		defer func() { t.window-- }()
	}
	m.charge(t, pc, emu)

	var ac *Access
	mem := func(base byte, off int64) uint32 { return uint32(t.Regs[base] + off) }
	switch in.Op {
	case NOP:
	case HALT:
		t.halted = true
	case MOVRR:
		ac = &Access{Kind: AccMove, Src: RegLoc(t.ID, in.RS), Dst: RegLoc(t.ID, in.RD),
			Reads: []Loc{RegLoc(t.ID, in.RS)}}
		t.Regs[in.RD] = t.Regs[in.RS]
	case MOVI:
		ac = &Access{Kind: AccWrite, Dst: RegLoc(t.ID, in.RD)}
		t.Regs[in.RD] = in.Imm
	case LOAD:
		a := mem(in.RS, in.Off)
		ac = &Access{Kind: AccMove, Src: MemLoc(a), Dst: RegLoc(t.ID, in.RD),
			Reads: []Loc{RegLoc(t.ID, in.RS), MemLoc(a)}}
		t.Regs[in.RD] = m.Mem[a]
	case STORE:
		a := mem(in.RD, in.Off)
		ac = &Access{Kind: AccMove, Src: RegLoc(t.ID, in.RS), Dst: MemLoc(a),
			Reads: []Loc{RegLoc(t.ID, in.RD), RegLoc(t.ID, in.RS)}}
		m.Mem[a] = t.Regs[in.RS]
	case STOREI:
		a := mem(in.RD, in.Off)
		ac = &Access{Kind: AccWrite, Dst: MemLoc(a), Reads: []Loc{RegLoc(t.ID, in.RD)}}
		m.Mem[a] = in.Imm
	case ADD:
		ac = &Access{Kind: AccWrite, Dst: RegLoc(t.ID, in.RD),
			Reads: []Loc{RegLoc(t.ID, in.RS), RegLoc(t.ID, in.RT)}}
		t.Regs[in.RD] = t.Regs[in.RS] + t.Regs[in.RT]
	case SUB:
		ac = &Access{Kind: AccWrite, Dst: RegLoc(t.ID, in.RD),
			Reads: []Loc{RegLoc(t.ID, in.RS), RegLoc(t.ID, in.RT)}}
		t.Regs[in.RD] = t.Regs[in.RS] - t.Regs[in.RT]
	case ADDI:
		ac = &Access{Kind: AccWrite, Dst: RegLoc(t.ID, in.RD),
			Reads: []Loc{RegLoc(t.ID, in.RS)}}
		t.Regs[in.RD] = t.Regs[in.RS] + in.Imm
	case INCM:
		a := mem(in.RD, in.Off)
		ac = &Access{Kind: AccWrite, Dst: MemLoc(a),
			Reads: []Loc{RegLoc(t.ID, in.RD), MemLoc(a)}}
		m.Mem[a]++
	case DECM:
		a := mem(in.RD, in.Off)
		ac = &Access{Kind: AccWrite, Dst: MemLoc(a),
			Reads: []Loc{RegLoc(t.ID, in.RD), MemLoc(a)}}
		m.Mem[a]--
	case JMP:
		t.PC = in.Target
		return
	case JEQ, JNE, JLT, JGE:
		ac = &Access{Kind: AccRead, Reads: []Loc{RegLoc(t.ID, in.RS)}}
		v := t.Regs[in.RS]
		taken := false
		switch in.Op {
		case JEQ:
			taken = v == in.Imm
		case JNE:
			taken = v != in.Imm
		case JLT:
			taken = v < in.Imm
		case JGE:
			taken = v >= in.Imm
		}
		if m.Tracer != nil && emu {
			m.emitAccess(t, pc, in, ac)
		}
		if taken {
			t.PC = in.Target
			return
		}
		t.PC++
		return
	}
	if ac != nil && m.Tracer != nil && emu {
		m.emitAccess(t, pc, in, ac)
	}
	if !t.halted {
		t.PC++
	}
}

func (m *Machine) emitAccess(t *Thread, pc int, in Instr, ac *Access) {
	ac.Thread = t.ID
	ac.PC = pc
	ac.Instr = in
	ac.InCS = len(t.heldLocks) > 0
	if ac.InCS {
		ac.Lock = t.heldLocks[0]
	}
	ac.InWindow = !ac.InCS && t.window > 0
	m.Tracer.OnAccess(*ac)
}
