package vm

import (
	"errors"
	"fmt"
)

// ExecMode selects how the machine runs critical sections.
type ExecMode uint8

const (
	// ModeDirect executes everything natively (no tracing, direct costs).
	ModeDirect ExecMode = iota
	// ModeEmulateCS executes critical sections (and a MaxWindow-instruction
	// window after each) under emulation with tracing, except for locks
	// marked non-flow, which fall back to native execution (§7.2).
	ModeEmulateCS
)

// CostModel gives per-instruction cycle costs under the three execution
// regimes of Table 3: native (direct) execution, first-time translation
// plus emulation, and cached-translation emulation. The model is read
// once per program when the program is first spawned on a machine (the
// native costs are baked into the predecoded form); set it before
// spawning threads.
type CostModel struct {
	Direct    map[Op]int64 // native cycles per op
	DirectDef int64        // native cycles for ops missing from Direct
	Translate int64        // one-time translation cycles per instruction
	Emulate   int64        // emulation cycles per instruction execution
}

// DefaultCostModel is calibrated so Apache's ~12-instruction ap_queue_push
// critical section costs on the order of 130 cycles natively, tens of
// thousands with translation and ~10K cycles from the translation cache,
// matching Table 3's relative magnitudes.
func DefaultCostModel() CostModel {
	return CostModel{
		Direct: map[Op]int64{
			NOP: 1, MOVRR: 4, MOVI: 4, LOAD: 10, STORE: 10, STOREI: 10,
			ADD: 5, SUB: 5, ADDI: 5, INCM: 14, DECM: 14,
			JMP: 4, JEQ: 6, JNE: 6, JLT: 6, JGE: 6,
			LOCK: 24, UNLOCK: 18, HALT: 1,
		},
		DirectDef: 5,
		Translate: 4300,
		Emulate:   950,
	}
}

func (c CostModel) direct(op Op) int64 {
	if v, ok := c.Direct[op]; ok {
		return v
	}
	return c.DirectDef
}

// DefaultMaxWindow is MAX from §7.2: the number of instructions emulated
// past a critical-section exit to observe the consume.
const DefaultMaxWindow = 128

// Thread is one hardware thread of the machine.
type Thread struct {
	ID   int
	Prog *Program
	PC   int
	Regs [NumRegs]int64

	// Cycles accumulates the cycle cost of every instruction this thread
	// executed, per the machine's cost model and execution mode.
	Cycles int64

	ps        *progState // machine-local predecoded program state
	code      []dinstr   // ps.code, cached for one less indirection
	halted    bool
	blockedOn int // lock id the thread is waiting for, or -1
	granted   bool
	heldLocks []int
	window    int // remaining post-critical-section traced instructions
}

// Halted reports whether the thread has executed HALT or run off the end
// of its program.
func (t *Thread) Halted() bool { return t.halted }

// Blocked reports whether the thread is waiting on a lock.
func (t *Thread) Blocked() bool { return t.blockedOn >= 0 && !t.granted }

type mlock struct {
	owner   int // thread id, or -1
	waiters []*Thread
}

// lockDenseLimit bounds the dense lock table; App.ReserveCS hands out
// ids counting up from 1, so real ids are small. Larger (or negative)
// ids spill to a map.
const lockDenseLimit = 1 << 16

// Machine is a multi-threaded execution engine over a shared word
// memory. Threads are interleaved round-robin one instruction at a time,
// deterministically.
//
// The interpreter is direct-threaded: each program is predecoded once
// per machine into a dense internal form with the native cycle cost and
// unpacked operands baked into every instruction, machine state (memory,
// locks, the non-flow lock set) is slice-backed with map spill paths for
// sparse ids, and the scheduler keeps a ring of unhalted threads so
// stepping never scans halted ones. The steady-state emulation path
// performs no heap allocation.
type Machine struct {
	Mem     Memory
	Threads []*Thread
	Tracer  Tracer
	Cost    CostModel
	Mode    ExecMode
	// MaxWindow is the number of instructions traced after the outermost
	// critical-section exit (§7.2's MAX, default 128).
	MaxWindow int

	// TotalCycles sums cycle costs across all threads.
	TotalCycles int64

	progs        map[*Program]*progState
	locks        []mlock        // dense lock table, indexed by lock id
	lockSpill    map[int]*mlock // ids outside [0, lockDenseLimit)
	nonFlow      []bool         // dense non-flow set, indexed by lock id
	nonFlowSpill map[int]bool
	ring         []*Thread // unhalted threads in spawn order
	rr           int       // round-robin cursor into ring
	nextID       int

	// Reusable Access emission state: one Access and one Reads backing
	// array, overwritten per traced instruction (see Tracer).
	ac       Access
	readsBuf [3]Loc
}

// NewMachine returns an empty machine with the default cost model in
// direct mode.
func NewMachine() *Machine {
	return &Machine{
		Cost:      DefaultCostModel(),
		MaxWindow: DefaultMaxWindow,
		progs:     make(map[*Program]*progState),
	}
}

// progStateFor returns (predecoding on first use) the machine's execution
// state for prog.
func (m *Machine) progStateFor(prog *Program) *progState {
	ps := m.progs[prog]
	if ps == nil {
		ps = predecode(prog, m.Cost)
		m.progs[prog] = ps
	}
	return ps
}

// Spawn creates a thread running prog from the given label.
func (m *Machine) Spawn(prog *Program, label string) (*Thread, error) {
	pc, err := prog.Entry(label)
	if err != nil {
		return nil, err
	}
	ps := m.progStateFor(prog)
	t := &Thread{ID: m.nextID, Prog: prog, PC: pc, blockedOn: -1, ps: ps, code: ps.code}
	m.nextID++
	m.Threads = append(m.Threads, t)
	m.ring = append(m.ring, t)
	return t, nil
}

// SetNonFlow marks a lock's critical sections for native execution —
// the optimisation Whodunit applies once a lock's accesses are known not
// to carry transaction flow (§7.2).
func (m *Machine) SetNonFlow(lock int) {
	if lock >= 0 && lock < lockDenseLimit {
		if lock >= len(m.nonFlow) {
			nf := make([]bool, lock+1)
			copy(nf, m.nonFlow)
			m.nonFlow = nf
		}
		m.nonFlow[lock] = true
		return
	}
	if m.nonFlowSpill == nil {
		m.nonFlowSpill = make(map[int]bool)
	}
	m.nonFlowSpill[lock] = true
}

// NonFlow reports whether lock has been demoted to native execution.
func (m *Machine) NonFlow(lock int) bool {
	if lock >= 0 && lock < len(m.nonFlow) {
		return m.nonFlow[lock]
	}
	if lock >= 0 && lock < lockDenseLimit {
		return false
	}
	return m.nonFlowSpill[lock]
}

// FlushTranslation drops the translation cache (used by the Table 3
// micro-benchmark to measure first-execution cost). Predecoded programs
// are kept; only the per-pc translation bits reset.
func (m *Machine) FlushTranslation() {
	for _, ps := range m.progs {
		clear(ps.translated)
	}
}

// Reap removes halted threads so long-running hosts (e.g. the Apache
// model spawning one push/pop execution per connection) do not accumulate
// dead threads. Thread IDs are not reused; the translation cache is
// unaffected. The scheduler's ring holds only unhalted threads and the
// round-robin cursor indexes the ring, so reaping preserves the cursor's
// position among the surviving threads (it was previously reset to 0,
// skewing round-robin fairness after every reap).
func (m *Machine) Reap() {
	live := m.Threads[:0]
	for _, t := range m.Threads {
		if !t.halted {
			live = append(live, t)
		}
	}
	for i := len(live); i < len(m.Threads); i++ {
		m.Threads[i] = nil
	}
	m.Threads = live
}

// ErrDeadlock is returned by Run when unhalted threads exist but none can
// make progress.
var ErrDeadlock = errors.New("vm: deadlock: all live threads blocked")

// ErrStepLimit is returned by Run when maxSteps is exhausted.
var ErrStepLimit = errors.New("vm: step limit exceeded")

// Run interleaves all threads round-robin until every thread halts.
//
// When exactly one thread is runnable — the common case for the
// library's queue push/pop executions — Run executes whole straight-line
// instruction runs on it without re-entering the scheduler between
// instructions; with a single runnable thread this cannot change the
// interleaving.
func (m *Machine) Run(maxSteps int64) error {
	for steps := int64(0); ; {
		if steps >= maxSteps {
			return ErrStepLimit
		}
		if len(m.ring) == 1 {
			t := m.ring[0]
			if t.Blocked() {
				return ErrDeadlock
			}
			steps += m.execRun(t, maxSteps-steps)
			if t.halted {
				m.removeRing(0)
				return nil
			}
			continue
		}
		progressed, anyLive := m.Step()
		steps++
		if !anyLive {
			return nil
		}
		if !progressed {
			return ErrDeadlock
		}
	}
}

// execRun executes up to budget instructions of t (budget ≥ 1, t
// runnable), returning the number executed. It stops early when t halts
// or blocks. Straight-line data-op runs outside traced regions execute
// back to back with no per-instruction regime checks.
func (m *Machine) execRun(t *Thread, budget int64) int64 {
	var done int64
	for done < budget && !t.halted && !t.Blocked() {
		if pc := t.PC; pc >= 0 && pc < len(t.code) && !m.traced(t) {
			// A non-traced thread with no held locks has window == 0
			// (traced would be true otherwise), and a straight-line run
			// contains no LOCK/UNLOCK, so the trace regime cannot change
			// mid-run: execute the whole run at once.
			if n := int64(t.code[pc].runLen); n > 0 {
				if n > budget-done {
					n = budget - done
				}
				m.execStraight(t, int(n))
				done += n
				continue
			}
		}
		m.exec(t)
		done++
	}
	return done
}

// execStraight executes n straight-line data ops starting at t.PC with
// direct costs and no tracing — the direct-threaded inner loop.
func (m *Machine) execStraight(t *Thread, n int) {
	code := t.code
	pc := t.PC
	var cyc int64
	for i := 0; i < n; i++ {
		in := &code[pc]
		cyc += in.cost
		switch in.op {
		case NOP:
		case MOVRR:
			t.Regs[in.rd] = t.Regs[in.rs]
		case MOVI:
			t.Regs[in.rd] = in.imm
		case LOAD:
			t.Regs[in.rd] = m.Mem.Load(uint32(t.Regs[in.rs] + in.off))
		case STORE:
			m.Mem.Store(uint32(t.Regs[in.rd]+in.off), t.Regs[in.rs])
		case STOREI:
			m.Mem.Store(uint32(t.Regs[in.rd]+in.off), in.imm)
		case ADD:
			t.Regs[in.rd] = t.Regs[in.rs] + t.Regs[in.rt]
		case SUB:
			t.Regs[in.rd] = t.Regs[in.rs] - t.Regs[in.rt]
		case ADDI:
			t.Regs[in.rd] = t.Regs[in.rs] + in.imm
		case INCM:
			m.Mem.Add(uint32(t.Regs[in.rd]+in.off), 1)
		case DECM:
			m.Mem.Add(uint32(t.Regs[in.rd]+in.off), -1)
		}
		pc++
	}
	t.PC = pc
	t.Cycles += cyc
	m.TotalCycles += cyc
}

// Step executes one instruction on the next runnable thread (round-robin).
// It reports whether any instruction executed and whether any thread is
// still live (not halted).
func (m *Machine) Step() (progressed, anyLive bool) {
	n := len(m.ring)
	for i := 0; i < n; i++ {
		pos := m.rr + i
		if pos >= n {
			pos -= n
		}
		t := m.ring[pos]
		if t.Blocked() {
			continue
		}
		m.rr = pos + 1
		if m.rr == n {
			m.rr = 0
		}
		m.exec(t)
		if t.halted {
			m.removeRing(pos)
		}
		return true, len(m.ring) > 0
	}
	return false, n > 0
}

// removeRing drops the (halted) thread at ring position pos, keeping the
// round-robin cursor on the thread that would have run next.
func (m *Machine) removeRing(pos int) {
	copy(m.ring[pos:], m.ring[pos+1:])
	m.ring[len(m.ring)-1] = nil
	m.ring = m.ring[:len(m.ring)-1]
	if m.rr > pos {
		m.rr--
	}
	if m.rr >= len(m.ring) {
		m.rr = 0
	}
}

// traced reports whether thread t's next instruction runs under emulation
// (inside a flow-candidate critical section or its post-exit window).
func (m *Machine) traced(t *Thread) bool {
	if m.Mode != ModeEmulateCS {
		return false
	}
	if len(t.heldLocks) > 0 {
		return !m.NonFlow(t.heldLocks[0])
	}
	return t.window > 0
}

// charge accounts the cycle cost of executing instruction pc of t's
// program under the current regime.
func (m *Machine) charge(t *Thread, pc int, emulated bool) {
	var c int64
	if emulated {
		c = m.Cost.Emulate
		if tr := t.ps.translated; !tr[pc] {
			c += m.Cost.Translate
			tr[pc] = true
		}
	} else {
		c = t.code[pc].cost
	}
	t.Cycles += c
	m.TotalCycles += c
}

// lock returns (creating if needed) the lock with the given id. The
// returned pointer is valid only until the next lock call (dense-table
// growth may move entries); callers use it immediately and never retain
// it.
func (m *Machine) lock(id int) *mlock {
	if id >= 0 && id < lockDenseLimit {
		for i := len(m.locks); i <= id; i++ {
			m.locks = append(m.locks, mlock{owner: -1})
		}
		return &m.locks[id]
	}
	l := m.lockSpill[id]
	if l == nil {
		if m.lockSpill == nil {
			m.lockSpill = make(map[int]*mlock)
		}
		l = &mlock{owner: -1}
		m.lockSpill[id] = l
	}
	return l
}

// exec executes one instruction of t.
func (m *Machine) exec(t *Thread) {
	code := t.code
	if t.PC < 0 || t.PC >= len(code) {
		t.halted = true
		return
	}
	pc := t.PC
	in := &code[pc]

	// Lock operations are handled before generic charging because a LOCK
	// may block (charged only when it completes).
	switch in.op {
	case LOCK:
		m.execLock(t, in, pc)
		return
	case UNLOCK:
		m.execUnlock(t, in, pc)
		return
	}

	emu := m.traced(t)
	inWindow := len(t.heldLocks) == 0 && t.window > 0
	m.charge(t, pc, emu)
	if emu && m.Tracer != nil {
		m.execTraced(t, in, pc)
	} else {
		m.execPlain(t, in)
	}
	// Generic instructions consume window budget when running post-CS.
	if inWindow {
		t.window--
	}
}

func (m *Machine) execLock(t *Thread, in *dinstr, pc int) {
	id := int(in.imm)
	l := m.lock(id)
	switch {
	case l.owner == t.ID && t.granted:
		// Our pending acquisition was granted by the releaser.
		t.granted = false
		t.blockedOn = -1
	case l.owner == -1:
		l.owner = t.ID
	default:
		// Block; re-executed once granted.
		t.blockedOn = id
		l.waiters = append(l.waiters, t)
		return
	}
	t.heldLocks = append(t.heldLocks, id)
	// Entering the outermost critical section cancels any residual
	// window and notifies the tracer.
	if len(t.heldLocks) == 1 {
		t.window = 0
		if m.Tracer != nil && m.Mode == ModeEmulateCS && !m.NonFlow(id) {
			m.Tracer.OnLock(t.ID, id)
		}
	}
	m.charge(t, pc, m.traced(t))
	t.PC++
}

func (m *Machine) execUnlock(t *Thread, in *dinstr, pc int) {
	id := int(in.imm)
	idx := -1
	for i, h := range t.heldLocks {
		if h == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		panic(fmt.Sprintf("vm: thread %d unlocks %d it does not hold", t.ID, id))
	}
	wasEmu := m.traced(t)
	outermost := idx == 0 && len(t.heldLocks) == 1
	t.heldLocks = append(t.heldLocks[:idx], t.heldLocks[idx+1:]...)
	l := m.lock(id)
	l.owner = -1
	if len(l.waiters) > 0 {
		next := l.waiters[0]
		l.waiters = l.waiters[1:]
		l.owner = next.ID
		next.granted = true
	}
	if outermost && wasEmu {
		t.window = m.MaxWindow
		if m.Tracer != nil {
			m.Tracer.OnUnlock(t.ID, id)
		}
	}
	m.charge(t, pc, wasEmu)
	t.PC++
}

// execPlain executes one generic instruction with no tracing.
func (m *Machine) execPlain(t *Thread, in *dinstr) {
	switch in.op {
	case NOP:
	case HALT:
		t.halted = true
		return // PC unchanged
	case MOVRR:
		t.Regs[in.rd] = t.Regs[in.rs]
	case MOVI:
		t.Regs[in.rd] = in.imm
	case LOAD:
		t.Regs[in.rd] = m.Mem.Load(uint32(t.Regs[in.rs] + in.off))
	case STORE:
		m.Mem.Store(uint32(t.Regs[in.rd]+in.off), t.Regs[in.rs])
	case STOREI:
		m.Mem.Store(uint32(t.Regs[in.rd]+in.off), in.imm)
	case ADD:
		t.Regs[in.rd] = t.Regs[in.rs] + t.Regs[in.rt]
	case SUB:
		t.Regs[in.rd] = t.Regs[in.rs] - t.Regs[in.rt]
	case ADDI:
		t.Regs[in.rd] = t.Regs[in.rs] + in.imm
	case INCM:
		m.Mem.Add(uint32(t.Regs[in.rd]+in.off), 1)
	case DECM:
		m.Mem.Add(uint32(t.Regs[in.rd]+in.off), -1)
	case JMP:
		t.PC = int(in.target)
		return
	case JEQ, JNE, JLT, JGE:
		if branchTaken(in, t.Regs[in.rs]) {
			t.PC = int(in.target)
			return
		}
	}
	t.PC++
}

// execTraced executes one generic instruction under emulation, emitting
// its Access to the tracer through the machine's reusable buffer.
func (m *Machine) execTraced(t *Thread, in *dinstr, pc int) {
	ac := &m.ac
	*ac = Access{Thread: t.ID, PC: pc, Instr: t.Prog.Code[pc]}
	if len(t.heldLocks) > 0 {
		ac.InCS = true
		ac.Lock = t.heldLocks[0]
	} else {
		ac.InWindow = t.window > 0
	}
	reads := m.readsBuf[:0]
	emit := true

	switch in.op {
	case NOP:
		emit = false
	case HALT:
		t.halted = true
		return // no emission, PC unchanged
	case MOVRR:
		src := RegLoc(t.ID, in.rs)
		ac.Kind, ac.Src, ac.Dst = AccMove, src, RegLoc(t.ID, in.rd)
		reads = append(reads, src)
		t.Regs[in.rd] = t.Regs[in.rs]
	case MOVI:
		ac.Kind, ac.Dst = AccWrite, RegLoc(t.ID, in.rd)
		t.Regs[in.rd] = in.imm
	case LOAD:
		a := uint32(t.Regs[in.rs] + in.off)
		ac.Kind, ac.Src, ac.Dst = AccMove, MemLoc(a), RegLoc(t.ID, in.rd)
		reads = append(reads, RegLoc(t.ID, in.rs), MemLoc(a))
		t.Regs[in.rd] = m.Mem.Load(a)
	case STORE:
		a := uint32(t.Regs[in.rd] + in.off)
		ac.Kind, ac.Src, ac.Dst = AccMove, RegLoc(t.ID, in.rs), MemLoc(a)
		reads = append(reads, RegLoc(t.ID, in.rd), RegLoc(t.ID, in.rs))
		m.Mem.Store(a, t.Regs[in.rs])
	case STOREI:
		a := uint32(t.Regs[in.rd] + in.off)
		ac.Kind, ac.Dst = AccWrite, MemLoc(a)
		reads = append(reads, RegLoc(t.ID, in.rd))
		m.Mem.Store(a, in.imm)
	case ADD:
		ac.Kind, ac.Dst = AccWrite, RegLoc(t.ID, in.rd)
		reads = append(reads, RegLoc(t.ID, in.rs), RegLoc(t.ID, in.rt))
		t.Regs[in.rd] = t.Regs[in.rs] + t.Regs[in.rt]
	case SUB:
		ac.Kind, ac.Dst = AccWrite, RegLoc(t.ID, in.rd)
		reads = append(reads, RegLoc(t.ID, in.rs), RegLoc(t.ID, in.rt))
		t.Regs[in.rd] = t.Regs[in.rs] - t.Regs[in.rt]
	case ADDI:
		ac.Kind, ac.Dst = AccWrite, RegLoc(t.ID, in.rd)
		reads = append(reads, RegLoc(t.ID, in.rs))
		t.Regs[in.rd] = t.Regs[in.rs] + in.imm
	case INCM:
		a := uint32(t.Regs[in.rd] + in.off)
		ac.Kind, ac.Dst = AccWrite, MemLoc(a)
		reads = append(reads, RegLoc(t.ID, in.rd), MemLoc(a))
		m.Mem.Add(a, 1)
	case DECM:
		a := uint32(t.Regs[in.rd] + in.off)
		ac.Kind, ac.Dst = AccWrite, MemLoc(a)
		reads = append(reads, RegLoc(t.ID, in.rd), MemLoc(a))
		m.Mem.Add(a, -1)
	case JMP:
		t.PC = int(in.target)
		return // no emission
	case JEQ, JNE, JLT, JGE:
		ac.Kind = AccRead
		reads = append(reads, RegLoc(t.ID, in.rs))
		ac.Reads = reads
		m.Tracer.OnAccess(*ac)
		if branchTaken(in, t.Regs[in.rs]) {
			t.PC = int(in.target)
		} else {
			t.PC++
		}
		return
	}
	if emit {
		ac.Reads = reads
		m.Tracer.OnAccess(*ac)
	}
	t.PC++
}

func branchTaken(in *dinstr, v int64) bool {
	switch in.op {
	case JEQ:
		return v == in.imm
	case JNE:
		return v != in.imm
	case JLT:
		return v < in.imm
	case JGE:
		return v >= in.imm
	}
	return false
}
