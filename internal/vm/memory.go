package vm

// Memory is the machine's shared word-addressed memory. The address
// space the library allocates from is deliberately sparse — every queue
// or custom critical section reserves a 0x10000-word region and touches
// a handful of words in it — so the backing is paged: a slice directory
// indexed by page number with fixed-size pages allocated on first store.
// Loads and stores are two array indexes and a nil check; no map sits on
// the interpreter hot path. Addresses beyond the directory's range spill
// to a map, so a stray huge address costs one map entry. The zero value
// is an empty memory; absent words read as zero, exactly like the map
// this design replaces.
type Memory struct {
	pages []*[pageWords]int64
	spill map[uint32]int64
}

const (
	pageShift = 9              // 512-word (4 KiB) pages
	pageWords = 1 << pageShift //
	pageMask  = pageWords - 1  //
	dirLimit  = 1 << 16        // max directory entries: covers 2^25 words
)

// Load returns the word at address a (zero if never stored).
func (m *Memory) Load(a uint32) int64 {
	pg := a >> pageShift
	if pg < uint32(len(m.pages)) {
		if p := m.pages[pg]; p != nil {
			return p[a&pageMask]
		}
		return 0
	}
	return m.spill[a]
}

// Store writes v to address a.
func (m *Memory) Store(a uint32, v int64) {
	if p := m.page(a); p != nil {
		p[a&pageMask] = v
		return
	}
	if m.spill == nil {
		m.spill = make(map[uint32]int64)
	}
	m.spill[a] = v
}

// Add adds delta to the word at address a (the INCM/DECM read-modify-
// write).
func (m *Memory) Add(a uint32, delta int64) {
	if p := m.page(a); p != nil {
		p[a&pageMask] += delta
		return
	}
	if m.spill == nil {
		m.spill = make(map[uint32]int64)
	}
	m.spill[a] += delta
}

// page returns the page covering a, allocating directory and page as
// needed, or nil when a lies beyond the directory limit (spill path).
func (m *Memory) page(a uint32) *[pageWords]int64 {
	pg := a >> pageShift
	if pg < uint32(len(m.pages)) {
		if p := m.pages[pg]; p != nil {
			return p
		}
		p := new([pageWords]int64)
		m.pages[pg] = p
		return p
	}
	if pg >= dirLimit {
		return nil
	}
	n := uint32(64)
	for n <= pg {
		n <<= 1
	}
	dir := make([]*[pageWords]int64, n)
	copy(dir, m.pages)
	m.pages = dir
	p := new([pageWords]int64)
	m.pages[pg] = p
	return p
}
