package vm

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses the textual assembly form into a Program. The syntax is
// one instruction per line; `;` starts a comment; `label:` defines a jump
// target. Registers are r0..r15; memory operands are written [rN+off] or
// [rN-off] or [rN].
//
//	push:
//	    lock 1
//	    load r3, [r1+0]     ; r3 = queue->nelts
//	    store [r2+8], r4    ; elem->sd = sd
//	    storei [r2+16], 0
//	    incm [r1+0]
//	    unlock 1
//	    halt
func Assemble(name, src string) (*Program, error) {
	p := &Program{Name: name, Labels: make(map[string]int)}
	type fixup struct {
		instr int
		label string
		line  int
	}
	var fixups []fixup

	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		for strings.Contains(line, ":") {
			i := strings.IndexByte(line, ':')
			label := strings.TrimSpace(line[:i])
			if label == "" || strings.ContainsAny(label, " \t,") {
				return nil, fmt.Errorf("%s:%d: bad label %q", name, ln+1, label)
			}
			if _, dup := p.Labels[label]; dup {
				return nil, fmt.Errorf("%s:%d: duplicate label %q", name, ln+1, label)
			}
			p.Labels[label] = len(p.Code)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		in, lbl, err := parseInstr(line)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", name, ln+1, err)
		}
		if lbl != "" {
			fixups = append(fixups, fixup{len(p.Code), lbl, ln + 1})
		}
		p.Code = append(p.Code, in)
	}
	for _, f := range fixups {
		pc, ok := p.Labels[f.label]
		if !ok {
			return nil, fmt.Errorf("%s:%d: undefined label %q", name, f.line, f.label)
		}
		p.Code[f.instr].Target = pc
	}
	return p, nil
}

// MustAssemble is Assemble that panics on error; for statically known
// programs in tests and the Apache model.
func MustAssemble(name, src string) *Program {
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

func parseInstr(line string) (Instr, string, error) {
	fields := strings.SplitN(line, " ", 2)
	mnem := strings.ToLower(fields[0])
	rest := ""
	if len(fields) == 2 {
		rest = fields[1]
	}
	args := splitArgs(rest)
	argn := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s takes %d operands, got %d", mnem, n, len(args))
		}
		return nil
	}
	switch mnem {
	case "nop":
		return Instr{Op: NOP}, "", argn(0)
	case "halt":
		return Instr{Op: HALT}, "", argn(0)
	case "mov":
		if err := argn(2); err != nil {
			return Instr{}, "", err
		}
		rd, err1 := parseReg(args[0])
		rs, err2 := parseReg(args[1])
		if err := firstErr(err1, err2); err != nil {
			return Instr{}, "", err
		}
		return Instr{Op: MOVRR, RD: rd, RS: rs}, "", nil
	case "movi":
		if err := argn(2); err != nil {
			return Instr{}, "", err
		}
		rd, err1 := parseReg(args[0])
		imm, err2 := parseImm(args[1])
		if err := firstErr(err1, err2); err != nil {
			return Instr{}, "", err
		}
		return Instr{Op: MOVI, RD: rd, Imm: imm}, "", nil
	case "load":
		if err := argn(2); err != nil {
			return Instr{}, "", err
		}
		rd, err1 := parseReg(args[0])
		rs, off, err2 := parseMem(args[1])
		if err := firstErr(err1, err2); err != nil {
			return Instr{}, "", err
		}
		return Instr{Op: LOAD, RD: rd, RS: rs, Off: off}, "", nil
	case "store":
		if err := argn(2); err != nil {
			return Instr{}, "", err
		}
		rd, off, err1 := parseMem(args[0])
		rs, err2 := parseReg(args[1])
		if err := firstErr(err1, err2); err != nil {
			return Instr{}, "", err
		}
		return Instr{Op: STORE, RD: rd, RS: rs, Off: off}, "", nil
	case "storei":
		if err := argn(2); err != nil {
			return Instr{}, "", err
		}
		rd, off, err1 := parseMem(args[0])
		imm, err2 := parseImm(args[1])
		if err := firstErr(err1, err2); err != nil {
			return Instr{}, "", err
		}
		return Instr{Op: STOREI, RD: rd, Imm: imm, Off: off}, "", nil
	case "add", "sub":
		if err := argn(3); err != nil {
			return Instr{}, "", err
		}
		rd, err1 := parseReg(args[0])
		rs, err2 := parseReg(args[1])
		rt, err3 := parseReg(args[2])
		if err := firstErr(err1, err2, err3); err != nil {
			return Instr{}, "", err
		}
		op := ADD
		if mnem == "sub" {
			op = SUB
		}
		return Instr{Op: op, RD: rd, RS: rs, RT: rt}, "", nil
	case "addi":
		if err := argn(3); err != nil {
			return Instr{}, "", err
		}
		rd, err1 := parseReg(args[0])
		rs, err2 := parseReg(args[1])
		imm, err3 := parseImm(args[2])
		if err := firstErr(err1, err2, err3); err != nil {
			return Instr{}, "", err
		}
		return Instr{Op: ADDI, RD: rd, RS: rs, Imm: imm}, "", nil
	case "incm", "decm":
		if err := argn(1); err != nil {
			return Instr{}, "", err
		}
		rd, off, err := parseMem(args[0])
		if err != nil {
			return Instr{}, "", err
		}
		op := INCM
		if mnem == "decm" {
			op = DECM
		}
		return Instr{Op: op, RD: rd, Off: off}, "", nil
	case "jmp":
		if err := argn(1); err != nil {
			return Instr{}, "", err
		}
		return Instr{Op: JMP}, args[0], nil
	case "jeq", "jne", "jlt", "jge":
		if err := argn(3); err != nil {
			return Instr{}, "", err
		}
		rs, err1 := parseReg(args[0])
		imm, err2 := parseImm(args[1])
		if err := firstErr(err1, err2); err != nil {
			return Instr{}, "", err
		}
		op := map[string]Op{"jeq": JEQ, "jne": JNE, "jlt": JLT, "jge": JGE}[mnem]
		return Instr{Op: op, RS: rs, Imm: imm}, args[2], nil
	case "lock", "unlock":
		if err := argn(1); err != nil {
			return Instr{}, "", err
		}
		id, err := parseImm(args[0])
		if err != nil {
			return Instr{}, "", err
		}
		op := LOCK
		if mnem == "unlock" {
			op = UNLOCK
		}
		return Instr{Op: op, Imm: id}, "", nil
	}
	return Instr{}, "", fmt.Errorf("unknown mnemonic %q", mnem)
}

func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseReg(s string) (byte, error) {
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return byte(n), nil
}

func parseImm(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return v, nil
}

// parseMem parses [rN], [rN+off] or [rN-off].
func parseMem(s string) (byte, int64, error) {
	if len(s) < 2 || s[0] != '[' || s[len(s)-1] != ']' {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	body := s[1 : len(s)-1]
	sep := strings.IndexAny(body, "+-")
	if sep < 0 {
		r, err := parseReg(strings.TrimSpace(body))
		return r, 0, err
	}
	r, err := parseReg(strings.TrimSpace(body[:sep]))
	if err != nil {
		return 0, 0, err
	}
	off, err := strconv.ParseInt(strings.TrimSpace(body[sep:]), 0, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad offset in %q", s)
	}
	return r, off, nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
