// Package vm implements the small processor on which Whodunit's shared-
// memory flow detection runs. The paper extracts QEMU's CPU emulator core
// and emulates the instructions of critical sections (§7.2); here the
// "processor" is a compact RISC-style ISA with exactly the operations the
// §3 algorithm dispatches on — register/memory MOVes, immediate stores,
// arithmetic read-modify-writes — plus locks, branches and a tiny
// assembler for writing test programs such as Apache's queue push/pop.
//
// The machine accounts cycles under three execution modes (direct,
// translate+emulate, cached emulation), reproducing Table 3, and supports
// per-lock native fallback for critical sections that are found not to
// carry transaction flow (§7.2's performance optimisation).
package vm

import "fmt"

// Op is an instruction opcode.
type Op uint8

// The instruction set. MOV-family operations (MOVRR, MOVI, LOAD, STORE,
// STOREI) move values between locations; INCM/DECM/ADD/ADDI/SUB modify
// values (non-MOV for the purposes of §3); the rest are control flow and
// synchronisation.
const (
	NOP    Op = iota
	MOVRR     // rd <- rs
	MOVI      // rd <- imm
	LOAD      // rd <- mem[rs+off]
	STORE     // mem[rd+off] <- rs
	STOREI    // mem[rd+off] <- imm
	ADD       // rd <- rs + rt
	SUB       // rd <- rs - rt
	ADDI      // rd <- rs + imm
	INCM      // mem[rd+off] <- mem[rd+off] + 1
	DECM      // mem[rd+off] <- mem[rd+off] - 1
	JMP       // pc <- target
	JEQ       // if rs == imm: pc <- target
	JNE       // if rs != imm: pc <- target
	JLT       // if rs < imm: pc <- target
	JGE       // if rs >= imm: pc <- target
	LOCK      // acquire mutex #imm
	UNLOCK    // release mutex #imm
	HALT      // stop the thread
)

var opNames = map[Op]string{
	NOP: "nop", MOVRR: "mov", MOVI: "movi", LOAD: "load", STORE: "store",
	STOREI: "storei", ADD: "add", SUB: "sub", ADDI: "addi", INCM: "incm",
	DECM: "decm", JMP: "jmp", JEQ: "jeq", JNE: "jne", JLT: "jlt",
	JGE: "jge", LOCK: "lock", UNLOCK: "unlock", HALT: "halt",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// NumRegs is the number of general-purpose registers per thread.
const NumRegs = 16

// Instr is one decoded instruction.
type Instr struct {
	Op     Op
	RD, RS byte  // destination / source registers
	RT     byte  // second source for ADD/SUB
	Imm    int64 // immediate value or lock id
	Off    int64 // memory offset for LOAD/STORE/STOREI/INCM/DECM
	Target int   // resolved jump target (instruction index)
}

// String disassembles the instruction.
func (in Instr) String() string {
	switch in.Op {
	case NOP, HALT:
		return in.Op.String()
	case MOVRR:
		return fmt.Sprintf("mov r%d, r%d", in.RD, in.RS)
	case MOVI:
		return fmt.Sprintf("movi r%d, %d", in.RD, in.Imm)
	case LOAD:
		return fmt.Sprintf("load r%d, [r%d%+d]", in.RD, in.RS, in.Off)
	case STORE:
		return fmt.Sprintf("store [r%d%+d], r%d", in.RD, in.Off, in.RS)
	case STOREI:
		return fmt.Sprintf("storei [r%d%+d], %d", in.RD, in.Off, in.Imm)
	case ADD:
		return fmt.Sprintf("add r%d, r%d, r%d", in.RD, in.RS, in.RT)
	case SUB:
		return fmt.Sprintf("sub r%d, r%d, r%d", in.RD, in.RS, in.RT)
	case ADDI:
		return fmt.Sprintf("addi r%d, r%d, %d", in.RD, in.RS, in.Imm)
	case INCM:
		return fmt.Sprintf("incm [r%d%+d]", in.RD, in.Off)
	case DECM:
		return fmt.Sprintf("decm [r%d%+d]", in.RD, in.Off)
	case JMP:
		return fmt.Sprintf("jmp %d", in.Target)
	case JEQ, JNE, JLT, JGE:
		return fmt.Sprintf("%s r%d, %d, %d", in.Op, in.RS, in.Imm, in.Target)
	case LOCK, UNLOCK:
		return fmt.Sprintf("%s %d", in.Op, in.Imm)
	}
	return in.Op.String()
}

// Program is an assembled instruction sequence with named entry points.
type Program struct {
	Name   string
	Code   []Instr
	Labels map[string]int
}

// Entry returns the instruction index of a label.
func (p *Program) Entry(label string) (int, error) {
	pc, ok := p.Labels[label]
	if !ok {
		return 0, fmt.Errorf("vm: program %q has no label %q", p.Name, label)
	}
	return pc, nil
}

// LocKind distinguishes memory addresses from registers in the complete
// name space of locations where application data resides (§3.2).
type LocKind uint8

const (
	// LocMem is a virtual-address-space location.
	LocMem LocKind = iota
	// LocReg is a per-thread register reg_ti (§3.2 annotates registers
	// with the owning thread to make them unique names).
	LocReg
)

// Loc names a location: a memory word or a (thread, register) pair.
type Loc struct {
	Kind   LocKind
	Addr   uint32 // memory address, or register index
	Thread int    // owning thread for LocReg
}

// MemLoc names memory address a.
func MemLoc(a uint32) Loc { return Loc{Kind: LocMem, Addr: a} }

// RegLoc names register r of thread tid.
func RegLoc(tid int, r byte) Loc { return Loc{Kind: LocReg, Addr: uint32(r), Thread: tid} }

func (l Loc) String() string {
	if l.Kind == LocReg {
		return fmt.Sprintf("r%d@t%d", l.Addr, l.Thread)
	}
	return fmt.Sprintf("[%#x]", l.Addr)
}

// AccessKind classifies an instruction's data effect for the tracer.
type AccessKind uint8

const (
	// AccMove is a MOV-family transfer from Src to Dst.
	AccMove AccessKind = iota
	// AccWrite is a non-MOV modification of Dst (immediate-independent
	// value computation: arithmetic, increments, ...). Per §3.2 the
	// destination is associated with the invalid context.
	AccWrite
	// AccRead is an instruction that only reads locations (branches).
	AccRead
)

// Access describes one traced instruction execution. The machine reuses
// one emission buffer for every Access it delivers: the Reads slice
// aliases that buffer and is valid only for the duration of the
// Tracer.OnAccess call — a tracer that wants to keep the read set must
// copy it.
type Access struct {
	Thread   int
	PC       int
	Instr    Instr
	Kind     AccessKind
	Src, Dst Loc   // valid per Kind (Src only for AccMove)
	Reads    []Loc // every location the instruction read, including
	// address-base registers; consume detection (§7.2) watches these.
	InCS     bool // executing under at least one held lock
	Lock     int  // outermost held lock id when InCS
	InWindow bool // within the post-critical-section window
}

// Tracer observes traced instruction executions; the shmflow package
// implements it. OnAccess is invoked only for instructions executed in
// emulated critical sections and their post-exit windows. The Access is
// delivered by value but its Reads slice aliases a machine-owned buffer
// reused for the next emission; copy it to retain it.
type Tracer interface {
	OnAccess(ac Access)
	// OnLock and OnUnlock bracket critical sections (outermost lock only).
	OnLock(thread, lock int)
	OnUnlock(thread, lock int)
}
