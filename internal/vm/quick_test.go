package vm

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

// TestQuickAssembleDisassembleStable: assembling the disassembly of a
// random (valid) instruction yields the same instruction.
func TestQuickAssembleDisassembleStable(t *testing.T) {
	ops := []Op{MOVRR, MOVI, LOAD, STORE, STOREI, ADD, SUB, ADDI, INCM, DECM}
	f := func(sel uint8, rd, rs, rt uint8, imm int16, off int8) bool {
		in := Instr{
			Op: ops[int(sel)%len(ops)],
			RD: rd % NumRegs, RS: rs % NumRegs, RT: rt % NumRegs,
			Imm: int64(imm), Off: int64(off),
		}
		src := "main:\n " + in.String() + "\n halt\n"
		p, err := Assemble("q", src)
		if err != nil {
			t.Logf("assemble %q: %v", src, err)
			return false
		}
		got := p.Code[0]
		return got.String() == in.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCostsNonNegativeAndAdditive: executing any straight-line
// program charges positive cycles, and total machine cycles equal the sum
// over threads.
func TestQuickCostsAdditive(t *testing.T) {
	f := func(nops uint8, threads uint8) bool {
		var sb strings.Builder
		sb.WriteString("main:\n")
		for i := 0; i < int(nops%20)+1; i++ {
			fmt.Fprintf(&sb, " movi r1, %d\n", i)
		}
		sb.WriteString(" halt\n")
		p := MustAssemble("q", sb.String())
		m := NewMachine()
		n := int(threads%4) + 1
		for i := 0; i < n; i++ {
			if _, err := m.Spawn(p, "main"); err != nil {
				return false
			}
		}
		if err := m.Run(100000); err != nil {
			return false
		}
		var sum int64
		for _, th := range m.Threads {
			if th.Cycles <= 0 {
				return false
			}
			sum += th.Cycles
		}
		return sum == m.TotalCycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLockCounterAtomic: any number of threads doing any number of
// locked increments leaves the counter exactly equal to the total.
func TestQuickLockCounterAtomic(t *testing.T) {
	f := func(threads, iters uint8) bool {
		n := int(threads%5) + 1
		k := int(iters%40) + 1
		src := fmt.Sprintf(`
		main:
			movi r1, 0x100
			movi r2, %d
		loop:
			lock 1
			incm [r1]
			unlock 1
			addi r2, r2, -1
			jne r2, 0, loop
			halt
		`, k)
		p := MustAssemble("q", src)
		m := NewMachine()
		for i := 0; i < n; i++ {
			if _, err := m.Spawn(p, "main"); err != nil {
				return false
			}
		}
		if err := m.Run(10_000_000); err != nil {
			return false
		}
		return m.Mem.Load(0x100) == int64(n*k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestReapPreservesIDsAndCache(t *testing.T) {
	p := MustAssemble("q", "main:\n lock 1\n movi r1, 1\n unlock 1\n halt\n")
	m := NewMachine()
	m.Mode = ModeEmulateCS
	t1, _ := m.Spawn(p, "main")
	m.Run(1000)
	cold := t1.Cycles
	m.Reap()
	if len(m.Threads) != 0 {
		t.Fatalf("reap left %d threads", len(m.Threads))
	}
	t2, _ := m.Spawn(p, "main")
	if t2.ID == t1.ID {
		t.Fatal("thread id reused after reap")
	}
	m.Run(1000)
	if t2.Cycles >= cold {
		t.Fatalf("translation cache lost across reap: %d >= %d", t2.Cycles, cold)
	}
}
