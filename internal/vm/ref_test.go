package vm

import (
	"fmt"
	"math/rand"
	"testing"
)

// This file keeps a naive reference interpreter — the machine exactly as
// it was before the direct-threaded rewrite: map-backed memory, locks and
// non-flow sets, a full-thread round-robin scan per step, a fresh Access
// per traced instruction — and differentially checks the predecoded
// machine against it on randomized programs: same per-thread registers,
// cycles, PCs and halt states, same memory contents, same total cycles,
// same Run verdicts, and the same trace-event sequence, event for event.

// --- reference implementation ---------------------------------------

type refLock struct {
	owner   int
	waiters []*refThread
}

type refThread struct {
	id        int
	prog      *Program
	pc        int
	regs      [NumRegs]int64
	cycles    int64
	halted    bool
	blockedOn int
	granted   bool
	heldLocks []int
	window    int
}

func (t *refThread) blocked() bool { return t.blockedOn >= 0 && !t.granted }

type refMachine struct {
	mem        map[uint32]int64
	threads    []*refThread
	tracer     Tracer
	cost       CostModel
	mode       ExecMode
	maxWindow  int
	total      int64
	locks      map[int]*refLock
	translated map[*Program][]bool
	nonFlow    map[int]bool
	rr         int
}

func newRefMachine() *refMachine {
	return &refMachine{
		mem:        make(map[uint32]int64),
		cost:       DefaultCostModel(),
		maxWindow:  DefaultMaxWindow,
		locks:      make(map[int]*refLock),
		translated: make(map[*Program][]bool),
		nonFlow:    make(map[int]bool),
	}
}

func (m *refMachine) spawn(prog *Program, label string) *refThread {
	pc, err := prog.Entry(label)
	if err != nil {
		panic(err)
	}
	t := &refThread{id: len(m.threads), prog: prog, pc: pc, blockedOn: -1}
	m.threads = append(m.threads, t)
	return t
}

func (m *refMachine) run(maxSteps int64) error {
	for steps := int64(0); ; steps++ {
		if steps >= maxSteps {
			return ErrStepLimit
		}
		progressed, anyLive := m.step()
		if !anyLive {
			return nil
		}
		if !progressed {
			return ErrDeadlock
		}
	}
}

func (m *refMachine) step() (progressed, anyLive bool) {
	n := len(m.threads)
	for i := 0; i < n; i++ {
		t := m.threads[(m.rr+i)%n]
		if t.halted || t.blocked() {
			continue
		}
		m.rr = (m.rr + i + 1) % n
		m.exec(t)
		return true, m.liveAny()
	}
	return false, m.liveAny()
}

func (m *refMachine) liveAny() bool {
	for _, t := range m.threads {
		if !t.halted {
			return true
		}
	}
	return false
}

func (m *refMachine) traced(t *refThread) bool {
	if m.mode != ModeEmulateCS {
		return false
	}
	if len(t.heldLocks) > 0 {
		return !m.nonFlow[t.heldLocks[0]]
	}
	return t.window > 0
}

func (m *refMachine) charge(t *refThread, pc int, emulated bool) {
	var c int64
	if emulated {
		cache := m.translated[t.prog]
		if cache == nil {
			cache = make([]bool, len(t.prog.Code))
			m.translated[t.prog] = cache
		}
		c = m.cost.Emulate
		if !cache[pc] {
			c += m.cost.Translate
			cache[pc] = true
		}
	} else {
		c = m.cost.direct(t.prog.Code[pc].Op)
	}
	t.cycles += c
	m.total += c
}

func (m *refMachine) lock(id int) *refLock {
	l, ok := m.locks[id]
	if !ok {
		l = &refLock{owner: -1}
		m.locks[id] = l
	}
	return l
}

func (m *refMachine) exec(t *refThread) {
	if t.pc < 0 || t.pc >= len(t.prog.Code) {
		t.halted = true
		return
	}
	pc := t.pc
	in := t.prog.Code[pc]
	emu := m.traced(t)

	switch in.Op {
	case LOCK:
		id := int(in.Imm)
		l := m.lock(id)
		switch {
		case l.owner == t.id && t.granted:
			t.granted = false
			t.blockedOn = -1
		case l.owner == -1:
			l.owner = t.id
		default:
			t.blockedOn = id
			l.waiters = append(l.waiters, t)
			return
		}
		t.heldLocks = append(t.heldLocks, id)
		if len(t.heldLocks) == 1 {
			t.window = 0
			if m.tracer != nil && m.mode == ModeEmulateCS && !m.nonFlow[id] {
				m.tracer.OnLock(t.id, id)
			}
		}
		m.charge(t, pc, m.traced(t))
		t.pc++
		return
	case UNLOCK:
		id := int(in.Imm)
		idx := -1
		for i, h := range t.heldLocks {
			if h == id {
				idx = i
				break
			}
		}
		if idx < 0 {
			panic(fmt.Sprintf("ref: thread %d unlocks %d it does not hold", t.id, id))
		}
		wasEmu := m.traced(t)
		outermost := idx == 0 && len(t.heldLocks) == 1
		t.heldLocks = append(t.heldLocks[:idx], t.heldLocks[idx+1:]...)
		l := m.lock(id)
		l.owner = -1
		if len(l.waiters) > 0 {
			next := l.waiters[0]
			l.waiters = l.waiters[1:]
			l.owner = next.id
			next.granted = true
		}
		if outermost && wasEmu {
			t.window = m.maxWindow
			if m.tracer != nil {
				m.tracer.OnUnlock(t.id, id)
			}
		}
		m.charge(t, pc, wasEmu)
		t.pc++
		return
	}

	if len(t.heldLocks) == 0 && t.window > 0 {
		defer func() { t.window-- }()
	}
	m.charge(t, pc, emu)

	var ac *Access
	mem := func(base byte, off int64) uint32 { return uint32(t.regs[base] + off) }
	switch in.Op {
	case NOP:
	case HALT:
		t.halted = true
	case MOVRR:
		ac = &Access{Kind: AccMove, Src: RegLoc(t.id, in.RS), Dst: RegLoc(t.id, in.RD),
			Reads: []Loc{RegLoc(t.id, in.RS)}}
		t.regs[in.RD] = t.regs[in.RS]
	case MOVI:
		ac = &Access{Kind: AccWrite, Dst: RegLoc(t.id, in.RD)}
		t.regs[in.RD] = in.Imm
	case LOAD:
		a := mem(in.RS, in.Off)
		ac = &Access{Kind: AccMove, Src: MemLoc(a), Dst: RegLoc(t.id, in.RD),
			Reads: []Loc{RegLoc(t.id, in.RS), MemLoc(a)}}
		t.regs[in.RD] = m.mem[a]
	case STORE:
		a := mem(in.RD, in.Off)
		ac = &Access{Kind: AccMove, Src: RegLoc(t.id, in.RS), Dst: MemLoc(a),
			Reads: []Loc{RegLoc(t.id, in.RD), RegLoc(t.id, in.RS)}}
		m.mem[a] = t.regs[in.RS]
	case STOREI:
		a := mem(in.RD, in.Off)
		ac = &Access{Kind: AccWrite, Dst: MemLoc(a), Reads: []Loc{RegLoc(t.id, in.RD)}}
		m.mem[a] = in.Imm
	case ADD:
		ac = &Access{Kind: AccWrite, Dst: RegLoc(t.id, in.RD),
			Reads: []Loc{RegLoc(t.id, in.RS), RegLoc(t.id, in.RT)}}
		t.regs[in.RD] = t.regs[in.RS] + t.regs[in.RT]
	case SUB:
		ac = &Access{Kind: AccWrite, Dst: RegLoc(t.id, in.RD),
			Reads: []Loc{RegLoc(t.id, in.RS), RegLoc(t.id, in.RT)}}
		t.regs[in.RD] = t.regs[in.RS] - t.regs[in.RT]
	case ADDI:
		ac = &Access{Kind: AccWrite, Dst: RegLoc(t.id, in.RD),
			Reads: []Loc{RegLoc(t.id, in.RS)}}
		t.regs[in.RD] = t.regs[in.RS] + in.Imm
	case INCM:
		a := mem(in.RD, in.Off)
		ac = &Access{Kind: AccWrite, Dst: MemLoc(a),
			Reads: []Loc{RegLoc(t.id, in.RD), MemLoc(a)}}
		m.mem[a]++
	case DECM:
		a := mem(in.RD, in.Off)
		ac = &Access{Kind: AccWrite, Dst: MemLoc(a),
			Reads: []Loc{RegLoc(t.id, in.RD), MemLoc(a)}}
		m.mem[a]--
	case JMP:
		t.pc = in.Target
		return
	case JEQ, JNE, JLT, JGE:
		ac = &Access{Kind: AccRead, Reads: []Loc{RegLoc(t.id, in.RS)}}
		v := t.regs[in.RS]
		taken := false
		switch in.Op {
		case JEQ:
			taken = v == in.Imm
		case JNE:
			taken = v != in.Imm
		case JLT:
			taken = v < in.Imm
		case JGE:
			taken = v >= in.Imm
		}
		if m.tracer != nil && emu {
			m.refEmit(t, pc, in, ac)
		}
		if taken {
			t.pc = in.Target
			return
		}
		t.pc++
		return
	}
	if ac != nil && m.tracer != nil && emu {
		m.refEmit(t, pc, in, ac)
	}
	if !t.halted {
		t.pc++
	}
}

func (m *refMachine) refEmit(t *refThread, pc int, in Instr, ac *Access) {
	ac.Thread = t.id
	ac.PC = pc
	ac.Instr = in
	ac.InCS = len(t.heldLocks) > 0
	if ac.InCS {
		ac.Lock = t.heldLocks[0]
	}
	ac.InWindow = !ac.InCS && t.window > 0
	m.tracer.OnAccess(*ac)
}

// --- trace comparison -------------------------------------------------

// traceEvent is a retained, normalized tracer event (Access.Reads is
// copied out of the machine's reusable buffer).
type traceEvent struct {
	kind   string // "lock", "unlock", "access"
	thread int
	lock   int
	ac     Access
	reads  []Loc
}

type captureTracer struct{ events []traceEvent }

func (c *captureTracer) OnAccess(ac Access) {
	ev := traceEvent{kind: "access", thread: ac.Thread, ac: ac}
	ev.reads = append(ev.reads, ac.Reads...)
	ev.ac.Reads = nil
	c.events = append(c.events, ev)
}
func (c *captureTracer) OnLock(tid, lock int) {
	c.events = append(c.events, traceEvent{kind: "lock", thread: tid, lock: lock})
}
func (c *captureTracer) OnUnlock(tid, lock int) {
	c.events = append(c.events, traceEvent{kind: "unlock", thread: tid, lock: lock})
}

func sameEvent(a, b traceEvent) bool {
	if a.kind != b.kind || a.thread != b.thread || a.lock != b.lock {
		return false
	}
	x, y := a.ac, b.ac
	if x.Thread != y.Thread || x.PC != y.PC || x.Instr != y.Instr || x.Kind != y.Kind ||
		x.Src != y.Src || x.Dst != y.Dst || x.InCS != y.InCS || x.Lock != y.Lock ||
		x.InWindow != y.InWindow {
		return false
	}
	if len(a.reads) != len(b.reads) {
		return false
	}
	for i := range a.reads {
		if a.reads[i] != b.reads[i] {
			return false
		}
	}
	return true
}

// --- random program generation ----------------------------------------

// genProg builds a random but well-formed program: straight-line data
// runs, bounded counter loops, forward branches, and well-nested
// critical sections — so execution always terminates and UNLOCK always
// matches a held lock, while still covering branches (taken and not),
// lock hand-offs, post-CS windows and window expiry.
func genProg(r *rand.Rand, name string) *Program {
	p := &Program{Name: name, Labels: map[string]int{"main": 0}}
	emit := func(in Instr) { p.Code = append(p.Code, in) }
	dataOp := func() Instr {
		rd := byte(r.Intn(NumRegs))
		rs := byte(r.Intn(NumRegs))
		rt := byte(r.Intn(NumRegs))
		imm := int64(r.Intn(64) - 8)
		// Addresses derive from register contents; keep offsets small so
		// most land in the dense range while negative register values
		// still exercise the wrap-around spill path.
		off := int64(r.Intn(16))
		switch r.Intn(10) {
		case 0:
			return Instr{Op: NOP}
		case 1:
			return Instr{Op: MOVRR, RD: rd, RS: rs}
		case 2:
			return Instr{Op: MOVI, RD: rd, Imm: imm * 64}
		case 3:
			return Instr{Op: LOAD, RD: rd, RS: rs, Off: off}
		case 4:
			return Instr{Op: STORE, RD: rd, RS: rs, Off: off}
		case 5:
			return Instr{Op: STOREI, RD: rd, Imm: imm, Off: off}
		case 6:
			return Instr{Op: ADD, RD: rd, RS: rs, RT: rt}
		case 7:
			return Instr{Op: SUB, RD: rd, RS: rs, RT: rt}
		case 8:
			return Instr{Op: ADDI, RD: rd, RS: rs, Imm: imm}
		default:
			if r.Intn(2) == 0 {
				return Instr{Op: INCM, RD: rd, Off: off}
			}
			return Instr{Op: DECM, RD: rd, Off: off}
		}
	}
	dataRun := func(n int) {
		for i := 0; i < n; i++ {
			emit(dataOp())
		}
	}
	for frag := 0; frag < 3+r.Intn(5); frag++ {
		switch r.Intn(4) {
		case 0: // straight-line run
			dataRun(1 + r.Intn(6))
		case 1: // bounded counter loop
			ctr := byte(r.Intn(NumRegs))
			emit(Instr{Op: MOVI, RD: ctr, Imm: int64(1 + r.Intn(4))})
			top := len(p.Code)
			dataRunNoReg := 1 + r.Intn(3)
			for i := 0; i < dataRunNoReg; i++ {
				in := dataOp()
				// The loop counter must only be touched by the decrement.
				if (in.Op == MOVRR || in.Op == MOVI || in.Op == LOAD ||
					in.Op == ADD || in.Op == SUB || in.Op == ADDI) && in.RD == ctr {
					in.RD = (ctr + 1) % NumRegs
				}
				emit(in)
			}
			emit(Instr{Op: ADDI, RD: ctr, RS: ctr, Imm: -1})
			emit(Instr{Op: JNE, RS: ctr, Imm: 0, Target: top})
		case 2: // critical section, possibly nested
			outer := 1 + r.Intn(3)
			emit(Instr{Op: LOCK, Imm: int64(outer)})
			dataRun(1 + r.Intn(4))
			if r.Intn(3) == 0 {
				inner := outer + 1 + r.Intn(2)
				emit(Instr{Op: LOCK, Imm: int64(inner)})
				dataRun(1 + r.Intn(3))
				emit(Instr{Op: UNLOCK, Imm: int64(inner)})
			}
			emit(Instr{Op: UNLOCK, Imm: int64(outer)})
			dataRun(r.Intn(4)) // post-CS window activity
		case 3: // forward branch over a short run
			cond := byte(r.Intn(NumRegs))
			jumpAt := len(p.Code)
			emit(Instr{}) // placeholder
			dataRun(1 + r.Intn(3))
			ops := []Op{JEQ, JNE, JLT, JGE}
			p.Code[jumpAt] = Instr{Op: ops[r.Intn(len(ops))], RS: cond,
				Imm: int64(r.Intn(8)), Target: len(p.Code)}
		}
	}
	emit(Instr{Op: HALT})
	return p
}

// --- the differential test --------------------------------------------

func runDifferential(t *testing.T, seed int64, mode ExecMode, withTracer bool) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))

	nProgs := 1 + r.Intn(2)
	progs := make([]*Program, nProgs)
	for i := range progs {
		progs[i] = genProg(r, fmt.Sprintf("fuzz%d_%d", seed, i))
	}

	m := NewMachine()
	m.Mode = mode
	ref := newRefMachine()
	ref.mode = mode

	var mTrace, refTrace *captureTracer
	if withTracer {
		mTrace, refTrace = &captureTracer{}, &captureTracer{}
		m.Tracer = mTrace
		ref.tracer = refTrace
	}

	nThreads := 1 + r.Intn(3)
	for i := 0; i < nThreads; i++ {
		prog := progs[r.Intn(nProgs)]
		th, err := m.Spawn(prog, "main")
		if err != nil {
			t.Fatal(err)
		}
		rt := ref.spawn(prog, "main")
		for j := 0; j < NumRegs; j++ {
			v := int64(r.Intn(0x300))
			th.Regs[j], rt.regs[j] = v, v
		}
	}

	const limit = 5000
	errM := m.Run(limit)
	errR := ref.run(limit)
	if errM != errR {
		t.Fatalf("seed %d mode %d: Run: machine=%v reference=%v", seed, mode, errM, errR)
	}
	if m.TotalCycles != ref.total {
		t.Fatalf("seed %d mode %d: TotalCycles %d != %d", seed, mode, m.TotalCycles, ref.total)
	}
	for i, th := range m.Threads {
		rt := ref.threads[i]
		if th.PC != rt.pc || th.Cycles != rt.cycles || th.Halted() != rt.halted || th.Regs != rt.regs {
			t.Fatalf("seed %d mode %d thread %d: (pc=%d cyc=%d halted=%v regs=%v) != ref (pc=%d cyc=%d halted=%v regs=%v)",
				seed, mode, i, th.PC, th.Cycles, th.Halted(), th.Regs, rt.pc, rt.cycles, rt.halted, rt.regs)
		}
	}
	for a, v := range ref.mem {
		if got := m.Mem.Load(a); got != v {
			t.Fatalf("seed %d mode %d: mem[%#x] = %d, reference %d", seed, mode, a, got, v)
		}
	}
	if withTracer {
		if len(mTrace.events) != len(refTrace.events) {
			t.Fatalf("seed %d mode %d: %d trace events, reference %d",
				seed, mode, len(mTrace.events), len(refTrace.events))
		}
		for i := range mTrace.events {
			if !sameEvent(mTrace.events[i], refTrace.events[i]) {
				t.Fatalf("seed %d mode %d: trace event %d differs:\n  got %+v\n  ref %+v",
					seed, mode, i, mTrace.events[i], refTrace.events[i])
			}
		}
	}
}

func TestDifferentialAgainstReference(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		runDifferential(t, seed, ModeDirect, false)
		runDifferential(t, seed, ModeEmulateCS, true)
		runDifferential(t, seed, ModeEmulateCS, false)
	}
}

// TestDifferentialQueuePrograms pins the library's real critical
// sections — the shapes every app executes — against the reference.
func TestDifferentialQueuePrograms(t *testing.T) {
	push := MustAssemble("p", `
	push:
		lock 1
		load  r3, [r1]
		add   r6, r3, r3
		movi  r7, 0x1010
		add   r7, r7, r6
		store [r7+0], r4
		store [r7+1], r5
		incm  [r1]
		unlock 1
		halt
	`)
	pop := MustAssemble("q", `
	pop:
		lock 1
		decm  [r1]
		load  r3, [r1]
		add   r6, r3, r3
		movi  r7, 0x1010
		add   r7, r7, r6
		load  r4, [r7+0]
		load  r5, [r7+1]
		unlock 1
		store [r9+0], r4
		store [r9+1], r5
		halt
	`)
	m := NewMachine()
	m.Mode = ModeEmulateCS
	ref := newRefMachine()
	ref.mode = ModeEmulateCS
	mT, rT := &captureTracer{}, &captureTracer{}
	m.Tracer, ref.tracer = mT, rT

	for _, spec := range []struct {
		prog  *Program
		entry string
		regs  map[byte]int64
	}{
		{push, "push", map[byte]int64{1: 0x1000, 4: 7, 5: 8}},
		{pop, "pop", map[byte]int64{1: 0x1000, 9: 0x8000}},
	} {
		th, err := m.Spawn(spec.prog, spec.entry)
		if err != nil {
			t.Fatal(err)
		}
		rt := ref.spawn(spec.prog, spec.entry)
		for reg, v := range spec.regs {
			th.Regs[reg], rt.regs[reg] = v, v
		}
	}
	if errM, errR := m.Run(100000), ref.run(100000); errM != nil || errR != nil {
		t.Fatalf("run: machine=%v reference=%v", errM, errR)
	}
	if m.TotalCycles != ref.total {
		t.Fatalf("TotalCycles %d != %d", m.TotalCycles, ref.total)
	}
	if len(mT.events) != len(rT.events) {
		t.Fatalf("%d trace events, reference %d", len(mT.events), len(rT.events))
	}
	for i := range mT.events {
		if !sameEvent(mT.events[i], rT.events[i]) {
			t.Fatalf("trace event %d differs:\n  got %+v\n  ref %+v", i, mT.events[i], rT.events[i])
		}
	}
}
