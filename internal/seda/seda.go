// Package seda is a small Staged Event Driven Architecture middleware
// (Welsh et al., SOSP'01) augmented for transactional profiling per
// Figure 5 of the paper (§4.2).
//
// Stages communicate via queues of elements; each element carries the
// transaction context captured when it was enqueued. A stage worker
// dequeues an element, computes its current transaction context by
// appending the stage (with the same collapse/loop-prune rules as
// event-driven programs) and processes it; when it enqueues an element to
// a downstream stage, the new element inherits the worker's current
// context. Applications written against this middleware need no
// modification to be transactionally profiled.
//
// Queue transport is pluggable (Putter) so stages run equally under the
// virtual-time simulator or real goroutines.
package seda

import (
	"fmt"

	"whodunit/internal/tranctx"
)

// Elem is a stage-queue element: application data plus the transaction
// context captured at enqueue time (Figure 5's tran_ctxt field).
type Elem struct {
	Ctxt *tranctx.Ctxt
	Data any
}

// Putter abstracts a stage's input queue: the simulator wires a
// vclock.Queue here, tests can use a plain slice.
type Putter interface {
	Put(v any)
}

// Stage is a named SEDA stage within a program.
type Stage struct {
	Program string
	Name    string
	// In is where upstream stages enqueue elements for this stage.
	In Putter
}

// NewStage returns a stage for the given program.
func NewStage(program, name string, in Putter) *Stage {
	return &Stage{Program: program, Name: name, In: in}
}

func (s *Stage) String() string { return fmt.Sprintf("%s#%s", s.Program, s.Name) }

// Worker is one stage worker thread's view of the middleware: it tracks
// the current transaction context across Process/Enqueue (Figure 5's
// curr_tran_ctxt).
type Worker struct {
	Stage *Stage
	// OnDispatch, if set, receives the freshly computed context before
	// each element is processed; the profiler hooks in here.
	OnDispatch func(curr *tranctx.Ctxt)

	table *tranctx.Table
	curr  *tranctx.Ctxt
}

// NewWorker returns a worker for stage interning contexts in table.
func NewWorker(stage *Stage, table *tranctx.Table) *Worker {
	return &Worker{Stage: stage, table: table, curr: table.Root()}
}

// Curr returns the worker's current transaction context.
func (w *Worker) Curr() *tranctx.Ctxt { return w.curr }

// Begin computes the worker's current context for elem (Figure 5, lines
// 5-6): the element's captured context extended with this stage, with
// loops pruned. Call it when an element has been dequeued, before
// processing; it returns the element's payload for convenience.
func (w *Worker) Begin(elem *Elem) any {
	base := elem.Ctxt
	if base == nil {
		base = w.table.Root()
	}
	w.curr = base.Append(tranctx.StageHop(w.Stage.Program, w.Stage.Name))
	if w.OnDispatch != nil {
		w.OnDispatch(w.curr)
	}
	return elem.Data
}

// Enqueue wraps data in an element stamped with the worker's current
// transaction context (Figure 5, line 12) and puts it on dst's input
// queue.
func (w *Worker) Enqueue(dst *Stage, data any) *Elem {
	e := &Elem{Ctxt: w.curr, Data: data}
	if dst.In == nil {
		panic("seda: stage " + dst.Name + " has no input queue")
	}
	dst.In.Put(e)
	return e
}

// Inject enqueues data to dst with the root (external stimulus) context —
// used by whatever feeds the first stage of the pipeline.
func Inject(table *tranctx.Table, dst *Stage, data any) *Elem {
	e := &Elem{Ctxt: table.Root(), Data: data}
	dst.In.Put(e)
	return e
}
