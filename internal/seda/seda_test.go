package seda

import (
	"reflect"
	"testing"

	"whodunit/internal/tranctx"
)

// sliceQueue is a trivial Putter for tests.
type sliceQueue struct{ items []*Elem }

func (q *sliceQueue) Put(v any) { q.items = append(q.items, v.(*Elem)) }
func (q *sliceQueue) pop() *Elem {
	e := q.items[0]
	q.items = q.items[1:]
	return e
}

func TestPipelineContexts(t *testing.T) {
	// A three-stage pipeline: contexts accumulate stage hops in order.
	tb := tranctx.NewTable()
	qa, qb, qc := &sliceQueue{}, &sliceQueue{}, &sliceQueue{}
	sa := NewStage("app", "A", qa)
	sb := NewStage("app", "B", qb)
	sc := NewStage("app", "C", qc)
	wa, wb, wc := NewWorker(sa, tb), NewWorker(sb, tb), NewWorker(sc, tb)

	Inject(tb, sa, "req")
	wa.Begin(qa.pop())
	wa.Enqueue(sb, "req")
	wb.Begin(qb.pop())
	wb.Enqueue(sc, "req")
	got := wc.Begin(qc.pop())

	if got != "req" {
		t.Fatalf("payload = %v", got)
	}
	if !reflect.DeepEqual(wc.Curr().Labels(), []string{"A", "B", "C"}) {
		t.Fatalf("ctxt = %v", wc.Curr().Labels())
	}
}

func TestBranchingContextsDiffer(t *testing.T) {
	// Cache stage forwards to Write directly (hit) or via Miss (miss):
	// Write sees two distinct contexts — the Figure 10 situation.
	tb := tranctx.NewTable()
	qw := &sliceQueue{}
	cache := NewStage("hab", "Cache", &sliceQueue{})
	miss := NewStage("hab", "Miss", &sliceQueue{})
	write := NewStage("hab", "Write", qw)

	wCache := NewWorker(cache, tb)
	wMiss := NewWorker(miss, tb)
	wWrite := NewWorker(write, tb)

	// Hit path.
	wCache.Begin(&Elem{Ctxt: tb.Root(), Data: 1})
	wCache.Enqueue(write, 1)
	// Miss path.
	wCache.Begin(&Elem{Ctxt: tb.Root(), Data: 2})
	missElem := &Elem{Ctxt: wCache.Curr(), Data: 2}
	wMiss.Begin(missElem)
	wMiss.Enqueue(write, 2)

	wWrite.Begin(qw.pop())
	hitCtxt := wWrite.Curr().String()
	wWrite.Begin(qw.pop())
	missCtxt := wWrite.Curr().String()
	if hitCtxt == missCtxt {
		t.Fatal("hit and miss write contexts must differ")
	}
	if hitCtxt != "hab#Cache | hab#Write" {
		t.Fatalf("hit ctxt = %q", hitCtxt)
	}
	if missCtxt != "hab#Cache | hab#Miss | hab#Write" {
		t.Fatalf("miss ctxt = %q", missCtxt)
	}
}

func TestLoopPruningAcrossStages(t *testing.T) {
	// Request bouncing A -> B -> A prunes back to [A] (§4.2 uses the same
	// rule as events).
	tb := tranctx.NewTable()
	qa, qb := &sliceQueue{}, &sliceQueue{}
	sa, sb := NewStage("p", "A", qa), NewStage("p", "B", qb)
	wa, wb := NewWorker(sa, tb), NewWorker(sb, tb)

	Inject(tb, sa, nil)
	wa.Begin(qa.pop())
	wa.Enqueue(sb, nil)
	wb.Begin(qb.pop())
	wb.Enqueue(sa, nil)
	wa.Begin(qa.pop())
	if !reflect.DeepEqual(wa.Curr().Labels(), []string{"A"}) {
		t.Fatalf("ctxt = %v, want [A]", wa.Curr().Labels())
	}
}

func TestOnDispatchHook(t *testing.T) {
	tb := tranctx.NewTable()
	q := &sliceQueue{}
	s := NewStage("p", "S", q)
	w := NewWorker(s, tb)
	var seen string
	w.OnDispatch = func(c *tranctx.Ctxt) { seen = c.String() }
	w.Begin(&Elem{Ctxt: tb.Root()})
	if seen != "p#S" {
		t.Fatalf("hook saw %q", seen)
	}
}

func TestEnqueueWithoutQueuePanics(t *testing.T) {
	tb := tranctx.NewTable()
	s := NewStage("p", "S", &sliceQueue{})
	w := NewWorker(s, tb)
	bad := NewStage("p", "Bad", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	w.Enqueue(bad, nil)
}
