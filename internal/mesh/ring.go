package mesh

import (
	"fmt"
	"sort"
)

// KeyHash is the hash the ring places keys and virtual nodes with:
// 64-bit FNV-1a through a murmur-style avalanche finalizer. Plain
// FNV-1a clusters keys that differ only in trailing characters
// ("k0041"/"k0042") onto adjacent circle positions, which collapses the
// ring onto a few arcs; the finalizer spreads them. Exported so app
// models can derive deterministic per-key values from the same function
// their shards route by.
func KeyHash(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

type ringPoint struct {
	hash uint64
	svc  *Service
}

// Ring is a consistent-hash router over a sharded tier: each shard owns
// vnodes points on a 64-bit circle and a key routes to the first point
// at or clockwise after its hash. Adding or removing one shard remaps
// only the keys that shard's arcs cover.
type Ring struct {
	points []ringPoint
}

// NewRing builds a ring with vnodes virtual points per shard. Point
// placement is a pure function of the shard names, so routing is
// deterministic across runs and processes.
func NewRing(vnodes int, shards ...*Service) *Ring {
	if vnodes < 1 {
		panic(fmt.Sprintf("mesh: ring needs at least one vnode per shard (got %d)", vnodes))
	}
	if len(shards) == 0 {
		panic("mesh: ring needs at least one shard")
	}
	r := &Ring{points: make([]ringPoint, 0, vnodes*len(shards))}
	for _, s := range shards {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: KeyHash(fmt.Sprintf("%s#%d", s.Name, v)), svc: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.svc.Name < b.svc.Name // deterministic on (infeasible) hash ties
	})
	return r
}

// Pick returns the shard owning key.
func (r *Ring) Pick(key string) *Service {
	h := KeyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].svc
}

// Route implements Router.
func (r *Ring) Route(req *Request) *Service { return r.Pick(req.Key) }
