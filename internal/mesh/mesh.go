// Package mesh is a composable service-mesh topology layer assembled
// purely from the public whodunit primitives: services and proxy
// elements are stages with worker pools, hops are App.NewQueue queues
// carrying one reusable request envelope per in-flight request, and
// transaction context crosses every hop through the stages' ipc
// endpoints (Send/Recv) — so a mesh topology of any depth stitches into
// one transaction graph with no propagation code in the handlers.
//
// A Topology wraps an App. Service declares a tier (stage + input queue
// + workers running a Handler); Proxy declares a forwarding hop whose
// execution mode (see Mode) sets its charged CPU and queue behavior;
// NewRing consistent-hash-shards a tier. Handlers talk to downstream
// tiers through Call.Invoke (or Forward/Await, or InvokeRetry under
// fault plans) and requests enter the mesh through Service.Inject.
//
// Mesh worker loops never terminate on their own: drive the app with
// RunUntil/RunFor or the serving harness.
package mesh

import (
	"fmt"

	"whodunit"
)

// Request is the reusable envelope of one mesh request — the same
// pointer travels the entire round trip (the tpcw envelope discipline),
// so a steady-state request allocates nothing. Handlers may rewrite Op,
// Key and Size before Invoke to issue a sub-request (restore them
// after); the serving tier reports its result through RespSize.
type Request struct {
	Op     string
	Key    string
	Size   int64 // request payload bytes
	Stream int

	// RespSize is the response payload in bytes, set by the tier that
	// answers; proxies charge their response-leg byte costs against it.
	RespSize int64

	// Start is the virtual injection time (set by Inject).
	Start whodunit.Time

	msg    whodunit.Msg
	replyQ *whodunit.Queue
	entry  bool
}

// Handler runs a service's work for one request, in worker context.
type Handler func(c *Call)

// Topology is a mesh under construction atop one App.
type Topology struct {
	app      *whodunit.App
	services []*Service
	byName   map[string]*Service
}

// New starts an empty topology on app.
func New(app *whodunit.App) *Topology {
	return &Topology{app: app, byName: map[string]*Service{}}
}

// App returns the underlying application.
func (t *Topology) App() *whodunit.App { return t.app }

// Services returns every declared service in declaration order.
func (t *Topology) Services() []*Service {
	out := make([]*Service, len(t.services))
	copy(out, t.services)
	return out
}

// ByName looks a service up.
func (t *Topology) ByName(name string) (*Service, bool) {
	s, ok := t.byName[name]
	return s, ok
}

// Service is one mesh tier: a stage, its input queue, and a worker pool
// running the handler. Entry services additionally begin transactions
// (Inject) and complete them (OnComplete).
type Service struct {
	Name string

	// OnComplete, when set, observes each entry request as its response
	// leaves the mesh; now is the virtual completion time. The envelope
	// may be recycled from inside the hook.
	OnComplete func(req *Request, now whodunit.Time)

	topo    *Topology
	st      *whodunit.Stage
	in      *whodunit.Queue
	handler Handler
	handled int64

	// Per-op frame/path caches: built once per distinct op so the
	// steady-state serve path concatenates no strings. The simulator
	// runs one thread at a time with baton hand-off, so the maps need
	// no locks.
	handleFrames map[string]string
	entryPaths   map[string][]string
}

// Service declares a tier with the given worker count and handler.
// Stage options (StageCPU, StageMode) pass through to the stage.
func (t *Topology) Service(name string, workers int, h Handler, opts ...whodunit.StageOption) *Service {
	if _, dup := t.byName[name]; dup {
		panic(fmt.Sprintf("mesh: duplicate service %q", name))
	}
	if workers < 1 {
		panic(fmt.Sprintf("mesh: service %q needs at least one worker (got %d)", name, workers))
	}
	if h == nil {
		panic(fmt.Sprintf("mesh: service %q has no handler", name))
	}
	st := t.app.Stage(name, opts...)
	s := &Service{
		Name:         name,
		topo:         t,
		st:           st,
		in:           t.app.NewQueueOn(st.Shard(), name+"-in"),
		handler:      h,
		handleFrames: map[string]string{},
		entryPaths:   map[string][]string{},
	}
	t.services = append(t.services, s)
	t.byName[name] = s
	for w := 0; w < workers; w++ {
		replyQ := t.app.NewQueueOn(st.Shard(), fmt.Sprintf("%s-reply-%d", name, w))
		s.st.Go(fmt.Sprintf("%s-%d", name, w), func(th *whodunit.Thread, pr *whodunit.Probe) {
			c := &Call{svc: s, th: th, pr: pr, replyQ: replyQ}
			for {
				s.serve(c, s.in.Get(th).(*Request))
			}
		})
	}
	return s
}

// Stage returns the service's stage.
func (s *Service) Stage() *whodunit.Stage { return s.st }

// Handled returns how many requests the service has served — the
// shard-load counter of consistent-hash tiers.
func (s *Service) Handled() int64 { return s.handled }

// Inject puts an entry request into the service from scheduler or
// client context: the serving worker begins a fresh transaction for it,
// and when its response leaves the mesh OnComplete fires.
func (s *Service) Inject(req *Request) {
	req.entry = true
	req.msg = whodunit.Msg{}
	req.replyQ = nil
	req.Start = s.topo.app.Sim().Now()
	s.in.Put(req)
}

// Ingress is a cross-domain injection channel into an entry service of
// a sharded app (see whodunit.WithShards): Inject from shard 0's
// scheduler context ships the envelope over an App.Pipe, arriving at
// the service's input queue `latency` later. Request.Start is the
// arrival time — the transport hop is modeled, not measured — so
// latency statistics are identical between serial and sharded runs.
// Create every Ingress before the app run starts.
type Ingress struct {
	svc     *Service
	pipe    *whodunit.Pipe
	latency whodunit.Duration
}

// Ingress returns an injection channel into s with the given transport
// latency (which must be positive: it is lookahead the epoch scheduler
// shards time by).
func (s *Service) Ingress(latency whodunit.Duration) *Ingress {
	return &Ingress{svc: s, pipe: s.topo.app.Pipe(0, s.in, latency), latency: latency}
}

// Inject ships an entry request over the ingress pipe. Call it from
// shard 0's execution (scheduler callbacks, e.g. a trace replay).
func (in *Ingress) Inject(req *Request) {
	req.entry = true
	req.msg = whodunit.Msg{}
	req.replyQ = nil
	req.Start = in.svc.topo.app.Sim().Now().Add(in.latency)
	in.pipe.Send(req)
}

// serve runs one request through the handler and relays the response
// upstream (or completes the transaction at the entry tier).
func (s *Service) serve(c *Call, req *Request) {
	c.req = req
	pr := c.pr
	if req.entry {
		req.entry = false
		s.st.BeginTxn(pr, s.entryPath(req.Op)...)
	} else {
		s.st.Endpoint().Recv(pr, req.msg)
	}
	upstream := req.replyQ
	func() {
		defer pr.Exit(pr.Enter(s.handleFrame(req.Op)))
		s.handler(c)
	}()
	if c.pending {
		panic(fmt.Sprintf("mesh: %s handler returned with a downstream call still in flight (Forward without Await)", s.Name))
	}
	s.handled++
	if upstream != nil {
		req.msg = s.st.Endpoint().Send(pr, nil)
		req.replyQ = nil
		upstream.Put(req)
		return
	}
	if s.OnComplete != nil {
		// The worker thread's clock, not App.Sim's: on a sharded app
		// this service may live on another time domain.
		s.OnComplete(req, c.th.Now())
	}
}

func (s *Service) handleFrame(op string) string {
	f, ok := s.handleFrames[op]
	if !ok {
		f = "handle_" + op
		s.handleFrames[op] = f
	}
	return f
}

func (s *Service) entryPath(op string) []string {
	p, ok := s.entryPaths[op]
	if !ok {
		p = []string{"rpc_" + op}
		s.entryPaths[op] = p
	}
	return p
}

// Call is a worker's view of the request it is serving: the probe to
// charge CPU against and the downstream calling surface. One Call per
// worker, reused across requests.
type Call struct {
	svc     *Service
	th      *whodunit.Thread
	pr      *whodunit.Probe
	replyQ  *whodunit.Queue
	req     *Request
	pending bool
}

// Req returns the request being served.
func (c *Call) Req() *Request { return c.req }

// Probe returns the worker's probe, for Enter/Exit frames.
func (c *Call) Probe() *whodunit.Probe { return c.pr }

// Thread returns the worker's simulator thread.
func (c *Call) Thread() *whodunit.Thread { return c.th }

// Service returns the service this call runs in.
func (c *Call) Service() *Service { return c.svc }

// Now returns the current virtual time (of the worker's time domain).
func (c *Call) Now() whodunit.Time { return c.th.Now() }

// Compute charges d of CPU to the current context.
func (c *Call) Compute(d whodunit.Duration) {
	if d > 0 {
		c.pr.Compute(d)
	}
}

// Forward sends the request envelope to the next tier and returns
// without waiting: the worker stays schedulable (a buffering proxy
// charges its copy cost here, overlapping the downstream). At most one
// downstream call may be in flight per request; pair with Await.
func (c *Call) Forward(to *Service) {
	if c.pending {
		panic(fmt.Sprintf("mesh: %s forwarded twice without Await", c.svc.Name))
	}
	c.pending = true
	c.req.msg = c.svc.st.Endpoint().Send(c.pr, nil)
	c.req.replyQ = c.replyQ
	to.in.Put(c.req)
}

// Await blocks until the forwarded request's response returns, and
// restores this worker's transaction context from it.
func (c *Call) Await() {
	if !c.pending {
		panic(fmt.Sprintf("mesh: %s awaited with no call in flight", c.svc.Name))
	}
	c.pending = false
	req := c.replyQ.Get(c.th).(*Request)
	c.svc.st.Endpoint().Recv(c.pr, req.msg)
	c.req = req
}

// Invoke is Forward immediately followed by Await — a synchronous
// downstream RPC.
func (c *Call) Invoke(to *Service) {
	c.Forward(to)
	c.Await()
}

// InvokeRetry is Invoke under a retry policy: each attempt re-sends the
// envelope and waits at most pol.Timeout for the response, retrying
// through Stage.Retry (so retried attempts surface as retry context in
// the CCT). It returns false when every attempt timed out.
//
// Built for drop-fault plans on mesh input queues, where a dropped
// message means the response never comes. The timeout must sit above
// the worst-case healthy round trip: a timeout must always mean the
// attempt's message was dropped, never that the response is merely late
// (a late response would desync the per-worker reply queue).
func (c *Call) InvokeRetry(to *Service, pol whodunit.RetryPolicy) bool {
	return c.svc.st.Retry(c.pr, pol, func(int) bool {
		c.Forward(to)
		c.pending = false
		v, ok := c.replyQ.GetTimeout(c.th, pol.Timeout)
		if !ok {
			return false
		}
		req := v.(*Request)
		c.svc.st.Endpoint().Recv(c.pr, req.msg)
		c.req = req
		return true
	})
}

// Router picks the downstream service for a request — the routing side
// of a proxy hop. To and Ring are the built-in routers.
type Router interface {
	Route(req *Request) *Service
}

type single struct{ s *Service }

func (r single) Route(*Request) *Service { return r.s }

// To routes every request to one service.
func To(s *Service) Router { return single{s} }

// Proxy declares a forwarding hop with the default cost model: a
// service whose handler inspects, forwards per the execution mode, and
// relays the response. The router picks the downstream per request
// (consistent-hash sharding plugs in here).
func (t *Topology) Proxy(name string, mode Mode, workers int, route Router, opts ...whodunit.StageOption) *Service {
	return t.ProxyWith(name, mode, workers, route, DefaultProxyCosts(), opts...)
}

// ProxyWith is Proxy with an explicit cost model.
func (t *Topology) ProxyWith(name string, mode Mode, workers int, route Router, costs ProxyCosts, opts ...whodunit.StageOption) *Service {
	if route == nil {
		panic(fmt.Sprintf("mesh: proxy %q has no router", name))
	}
	h := func(c *Call) {
		req := c.Req()
		c.Compute(costs.Header)
		if mode == FullBuffering {
			// Store-and-forward: the whole request is buffered (and
			// charged) before the downstream sees the first byte.
			c.Compute(costs.bytes(req.Size))
		}
		c.Forward(route.Route(req))
		if mode == StreamingWithBuffering {
			// The retained copy is built while the downstream already
			// works on the forwarded bytes: worker occupancy, not
			// request latency.
			c.Compute(costs.bytes(req.Size))
		}
		c.Await()
		c.Compute(costs.Header)
		if mode != Streaming {
			// Response leg: buffering modes materialise the response
			// before relaying it upstream.
			c.Compute(costs.bytes(req.RespSize))
		}
	}
	return t.Service(name, workers, h, opts...)
}
