package mesh_test

import (
	"fmt"
	"testing"

	"whodunit"
	"whodunit/internal/mesh"
)

// ringShards declares n dummy shard services for ring tests (the
// handlers never run).
func ringShards(n int) []*mesh.Service {
	app := whodunit.NewApp("ringtest")
	topo := mesh.New(app)
	shards := make([]*mesh.Service, n)
	for i := range shards {
		shards[i] = topo.Service(fmt.Sprintf("kv-%d", i), 1, func(*mesh.Call) {})
	}
	return shards
}

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("key-%05d", i)
	}
	return out
}

func TestRingDeterministicAndCovering(t *testing.T) {
	shards := ringShards(4)
	a := mesh.NewRing(16, shards...)
	b := mesh.NewRing(16, shards...)
	load := map[string]int{}
	for _, k := range keys(2000) {
		sa, sb := a.Pick(k), b.Pick(k)
		if sa != sb {
			t.Fatalf("two identical rings disagree on %q: %s vs %s", k, sa.Name, sb.Name)
		}
		load[sa.Name]++
	}
	for _, s := range shards {
		if load[s.Name] == 0 {
			t.Errorf("shard %s owns no keys", s.Name)
		}
	}
	// No shard should own a wildly outsized share at 16 vnodes.
	for name, n := range load {
		if n > 2000*3/4 {
			t.Errorf("shard %s owns %d of 2000 keys — ring is degenerate", name, n)
		}
	}
}

// TestRingConsistency pins the consistent-hashing property: removing
// one shard only remaps the keys that shard owned.
func TestRingConsistency(t *testing.T) {
	shards := ringShards(4)
	full := mesh.NewRing(16, shards...)
	reduced := mesh.NewRing(16, shards[:3]...)
	moved := 0
	for _, k := range keys(2000) {
		was := full.Pick(k)
		now := reduced.Pick(k)
		if was != shards[3] {
			if now != was {
				t.Fatalf("key %q moved %s -> %s though its shard was not removed", k, was.Name, now.Name)
			}
		} else {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("the removed shard owned no keys; the property was tested vacuously")
	}
}

func TestRingRoutesByKey(t *testing.T) {
	shards := ringShards(2)
	r := mesh.NewRing(8, shards...)
	req := &mesh.Request{Op: "get", Key: "some-key"}
	if got, want := r.Route(req), r.Pick("some-key"); got != want {
		t.Fatalf("Route picked %s, Pick picked %s", got.Name, want.Name)
	}
}

func TestKeyHashPinned(t *testing.T) {
	// Pin the placement function: changing it would silently remap
	// every golden scenario's shard routing.
	if got := mesh.KeyHash(""); got != 0xefd01f60ba992926 {
		t.Fatalf("KeyHash(\"\") = %#x, want 0xefd01f60ba992926", got)
	}
	if got := mesh.KeyHash("a"); got != 0x82a2a958a9bece5b {
		t.Fatalf("KeyHash(\"a\") = %#x, want 0x82a2a958a9bece5b", got)
	}
}
