package mesh

import (
	"fmt"

	"whodunit"
)

// Mode is a proxy hop's execution mode — how much of a message the
// proxy materialises before (and while) forwarding it, after arpc's
// ExecutionMode element semantics. The mode changes both the CPU a hop
// charges and when the downstream queue sees the message:
//
//   - Streaming: inspect the header, forward immediately. No
//     byte-proportional CPU, no added queueing delay.
//   - StreamingWithBuffering: forward immediately (downstream arrival
//     time matches Streaming) but build a retained copy of the payload
//     while the downstream already works — the copy costs proxy-worker
//     occupancy, not request latency.
//   - FullBuffering: buffer the entire message before forwarding, on
//     both the request and the response leg — store-and-forward: every
//     buffered byte is charged ahead of the downstream Put, so deep
//     chains of full-buffering hops stack latency.
type Mode int

const (
	Streaming Mode = iota
	StreamingWithBuffering
	FullBuffering
)

func (m Mode) String() string {
	switch m {
	case Streaming:
		return "streaming"
	case StreamingWithBuffering:
		return "streaming+buffering"
	case FullBuffering:
		return "full-buffering"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ProxyCosts is a proxy hop's CPU model: a fixed per-message header
// cost plus a per-KB cost for every buffered or copied payload KB.
type ProxyCosts struct {
	Header whodunit.Duration
	PerKB  whodunit.Duration
}

// DefaultProxyCosts is the cost model Topology.Proxy uses.
func DefaultProxyCosts() ProxyCosts {
	return ProxyCosts{Header: 60 * whodunit.Microsecond, PerKB: 3 * whodunit.Microsecond}
}

// bytes is the buffering/copy cost of an n-byte payload (rounded up to
// whole KBs; integer math keeps the charge bit-reproducible).
func (c ProxyCosts) bytes(n int64) whodunit.Duration {
	if n <= 0 {
		return 0
	}
	return c.PerKB * whodunit.Duration((n+1023)/1024)
}
