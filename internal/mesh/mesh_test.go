package mesh_test

import (
	"bytes"
	"fmt"
	"testing"

	"whodunit"
	"whodunit/internal/mesh"
)

// runChain drives n spaced-out requests through a
// frontend → proxy(mode) → backend chain and returns the mean
// round-trip latency and the report.
func runChain(t *testing.T, mode mesh.Mode, n int) (whodunit.Duration, *whodunit.Report) {
	t.Helper()
	app := whodunit.NewApp("chain", whodunit.WithMode(whodunit.ModeWhodunit), whodunit.WithSeed(1))
	topo := mesh.New(app)
	backend := topo.Service("backend", 1, func(c *mesh.Call) {
		c.Compute(2 * whodunit.Millisecond)
		c.Req().RespSize = 8 << 10
	})
	// Header cost sized so even the streaming proxy accumulates well
	// past the 1.5ms sampling interval and shows up in the graph.
	costs := mesh.ProxyCosts{Header: 600 * whodunit.Microsecond, PerKB: 3 * whodunit.Microsecond}
	proxy := topo.ProxyWith("proxy", mode, 1, mesh.To(backend), costs)
	completed, totalLat := 0, whodunit.Duration(0)
	front := topo.Service("frontend", 1, func(c *mesh.Call) {
		c.Compute(whodunit.Millisecond)
		c.Invoke(proxy)
	})
	front.OnComplete = func(req *mesh.Request, now whodunit.Time) {
		completed++
		totalLat += now.Sub(req.Start)
	}
	sim := app.Sim()
	for i := 0; i < n; i++ {
		req := &mesh.Request{Op: "get", Key: fmt.Sprintf("k%d", i), Size: 16 << 10}
		sim.At(whodunit.Time(whodunit.Duration(i)*10*whodunit.Millisecond), func() { front.Inject(req) })
	}
	rep := app.RunUntil(func() bool { return completed >= n })
	if completed != n {
		t.Fatalf("completed %d of %d requests", completed, n)
	}
	return totalLat / whodunit.Duration(n), rep
}

// TestProxyModesChangeLatency pins the queue-behavior semantics of the
// three execution modes: streaming forwards without byte costs,
// streaming-with-buffering adds only its response-leg copy to latency
// (the request-leg copy overlaps the backend), and full-buffering
// store-and-forwards both legs — strictly the slowest.
func TestProxyModesChangeLatency(t *testing.T) {
	latS, repS := runChain(t, mesh.Streaming, 20)
	latSWB, _ := runChain(t, mesh.StreamingWithBuffering, 20)
	latFB, repFB := runChain(t, mesh.FullBuffering, 20)
	if !(latS < latSWB && latSWB < latFB) {
		t.Fatalf("latency ordering violated: streaming %v, streaming+buffering %v, full-buffering %v",
			latS, latSWB, latFB)
	}
	// The buffering proxy also charges more CPU on its own stage.
	proxySamples := func(rep *whodunit.Report) int64 {
		for _, sr := range rep.Stages {
			if sr.Stage == "proxy" {
				return sr.Samples
			}
		}
		t.Fatal("no proxy stage in report")
		return 0
	}
	if s, fb := proxySamples(repS), proxySamples(repFB); fb <= s {
		t.Fatalf("full-buffering proxy charged %d samples, streaming %d; buffering should cost more CPU", fb, s)
	}
	if len(repS.Stages) != 3 || len(repFB.Stages) != 3 {
		t.Fatalf("expected 3 stages, got %d and %d", len(repS.Stages), len(repFB.Stages))
	}
}

// TestMeshDeterministic: two identical mesh runs render bit-identically.
func TestMeshDeterministic(t *testing.T) {
	_, repA := runChain(t, mesh.StreamingWithBuffering, 15)
	_, repB := runChain(t, mesh.StreamingWithBuffering, 15)
	var a, b bytes.Buffer
	if err := repA.JSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := repB.JSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two identical mesh runs render differently")
	}
}

// TestMeshStitchesCompleteGraph: the chain's transaction graph links
// all three tiers with no severed edges.
func TestMeshStitchesCompleteGraph(t *testing.T) {
	_, rep := runChain(t, mesh.Streaming, 10)
	if rep.Graph == nil {
		t.Fatal("no stitched graph")
	}
	stages := map[string]bool{}
	for _, n := range rep.Graph.Nodes {
		stages[n.Stage] = true
	}
	for _, want := range []string{"frontend", "proxy", "backend"} {
		if !stages[want] {
			t.Errorf("stage %s missing from the stitched graph", want)
		}
	}
	if len(rep.Graph.Missing) != 0 {
		t.Errorf("complete mesh stitched with missing stages: %v", rep.Graph.Missing)
	}
	if stages["(missing)"] {
		t.Error("severed edges in a complete mesh graph")
	}
}

// TestInvokeRetrySurvivesDrops: a drop-fault plan on the backend's
// input queue loses requests; InvokeRetry re-sends them under
// Stage.Retry and every request still completes.
func TestInvokeRetrySurvivesDrops(t *testing.T) {
	const n = 40
	plan := &whodunit.FaultPlan{
		Seed:     7,
		Messages: []whodunit.MessageFault{{Queue: "backend-in", Drop: 0.2}},
	}
	app := whodunit.NewApp("retrychain",
		whodunit.WithMode(whodunit.ModeWhodunit),
		whodunit.WithSeed(1),
		whodunit.WithFaults(plan))
	topo := mesh.New(app)
	backend := topo.Service("backend", 1, func(c *mesh.Call) {
		c.Compute(whodunit.Millisecond)
		c.Req().RespSize = 128
	})
	pol := whodunit.RetryPolicy{
		Attempts: 6,
		Timeout:  100 * whodunit.Millisecond,
		Backoff:  whodunit.Millisecond,
	}
	completed, failed := 0, 0
	front := topo.Service("frontend", 1, func(c *mesh.Call) {
		if !c.InvokeRetry(backend, pol) {
			failed++
		}
	})
	front.OnComplete = func(*mesh.Request, whodunit.Time) { completed++ }
	sim := app.Sim()
	for i := 0; i < n; i++ {
		req := &mesh.Request{Op: "get", Key: fmt.Sprintf("k%d", i), Size: 256}
		sim.At(whodunit.Time(whodunit.Duration(i)*5*whodunit.Millisecond), func() { front.Inject(req) })
	}
	rep := app.RunUntil(func() bool { return completed >= n })
	if completed != n || failed != 0 {
		t.Fatalf("completed %d/%d, %d gave up", completed, n, failed)
	}
	if rep.Faults == nil {
		t.Fatal("the fault plan injected nothing")
	}
}

// TestTopologyPanics pins the construction-time misuse checks.
func TestTopologyPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	app := whodunit.NewApp("panics")
	topo := mesh.New(app)
	h := func(*mesh.Call) {}
	topo.Service("a", 1, h)
	mustPanic("duplicate name", func() { topo.Service("a", 1, h) })
	mustPanic("zero workers", func() { topo.Service("b", 0, h) })
	mustPanic("nil handler", func() { topo.Service("c", 1, nil) })
	mustPanic("nil router", func() { topo.Proxy("d", mesh.Streaming, 1, nil) })
	mustPanic("empty ring", func() { mesh.NewRing(4) })
	mustPanic("zero vnodes", func() { mesh.NewRing(0, topo.Services()...) })
}

func TestModeString(t *testing.T) {
	cases := map[mesh.Mode]string{
		mesh.Streaming:              "streaming",
		mesh.StreamingWithBuffering: "streaming+buffering",
		mesh.FullBuffering:          "full-buffering",
		mesh.Mode(9):                "Mode(9)",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("Mode(%d).String() = %q, want %q", int(m), got, want)
		}
	}
}
