package ipc

import (
	"bytes"
	"net"
	"testing"

	"whodunit/internal/profiler"
	"whodunit/internal/tranctx"
	"whodunit/internal/vclock"
)

// twoStage builds the Figure 6/7 scenario: a caller stage with transaction
// paths through foo and bar calling an RPC service on a callee stage, over
// simulator queues.
func twoStage(t *testing.T) (callerProf, calleeProf *profiler.Profiler, run func(paths []string)) {
	t.Helper()
	callerProf = profiler.New("caller", profiler.ModeWhodunit)
	calleeProf = profiler.New("callee", profiler.ModeWhodunit)

	run = func(paths []string) {
		s := vclock.New()
		cpu := s.NewCPU("cpu", 2)
		reqQ := s.NewQueue("req")
		respQ := s.NewQueue("resp")
		calleeEP := NewEndpoint("callee")
		callerEP := NewEndpoint("caller")

		s.Go("callee", func(th *vclock.Thread) {
			pr := calleeProf.NewProbe(th, cpu)
			for i := 0; i < len(paths); i++ {
				msg := th.Get(reqQ).(Msg)
				if kind := calleeEP.Recv(pr, msg); kind != Request {
					t.Errorf("callee classified %v, want request", kind)
				}
				func() {
					defer pr.Exit(pr.Enter("svc_run"))
					defer pr.Exit(pr.Enter("callee_rpc_svc"))
					pr.Compute(10 * profiler.DefaultInterval)
					defer pr.Exit(pr.Enter("send"))
					respQ.Put(calleeEP.Send(pr, "resp"))
				}()
			}
		})
		s.Go("caller", func(th *vclock.Thread) {
			pr := callerProf.NewProbe(th, cpu)
			for _, path := range paths {
				func() {
					defer pr.Exit(pr.Enter("main_caller"))
					defer pr.Exit(pr.Enter(path))
					defer pr.Exit(pr.Enter("rpc_call"))
					pr.Compute(2 * profiler.DefaultInterval)
					before := pr.Txn().Key()
					reqQ.Put(callerEP.Send(pr, "req"))
					msg := th.Get(respQ).(Msg)
					if kind := callerEP.Recv(pr, msg); kind != Response {
						t.Errorf("caller classified %v, want response", kind)
					}
					if pr.Txn().Key() != before {
						t.Errorf("response did not restore caller context: %q != %q", pr.Txn().Key(), before)
					}
					pr.Compute(profiler.DefaultInterval)
				}()
			}
		})
		s.Run()
		s.Shutdown()
	}
	return callerProf, calleeProf, run
}

func TestRequestEstablishesCalleeContext(t *testing.T) {
	_, calleeProf, run := twoStage(t)
	run([]string{"foo"})
	entries := calleeProf.Entries()
	// Root tree (created on probe init has no samples) plus the foo-request
	// tree with all 10 samples.
	var withPrefix int
	for _, e := range entries {
		if len(e.Ctxt.Prefix) == 1 && e.Tree.Total() == 10 {
			withPrefix++
		}
	}
	if withPrefix != 1 {
		t.Fatalf("callee trees: %+v", entries)
	}
}

func TestTwoTransactionPathsSeparateCCTs(t *testing.T) {
	// §5: RPCs through foo and bar must land in two distinct callee CCTs.
	_, calleeProf, run := twoStage(t)
	run([]string{"foo", "bar", "foo"})
	counts := map[string]int64{}
	for _, e := range calleeProf.Entries() {
		if len(e.Ctxt.Prefix) > 0 {
			counts[e.Key] = e.Tree.Total()
		}
	}
	if len(counts) != 2 {
		t.Fatalf("callee context trees = %v, want 2", counts)
	}
	var totals []int64
	for _, v := range counts {
		totals = append(totals, v)
	}
	if totals[0]+totals[1] != 30 {
		t.Fatalf("total callee samples = %v", totals)
	}
	// One path was taken twice.
	if !(totals[0] == 20 && totals[1] == 10 || totals[0] == 10 && totals[1] == 20) {
		t.Fatalf("per-context samples = %v, want 20/10 split", totals)
	}
}

func TestCallerSamplesStayLocal(t *testing.T) {
	callerProf, _, run := twoStage(t)
	run([]string{"foo", "bar"})
	for _, e := range callerProf.Entries() {
		if len(e.Ctxt.Prefix) != 0 {
			t.Fatalf("caller acquired a remote prefix: %+v", e.Ctxt)
		}
	}
	if callerProf.TotalSamples() != 6 {
		t.Fatalf("caller samples = %d, want 6", callerProf.TotalSamples())
	}
}

func TestSendRecordsForStitching(t *testing.T) {
	s := vclock.New()
	cpu := s.NewCPU("cpu", 1)
	p := profiler.New("web", profiler.ModeWhodunit)
	ep := NewEndpoint("web")
	s.Go("t", func(th *vclock.Thread) {
		pr := p.NewProbe(th, cpu)
		defer pr.Exit(pr.Enter("main"))
		defer pr.Exit(pr.Enter("send"))
		ep.Send(pr, 1)
		ep.Send(pr, 2) // same chain: recorded once
	})
	s.Run()
	s.Shutdown()
	recs := ep.Sends()
	if len(recs) != 1 {
		t.Fatalf("send records = %+v, want 1", recs)
	}
	if recs[0].Chain == "" || recs[0].FromKey == "" {
		t.Fatalf("record incomplete: %+v", recs[0])
	}
}

func TestChainGrowsAcrossTiers(t *testing.T) {
	// Tier1 -> tier2 -> tier3: tier3's request prefix has two synopses;
	// tier2 recognises tier3's response; tier1 recognises tier2's.
	s := vclock.New()
	cpu := s.NewCPU("cpu", 3)
	p1 := profiler.New("t1", profiler.ModeWhodunit)
	p2 := profiler.New("t2", profiler.ModeWhodunit)
	p3 := profiler.New("t3", profiler.ModeWhodunit)
	e1, e2, e3 := NewEndpoint("t1"), NewEndpoint("t2"), NewEndpoint("t3")
	q12, q21 := s.NewQueue("q12"), s.NewQueue("q21")
	q23, q32 := s.NewQueue("q23"), s.NewQueue("q32")

	var tier3Prefix int
	s.Go("t3", func(th *vclock.Thread) {
		pr := p3.NewProbe(th, cpu)
		msg := th.Get(q23).(Msg)
		if e3.Recv(pr, msg) != Request {
			t.Error("t3 expected request")
		}
		tier3Prefix = len(pr.Txn().Prefix)
		q32.Put(e3.Send(pr, nil))
	})
	s.Go("t2", func(th *vclock.Thread) {
		pr := p2.NewProbe(th, cpu)
		msg := th.Get(q12).(Msg)
		if e2.Recv(pr, msg) != Request {
			t.Error("t2 expected request")
		}
		func() {
			defer pr.Exit(pr.Enter("query_db"))
			q23.Put(e2.Send(pr, nil))
		}()
		if e2.Recv(pr, th.Get(q32).(Msg)) != Response {
			t.Error("t2 expected response")
		}
		q21.Put(e2.Send(pr, nil))
	})
	s.Go("t1", func(th *vclock.Thread) {
		pr := p1.NewProbe(th, cpu)
		defer pr.Exit(pr.Enter("main"))
		q12.Put(e1.Send(pr, nil))
		if e1.Recv(pr, th.Get(q21).(Msg)) != Response {
			t.Error("t1 expected response")
		}
	})
	s.Run()
	s.Shutdown()
	if tier3Prefix != 2 {
		t.Fatalf("tier3 prefix length = %d, want 2", tier3Prefix)
	}
}

func TestWireRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msg := Msg{Chain: tranctx.Chain{1, 2, 3}, Payload: []byte("hello")}
	if err := WriteMsg(&buf, msg); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMsg(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Chain.Equal(msg.Chain) || string(got.Payload) != "hello" {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestWireErrors(t *testing.T) {
	if _, err := ReadMsg(bytes.NewReader([]byte{0, 0})); err == nil {
		t.Fatal("short header should fail")
	}
	if _, err := ReadMsg(bytes.NewReader([]byte{0, 0, 0, 9, 1})); err == nil {
		t.Fatal("truncated body should fail")
	}
	if _, err := ReadMsg(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff})); err == nil {
		t.Fatal("oversized frame should fail")
	}
}

func TestConnOverNetPipe(t *testing.T) {
	// The real-transport path: two endpoints over a net.Pipe, each side
	// with its own profiler, no simulator involved.
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()

	clientProf := profiler.New("client", profiler.ModeWhodunit)
	serverProf := profiler.New("server", profiler.ModeWhodunit)
	// Probes need a thread/CPU only for Compute; context operations work
	// without them, so pass nil-safe stand-ins via a tiny sim.
	s := vclock.New()
	cpu := s.NewCPU("cpu", 1)
	var clientPr, serverPr *profiler.Probe
	s.Go("init", func(th *vclock.Thread) {
		clientPr = clientProf.NewProbe(th, cpu)
		serverPr = serverProf.NewProbe(th, cpu)
	})
	s.Run()

	cc := &Conn{E: NewEndpoint("client"), RW: a}
	sc := &Conn{E: NewEndpoint("server"), RW: b}

	done := make(chan error, 1)
	go func() {
		payload, kind, err := sc.Recv(serverPr)
		if err == nil && (kind != Request || string(payload) != "ping") {
			t.Errorf("server got %v %q", kind, payload)
		}
		if err == nil {
			err = sc.Send(serverPr, []byte("pong"))
		}
		done <- err
	}()
	if err := cc.Send(clientPr, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	payload, kind, err := cc.Recv(clientPr)
	if err != nil {
		t.Fatal(err)
	}
	if kind != Response || string(payload) != "pong" {
		t.Fatalf("client got %v %q", kind, payload)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
